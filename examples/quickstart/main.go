// Quickstart: build a one-machine software dataplane, push traffic through
// a middlebox VM, and use the PerfSight controller's Figure 6 utility
// routines (GetThroughput, GetPktLoss, GetAvgPktSize) to monitor it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

func main() {
	// 1. A cluster with one testbed-like machine (8 cores, 10 GbE) and a
	//    proxy middlebox VM, advanced in 1 ms virtual-time ticks.
	c := cluster.New(time.Millisecond)
	c.AddMachine(machine.DefaultConfig("m0"))

	c.AddHost("server", 0)
	out := c.Connect("proxy-out", cluster.VMEndpoint("m0", "vm0"), cluster.HostEndpoint("server"), stream.Config{})
	proxy := middlebox.NewProxy("m0/vm0/app", 1e9, middlebox.ConnOutput{C: out})
	c.PlaceVM("m0", "vm0", 1.0, 1e9, proxy)

	// 2. A client pushing 300 Mbps through the proxy.
	client := c.AddHost("client", 0)
	in := c.Connect("proxy-in", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm0"), stream.Config{})
	client.AddSource(in, 300e6)

	// 3. The PerfSight pieces: a per-server agent wired to every element,
	//    and a controller whose measurement windows advance virtual time.
	a, err := agent.Build(c.Machine("m0"), agent.BuildOptions{Clock: c.NowNS})
	if err != nil {
		log.Fatal(err)
	}
	ctl := controller.New(c.Topology())
	ctl.Wait = func(d time.Duration) { c.Run(d) }
	ctl.RegisterAgent("m0", &controller.LocalClient{A: a})

	const tenant = core.TenantID("t1")
	c.AssignStack(tenant, "m0")
	c.AssignVM(tenant, "m0", "vm0")

	// 4. Let the deployment warm up, then monitor specific elements.
	c.Run(2 * time.Second)

	tput, err := ctl.GetThroughput(tenant, "m0/pnic", core.AttrRxBytes, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pNIC receive throughput:  %.0f Mbps\n", tput/1e6)

	loss, err := ctl.GetPktLoss(tenant, "m0/vm0/tun", time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TUN packet loss:          %.0f packets/s\n", loss)

	size, err := ctl.GetAvgPktSize(tenant, "m0/pnic", time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average packet size:      %.0f bytes\n", size)

	// 5. Any element can be queried in the unified record format.
	rec, err := ctl.GetAttr(tenant, "m0/vm0/app")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("middlebox record:         %s\n", rec)
	fmt.Printf("proxy forwarded:          %.0f MB end to end\n", float64(out.DeliveredBytes())/1e6)
}
