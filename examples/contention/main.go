// Contention: the motivating problem of the paper's §2.3. Four tenant VMs
// receive network traffic; memory-intensive VMs then start on the same
// machine and silently throttle them through the shared memory bus —
// nothing in the network path looks wrong until PerfSight's element-level
// drop counters point at the TUN socket queues, and the Table 1 rule book
// plus utilization evidence blames the memory bus.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

const tenant = core.TenantID("t-net")

func main() {
	c := cluster.New(time.Millisecond)
	m := c.AddMachine(machine.DefaultConfig("m0"))

	// Four network-intensive tenant VMs, each receiving ~850 Mbps.
	sinks := make([]*middlebox.Sink, 4)
	for i := 0; i < 4; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sinks[i] = middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 2e9)
		c.PlaceVM("m0", vm, 1.0, 2e9, sinks[i])
		host := c.AddHost(fmt.Sprintf("h%d", i), 0)
		for j := 0; j < 4; j++ {
			conn := c.Connect(dataplane.FlowID(fmt.Sprintf("f%d-%d", i, j)),
				cluster.HostEndpoint(fmt.Sprintf("h%d", i)), cluster.VMEndpoint("m0", vm), stream.Config{})
			host.AddSource(conn, 850e6/4)
		}
		c.AssignVM(tenant, "m0", vm)
	}
	c.AssignStack(tenant, "m0")

	a, err := agent.Build(m, agent.BuildOptions{Clock: c.NowNS})
	if err != nil {
		log.Fatal(err)
	}
	ctl := controller.New(c.Topology())
	ctl.Wait = func(d time.Duration) { c.Run(d) }
	ctl.RegisterAgent("m0", &controller.LocalClient{A: a})

	throughput := func(window time.Duration) float64 {
		var before int64
		for _, s := range sinks {
			before += s.ReceivedBytes()
		}
		c.Run(window)
		var after int64
		for _, s := range sinks {
			after += s.ReceivedBytes()
		}
		return float64(after-before) * 8 / window.Seconds() / 1e9
	}

	c.Run(2 * time.Second)
	fmt.Printf("healthy aggregate throughput: %.2f Gbps\n", throughput(2*time.Second))

	fmt.Println("\n>>> memory-intensive VMs start (26 GB/s of streaming copies)")
	hog := m.AddHog(&machine.Hog{Name: "memvms", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33})

	// Diagnose over the onset — the operator's view through agents.
	rep, err := diagnosis.FindContentionAndBottleneck(ctl, tenant, 3*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("throttled aggregate throughput: %.2f Gbps\n", throughput(2*time.Second))
	fmt.Println("\nPerfSight diagnosis:", rep)
	fmt.Printf("  drop ranking:")
	for i, e := range rep.Ranked {
		if i >= 3 || e.Loss == 0 {
			break
		}
		fmt.Printf(" %s(%0.f)", e.Element, e.Loss)
	}
	fmt.Println()
	fmt.Printf("  dropping VMs: %v (multi-VM => contention, not a per-VM bottleneck)\n", rep.DroppingVMs)
	fmt.Printf("  evidence: cpu %.0f%%, membus %.0f%% => %s\n",
		rep.Evidence.CPUUtil*100, rep.Evidence.MembusUtil*100, rep.Inferred)
	fmt.Println("\n>>> the operator migrates the memory-intensive VMs away")
	m.RemoveHog(hog)
	c.Run(2 * time.Second)
	fmt.Printf("recovered aggregate throughput: %.2f Gbps\n", throughput(2*time.Second))
}
