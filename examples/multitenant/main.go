// Multitenant: the paper's §7.3 operator workflow (Figures 13/14). Two
// tenants' proxies share a physical machine. PerfSight lets the operator
// tell apart a tenant-local bottleneck (fix: scale out) from machine-level
// contention (fix: migrate the interfering work) — and verify each fix.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

func main() {
	c := cluster.New(time.Millisecond)
	c.RmemPerConn = 212992
	shared := machine.DefaultConfig("m-shared")
	shared.Stack.VNICRing = 256
	shared.Stack.SocketRxBytes = 512 << 10
	m := c.AddMachine(shared)
	c.AddMachine(machine.DefaultConfig("m-spare"))

	// Tenant 1: 180 Mbps through a fast proxy. Tenant 2: 360 Mbps offered,
	// but its proxy can only process ~200 Mbps.
	c.AddHost("server1", 0)
	out1 := c.Connect("t1-out", cluster.VMEndpoint("m-shared", "vm-p1"), cluster.HostEndpoint("server1"), stream.Config{})
	p1 := middlebox.NewForwarder("m-shared/vm-p1/app", 1e9,
		middlebox.ForwardConfig{CyclesPerByte: 10, CyclesPerPacket: 2500}, middlebox.ConnOutput{C: out1})
	c.PlaceVM("m-shared", "vm-p1", 1.0, 1e9, p1)
	c1 := c.AddHost("client1", 0)
	for j := 0; j < 6; j++ {
		in := c.Connect(dataplane.FlowID(fmt.Sprintf("t1-%d", j)),
			cluster.HostEndpoint("client1"), cluster.VMEndpoint("m-shared", "vm-p1"), stream.Config{})
		c1.AddSource(in, 30e6)
	}

	c.AddHost("server2", 0)
	out2 := c.Connect("t2-out", cluster.VMEndpoint("m-shared", "vm-p2"), cluster.HostEndpoint("server2"), stream.Config{})
	p2 := middlebox.NewForwarder("m-shared/vm-p2/app", 1e9,
		middlebox.ForwardConfig{CyclesPerByte: 88, CyclesPerPacket: 3000}, middlebox.ConnOutput{C: out2})
	c.PlaceVM("m-shared", "vm-p2", 1.0, 1e9, p2)
	c2 := c.AddHost("client2", 0)
	for j := 0; j < 8; j++ {
		in := c.Connect(dataplane.FlowID(fmt.Sprintf("t2-%d", j)),
			cluster.HostEndpoint("client2"), cluster.VMEndpoint("m-shared", "vm-p2"), stream.Config{})
		c2.AddSource(in, 45e6)
	}

	// PerfSight wiring: per-tenant views plus the operator's full view.
	const (
		t1 = core.TenantID("tenant1")
		t2 = core.TenantID("tenant2")
		op = core.TenantID("operator")
	)
	for _, tid := range []core.TenantID{t1, t2, op} {
		c.AssignStack(tid, "m-shared")
	}
	c.AssignVM(t1, "m-shared", "vm-p1")
	c.AssignVM(t2, "m-shared", "vm-p2")
	c.AssignVM(op, "m-shared", "vm-p1")
	c.AssignVM(op, "m-shared", "vm-p2")
	c.AddChain(t2, "m-shared/vm-p2/app")

	ctl := controller.New(c.Topology())
	ctl.Wait = func(d time.Duration) { c.Run(d) }
	for _, mid := range c.Machines() {
		a, err := agent.Build(c.Machine(mid), agent.BuildOptions{Clock: c.NowNS})
		if err != nil {
			log.Fatal(err)
		}
		ctl.RegisterAgent(mid, &controller.LocalClient{A: a})
	}

	var out2b *stream.Conn
	report := func(tag string) {
		d1, d2 := out1.DeliveredBytes(), out2.DeliveredBytes()
		var d2b int64
		if out2b != nil {
			d2b = out2b.DeliveredBytes()
		}
		c.Run(2 * time.Second)
		n1, n2 := out1.DeliveredBytes(), out2.DeliveredBytes()
		var n2b int64
		if out2b != nil {
			n2b = out2b.DeliveredBytes()
		}
		fmt.Printf("%-28s tenant1 %3.0f Mbps   tenant2 %3.0f Mbps\n", tag,
			float64(n1-d1)*8/2e6, float64(n2-d2+n2b-d2b)*8/2e6)
	}

	fmt.Println("two tenants share m-shared; tenant 2 offers 360 Mbps")
	c.Run(3 * time.Second)
	report("initial:")

	// Tenant 2 complains. The operator checks its middlebox states.
	rc, err := diagnosis.LocateRootCause(ctl, t2, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(">>> tenant 2's ticket: %s\n", rc)

	fmt.Println("\n>>> a memory-intensive management task lands on m-shared")
	hog := m.AddHog(&machine.Hog{Name: "mgmt", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33})
	rep, err := diagnosis.FindContentionAndBottleneck(ctl, op, 3*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	report("during contention:")
	fmt.Printf(">>> operator's diagnosis: %s (dropping VMs: %v)\n", rep, rep.DroppingVMs)

	fmt.Println("\n>>> operator migrates the management task away")
	m.RemoveHog(hog)
	c.Run(2 * time.Second)
	report("after migration:")

	fmt.Println("\n>>> operator scales tenant 2's proxy out to m-spare")
	out2b = c.Connect("t2b-out", cluster.VMEndpoint("m-spare", "vm-p2b"), cluster.HostEndpoint("server2"), stream.Config{})
	p2b := middlebox.NewForwarder("m-spare/vm-p2b/app", 1e9,
		middlebox.ForwardConfig{CyclesPerByte: 88, CyclesPerPacket: 3000}, middlebox.ConnOutput{C: out2b})
	c.PlaceVM("m-spare", "vm-p2b", 1.0, 1e9, p2b)
	for j := 4; j < 8; j++ {
		c.RerouteFlow(dataplane.FlowID(fmt.Sprintf("t2-%d", j)),
			cluster.HostEndpoint("client2"), cluster.VMEndpoint("m-spare", "vm-p2b"))
	}
	c.Run(3 * time.Second)
	report("after scale-out:")
}
