// Chain root cause: the paper's Figure 12 scenario. A load balancer and
// two content filters sit between a client and HTTP servers; the content
// filters log to a shared NFS server. When the NFS server develops a
// memory leak, the whole chain slows down — and naive monitoring blames
// the wrong box. Algorithm 2's ReadBlocked/WriteBlocked analysis isolates
// the true root cause.
//
//	go run ./examples/chain-rootcause
package main

import (
	"fmt"
	"log"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

const (
	tenant = core.TenantID("t-chain")
	C      = 100e6 // every VM's vNIC capacity, as in the paper
)

func main() {
	c := cluster.New(time.Millisecond)
	c.RmemPerConn = 212992 // Linux 3.2 per-socket rmem
	c.AddMachine(machine.DefaultConfig("m0"))

	// Servers and the shared NFS log server.
	for i := 1; i <= 2; i++ {
		vm := core.VMID(fmt.Sprintf("vm-s%d", i))
		srv := middlebox.NewHTTPServer(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), C)
		c.PlaceVM("m0", vm, 1.0, C, srv)
	}
	nfs := middlebox.NewNFSServer("m0/vm-nfs/app", C, 40e6)
	c.PlaceVM("m0", "vm-nfs", 1.0, C, nfs)

	// Content filters forwarding to their servers, logging 15% to NFS.
	for i := 1; i <= 2; i++ {
		vm := core.VMID(fmt.Sprintf("vm-cf%d", i))
		toSrv := c.Connect(dataplane.FlowID(fmt.Sprintf("cf%d-s", i)),
			cluster.VMEndpoint("m0", vm), cluster.VMEndpoint("m0", core.VMID(fmt.Sprintf("vm-s%d", i))), stream.Config{})
		toNFS := c.Connect(dataplane.FlowID(fmt.Sprintf("cf%d-nfs", i)),
			cluster.VMEndpoint("m0", vm), cluster.VMEndpoint("m0", "vm-nfs"), stream.Config{})
		cf := middlebox.NewContentFilter(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), C, 0.15,
			middlebox.ConnOutput{C: toSrv})
		cf.SetLogOutput(middlebox.ConnOutput{C: toNFS})
		c.PlaceVM("m0", vm, 1.0, C, cf)
	}

	// The load balancer splitting client traffic across the filters.
	toCF1 := c.Connect("lb-cf1", cluster.VMEndpoint("m0", "vm-lb"), cluster.VMEndpoint("m0", "vm-cf1"), stream.Config{})
	toCF2 := c.Connect("lb-cf2", cluster.VMEndpoint("m0", "vm-lb"), cluster.VMEndpoint("m0", "vm-cf2"), stream.Config{})
	lb := middlebox.NewLoadBalancer("m0/vm-lb/app", C, middlebox.ConnOutput{C: toCF1}, middlebox.ConnOutput{C: toCF2})
	c.PlaceVM("m0", "vm-lb", 1.0, C, lb)

	client := c.AddHost("client", 0)
	in := c.Connect("client-lb", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-lb"), stream.Config{})
	client.AddSource(in, 70e6)

	// PerfSight: topology, chains, agent, controller.
	c.AssignStack(tenant, "m0")
	for _, vm := range []core.VMID{"vm-lb", "vm-cf1", "vm-cf2", "vm-s1", "vm-s2", "vm-nfs"} {
		c.AssignVM(tenant, "m0", vm)
	}
	c.AddChain(tenant, "m0/vm-lb/app", "m0/vm-cf1/app", "m0/vm-s1/app")
	c.AddChain(tenant, "m0/vm-lb/app", "m0/vm-cf2/app", "m0/vm-s2/app")
	c.AddChain(tenant, "m0/vm-cf1/app", "m0/vm-nfs/app")
	c.AddChain(tenant, "m0/vm-cf2/app", "m0/vm-nfs/app")

	a, err := agent.Build(c.Machine("m0"), agent.BuildOptions{Clock: c.NowNS})
	if err != nil {
		log.Fatal(err)
	}
	ctl := controller.New(c.Topology())
	ctl.Wait = func(d time.Duration) { c.Run(d) }
	ctl.RegisterAgent("m0", &controller.LocalClient{A: a})

	show := func(tag string) {
		rep, err := diagnosis.LocateRootCause(ctl, tenant, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", tag)
		fmt.Println("middlebox         b/t_in (Mbps)  b/t_out (Mbps)  state")
		for _, id := range []core.ElementID{"m0/vm-lb/app", "m0/vm-cf1/app", "m0/vm-cf2/app", "m0/vm-nfs/app", "m0/vm-s1/app", "m0/vm-s2/app"} {
			m := rep.Metrics[id]
			out := "N/A"
			if m.OutActive {
				out = fmt.Sprintf("%.1f", m.OutRateBps/1e6)
			}
			fmt.Printf("%-16s  %12.1f  %14s  %s\n", id.VM(), m.InRateBps/1e6, out, m.State)
		}
		fmt.Println("verdict:", rep)
	}

	fmt.Println("chain: client -> LB -> {CF1, CF2} -> {S1, S2}, CFs log to shared NFS")
	c.Run(3 * time.Second)
	show("healthy deployment:")

	fmt.Println("\n>>> injecting a memory leak into the NFS server (CentOS bug 7267)")
	nfs.InjectLeak(c.Now(), 50)
	c.Run(10 * time.Second) // the stall creeps through the chain
	show("after the leak has propagated:")
}
