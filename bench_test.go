// Package perfsight's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (one benchmark per artifact — see
// DESIGN.md's experiment index) plus the §7.4 counter micro-benchmarks.
// They report the headline number of each artifact as a custom metric so
// `go test -bench .` doubles as the reproduction harness; bench time is
// dominated by simulated virtual time, not the measured code, so the ns/op
// figures are not themselves the result.
package perfsight_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/experiments"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stats"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// BenchmarkFig3MemoryContention regenerates the motivating Figure 3 sweep
// and reports the fitted slope (paper: -439 Mbps per GB/s).
func BenchmarkFig3MemoryContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(experiments.DefaultFig3Config())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(-r.SlopeMbpsPerGBps, "Mbps-lost/GBps")
		b.ReportMetric(r.PeakNetGbps, "peak-Gbps")
		b.ReportMetric(r.KneeGBps, "knee-GBps")
	}
}

// BenchmarkFig8FunctionalValidation regenerates the drop-location timeline
// under five injected problems and reports how many were located correctly.
func BenchmarkFig8FunctionalValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig8Config()
		cfg.PhaseLen = 6 * time.Second
		cfg.QuietLen = 4 * time.Second
		r, err := experiments.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		correct := 0
		for _, p := range r.Phases {
			if p.OK {
				correct++
			}
		}
		b.ReportMetric(float64(correct), "phases-correct")
	}
}

// BenchmarkFig9ResponseTime measures the agent's per-channel round trips
// (paper: device files ~2 ms, everything else <500 µs).
func BenchmarkFig9ResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig9(11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Times["agent-tun"])/1e3, "tun-us")
		b.ReportMetric(float64(r.Times["agent-backlog"])/1e3, "backlog-us")
		b.ReportMetric(float64(r.Times["agent-controller"])/1e3, "controller-us")
	}
}

// BenchmarkFig10BacklogContention regenerates the small-packet contention
// collapse (paper: flow 1 drops from 500 Mbps and oscillates).
func BenchmarkFig10BacklogContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BeforeGbps*1e3, "before-Mbps")
		b.ReportMetric(r.AfterGbps*1e3, "after-Mbps")
	}
}

// BenchmarkFig11MemBwContention regenerates the oversubscription timeline
// (paper: 3.25 -> 1.7 Gbps, 92% of drops at TUNs).
func BenchmarkFig11MemBwContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BeforeGbps, "before-Gbps")
		b.ReportMetric(r.AfterGbps, "after-Gbps")
		b.ReportMetric(r.TUNShare*100, "tun-drop-share-%")
	}
}

// BenchmarkFig12Propagation regenerates the three root-cause cases.
func BenchmarkFig12Propagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig12()
		if err != nil {
			b.Fatal(err)
		}
		correct := 0
		for _, c := range r.Cases {
			if c.OK {
				correct++
			}
		}
		b.ReportMetric(float64(correct), "cases-correct")
	}
}

// BenchmarkFig13MultiTenant regenerates the operator workflow (paper:
// tenant 2 at ~200 Mbps, then 360 Mbps after scale-out).
func BenchmarkFig13MultiTenant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.T2Bottleneck/1e6, "t2-bottleneck-Mbps")
		b.ReportMetric(r.T2ScaledOut/1e6, "t2-scaledout-Mbps")
	}
}

// BenchmarkTable1RuleBook regenerates the rule book probes.
func BenchmarkTable1RuleBook(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		correct := 0
		for _, row := range r.Rows {
			if row.OK {
				correct++
			}
		}
		b.ReportMetric(float64(correct), "rows-correct")
	}
}

// BenchmarkTable2TimeCounterOverhead regenerates the with/without-counter
// comparison (paper: <2% throughput impact).
func BenchmarkTable2TimeCounterOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2(3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OverheadOverloaded()*100, "overloaded-overhead-%")
		b.ReportMetric(r.BlockedWith.MeanMbps, "blocked-Mbps")
	}
}

// BenchmarkFig15MiddleboxOverhead regenerates the per-middlebox overhead
// comparison (paper: <5% for every type).
func BenchmarkFig15MiddleboxOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig15(2)
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for _, row := range r.Rows {
			if row.Normalized < worst {
				worst = row.Normalized
			}
		}
		b.ReportMetric(worst*100, "worst-normalized-%")
	}
}

// BenchmarkFig16QueryOverhead regenerates the polling-cost curve over the
// real TCP agent path.
func BenchmarkFig16QueryOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig16([]float64{10, 100}, 500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[0].CPUPercent, "cpu-at-10Hz-%")
		b.ReportMetric(r.Points[len(r.Points)-1].CPUPercent, "cpu-at-100Hz-%")
	}
}

// BenchmarkAblations re-runs the design-choice ablations of DESIGN.md §5
// and reports how many hold.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblations()
		if err != nil {
			b.Fatal(err)
		}
		held := 0
		for _, row := range r.Rows {
			if row.Holds {
				held++
			}
		}
		b.ReportMetric(float64(held), "choices-held")
	}
}

// BenchmarkSimpleCounter measures the §7.4 packet/byte counter update
// (paper: ~3 ns per update).
func BenchmarkSimpleCounter(b *testing.B) {
	var c stats.Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkTimeCounter measures the §7.4 time-counter update — two clock
// reads plus an accumulate (paper: ~0.29 µs per update on their testbed).
func BenchmarkTimeCounter(b *testing.B) {
	t := stats.NewTimeCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok := t.Start()
		t.Stop(tok)
	}
}

// BenchmarkTimeCounterDisabled measures the uninstrumented path's cost.
func BenchmarkTimeCounterDisabled(b *testing.B) {
	t := stats.NewTimeCounter()
	t.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok := t.Start()
		t.Stop(tok)
	}
}

// BenchmarkSizeHistogram measures the optional packet-size statistic's
// per-packet cost (§4.1's "if they can accept the resulting performance
// impact").
func BenchmarkSizeHistogram(b *testing.B) {
	h := stats.NewSizeHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(64 + i%1400)
	}
}

// BenchmarkTelemetryCounter measures one self-telemetry counter update —
// the budget is the same ~3 ns the paper allows a dataplane counter.
func BenchmarkTelemetryCounter(b *testing.B) {
	c := telemetry.NewRegistry().Counter("perfsight_bench_ops_total", "benchmark counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryHistogram measures one log-linear histogram
// observation (binary search over bucket bounds plus a CAS on the sum).
func BenchmarkTelemetryHistogram(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("perfsight_bench_duration_ns", "benchmark histogram")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(100 + i%100000))
	}
}

// benchAgent builds a realistic agent — a default machine with two
// middlebox VMs, every stack element adapted — for the query-path
// overhead comparison.
func benchAgent(b *testing.B) *agent.Agent {
	b.Helper()
	c := cluster.New(time.Millisecond)
	m := c.AddMachine(machine.DefaultConfig("bench"))
	for i := 0; i < 2; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("bench/%s/app", vm)), 1e9)
		c.PlaceVM("bench", vm, 1.0, 1e9, sink)
	}
	c.Run(50 * time.Millisecond)
	a, err := agent.Build(m, agent.BuildOptions{Clock: c.NowNS})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// benchController builds a 2-machine fleet behind local clients for the
// concurrent-sweep overhead comparison.
func benchController(b *testing.B, instrumented bool) (*controller.Controller, []core.ElementID) {
	b.Helper()
	c := cluster.New(time.Millisecond)
	const tid = core.TenantID("bench")
	mids := []core.MachineID{"b0", "b1"}
	for _, mid := range mids {
		c.AddMachine(machine.DefaultConfig(mid))
		sink := middlebox.NewSink(core.ElementID(string(mid)+"/vm0/app"), 1e9)
		c.PlaceVM(mid, "vm0", 1.0, 1e9, sink)
	}
	c.Run(50 * time.Millisecond)
	ctl := controller.New(c.Topology())
	for _, mid := range mids {
		c.AssignStack(tid, mid)
		c.AssignVM(tid, mid, "vm0")
		a, err := agent.Build(c.Machine(mid), agent.BuildOptions{Clock: c.NowNS})
		if err != nil {
			b.Fatal(err)
		}
		ctl.RegisterAgent(mid, &controller.LocalClient{A: a})
	}
	if instrumented {
		ctl.EnableTelemetry(telemetry.NewRegistry())
	}
	return ctl, ctl.TenantElements(tid, nil)
}

// BenchmarkUninstrumentedSweep is the baseline concurrent multi-machine
// Sample with telemetry off: per-machine fan-out, deadline context, and
// breaker bookkeeping included.
func BenchmarkUninstrumentedSweep(b *testing.B) {
	ctl, ids := benchController(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Sample("bench", ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentedSweep is the same sweep with controller
// self-telemetry enabled; the ISSUE budget is <5% over the
// uninstrumented sweep (sweep counters/histogram plus the in-flight
// fan-out gauge).
func BenchmarkInstrumentedSweep(b *testing.B) {
	ctl, ids := benchController(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Sample("bench", ids); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireMessage builds the representative sweep response used by the
// codec benchmarks: one machine's answer for elems elements × nattrs
// counters, values advancing with tick like live counters do.
func benchWireMessage(elems, nattrs int, tick int64) *wire.Message {
	m := &wire.Message{Type: wire.TypeResponse, ID: uint64(tick), Machine: "b7", AgentNS: 12345}
	for e := 0; e < elems; e++ {
		rec := core.Record{
			Timestamp: tick*1e9 + int64(e),
			Element:   core.ElementID(fmt.Sprintf("b7/vm%d/vnic", e)),
		}
		for a := 0; a < nattrs; a++ {
			rec.Attrs = append(rec.Attrs, core.NamedAttr(
				fmt.Sprintf("attr_%d_bytes", a),
				float64(tick*1000+int64(e*nattrs+a)),
			))
		}
		m.Records = append(m.Records, rec)
	}
	return m
}

// BenchmarkWireCodecJSON measures a full encode+decode round trip of a
// 26-element × 12-attr sweep response under the v1 JSON codec.
func BenchmarkWireCodecJSON(b *testing.B) {
	b.ReportAllocs()
	var frame int
	for i := 0; i < b.N; i++ {
		m := benchWireMessage(26, 12, int64(i))
		payload, err := wire.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		frame = len(payload)
		if _, err := wire.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(frame), "frame-B")
}

// BenchmarkWireCodecV2 is the same round trip under codec v2 with warmed
// intern tables — the steady state every sweep after the first sees.
func BenchmarkWireCodecV2(b *testing.B) {
	enc := wire.NewV2Codec(false)
	dec := wire.NewV2Codec(false)
	warm, _ := enc.Encode(benchWireMessage(26, 12, 0))
	if _, err := dec.Decode(warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var frame int
	for i := 0; i < b.N; i++ {
		m := benchWireMessage(26, 12, int64(i)+1)
		payload, err := enc.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		frame = len(payload)
		if _, err := dec.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(frame), "frame-B")
}

// BenchmarkWireCodecV2DeltaActive is the v2 round trip on a delta
// session where every counter changed since the last sweep (the
// worst case for delta: all values still travel, as index+value pairs).
func BenchmarkWireCodecV2DeltaActive(b *testing.B) {
	benchWireV2Delta(b, func(i int) int64 { return int64(i) + 1 })
}

// BenchmarkWireCodecV2DeltaQuiet is the delta session's best case: no
// counter moved, so each record shrinks to a few bytes.
func BenchmarkWireCodecV2DeltaQuiet(b *testing.B) {
	benchWireV2Delta(b, func(int) int64 { return 1 })
}

func benchWireV2Delta(b *testing.B, tick func(i int) int64) {
	b.Helper()
	enc := wire.NewV2Codec(true)
	dec := wire.NewV2Codec(true)
	warm, _ := enc.Encode(benchWireMessage(26, 12, tick(0)))
	if _, err := dec.Decode(warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var frame int
	for i := 0; i < b.N; i++ {
		m := benchWireMessage(26, 12, tick(i))
		payload, err := enc.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		frame = len(payload)
		if _, err := dec.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(frame), "frame-B")
}

// benchSweepTCP measures an end-to-end controller Sample over a real TCP
// agent under the given codec configuration, reporting received bytes
// per sweep from the controller's wire counters.
func benchSweepTCP(b *testing.B, codec string, delta, spans bool) {
	b.Helper()
	a := benchAgent(b)
	a.AllowDelta = true
	a.AllowSpans = spans
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go a.Serve(ln)

	reg := telemetry.NewRegistry()
	var tracer *telemetry.Tracer
	if spans {
		tracer = telemetry.NewTracer(reg, "controller", 64)
		st := telemetry.NewSpanStore(reg, 256, 64, 64)
		tracer.AttachSpanStore(st, 1, 0)
	}
	client := controller.NewTCPClient(ln.Addr().String()).EnableTelemetry(reg, tracer)
	client.Codec = codec
	client.Delta = delta
	client.Spans = spans
	defer client.Close()

	const tid = core.TenantID("bench")
	topo := core.NewTopology()
	metas, err := client.ListElements()
	if err != nil {
		b.Fatal(err)
	}
	net1 := topo.Net(tid)
	for _, meta := range metas {
		net1.Add(meta.ID, core.ElementInfo{Machine: "bench", Kind: meta.Kind})
	}
	ctl := controller.New(topo)
	ctl.RegisterAgent("bench", client)
	ids := ctl.TenantElements(tid, nil)

	rx := reg.Counter("perfsight_controller_wire_bytes_total", "",
		telemetry.Label{Key: "dir", Value: "rx"})
	if _, err := ctl.Sample(tid, ids); err != nil { // warm tables + negotiation
		b.Fatal(err)
	}
	rxStart := rx.Value()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Sample(tid, ids); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rx.Value()-rxStart)/float64(b.N), "rxB/op")
}

// BenchmarkSweepTCPJSON is the end-to-end sweep baseline on the v1 JSON
// codec.
func BenchmarkSweepTCPJSON(b *testing.B) { benchSweepTCP(b, wire.CodecJSON, false, false) }

// BenchmarkSweepTCPV2 is the same sweep after v2 negotiation.
func BenchmarkSweepTCPV2(b *testing.B) { benchSweepTCP(b, wire.CodecV2, false, false) }

// BenchmarkSweepTCPV2Delta adds delta-encoded responses (the agent's
// clock is frozen between sweeps here, so most counters are quiet).
func BenchmarkSweepTCPV2Delta(b *testing.B) { benchSweepTCP(b, wire.CodecV2, true, false) }

// BenchmarkSweepTCPV2Spans is the full trace spine on the sweep path:
// the agent decorates every response with its per-channel span block and
// the controller builds, skew-corrects, and retains a trace per sweep.
// The ISSUE budget is "within noise" of BenchmarkSweepTCPV2.
func BenchmarkSweepTCPV2Spans(b *testing.B) { benchSweepTCP(b, wire.CodecV2, false, true) }

// BenchmarkUninstrumentedQuery is the baseline full-inventory Fetch with
// telemetry off (the seed behaviour).
func BenchmarkUninstrumentedQuery(b *testing.B) {
	a := benchAgent(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Fetch(nil, nil, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentedQuery is the same Fetch with self-telemetry
// enabled; the ISSUE budget is ~5% over BenchmarkUninstrumentedQuery
// (per-query counters, a latency histogram, and a per-adapter gather
// histogram update).
func BenchmarkInstrumentedQuery(b *testing.B) {
	a := benchAgent(b).EnableTelemetry(telemetry.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Fetch(nil, nil, true); err != nil {
			b.Fatal(err)
		}
	}
}
