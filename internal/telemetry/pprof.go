package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof attaches the Go runtime profiling endpoints
// (/debug/pprof/*) to an exposition mux. It wires the handlers
// explicitly rather than importing net/http/pprof for its DefaultServeMux
// side effect, so profiling stays strictly opt-in behind the binaries'
// -pprof flag and never leaks onto a mux that did not ask for it.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
