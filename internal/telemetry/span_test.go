package telemetry

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// completeTrace drives one Begin…End cycle with a representative span
// mix: four controller stages plus remote agent spans parented under
// the gather span, the way the TCP client ingests them.
func completeTrace(tr *Tracer, fail bool) uint64 {
	qt := tr.Begin("m0")
	id := qt.ID()
	qt.Record(StageEncode, 10*time.Microsecond)
	gather := qt.RecordSpan(StageGather, 80*time.Microsecond)
	base := time.Now().Add(-80 * time.Microsecond).UnixNano()
	root := qt.AddSpan("agent", "agent:dispatch", base, 75000, gather, "")
	qt.AddSpan("agent", "ovs:DUMP-SKETCH", base+1000, 40000, root, "")
	qt.AddSpan("agent", "procfs:netdev", base+45000, 20000, root, "")
	qt.Record(StageTransport, 100*time.Microsecond)
	qt.Record(StageDecode, 5*time.Microsecond)
	if fail {
		qt.Fail(StageDecode, errors.New("torn frame"))
	}
	qt.End()
	return id
}

func TestSkewEstimatorSeededJitter(t *testing.T) {
	// The agent's clock runs 5 ms ahead; transport jitter is ±200 µs per
	// direction. The midpoint estimate must converge well inside the
	// jitter bound.
	const trueOffset = 5 * time.Millisecond
	rng := rand.New(rand.NewSource(42))
	var e SkewEstimator
	ctlNow := int64(1e15)
	for i := 0; i < 200; i++ {
		ctlNow += int64(time.Millisecond)
		fwd := int64(50*time.Microsecond) + rng.Int63n(int64(200*time.Microsecond))
		back := int64(50*time.Microsecond) + rng.Int63n(int64(200*time.Microsecond))
		handling := int64(100*time.Microsecond) + rng.Int63n(int64(100*time.Microsecond))
		send := ctlNow
		agentDone := send + fwd + handling + trueOffset.Nanoseconds()
		recv := send + fwd + handling + back
		e.Observe(send, recv, agentDone, handling)
	}
	off, ok := e.Offset()
	if !ok {
		t.Fatal("no estimate after 200 samples")
	}
	if err := off - trueOffset.Nanoseconds(); err > int64(150*time.Microsecond) || err < -int64(150*time.Microsecond) {
		t.Fatalf("offset error %v exceeds bound (est %v, true %v)",
			time.Duration(err), time.Duration(off), trueOffset)
	}
}

func TestSkewEstimatorResetAndGuards(t *testing.T) {
	var e SkewEstimator
	e.Observe(1000, 2000, 0, 100)    // no agent_ts: ignored
	e.Observe(2000, 1000, 5000, 100) // reversed round trip: ignored
	if _, ok := e.Offset(); ok {
		t.Fatal("garbage pairs produced an estimate")
	}
	e.Observe(1000, 2000, 1500+7000, 1000)
	if off, ok := e.Offset(); !ok || off != 7000-500 {
		// mid=1500, handling clamps to rtt (1000) → sample = 8500-1500-500.
		t.Fatalf("offset = %d, %v", off, ok)
	}
	if e.Samples() != 1 {
		t.Fatalf("samples = %d, want 1", e.Samples())
	}
	// Counter-reset / redial path: a fresh estimate starts from scratch.
	e.Reset()
	if off, ok := e.Offset(); ok || off != 0 {
		t.Fatal("reset kept the estimate")
	}
	var nilE *SkewEstimator
	nilE.Observe(1, 2, 3, 0)
	if _, ok := nilE.Offset(); ok {
		t.Fatal("nil estimator not inert")
	}
}

func TestClampSpanWindow(t *testing.T) {
	cases := []struct {
		start, dur, lo, hi int64
		wantStart, wantDur int64
	}{
		{150, 20, 100, 200, 150, 20},      // already inside
		{50, 20, 100, 200, 100, 20},       // starts before window
		{190, 50, 100, 200, 150, 50},      // runs past the end
		{-1e15, 1e12, 100, 200, 100, 100}, // nonsense timestamp: clamped to window
		{150, -5, 100, 200, 150, 0},       // negative duration
		{150, 20, 200, 100, 200, 0},       // inverted window collapses
	}
	for i, c := range cases {
		gs, gd := ClampSpanWindow(c.start, c.dur, c.lo, c.hi)
		if gs != c.wantStart || gd != c.wantDur {
			t.Errorf("case %d: got (%d,%d), want (%d,%d)", i, gs, gd, c.wantStart, c.wantDur)
		}
	}
}

func TestSpanStoreSamplingAndTailKeep(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "controller", 64)
	st := NewSpanStore(reg, 32, 16, 8)
	tr.AttachSpanStore(st, 4, 0) // head-sample every 4th trace

	var kept, transient []uint64
	for i := 0; i < 8; i++ {
		id := completeTrace(tr, false)
		if id%4 == 0 {
			kept = append(kept, id)
		} else {
			transient = append(transient, id)
		}
	}
	for _, id := range kept {
		got, ok := st.Get(id)
		if !ok || got.Keep != KeepSample {
			t.Fatalf("sampled trace %d: ok=%v keep=%q", id, ok, got.Keep)
		}
		if len(got.Spans) != 7 {
			t.Fatalf("trace %d kept %d spans, want 7", id, len(got.Spans))
		}
	}
	// Unsampled traces sit in the transient window, pinnable but not listed.
	listed := st.List(0)
	for _, e := range listed {
		for _, id := range transient {
			if e.ID == id {
				t.Fatalf("transient trace %d listed as retained", id)
			}
		}
	}
	pinID := transient[len(transient)-1]
	if !st.Pin(pinID) {
		t.Fatalf("pin of transient trace %d failed", pinID)
	}
	got, ok := st.Get(pinID)
	if !ok || got.Keep != KeepIncident {
		t.Fatalf("pinned trace: ok=%v keep=%q", ok, got.Keep)
	}
	if st.Pin(99999) {
		t.Fatal("pin of unknown trace succeeded")
	}

	// Tail-keep: a failed trace is retained even when head sampling
	// would have let it go.
	tr.AttachSpanStore(st, 1000000, 0)
	failID := completeTrace(tr, true)
	got, ok = st.Get(failID)
	if !ok || got.Keep != KeepError || got.Err != "torn frame" || got.FailStage != StageDecode {
		t.Fatalf("error trace not tail-kept: ok=%v %+v", ok, got)
	}
	// Tail-keep: slow threshold.
	tr.AttachSpanStore(st, 1000000, time.Nanosecond)
	slowID := completeTrace(tr, false)
	if got, ok = st.Get(slowID); !ok || got.Keep != KeepSlow {
		t.Fatalf("slow trace not tail-kept: ok=%v keep=%q", ok, got.Keep)
	}
}

// TestSpanStoreConcurrency is the -race proof for concurrent
// append/query/evict: writers complete traces (which both appends to
// the store and overwrites ring slots, i.e. evicts), while readers Get,
// List and Pin racing IDs.
func TestSpanStoreConcurrency(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "controller", 64)
	st := NewSpanStore(reg, 16, 8, 8) // small rings: constant eviction
	tr.AttachSpanStore(st, 2, 0)

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				completeTrace(tr, i%17 == 0)
			}
		}()
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for id := uint64(1); id < 64; id++ {
					if tr, ok := st.Get(id); ok && tr.ID != id {
						t.Error("Get returned wrong trace")
						return
					}
					if id%7 == uint64(r) {
						st.Pin(id)
					}
				}
				st.List(10)
			}
		}(r)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

func TestWaterfallRender(t *testing.T) {
	tr := StoredTrace{
		ID: 42, Target: "m0:9000", Component: "controller",
		Start: time.Now(), Total: 200 * time.Microsecond,
		Spans: []Span{
			{TraceID: 42, ID: 1, Component: "controller", Name: "encode", Start: 1000, Duration: 10000},
			{TraceID: 42, ID: 2, Component: "controller", Name: "agent_gather", Start: 12000, Duration: 150000},
			{TraceID: 42, ID: 3, Parent: 2, Component: "agent", Name: "agent:dispatch", Start: 15000, Duration: 140000},
			{TraceID: 42, ID: 4, Parent: 3, Component: "agent", Name: "ovs:DUMP-SKETCH", Start: 16000, Duration: 90000, Status: "error"},
		},
		SpanCount: 4,
	}
	out := RenderWaterfall(&tr, 40)
	for _, want := range []string{"trace 42", "controller/encode", "agent/agent:dispatch", "agent/ovs:DUMP-SKETCH", "■"} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	// The agent child renders indented beneath the gather span.
	gatherLine := strings.Index(out, "controller/agent_gather")
	childLine := strings.Index(out, "  agent/agent:dispatch")
	if gatherLine == -1 || childLine == -1 || childLine < gatherLine {
		t.Fatalf("child span not nested under parent:\n%s", out)
	}
	if !strings.Contains(out, "!") {
		t.Fatalf("errored span not marked:\n%s", out)
	}
}

func TestTraceHTTP(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "controller", 16)
	st := NewSpanStore(reg, 16, 8, 4)
	tr.AttachSpanStore(st, 1, 0)
	id := completeTrace(tr, false)

	mux := http.NewServeMux()
	(&TraceServer{Tracer: tr, Store: st}).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list TraceList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Recent) != 1 || list.Recent[0].ID != id || len(list.Recent[0].Stages) == 0 {
		t.Fatalf("bad /traces recent: %+v", list.Recent)
	}
	if len(list.Kept) != 1 || list.Kept[0].ID != id {
		t.Fatalf("bad /traces kept: %+v", list.Kept)
	}

	resp, err = http.Get(srv.URL + "/traces/" + jsonUint(id))
	if err != nil {
		t.Fatal(err)
	}
	var full StoredTrace
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if full.ID != id || len(full.Spans) != 7 {
		t.Fatalf("bad /traces/{id}: id=%d spans=%d", full.ID, len(full.Spans))
	}

	resp, _ = http.Get(srv.URL + "/traces/99999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace returned %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, _ = http.Get(srv.URL + "/traces/" + jsonUint(id) + "?render=1")
	buf := new(strings.Builder)
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), "controller/encode") {
		t.Fatalf("rendered waterfall missing spans:\n%s", buf.String())
	}
}

func jsonUint(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
