// Package telemetry is PerfSight's self-observation layer: a lightweight,
// dependency-free metrics registry plus Prometheus-text exposition and a
// query-lifecycle tracer. The monitoring system the paper builds must
// itself stay cheap and accountable (§4.2's ~3 ns counter budget, §7.4's
// overhead measurements); this package makes the reproduction's own
// agents and controller measurable the same way.
//
// Naming convention: perfsight_<component>_<metric>_<unit>, e.g.
// perfsight_agent_query_duration_ns. Counters end in _total; histograms
// carry their unit suffix on the family name.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"perfsight/internal/stats"
)

// Label is one key=value metric dimension.
type Label struct {
	Key, Value string
}

// MetricType enumerates exposition types.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a log-linear distribution metric (see stats.LogLinear).
// The default layout spans 1 ns to 10 s with 9 buckets per decade.
type Histogram struct {
	h *stats.LogLinear
}

// Observe records one value; negative/non-finite values are rejected.
func (h *Histogram) Observe(v float64) { h.h.Observe(v) }

// Count returns accepted observations.
func (h *Histogram) Count() uint64 { return h.h.Count() }

// Sum returns the sum of accepted observations.
func (h *Histogram) Sum() float64 { return h.h.Sum() }

// Quantile estimates the q-quantile.
func (h *Histogram) Quantile(q float64) (float64, bool) { return h.h.Quantile(q) }

// metric is one (family, label-set) sample series.
type metric struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups all label variants of one metric name.
type family struct {
	name    string
	help    string
	typ     MetricType
	mu      sync.RWMutex
	order   []string // label strings, registration order
	metrics map[string]*metric
}

// Registry holds the process's metric families. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use, and
// registering the same name+labels again returns the existing instance,
// so packages can idempotently wire their metrics.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry the cmd binaries expose. Library
// code takes an explicit *Registry; only main packages should reach for
// the default.
var Default = NewRegistry()

func (r *Registry) family(name, help string, typ MetricType) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]*metric)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

func (f *family) get(labels []Label) (*metric, string) {
	ls := renderLabels(labels)
	f.mu.RLock()
	m := f.metrics[ls]
	f.mu.RUnlock()
	return m, ls
}

func (f *family) put(ls string, m *metric) *metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	if exist := f.metrics[ls]; exist != nil {
		return exist
	}
	m.labels = ls
	f.metrics[ls] = m
	f.order = append(f.order, ls)
	return m
}

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, TypeCounter)
	if m, _ := f.get(labels); m != nil {
		return m.c
	}
	m, ls := &metric{c: &Counter{}}, renderLabels(labels)
	return f.put(ls, m).c
}

// Gauge returns (creating if needed) the settable gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, TypeGauge)
	if m, _ := f.get(labels); m != nil {
		return m.g
	}
	m, ls := &metric{g: &Gauge{}}, renderLabels(labels)
	return f.put(ls, m).g
}

// GaugeFunc registers a gauge whose value is pulled from fn at scrape
// time — the natural fit for occupancy/capacity readings that already
// live in another structure (e.g. the DropTracer ring).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, TypeGauge)
	if m, _ := f.get(labels); m != nil {
		return // first registration wins; idempotent re-wiring is a no-op
	}
	m, ls := &metric{gf: fn}, renderLabels(labels)
	f.put(ls, m)
}

// Histogram returns (creating if needed) a log-linear histogram with the
// default 1 ns – 10 s layout.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.HistogramWithLayout(name, help, 1, 1e10, 9, labels...)
}

// HistogramWithLayout returns a histogram with an explicit bucket layout
// (see stats.NewLogLinear). The layout of an existing histogram is not
// changed.
func (r *Registry) HistogramWithLayout(name, help string, min, max float64, stepsPerDecade int, labels ...Label) *Histogram {
	f := r.family(name, help, TypeHistogram)
	if m, _ := f.get(labels); m != nil {
		return m.h
	}
	m := &metric{h: &Histogram{h: stats.NewLogLinear(min, max, stepsPerDecade)}}
	return f.put(renderLabels(labels), m).h
}

// Names returns the registered family names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for n := range r.families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// renderLabels renders a sorted, escaped {k="v",...} suffix ("" if none).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// validName checks the Prometheus metric-name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
