package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers followed by samples,
// families sorted by name and label sets in registration order.
// Histograms render cumulative _bucket{le=...} series plus _sum/_count.
func (r *Registry) WriteText(w io.Writer) error {
	for _, name := range r.Names() {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.RLock()
	order := append([]string(nil), f.order...)
	metrics := make([]*metric, 0, len(order))
	for _, ls := range order {
		metrics = append(metrics, f.metrics[ls])
	}
	f.mu.RUnlock()

	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].labels < metrics[j].labels })
	for _, m := range metrics {
		if err := m.writeText(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

func (m *metric) writeText(w io.Writer, name string) error {
	switch {
	case m.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, m.labels, m.c.Value())
		return err
	case m.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, m.labels, formatFloat(m.g.Value()))
		return err
	case m.gf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, m.labels, formatFloat(m.gf()))
		return err
	case m.h != nil:
		return m.writeHistogram(w, name)
	}
	return nil
}

// writeHistogram renders the cumulative bucket series. Empty buckets are
// skipped (log-linear layouts have many); the +Inf bucket, _sum and
// _count always appear, so the output stays valid Prometheus histogram
// data.
func (m *metric) writeHistogram(w io.Writer, name string) error {
	h := m.h.h
	bounds, counts := h.Bounds(), h.Counts()
	var cum uint64
	for i, n := range counts[:len(counts)-1] {
		cum += n
		if n == 0 {
			continue
		}
		if err := writeBucket(w, name, m.labels, formatFloat(bounds[i]), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if err := writeBucket(w, name, m.labels, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, m.labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, m.labels, h.Count()); err != nil {
		return err
	}
	// Summary-style quantile estimates alongside the buckets, so humans
	// and `perfsight top` read p50/p90/p99 without doing histogram math.
	// Skipped while empty — an all-zero quantile row is noise.
	if h.Count() == 0 {
		return nil
	}
	for _, q := range exposedQuantiles {
		v, ok := h.Quantile(q.v)
		if !ok {
			continue
		}
		if err := writeQuantile(w, name, m.labels, q.label, v); err != nil {
			return err
		}
	}
	return nil
}

// exposedQuantiles are the percentile series every histogram exports.
var exposedQuantiles = []struct {
	label string
	v     float64
}{
	{"0.5", 0.5},
	{"0.9", 0.9},
	{"0.99", 0.99},
}

func writeQuantile(w io.Writer, name, labels, q string, v float64) error {
	sep := "{"
	if labels != "" {
		sep = labels[:len(labels)-1] + ","
	}
	_, err := fmt.Fprintf(w, "%s%squantile=%q} %s\n", name, sep, q, formatFloat(v))
	return err
}

func writeBucket(w io.Writer, name, labels, le string, cum uint64) error {
	sep := "{"
	if labels != "" {
		sep = labels[:len(labels)-1] + ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, sep, le, cum)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Health is the /healthz payload: component identity plus liveness data.
type Health struct {
	Status    string  `json:"status"`
	Component string  `json:"component"`
	Identity  string  `json:"identity"`
	Elements  int     `json:"elements,omitempty"`
	UptimeSec float64 `json:"uptime_seconds"`
	// Extra carries component-specific liveness numbers (e.g. the flight
	// recorder's resident-point and event counts); keys marshal sorted.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// NewMux returns the exposition mux serving /metrics (Prometheus text)
// and /healthz (JSON Health), exposed so callers can attach more
// endpoints (history, events, pprof) to the same listener. health may be
// nil, in which case /healthz reports a bare ok.
func NewMux(reg *Registry, health func() Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{Status: "ok"}
		if health != nil {
			h = health()
			if h.Status == "" {
				h.Status = "ok"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h)
	})
	return mux
}

// Handler returns an http.Handler serving /metrics and /healthz.
func Handler(reg *Registry, health func() Health) http.Handler {
	return NewMux(reg, health)
}

// Serve starts the exposition endpoint on addr in a background goroutine
// and returns the bound address (useful with ":0"). Empty addr disables
// exposition and returns nil without error — the opt-in contract of the
// cmd binaries' -telemetry flag.
func Serve(addr string, reg *Registry, health func() Health) (net.Addr, error) {
	return ServeHandler(addr, Handler(reg, health))
}

// ServeHandler is Serve for a caller-built handler (e.g. a NewMux with
// extra endpoints attached). Empty addr disables exposition.
func ServeHandler(addr string, h http.Handler) (net.Addr, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr(), nil
}
