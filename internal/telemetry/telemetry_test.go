package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("perfsight_test_ops_total", "ops")
	c2 := reg.Counter("perfsight_test_ops_total", "ops")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	l := Label{Key: "kind", Value: "tun"}
	h1 := reg.Histogram("perfsight_test_dur_ns", "d", l)
	h2 := reg.Histogram("perfsight_test_dur_ns", "d", l)
	if h1 != h2 {
		t.Fatal("same name+labels returned distinct histograms")
	}
	h3 := reg.Histogram("perfsight_test_dur_ns", "d", Label{Key: "kind", Value: "pnic"})
	if h1 == h3 {
		t.Fatal("distinct labels share a histogram")
	}
}

func TestRegistryPanicsOnBadName(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "1leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}()
			reg.Counter(bad, "")
		}()
	}
}

func TestRegistryPanicsOnTypeConflict(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("perfsight_test_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge did not panic")
		}
	}()
	reg.Gauge("perfsight_test_x_total", "")
}

func TestWriteTextShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("perfsight_agent_queries_total", "queries served").Add(3)
	reg.Gauge("perfsight_agent_elements", "registered elements").Set(31)
	reg.GaugeFunc("perfsight_agent_uptime_seconds", "uptime", func() float64 { return 1.5 })
	h := reg.Histogram("perfsight_agent_query_duration_ns", "latency",
		Label{Key: "type", Value: "query"})
	h.Observe(150)
	h.Observe(2500)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE perfsight_agent_queries_total counter",
		"perfsight_agent_queries_total 3",
		"perfsight_agent_elements 31",
		"perfsight_agent_uptime_seconds 1.5",
		"# TYPE perfsight_agent_query_duration_ns histogram",
		`perfsight_agent_query_duration_ns_bucket{type="query",le="+Inf"} 2`,
		`perfsight_agent_query_duration_ns_count{type="query"} 2`,
		`perfsight_agent_query_duration_ns_sum{type="query"} 2650`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Families must be sorted by name for deterministic scrapes.
	if strings.Index(out, "perfsight_agent_elements") > strings.Index(out, "perfsight_agent_uptime_seconds") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("perfsight_wire_errors_total", "errs", Label{Key: "dir", Value: "read"}).Add(7)
	reg.Gauge("perfsight_droptrace_ring_occupancy", "events held").Set(12)
	reg.Histogram("perfsight_query_duration_ns", "lat").Observe(999)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Key] = s.Value
	}
	if got[`perfsight_wire_errors_total{dir="read"}`] != 7 {
		t.Fatalf("counter lost in round trip: %v", got)
	}
	if got["perfsight_droptrace_ring_occupancy"] != 12 {
		t.Fatalf("gauge lost in round trip: %v", got)
	}
	if got["perfsight_query_duration_ns_count"] != 1 {
		t.Fatalf("histogram count lost in round trip: %v", got)
	}
}

func TestTracerStagesAndRing(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "controller", 4)
	for i := 0; i < 6; i++ {
		qt := tr.Begin("m0")
		qt.Record(StageEncode, 10*time.Microsecond)
		qt.Record(StageTransport, 100*time.Microsecond)
		qt.Record(StageGather, 50*time.Microsecond)
		qt.Record(StageDecode, 5*time.Microsecond)
		if i == 5 {
			qt.Fail(StageTransport, errors.New("conn reset"))
		}
		qt.End()
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d, want 4", len(recent))
	}
	last := recent[len(recent)-1]
	if !last.Failed() || last.Err != "conn reset" || last.FailStage != StageTransport {
		t.Fatalf("failed trace lost structured status: %+v", last)
	}
	if recent[0].ID >= recent[1].ID {
		t.Fatal("ring not oldest-first")
	}
	if recent[0].StageDuration(StageTransport) != 100*time.Microsecond {
		t.Fatalf("stage timing lost: %v", recent[0].StageList())
	}
	if recent[0].Spans != 4 {
		t.Fatalf("stage spans not recorded: %d", recent[0].Spans)
	}

	var buf bytes.Buffer
	reg.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "perfsight_controller_queries_total 6") {
		t.Fatalf("trace counter missing:\n%s", out)
	}
	if !strings.Contains(out, `stage="encode"`) || !strings.Contains(out, `stage="agent_gather"`) {
		t.Fatalf("stage histograms missing:\n%s", out)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	qt := tr.Begin("m0")
	qt.Record(StageEncode, time.Millisecond)
	done := qt.Time(StageDecode)
	done()
	qt.Fail(StageEncode, nil)
	qt.End()
	if qt.ID() != 0 || tr.NextID() != 0 || tr.Recent() != nil {
		t.Fatal("nil tracer leaked state")
	}
}

// TestRegistryConcurrency hammers registration, updates and scrapes at
// once; run with -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	kinds := []string{"tun", "pnic", "qemu", "vnic"}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				reg.Counter("perfsight_test_ops_total", "").Inc()
				reg.Histogram("perfsight_test_dur_ns", "",
					Label{Key: "kind", Value: kinds[i%len(kinds)]}).Observe(float64(i))
				reg.Gauge("perfsight_test_level", "").Set(float64(i))
			}
		}(g)
	}
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := reg.WriteText(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scraperDone
	if got := reg.Counter("perfsight_test_ops_total", "").Value(); got != 8000 {
		t.Fatalf("lost increments: %d", got)
	}
}
