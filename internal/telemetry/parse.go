package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a fully-qualified series key
// (name plus rendered labels) and its value.
type Sample struct {
	Name   string // family name, e.g. perfsight_agent_queries_total
	Key    string // name + labels, e.g. foo{stage="encode"}
	Value  float64
	Bucket bool // a histogram _bucket series
}

// ParseText parses Prometheus text exposition (the subset WriteText
// emits: HELP/TYPE comments and simple `key value` samples) into samples
// in input order. It is what `perfsight top` uses to poll an endpoint,
// and its round-trip with WriteText is tested.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the text after the last space outside braces; keys
		// may contain spaces only inside quoted label values.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("telemetry: unparsable line %q", line)
		}
		key, valStr := strings.TrimSpace(line[:i]), line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad value in %q: %w", line, err)
		}
		name := key
		if j := strings.IndexByte(name, '{'); j >= 0 {
			name = name[:j]
		}
		out = append(out, Sample{
			Name:   name,
			Key:    key,
			Value:  v,
			Bucket: strings.HasSuffix(name, "_bucket"),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: scan: %w", err)
	}
	return out, nil
}
