package telemetry

import "sync"

// skewAlpha is the EWMA weight of a fresh offset sample. Small enough
// to ride out transport-jitter noise, large enough that a step change
// (VM migration, NTP slew on the agent) converges within ~10 round
// trips.
const skewAlpha = 0.25

// SkewEstimator estimates one remote peer's clock offset from
// request/response timestamp pairs, NTP midpoint style. The controller
// records t1 (frame sent) and t4 (response received) on its own clock;
// the agent reports agent_ts (its clock when it finished handling, t3)
// and agent_ns (its handling time, t3−t2). Assuming symmetric transport,
//
//	offset = t3 − (t1+t4)/2 − handling/2
//
// is the agent-minus-controller clock difference. Samples are
// EWMA-smoothed; the estimator is connection-scoped (it lives on the
// controller's agentLink / the ingest streamConn), so a redial naturally
// starts a fresh estimate — exactly right, since a reconnect may reach a
// different process with a different clock.
type SkewEstimator struct {
	mu       sync.Mutex
	offsetNS float64
	samples  uint64
}

// Observe folds in one request/response pair. sendNS/recvNS are the
// controller-clock unix-ns timestamps around the round trip; agentTS is
// the peer's agent_ts and agentNS its reported handling time. Pairs that
// cannot be sane (reversed round trip, missing agent_ts) are ignored;
// a handling time exceeding the round trip is clamped to it.
func (e *SkewEstimator) Observe(sendNS, recvNS, agentTS, agentNS int64) {
	if e == nil || agentTS <= 0 || recvNS < sendNS {
		return
	}
	if agentNS < 0 {
		agentNS = 0
	}
	if rtt := recvNS - sendNS; agentNS > rtt {
		agentNS = rtt
	}
	mid := sendNS + (recvNS-sendNS)/2
	sample := float64(agentTS - mid - agentNS/2)
	e.mu.Lock()
	if e.samples == 0 {
		e.offsetNS = sample
	} else {
		e.offsetNS += skewAlpha * (sample - e.offsetNS)
	}
	e.samples++
	e.mu.Unlock()
}

// Offset returns the smoothed agent-minus-controller offset in
// nanoseconds and whether any sample has been observed. Subtract it
// from a remote timestamp to land on the controller's timeline.
func (e *SkewEstimator) Offset() (int64, bool) {
	if e == nil {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return int64(e.offsetNS), e.samples > 0
}

// Samples returns how many pairs have been folded in.
func (e *SkewEstimator) Samples() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}

// Reset discards the estimate (counter-reset / explicit redial path;
// a structurally fresh estimator per connection achieves the same).
func (e *SkewEstimator) Reset() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.offsetNS, e.samples = 0, 0
	e.mu.Unlock()
}
