package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Retention reasons recorded on stored traces.
const (
	KeepSample   = "sample"   // head sampling picked it
	KeepError    = "error"    // trace failed
	KeepSlow     = "slow"     // total latency crossed the slow threshold
	KeepIncident = "incident" // an incident pinned it as evidence
)

// StoredTrace is one retained trace: its summary fields plus the span
// forest. List returns entries without Spans (SpanCount tells how many
// a Get would return); Get returns a deep copy the caller owns.
type StoredTrace struct {
	ID        uint64        `json:"id"`
	Target    string        `json:"target"`
	Component string        `json:"component"`
	Start     time.Time     `json:"start"`
	Total     time.Duration `json:"total_ns"`
	Err       string        `json:"err,omitempty"`
	FailStage Stage         `json:"fail_stage,omitempty"`
	Keep      string        `json:"keep,omitempty"` // retention reason ("" = transient)
	Dropped   int           `json:"dropped_spans,omitempty"`
	SpanCount int           `json:"span_count"`
	Spans     []Span        `json:"spans,omitempty"`
}

const spanStoreShards = 8

// spanShard holds two overwrite rings: kept (sampled / error / slow
// traces, the durable working set) and recent (everything else, a short
// grace window so an incident firing moments after a trace completes can
// still pin it). Ring slots recycle their span-slice capacity, so a
// steady-state put is allocation-free once the rings are warm.
type spanShard struct {
	mu      sync.Mutex
	kept    []StoredTrace
	keptN   int
	recent  []StoredTrace
	recentN int
}

// SpanStore retains completed traces' spans, sharded by trace ID so
// concurrent End()s from many links do not serialize on one lock.
// Bounded everywhere: per-shard rings overwrite oldest, and the pinned
// set (incident evidence) is a capped FIFO.
type SpanStore struct {
	shards [spanStoreShards]spanShard

	pinMu    sync.Mutex
	pinned   map[uint64]*StoredTrace
	pinOrder []uint64
	pinCap   int

	stored  *Counter
	pins    *Counter
	pinMiss *Counter
}

// NewSpanStore builds a store retaining about keep traces plus a
// transient window of about recent traces awaiting a possible pin.
// pinCap bounds incident-pinned traces (<=0 means 64). reg may be nil.
func NewSpanStore(reg *Registry, keep, recent, pinCap int) *SpanStore {
	if keep <= 0 {
		keep = 256
	}
	if recent <= 0 {
		recent = 64
	}
	if pinCap <= 0 {
		pinCap = 64
	}
	st := &SpanStore{pinned: make(map[uint64]*StoredTrace), pinCap: pinCap}
	perKept := (keep + spanStoreShards - 1) / spanStoreShards
	perRecent := (recent + spanStoreShards - 1) / spanStoreShards
	for i := range st.shards {
		st.shards[i].kept = make([]StoredTrace, perKept)
		st.shards[i].recent = make([]StoredTrace, perRecent)
	}
	if reg != nil {
		st.stored = reg.Counter("perfsight_trace_store_kept_total", "traces retained by the span store (sample/error/slow)")
		st.pins = reg.Counter("perfsight_trace_store_pins_total", "traces pinned as incident evidence")
		st.pinMiss = reg.Counter("perfsight_trace_store_pin_misses_total", "incident pins that arrived after the trace was evicted")
	}
	return st
}

func (st *SpanStore) shard(id uint64) *spanShard {
	return &st.shards[id%spanStoreShards]
}

// put stores a completed trace. keep is the retention reason ("" means
// transient). spans is copied into a recycled ring slot; the caller may
// reuse its backing array immediately. sum travels by value so the
// caller's summary never escapes to the heap (End's 0-alloc budget).
func (st *SpanStore) put(sum TraceSummary, component string, spans []Span, keep string) {
	if st == nil {
		return
	}
	sh := st.shard(sum.ID)
	sh.mu.Lock()
	var slot *StoredTrace
	if keep != "" {
		slot = &sh.kept[sh.keptN]
		sh.keptN = (sh.keptN + 1) % len(sh.kept)
	} else {
		slot = &sh.recent[sh.recentN]
		sh.recentN = (sh.recentN + 1) % len(sh.recent)
	}
	slot.ID = sum.ID
	slot.Target = sum.Target
	slot.Component = component
	slot.Start = sum.Start
	slot.Total = sum.Total
	slot.Err = sum.Err
	slot.FailStage = sum.FailStage
	slot.Keep = keep
	slot.Dropped = sum.Dropped
	slot.SpanCount = len(spans)
	slot.Spans = append(slot.Spans[:0], spans...)
	sh.mu.Unlock()
	if keep != "" && st.stored != nil {
		st.stored.Inc()
	}
}

// lookupLocked scans one ring for id. Caller holds the shard lock.
func lookupRing(ring []StoredTrace, id uint64) *StoredTrace {
	for i := range ring {
		if ring[i].ID == id && id != 0 {
			return &ring[i]
		}
	}
	return nil
}

func cloneTrace(t *StoredTrace) StoredTrace {
	out := *t
	out.Spans = append([]Span(nil), t.Spans...)
	return out
}

// Get returns a deep copy of the trace, searching pinned entries first,
// then the kept and transient rings.
func (st *SpanStore) Get(id uint64) (StoredTrace, bool) {
	if st == nil || id == 0 {
		return StoredTrace{}, false
	}
	st.pinMu.Lock()
	if p := st.pinned[id]; p != nil {
		out := cloneTrace(p)
		st.pinMu.Unlock()
		return out, true
	}
	st.pinMu.Unlock()
	sh := st.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t := lookupRing(sh.kept, id); t != nil {
		return cloneTrace(t), true
	}
	if t := lookupRing(sh.recent, id); t != nil {
		return cloneTrace(t), true
	}
	return StoredTrace{}, false
}

// Pin promotes a trace to incident evidence: it is copied out of the
// rings into the pinned set, where ring overwrites can no longer evict
// it. Bounded FIFO — when pinCap is exceeded the oldest pin is dropped.
// Returns false when the trace is already gone (counted as a pin miss).
func (st *SpanStore) Pin(id uint64) bool {
	if st == nil || id == 0 {
		return false
	}
	st.pinMu.Lock()
	if _, ok := st.pinned[id]; ok {
		st.pinMu.Unlock()
		return true
	}
	st.pinMu.Unlock()

	sh := st.shard(id)
	sh.mu.Lock()
	t := lookupRing(sh.kept, id)
	if t == nil {
		t = lookupRing(sh.recent, id)
	}
	var cp StoredTrace
	if t != nil {
		cp = cloneTrace(t)
	}
	sh.mu.Unlock()
	if t == nil {
		if st.pinMiss != nil {
			st.pinMiss.Inc()
		}
		return false
	}
	cp.Keep = KeepIncident
	st.pinMu.Lock()
	if _, ok := st.pinned[id]; !ok {
		st.pinned[id] = &cp
		st.pinOrder = append(st.pinOrder, id)
		for len(st.pinOrder) > st.pinCap {
			delete(st.pinned, st.pinOrder[0])
			st.pinOrder = st.pinOrder[1:]
		}
	}
	st.pinMu.Unlock()
	if st.pins != nil {
		st.pins.Inc()
	}
	return true
}

// List returns retained traces (kept rings + pinned set, not the
// transient window), newest first, without their spans, at most max
// entries (<=0 means all).
func (st *SpanStore) List(max int) []StoredTrace {
	if st == nil {
		return nil
	}
	var out []StoredTrace
	seen := make(map[uint64]bool)
	st.pinMu.Lock()
	for _, id := range st.pinOrder {
		if p := st.pinned[id]; p != nil {
			cp := *p
			cp.Spans = nil
			out = append(out, cp)
			seen[id] = true
		}
	}
	st.pinMu.Unlock()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for j := range sh.kept {
			if t := &sh.kept[j]; t.ID != 0 && !seen[t.ID] {
				cp := *t
				cp.Spans = nil
				out = append(out, cp)
				seen[t.ID] = true
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
