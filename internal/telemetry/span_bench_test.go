package telemetry

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanAllocBudget pins the steady-state cost of recording one full
// trace — four controller stage spans plus three skew-corrected agent
// spans, summary ring push and span-store handoff — against a
// checked-in budget (0: the trace is pooled, spans live in a fixed
// array, and store ring slots recycle their span slices). CI fails when
// a change regresses past it (see make bench-trace).
func TestSpanAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/span_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parse budget: %v", err)
	}
	reg := NewRegistry()
	tr := NewTracer(reg, "controller", 64)
	st := NewSpanStore(reg, 64, 32, 8)
	tr.AttachSpanStore(st, 1, 0)
	// Warm: fill the pool, the stage histograms, and every store ring
	// slot so slices have their steady-state capacity.
	for i := 0; i < 200; i++ {
		completeTrace(tr, false)
	}
	got := testing.AllocsPerRun(500, func() {
		completeTrace(tr, false)
	})
	t.Logf("steady-state trace record allocs/op = %.2f (budget %s)", got, strings.TrimSpace(string(raw)))
	if got > budget {
		t.Fatalf("trace record allocs/op = %.2f exceeds budget %.2f (testdata/span_alloc_budget.txt)", got, budget)
	}
}

// BenchmarkTraceComplete is the tentpole's hot path: one pooled trace
// per op with the representative span mix, store attached.
func BenchmarkTraceComplete(b *testing.B) {
	reg := NewRegistry()
	tr := NewTracer(reg, "controller", 64)
	st := NewSpanStore(reg, 64, 32, 8)
	tr.AttachSpanStore(st, 1, 0)
	for i := 0; i < 200; i++ {
		completeTrace(tr, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		completeTrace(tr, false)
	}
}

// BenchmarkTraceCompleteParallel stresses the striped summary ring the
// way a fleet sweep does: many goroutines completing traces at once.
func BenchmarkTraceCompleteParallel(b *testing.B) {
	reg := NewRegistry()
	tr := NewTracer(reg, "controller", 256)
	for i := 0; i < 200; i++ {
		completeTrace(tr, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			completeTrace(tr, false)
		}
	})
}

// --- old map-per-trace baseline -------------------------------------
//
// Before the span spine, every QueryTrace allocated itself plus a
// map[Stage]time.Duration, and End() copied the map and pushed through
// one global ring mutex. The baseline is reimplemented here verbatim so
// `make bench-trace` keeps proving the win instead of losing the
// comparison point.

type mapTraceSummary struct {
	id     uint64
	target string
	start  time.Time
	total  time.Duration
	stages map[Stage]time.Duration
	err    bool
}

type mapTracer struct {
	next   uint64
	hist   *Histogram
	ringMu sync.Mutex
	ring   []mapTraceSummary
	at     int
}

type mapQueryTrace struct {
	t      *mapTracer
	id     uint64
	target string
	start  time.Time
	mu     sync.Mutex
	stages map[Stage]time.Duration
}

func (t *mapTracer) begin(target string) *mapQueryTrace {
	t.next++
	return &mapQueryTrace{t: t, id: t.next, target: target, start: time.Now()}
}

func (q *mapQueryTrace) record(s Stage, d time.Duration) {
	q.mu.Lock()
	if q.stages == nil {
		q.stages = make(map[Stage]time.Duration, 4)
	}
	q.stages[s] += d
	q.mu.Unlock()
	q.t.hist.Observe(float64(d.Nanoseconds()))
}

func (q *mapQueryTrace) end() {
	total := time.Since(q.start)
	q.mu.Lock()
	stages := make(map[Stage]time.Duration, len(q.stages))
	for k, v := range q.stages {
		stages[k] = v
	}
	q.mu.Unlock()
	t := q.t
	t.ringMu.Lock()
	t.ring[t.at] = mapTraceSummary{id: q.id, target: q.target, start: q.start, total: total, stages: stages}
	t.at = (t.at + 1) % len(t.ring)
	t.ringMu.Unlock()
}

// BenchmarkTraceCompleteMapBaseline measures the pre-refactor design:
// map-per-trace stage storage and a single-mutex summary ring.
func BenchmarkTraceCompleteMapBaseline(b *testing.B) {
	reg := NewRegistry()
	mt := &mapTracer{
		hist: reg.Histogram("perfsight_bench_stage_ns", "baseline"),
		ring: make([]mapTraceSummary, 64),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt := mt.begin("m0")
		qt.record(StageEncode, 10*time.Microsecond)
		qt.record(StageGather, 80*time.Microsecond)
		qt.record(StageTransport, 100*time.Microsecond)
		qt.record(StageDecode, 5*time.Microsecond)
		qt.end()
	}
}

// BenchmarkSpanStoreGet measures the cold-path read (deep copy).
func BenchmarkSpanStoreGet(b *testing.B) {
	reg := NewRegistry()
	tr := NewTracer(reg, "controller", 64)
	st := NewSpanStore(reg, 64, 32, 8)
	tr.AttachSpanStore(st, 1, 0)
	id := completeTrace(tr, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Get(id); !ok {
			b.Fatal("trace lost")
		}
	}
}
