package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderWaterfall renders a stored trace as an ASCII waterfall: one row
// per span, indented by parent depth, with a bar positioned on the
// trace's timeline. Remote spans were skew-corrected at ingest, so
// agent-side rows line up against the controller-side rows that carried
// them. width is the bar width in columns (<=0 means 48). Shared by the
// `perfsight trace` subcommand and tests.
func RenderWaterfall(tr *StoredTrace, width int) string {
	if width <= 0 {
		width = 48
	}
	var b strings.Builder
	status := "ok"
	if tr.Err != "" {
		status = "ERROR in " + string(tr.FailStage) + ": " + tr.Err
	}
	fmt.Fprintf(&b, "trace %d  %s → %s  total %s  %s\n",
		tr.ID, tr.Component, tr.Target, tr.Total, status)
	if len(tr.Spans) == 0 {
		b.WriteString("  (no spans retained)\n")
		return b.String()
	}

	// Timeline bounds across every span.
	t0, t1 := tr.Spans[0].Start, tr.Spans[0].End()
	for _, s := range tr.Spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if s.End() > t1 {
			t1 = s.End()
		}
	}
	window := t1 - t0
	if window <= 0 {
		window = 1
	}

	// Order rows parent-first: children render beneath their parent in
	// start order. Spans whose parent is unknown are top level.
	byID := make(map[uint64]int, len(tr.Spans))
	for i, s := range tr.Spans {
		byID[s.ID] = i
	}
	kids := make(map[uint64][]int, len(tr.Spans))
	var roots []int
	for i, s := range tr.Spans {
		if _, ok := byID[s.Parent]; s.Parent != 0 && ok {
			kids[s.Parent] = append(kids[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return tr.Spans[idx[a]].Start < tr.Spans[idx[b]].Start })
	}
	byStart(roots)
	for _, c := range kids {
		byStart(c)
	}

	labelWidth := 0
	for _, s := range tr.Spans {
		if n := len(s.Component) + 1 + len(s.Name); n > labelWidth {
			labelWidth = n
		}
	}
	labelWidth += 4 // depth indent allowance

	var render func(i, depth int)
	render = func(i, depth int) {
		s := &tr.Spans[i]
		label := strings.Repeat("  ", depth) + s.Component + "/" + s.Name
		lo := int(int64(width) * (s.Start - t0) / window)
		hi := int(int64(width) * (s.End() - t0) / window)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("■", hi-lo) + strings.Repeat(" ", width-hi)
		mark := " "
		if s.Status != "" {
			mark = "!"
		}
		fmt.Fprintf(&b, "  %-*s %10s %s|%s|\n", labelWidth, label,
			time.Duration(s.Duration), mark, bar)
		for _, c := range kids[s.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	if tr.Dropped > 0 {
		fmt.Fprintf(&b, "  … %d span(s) dropped (per-trace cap %d)\n", tr.Dropped, MaxSpansPerTrace)
	}
	return b.String()
}
