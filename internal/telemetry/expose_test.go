package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with fully deterministic contents.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("perfsight_agent_queries_total", "statistics queries answered").Add(17)
	reg.Counter("perfsight_agent_query_errors_total", "queries that returned an error").Add(2)
	reg.Counter("perfsight_agent_wire_errors_total", "malformed or failed protocol frames",
		Label{Key: "dir", Value: "read"}).Add(1)
	reg.Gauge("perfsight_agent_elements", "elements registered with the agent").Set(31)
	reg.GaugeFunc("perfsight_dataplane_droptrace_ring_capacity", "drop-trace ring size",
		func() float64 { return 4096 })
	h := reg.HistogramWithLayout("perfsight_agent_gather_duration_ns",
		"per-adapter statistics gather latency", 1, 1e6, 9,
		Label{Key: "channel", Value: "tun"})
	for _, v := range []float64{120, 120, 950, 30000} {
		h.Observe(v)
	}
	return reg
}

// TestWriteTextGolden pins the exact exposition bytes. Regenerate with
// `go test ./internal/telemetry -run Golden -update-golden` after an
// intentional format change.
func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestHandlerMetricsAndHealthz(t *testing.T) {
	reg := goldenRegistry()
	srv := httptest.NewServer(Handler(reg, func() Health {
		return Health{Component: "agent", Identity: "m0", Elements: 31, UptimeSec: 1.25}
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	samples, err := ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("empty scrape")
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Identity != "m0" || h.Component != "agent" || h.Elements != 31 {
		t.Fatalf("healthz payload %+v", h)
	}
}

// TestScrapeUnderConcurrentUpdates hammers the registry while /metrics
// is scraped; under -race this is the exposition path's safety proof.
func TestScrapeUnderConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("perfsight_test_updates_total", "")
			h := reg.Histogram("perfsight_test_lat_ns", "")
			for i := 0; i < 1500; i++ {
				c.Inc()
				h.Observe(float64(i))
				reg.Gauge("perfsight_test_gauge", "", Label{Key: "g", Value: string(rune('a' + g))}).Set(float64(i))
			}
		}(g)
	}
	scrapes := 0
	writersDone := waitCh(&wg)
	for done := false; !done; {
		select {
		case <-writersDone:
			done = true
		default:
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ParseText(resp.Body); err != nil {
				t.Fatalf("scrape %d does not parse: %v", scrapes, err)
			}
			resp.Body.Close()
			scrapes++
		}
	}
	if got := reg.Counter("perfsight_test_updates_total", "").Value(); got != 6000 {
		t.Fatalf("lost updates: %d", got)
	}
	if scrapes == 0 {
		t.Fatal("no concurrent scrapes happened")
	}
}

// waitCh adapts WaitGroup to select. Each call spawns one waiter.
func waitCh(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	return ch
}

func TestServeDisabledOnEmptyAddr(t *testing.T) {
	addr, err := Serve("", NewRegistry(), nil)
	if err != nil || addr != nil {
		t.Fatalf("empty addr must disable exposition, got %v, %v", addr, err)
	}
}

func TestServeBindsAndAnswers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("perfsight_test_ok_total", "").Inc()
	addr, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("perfsight_test_ok_total 1")) {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
}
