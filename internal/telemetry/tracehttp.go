package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// TraceServer exposes the trace spine over HTTP:
//
//	GET /traces          recent query summaries + retained traces
//	GET /traces/{id}     one trace's full span forest (JSON)
//	GET /traces/{id}?render=1   the ASCII waterfall (text/plain)
//
// Register it on the same mux as the /metrics and /healthz surfaces.
type TraceServer struct {
	Tracer *Tracer
	Store  *SpanStore
}

// TraceList is the /traces response shape.
type TraceList struct {
	// Recent is the tracer's summary ring, newest first: every recent
	// query, spans retained or not, with structured status.
	Recent []TraceSummaryJSON `json:"recent"`
	// Kept lists traces whose spans are retained (head-sampled, error,
	// slow, or incident-pinned), newest first, without span bodies.
	Kept []StoredTrace `json:"kept"`
}

// TraceSummaryJSON is TraceSummary with the stage array rendered as a
// JSON list (the fixed backing array is an implementation detail).
type TraceSummaryJSON struct {
	TraceSummary
	Stages []StageDur `json:"stages"`
}

// Register installs the handlers on mux.
func (s *TraceServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("/traces", s.handleList)
	mux.HandleFunc("/traces/", s.handleGet)
}

func (s *TraceServer) handleList(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			n = parsed
		}
	}
	var out TraceList
	recent := s.Tracer.Recent()
	for i := len(recent) - 1; i >= 0; i-- { // newest first
		sum := recent[i]
		out.Recent = append(out.Recent, TraceSummaryJSON{
			TraceSummary: sum,
			Stages:       append([]StageDur(nil), sum.StageList()...),
		})
		if n > 0 && len(out.Recent) >= n {
			break
		}
	}
	out.Kept = s.Store.List(n)
	if out.Recent == nil {
		out.Recent = []TraceSummaryJSON{}
	}
	if out.Kept == nil {
		out.Kept = []StoredTrace{}
	}
	traceWriteJSON(w, out)
}

func (s *TraceServer) handleGet(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/traces/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		traceHTTPErr(w, http.StatusBadRequest, "bad trace id")
		return
	}
	tr, ok := s.Store.Get(id)
	if !ok {
		traceHTTPErr(w, http.StatusNotFound, "trace not retained")
		return
	}
	if r.URL.Query().Get("render") != "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(RenderWaterfall(&tr, 0)))
		return
	}
	traceWriteJSON(w, tr)
}

func traceWriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func traceHTTPErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
