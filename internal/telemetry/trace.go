package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one timed phase of a controller→agent query's life. The
// canonical pipeline is connect → encode → transport → agent_gather →
// decode, with diagnosis riding on top when an algorithm consumes the
// records.
type Stage string

const (
	StageConnect   Stage = "connect"
	StageEncode    Stage = "encode"
	StageTransport Stage = "transport"
	StageGather    Stage = "agent_gather"
	StageDecode    Stage = "decode"
	StageDiagnose  Stage = "diagnosis"
)

// StageDur is one aggregated stage timing inside a trace summary.
type StageDur struct {
	Stage Stage         `json:"stage"`
	D     time.Duration `json:"duration_ns"`
}

// maxTraceStages bounds the distinct stages one trace aggregates; the
// canonical pipeline uses six. A fixed array (not a map) is what makes
// completing a trace allocation-free.
const maxTraceStages = 8

// Tracer assigns IDs to queries and aggregates per-stage timings into a
// registry. One tracer is shared by every client of a component; trace
// IDs are unique within it and travel to agents in the wire protocol's
// trace_id field, so both ends can attribute work to the same query.
//
// Completed traces land in a striped summary ring (shard = id mod N, so
// concurrent End()s from many agent links do not serialize on one lock)
// and, when a SpanStore is attached, their span forests are retained
// per the head-sampling + tail-keep policy (see AttachSpanStore).
//
// A nil *Tracer is fully inert: Begin returns a nil *QueryTrace whose
// methods are no-ops, so instrumented code needs no nil checks.
type Tracer struct {
	component string
	nextID    atomic.Uint64

	total     *Counter
	duration  *Histogram
	spanDrops *Counter
	stageMu   sync.RWMutex
	stages    map[Stage]*Histogram
	reg       *Registry

	pool sync.Pool // *QueryTrace recycling: Begin…End is 0 allocs/op steady state

	store       atomic.Pointer[SpanStore]
	sampleEvery atomic.Uint64
	slowNS      atomic.Int64

	shards []traceShard
}

// traceShard is one stripe of the retained-summary ring. Padded so
// neighboring shards' mutexes do not share a cache line.
type traceShard struct {
	mu   sync.Mutex
	ring []TraceSummary
	next int
	_    [64]byte
}

// TraceSummary is a completed trace retained in the tracer's ring for
// inspection (perfsight top's "recent queries" view, /traces, tests).
// Value-shaped: stage timings live in a fixed array, and failure is a
// structured status (error string + the stage it failed in) rather than
// a bare bool.
type TraceSummary struct {
	ID        uint64                   `json:"id"`
	Target    string                   `json:"target"`
	Start     time.Time                `json:"start"`
	Total     time.Duration            `json:"total_ns"`
	Err       string                   `json:"err,omitempty"`
	FailStage Stage                    `json:"fail_stage,omitempty"`
	NStages   int                      `json:"-"`
	Stages    [maxTraceStages]StageDur `json:"-"`
	Spans     int                      `json:"spans"`
	Dropped   int                      `json:"dropped_spans,omitempty"`
}

// StageDuration returns the aggregated duration of stage st (0 if the
// trace never recorded it).
func (s *TraceSummary) StageDuration(st Stage) time.Duration {
	for i := 0; i < s.NStages; i++ {
		if s.Stages[i].Stage == st {
			return s.Stages[i].D
		}
	}
	return 0
}

// StageList returns the recorded stages in first-recorded order. The
// slice aliases the summary; copy before retaining.
func (s *TraceSummary) StageList() []StageDur { return s.Stages[:s.NStages] }

// Failed reports whether the trace ended in error.
func (s *TraceSummary) Failed() bool { return s.Err != "" }

// NewTracer returns a tracer whose metrics live under
// perfsight_<component>_query_*. keep bounds the retained-trace ring
// (<=0 means 64); it is striped over up to 8 shards.
func NewTracer(reg *Registry, component string, keep int) *Tracer {
	if keep <= 0 {
		keep = 64
	}
	nShards := 8
	if keep < nShards {
		nShards = keep
	}
	per := (keep + nShards - 1) / nShards
	t := &Tracer{
		component: component,
		reg:       reg,
		stages:    make(map[Stage]*Histogram),
		shards:    make([]traceShard, nShards),
	}
	for i := range t.shards {
		t.shards[i].ring = make([]TraceSummary, per)
	}
	t.pool.New = func() any { return new(QueryTrace) }
	prefix := "perfsight_" + component + "_query"
	t.total = reg.Counter("perfsight_"+component+"_queries_total", "queries traced end to end")
	t.duration = reg.Histogram(prefix+"_duration_ns", "end-to-end query latency, nanoseconds")
	t.spanDrops = reg.Counter("perfsight_"+component+"_trace_spans_dropped_total",
		"spans dropped because a trace exceeded its fixed span capacity")
	return t
}

// AttachSpanStore wires span retention: completed traces that carry
// spans are handed to st. sampleEvery is the head-sampling rate (keep
// every Nth trace; <=1 keeps all); independent of sampling, error
// traces and traces slower than slow (0 disables) are tail-kept, and
// everything else enters st's short transient window so an incident can
// still pin it.
func (t *Tracer) AttachSpanStore(st *SpanStore, sampleEvery int, slow time.Duration) {
	if t == nil {
		return
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t.sampleEvery.Store(uint64(sampleEvery))
	t.slowNS.Store(slow.Nanoseconds())
	t.store.Store(st)
}

// SpanStore returns the attached store (nil if none).
func (t *Tracer) SpanStore() *SpanStore {
	if t == nil {
		return nil
	}
	return t.store.Load()
}

// NextID assigns a bare trace ID without starting a trace — used by
// callers that only need wire-level correlation.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

func (t *Tracer) stageHist(s Stage) *Histogram {
	t.stageMu.RLock()
	h := t.stages[s]
	t.stageMu.RUnlock()
	if h != nil {
		return h
	}
	t.stageMu.Lock()
	defer t.stageMu.Unlock()
	if h = t.stages[s]; h == nil {
		h = t.reg.Histogram("perfsight_"+t.component+"_query_stage_duration_ns",
			"per-stage query latency, nanoseconds", Label{Key: "stage", Value: string(s)})
		t.stages[s] = h
	}
	return h
}

// Begin starts a trace against target (an agent address or machine ID).
// The returned trace is pooled: it must not be used after End.
func (t *Tracer) Begin(target string) *QueryTrace {
	if t == nil {
		return nil
	}
	q := t.pool.Get().(*QueryTrace)
	q.t = t
	q.id = t.nextID.Add(1)
	q.target = target
	q.start = time.Now()
	n := t.sampleEvery.Load()
	q.sampled = n <= 1 || q.id%n == 0
	q.err = ""
	q.failStage = ""
	q.nStages = 0
	q.nSpans = 0
	q.dropped = 0
	q.nextSpan = 0
	return q
}

// QueryTrace accumulates one query's stage timings and spans in fixed
// storage. Methods on a nil receiver — and on a trace that already
// Ended — are no-ops.
type QueryTrace struct {
	t       *Tracer // nil once Ended (guards pooled reuse)
	id      uint64
	target  string
	start   time.Time
	sampled bool

	mu        sync.Mutex
	err       string
	failStage Stage
	nStages   int
	stageDur  [maxTraceStages]StageDur
	nSpans    int
	dropped   int
	nextSpan  uint64
	spans     [MaxSpansPerTrace]Span
}

// ID returns the wire-visible trace ID (0 for a nil trace).
func (q *QueryTrace) ID() uint64 {
	if q == nil {
		return 0
	}
	return q.id
}

// addSpanLocked appends one span; caller holds q.mu.
func (q *QueryTrace) addSpanLocked(component, name string, startNS, durNS int64, parent uint64, status string) uint64 {
	if q.nSpans >= MaxSpansPerTrace {
		q.dropped++
		return 0
	}
	q.nextSpan++
	q.spans[q.nSpans] = Span{
		TraceID: q.id, ID: q.nextSpan, Parent: parent,
		Component: component, Name: name,
		Start: startNS, Duration: durNS, Status: status,
	}
	q.nSpans++
	return q.nextSpan
}

// Record adds d to the named stage and observes it in the stage
// histogram; the stage also becomes a top-level span ending now.
func (q *QueryTrace) Record(s Stage, d time.Duration) { q.RecordSpan(s, d) }

// RecordSpan is Record returning the new span's ID, so remote child
// spans can be parented under it (0 for a nil/ended trace or when the
// span capacity is exhausted).
func (q *QueryTrace) RecordSpan(s Stage, d time.Duration) uint64 {
	if q == nil || q.t == nil || d < 0 {
		return 0
	}
	end := time.Now()
	q.mu.Lock()
	i := 0
	for ; i < q.nStages; i++ {
		if q.stageDur[i].Stage == s {
			q.stageDur[i].D += d
			break
		}
	}
	if i == q.nStages && i < maxTraceStages {
		q.stageDur[i] = StageDur{Stage: s, D: d}
		q.nStages++
	}
	id := q.addSpanLocked(q.t.component, string(s), end.UnixNano()-d.Nanoseconds(), d.Nanoseconds(), 0, "")
	t := q.t
	q.mu.Unlock()
	t.stageHist(s).Observe(float64(d.Nanoseconds()))
	return id
}

// AddSpan appends a span with explicit timing — the ingest point for
// remote (agent-side) spans after skew correction. start/dur are unix
// nanoseconds on the controller timeline; parent is a span ID already
// in this trace (0 for top level). Returns the assigned span ID.
func (q *QueryTrace) AddSpan(component, name string, startNS, durNS int64, parent uint64, status string) uint64 {
	if q == nil || q.t == nil {
		return 0
	}
	q.mu.Lock()
	id := q.addSpanLocked(component, name, startNS, durNS, parent, status)
	q.mu.Unlock()
	return id
}

// Time starts timing stage s and returns a stop function that records
// the elapsed duration:
//
//	defer qt.Time(StageEncode)()
//
// The closure allocates; hot paths that must stay 0 allocs/op time the
// stage manually and call Record.
func (q *QueryTrace) Time(s Stage) func() {
	if q == nil {
		return func() {}
	}
	start := time.Now()
	return func() { q.Record(s, time.Since(start)) }
}

// Fail marks the trace as errored with the stage it failed in; the
// summary keeps err's text as the structured status.
func (q *QueryTrace) Fail(s Stage, err error) {
	if q == nil || q.t == nil {
		return
	}
	q.mu.Lock()
	q.failStage = s
	if err != nil {
		q.err = err.Error()
	} else {
		q.err = "error"
	}
	q.mu.Unlock()
}

// End completes the trace: total latency is observed, the summary
// enters the retained ring's shard, spans are handed to the attached
// store, and the trace returns to the pool (it must not be used again).
func (q *QueryTrace) End() {
	if q == nil || q.t == nil {
		return
	}
	t := q.t
	total := time.Since(q.start)
	t.total.Inc()
	t.duration.Observe(float64(total.Nanoseconds()))

	q.mu.Lock()
	sum := TraceSummary{
		ID: q.id, Target: q.target, Start: q.start, Total: total,
		Err: q.err, FailStage: q.failStage,
		NStages: q.nStages, Stages: q.stageDur,
		Spans: q.nSpans, Dropped: q.dropped,
	}
	if q.dropped > 0 {
		t.spanDrops.Add(uint64(q.dropped))
	}
	if st := t.store.Load(); st != nil && q.nSpans > 0 {
		keep := ""
		switch {
		case q.err != "":
			keep = KeepError
		case t.slowNS.Load() > 0 && total.Nanoseconds() >= t.slowNS.Load():
			keep = KeepSlow
		case q.sampled:
			keep = KeepSample
		}
		st.put(sum, t.component, q.spans[:q.nSpans], keep)
	}
	q.t = nil
	q.mu.Unlock()

	sh := &t.shards[sum.ID%uint64(len(t.shards))]
	sh.mu.Lock()
	sh.ring[sh.next] = sum
	sh.next = (sh.next + 1) % len(sh.ring)
	sh.mu.Unlock()

	t.pool.Put(q)
}

// Recent returns retained trace summaries, oldest first (trace IDs are
// monotonic, so ID order is completion-start order).
func (t *Tracer) Recent() []TraceSummary {
	if t == nil {
		return nil
	}
	var out []TraceSummary
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for j := range sh.ring {
			if sh.ring[j].ID != 0 {
				out = append(out, sh.ring[j])
			}
		}
		sh.mu.Unlock()
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
