package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one timed phase of a controller→agent query's life. The
// canonical pipeline is encode → transport → agent_gather → decode, with
// diagnosis riding on top when an algorithm consumes the records.
type Stage string

const (
	StageEncode    Stage = "encode"
	StageTransport Stage = "transport"
	StageGather    Stage = "agent_gather"
	StageDecode    Stage = "decode"
	StageDiagnose  Stage = "diagnosis"
)

// Tracer assigns IDs to queries and aggregates per-stage timings into a
// registry. One tracer is shared by every client of a component; trace
// IDs are unique within it and travel to agents in the wire protocol's
// trace_id field, so both ends can attribute work to the same query.
//
// A nil *Tracer is fully inert: Begin returns a nil *QueryTrace whose
// methods are no-ops, so instrumented code needs no nil checks.
type Tracer struct {
	component string
	nextID    atomic.Uint64

	total    *Counter
	duration *Histogram
	stageMu  sync.RWMutex
	stages   map[Stage]*Histogram
	reg      *Registry

	ringMu sync.Mutex
	ring   []TraceSummary
	next   int
	filled bool
}

// TraceSummary is a completed trace retained in the tracer's ring for
// inspection (perfsight top's "recent queries" view, tests).
type TraceSummary struct {
	ID       uint64
	Target   string
	Start    time.Time
	Total    time.Duration
	Stages   map[Stage]time.Duration
	Err      bool
}

// NewTracer returns a tracer whose metrics live under
// perfsight_<component>_query_*. keep bounds the retained-trace ring
// (<=0 means 64).
func NewTracer(reg *Registry, component string, keep int) *Tracer {
	if keep <= 0 {
		keep = 64
	}
	t := &Tracer{
		component: component,
		reg:       reg,
		stages:    make(map[Stage]*Histogram),
		ring:      make([]TraceSummary, keep),
	}
	prefix := "perfsight_" + component + "_query"
	t.total = reg.Counter("perfsight_"+component+"_queries_total", "queries traced end to end")
	t.duration = reg.Histogram(prefix+"_duration_ns", "end-to-end query latency, nanoseconds")
	return t
}

// NextID assigns a bare trace ID without starting a trace — used by
// callers that only need wire-level correlation.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

func (t *Tracer) stageHist(s Stage) *Histogram {
	t.stageMu.RLock()
	h := t.stages[s]
	t.stageMu.RUnlock()
	if h != nil {
		return h
	}
	t.stageMu.Lock()
	defer t.stageMu.Unlock()
	if h = t.stages[s]; h == nil {
		h = t.reg.Histogram("perfsight_"+t.component+"_query_stage_duration_ns",
			"per-stage query latency, nanoseconds", Label{Key: "stage", Value: string(s)})
		t.stages[s] = h
	}
	return h
}

// Begin starts a trace against target (an agent address or machine ID).
func (t *Tracer) Begin(target string) *QueryTrace {
	if t == nil {
		return nil
	}
	return &QueryTrace{
		t:      t,
		id:     t.nextID.Add(1),
		target: target,
		start:  time.Now(),
	}
}

// QueryTrace accumulates one query's stage timings. Methods on a nil
// receiver are no-ops.
type QueryTrace struct {
	t      *Tracer
	id     uint64
	target string
	start  time.Time
	err    bool

	mu     sync.Mutex
	stages map[Stage]time.Duration
}

// ID returns the wire-visible trace ID (0 for a nil trace).
func (q *QueryTrace) ID() uint64 {
	if q == nil {
		return 0
	}
	return q.id
}

// Record adds d to the named stage and observes it in the stage
// histogram.
func (q *QueryTrace) Record(s Stage, d time.Duration) {
	if q == nil || d < 0 {
		return
	}
	q.mu.Lock()
	if q.stages == nil {
		q.stages = make(map[Stage]time.Duration, 4)
	}
	q.stages[s] += d
	q.mu.Unlock()
	q.t.stageHist(s).Observe(float64(d.Nanoseconds()))
}

// Time starts timing stage s and returns a stop function that records
// the elapsed duration:
//
//	defer qt.Time(StageEncode)()
func (q *QueryTrace) Time(s Stage) func() {
	if q == nil {
		return func() {}
	}
	start := time.Now()
	return func() { q.Record(s, time.Since(start)) }
}

// Fail marks the trace as errored.
func (q *QueryTrace) Fail() {
	if q != nil {
		q.err = true
	}
}

// End completes the trace: total latency is observed and the summary
// enters the retained ring.
func (q *QueryTrace) End() {
	if q == nil {
		return
	}
	total := time.Since(q.start)
	q.t.total.Inc()
	q.t.duration.Observe(float64(total.Nanoseconds()))

	q.mu.Lock()
	stages := make(map[Stage]time.Duration, len(q.stages))
	for k, v := range q.stages {
		stages[k] = v
	}
	q.mu.Unlock()

	sum := TraceSummary{
		ID: q.id, Target: q.target, Start: q.start,
		Total: total, Stages: stages, Err: q.err,
	}
	t := q.t
	t.ringMu.Lock()
	t.ring[t.next] = sum
	t.next++
	if t.next == len(t.ring) {
		t.next, t.filled = 0, true
	}
	t.ringMu.Unlock()
}

// Recent returns retained trace summaries, oldest first.
func (t *Tracer) Recent() []TraceSummary {
	if t == nil {
		return nil
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	if !t.filled {
		out := make([]TraceSummary, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]TraceSummary, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}
