package telemetry

// Span is one timed operation inside a trace. Spans form a forest per
// trace: Parent is another span's ID, or 0 for a top-level span. Start
// is unix nanoseconds on the *controller's* timeline — remote spans are
// skew-corrected before they are added (see SkewEstimator) so a
// waterfall across processes lines up on one clock.
//
// The model is deliberately small and value-shaped (no pointers, no
// maps) so a trace's spans live in a fixed array inside QueryTrace and
// recording stays allocation-free on the hot path.
type Span struct {
	TraceID   uint64 `json:"trace_id"`
	ID        uint64 `json:"id"`
	Parent    uint64 `json:"parent,omitempty"`
	Component string `json:"component"`
	Name      string `json:"name"`
	Start     int64  `json:"start_ns"`
	Duration  int64  `json:"duration_ns"`
	Status    string `json:"status,omitempty"` // "" = ok
}

// End returns the span's end time in unix nanoseconds.
func (s Span) End() int64 { return s.Start + s.Duration }

// MaxSpansPerTrace bounds the spans one trace retains. Overflow is
// dropped and counted (TraceSummary.Dropped) rather than grown: the
// cap is what keeps recording 0 allocs/op, and a query that produces
// more than 32 spans is itself the anomaly worth noticing.
const MaxSpansPerTrace = 32

// ClampSpanWindow fits a remote span into the observed round-trip
// window [loNS, hiNS]. Skew correction is an estimate; a peer with a
// broken clock (or a nonsense agent_ts) could otherwise place its spans
// hours away from the query that carried them. The round trip is ground
// truth: the agent's work happened between our send and our receive, so
// the span is clamped inside it.
func ClampSpanWindow(startNS, durNS, loNS, hiNS int64) (int64, int64) {
	if hiNS < loNS {
		hiNS = loNS
	}
	if durNS < 0 {
		durNS = 0
	}
	if window := hiNS - loNS; durNS > window {
		durNS = window
	}
	if startNS < loNS {
		startNS = loNS
	}
	if startNS+durNS > hiNS {
		startNS = hiNS - durNS
	}
	return startNS, durNS
}
