package ingest

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// Stream states, as reported by Health and the healthz surface.
const (
	StateConnecting = "connecting" // dialing / negotiating
	StateStreaming  = "streaming"  // push stream established
	StateFallback   = "fallback"   // agent lacks the stream capability; pull sweeper covers it
	StateDown       = "down"       // connection failed; backing off before redial
)

// streamConn is one live streaming connection: the socket, its
// session codec, and the per-connection throttle latch. Conn and codec
// live and die as a pair — the codec's intern tables and delta chain are
// connection-scoped, so a redial always builds a fresh streamConn and
// can never apply a delta frame against the previous connection's
// baseline.
type streamConn struct {
	conn net.Conn
	sess wire.Codec

	// spans is the negotiated span capability; skew is the connection's
	// clock-offset estimate, seeded from the hello round trip (a redial
	// always starts a fresh estimator — the agent may have restarted or
	// stepped its clock).
	spans bool
	skew  *telemetry.SkewEstimator

	// writeMu serializes control-frame writes (throttle from the reader,
	// release from the drain) and their codec Encode calls. The reader's
	// concurrent Decode is safe: the codec's encode and decode halves
	// keep disjoint state.
	writeMu   sync.Mutex
	throttled bool
	nextID    uint64
}

// Stream manages the push stream from one agent: connect, negotiate,
// receive, and redial with backoff. Batches land in q; the Manager's
// drain empties it into the sink.
type Stream struct {
	machine core.MachineID
	addr    string
	cfg     Config
	q       *Queue
	tel     *metrics

	mu      sync.Mutex
	state   string
	cur     *streamConn
	codec   string // negotiated codec of the current/last connection
	frames  uint64
	records uint64
	lastSeq uint64
	gaps    uint64
}

// StreamHealth is one agent stream's observable state, JSON-shaped for
// the healthz surface.
type StreamHealth struct {
	Machine   core.MachineID `json:"machine"`
	Addr      string         `json:"addr"`
	State     string         `json:"state"`
	Codec     string         `json:"codec,omitempty"`
	Frames    uint64         `json:"frames"`
	Records   uint64         `json:"records"`
	LastSeq   uint64         `json:"last_seq"`
	Gaps      uint64         `json:"gaps"`
	Dropped   uint64         `json:"dropped"`
	QueueLen  int            `json:"queue_len"`
	Throttled bool           `json:"throttled"`
}

// Health snapshots the stream's state.
func (s *Stream) Health() StreamHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StreamHealth{
		Machine: s.machine, Addr: s.addr, State: s.state, Codec: s.codec,
		Frames: s.frames, Records: s.records, LastSeq: s.lastSeq, Gaps: s.gaps,
		Dropped: s.q.Dropped(), QueueLen: s.q.Len(),
		Throttled: s.cur != nil && s.throttledLocked(),
	}
}

func (s *Stream) throttledLocked() bool {
	c := s.cur
	if c == nil {
		return false
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.throttled
}

// streaming reports whether the push stream is currently established.
func (s *Stream) streaming() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == StateStreaming
}

func (s *Stream) setState(state string) {
	s.mu.Lock()
	s.state = state
	s.mu.Unlock()
}

// closeConn force-closes the live connection (shutdown path); the reader
// unblocks with an error and run() observes ctx.
func (s *Stream) closeConn() {
	s.mu.Lock()
	c := s.cur
	s.mu.Unlock()
	if c != nil {
		c.conn.Close()
	}
}

// run dials and streams until ctx is done. A peer that answers hello
// without the stream grant is left to the pull path and re-probed
// slowly (it may be upgraded in place); connection failures back off on
// the redial interval.
func (s *Stream) run(ctx context.Context) {
	for ctx.Err() == nil {
		fallback, err := s.connectAndStream(ctx)
		if ctx.Err() != nil {
			return
		}
		wait := s.cfg.Redial
		if fallback {
			s.setState(StateFallback)
			if s.tel != nil {
				s.tel.fallbacks.Inc()
			}
			wait = s.cfg.FallbackRetry
		} else {
			s.setState(StateDown)
			if s.tel != nil {
				s.tel.redials.Inc()
			}
			_ = err // connection-scoped; the state machine is the signal
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// connectAndStream establishes one streaming connection and receives
// until it breaks. fallback=true means the agent declined the stream
// capability (not an error — the pull sweeper owns that agent).
func (s *Stream) connectAndStream(ctx context.Context) (fallback bool, err error) {
	s.setState(StateConnecting)
	conn, err := net.DialTimeout("tcp", s.addr, s.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	defer conn.Close()

	// Negotiate codec + stream capability. The hello is always JSON; an
	// old agent answers with an error frame and no grants.
	conn.SetDeadline(time.Now().Add(s.cfg.DialTimeout))
	var frameBuf []byte
	hello := &wire.Message{Type: wire.TypeHello, ID: 1, Hello: &wire.Hello{Stream: true, Sketch: s.cfg.Sketch}}
	if s.cfg.Codec != wire.CodecJSON {
		hello.Hello.Codecs = []string{wire.CodecV2}
		hello.Hello.Delta = s.cfg.Delta
		hello.Hello.Spans = s.cfg.Spans
	}
	payload, err := wire.Encode(hello)
	if err != nil {
		return false, err
	}
	sendNS := time.Now().UnixNano()
	if err := wire.WriteFrame(conn, payload); err != nil {
		return false, err
	}
	raw, err := wire.ReadFrameBuf(conn, &frameBuf)
	recvNS := time.Now().UnixNano()
	if err != nil {
		return false, err
	}
	ack, err := wire.Decode(raw)
	if err != nil {
		return false, err
	}
	if ack.Type != wire.TypeHelloAck || ack.Hello == nil || !ack.Hello.Stream {
		return true, nil // old agent, or push disabled on its side
	}
	sc := &streamConn{conn: conn, sess: wire.JSONCodec{}, nextID: 1, skew: &telemetry.SkewEstimator{}}
	if ack.AgentTS != 0 {
		// The hello round trip is the stream's only request/response
		// exchange, so it seeds the clock-offset estimate that places
		// every later push frame's spans on the controller timeline.
		sc.skew.Observe(sendNS, recvNS, ack.AgentTS, 0)
	}
	s.mu.Lock()
	s.codec = wire.CodecJSON
	s.mu.Unlock()
	for _, c := range ack.Hello.Codecs {
		if c == wire.CodecV2 {
			v2 := wire.NewV2Codec(s.cfg.Delta && ack.Hello.Delta)
			if s.cfg.Spans && ack.Hello.Spans {
				v2.EnableSpans()
				sc.spans = true
			}
			sc.sess = v2
			s.mu.Lock()
			s.codec = wire.CodecV2
			s.mu.Unlock()
		}
	}

	// Convert the connection: after stream_start the agent owns the send
	// direction and we own reading.
	q := s.cfg.Query
	start := &wire.Message{Type: wire.TypeStreamStart, ID: 2, Query: &q,
		Stream: &wire.StreamInfo{
			CadenceMinNS: s.cfg.CadenceMin.Nanoseconds(),
			CadenceMaxNS: s.cfg.CadenceMax.Nanoseconds(),
		}}
	out, err := sc.sess.Encode(start)
	if err != nil {
		return false, err
	}
	if err := wire.WriteFrame(conn, out); err != nil {
		return false, err
	}

	s.mu.Lock()
	s.cur = sc
	s.state = StateStreaming
	s.lastSeq = 0
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.cur = nil
		s.mu.Unlock()
	}()
	return false, s.receive(ctx, sc)
}

// liveness is how long the receiver waits for a frame before declaring
// the connection dead: the agent heartbeats at least at CadenceMax (or
// the throttle period when backpressured above it), so several missed
// heartbeats mean the peer is gone.
func (s *Stream) liveness(sc *streamConn) time.Duration {
	d := s.cfg.CadenceMax
	sc.writeMu.Lock()
	throttled := sc.throttled
	sc.writeMu.Unlock()
	if throttled && s.cfg.Throttle > d {
		d = s.cfg.Throttle
	}
	return 3*d + time.Second
}

// receive is the stream read loop: decode stream_data frames, track
// sequence continuity, enqueue, and send a throttle when the queue
// crosses its high watermark.
func (s *Stream) receive(ctx context.Context, sc *streamConn) error {
	var frameBuf []byte
	for ctx.Err() == nil {
		sc.conn.SetReadDeadline(time.Now().Add(s.liveness(sc)))
		raw, err := wire.ReadFrameBuf(sc.conn, &frameBuf)
		if err != nil {
			return err
		}
		decStart := time.Now()
		msg, err := sc.sess.Decode(raw)
		if err != nil {
			return err
		}
		decodeD := time.Since(decStart)
		switch msg.Type {
		case wire.TypeStreamData:
			var seq uint64
			if msg.Stream != nil {
				seq = msg.Stream.Seq
			}
			var traceID uint64
			if s.cfg.Tracer != nil && len(msg.AgentSpans) > 0 {
				traceID = s.ingestSpans(sc, msg, decStart.UnixNano(), decodeD)
			}
			s.mu.Lock()
			s.frames++
			s.records += uint64(len(msg.Records))
			if s.lastSeq != 0 && seq != s.lastSeq+1 {
				s.gaps++
				if s.tel != nil {
					s.tel.gaps.Inc()
				}
			}
			s.lastSeq = seq
			s.mu.Unlock()
			if s.tel != nil {
				s.tel.frames.Inc()
				s.tel.records.Add(uint64(len(msg.Records)))
			}
			// Decode materializes fresh record storage per frame, so the
			// batch owns its memory; nothing aliases the codec scratch.
			if s.q.Push(Batch{Machine: s.machine, Seq: seq, TraceID: traceID, Records: msg.Records}) {
				if s.tel != nil {
					s.tel.drops.Inc()
				}
			}
			if s.q.Len() >= s.q.high() {
				s.throttle(sc, s.cfg.Throttle)
			}
		case wire.TypeError:
			return fmt.Errorf("ingest: agent %s: %s", s.addr, msg.Error)
		default:
			// Tolerated: unknown frame types on the stream are skipped so
			// protocol additions stay backward compatible.
		}
	}
	return ctx.Err()
}

// pushClampSlackNS widens the clamp window for push-frame spans. A pull
// query's round trip brackets the agent's work exactly; a push frame only
// bounds it from above (the gather finished before the frame arrived), so
// the lower bound is reconstructed as arrival minus the reported gather
// time minus this slack for transport latency and residual skew error.
const pushClampSlackNS = int64(time.Second)

// ingestSpans turns one spans-bearing stream_data frame into a completed
// trace: an agent_gather stage sized by the agent's reported elapsed
// time, the frame's decode cost, and the agent's frame-local spans
// remapped into the trace — IDs reassigned, parents translated (the
// agent's root re-anchors under the gather stage), timestamps shifted by
// the connection's clock-offset estimate and clamped so a nonsense agent
// clock cannot place a span after the frame that carried it. recvNS is
// the frame's arrival time on the controller clock. Returns the trace ID
// for the batch to carry to the sink.
func (s *Stream) ingestSpans(sc *streamConn, msg *wire.Message, recvNS int64, decodeD time.Duration) uint64 {
	qt := s.cfg.Tracer.Begin(string(s.machine))
	gatherID := qt.RecordSpan(telemetry.StageGather, time.Duration(msg.AgentNS))
	qt.Record(telemetry.StageDecode, decodeD)
	lo := recvNS - msg.AgentNS - pushClampSlackNS
	offset, _ := sc.skew.Offset()
	var ids [telemetry.MaxSpansPerTrace + 1]uint64
	for i := range msg.AgentSpans {
		sp := &msg.AgentSpans[i]
		// offset is agent-clock minus controller-clock; subtracting moves
		// the agent timestamp onto the controller's timeline.
		start, dur := telemetry.ClampSpanWindow(sp.StartNS-offset, sp.DurNS, lo, recvNS)
		parent := gatherID
		if sp.Parent != 0 && sp.Parent < uint64(len(ids)) && ids[sp.Parent] != 0 {
			parent = ids[sp.Parent]
		}
		id := qt.AddSpan("agent", sp.Name, start, dur, parent, sp.Status)
		if sp.ID < uint64(len(ids)) {
			ids[sp.ID] = id
		}
	}
	id := qt.ID()
	qt.End()
	return id
}

// throttle asks the agent to raise its cadence floor to d (0 releases).
// Idempotent per connection: repeated crossings of the same watermark
// send one control frame.
func (s *Stream) throttle(sc *streamConn, d time.Duration) {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	want := d > 0
	if sc.throttled == want {
		return
	}
	sc.nextID++
	out, err := sc.sess.Encode(&wire.Message{Type: wire.TypeStreamControl, ID: sc.nextID,
		Stream: &wire.StreamInfo{ThrottleNS: d.Nanoseconds()}})
	if err == nil {
		sc.conn.SetWriteDeadline(time.Now().Add(s.cfg.DialTimeout))
		err = wire.WriteFrame(sc.conn, out)
	}
	if err != nil {
		sc.conn.Close() // reader sees the broken conn and redials
		return
	}
	sc.throttled = want
	if s.tel != nil {
		if want {
			s.tel.throttles.Inc()
		} else {
			s.tel.releases.Inc()
		}
	}
}

// drain empties the queue into the sink and releases backpressure once
// the queue recedes to the low watermark.
func (s *Stream) drain(ctx context.Context) {
	for {
		b, ok := s.q.Take(ctx)
		if !ok {
			return
		}
		s.cfg.Sink(b.Machine, b.Records, b.TraceID)
		if s.q.Len() <= s.q.low() {
			s.mu.Lock()
			sc := s.cur
			s.mu.Unlock()
			if sc != nil {
				s.throttle(sc, 0)
			}
		}
	}
}
