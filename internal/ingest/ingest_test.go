package ingest

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// pushElem is a mutable test element: counters advance only when the
// test says so, which is what drives (and tests) the adaptive cadence.
type pushElem struct {
	id   core.ElementID
	kind core.ElementKind

	mu        sync.Mutex
	rx, drops float64
	autoStep  float64 // added to rx on every Snapshot when non-zero
}

func (e *pushElem) ID() core.ElementID     { return e.id }
func (e *pushElem) Kind() core.ElementKind { return e.kind }
func (e *pushElem) Snapshot(ts int64) core.Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rx += e.autoStep
	return core.Record{Timestamp: ts, Element: e.id, Attrs: []core.Attr{
		{ID: core.AttrRxBytes, Value: e.rx},
		{ID: core.AttrDropPackets, Value: e.drops},
	}}
}

func (e *pushElem) set(rx, drops float64) {
	e.mu.Lock()
	e.rx, e.drops = rx, drops
	e.mu.Unlock()
}

// collector is a Sink that records every drained batch.
type collector struct {
	mu      sync.Mutex
	batches [][]core.Record
	traces  []uint64
	block   chan struct{} // non-nil: Sink blocks on it (backpressure tests)
}

func (c *collector) sink(_ core.MachineID, recs []core.Record, traceID uint64) {
	if c.block != nil {
		<-c.block
	}
	c.mu.Lock()
	c.batches = append(c.batches, recs)
	c.traces = append(c.traces, traceID)
	c.mu.Unlock()
}

// lastTrace returns the most recent non-zero trace ID the sink saw.
func (c *collector) lastTrace() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.traces) - 1; i >= 0; i-- {
		if c.traces[i] != 0 {
			return c.traces[i]
		}
	}
	return 0
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.batches)
}

func (c *collector) last() []core.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.batches) == 0 {
		return nil
	}
	return c.batches[len(c.batches)-1]
}

// pushSetup builds a streaming agent and a manager pointed at it. The
// returned cancel stops the manager's Run.
func pushSetup(t *testing.T, elem *pushElem, mutateAgent func(*agent.Agent), cfg Config) (*Manager, func()) {
	t.Helper()
	var now atomic.Int64
	a := agent.New("m0", func() int64 { return now.Add(int64(time.Millisecond)) })
	a.AllowStream = true
	a.AllowDelta = true
	a.CadenceMin = time.Millisecond
	a.CadenceMax = 50 * time.Millisecond
	a.Register(&agent.DirectAdapter{E: elem})
	if mutateAgent != nil {
		mutateAgent(a)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go a.Serve(ln)

	if cfg.CadenceMin == 0 {
		cfg.CadenceMin = time.Millisecond
	}
	if cfg.CadenceMax == 0 {
		cfg.CadenceMax = 50 * time.Millisecond
	}
	cfg.DialTimeout = 2 * time.Second
	if cfg.Redial == 0 {
		cfg.Redial = 10 * time.Millisecond
	}
	cfg.FallbackRetry = 20 * time.Millisecond
	cfg.Delta = true
	m := NewManager(cfg)
	m.Add("m0", ln.Addr().String())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return m, cancel
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A streaming agent's pushed batches land in the sink with exact values,
// and the manager reports the stream established.
func TestPushStreamDelivers(t *testing.T) {
	elem := &pushElem{id: "m0/pnic", kind: core.KindPNIC, autoStep: 7}
	col := &collector{}
	m, _ := pushSetup(t, elem, nil, Config{Sink: col.sink})

	waitFor(t, 5*time.Second, "3 pushed batches", func() bool { return col.count() >= 3 })
	if !m.Streaming("m0") {
		t.Fatal("Streaming(m0) = false with batches arriving")
	}
	recs := col.last()
	if len(recs) != 1 || recs[0].Element != "m0/pnic" {
		t.Fatalf("last batch: %+v", recs)
	}
	// rx advances by exactly autoStep per gather; values must be exact
	// multiples even through the delta chain.
	rx, ok := recs[0].Get(core.AttrRxBytes)
	if !ok || rx <= 0 || rx != float64(int64(rx)) || int64(rx)%7 != 0 {
		t.Fatalf("rx_bytes = %v, want positive multiple of 7", rx)
	}
	h := m.Health()
	if len(h) != 1 || h[0].State != StateStreaming || h[0].Frames < 3 || h[0].Gaps != 0 {
		t.Fatalf("health: %+v", h)
	}
	if h[0].Codec != wire.CodecV2 {
		t.Fatalf("stream codec = %q, want %q", h[0].Codec, wire.CodecV2)
	}
}

// An agent that does not allow streaming (an "old" agent) leaves the
// manager in fallback: no stream, pull sweeper keeps covering it.
func TestPushFallbackOldAgent(t *testing.T) {
	elem := &pushElem{id: "m0/pnic", kind: core.KindPNIC}
	col := &collector{}
	m, _ := pushSetup(t, elem, func(a *agent.Agent) { a.AllowStream = false }, Config{Sink: col.sink})

	waitFor(t, 5*time.Second, "fallback state", func() bool {
		h := m.Health()
		return len(h) == 1 && h[0].State == StateFallback
	})
	if m.Streaming("m0") {
		t.Fatal("Streaming(m0) = true for a pull-only agent")
	}
	if col.count() != 0 {
		t.Fatalf("pull-only agent pushed %d batches", col.count())
	}
}

// Killing the streaming connection mid-delta-chain must not corrupt
// values: the redialed connection starts a fresh codec pair, so the
// first frame re-sends full records and every batch stays exact.
func TestPushReconnectMidDeltaChain(t *testing.T) {
	elem := &pushElem{id: "m0/pnic", kind: core.KindPNIC, autoStep: 7}
	col := &collector{}
	m, _ := pushSetup(t, elem, nil, Config{Sink: col.sink})

	waitFor(t, 5*time.Second, "delta chain established", func() bool { return col.count() >= 3 })

	// Kill the live connection out from under both endpoints.
	m.mu.Lock()
	s := m.streams["m0"]
	m.mu.Unlock()
	s.mu.Lock()
	sc := s.cur
	s.mu.Unlock()
	if sc == nil {
		t.Fatal("no live stream connection")
	}
	sc.conn.Close()

	before := col.count()
	waitFor(t, 5*time.Second, "stream re-established", func() bool {
		return m.Streaming("m0") && col.count() >= before+3
	})
	// Every batch after the redial still decodes to exact counters: a
	// stale delta baseline would shear them off the ×7 lattice.
	col.mu.Lock()
	defer col.mu.Unlock()
	var prev float64
	for i, recs := range col.batches {
		if len(recs) != 1 {
			t.Fatalf("batch %d: %+v", i, recs)
		}
		rx, ok := recs[0].Get(core.AttrRxBytes)
		if !ok || rx != float64(int64(rx)) || int64(rx)%7 != 0 {
			t.Fatalf("batch %d: rx_bytes = %v, want multiple of 7 (stale delta baseline?)", i, rx)
		}
		if rx < prev {
			t.Fatalf("batch %d: rx_bytes went backwards: %v after %v", i, rx, prev)
		}
		prev = rx
	}
}

// A sink that stalls fills the bounded queue: oldest batches drop (and
// are counted), a throttle goes to the agent, and once the sink drains
// the queue the throttle is released.
func TestPushBackpressure(t *testing.T) {
	elem := &pushElem{id: "m0/pnic", kind: core.KindPNIC, autoStep: 7}
	col := &collector{block: make(chan struct{})}
	m, _ := pushSetup(t, elem, nil, Config{
		Sink:      col.sink,
		QueueSize: 4,
		Throttle:  200 * time.Millisecond,
	})

	waitFor(t, 5*time.Second, "throttle at high watermark", func() bool {
		h := m.Health()
		return len(h) == 1 && h[0].Throttled
	})
	waitFor(t, 5*time.Second, "drop-oldest under overflow", func() bool {
		return m.Health()[0].Dropped > 0
	})

	close(col.block) // sink unblocks; the drain empties the queue
	waitFor(t, 5*time.Second, "throttle release at low watermark", func() bool {
		h := m.Health()[0]
		return !h.Throttled && h.QueueLen <= 1
	})
	// The stream survived the whole episode.
	if !m.Streaming("m0") {
		t.Fatal("stream lost during backpressure episode")
	}
}

// Quiescent counters decay the push cadence toward the ceiling; moving
// counters snap it back toward the floor. Observed via frame arrival
// rate over fixed windows.
func TestPushAdaptiveCadence(t *testing.T) {
	elem := &pushElem{id: "m0/pnic", kind: core.KindPNIC} // static counters
	col := &collector{}
	m, _ := pushSetup(t, elem, func(a *agent.Agent) {
		a.CadenceMin = time.Millisecond
		a.CadenceMax = 250 * time.Millisecond
	}, Config{Sink: col.sink, CadenceMin: time.Millisecond, CadenceMax: 250 * time.Millisecond})

	waitFor(t, 5*time.Second, "stream up", func() bool { return m.Streaming("m0") })
	// Let the cadence decay: with nothing changing it doubles each tick
	// (1→2→4→…→250ms), so after the settle window frames are sparse.
	time.Sleep(600 * time.Millisecond)
	quietStart := m.Health()[0].Frames
	time.Sleep(500 * time.Millisecond)
	quietFrames := m.Health()[0].Frames - quietStart

	// Now keep the counters moving: cadence halves back to the floor.
	elem.mu.Lock()
	elem.autoStep = 7
	elem.mu.Unlock()
	time.Sleep(100 * time.Millisecond) // adapt
	busyStart := m.Health()[0].Frames
	time.Sleep(500 * time.Millisecond)
	busyFrames := m.Health()[0].Frames - busyStart

	// Quiescent ≈ 2/s at the 250ms ceiling; busy ≈ hundreds/s at the 1ms
	// floor. 4× is a generous margin for CI jitter.
	if busyFrames < 4*quietFrames || busyFrames < 8 {
		t.Fatalf("cadence did not adapt: quiet window %d frames, busy window %d", quietFrames, busyFrames)
	}
}

// A spans-capable agent's push frames become completed traces: the sink
// sees the frame's trace ID and the span store holds a waterfall with
// the controller-side stages plus the agent's skew-corrected per-channel
// gather spans.
func TestPushSpansTraced(t *testing.T) {
	elem := &pushElem{id: "m0/pnic", kind: core.KindPNIC, autoStep: 7}
	col := &collector{}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(reg, "ingest", 64)
	st := telemetry.NewSpanStore(reg, 64, 16, 8)
	tr.AttachSpanStore(st, 1, 0)
	before := time.Now().UnixNano()
	pushSetup(t, elem, func(a *agent.Agent) { a.AllowSpans = true },
		Config{Sink: col.sink, Spans: true, Tracer: tr})

	waitFor(t, 5*time.Second, "traced batch", func() bool { return col.lastTrace() != 0 })
	tid := col.lastTrace()
	trace, ok := st.Get(tid)
	if !ok {
		t.Fatalf("span store lost trace %d", tid)
	}
	var sawGather, sawPush, sawChannel bool
	for _, sp := range trace.Spans {
		switch {
		case sp.Component == "ingest" && sp.Name == string(telemetry.StageGather):
			sawGather = true
		case sp.Component == "agent" && sp.Name == "agent:push":
			sawPush = true
		case sp.Component == "agent" && sp.Name == "snapshot:encode":
			sawChannel = true
		}
		if sp.Component == "agent" {
			// Skew-corrected and clamped: agent spans land on the
			// controller timeline, inside the test's wall-clock window.
			now := time.Now().UnixNano()
			if sp.Start < before-int64(time.Minute) || sp.End() > now {
				t.Fatalf("agent span %q outside controller window: start=%d end=%d now=%d",
					sp.Name, sp.Start, sp.End(), now)
			}
		}
	}
	if !sawGather || !sawPush || !sawChannel {
		t.Fatalf("waterfall missing spans (gather=%v push=%v channel=%v): %+v",
			sawGather, sawPush, sawChannel, trace.Spans)
	}
}

// A span-blind agent behind a spans-requesting ingest keeps streaming
// plain frames: no trace IDs, no spans, no errors — the capability
// degrades silently per connection.
func TestPushSpanBlindAgent(t *testing.T) {
	elem := &pushElem{id: "m0/pnic", kind: core.KindPNIC, autoStep: 7}
	col := &collector{}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(reg, "ingest", 64)
	m, _ := pushSetup(t, elem, nil, // agent default: AllowSpans = false
		Config{Sink: col.sink, Spans: true, Tracer: tr})

	waitFor(t, 5*time.Second, "3 pushed batches", func() bool { return col.count() >= 3 })
	if !m.Streaming("m0") {
		t.Fatal("span-blind agent broke the stream")
	}
	if tid := col.lastTrace(); tid != 0 {
		t.Fatalf("span-blind agent produced trace %d", tid)
	}
}
