package ingest

import (
	"context"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/history"
)

const benchTenant = core.TenantID("t1")

// benchRecords builds one gather's worth of records: elems elements with
// four counter attrs each, timestamped ts.
func benchRecords(elems int, ts int64) []core.Record {
	recs := make([]core.Record, elems)
	for i := range recs {
		recs[i] = core.Record{
			Timestamp: ts,
			Element:   core.ElementID("m0/vm" + strconv.Itoa(i) + "/vnic"),
			Attrs: []core.Attr{
				{ID: core.AttrRxBytes, Value: float64(ts + int64(i))},
				{ID: core.AttrTxBytes, Value: float64(ts)},
				{ID: core.AttrRxPackets, Value: float64(ts / 1000)},
				{ID: core.AttrDropPackets, Value: 0},
			},
		}
	}
	return recs
}

// TestIngestSustains10k is the ROADMAP item 2 gate: the push ingest path
// (bounded queue → store append) must sustain at least 10k element
// updates/s with a concurrent producer and drain. The measured rate on
// dev hardware is orders of magnitude higher; the assertion is a floor
// that catches an accidentally serialized or allocating path, not a
// race-to-the-metal benchmark.
func TestIngestSustains10k(t *testing.T) {
	const (
		elems   = 16
		batches = 5000
		sentin  = ^uint64(0)
	)
	store := history.New(history.Config{MaxPointsPerSeries: 128})
	q := NewQueue(256)

	// Precompute every batch so producer-side record construction stays
	// out of the measured window.
	in := make([]Batch, batches)
	for i := range in {
		in[i] = Batch{Machine: "m0", Seq: uint64(i + 1),
			Records: benchRecords(elems, int64(i+1)*int64(time.Millisecond))}
	}

	var appended atomic.Int64
	done := make(chan struct{})
	ctx := context.Background()
	go func() {
		for {
			b, ok := q.Take(ctx)
			if !ok {
				return
			}
			if b.Seq == sentin {
				close(done)
				return
			}
			for _, rec := range b.Records {
				store.Append(benchTenant, rec)
			}
			appended.Add(int64(len(b.Records)))
		}
	}()

	start := time.Now()
	for i := range in {
		q.Push(in[i])
	}
	q.Push(Batch{Seq: sentin})
	<-done
	elapsed := time.Since(start)

	rate := float64(appended.Load()) / elapsed.Seconds()
	t.Logf("ingest sustained %.0f element updates/s (%d updates in %v, %d batches dropped)",
		rate, appended.Load(), elapsed, q.Dropped())
	if rate < 10_000 {
		t.Fatalf("ingest rate %.0f updates/s below the 10k floor", rate)
	}
	if appended.Load() == 0 {
		t.Fatal("nothing reached the store")
	}
}

// TestIngestAllocBudget pins the steady-state allocation cost of moving
// one 16-element batch through the ingest path (queue push + take +
// warmed store appends) against a checked-in budget. CI fails when a
// change regresses past it (see make bench-ingest).
func TestIngestAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/ingest_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parse budget: %v", err)
	}
	store := history.New(history.Config{MaxPointsPerSeries: 64})
	q := NewQueue(8)
	ctx := context.Background()
	recs := benchRecords(16, 0)
	ts := int64(0)
	step := func() {
		ts += int64(time.Millisecond)
		for i := range recs {
			recs[i].Timestamp = ts
			recs[i].Attrs[0].Value++
		}
		q.Push(Batch{Machine: "m0", Seq: uint64(ts), Records: recs})
		b, _ := q.Take(ctx)
		for _, rec := range b.Records {
			store.Append(benchTenant, rec)
		}
	}
	// Warm: series groups, rings, and the queue channel all settle.
	for i := 0; i < 200; i++ {
		step()
	}
	got := testing.AllocsPerRun(500, step)
	t.Logf("steady-state ingest allocs/batch = %.2f (budget %s)", got, strings.TrimSpace(string(raw)))
	if got > budget {
		t.Fatalf("ingest allocs/batch = %.2f exceeds budget %.2f (testdata/ingest_alloc_budget.txt)", got, budget)
	}
}

// BenchmarkIngestPipeline is the single-threaded cost of one batch
// through queue + store: the per-record share is what bounds sustainable
// stream throughput.
func BenchmarkIngestPipeline(b *testing.B) {
	store := history.New(history.Config{MaxPointsPerSeries: 128})
	q := NewQueue(8)
	ctx := context.Background()
	recs := benchRecords(16, 0)
	ts := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += int64(time.Millisecond)
		for j := range recs {
			recs[j].Timestamp = ts
			recs[j].Attrs[0].Value++
		}
		q.Push(Batch{Machine: "m0", Seq: uint64(i), Records: recs})
		batch, _ := q.Take(ctx)
		for _, rec := range batch.Records {
			store.Append(benchTenant, rec)
		}
	}
	b.ReportMetric(float64(b.N*len(recs))/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkQueue is the bare queue push+take cost (no store), the upper
// bound on batch-passing overhead.
func BenchmarkQueue(b *testing.B) {
	q := NewQueue(8)
	ctx := context.Background()
	recs := benchRecords(4, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(Batch{Seq: uint64(i), Records: recs})
		q.Take(ctx)
	}
}
