package ingest

import (
	"context"
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(4)
	for i := uint64(1); i <= 3; i++ {
		if dropped := q.Push(Batch{Seq: i}); dropped {
			t.Fatalf("push %d dropped below capacity", i)
		}
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d, want 3", q.Len())
	}
	ctx := context.Background()
	for i := uint64(1); i <= 3; i++ {
		b, ok := q.Take(ctx)
		if !ok || b.Seq != i {
			t.Fatalf("take = %+v,%v; want seq %d", b, ok, i)
		}
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue(2)
	q.Push(Batch{Seq: 1})
	q.Push(Batch{Seq: 2})
	if dropped := q.Push(Batch{Seq: 3}); !dropped {
		t.Fatal("overflow push did not report a drop")
	}
	if got := q.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	// The oldest batch went; the newest two remain in order.
	b, _ := q.Take(context.Background())
	if b.Seq != 2 {
		t.Fatalf("first surviving seq = %d, want 2 (oldest evicted)", b.Seq)
	}
	b, _ = q.Take(context.Background())
	if b.Seq != 3 {
		t.Fatalf("second surviving seq = %d, want 3", b.Seq)
	}
}

func TestQueueTakeHonorsContext(t *testing.T) {
	q := NewQueue(1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, ok := q.Take(ctx); ok {
		t.Fatal("Take returned a batch from an empty queue")
	}
}

func TestQueueWatermarks(t *testing.T) {
	q := NewQueue(8)
	if q.high() != 6 || q.low() != 2 {
		t.Fatalf("watermarks = %d/%d, want 6/2", q.high(), q.low())
	}
	if q1 := NewQueue(1); q1.high() != 1 {
		t.Fatalf("size-1 high = %d, want 1", q1.high())
	}
}
