package ingest

import (
	"context"
	"sort"
	"sync"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// Sink receives each drained batch. The controller wires it to
// history.Store.Append plus the anomaly pipeline's per-arrival hook; it
// is called from one goroutine per agent stream, so it must be safe for
// concurrent use across machines (Store.Append is). traceID is the
// distributed trace of the push frame that carried the records (0 when
// tracing is off or the frame carried no spans) — an anomaly fired from
// these records should reference it.
type Sink func(machine core.MachineID, recs []core.Record, traceID uint64)

// Config shapes the ingest side of push streaming.
type Config struct {
	// CadenceMin/CadenceMax are the adaptive-cadence bounds requested in
	// stream_start. The agent may raise the floor but honors the ceiling
	// as its quiescent heartbeat period. Defaults 100ms / 5s.
	CadenceMin time.Duration
	CadenceMax time.Duration

	// QueueSize bounds each agent's ingest queue, in batches; overflow
	// drops oldest and is counted. Default 64.
	QueueSize int

	// Throttle is the cadence floor pushed to an agent whose queue
	// crosses the high watermark; released when the drain catches up to
	// the low watermark. Default 1s.
	Throttle time.Duration

	// DialTimeout bounds dial + hello + stream_start. Default 5s.
	DialTimeout time.Duration

	// Redial is the backoff after a broken streaming connection;
	// FallbackRetry is how often an agent that declined the stream
	// capability is re-probed (it may have been upgraded in place).
	// Defaults 1s / 30s.
	Redial        time.Duration
	FallbackRetry time.Duration

	// Codec, Delta and Sketch mirror the pull client's negotiation
	// knobs: wire.CodecV2 (or empty) offers the binary codec,
	// wire.CodecJSON pins JSON; Delta requests delta-encoded stream
	// frames; Sketch requests constant-size flow_sketch summaries in
	// place of the per-rule attr enumeration from agents that offer
	// them.
	Codec  string
	Delta  bool
	Sketch bool

	// Spans requests compact agent-side span blocks on stream_data
	// frames (granted only alongside the v2 codec; a span-blind agent
	// simply streams without them). Tracer must also be set for the
	// spans to land anywhere.
	Spans bool

	// Tracer, when set with Spans, turns every spans-bearing stream_data
	// frame into a completed trace: the frame's decode cost plus the
	// agent's skew-corrected per-channel gather spans. Nil disables
	// per-frame tracing.
	Tracer *telemetry.Tracer

	// Query selects what each agent streams. Zero value streams all
	// elements.
	Query wire.Query

	// Sink receives drained batches. Required.
	Sink Sink
}

func (c Config) withDefaults() Config {
	if c.CadenceMin <= 0 {
		c.CadenceMin = 100 * time.Millisecond
	}
	if c.CadenceMax <= 0 {
		c.CadenceMax = 5 * time.Second
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Throttle <= 0 {
		c.Throttle = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Redial <= 0 {
		c.Redial = time.Second
	}
	if c.FallbackRetry <= 0 {
		c.FallbackRetry = 30 * time.Second
	}
	if c.Query.Elements == nil && !c.Query.All {
		c.Query.All = true
	}
	return c
}

// Manager owns the push streams of a fleet: one Stream per agent, each
// with a bounded queue and a drain goroutine feeding the sink. Register
// every agent with Add before Run.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	streams map[core.MachineID]*Stream

	tel *metrics
}

// NewManager builds a manager; cfg.Sink is required.
func NewManager(cfg Config) *Manager {
	if cfg.Sink == nil {
		panic("ingest: Config.Sink is required")
	}
	return &Manager{cfg: cfg.withDefaults(), streams: make(map[core.MachineID]*Stream)}
}

// Add registers one agent's stream endpoint. Call before Run.
func (m *Manager) Add(machine core.MachineID, addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streams[machine] = &Stream{
		machine: machine,
		addr:    addr,
		cfg:     m.cfg,
		q:       NewQueue(m.cfg.QueueSize),
		tel:     m.tel,
		state:   StateConnecting,
	}
}

// Run starts every registered stream (receiver + drain per agent) and
// blocks until ctx is done, then force-closes connections and waits for
// the goroutines to settle.
func (m *Manager) Run(ctx context.Context) error {
	m.mu.Lock()
	streams := make([]*Stream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.mu.Unlock()

	var wg sync.WaitGroup
	for _, s := range streams {
		wg.Add(2)
		go func(s *Stream) { defer wg.Done(); s.run(ctx) }(s)
		go func(s *Stream) { defer wg.Done(); s.drain(ctx) }(s)
	}
	<-ctx.Done()
	for _, s := range streams {
		s.closeConn()
	}
	wg.Wait()
	return ctx.Err()
}

// Streaming reports whether the machine's push stream is currently
// established — the history Monitor uses this to demote itself to a
// fallback sweeper for pull-only (or stream-down) agents.
func (m *Manager) Streaming(machine core.MachineID) bool {
	m.mu.Lock()
	s := m.streams[machine]
	m.mu.Unlock()
	return s != nil && s.streaming()
}

// Health snapshots every stream, sorted by machine, for the healthz
// surface.
func (m *Manager) Health() []StreamHealth {
	m.mu.Lock()
	streams := make([]*Stream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.mu.Unlock()
	out := make([]StreamHealth, 0, len(streams))
	for _, s := range streams {
		out = append(out, s.Health())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// active counts established streams (telemetry gauge).
func (m *Manager) active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.streams {
		if s.streaming() {
			n++
		}
	}
	return n
}

// queued sums queue depth across agents (telemetry gauge).
func (m *Manager) queued() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.streams {
		n += s.q.Len()
	}
	return n
}
