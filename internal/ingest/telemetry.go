package ingest

import (
	"perfsight/internal/telemetry"
)

// metrics is the ingest path's self-telemetry block, shared by every
// stream of one manager.
type metrics struct {
	frames    *telemetry.Counter
	records   *telemetry.Counter
	drops     *telemetry.Counter
	gaps      *telemetry.Counter
	throttles *telemetry.Counter
	releases  *telemetry.Counter
	redials   *telemetry.Counter
	fallbacks *telemetry.Counter
}

// EnableTelemetry wires the manager's self-metrics into reg and returns
// the manager for chaining. Call before Add so every stream shares the
// block.
func (m *Manager) EnableTelemetry(reg *telemetry.Registry) *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tel = &metrics{
		frames: reg.Counter("perfsight_ingest_frames_total",
			"stream_data batches received from agents"),
		records: reg.Counter("perfsight_ingest_records_total",
			"element records received over push streams"),
		drops: reg.Counter("perfsight_ingest_dropped_batches_total",
			"batches evicted from full ingest queues (drop-oldest)"),
		gaps: reg.Counter("perfsight_ingest_seq_gaps_total",
			"stream sequence discontinuities (frames lost in transit)"),
		throttles: reg.Counter("perfsight_ingest_throttles_total",
			"backpressure throttles sent to agents at the high watermark"),
		releases: reg.Counter("perfsight_ingest_releases_total",
			"backpressure releases sent once queues drained to the low watermark"),
		redials: reg.Counter("perfsight_ingest_redials_total",
			"streaming connections re-dialed after a failure"),
		fallbacks: reg.Counter("perfsight_ingest_fallbacks_total",
			"hello exchanges where the agent declined the stream capability"),
	}
	reg.GaugeFunc("perfsight_ingest_streams_active",
		"agent push streams currently established", func() float64 {
			return float64(m.active())
		})
	reg.GaugeFunc("perfsight_ingest_queue_depth",
		"batches buffered across all agent ingest queues", func() float64 {
			return float64(m.queued())
		})
	for _, s := range m.streams {
		s.tel = m.tel
	}
	return m
}
