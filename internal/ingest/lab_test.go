package ingest

import (
	"context"
	"net"
	"testing"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/anomaly"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/history"
)

// latencyLab is one end-to-end detection-latency rig: a real TCP agent
// hosting one element, a history store + journal, and an anomaly
// pipeline — fed either by push ingest (stream cadence) or by the pull
// monitor (sweep period).
type latencyLab struct {
	elem    *pushElem
	store   *history.Store
	journal *history.Journal
	pipe    *anomaly.Pipeline
	addr    string
}

const labTenant = core.TenantID("t1")

// labSLO is a drop-rate-only SLO so exactly one detector can fire.
func labSLO() anomaly.Config {
	return anomaly.Config{SLO: anomaly.SLOConfig{Default: anomaly.SLO{
		DropRatePPS:      100,
		Window:           anomaly.Duration(time.Second),
		DisableBaselines: true,
	}}}
}

// newLatencyLab starts the agent on a real wall clock (detection latency
// is a record-clock quantity, and here the record clock IS wall time,
// so sample spacing reflects real cadence/sweep pacing).
func newLatencyLab(t *testing.T, allowStream bool) *latencyLab {
	t.Helper()
	elem := &pushElem{id: "m0/pnic", kind: core.KindPNIC}
	a := agent.New("m0", func() int64 { return time.Now().UnixNano() })
	a.AllowStream = allowStream
	a.AllowDelta = true
	a.CadenceMin = 10 * time.Millisecond
	a.CadenceMax = 50 * time.Millisecond
	a.Register(&agent.DirectAdapter{E: elem})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go a.Serve(ln)

	store := history.New(history.Config{})
	journal := history.NewJournal(64)
	return &latencyLab{
		elem:    elem,
		store:   store,
		journal: journal,
		pipe:    anomaly.NewPipeline(store, journal, labSLO()),
		addr:    ln.Addr().String(),
	}
}

// points counts stored samples of the element's drop series.
func (l *latencyLab) points() int {
	return len(l.store.Series(labTenant, "m0/pnic", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0))
}

// detect spikes the drop counter once the series is seeded and returns
// the opening incident's detection latency (record-clock ns).
func (l *latencyLab) detect(t *testing.T) int64 {
	t.Helper()
	waitFor(t, 10*time.Second, "healthy series seeded", func() bool { return l.points() >= 2 })
	l.elem.set(0, 1e9) // drop spike: any sample interval puts it far over SLO
	waitFor(t, 10*time.Second, "journal event", func() bool { return len(l.journal.Since(0, 0)) >= 1 })
	ev := l.journal.Since(0, 0)[0]
	if ev.Detector != anomaly.DetectorDropRate {
		t.Fatalf("fired detector = %q, want drop-rate", ev.Detector)
	}
	in, ok := l.pipe.Incidents.Get(ev.IncidentID)
	if !ok {
		t.Fatalf("incident %d missing", ev.IncidentID)
	}
	if in.DetectionNS <= 0 {
		t.Fatalf("DetectionNS = %d, want > 0", in.DetectionNS)
	}
	return in.DetectionNS
}

// The tentpole's latency claim, as a lab: the same drop spike on the
// same agent is detected within ~one stream cadence under push ingest,
// versus ~one sweep period under pull. Both latencies are record-clock
// gaps from the last healthy sample to the violating one, so the
// assertion is about sample spacing, not scheduler luck.
func TestPushDetectionLatencyBeatsSweep(t *testing.T) {
	const (
		cadence = 50 * time.Millisecond  // push: fixed (min == max)
		sweep   = 400 * time.Millisecond // pull: monitor interval
	)

	// Push: stream feeds Store.Append + Pipeline.Observe on arrival.
	push := newLatencyLab(t, true)
	m := NewManager(Config{
		CadenceMin:  cadence,
		CadenceMax:  cadence,
		DialTimeout: 2 * time.Second,
		Redial:      10 * time.Millisecond,
		Delta:       true,
		Sink: func(_ core.MachineID, recs []core.Record, traceID uint64) {
			for _, r := range recs {
				push.store.Append(labTenant, r)
			}
			push.pipe.ObserveTraced(labTenant, recs, traceID)
		},
	})
	// The agent's own cadence window must admit the fixed 50ms cadence.
	m.Add("m0", push.addr)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	pushNS := push.detect(t)

	// Pull: the classic monitor sweeps the same agent shape.
	pull := newLatencyLab(t, false)
	topo := core.NewTopology()
	topo.Net(labTenant).Add("m0/pnic", core.ElementInfo{Machine: "m0", Kind: core.KindPNIC})
	ctl := controller.New(topo)
	cl := controller.NewTCPClient(pull.addr)
	cl.Timeout = 2 * time.Second
	t.Cleanup(func() { cl.Close() })
	ctl.RegisterAgent("m0", cl)
	mon := history.NewMonitor(ctl, pull.store, history.MonitorConfig{Interval: sweep})
	mon.AfterSweep = pull.pipe.AfterSweep
	mctx, mcancel := context.WithCancel(context.Background())
	mdone := make(chan struct{})
	go func() { defer close(mdone); _ = mon.Run(mctx) }()
	t.Cleanup(func() { mcancel(); <-mdone })
	pullNS := pull.detect(t)

	t.Logf("detection latency: push %v (cadence %v), pull %v (sweep %v)",
		time.Duration(pushNS), cadence, time.Duration(pullNS), sweep)

	// Push detects within 2× the stream cadence (the violating sample
	// lands one cadence after the last healthy one; 2× absorbs timer
	// jitter). Pull cannot do better than the sweep spacing.
	if pushNS > 2*int64(cadence) {
		t.Errorf("push detection latency %v exceeds 2× stream cadence (%v)",
			time.Duration(pushNS), 2*cadence)
	}
	if pullNS < int64(sweep)/2 {
		t.Errorf("pull detection latency %v implausibly below half the sweep period (%v)",
			time.Duration(pullNS), sweep)
	}
	if pushNS >= pullNS {
		t.Errorf("push latency %v not better than pull latency %v",
			time.Duration(pushNS), time.Duration(pullNS))
	}
}
