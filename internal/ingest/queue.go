// Package ingest is the controller-side receive path for agent push
// streaming: it owns one persistent connection per agent, converts each
// to a stream_data push stream (negotiated through the codec hello's
// stream capability), buffers arriving batches in bounded per-agent
// queues, and drains them into the flight recorder so the anomaly
// pipeline evaluates on arrival instead of per sweep. Agents that do not
// grant the stream capability stay on the pull path — the history
// Monitor remains their fallback sweeper.
package ingest

import (
	"context"
	"sync/atomic"

	"perfsight/internal/core"
)

// Batch is one pushed stream_data frame's payload: the records of a
// single agent gather, in arrival order. TraceID references the frame's
// completed trace when the agent piggybacked spans (0 otherwise).
type Batch struct {
	Machine core.MachineID
	Seq     uint64
	TraceID uint64
	Records []core.Record
}

// Queue is a bounded batch queue with drop-oldest overflow: when the
// drain (store append + anomaly evaluation) falls behind the stream, the
// newest data wins and the eviction is counted — PerfSight diagnoses
// from fresh counters, so an old batch is strictly less valuable than
// the one behind it. One producer (the stream reader) and one consumer
// (the drain) are assumed; Len and Dropped may be read from anywhere.
type Queue struct {
	ch      chan Batch
	dropped atomic.Uint64
}

// NewQueue builds a queue holding up to size batches (default 64).
func NewQueue(size int) *Queue {
	if size <= 0 {
		size = 64
	}
	return &Queue{ch: make(chan Batch, size)}
}

// Push enqueues b, evicting oldest batches as needed, and reports
// whether anything was dropped to make room.
func (q *Queue) Push(b Batch) (dropped bool) {
	for {
		select {
		case q.ch <- b:
			return dropped
		default:
		}
		select {
		case <-q.ch:
			q.dropped.Add(1)
			dropped = true
		default:
			// The consumer raced the eviction away; retry the send.
		}
	}
}

// Take blocks until a batch is available or ctx is done.
func (q *Queue) Take(ctx context.Context) (Batch, bool) {
	select {
	case b := <-q.ch:
		return b, true
	case <-ctx.Done():
		return Batch{}, false
	}
}

// Len returns the number of queued batches.
func (q *Queue) Len() int { return len(q.ch) }

// Cap returns the queue bound.
func (q *Queue) Cap() int { return cap(q.ch) }

// Dropped returns the cumulative count of evicted batches.
func (q *Queue) Dropped() uint64 { return q.dropped.Load() }

// high and low are the backpressure watermarks: crossing high sends the
// agent a throttle (raising its cadence floor), and draining back to low
// releases it.
func (q *Queue) high() int {
	h := cap(q.ch) * 3 / 4
	if h < 1 {
		h = 1
	}
	return h
}

func (q *Queue) low() int { return cap(q.ch) / 4 }
