package diagnosis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
)

// MBState is a middlebox's inferred state (§5.2, Figure 7).
type MBState int

const (
	StateNormal MBState = iota
	StateReadBlocked
	StateWriteBlocked
)

func (s MBState) String() string {
	switch s {
	case StateReadBlocked:
		return "ReadBlocked"
	case StateWriteBlocked:
		return "WriteBlocked"
	}
	return "Normal"
}

// MBMetrics is one middlebox's measured I/O rates over the window — the
// b/t_input, b/t_output values the Fig 12 tables report.
type MBMetrics struct {
	State       MBState `json:"state"`
	InRateBps   float64 `json:"in_rate_bps"`
	OutRateBps  float64 `json:"out_rate_bps"`
	InActive    bool    `json:"in_active"`  // the input method accumulated time
	OutActive   bool    `json:"out_active"` // the output method accumulated time
	CapacityBps float64 `json:"capacity_bps"`
}

// PruneStep records one pruning decision of Algorithm 2 (lines 13–17):
// which middlebox's state fired, and which candidates it removed. The
// trace is the evidence a diagnosis event carries so an operator can
// audit why the surviving root causes survived.
type PruneStep struct {
	Middlebox core.ElementID `json:"middlebox"`
	State     MBState        `json:"state"`
	// Removed lists the candidates this step deleted (the middlebox
	// itself plus its successors or predecessors), sorted; candidates
	// already removed by an earlier step are not repeated.
	Removed []core.ElementID `json:"removed"`
}

// RootCauseReport is the result of Algorithm 2.
type RootCauseReport struct {
	// Metrics holds per-middlebox states and rates.
	Metrics map[core.ElementID]MBMetrics `json:"metrics"`
	// RootCauses are the candidates remaining after pruning, sorted.
	RootCauses []core.ElementID `json:"root_causes"`
	// SourceUnderloaded is set when every chain member was pruned as
	// ReadBlocked: the traffic source itself is underloaded (Fig 12(c)).
	SourceUnderloaded bool `json:"source_underloaded"`
	// Overloaded flags root causes whose predecessors are WriteBlocked —
	// the Figure 7 "Overloaded" label.
	Overloaded map[core.ElementID]bool `json:"overloaded,omitempty"`
	// Pruning is the ordered trace of pruning decisions.
	Pruning []PruneStep `json:"pruning,omitempty"`
}

// String renders an operator summary.
func (r *RootCauseReport) String() string {
	var b strings.Builder
	if r.SourceUnderloaded {
		b.WriteString("all middleboxes ReadBlocked: traffic source is Underloaded")
	} else if len(r.RootCauses) == 0 {
		b.WriteString("no root cause isolated")
	} else {
		fmt.Fprintf(&b, "root cause(s):")
		for _, id := range r.RootCauses {
			label := "bottleneck"
			if r.Overloaded[id] {
				label = "Overloaded"
			}
			fmt.Fprintf(&b, " %s(%s)", id, label)
		}
	}
	return b.String()
}

// LocateRootCause implements Algorithm 2: fetch every middlebox's
// input/output bytes and times over window T, classify each as
// ReadBlocked (b_in/t_in < C) or WriteBlocked (b_out/t_out < C), then
// prune each ReadBlocked middlebox together with its successors and each
// WriteBlocked middlebox together with its predecessors. What remains is
// the plausible root cause set.
func LocateRootCause(ctl *controller.Controller, tid core.TenantID, T time.Duration) (rep *RootCauseReport, err error) {
	start := time.Now()
	defer func() { observeRun("rootcause", start, rootCauseVerdict(rep, err)) }()
	mbs := ctl.TenantElements(tid, func(_ core.ElementID, info core.ElementInfo) bool {
		return info.Kind == core.KindMiddlebox
	})
	if len(mbs) == 0 {
		return nil, fmt.Errorf("diagnosis: tenant %q has no middleboxes", tid)
	}
	ivs, err := ctl.SampleInterval(tid, mbs, T)
	if len(ivs) == 0 {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("diagnosis: no middleboxes of tenant %q answered", tid)
	}
	// Partial data (churn, a dead agent) is still diagnosable.
	net := ctl.Topology().Tenants[tid]
	return AnalyzeChainIntervals(ivs, net), nil
}

// AnalyzeChainIntervals runs Algorithm 2 over pre-collected middlebox
// intervals and the tenant's chain topology.
func AnalyzeChainIntervals(ivs map[core.ElementID]controller.Interval, net *core.VirtualNet) *RootCauseReport {
	rep := &RootCauseReport{
		Metrics:    make(map[core.ElementID]MBMetrics, len(ivs)),
		Overloaded: make(map[core.ElementID]bool),
	}

	cand := make(map[core.ElementID]bool, len(ivs))
	for id := range ivs {
		cand[id] = true
	}

	ids := make([]core.ElementID, 0, len(ivs))
	for id := range ivs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		iv := ivs[id]
		m := MBMetrics{CapacityBps: iv.Cur.GetOr(core.AttrCapacityBps, 0)}
		m.InRateBps, m.InActive = iv.InRate()
		m.OutRateBps, m.OutActive = iv.OutRate()

		C := m.CapacityBps
		dIn := iv.Delta(core.AttrInBytes)
		dtIn := iv.Delta(core.AttrInTimeNS) / 1e9
		dOut := iv.Delta(core.AttrOutBytes)
		dtOut := iv.Delta(core.AttrOutTimeNS) / 1e9
		switch {
		// The paper's line 12 test: t2i − t1i > (b2i − b1i)/C.
		case C > 0 && m.InActive && dtIn > dIn*8/C:
			m.State = StateReadBlocked
		// Line 15: t2o − t1o > (b2o − b1o)/C.
		case C > 0 && m.OutActive && dtOut > dOut*8/C:
			m.State = StateWriteBlocked
		default:
			m.State = StateNormal
		}
		rep.Metrics[id] = m
	}

	// Pruning passes (lines 13–17). Each step's removals are recorded so
	// diagnosis events can show why the survivors survived.
	prune := func(id core.ElementID, state MBState, also []core.ElementID) {
		step := PruneStep{Middlebox: id, State: state}
		if cand[id] {
			delete(cand, id)
			step.Removed = append(step.Removed, id)
		}
		for _, other := range also {
			if cand[other] {
				delete(cand, other)
				step.Removed = append(step.Removed, other)
			}
		}
		sort.Slice(step.Removed, func(i, j int) bool { return step.Removed[i] < step.Removed[j] })
		rep.Pruning = append(rep.Pruning, step)
	}
	for _, id := range ids {
		switch rep.Metrics[id].State {
		case StateReadBlocked:
			var also []core.ElementID
			if net != nil {
				also = net.Successors(id)
			}
			prune(id, StateReadBlocked, also)
		case StateWriteBlocked:
			var also []core.ElementID
			if net != nil {
				also = net.Predecessors(id)
			}
			prune(id, StateWriteBlocked, also)
		}
	}

	for id := range cand {
		rep.RootCauses = append(rep.RootCauses, id)
	}
	sort.Slice(rep.RootCauses, func(i, j int) bool { return rep.RootCauses[i] < rep.RootCauses[j] })

	if len(rep.RootCauses) == 0 {
		// Every middlebox pruned: with WriteBlocked members the bottleneck
		// is beyond the instrumented chain; with only ReadBlocked members
		// the source is underloaded (Fig 12(c)).
		anyWrite := false
		for _, m := range rep.Metrics {
			if m.State == StateWriteBlocked {
				anyWrite = true
				break
			}
		}
		rep.SourceUnderloaded = !anyWrite
	}

	// Label remaining causes Overloaded when upstream pressure is visible.
	for _, id := range rep.RootCauses {
		if net == nil {
			break
		}
		for _, pred := range net.Predecessors(id) {
			if m, ok := rep.Metrics[pred]; ok && m.State == StateWriteBlocked {
				rep.Overloaded[id] = true
				break
			}
		}
	}
	return rep
}
