// Package diagnosis implements PerfSight's two diagnostic applications
// (§5): contention/bottleneck detection over virtualization-stack packet
// losses (Algorithm 1, with the Table 1 rule book), and root-cause
// middlebox location under propagation (Algorithm 2, over middlebox
// ReadBlocked/WriteBlocked states).
package diagnosis

import (
	"fmt"

	"perfsight/internal/core"
)

// Resource enumerates the Table 1 "Resource in Shortage" rows.
type Resource int

const (
	ResourceUnknown Resource = iota
	ResourceCPU
	ResourceMemorySpace
	ResourceMemoryBandwidth
	ResourceIncomingBandwidth
	ResourceOutgoingBandwidth
	// ResourcePCPUBacklog is contention on the shared per-CPU backlog
	// queues themselves (the §7.2 case-1 small-packet flood).
	ResourcePCPUBacklog
	// ResourceVMBottleneck is a single VM short of its own allocation
	// (CPU or bandwidth) rather than stack-level contention.
	ResourceVMBottleneck
)

var resourceNames = map[Resource]string{
	ResourceUnknown:           "unknown",
	ResourceCPU:               "cpu",
	ResourceMemorySpace:       "memory-space",
	ResourceMemoryBandwidth:   "memory-bandwidth",
	ResourceIncomingBandwidth: "incoming-bandwidth",
	ResourceOutgoingBandwidth: "outgoing-bandwidth",
	ResourcePCPUBacklog:       "pcpu-backlog-queue",
	ResourceVMBottleneck:      "vm-bottleneck",
}

func (r Resource) String() string {
	if s, ok := resourceNames[r]; ok {
		return s
	}
	return fmt.Sprintf("resource(%d)", int(r))
}

// DropLocation enumerates the Table 1 "Packet Drop Location" symptoms.
type DropLocation int

const (
	LocNone DropLocation = iota
	LocPNIC
	LocPNICDriver
	LocBacklogEnqueue
	LocTUNAggregated // drops at the TUNs of multiple VMs
	LocTUNIndividual // drops confined to one VM's TUN
	LocVSwitch
	LocGuestSocket
	// LocMiddlebox is loss inside middlebox software itself — e.g. an
	// IDS whose capture ring overflows when inspection cannot keep up.
	LocMiddlebox
)

var locationNames = map[DropLocation]string{
	LocNone:           "none",
	LocPNIC:           "pnic",
	LocPNICDriver:     "pnic-driver",
	LocBacklogEnqueue: "backlog-enqueue",
	LocTUNAggregated:  "tun-aggregated",
	LocTUNIndividual:  "tun-individual",
	LocVSwitch:        "vswitch",
	LocGuestSocket:    "guest-socket",
	LocMiddlebox:      "middlebox",
}

func (l DropLocation) String() string {
	if s, ok := locationNames[l]; ok {
		return s
	}
	return fmt.Sprintf("location(%d)", int(l))
}

// LocationOfKind maps an element kind to its drop-location symptom.
func LocationOfKind(k core.ElementKind, multiVM bool) DropLocation {
	switch k {
	case core.KindPNIC:
		return LocPNIC
	case core.KindPNICDriver:
		return LocPNICDriver
	case core.KindPCPUBacklog:
		return LocBacklogEnqueue
	case core.KindTUN:
		if multiVM {
			return LocTUNAggregated
		}
		return LocTUNIndividual
	case core.KindVSwitch:
		return LocVSwitch
	case core.KindGuestSocket:
		return LocGuestSocket
	case core.KindMiddlebox:
		return LocMiddlebox
	}
	return LocNone
}

// Evidence carries the secondary symptoms the rule book consults to
// disambiguate locations shared by several resources (§5.1: "the operator
// can combine this with other symptoms such as CPU utilization and NIC
// throughput").
type Evidence struct {
	CPUUtil    float64 `json:"cpu_util"`    // machine CPU utilization, 0..1
	MembusUtil float64 `json:"membus_util"` // memory-bus utilization, 0..1
	PNICRxBps  float64 `json:"pnic_rx_bps"`
	PNICTxBps  float64 `json:"pnic_tx_bps"`
	PNICCapBps float64 `json:"pnic_cap_bps"`
	// AvgPktSize is the mean packet size seen at the pNIC over the window
	// (Figure 6 GetAvgPktSize); a small value flags the §7.2 case-1
	// small-packet flood that exhausts per-packet processing long before
	// bytes exhaust the wire.
	AvgPktSize float64 `json:"avg_pkt_size"`
}

// utilization thresholds for disambiguation.
const (
	hotCPU = 0.85
	hotBus = 0.80
	hotNIC = 0.90
)

// RuleBook maps a drop location to the candidate resources in shortage
// (Table 1) and, given evidence, the single most likely root cause.
type RuleBook struct{}

// Candidates returns every Table 1 resource consistent with the location.
func (RuleBook) Candidates(loc DropLocation) []Resource {
	switch loc {
	case LocPNIC:
		return []Resource{ResourceIncomingBandwidth}
	case LocPNICDriver:
		return []Resource{ResourceMemorySpace}
	case LocBacklogEnqueue:
		return []Resource{ResourceOutgoingBandwidth, ResourcePCPUBacklog}
	case LocTUNAggregated:
		return []Resource{ResourceCPU, ResourceMemoryBandwidth, ResourceOutgoingBandwidth}
	case LocTUNIndividual:
		return []Resource{ResourceVMBottleneck}
	case LocGuestSocket:
		return []Resource{ResourceVMBottleneck}
	case LocMiddlebox:
		// Application-level loss: either the machine's CPU is contended
		// (the app's grant shrank) or the VM/app itself is undersized.
		return []Resource{ResourceCPU, ResourceVMBottleneck}
	}
	return nil
}

// Infer narrows the candidates using the evidence.
func (rb RuleBook) Infer(loc DropLocation, ev Evidence) Resource {
	cands := rb.Candidates(loc)
	if len(cands) == 0 {
		return ResourceUnknown
	}
	if len(cands) == 1 {
		return cands[0]
	}
	switch loc {
	case LocBacklogEnqueue:
		// §7.2 case 1: if the NIC is not saturated, outgoing bandwidth is
		// not the problem — the pCPU backlog queues are contended, and a
		// small average packet size corroborates a packet-rate flood.
		if ev.PNICCapBps > 0 && ev.PNICTxBps >= hotNIC*ev.PNICCapBps {
			return ResourceOutgoingBandwidth
		}
		return ResourcePCPUBacklog
	case LocTUNAggregated:
		if ev.PNICCapBps > 0 && ev.PNICTxBps >= hotNIC*ev.PNICCapBps {
			return ResourceOutgoingBandwidth
		}
		// Memory-bus saturation is the more specific signal: streaming
		// hogs also burn CPU, so a hot bus with hot CPU still means the
		// bus is the contended resource.
		if ev.MembusUtil >= hotBus {
			return ResourceMemoryBandwidth
		}
		if ev.CPUUtil >= hotCPU {
			return ResourceCPU
		}
		// No explicit symptom: memory bandwidth is the contention that
		// hides (§2.3) — report it while keeping all candidates visible.
		return ResourceMemoryBandwidth
	case LocMiddlebox:
		// A hot machine CPU says the app's grant was squeezed by
		// contention; otherwise the app is simply undersized for its load.
		if ev.CPUUtil >= hotCPU {
			return ResourceCPU
		}
		return ResourceVMBottleneck
	}
	return cands[0]
}
