package diagnosis

import (
	"strings"
	"testing"

	"perfsight/internal/controller"
	"perfsight/internal/core"
)

func TestLocationOfKind(t *testing.T) {
	for _, tc := range []struct {
		kind    core.ElementKind
		multiVM bool
		want    DropLocation
	}{
		{core.KindPNIC, false, LocPNIC},
		{core.KindPNICDriver, false, LocPNICDriver},
		{core.KindPCPUBacklog, false, LocBacklogEnqueue},
		{core.KindTUN, true, LocTUNAggregated},
		{core.KindTUN, false, LocTUNIndividual},
		{core.KindVSwitch, false, LocVSwitch},
		{core.KindGuestSocket, false, LocGuestSocket},
		{core.KindMiddlebox, false, LocMiddlebox},
		{core.KindVNIC, false, LocNone},
	} {
		if got := LocationOfKind(tc.kind, tc.multiVM); got != tc.want {
			t.Errorf("LocationOfKind(%v, %v) = %v; want %v", tc.kind, tc.multiVM, got, tc.want)
		}
	}
}

func TestRuleBookCandidates(t *testing.T) {
	var rb RuleBook
	if got := rb.Candidates(LocPNIC); len(got) != 1 || got[0] != ResourceIncomingBandwidth {
		t.Fatalf("pNIC candidates: %v", got)
	}
	agg := rb.Candidates(LocTUNAggregated)
	if len(agg) < 2 {
		t.Fatalf("TUN-aggregated should be ambiguous: %v", agg)
	}
	if got := rb.Candidates(LocNone); got != nil {
		t.Fatalf("LocNone candidates: %v", got)
	}
}

func TestRuleBookDisambiguation(t *testing.T) {
	var rb RuleBook
	// Backlog drops with a saturated NIC: outgoing bandwidth.
	ev := Evidence{PNICCapBps: 1e9, PNICTxBps: 0.95e9}
	if got := rb.Infer(LocBacklogEnqueue, ev); got != ResourceOutgoingBandwidth {
		t.Fatalf("saturated NIC: %v", got)
	}
	// Backlog drops with an idle NIC: backlog-queue contention (Fig 10).
	ev = Evidence{PNICCapBps: 1e9, PNICTxBps: 0.1e9}
	if got := rb.Infer(LocBacklogEnqueue, ev); got != ResourcePCPUBacklog {
		t.Fatalf("idle NIC: %v", got)
	}
	// TUN aggregated with a hot bus: memory bandwidth, even with hot CPU
	// (streaming hogs burn CPU too).
	ev = Evidence{MembusUtil: 0.99, CPUUtil: 0.95}
	if got := rb.Infer(LocTUNAggregated, ev); got != ResourceMemoryBandwidth {
		t.Fatalf("hot bus: %v", got)
	}
	// TUN aggregated with only hot CPU: CPU.
	ev = Evidence{MembusUtil: 0.1, CPUUtil: 0.95}
	if got := rb.Infer(LocTUNAggregated, ev); got != ResourceCPU {
		t.Fatalf("hot CPU: %v", got)
	}
	// No explicit symptom: the hidden contention (memory bandwidth).
	if got := rb.Infer(LocTUNAggregated, Evidence{}); got != ResourceMemoryBandwidth {
		t.Fatalf("no symptom: %v", got)
	}
	if got := rb.Infer(LocTUNIndividual, Evidence{}); got != ResourceVMBottleneck {
		t.Fatalf("individual: %v", got)
	}
}

// iv builds a one-second interval with the given counter deltas.
func iv(el core.ElementID, kind core.ElementKind, attrs map[core.AttrID]float64) controller.Interval {
	prev := core.Record{Timestamp: 0, Element: el}
	cur := core.Record{Timestamp: 1e9, Element: el}
	prev.Set(core.AttrKind, float64(kind))
	cur.Set(core.AttrKind, float64(kind))
	for k, v := range attrs {
		prev.Set(k, 0)
		cur.Set(k, v)
	}
	return controller.Interval{Prev: prev, Cur: cur}
}

func TestAnalyzeStackNoLoss(t *testing.T) {
	ivs := map[core.ElementID]controller.Interval{
		"m0/pnic": iv("m0/pnic", core.KindPNIC, map[core.AttrID]float64{core.AttrDropPackets: 0}),
	}
	rep := AnalyzeStackIntervals(ivs)
	if rep.Scope != ScopeNone || rep.TopLocation != LocNone {
		t.Fatalf("clean stack diagnosed: %s", rep)
	}
	if !strings.Contains(rep.String(), "no packet loss") {
		t.Fatalf("summary: %s", rep)
	}
}

func TestAnalyzeStackNoiseFloor(t *testing.T) {
	ivs := map[core.ElementID]controller.Interval{
		"m0/pnic": iv("m0/pnic", core.KindPNIC, map[core.AttrID]float64{core.AttrDropPackets: 3}),
	}
	if rep := AnalyzeStackIntervals(ivs); rep.Scope != ScopeNone {
		t.Fatalf("3 packets should be under the noise floor: %s", rep)
	}
}

func TestAnalyzeStackRanksAndScopes(t *testing.T) {
	ivs := map[core.ElementID]controller.Interval{
		"m0/pnic":         iv("m0/pnic", core.KindPNIC, map[core.AttrID]float64{core.AttrDropPackets: 10}),
		"m0/vm0/tun":      iv("m0/vm0/tun", core.KindTUN, map[core.AttrID]float64{core.AttrDropPackets: 500}),
		"m0/vm1/tun":      iv("m0/vm1/tun", core.KindTUN, map[core.AttrID]float64{core.AttrDropPackets: 400}),
		"m0/cpu0/backlog": iv("m0/cpu0/backlog", core.KindPCPUBacklog, map[core.AttrID]float64{core.AttrDropPackets: 0}),
	}
	rep := AnalyzeStackIntervals(ivs)
	if rep.Ranked[0].Element != "m0/vm0/tun" {
		t.Fatalf("ranking: %+v", rep.Ranked)
	}
	if rep.Scope != ScopeContention || rep.TopLocation != LocTUNAggregated {
		t.Fatalf("scope %v loc %v; want contention/aggregated", rep.Scope, rep.TopLocation)
	}
	if len(rep.DroppingVMs) != 2 {
		t.Fatalf("dropping VMs: %v", rep.DroppingVMs)
	}
}

func TestAnalyzeStackSingleVMBottleneck(t *testing.T) {
	ivs := map[core.ElementID]controller.Interval{
		"m0/vm1/tun": iv("m0/vm1/tun", core.KindTUN, map[core.AttrID]float64{core.AttrDropPackets: 100}),
	}
	rep := AnalyzeStackIntervals(ivs)
	if rep.Scope != ScopeBottleneck || rep.BottleneckVM != "vm1" {
		t.Fatalf("bottleneck not detected: %s", rep)
	}
	if rep.Inferred != ResourceVMBottleneck {
		t.Fatalf("inferred %v", rep.Inferred)
	}
}

func TestAnalyzeStackHotMachineOverridesIndividual(t *testing.T) {
	hostIv := iv("m0/host", core.KindUnknown, nil)
	hostIv.Cur.Set(core.AttrMembusUtil, 0.95)
	ivs := map[core.ElementID]controller.Interval{
		"m0/vm1/tun": iv("m0/vm1/tun", core.KindTUN, map[core.AttrID]float64{core.AttrDropPackets: 100}),
		"m0/host":    hostIv,
	}
	rep := AnalyzeStackIntervals(ivs)
	if rep.TopLocation != LocTUNAggregated || rep.Scope != ScopeContention {
		t.Fatalf("hot machine should reclassify as contention: %s", rep)
	}
}

// mbIv builds a middlebox interval from in/out byte+time deltas.
func mbIv(el core.ElementID, capBps, inB, inNS, outB, outNS float64) controller.Interval {
	prev := core.Record{Timestamp: 0, Element: el}
	cur := core.Record{Timestamp: 1e9, Element: el}
	for _, r := range []*core.Record{&prev, &cur} {
		r.Set(core.AttrKind, float64(core.KindMiddlebox))
		r.Set(core.AttrCapacityBps, capBps)
	}
	prev.Set(core.AttrInBytes, 0)
	prev.Set(core.AttrInTimeNS, 0)
	prev.Set(core.AttrOutBytes, 0)
	prev.Set(core.AttrOutTimeNS, 0)
	cur.Set(core.AttrInBytes, inB)
	cur.Set(core.AttrInTimeNS, inNS)
	cur.Set(core.AttrOutBytes, outB)
	cur.Set(core.AttrOutTimeNS, outNS)
	return controller.Interval{Prev: prev, Cur: cur}
}

func chainNet(chains ...[]core.ElementID) *core.VirtualNet {
	n := &core.VirtualNet{Elements: map[core.ElementID]core.ElementInfo{}}
	n.Chains = chains
	return n
}

const C = 100e6 // 100 Mbps vNIC

func TestAlgorithm2ReadBlockedPruning(t *testing.T) {
	// a -> b -> c; a is ReadBlocked (slow source): everyone pruned.
	ivs := map[core.ElementID]controller.Interval{
		// 1 MB in over 0.9 s of input time: 8.9 Mbps < C -> ReadBlocked.
		"a": mbIv("a", C, 1e6, 0.9e9, 1e6, 0.01e9),
		"b": mbIv("b", C, 1e6, 0.9e9, 1e6, 0.01e9),
		"c": mbIv("c", C, 1e6, 0.9e9, 0, 0),
	}
	rep := AnalyzeChainIntervals(ivs, chainNet([]core.ElementID{"a", "b", "c"}))
	if !rep.SourceUnderloaded {
		t.Fatalf("want SourceUnderloaded: %s", rep)
	}
	if len(rep.RootCauses) != 0 {
		t.Fatalf("root causes: %v", rep.RootCauses)
	}
}

func TestAlgorithm2WriteBlockedIsolatesBottleneck(t *testing.T) {
	// a, b WriteBlocked; c neither (CPU-bound server): c is the cause.
	ivs := map[core.ElementID]controller.Interval{
		// Output trickles over most of the window: b/t_out < C.
		"a": mbIv("a", C, 5e7, 0.004e9, 1e6, 0.9e9),
		"b": mbIv("b", C, 5e7, 0.004e9, 1e6, 0.9e9),
		// c reads at memcpy speed (tiny time), no output counters.
		"c": mbIv("c", C, 5e6, 0.0004e9, 0, 0),
	}
	rep := AnalyzeChainIntervals(ivs, chainNet([]core.ElementID{"a", "b", "c"}))
	if len(rep.RootCauses) != 1 || rep.RootCauses[0] != "c" {
		t.Fatalf("root causes %v; want [c] (%+v)", rep.RootCauses, rep.Metrics)
	}
	if rep.Metrics["a"].State != StateWriteBlocked || rep.Metrics["b"].State != StateWriteBlocked {
		t.Fatalf("states: %+v", rep.Metrics)
	}
	if !rep.Overloaded["c"] {
		t.Fatal("c should be labelled Overloaded (WriteBlocked predecessors)")
	}
}

func TestAlgorithm2MiddleOfChain(t *testing.T) {
	// a WriteBlocked, c ReadBlocked, b neither: classic Fig 7(b) shape.
	ivs := map[core.ElementID]controller.Interval{
		"a": mbIv("a", C, 5e7, 0.004e9, 1e6, 0.9e9),
		"b": mbIv("b", C, 1e6, 0.0001e9, 1e6, 0.0001e9),
		"c": mbIv("c", C, 1e6, 0.9e9, 1e6, 0.001e9),
	}
	rep := AnalyzeChainIntervals(ivs, chainNet([]core.ElementID{"a", "b", "c"}))
	if len(rep.RootCauses) != 1 || rep.RootCauses[0] != "b" {
		t.Fatalf("root causes %v; want [b]", rep.RootCauses)
	}
}

func TestAlgorithm2ReadTakesPriorityOverWrite(t *testing.T) {
	// Both tests true: the paper's elif makes ReadBlocked win.
	ivs := map[core.ElementID]controller.Interval{
		"a": mbIv("a", C, 1e6, 0.5e9, 1e6, 0.5e9),
	}
	rep := AnalyzeChainIntervals(ivs, chainNet([]core.ElementID{"a"}))
	if rep.Metrics["a"].State != StateReadBlocked {
		t.Fatalf("state %v; want ReadBlocked", rep.Metrics["a"].State)
	}
}

func TestAlgorithm2InactiveCountersAreNormal(t *testing.T) {
	ivs := map[core.ElementID]controller.Interval{
		"a": mbIv("a", C, 0, 0, 0, 0),
	}
	rep := AnalyzeChainIntervals(ivs, chainNet([]core.ElementID{"a"}))
	if rep.Metrics["a"].State != StateNormal {
		t.Fatalf("idle middlebox state %v", rep.Metrics["a"].State)
	}
	if len(rep.RootCauses) != 1 {
		t.Fatal("idle middlebox should remain a candidate")
	}
	if rep.SourceUnderloaded {
		t.Fatal("nothing was pruned; not underloaded")
	}
}

func TestAlgorithm2NoCapacityNoClassification(t *testing.T) {
	ivs := map[core.ElementID]controller.Interval{
		"a": mbIv("a", 0, 1e6, 0.9e9, 0, 0), // capacity unknown
	}
	rep := AnalyzeChainIntervals(ivs, chainNet([]core.ElementID{"a"}))
	if rep.Metrics["a"].State != StateNormal {
		t.Fatal("cannot classify without C")
	}
}

func TestStateStrings(t *testing.T) {
	if StateReadBlocked.String() != "ReadBlocked" || StateWriteBlocked.String() != "WriteBlocked" ||
		StateNormal.String() != "Normal" {
		t.Fatal("state names")
	}
	if ScopeContention.String() != "contention" || ScopeBottleneck.String() != "bottleneck" {
		t.Fatal("scope names")
	}
	if ResourceMemoryBandwidth.String() != "memory-bandwidth" {
		t.Fatal("resource names")
	}
	if LocTUNAggregated.String() != "tun-aggregated" {
		t.Fatal("location names")
	}
}
