package diagnosis

import (
	"encoding/json"
	"fmt"

	"perfsight/internal/core"
)

// The report types marshal to a stable, human-readable JSON schema: every
// enum renders as its String() name rather than a bare int, so the
// /diagnose endpoint, the event journal, and the perfsight diag CLI all
// speak the same self-describing format and a stored event stays
// meaningful across versions even if enum ordinals shift. Unmarshalling
// accepts both the name and the legacy ordinal.

// MarshalJSON renders the scope name ("none", "contention", "bottleneck").
func (s Scope) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts a scope name or ordinal.
func (s *Scope) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		var n int
		if err := json.Unmarshal(b, &n); err != nil {
			return fmt.Errorf("diagnosis: bad scope %s", b)
		}
		*s = Scope(n)
		return nil
	}
	for _, v := range []Scope{ScopeNone, ScopeContention, ScopeBottleneck} {
		if v.String() == name {
			*s = v
			return nil
		}
	}
	return fmt.Errorf("diagnosis: unknown scope %q", name)
}

// MarshalJSON renders the Table 1 drop-location name.
func (l DropLocation) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON accepts a drop-location name or ordinal.
func (l *DropLocation) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		var n int
		if err := json.Unmarshal(b, &n); err != nil {
			return fmt.Errorf("diagnosis: bad drop location %s", b)
		}
		*l = DropLocation(n)
		return nil
	}
	for v, s := range locationNames {
		if s == name {
			*l = v
			return nil
		}
	}
	return fmt.Errorf("diagnosis: unknown drop location %q", name)
}

// MarshalJSON renders the Table 1 resource name.
func (r Resource) MarshalJSON() ([]byte, error) { return json.Marshal(r.String()) }

// UnmarshalJSON accepts a resource name or ordinal.
func (r *Resource) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		var n int
		if err := json.Unmarshal(b, &n); err != nil {
			return fmt.Errorf("diagnosis: bad resource %s", b)
		}
		*r = Resource(n)
		return nil
	}
	for v, s := range resourceNames {
		if s == name {
			*r = v
			return nil
		}
	}
	return fmt.Errorf("diagnosis: unknown resource %q", name)
}

// MarshalJSON renders the Figure 7 state name.
func (s MBState) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts a state name or ordinal.
func (s *MBState) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		var n int
		if err := json.Unmarshal(b, &n); err != nil {
			return fmt.Errorf("diagnosis: bad middlebox state %s", b)
		}
		*s = MBState(n)
		return nil
	}
	for _, v := range []MBState{StateNormal, StateReadBlocked, StateWriteBlocked} {
		if v.String() == name {
			*s = v
			return nil
		}
	}
	return fmt.Errorf("diagnosis: unknown middlebox state %q", name)
}

// elementLossJSON is the wire form of ElementLoss: the kind renders as
// its name, matching the other enums.
type elementLossJSON struct {
	Element core.ElementID `json:"element"`
	Kind    string         `json:"kind"`
	VM      core.VMID      `json:"vm,omitempty"`
	Loss    float64        `json:"loss"`
}

// MarshalJSON renders the element kind by name.
func (e ElementLoss) MarshalJSON() ([]byte, error) {
	return json.Marshal(elementLossJSON{Element: e.Element, Kind: e.Kind.String(), VM: e.VM, Loss: e.Loss})
}

// UnmarshalJSON parses the named-kind form.
func (e *ElementLoss) UnmarshalJSON(b []byte) error {
	var w elementLossJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*e = ElementLoss{Element: w.Element, Kind: core.KindFromString(w.Kind), VM: w.VM, Loss: w.Loss}
	return nil
}
