package diagnosis

import (
	"fmt"
	"sort"
	"strings"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
)

// FlowStat is one per-flow traffic entry of a flow report.
type FlowStat struct {
	Flow  string  `json:"flow"`
	Pkts  float64 `json:"pkts"`
	Bytes float64 `json:"bytes"`
	// Exact is true when Pkts/Bytes are the flow's true counts: always on
	// the legacy enumeration path, and on the sketch path for heavy
	// hitters tracked since their first packet. When false, the values
	// overcount by at most ErrPkts/ErrBytes.
	Exact    bool    `json:"exact"`
	ErrPkts  float64 `json:"err_pkts,omitempty"`
	ErrBytes float64 `json:"err_bytes,omitempty"`
}

// FlowReport is the per-element flow ranking consumed by ranked-drop
// evidence, the /flows endpoint and `perfsight flows`.
type FlowReport struct {
	Element core.ElementID `json:"element"`
	// Source is "sketch" (constant-memory summary) or "legacy" (per-rule
	// enumeration attrs).
	Source string     `json:"source"`
	Flows  []FlowStat `json:"flows,omitempty"`
	// Sketch-only fields: the summary epoch, the traffic totals, and the
	// count-min error bound ε·N that applies to any flow absent from the
	// top-k (with probability 1−DeltaProb).
	Epoch        uint64  `json:"epoch,omitempty"`
	TotalPkts    uint64  `json:"total_pkts,omitempty"`
	TotalBytes   uint64  `json:"total_bytes,omitempty"`
	Epsilon      float64 `json:"epsilon,omitempty"`
	DeltaProb    float64 `json:"delta_prob,omitempty"`
	ErrBoundPkts float64 `json:"err_bound_pkts,omitempty"`
}

const legacyRulePrefix = "rule_"

// TopFlows ranks the element record's per-flow traffic, heaviest first,
// truncated to k (k <= 0 means all). It prefers the constant-size
// flow_sketch summary attr — heavy hitters with exactness flags plus the
// ε·N bound for everything else — and falls back to enumerating legacy
// `rule_<flow>_packets`/`_bytes` attrs from old agents, so mixed-version
// fleets rank either way. Records with neither return ok=false.
func TopFlows(rec core.Record, k int) (*FlowReport, bool) {
	// History may surface the sketch attr's epoch series without its
	// payload (queries into deep past); that falls through to the legacy
	// scan rather than erroring.
	if a, ok := rec.GetAttr(core.SketchAttrID()); ok && len(a.Payload) > 0 {
		sum, err := dataplane.DecodeSketch(a.Payload)
		if err != nil {
			return nil, false
		}
		rep := &FlowReport{
			Element:      rec.Element,
			Source:       "sketch",
			Epoch:        sum.Epoch,
			TotalPkts:    sum.TotalPkts,
			TotalBytes:   sum.TotalBytes,
			Epsilon:      sum.Epsilon(),
			DeltaProb:    sum.DeltaProb(),
			ErrBoundPkts: sum.ErrBoundPkts(),
		}
		top := sum.Top
		if k > 0 && len(top) > k {
			top = top[:k]
		}
		rep.Flows = make([]FlowStat, len(top))
		for i, t := range top {
			rep.Flows[i] = FlowStat{
				Flow: t.Flow, Pkts: float64(t.Pkts), Bytes: float64(t.Bytes),
				Exact: t.Exact(), ErrPkts: float64(t.ErrPkts), ErrBytes: float64(t.ErrBytes),
			}
		}
		return rep, true
	}
	return legacyTopFlows(rec, k)
}

// legacyTopFlows ranks per-rule enumeration attrs: exact, but O(flows)
// in both the record and the attr registry.
func legacyTopFlows(rec core.Record, k int) (*FlowReport, bool) {
	byFlow := make(map[string]*FlowStat)
	for i := range rec.Attrs {
		name := rec.Attrs[i].Name()
		if !strings.HasPrefix(name, legacyRulePrefix) {
			continue
		}
		rest := name[len(legacyRulePrefix):]
		var flow string
		var isPkts bool
		if f, ok := strings.CutSuffix(rest, "_packets"); ok {
			flow, isPkts = f, true
		} else if f, ok := strings.CutSuffix(rest, "_bytes"); ok {
			flow = f
		} else {
			continue
		}
		fs := byFlow[flow]
		if fs == nil {
			fs = &FlowStat{Flow: flow, Exact: true}
			byFlow[flow] = fs
		}
		if isPkts {
			fs.Pkts = rec.Attrs[i].Value
		} else {
			fs.Bytes = rec.Attrs[i].Value
		}
	}
	if len(byFlow) == 0 {
		return nil, false
	}
	rep := &FlowReport{Element: rec.Element, Source: "legacy", Flows: make([]FlowStat, 0, len(byFlow))}
	for _, fs := range byFlow {
		rep.Flows = append(rep.Flows, *fs)
	}
	sort.Slice(rep.Flows, func(i, j int) bool {
		if rep.Flows[i].Pkts != rep.Flows[j].Pkts {
			return rep.Flows[i].Pkts > rep.Flows[j].Pkts
		}
		return rep.Flows[i].Flow < rep.Flows[j].Flow
	})
	if k > 0 && len(rep.Flows) > k {
		rep.Flows = rep.Flows[:k]
	}
	return rep, true
}

// String renders the report as an operator table.
func (r *FlowReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s flows (%s)", r.Element, r.Source)
	if r.Source == "sketch" {
		fmt.Fprintf(&b, " epoch=%d total=%d pkts, non-top-k error ≤ %.1f pkts (p=%.3f)",
			r.Epoch, r.TotalPkts, r.ErrBoundPkts, 1-r.DeltaProb)
	}
	b.WriteByte('\n')
	for _, f := range r.Flows {
		mark := "≈"
		if f.Exact {
			mark = "="
		}
		fmt.Fprintf(&b, "  %-20s %s %12.0f pkts %14.0f bytes", f.Flow, mark, f.Pkts, f.Bytes)
		if !f.Exact {
			fmt.Fprintf(&b, "  (+≤%.0f/%.0f)", f.ErrPkts, f.ErrBytes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
