package diagnosis

import (
	"strings"
	"testing"

	"perfsight/internal/core"
)

func TestContentionReportString(t *testing.T) {
	rep := &ContentionReport{
		Scope:        ScopeBottleneck,
		TopLocation:  LocTUNIndividual,
		Inferred:     ResourceVMBottleneck,
		BottleneckVM: "vm7",
		TotalLoss:    321,
	}
	s := rep.String()
	for _, want := range []string{"bottleneck", "tun-individual", "321", "vm-bottleneck", "vm7"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestRootCauseReportStrings(t *testing.T) {
	under := &RootCauseReport{SourceUnderloaded: true}
	if !strings.Contains(under.String(), "Underloaded") {
		t.Fatalf("underloaded: %s", under)
	}
	empty := &RootCauseReport{}
	if !strings.Contains(empty.String(), "no root cause") {
		t.Fatalf("empty: %s", empty)
	}
	blamed := &RootCauseReport{
		RootCauses: []core.ElementID{"m0/vm-nfs/app"},
		Overloaded: map[core.ElementID]bool{"m0/vm-nfs/app": true},
	}
	if !strings.Contains(blamed.String(), "Overloaded") {
		t.Fatalf("blamed: %s", blamed)
	}
	plain := &RootCauseReport{
		RootCauses: []core.ElementID{"m0/vm-x/app"},
		Overloaded: map[core.ElementID]bool{},
	}
	if !strings.Contains(plain.String(), "bottleneck") {
		t.Fatalf("plain: %s", plain)
	}
}

func TestUnknownEnumStrings(t *testing.T) {
	if !strings.HasPrefix(Resource(99).String(), "resource(") {
		t.Fatal("unknown resource")
	}
	if !strings.HasPrefix(DropLocation(99).String(), "location(") {
		t.Fatal("unknown location")
	}
	if Scope(99).String() != "none" {
		t.Fatal("unknown scope")
	}
	if MBState(99).String() != "Normal" {
		t.Fatal("unknown state")
	}
}
