package diagnosis

import (
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/telemetry"
)

// diagMetrics is the diagnosis layer's self-telemetry: how often each
// algorithm runs, how long a run takes end to end (the SampleInterval
// windows dominate), and what it concluded. Verdict counts let an
// operator see at a glance whether a fleet is mostly healthy or mostly
// "contention at pnic".
type diagMetrics struct {
	reg  *telemetry.Registry
	runs map[string]*telemetry.Counter
	durs map[string]*telemetry.Histogram

	mu       sync.Mutex
	verdicts map[[2]string]*telemetry.Counter
}

// tel is package-level because Algorithm 1 and 2 are package functions;
// nil means uninstrumented.
var tel atomic.Pointer[diagMetrics]

// EnableTelemetry wires diagnosis self-metrics into reg. The two
// algorithm labels are "contention" (Algorithm 1, FindContentionAndBottleneck)
// and "rootcause" (Algorithm 2, LocateRootCause).
func EnableTelemetry(reg *telemetry.Registry) {
	m := &diagMetrics{
		reg:      reg,
		runs:     make(map[string]*telemetry.Counter),
		durs:     make(map[string]*telemetry.Histogram),
		verdicts: make(map[[2]string]*telemetry.Counter),
	}
	for _, alg := range []string{"contention", "rootcause"} {
		m.runs[alg] = reg.Counter("perfsight_diagnosis_runs_total",
			"diagnosis algorithm invocations",
			telemetry.Label{Key: "algorithm", Value: alg})
		m.durs[alg] = reg.Histogram("perfsight_diagnosis_run_duration_ns",
			"end-to-end diagnosis run latency including sampling windows, nanoseconds",
			telemetry.Label{Key: "algorithm", Value: alg})
	}
	tel.Store(m)
}

// observeRun records one algorithm run and its verdict.
func observeRun(algorithm string, start time.Time, verdict string) {
	m := tel.Load()
	if m == nil {
		return
	}
	m.runs[algorithm].Inc()
	m.durs[algorithm].Observe(float64(time.Since(start).Nanoseconds()))
	key := [2]string{algorithm, verdict}
	m.mu.Lock()
	c := m.verdicts[key]
	if c == nil {
		c = m.reg.Counter("perfsight_diagnosis_verdicts_total",
			"diagnosis conclusions, by algorithm and verdict",
			telemetry.Label{Key: "algorithm", Value: algorithm},
			telemetry.Label{Key: "verdict", Value: verdict})
		m.verdicts[key] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// contentionVerdict folds an Algorithm 1 outcome into a label value.
func contentionVerdict(rep *ContentionReport, err error) string {
	switch {
	case err != nil:
		return "error"
	case rep == nil:
		return "none"
	default:
		return rep.Scope.String() // none / contention / bottleneck
	}
}

// rootCauseVerdict folds an Algorithm 2 outcome into a label value.
func rootCauseVerdict(rep *RootCauseReport, err error) string {
	switch {
	case err != nil:
		return "error"
	case rep == nil:
		return "none"
	case rep.SourceUnderloaded:
		return "underloaded"
	case len(rep.RootCauses) > 0:
		return "rootcause"
	default:
		return "none"
	}
}
