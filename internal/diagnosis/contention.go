package diagnosis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
)

// Scope distinguishes stack-level contention from a single-VM bottleneck
// (§5.1: "Contention and bottleneck can be distinguished based on whether
// loss is spread across multiple VMs (contention) or confined to one VM's
// software data path (bottleneck)").
type Scope int

const (
	ScopeNone Scope = iota
	ScopeContention
	ScopeBottleneck
)

func (s Scope) String() string {
	switch s {
	case ScopeContention:
		return "contention"
	case ScopeBottleneck:
		return "bottleneck"
	}
	return "none"
}

// ElementLoss is one ranked entry of Algorithm 1's output.
type ElementLoss struct {
	Element core.ElementID   `json:"element"`
	Kind    core.ElementKind `json:"kind"`
	VM      core.VMID        `json:"vm,omitempty"` // non-empty for per-VM elements (TUN)
	Loss    float64          `json:"loss"`         // packets dropped in the window
}

// ContentionReport is the full result of Algorithm 1 plus the rule-book
// inference.
type ContentionReport struct {
	// Ranked lists elements by packet loss, most first (SortByLoss).
	Ranked []ElementLoss `json:"ranked"`
	// TopLocation is the symptom class of the worst element(s).
	TopLocation DropLocation `json:"top_location"`
	// Candidates are all Table 1 resources consistent with the symptom.
	Candidates []Resource `json:"candidates,omitempty"`
	// Inferred is the disambiguated root-cause resource.
	Inferred Resource `json:"inferred"`
	// Scope says contention (multi-VM) vs bottleneck (single VM).
	Scope Scope `json:"scope"`
	// BottleneckVM names the VM when Scope is ScopeBottleneck.
	BottleneckVM core.VMID `json:"bottleneck_vm,omitempty"`
	// DroppingVMs lists VMs whose TUNs dropped in the window.
	DroppingVMs []core.VMID `json:"dropping_vms,omitempty"`
	// Evidence carries the secondary symptoms used for disambiguation.
	Evidence Evidence `json:"evidence"`
	// TotalLoss is the summed packet loss across the stack.
	TotalLoss float64 `json:"total_loss"`
	// HotFlows is the vswitch's heavy-hitter ranking from its sketch
	// summary — which flows carried the traffic during the window —
	// present only when the element reports sketch statistics (the
	// legacy enumeration keeps reports byte-identical to older builds).
	HotFlows *FlowReport `json:"hot_flows,omitempty"`
}

// String renders a one-line operator summary.
func (r *ContentionReport) String() string {
	if r.TotalLoss == 0 {
		return "no packet loss in the virtualization stack"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s at %s (%.0f pkts): %s", r.Scope, r.TopLocation, r.TotalLoss, r.Inferred)
	if r.BottleneckVM != "" {
		fmt.Fprintf(&b, " [vm=%s]", r.BottleneckVM)
	}
	return b.String()
}

// minLossPackets filters measurement noise: fewer total dropped packets
// than this in a window is reported as no problem.
const minLossPackets = 5

// hotFlowsTopK bounds the heavy-hitter evidence attached to reports.
const hotFlowsTopK = 10

// FindContentionAndBottleneck implements Algorithm 1: fetch the packet
// loss of every element in the tenant's virtualization stack over window
// T, sort by loss, and map the dominant drop location to the resource in
// shortage via the rule book.
func FindContentionAndBottleneck(ctl *controller.Controller, tid core.TenantID, T time.Duration) (rep *ContentionReport, err error) {
	start := time.Now()
	defer func() { observeRun("contention", start, contentionVerdict(rep, err)) }()
	ids := ctl.TenantElements(tid, func(_ core.ElementID, info core.ElementInfo) bool {
		// Middleboxes are included because application-level elements can
		// themselves lose packets (an IDS capture ring overflowing under
		// CPU contention); ones without drop counters rank with zero loss.
		return info.Kind.InVirtualizationStack() || info.Kind == core.KindUnknown ||
			info.Kind == core.KindPNIC || info.Kind == core.KindMiddlebox
	})
	if len(ids) == 0 {
		return nil, fmt.Errorf("diagnosis: tenant %q has no virtualization-stack elements", tid)
	}
	ivs, err := ctl.SampleInterval(tid, ids, T)
	if len(ivs) == 0 {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("diagnosis: no elements of tenant %q answered", tid)
	}
	// Partial data (churn, a dead agent) is still diagnosable.
	return AnalyzeStackIntervals(ivs), nil
}

// AnalyzeStackIntervals runs the Algorithm 1 analysis over pre-collected
// intervals (shared by the live and offline paths).
func AnalyzeStackIntervals(ivs map[core.ElementID]controller.Interval) *ContentionReport {
	rep := &ContentionReport{}
	vmDrops := make(map[core.VMID]float64)

	for id, iv := range ivs {
		kind := iv.Cur.Kind()
		switch kind {
		case core.KindVSwitch:
			// Sketch-mode switches annotate the report with their heavy
			// hitters: constant-size evidence of who drove the traffic,
			// no matter how many flows the table holds.
			if rep.HotFlows == nil {
				if fr, ok := TopFlows(iv.Cur, hotFlowsTopK); ok && fr.Source == "sketch" {
					rep.HotFlows = fr
				}
			}
		case core.KindUnknown:
			// Host gauge element: evidence, not a drop point.
			rep.Evidence.CPUUtil = iv.Cur.GetOr(core.AttrCPUUtil, rep.Evidence.CPUUtil)
			rep.Evidence.MembusUtil = iv.Cur.GetOr(core.AttrMembusUtil, rep.Evidence.MembusUtil)
			continue
		case core.KindPNIC:
			rep.Evidence.PNICRxBps = iv.RxBps()
			rep.Evidence.PNICTxBps = iv.TxBps()
			rep.Evidence.PNICCapBps = iv.Cur.GetOr(core.AttrCapacityBps, rep.Evidence.PNICCapBps)
			if pkts := iv.Delta(core.AttrRxPackets) + iv.Delta(core.AttrTxPackets); pkts > 0 {
				rep.Evidence.AvgPktSize = (iv.Delta(core.AttrRxBytes) + iv.Delta(core.AttrTxBytes)) / pkts
			}
		}
		loss := iv.DropPackets()
		if loss < 0 {
			loss = 0
		}
		el := ElementLoss{Element: id, Kind: kind, VM: id.VM(), Loss: loss}
		rep.Ranked = append(rep.Ranked, el)
		rep.TotalLoss += loss
		if kind == core.KindTUN && loss > 0 {
			vmDrops[el.VM] += loss
		}
	}

	// SortByLoss, ties broken by ID for determinism.
	sort.Slice(rep.Ranked, func(i, j int) bool {
		if rep.Ranked[i].Loss != rep.Ranked[j].Loss {
			return rep.Ranked[i].Loss > rep.Ranked[j].Loss
		}
		return rep.Ranked[i].Element < rep.Ranked[j].Element
	})

	for vm := range vmDrops {
		rep.DroppingVMs = append(rep.DroppingVMs, vm)
	}
	sort.Slice(rep.DroppingVMs, func(i, j int) bool { return rep.DroppingVMs[i] < rep.DroppingVMs[j] })

	if rep.TotalLoss < minLossPackets || len(rep.Ranked) == 0 || rep.Ranked[0].Loss == 0 {
		rep.TotalLoss = 0
		rep.TopLocation = LocNone
		rep.Scope = ScopeNone
		return rep
	}

	top := rep.Ranked[0]
	multiVM := len(rep.DroppingVMs) > 1
	// Evidence corroboration: drops confined to one VM's TUN on a machine
	// whose CPU or memory bus is saturated are machine-level contention
	// that happened to overflow the most loaded VM first, not a VM-local
	// shortage (§5.1's combined-symptom guidance).
	hotMachine := rep.Evidence.MembusUtil >= hotBus || rep.Evidence.CPUUtil >= hotCPU
	if !multiVM && top.Kind == core.KindTUN && hotMachine {
		multiVM = true
	}
	rep.TopLocation = LocationOfKind(top.Kind, multiVM)
	var rb RuleBook
	rep.Candidates = rb.Candidates(rep.TopLocation)
	rep.Inferred = rb.Infer(rep.TopLocation, rep.Evidence)

	switch {
	case top.Kind == core.KindTUN && !multiVM:
		rep.Scope = ScopeBottleneck
		rep.BottleneckVM = top.VM
	default:
		rep.Scope = ScopeContention
	}
	return rep
}
