package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// Table1Row is one exhaustive single-shortage probe and its outcome.
type Table1Row struct {
	Resource    diagnosis.Resource
	ExpectedLoc diagnosis.DropLocation
	ObservedLoc diagnosis.DropLocation
	Inferred    diagnosis.Resource
	Scope       diagnosis.Scope
	OK          bool
}

// Table1Result rebuilds the paper's rule book (Table 1) the way the paper
// did: "we set up a variety of experiments where VMs contend for different
// resources, and we exhaustively track possible packet loss locations".
type Table1Result struct {
	Rows []Table1Row
}

// AllCorrect reports whether every probe landed on the expected location
// and resource.
func (r *Table1Result) AllCorrect() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return len(r.Rows) > 0
}

// String renders the rule book table.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: resource in shortage and symptom rule book\n")
	b.WriteString("resource in shortage   expected location   observed location   inferred             ok\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-21s  %-18s  %-18s  %-20s %v\n",
			row.Resource, row.ExpectedLoc, row.ObservedLoc, row.Inferred, row.OK)
	}
	return b.String()
}

// RunTable1 runs one probe per Table 1 row, each in a fresh lab.
func RunTable1() (*Table1Result, error) {
	res := &Table1Result{}
	type probe struct {
		resource diagnosis.Resource
		loc      diagnosis.DropLocation
		run      func() (*diagnosis.ContentionReport, error)
	}
	probes := []probe{
		{diagnosis.ResourceIncomingBandwidth, diagnosis.LocPNIC, probeIncomingBandwidth},
		{diagnosis.ResourceOutgoingBandwidth, diagnosis.LocBacklogEnqueue, probeOutgoingBandwidth},
		{diagnosis.ResourceCPU, diagnosis.LocTUNAggregated, probeCPUContention},
		{diagnosis.ResourceMemoryBandwidth, diagnosis.LocTUNAggregated, probeMemBandwidth},
		{diagnosis.ResourceMemorySpace, diagnosis.LocPNICDriver, probeMemSpace},
		{diagnosis.ResourceVMBottleneck, diagnosis.LocTUNIndividual, probeVMBottleneck},
		{diagnosis.ResourcePCPUBacklog, diagnosis.LocBacklogEnqueue, probeBacklogContention},
	}
	for _, p := range probes {
		rep, err := p.run()
		if err != nil {
			return nil, fmt.Errorf("table1 %s probe: %w", p.resource, err)
		}
		res.Rows = append(res.Rows, Table1Row{
			Resource:    p.resource,
			ExpectedLoc: p.loc,
			ObservedLoc: rep.TopLocation,
			Inferred:    rep.Inferred,
			Scope:       rep.Scope,
			OK:          rep.TopLocation == p.loc && rep.Inferred == p.resource,
		})
	}
	return res, nil
}

const probeTenant = core.TenantID("t-probe")

// probeLab builds a default machine with n sink VMs receiving streams.
func probeLab(sinkVMs int, vnicBps, ratePerVM float64) (*Lab, error) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	for i := 0; i < sinkVMs; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), vnicBps)
		l.C.PlaceVM("m0", vm, 1.0, vnicBps, sink)
		hn := fmt.Sprintf("h%d", i)
		host := l.C.AddHost(hn, 0)
		for j := 0; j < 4; j++ {
			conn := l.C.Connect(flowID(fmt.Sprintf("f%d-%d", i, j)),
				cluster.HostEndpoint(hn), cluster.VMEndpoint("m0", vm), stream.Config{})
			host.AddSource(conn, ratePerVM/4)
		}
	}
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	l.C.AssignStack(probeTenant, "m0")
	for i := 0; i < sinkVMs; i++ {
		l.C.AssignVM(probeTenant, "m0", core.VMID(fmt.Sprintf("vm%d", i)))
	}
	return l, nil
}

func probeIncomingBandwidth() (*diagnosis.ContentionReport, error) {
	l, err := probeLab(4, 4e9, 400e6)
	if err != nil {
		return nil, err
	}
	gw := l.C.AddHost("gw", 0)
	for i := 0; i < 4; i++ {
		l.C.RouteFlow(flowID(fmt.Sprintf("flood-%d", i)),
			cluster.HostEndpoint("gw"), cluster.VMEndpoint("m0", core.VMID(fmt.Sprintf("vm%d", i))))
	}
	l.Run(2 * time.Second)
	l.C.Engine.AddFunc(func(now, dt time.Duration) {
		per := 14e9 / 4 / 8 * dt.Seconds() // 14 Gbps into a 10 Gbps NIC
		for i := 0; i < 4; i++ {
			gw.EmitRaw(batch(fmt.Sprintf("flood-%d", i), int64(per), 1448))
		}
	})
	return diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
}

func probeOutgoingBandwidth() (*diagnosis.ContentionReport, error) {
	// Sender VMs flooding outward saturate the 10G wire; the NAPI routine
	// head-of-line blocks on the full transmit queue and the backlog drops.
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	l.C.AddHost("peer", 0)
	for i := 0; i < 6; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		f := flowID(fmt.Sprintf("out-%d", i))
		src := middlebox.NewRawSource(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 10e9, f, 0, 1448, nil)
		l.C.PlaceVM("m0", vm, 1.0, 10e9, src)
		l.C.RouteFlow(f, cluster.VMEndpoint("m0", vm), cluster.HostEndpoint("peer"))
	}
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	l.C.AssignStack(probeTenant, "m0")
	for i := 0; i < 6; i++ {
		l.C.AssignVM(probeTenant, "m0", core.VMID(fmt.Sprintf("vm%d", i)))
	}
	l.Run(2 * time.Second)
	srcs := l.C.Machine("m0").VMs()
	_ = srcs
	for i := 0; i < 6; i++ {
		vm := l.C.Machine("m0").VM(core.VMID(fmt.Sprintf("vm%d", i)))
		vm.Apps[0].(*middlebox.RawSource).RateBps = 2.5e9 // 15 Gbps offered
	}
	return diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
}

func probeCPUContention() (*diagnosis.ContentionReport, error) {
	l, err := probeLab(2, 1e9, 400e6)
	if err != nil {
		return nil, err
	}
	m := l.C.Machine("m0")
	// Six additional 2-vCPU tenant VMs spin up CPU-intensive workloads,
	// overcommitting the 8 cores.
	for i := 0; i < 6; i++ {
		vm := core.VMID(fmt.Sprintf("vm-hog%d", i))
		l.C.PlaceVM("m0", vm, 2.0, 1e9)
		l.C.AssignVM(probeTenant, "m0", vm)
	}
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	l.Run(2 * time.Second)
	for i := 0; i < 6; i++ {
		m.AddHog(&machine.Hog{
			Name: fmt.Sprintf("cpu%d", i), Kind: machine.HogCPU,
			VM: core.VMID(fmt.Sprintf("vm-hog%d", i)), CPUDemandCores: 2.0,
		})
	}
	return diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
}

func probeMemBandwidth() (*diagnosis.ContentionReport, error) {
	l, err := probeLab(4, 2e9, 600e6)
	if err != nil {
		return nil, err
	}
	l.Run(2 * time.Second)
	l.C.Machine("m0").AddHog(&machine.Hog{
		Name: "memhog", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33,
	})
	return diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
}

func probeMemSpace() (*diagnosis.ContentionReport, error) {
	l, err := probeLab(4, 2e9, 600e6)
	if err != nil {
		return nil, err
	}
	l.Run(2 * time.Second)
	// A leaking task pins nearly all RAM: sk_buff allocations start
	// failing in the driver.
	l.C.Machine("m0").AddHog(&machine.Hog{
		Name: "leak", Kind: machine.HogMemSpace, AllocBytes: 16<<30 - 256<<20,
	})
	return diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
}

func probeVMBottleneck() (*diagnosis.ContentionReport, error) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	sink0 := middlebox.NewSink("m0/vm0/app", 1e9)
	l.C.PlaceVM("m0", "vm0", 1.0, 1e9, sink0)
	sink1 := middlebox.NewSink("m0/vm1/app", 1e9)
	l.C.PlaceVM("m0", "vm1", 0.02, 1e9, sink1) // starved allocation
	gw := l.C.AddHost("gw", 0)
	l.C.RouteFlow("f0", cluster.HostEndpoint("gw"), cluster.VMEndpoint("m0", "vm0"))
	l.C.RouteFlow("f1", cluster.HostEndpoint("gw"), cluster.VMEndpoint("m0", "vm1"))
	l.C.Engine.AddFunc(func(now, dt time.Duration) {
		for _, f := range []string{"f0", "f1"} {
			gw.EmitRaw(batch(f, int64(400e6/8*dt.Seconds()), 1448))
		}
	})
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	l.C.AssignStack(probeTenant, "m0")
	l.C.AssignVM(probeTenant, "m0", "vm0")
	l.C.AssignVM(probeTenant, "m0", "vm1")
	l.Run(2 * time.Second)
	return diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
}

func probeBacklogContention() (*diagnosis.ContentionReport, error) {
	// The Fig 10 scenario: a small-packet flood monopolizes the single hot
	// backlog queue while the NIC stays far from saturation.
	l := NewLab(time.Millisecond)
	cfg := machine.DefaultConfig("m0")
	cfg.Stack.PNICRxBps = 1e9
	cfg.Stack.PNICTxBps = 1e9
	cfg.Stack.BacklogQueues = 1 // unpinned interrupts land on one core
	l.C.AddMachine(cfg)
	l.C.AddHost("peer", 0)
	host := l.C.AddHost("src", 0)

	sink := middlebox.NewSink("m0/vm1/app", 1e9)
	l.C.PlaceVM("m0", "vm1", 1.0, 1e9, sink)
	for j := 0; j < 4; j++ {
		conn := l.C.Connect(flowID(fmt.Sprintf("rx-%d", j)),
			cluster.HostEndpoint("src"), cluster.VMEndpoint("m0", "vm1"), stream.Config{})
		host.AddSource(conn, 125e6)
	}
	flood := middlebox.NewRawSource("m0/vm2/app", 1e9, "smallpkts", 0, 64, nil)
	l.C.PlaceVM("m0", "vm2", 1.0, 1e9, flood)
	l.C.RouteFlow("smallpkts", cluster.VMEndpoint("m0", "vm2"), cluster.HostEndpoint("peer"))

	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	l.C.AssignStack(probeTenant, "m0")
	l.C.AssignVM(probeTenant, "m0", "vm1")
	l.C.AssignVM(probeTenant, "m0", "vm2")
	l.Run(2 * time.Second)
	flood.RateBps = 400e6 // ~780 Kpps of 64 B packets
	return diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
}
