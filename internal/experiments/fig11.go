package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// Fig11Sample is one timeline point of the memory-bandwidth experiment.
type Fig11Sample struct {
	T       float64
	NetGbps float64
}

// Fig11Result reproduces Figure 11: network-intensive VMs run at about
// 3.25 Gbps aggregate; at t=20 s memory-intensive VMs start and the
// aggregate falls to about 1.7 Gbps, with the vast majority of drops (92%
// in the paper) at the network VMs' TUNs.
type Fig11Result struct {
	Samples []Fig11Sample
	// BeforeGbps/AfterGbps are the aggregate throughputs of the two
	// regimes.
	BeforeGbps, AfterGbps float64
	// TUNShare is the fraction of stack drops at TUNs during contention.
	TUNShare float64
	// Report is the diagnosis during contention.
	Report *diagnosis.ContentionReport
}

// Correct reports whether the diagnosis matched the paper's.
func (r *Fig11Result) Correct() bool {
	return r.Report != nil &&
		r.Report.TopLocation == diagnosis.LocTUNAggregated &&
		r.Report.Inferred == diagnosis.ResourceMemoryBandwidth &&
		r.TUNShare > 0.8
}

// String renders the figure.
func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11: memory-bandwidth contention\n")
	b.WriteString("t(s)  network (Gbps)\n")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%4.0f  %14.2f\n", s.T, s.NetGbps)
	}
	fmt.Fprintf(&b, "aggregate before: %.2f Gbps (paper: 3.25); during contention: %.2f Gbps (paper: 1.7)\n",
		r.BeforeGbps, r.AfterGbps)
	fmt.Fprintf(&b, "share of drops at TUNs: %.0f%% (paper: 92%%)\n", r.TUNShare*100)
	if r.Report != nil {
		fmt.Fprintf(&b, "diagnosis: %s\n", r.Report)
	}
	return b.String()
}

// RunFig11 executes the oversubscription scenario.
func RunFig11() (*Fig11Result, error) {
	l := NewLab(time.Millisecond)
	m := l.DefaultMachine("m0")
	const tid = core.TenantID("t-net")
	const netVMs = 4

	for i := 0; i < netVMs; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 2e9)
		l.C.PlaceVM("m0", vm, 1.0, 2e9, sink)
		hn := fmt.Sprintf("h%d", i)
		host := l.C.AddHost(hn, 0)
		for j := 0; j < 4; j++ {
			conn := l.C.Connect(flowID(fmt.Sprintf("f%d-%d", i, j)),
				cluster.HostEndpoint(hn), cluster.VMEndpoint("m0", vm), stream.Config{})
			host.AddSource(conn, 3.4e9/netVMs/4) // ~3.4 Gbps offered aggregate
		}
	}
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	l.C.AssignStack(tid, "m0")
	for i := 0; i < netVMs; i++ {
		l.C.AssignVM(tid, "m0", core.VMID(fmt.Sprintf("vm%d", i)))
	}

	res := &Fig11Result{}
	pnic := m.Stack.PNic
	var prevRx uint64
	sample := func() {
		l.Run(time.Second)
		rx := pnic.ES.Rx.Bytes.Load()
		res.Samples = append(res.Samples, Fig11Sample{
			T:       l.C.Now().Seconds(),
			NetGbps: float64(rx-prevRx) * 8 / 1e9,
		})
		prevRx = rx
	}

	for i := 0; i < 20; i++ {
		sample()
	}
	// Memory-intensive VMs start: their streaming copies get bus priority.
	m.AddHog(&machine.Hog{Name: "memvms", Kind: machine.HogMem, MemDemandBps: 23e9, CyclesPerByte: 0.33})

	dropsBefore := stackDropSnapshot(m)
	for i := 0; i < 4; i++ {
		sample()
	}
	rep, err := diagnosis.FindContentionAndBottleneck(l.Ctl, tid, 3*time.Second)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	prevRx = pnic.ES.Rx.Bytes.Load() // resync past the diagnosis window
	for i := 0; i < 13; i++ {
		sample()
	}
	dropsAfter := stackDropSnapshot(m)

	total := float64(dropsAfter.total - dropsBefore.total)
	if total > 0 {
		res.TUNShare = float64(dropsAfter.tun-dropsBefore.tun) / total
	}

	nb, na := 0, 0
	for _, s := range res.Samples {
		if s.T <= 20 && s.T > 5 {
			res.BeforeGbps += s.NetGbps
			nb++
		} else if s.T > 22 {
			res.AfterGbps += s.NetGbps
			na++
		}
	}
	if nb > 0 {
		res.BeforeGbps /= float64(nb)
	}
	if na > 0 {
		res.AfterGbps /= float64(na)
	}
	return res, nil
}

// dropCounts aggregates stack drop counters by location.
type dropCounts struct {
	total, tun uint64
}

func stackDropSnapshot(m *machine.Machine) dropCounts {
	var d dropCounts
	d.total += m.Stack.PNic.ES.Drop.Packets.Load()
	d.total += m.Stack.Backlogs.TotalDrops()
	d.total += m.Stack.Driver.ES.Drop.Packets.Load()
	for _, id := range m.VMs() {
		vm := m.VM(id)
		if vm == nil {
			continue
		}
		t := vm.Stack.Tun.ES.Drop.Packets.Load()
		d.total += t
		d.tun += t
	}
	return d
}
