package experiments

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/sim"
	"perfsight/internal/stream"
	"perfsight/internal/wire"
)

// ChaosFault is one parsed -chaos fault. Zero Heal means the fault never
// heals (the lab substitutes its default heal time); Offset and Latency
// are meaningful only for the skew and slowdisk kinds.
type ChaosFault struct {
	Kind    string // crash | partition | skew | slowdisk
	Agents  []core.MachineID
	At      time.Duration
	Heal    time.Duration
	Offset  time.Duration
	Latency time.Duration
}

// String renders the fault back in roughly the spec grammar.
func (f ChaosFault) String() string {
	names := make([]string, len(f.Agents))
	for i, a := range f.Agents {
		names[i] = string(a)
	}
	s := fmt.Sprintf("%s:%s@%s", f.Kind, strings.Join(names, "+"), f.At)
	if f.Offset != 0 {
		s += fmt.Sprintf(",offset=%s", f.Offset)
	}
	if f.Latency != 0 {
		s += fmt.Sprintf(",latency=%s", f.Latency)
	}
	if f.Heal != 0 {
		s += fmt.Sprintf(",heal=%s", f.Heal)
	}
	return s
}

// ParseChaosSpec parses a -chaos fault schedule. The grammar is a
// semicolon-separated list of faults, each `kind:key=value,key=value`,
// where exactly one value carries an `@duration` suffix giving the fault's
// virtual injection time:
//
//	crash:agent=m0@5.5s,heal=9.5s
//	partition:agents=m1+m2@5.5s,heal=9.5s
//	skew:agent=m0,offset=250ms@500ms
//	slowdisk:agent=m0,latency=4ms@1s,heal=2s
//
// Durations use Go syntax (ms, s, m). An empty spec parses to nil.
func ParseChaosSpec(spec string) ([]ChaosFault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []ChaosFault
	for _, fs := range strings.Split(spec, ";") {
		fs = strings.TrimSpace(fs)
		if fs == "" {
			continue
		}
		f, err := parseChaosFault(fs)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: spec %q contains no faults", spec)
	}
	return out, nil
}

func parseChaosFault(s string) (ChaosFault, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return ChaosFault{}, fmt.Errorf("chaos: fault %q: missing ':' between kind and parameters", s)
	}
	kind = strings.TrimSpace(kind)
	switch kind {
	case "crash", "partition", "skew", "slowdisk":
	default:
		return ChaosFault{}, fmt.Errorf("chaos: unknown fault kind %q (want crash, partition, skew or slowdisk)", kind)
	}
	f := ChaosFault{Kind: kind, At: -1}
	for _, p := range strings.Split(rest, ",") {
		p = strings.TrimSpace(p)
		key, val, ok := strings.Cut(p, "=")
		if !ok || key == "" {
			return ChaosFault{}, fmt.Errorf("chaos: %s: parameter %q is not key=value", kind, p)
		}
		if v, at, found := strings.Cut(val, "@"); found {
			if f.At >= 0 {
				return ChaosFault{}, fmt.Errorf("chaos: %s: '@time' given more than once", kind)
			}
			d, err := time.ParseDuration(at)
			if err != nil || d < 0 {
				return ChaosFault{}, fmt.Errorf("chaos: %s: bad '@time' %q (want a non-negative Go duration)", kind, at)
			}
			f.At = d
			val = v
		}
		parseDur := func() (time.Duration, error) {
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return 0, fmt.Errorf("chaos: %s: bad %s %q (want a non-negative Go duration)", kind, key, val)
			}
			return d, nil
		}
		var err error
		switch key {
		case "agent", "agents":
			for _, a := range strings.Split(val, "+") {
				if a == "" {
					return ChaosFault{}, fmt.Errorf("chaos: %s: empty agent name in %q", kind, p)
				}
				f.Agents = append(f.Agents, core.MachineID(a))
			}
		case "heal":
			f.Heal, err = parseDur()
		case "offset":
			f.Offset, err = parseDur()
		case "latency":
			f.Latency, err = parseDur()
		default:
			return ChaosFault{}, fmt.Errorf("chaos: %s: unknown key %q (want agent, agents, heal, offset or latency)", kind, key)
		}
		if err != nil {
			return ChaosFault{}, err
		}
	}
	if f.At < 0 {
		return ChaosFault{}, fmt.Errorf("chaos: %s: no '@time' — suffix one value with @duration, e.g. agent=m0@5.5s", kind)
	}
	if len(f.Agents) == 0 {
		return ChaosFault{}, fmt.Errorf("chaos: %s: no agent named (agent=... or agents=a+b)", kind)
	}
	if f.Heal != 0 && f.Heal <= f.At {
		return ChaosFault{}, fmt.Errorf("chaos: %s: heal %s is not after the fault at %s", kind, f.Heal, f.At)
	}
	if kind == "skew" && f.Offset == 0 {
		return ChaosFault{}, fmt.Errorf("chaos: skew: missing offset=<duration>")
	}
	if kind == "slowdisk" && f.Latency == 0 {
		return ChaosFault{}, fmt.Errorf("chaos: slowdisk: missing latency=<duration>")
	}
	return f, nil
}

// errAgentUnreachable is what a crashed or partitioned agent's client
// returns — indistinguishable, from the controller's seat, from a dead
// process or a dropped link.
var errAgentUnreachable = errors.New("chaos: agent unreachable")

// gatedClient wraps an agent client with a chaos kill switch.
type gatedClient struct {
	inner controller.AgentClient
	down  atomic.Bool
}

func (g *gatedClient) Query(q wire.Query) ([]core.Record, error) {
	if g.down.Load() {
		return nil, errAgentUnreachable
	}
	return g.inner.Query(q)
}

func (g *gatedClient) ListElements() ([]wire.ElementMeta, error) {
	if g.down.Load() {
		return nil, errAgentUnreachable
	}
	return g.inner.ListElements()
}

func (g *gatedClient) Ping() (time.Duration, error) {
	if g.down.Load() {
		return 0, errAgentUnreachable
	}
	return g.inner.Ping()
}

func (g *gatedClient) Close() error { return g.inner.Close() }

// ChaosOutcome is one fault experiment's asserted result.
type ChaosOutcome struct {
	Fault  string
	Checks []string
	OK     bool
}

// ChaosResult aggregates the chaos lab's four fault experiments.
type ChaosResult struct {
	Outcomes []ChaosOutcome
}

// AllCorrect reports whether every fault experiment passed its checks.
func (r *ChaosResult) AllCorrect() bool {
	for _, o := range r.Outcomes {
		if !o.OK {
			return false
		}
	}
	return len(r.Outcomes) > 0
}

// String renders the per-fault check list.
func (r *ChaosResult) String() string {
	var b strings.Builder
	b.WriteString("Chaos lab: injected faults vs diagnosis behavior\n")
	for _, o := range r.Outcomes {
		status := "ok"
		if !o.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-4s %s\n", status, o.Fault)
		for _, c := range o.Checks {
			fmt.Fprintf(&b, "       %s\n", c)
		}
	}
	return b.String()
}

const chaosTenant = core.TenantID("t-chaos")

// chaosDefaults is the built-in fault schedule, tuned to the lab's fixed
// diagnosis cadence (2s warmup, then 3s measurement windows).
func chaosDefaults() map[string]ChaosFault {
	return map[string]ChaosFault{
		"crash":     {Kind: "crash", Agents: []core.MachineID{"m0"}, At: 5500 * time.Millisecond, Heal: 9500 * time.Millisecond},
		"partition": {Kind: "partition", Agents: []core.MachineID{"m1"}, At: 5500 * time.Millisecond, Heal: 9500 * time.Millisecond},
		"skew":      {Kind: "skew", Agents: []core.MachineID{"m0"}, At: 500 * time.Millisecond, Offset: 250 * time.Millisecond},
		"slowdisk":  {Kind: "slowdisk", Agents: []core.MachineID{"m0"}, At: time.Second, Heal: 2 * time.Second, Latency: 4 * time.Millisecond},
	}
}

// RunChaosLab parses spec (empty = built-in schedule) and runs one
// asserted experiment per fault kind present: agent crash/restart, network
// partition of a machine subset, per-agent clock skew, and slow-disk
// latency on the QEMU log-tail channel. Spec faults override the default
// schedule for their kind; kinds absent from a non-empty spec are skipped.
func RunChaosLab(spec string) (*ChaosResult, error) {
	parsed, err := ParseChaosSpec(spec)
	if err != nil {
		return nil, err
	}
	sched := chaosDefaults()
	kinds := []string{"crash", "partition", "skew", "slowdisk"}
	if len(parsed) > 0 {
		kinds = kinds[:0]
		for _, f := range parsed {
			def := sched[f.Kind]
			if f.Heal == 0 {
				f.Heal = def.Heal
			}
			if f.Offset == 0 {
				f.Offset = def.Offset
			}
			if f.Latency == 0 {
				f.Latency = def.Latency
			}
			sched[f.Kind] = f
			kinds = append(kinds, f.Kind)
		}
	}
	res := &ChaosResult{}
	runners := map[string]func(ChaosFault) (ChaosOutcome, error){
		"crash":     chaosCrash,
		"partition": chaosPartition,
		"skew":      chaosSkew,
		"slowdisk":  chaosSlowDisk,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k] {
			return nil, fmt.Errorf("chaos: fault kind %q given twice", k)
		}
		seen[k] = true
		o, err := runners[k](sched[k])
		if err != nil {
			return nil, fmt.Errorf("chaos: %s experiment: %w", k, err)
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res, nil
}

// validateChaosWindow checks a crash/partition fault against the lab's
// fixed diagnosis cadence: diagnosis windows are [2s,5s], [5s,8s] and
// [heal+,heal+3s], so the outage must start after the first window's last
// sample and still cover the second window's 8s sample.
func validateChaosWindow(f ChaosFault) error {
	if f.At <= 5*time.Second || f.At > 8*time.Second || f.Heal <= 8*time.Second {
		return fmt.Errorf("lab timeline needs 5s < at <= 8s < heal (diagnosis samples at 5s and 8s); got at=%s heal=%s", f.At, f.Heal)
	}
	return nil
}

// chaosCrash reruns the Table 1 memory-bandwidth probe through an agent
// outage: the verdict is correct before the crash, diagnosis fails (every
// element unreachable) during it, and the verdict is correct again after
// the restart.
func chaosCrash(f ChaosFault) (ChaosOutcome, error) {
	out := ChaosOutcome{Fault: f.String(), OK: true}
	if err := validateChaosWindow(f); err != nil {
		return out, err
	}
	if len(f.Agents) != 1 || f.Agents[0] != "m0" {
		return out, fmt.Errorf("the crash lab's only machine is m0; got agents %v", f.Agents)
	}
	l, err := probeLab(4, 2e9, 600e6)
	if err != nil {
		return out, err
	}
	defer l.C.Close()
	gate := &gatedClient{inner: &controller.LocalClient{A: l.Agents["m0"]}}
	l.Ctl.RegisterAgent("m0", gate)
	ch := sim.NewChaos(1)
	l.C.AddPreTick(ch)
	ch.Window(f.At, f.Heal, "crash-m0",
		func(time.Duration) { gate.down.Store(true) },
		func(time.Duration) { gate.down.Store(false) })

	l.Run(2 * time.Second)
	l.C.Machine("m0").AddHog(&machine.Hog{
		Name: "memhog", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33,
	})
	check := func(ok bool, format string, args ...any) {
		out.Checks = append(out.Checks, fmt.Sprintf(format, args...))
		if !ok {
			out.OK = false
		}
	}

	pre, err := diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
	if err != nil {
		return out, fmt.Errorf("pre-crash diagnosis: %w", err)
	}
	check(pre.Inferred == diagnosis.ResourceMemoryBandwidth,
		"pre-crash verdict %s (want %s)", pre.Inferred, diagnosis.ResourceMemoryBandwidth)

	_, derr := diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
	check(derr != nil, "during crash: diagnosis error = %v (want non-nil)", derr)

	l.Run(f.Heal - l.C.Now() + 2*l.C.Engine.Dt())
	post, err := diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
	if err != nil {
		return out, fmt.Errorf("post-restart diagnosis: %w", err)
	}
	check(post.Inferred == diagnosis.ResourceMemoryBandwidth,
		"post-restart verdict %s (want %s)", post.Inferred, diagnosis.ResourceMemoryBandwidth)
	return out, nil
}

// rankedHasMachine reports whether any ranked element lives on machine m.
func rankedHasMachine(rep *diagnosis.ContentionReport, m core.MachineID) bool {
	prefix := string(m) + "/"
	for _, el := range rep.Ranked {
		if strings.HasPrefix(string(el.Element), prefix) {
			return true
		}
	}
	return false
}

// chaosPartition runs a two-machine tenant (the hog and the loss are on
// m0; m1 is healthy) and partitions m1 away from the controller. The
// Algorithm 1 verdict must hold from m0's partial data alone, with m1's
// elements dropping out of the ranking during the partition and
// reappearing after it heals.
func chaosPartition(f ChaosFault) (ChaosOutcome, error) {
	out := ChaosOutcome{Fault: f.String(), OK: true}
	if err := validateChaosWindow(f); err != nil {
		return out, err
	}
	for _, a := range f.Agents {
		if a != "m1" {
			return out, fmt.Errorf("the partition lab can only cut off m1 (m0 carries the fault under diagnosis); got agents %v", f.Agents)
		}
	}

	l, err := probeLab(4, 2e9, 600e6) // m0: the memory-bandwidth scenario
	if err != nil {
		return out, err
	}
	defer l.C.Close()
	// m1: one lightly loaded sink VM on a second machine of the tenant.
	l.DefaultMachine("m1")
	sink := middlebox.NewSink("m1/vmb/app", 2e9)
	l.C.PlaceVM("m1", "vmb", 1.0, 2e9, sink)
	hb := l.C.AddHost("hb", 0)
	conn := l.C.Connect("fb", cluster.HostEndpoint("hb"), cluster.VMEndpoint("m1", "vmb"), stream.Config{})
	hb.AddSource(conn, 100e6)
	if err := l.RefreshAgent("m1"); err != nil {
		return out, err
	}
	l.C.AssignStack(probeTenant, "m1")
	l.C.AssignVM(probeTenant, "m1", "vmb")

	gate := &gatedClient{inner: &controller.LocalClient{A: l.Agents["m1"]}}
	l.Ctl.RegisterAgent("m1", gate)
	ch := sim.NewChaos(1)
	l.C.AddPreTick(ch)
	ch.Window(f.At, f.Heal, "partition-m1",
		func(time.Duration) { gate.down.Store(true) },
		func(time.Duration) { gate.down.Store(false) })

	l.Run(2 * time.Second)
	l.C.Machine("m0").AddHog(&machine.Hog{
		Name: "memhog", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33,
	})
	check := func(ok bool, format string, args ...any) {
		out.Checks = append(out.Checks, fmt.Sprintf(format, args...))
		if !ok {
			out.OK = false
		}
	}

	pre, err := diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
	if err != nil {
		return out, fmt.Errorf("pre-partition diagnosis: %w", err)
	}
	check(pre.Inferred == diagnosis.ResourceMemoryBandwidth,
		"pre-partition verdict %s (want %s)", pre.Inferred, diagnosis.ResourceMemoryBandwidth)
	check(rankedHasMachine(pre, "m1"), "pre-partition ranking covers m1 = %v (want true)", rankedHasMachine(pre, "m1"))

	during, err := diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
	if err != nil {
		return out, fmt.Errorf("diagnosis during partition (partial data should still diagnose): %w", err)
	}
	check(during.Inferred == diagnosis.ResourceMemoryBandwidth,
		"during partition verdict %s from m0's partial data (want %s)", during.Inferred, diagnosis.ResourceMemoryBandwidth)
	check(!rankedHasMachine(during, "m1"), "during partition ranking covers m1 = %v (want false)", rankedHasMachine(during, "m1"))

	l.Run(f.Heal - l.C.Now() + 2*l.C.Engine.Dt())
	post, err := diagnosis.FindContentionAndBottleneck(l.Ctl, probeTenant, 3*time.Second)
	if err != nil {
		return out, fmt.Errorf("post-heal diagnosis: %w", err)
	}
	check(post.Inferred == diagnosis.ResourceMemoryBandwidth,
		"post-heal verdict %s (want %s)", post.Inferred, diagnosis.ResourceMemoryBandwidth)
	check(rankedHasMachine(post, "m1"), "post-heal ranking covers m1 = %v (want true)", rankedHasMachine(post, "m1"))
	return out, nil
}

// chaosSkew serves a real agent over TCP with an injectable clock offset
// and checks the controller's per-connection skew estimator (the one the
// trace spine uses for span correction) converges to the injected skew.
func chaosSkew(f ChaosFault) (ChaosOutcome, error) {
	out := ChaosOutcome{Fault: f.String(), OK: true}
	if len(f.Agents) != 1 || f.Agents[0] != "m0" {
		return out, fmt.Errorf("the skew lab's only machine is m0; got agents %v", f.Agents)
	}
	if f.Offset < 10*time.Millisecond {
		return out, fmt.Errorf("skew offset %s below the estimator's noise floor; use >= 10ms", f.Offset)
	}

	l := NewLab(time.Millisecond)
	defer l.C.Close()
	l.DefaultMachine("m0")
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	l.C.PlaceVM("m0", "vm0", 1.0, 1e9, sink)
	l.C.AssignStack(chaosTenant, "m0")
	l.C.AssignVM(chaosTenant, "m0", "vm0")

	// The agent's clock is wall time plus a runtime-settable offset; the
	// chaos fault flips the offset mid-run.
	var skewNS atomic.Int64
	a, err := agent.Build(l.C.Machine("m0"), agent.BuildOptions{
		Clock: func() int64 { return time.Now().UnixNano() + skewNS.Load() },
	})
	if err != nil {
		return out, err
	}
	a.AllowSpans = true // per-query agent_ts rides the spans session
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	defer ln.Close()
	go a.Serve(ln)
	tc := controller.NewTCPClient(ln.Addr().String())
	tc.Spans = true
	defer tc.Close()
	l.Ctl.RegisterAgent("m0", tc)

	ch := sim.NewChaos(1)
	l.C.AddPreTick(ch)
	ch.At(f.At, "skew-m0", func(time.Duration) { skewNS.Store(f.Offset.Nanoseconds()) })

	ids := l.Ctl.TenantElements(chaosTenant, func(core.ElementID, core.ElementInfo) bool { return true })
	sample := func(n int) error {
		for i := 0; i < n; i++ {
			if _, err := l.Ctl.Sample(chaosTenant, ids); err != nil {
				return err
			}
		}
		return nil
	}
	check := func(ok bool, format string, args ...any) {
		out.Checks = append(out.Checks, fmt.Sprintf(format, args...))
		if !ok {
			out.OK = false
		}
	}

	if err := sample(4); err != nil {
		return out, fmt.Errorf("baseline sampling: %w", err)
	}
	base, seen := tc.SkewOffset()
	check(seen && time.Duration(abs64(base)) < f.Offset/4,
		"baseline skew estimate %s (want |est| < %s)", time.Duration(base), f.Offset/4)

	l.Run(f.At + l.C.Engine.Dt()) // cross the injection time
	if err := sample(12); err != nil {
		return out, fmt.Errorf("post-skew sampling: %w", err)
	}
	est, seen := tc.SkewOffset()
	lo, hi := f.Offset*6/10, f.Offset*14/10
	check(seen && time.Duration(est) >= lo && time.Duration(est) <= hi,
		"post-skew estimate %s after 12 round trips (want within [%s, %s] of injected %s)",
		time.Duration(est), lo, hi, f.Offset)
	return out, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// chaosSlowDisk injects latency into the QEMU log-tail channel (the
// disk-bound collection path) and checks the sweep wall time degrades by
// at least the injected amount per VM while the fault holds, and recovers
// after it heals.
func chaosSlowDisk(f ChaosFault) (ChaosOutcome, error) {
	out := ChaosOutcome{Fault: f.String(), OK: true}
	if len(f.Agents) != 1 || f.Agents[0] != "m0" {
		return out, fmt.Errorf("the slowdisk lab's only machine is m0; got agents %v", f.Agents)
	}
	if f.Heal == 0 || f.Heal <= f.At {
		return out, fmt.Errorf("slowdisk needs heal > at; got at=%s heal=%s", f.At, f.Heal)
	}

	l := NewLab(time.Millisecond)
	defer l.C.Close()
	l.DefaultMachine("m0")
	const vms = 2
	for i := 0; i < vms; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 1e9)
		l.C.PlaceVM("m0", vm, 1.0, 1e9, sink)
	}
	disk := &agent.LatencyVar{}
	l.SetAgentOptions(agent.BuildOptions{QEMULogExtra: disk})
	if err := l.BuildAgents(); err != nil {
		return out, err
	}
	l.C.AssignStack(chaosTenant, "m0")
	for i := 0; i < vms; i++ {
		l.C.AssignVM(chaosTenant, "m0", core.VMID(fmt.Sprintf("vm%d", i)))
	}

	ch := sim.NewChaos(1)
	l.C.AddPreTick(ch)
	ch.Window(f.At, f.Heal, "slowdisk-m0",
		func(time.Duration) { disk.Set(f.Latency) },
		func(time.Duration) { disk.Set(0) })

	ids := l.Ctl.TenantElements(chaosTenant, func(core.ElementID, core.ElementInfo) bool { return true })
	sweep := func() (time.Duration, error) {
		start := time.Now()
		_, err := l.Ctl.Sample(chaosTenant, ids)
		return time.Since(start), err
	}
	check := func(ok bool, format string, args ...any) {
		out.Checks = append(out.Checks, fmt.Sprintf(format, args...))
		if !ok {
			out.OK = false
		}
	}

	l.Run(f.At / 2)
	before, err := sweep()
	if err != nil {
		return out, fmt.Errorf("baseline sweep: %w", err)
	}
	l.Run(f.At - l.C.Now() + l.C.Engine.Dt())
	during, err := sweep()
	if err != nil {
		return out, fmt.Errorf("slow-disk sweep: %w", err)
	}
	l.Run(f.Heal - l.C.Now() + l.C.Engine.Dt())
	after, err := sweep()
	if err != nil {
		return out, fmt.Errorf("post-heal sweep: %w", err)
	}

	floor := time.Duration(vms) * f.Latency
	check(during >= floor, "sweep during fault took %s (injected floor %s for %d VM logs)", during, floor, vms)
	check(before < during, "baseline sweep %s < degraded sweep %s", before, during)
	check(after < during, "post-heal sweep %s < degraded sweep %s", after, during)
	return out, nil
}
