package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"perfsight/internal/anomaly"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/history"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
	"perfsight/internal/wire"
)

// HistoryReplayResult is the flight-recorder acceptance experiment: run
// the Algorithm 1 and Algorithm 2 scenarios with a background Monitor
// recording every sweep, then diagnose the SAME window twice — live
// (sampling agents and blocking the measurement window) and from the
// history store — and compare verdicts and cost.
type HistoryReplayResult struct {
	// Algorithm 1 (memory-bandwidth contention) verdicts.
	StackLive, StackHistory *diagnosis.ContentionReport
	// Algorithm 2 (chain root cause) verdicts.
	ChainLive, ChainHistory *diagnosis.RootCauseReport

	// Agent queries issued by each diagnosis path. The history path's
	// whole point is that this is zero.
	StackQueriesLive, StackQueriesHistory int64
	ChainQueriesLive, ChainQueriesHistory int64

	// LiveBlocked is the virtual time the live paths spent inside their
	// measurement windows; HistoryWall the wall-clock cost of the
	// history-backed diagnoses over the same windows.
	LiveBlocked time.Duration
	HistoryWall time.Duration

	// StoreStats and Events summarize what the recorder captured.
	StoreStats history.Stats
	Events     []history.Event
}

// Match reports whether both history verdicts equal their live twins and
// the history paths issued zero agent queries.
func (r *HistoryReplayResult) Match() bool {
	if r.StackLive == nil || r.StackHistory == nil || r.ChainLive == nil || r.ChainHistory == nil {
		return false
	}
	if r.StackQueriesHistory != 0 || r.ChainQueriesHistory != 0 {
		return false
	}
	if r.StackLive.Scope != r.StackHistory.Scope ||
		r.StackLive.TopLocation != r.StackHistory.TopLocation ||
		r.StackLive.Inferred != r.StackHistory.Inferred ||
		r.StackLive.TotalLoss != r.StackHistory.TotalLoss {
		return false
	}
	if len(r.StackLive.Ranked) != len(r.StackHistory.Ranked) {
		return false
	}
	for i := range r.StackLive.Ranked {
		if r.StackLive.Ranked[i] != r.StackHistory.Ranked[i] {
			return false
		}
	}
	if fmt.Sprint(r.ChainLive.RootCauses) != fmt.Sprint(r.ChainHistory.RootCauses) ||
		r.ChainLive.SourceUnderloaded != r.ChainHistory.SourceUnderloaded {
		return false
	}
	for id, m := range r.ChainLive.Metrics {
		if hm, ok := r.ChainHistory.Metrics[id]; !ok || hm.State != m.State {
			return false
		}
	}
	return true
}

// String renders the comparison.
func (r *HistoryReplayResult) String() string {
	var b strings.Builder
	b.WriteString("Flight recorder replay: live vs history diagnosis over the same window\n")
	fmt.Fprintf(&b, "Algorithm 1  live:    %s  (%d agent queries)\n", r.StackLive, r.StackQueriesLive)
	fmt.Fprintf(&b, "Algorithm 1  history: %s  (%d agent queries)\n", r.StackHistory, r.StackQueriesHistory)
	fmt.Fprintf(&b, "Algorithm 2  live:    %s  (%d agent queries)\n", r.ChainLive, r.ChainQueriesLive)
	fmt.Fprintf(&b, "Algorithm 2  history: %s  (%d agent queries)\n", r.ChainHistory, r.ChainQueriesHistory)
	fmt.Fprintf(&b, "live paths blocked %v of measurement window; history answered in %v wall\n",
		r.LiveBlocked, r.HistoryWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "recorder: %d series, %d resident points (%d appended, %d evicted), %d events\n",
		r.StoreStats.Series, r.StoreStats.Resident, r.StoreStats.Appends, r.StoreStats.Evicted, len(r.Events))
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "  event #%d t=%vs %s: %s\n", ev.Seq, ev.TS/1e9, ev.Element, ev.Summary)
	}
	if r.Match() {
		b.WriteString("verdicts identical; history path issued zero agent queries\n")
	} else {
		b.WriteString("VERDICTS DIVERGED\n")
	}
	return b.String()
}

// countingClient wraps an AgentClient and counts queries, so the
// experiment can prove the history path never touches an agent.
type countingClient struct {
	inner   controller.AgentClient
	queries *atomic.Int64
}

func (c *countingClient) Query(q wire.Query) ([]core.Record, error) {
	c.queries.Add(1)
	return c.inner.Query(q)
}
func (c *countingClient) ListElements() ([]wire.ElementMeta, error) { return c.inner.ListElements() }
func (c *countingClient) Ping() (time.Duration, error)              { return c.inner.Ping() }
func (c *countingClient) Close() error                              { return c.inner.Close() }

// recorderLab wires a lab's controller to a Monitor whose sweeps fire at
// every virtual second and inside every measurement wait, so the store
// holds samples at the exact instants live diagnosis snapshots.
type recorderLab struct {
	*Lab
	Store   *history.Store
	Mon     *history.Monitor
	Journal *history.Journal
	Pipe    *anomaly.Pipeline
	Queries atomic.Int64
}

func newRecorderLab(l *Lab, cfg anomaly.Config) *recorderLab {
	rl := &recorderLab{Lab: l}
	for mid, a := range l.Agents {
		l.Ctl.RegisterAgent(mid, &countingClient{
			inner:   &controller.LocalClient{A: a},
			queries: &rl.Queries,
		})
	}
	rl.Store = history.New(history.Config{Retention: time.Hour})
	rl.Journal = history.NewJournal(64)
	rl.Pipe = anomaly.NewPipeline(rl.Store, rl.Journal, cfg)
	rl.Pipe.Net = func(tid core.TenantID) *core.VirtualNet { return l.C.Topology().Tenants[tid] }
	rl.Mon = history.NewMonitor(l.Ctl, rl.Store, history.MonitorConfig{})
	rl.Mon.AfterSweep = rl.Pipe.AfterSweep
	// Measurement waits advance virtual time and then sweep, so both
	// endpoints of a live SampleInterval window land in the store.
	l.Ctl.Wait = func(d time.Duration) {
		l.C.Run(d)
		rl.Mon.Sweep(context.Background())
	}
	return rl
}

// monitorFor advances virtual time at the monitor cadence, sweeping after
// every step — the virtual-time equivalent of Monitor.Run.
func (rl *recorderLab) monitorFor(d, cadence time.Duration) {
	for elapsed := time.Duration(0); elapsed < d; elapsed += cadence {
		rl.C.Run(cadence)
		rl.Mon.Sweep(context.Background())
	}
}

// RunHistoryReplay executes the acceptance experiment.
func RunHistoryReplay() (*HistoryReplayResult, error) {
	res := &HistoryReplayResult{}

	// --- Algorithm 1: the Fig 11 memory-bandwidth scenario. ---
	l := NewLab(time.Millisecond)
	m := l.DefaultMachine("m0")
	const tid = core.TenantID("t-replay")
	for i := 0; i < 4; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 2e9)
		l.C.PlaceVM("m0", vm, 1.0, 2e9, sink)
		hn := fmt.Sprintf("h%d", i)
		host := l.C.AddHost(hn, 0)
		for j := 0; j < 4; j++ {
			conn := l.C.Connect(flowID(fmt.Sprintf("f%d-%d", i, j)),
				cluster.HostEndpoint(hn), cluster.VMEndpoint("m0", vm), stream.Config{})
			host.AddSource(conn, 3.4e9/16)
		}
		l.C.AssignVM(tid, "m0", vm)
	}
	l.C.AssignStack(tid, "m0")
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	rl := newRecorderLab(l, anomaly.Config{SLO: anomaly.SLOConfig{Default: anomaly.SLO{
		DropRatePPS:      100,
		Window:           anomaly.Duration(3 * time.Second),
		Cooldown:         anomaly.Duration(time.Minute),
		DisableBaselines: true, // this experiment exercises the drop-rate SLO path alone
	}}})

	rl.monitorFor(5*time.Second, time.Second) // healthy baseline on record
	m.AddHog(&machine.Hog{Name: "memvms", Kind: machine.HogMem, MemDemandBps: 23e9, CyclesPerByte: 0.33})
	rl.monitorFor(5*time.Second, time.Second) // contention on record; watcher fires

	const window = 3 * time.Second
	liveStart := l.C.Now()
	q0 := rl.Queries.Load()
	stackLive, err := diagnosis.FindContentionAndBottleneck(l.Ctl, tid, window)
	if err != nil {
		return nil, fmt.Errorf("live stack diagnosis: %w", err)
	}
	res.StackLive = stackLive
	res.StackQueriesLive = rl.Queries.Load() - q0
	res.LiveBlocked += l.C.Now() - liveStart

	asOf, _ := rl.Store.NewestTS(tid)
	q0 = rl.Queries.Load()
	wall := time.Now()
	stackHist, err := rl.Store.DiagnoseStack(tid, window, asOf)
	res.HistoryWall += time.Since(wall)
	if err != nil {
		return nil, fmt.Errorf("history stack diagnosis: %w", err)
	}
	res.StackHistory = stackHist
	res.StackQueriesHistory = rl.Queries.Load() - q0
	res.StoreStats = rl.Store.Stats()
	res.Events = rl.Journal.Since(0, 0)

	// --- Algorithm 2: the Fig 12 chain-propagation scenario. ---
	cl := NewLab(time.Millisecond)
	cl.C.RmemPerConn = 212992
	cl.DefaultMachine("m0")
	const C = 100e6
	server := middlebox.NewServer("m0/vm-srv/app", C, 600)
	cl.C.PlaceVM("m0", "vm-srv", 1.0, C, server)
	toSrv := cl.C.Connect("px-srv", cluster.VMEndpoint("m0", "vm-px"), cluster.VMEndpoint("m0", "vm-srv"), stream.Config{})
	proxy := middlebox.NewProxy("m0/vm-px/app", C, middlebox.ConnOutput{C: toSrv})
	cl.C.PlaceVM("m0", "vm-px", 1.0, C, proxy)
	toPx := cl.C.Connect("lb-px", cluster.VMEndpoint("m0", "vm-lb"), cluster.VMEndpoint("m0", "vm-px"), stream.Config{})
	lb := middlebox.NewLoadBalancer("m0/vm-lb/app", C, middlebox.ConnOutput{C: toPx})
	cl.C.PlaceVM("m0", "vm-lb", 1.0, C, lb)
	client := cl.C.AddHost("client", 0)
	in := cl.C.Connect("cl-lb", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-lb"), stream.Config{})
	client.AddSource(in, 0)
	cl.C.AssignStack(tid, "m0")
	for _, vm := range []core.VMID{"vm-lb", "vm-px", "vm-srv"} {
		cl.C.AssignVM(tid, "m0", vm)
	}
	cl.C.AddChain(tid, "m0/vm-lb/app", "m0/vm-px/app", "m0/vm-srv/app")
	if err := cl.BuildAgents(); err != nil {
		return nil, err
	}
	crl := newRecorderLab(cl, anomaly.Config{SLO: anomaly.SLOConfig{Default: anomaly.SLO{DisableBaselines: true}}})
	crl.monitorFor(3*time.Second, time.Second)

	const chainWindow = 2 * time.Second
	liveStart = cl.C.Now()
	q0 = crl.Queries.Load()
	chainLive, err := diagnosis.LocateRootCause(cl.Ctl, tid, chainWindow)
	if err != nil {
		return nil, fmt.Errorf("live chain diagnosis: %w", err)
	}
	res.ChainLive = chainLive
	res.ChainQueriesLive = crl.Queries.Load() - q0
	res.LiveBlocked += cl.C.Now() - liveStart

	asOf, _ = crl.Store.NewestTS(tid)
	q0 = crl.Queries.Load()
	wall = time.Now()
	chainHist, err := crl.Store.DiagnoseChain(tid, chainWindow, asOf, cl.C.Topology().Tenants[tid])
	res.HistoryWall += time.Since(wall)
	if err != nil {
		return nil, fmt.Errorf("history chain diagnosis: %w", err)
	}
	res.ChainHistory = chainHist
	res.ChainQueriesHistory = crl.Queries.Load() - q0
	return res, nil
}
