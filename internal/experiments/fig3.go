package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// Fig3Point is one sweep point of the memory-vs-network contention curve.
type Fig3Point struct {
	MemDemandGBps   float64
	MemAchievedGBps float64
	NetGbps         float64
}

// Fig3Result reproduces Figure 3: 8 VMs on an 8-core, 10 GbE machine; some
// stream memory copies, the rest send traffic best-effort. Past a
// threshold, every extra GB/s of memory throughput costs the network
// ~439 Mbps in the paper.
type Fig3Result struct {
	Points []Fig3Point
	// SlopeMbpsPerGBps is the fitted network loss per extra GB/s of
	// memory throughput in the contended region (paper: −439).
	SlopeMbpsPerGBps float64
	// KneeGBps is the memory throughput where the network first leaves
	// saturation.
	KneeGBps float64
	// PeakNetGbps is the uncontended network throughput (paper: 10).
	PeakNetGbps float64
}

// Fig3Config tunes the sweep.
type Fig3Config struct {
	SenderVMs    int
	FlowsPerVM   int
	HogVMs       int
	MaxMemGBps   float64
	StepGBps     float64
	SettlePerPt  time.Duration
	MeasurePerPt time.Duration
	Tick         time.Duration
}

// DefaultFig3Config mirrors the paper's setup.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		SenderVMs:    6,
		FlowsPerVM:   3,
		HogVMs:       2,
		MaxMemGBps:   12,
		StepGBps:     1,
		SettlePerPt:  2 * time.Second,
		MeasurePerPt: 2 * time.Second,
		Tick:         200 * time.Microsecond,
	}
}

// RunFig3 executes the sweep.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	if cfg.Tick <= 0 {
		cfg.Tick = 200 * time.Microsecond
	}
	if cfg.FlowsPerVM <= 0 {
		cfg.FlowsPerVM = 1
	}
	l := NewLab(cfg.Tick)
	m := l.DefaultMachine("m0")
	l.C.AddHost("peer", 0)

	// Sender VMs push best-effort streams out to a remote host; several
	// flows per VM spread across the per-CPU backlog queues as real
	// multi-connection tenants do.
	for i := 0; i < cfg.SenderVMs; i++ {
		vm := core.VMID(fmt.Sprintf("vm-net%d", i))
		var apps []machine.App
		for j := 0; j < cfg.FlowsPerVM; j++ {
			conn := l.C.Connect(flowID(fmt.Sprintf("net-%d-%d", i, j)),
				cluster.VMEndpoint("m0", vm), cluster.HostEndpoint("peer"), stream.Config{})
			apps = append(apps, middlebox.NewConnSource(
				core.ElementID(fmt.Sprintf("m0/%s/app%d", vm, j)), 10e9, conn, 0))
		}
		l.C.PlaceVM("m0", vm, 1.0, 10e9, apps...)
	}

	// Hog VMs run the memory-copy workload; demand is swept.
	var hogs []*machine.Hog
	for i := 0; i < cfg.HogVMs; i++ {
		vm := core.VMID(fmt.Sprintf("vm-mem%d", i))
		l.C.PlaceVM("m0", vm, 1.0, 1e9)
		hogs = append(hogs, m.AddHog(&machine.Hog{
			Name:          fmt.Sprintf("memcpy-%d", i),
			Kind:          machine.HogMem,
			VM:            vm,
			CyclesPerByte: 0.33, // rep-movsb streaming copy
		}))
	}

	res := &Fig3Result{}
	pnic := m.Stack.PNic
	for demand := 0.0; demand <= cfg.MaxMemGBps+1e-9; demand += cfg.StepGBps {
		per := demand * 1e9 / float64(len(hogs))
		for _, h := range hogs {
			h.MemDemandBps = per
		}
		l.Run(cfg.SettlePerPt)

		txBefore := pnic.ES.Tx.Bytes.Load()
		memBefore := int64(0)
		for _, h := range hogs {
			memBefore += h.AchievedMemBytes()
		}
		l.Run(cfg.MeasurePerPt)
		sec := cfg.MeasurePerPt.Seconds()
		txAfter := pnic.ES.Tx.Bytes.Load()
		memAfter := int64(0)
		for _, h := range hogs {
			memAfter += h.AchievedMemBytes()
		}
		res.Points = append(res.Points, Fig3Point{
			MemDemandGBps:   demand,
			MemAchievedGBps: float64(memAfter-memBefore) / sec / 1e9,
			NetGbps:         float64(txAfter-txBefore) * 8 / sec / 1e9,
		})
	}
	res.analyze()
	return res, nil
}

// analyze fits the knee and slope.
func (r *Fig3Result) analyze() {
	if len(r.Points) == 0 {
		return
	}
	r.PeakNetGbps = r.Points[0].NetGbps
	for _, p := range r.Points {
		if p.NetGbps > r.PeakNetGbps {
			r.PeakNetGbps = p.NetGbps
		}
	}
	// Knee: first point where net drops below 95% of peak.
	kneeIdx := -1
	for i, p := range r.Points {
		if p.NetGbps < 0.95*r.PeakNetGbps {
			kneeIdx = i
			break
		}
	}
	if kneeIdx <= 0 {
		return
	}
	r.KneeGBps = r.Points[kneeIdx-1].MemAchievedGBps
	// Least-squares slope over the fully contended tail (skip the soft
	// knee where the NIC still partially binds).
	tail := kneeIdx + 2
	if tail > len(r.Points)-2 {
		tail = kneeIdx
	}
	var sx, sy, sxx, sxy float64
	n := 0.0
	for _, p := range r.Points[tail:] {
		x := p.MemAchievedGBps
		y := p.NetGbps * 1000 // Mbps
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n >= 2 && n*sxx-sx*sx != 0 {
		r.SlopeMbpsPerGBps = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	}
}

// String renders the figure as a data table plus the fitted shape.
func (r *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: memory-bandwidth contention vs network throughput\n")
	b.WriteString("mem demand (GB/s)  mem achieved (GB/s)  network (Gbps)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%17.1f  %19.2f  %14.2f\n", p.MemDemandGBps, p.MemAchievedGBps, p.NetGbps)
	}
	fmt.Fprintf(&b, "peak network: %.2f Gbps (paper: 10)\n", r.PeakNetGbps)
	fmt.Fprintf(&b, "knee: %.1f GB/s of memory throughput\n", r.KneeGBps)
	fmt.Fprintf(&b, "slope beyond knee: %.0f Mbps per +1 GB/s (paper: -439)\n", r.SlopeMbpsPerGBps)
	return b.String()
}
