package experiments

import (
	"testing"

	"perfsight/internal/diagnosis"
)

// TestRunMboxKinds asserts the paper's missing middlebox kinds are covered
// end to end: the IDS's capture-ring loss is located AT the middlebox and
// blamed on the VM's own allocation, and the SmartCache's warming hit
// ratio shows up in the controller's interval arithmetic.
func TestRunMboxKinds(t *testing.T) {
	res, err := RunMboxKinds()
	if err != nil {
		t.Fatalf("RunMboxKinds: %v", err)
	}
	t.Logf("\n%s", res)
	if res.IDSTopLocation != diagnosis.LocMiddlebox {
		t.Errorf("IDS loss located at %s; want %s", res.IDSTopLocation, diagnosis.LocMiddlebox)
	}
	if res.IDSInferred != diagnosis.ResourceVMBottleneck {
		t.Errorf("IDS inferred %s; want %s", res.IDSInferred, diagnosis.ResourceVMBottleneck)
	}
	if res.IDSTopElement != "m0/vm-ids/app" || res.IDSDropPkts <= 0 {
		t.Errorf("IDS top element %s with %.0f drops; want m0/vm-ids/app with > 0", res.IDSTopElement, res.IDSDropPkts)
	}
	if !res.CacheOK {
		t.Errorf("SmartCache warming not visible to the controller: hit ratio %.2f, out/in %.3f (want ~%.2f)",
			res.CacheHitRatio, res.CacheOutRatio, res.CacheWantOut)
	}
	if !res.AllCorrect() {
		t.Errorf("AllCorrect() = false:\n%s", res)
	}
}
