package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// AblationRow compares a design choice enabled vs disabled on the metric
// that motivated it.
type AblationRow struct {
	Choice   string
	Metric   string
	With     float64
	Without  float64
	Expected string // what should happen without the mechanism
	Holds    bool   // the mechanism makes the documented difference
}

// AblationResult collects the DESIGN.md §5 design-choice ablations.
type AblationResult struct {
	Rows []AblationRow
}

// AllHold reports whether every ablation behaved as documented.
func (r *AblationResult) AllHold() bool {
	for _, row := range r.Rows {
		if !row.Holds {
			return false
		}
	}
	return len(r.Rows) > 0
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablations: calibrated design choices vs the model without them\n")
	b.WriteString("choice                      metric                         with      without  holds\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s  %-28s %9.2f  %9.2f  %v\n",
			row.Choice, row.Metric, row.With, row.Without, row.Holds)
	}
	return b.String()
}

// RunAblations executes each ablation scenario twice.
func RunAblations() (*AblationResult, error) {
	res := &AblationResult{}

	// 1. Fair backlog admission (Fig 10): without it, tick phasing hands
	// the flood all the loss and the victim flow sails through unharmed.
	with, err := backlogVictimMbps(false)
	if err != nil {
		return nil, err
	}
	without, err := backlogVictimMbps(true)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Choice:   "fair-backlog-admission",
		Metric:   "victim flow under flood, Mbps",
		With:     with,
		Without:  without,
		Expected: "without: the victim is artificially protected",
		Holds:    with < 0.5*without,
	})

	// 2. I/O-thread load inflation (Fig 8 phase 3): without it, fair-share
	// scheduling protects QEMU perfectly and CPU contention leaves no
	// TUN-drop symptom.
	dWith, err := cpuContentionTUNDrops(false)
	if err != nil {
		return nil, err
	}
	dWithout, err := cpuContentionTUNDrops(true)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Choice:   "io-thread-load-inflation",
		Metric:   "TUN drops under CPU hogs",
		With:     dWith,
		Without:  dWithout,
		Expected: "without: no drop symptom to diagnose",
		Holds:    dWith > 10 && dWithout < dWith/5,
	})

	// 3. Guest burst scheduling (Fig 8 phase 5): a vCPU-dominating hog
	// makes the guest kernel and app run in scheduler-latency bursts;
	// without modelling that, the continuously-running guest flow-controls
	// its senders and an in-VM CPU hog leaves no TUN-drop symptom.
	mWith, err := vmHogTUNDrops(false)
	if err != nil {
		return nil, err
	}
	mWithout, err := vmHogTUNDrops(true)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Choice:   "guest-burst-scheduling",
		Metric:   "TUN drops under in-VM hog",
		With:     mWith,
		Without:  mWithout,
		Expected: "without: far fewer drops reach the TUN",
		Holds:    mWith > 10 && mWithout < mWith/2,
	})

	return res, nil
}

// backlogVictimMbps reproduces the Fig 10 core and returns the victim
// flow's throughput during the flood.
func backlogVictimMbps(noFairAdmission bool) (float64, error) {
	l := NewLab(time.Millisecond)
	cfg := machine.DefaultConfig("m0")
	cfg.Stack.PNICRxBps = 1e9
	cfg.Stack.PNICTxBps = 1e9
	cfg.Stack.BacklogQueues = 1
	cfg.Stack.Costs.NAPICyclesPerPkt = 9000
	cfg.Stack.NoFairBacklogAdmission = noFairAdmission
	l.C.AddMachine(cfg)

	sink := middlebox.NewSink("m0/vm1/app", 1e9)
	l.C.PlaceVM("m0", "vm1", 1.0, 1e9, sink)
	src := l.C.AddHost("src", 0)
	for j := 0; j < 4; j++ {
		conn := l.C.Connect(flowID(fmt.Sprintf("rx-%d", j)),
			cluster.HostEndpoint("src"), cluster.VMEndpoint("m0", "vm1"), stream.Config{})
		src.AddSource(conn, 125e6)
	}
	l.C.AddHost("peer", 0)
	flood := middlebox.NewRawSource("m0/vm2/app", 1e9, "smallpkts", 0, 64, nil)
	l.C.PlaceVM("m0", "vm2", 1.0, 1e9, flood)
	l.C.RouteFlow("smallpkts", cluster.VMEndpoint("m0", "vm2"), cluster.HostEndpoint("peer"))

	l.Run(3 * time.Second)
	flood.RateBps = 400e6
	l.Run(2 * time.Second) // let the collapse settle
	before := sink.ReceivedBytes()
	l.Run(2 * time.Second)
	return float64(sink.ReceivedBytes()-before) * 8 / 2 / 1e6, nil
}

// cpuContentionTUNDrops reproduces the Fig 8 CPU phase and returns the
// middlebox VMs' TUN drops over the fault window.
func cpuContentionTUNDrops(noInflation bool) (float64, error) {
	l := NewLab(time.Millisecond)
	l.C.RmemPerConn = 212992
	cfg := machine.DefaultConfig("m0")
	cfg.Stack.VNICRing = 256
	cfg.NoLoadInflation = noInflation
	m := l.C.AddMachine(cfg)

	vm := core.VMID("vm-mb")
	l.C.AddHost("server", 0)
	out := l.C.Connect("mb-out", cluster.VMEndpoint("m0", vm), cluster.HostEndpoint("server"), stream.Config{})
	lb := middlebox.NewForwarder("m0/vm-mb/app", 1e9,
		middlebox.ForwardConfig{CyclesPerByte: 8, CyclesPerPacket: 2000}, middlebox.ConnOutput{C: out})
	l.C.PlaceVM("m0", vm, 1.0, 1e9, lb)
	client := l.C.AddHost("client", 0)
	for j := 0; j < 10; j++ {
		in := l.C.Connect(flowID(fmt.Sprintf("mb-in%d", j)),
			cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", vm), stream.Config{})
		client.AddSource(in, 42e6)
	}
	for i := 0; i < 6; i++ {
		hv := core.VMID(fmt.Sprintf("vm-t%d", i))
		l.C.PlaceVM("m0", hv, 1.0, 1e9)
	}

	l.Run(3 * time.Second)
	for i := 0; i < 6; i++ {
		m.AddHog(&machine.Hog{
			Name: fmt.Sprintf("cpu%d", i), Kind: machine.HogCPU,
			VM: core.VMID(fmt.Sprintf("vm-t%d", i)), CPUDemandCores: 2.0,
		})
	}
	before := m.VM(vm).Stack.Tun.ES.Drop.Packets.Load()
	l.Run(6 * time.Second)
	return float64(m.VM(vm).Stack.Tun.ES.Drop.Packets.Load() - before), nil
}

// vmHogTUNDrops reproduces the Fig 8 phase-5 core (a CPU hog inside a
// middlebox VM) and returns that VM's TUN drops during the fault.
func vmHogTUNDrops(noBursts bool) (float64, error) {
	l := NewLab(time.Millisecond)
	l.C.RmemPerConn = 212992
	cfg := machine.DefaultConfig("m0")
	cfg.Stack.VNICRing = 256
	cfg.NoGuestBurstScheduling = noBursts
	m := l.C.AddMachine(cfg)

	vm := core.VMID("vm-mb")
	l.C.AddHost("server", 0)
	out := l.C.Connect("mb-out", cluster.VMEndpoint("m0", vm), cluster.HostEndpoint("server"), stream.Config{})
	lb := middlebox.NewForwarder("m0/vm-mb/app", 1e9,
		middlebox.ForwardConfig{CyclesPerByte: 8, CyclesPerPacket: 2000}, middlebox.ConnOutput{C: out})
	l.C.PlaceVM("m0", vm, 1.0, 1e9, lb)
	client := l.C.AddHost("client", 0)
	for j := 0; j < 10; j++ {
		in := l.C.Connect(flowID(fmt.Sprintf("mb-in%d", j)),
			cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", vm), stream.Config{})
		client.AddSource(in, 42e6)
	}

	l.Run(3 * time.Second)
	m.AddHog(&machine.Hog{Name: "vmhog", Kind: machine.HogCPU, VM: vm, CPUDemandCores: 4})
	before := m.VM(vm).Stack.Tun.ES.Drop.Packets.Load()
	l.Run(6 * time.Second)
	return float64(m.VM(vm).Stack.Tun.ES.Drop.Packets.Load() - before), nil
}
