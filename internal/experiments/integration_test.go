package experiments

import (
	"fmt"
	"testing"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// TestDiagnoseMemoryBandwidthContention reproduces the §7.2 case-2
// behaviour end to end through agents and controller: memory hogs starve
// the datapath, drops appear at multiple VMs' TUNs, and Algorithm 1 plus
// the rule book blame memory bandwidth.
func TestDiagnoseMemoryBandwidthContention(t *testing.T) {
	l := NewLab(time.Millisecond)
	m := l.DefaultMachine("m0")
	const tid = core.TenantID("t1")

	for i := 0; i < 4; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 2e9)
		l.C.PlaceVM("m0", vm, 1.0, 2e9, sink)
		hn := fmt.Sprintf("h%d", i)
		host := l.C.AddHost(hn, 0)
		conn := l.C.Connect(dataplane.FlowID(fmt.Sprintf("flow-%d", i)),
			cluster.HostEndpoint(hn), cluster.VMEndpoint("m0", vm), stream.Config{})
		host.AddSource(conn, 600e6) // below capacity: a healthy baseline
	}
	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	l.C.AssignStack(tid, "m0")
	for i := 0; i < 4; i++ {
		l.C.AssignVM(tid, "m0", core.VMID(fmt.Sprintf("vm%d", i)))
	}

	l.Run(2 * time.Second) // warm up

	m.AddHog(&machine.Hog{Name: "memhog", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.5})

	// Diagnose across the onset and early steady state, as an operator
	// responding to a degradation ticket would.
	rep, err := diagnosis.FindContentionAndBottleneck(l.Ctl, tid, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLoss == 0 {
		t.Fatalf("expected packet loss under memory contention; report: %s", rep)
	}
	if rep.TopLocation != diagnosis.LocTUNAggregated {
		t.Fatalf("drop location = %s; want tun-aggregated\nranked: %+v", rep.TopLocation, rep.Ranked)
	}
	if rep.Scope != diagnosis.ScopeContention {
		t.Fatalf("scope = %s; want contention (dropping VMs: %v)", rep.Scope, rep.DroppingVMs)
	}
	if rep.Inferred != diagnosis.ResourceMemoryBandwidth {
		t.Fatalf("inferred = %s (evidence %+v); want memory-bandwidth", rep.Inferred, rep.Evidence)
	}
}

// TestDiagnoseVMBottleneck verifies a single under-provisioned VM is
// reported as a bottleneck at its own TUN (Table 1 last row).
func TestDiagnoseVMBottleneck(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	const tid = core.TenantID("t1")

	// vm0 is healthy, vm1 is starved of vCPU.
	sink0 := middlebox.NewSink("m0/vm0/app", 1e9)
	l.C.PlaceVM("m0", "vm0", 1.0, 1e9, sink0)
	sink1 := middlebox.NewSink("m0/vm1/app", 1e9)
	l.C.PlaceVM("m0", "vm1", 0.02, 1e9, sink1)

	gw := l.C.AddHost("gw", 0)
	l.C.RouteFlow("f0", cluster.HostEndpoint("gw"), cluster.VMEndpoint("m0", "vm0"))
	l.C.RouteFlow("f1", cluster.HostEndpoint("gw"), cluster.VMEndpoint("m0", "vm1"))
	l.C.Engine.AddFunc(func(now, dt time.Duration) {
		for _, f := range []dataplane.FlowID{"f0", "f1"} {
			bytes := int64(400e6 / 8 * dt.Seconds())
			gw.EmitRaw(dataplane.Batch{Flow: f, Packets: int(bytes / 1448), Bytes: bytes})
		}
	})

	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	l.C.AssignStack(tid, "m0")
	l.C.AssignVM(tid, "m0", "vm0")
	l.C.AssignVM(tid, "m0", "vm1")

	l.Run(2 * time.Second)
	rep, err := diagnosis.FindContentionAndBottleneck(l.Ctl, tid, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scope != diagnosis.ScopeBottleneck {
		t.Fatalf("scope = %s (loc %s, dropping %v); want bottleneck", rep.Scope, rep.TopLocation, rep.DroppingVMs)
	}
	if rep.BottleneckVM != "vm1" {
		t.Fatalf("bottleneck VM = %s; want vm1", rep.BottleneckVM)
	}
	if rep.Inferred != diagnosis.ResourceVMBottleneck {
		t.Fatalf("inferred = %s; want vm-bottleneck", rep.Inferred)
	}
}

// TestDiagnoseChainRootCause verifies Algorithm 2 end to end: in a
// client -> LB -> proxy -> server chain with a slow server, the blocked
// states propagate upstream and pruning isolates the server.
func TestDiagnoseChainRootCause(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	const tid = core.TenantID("t1")
	const C = 100e6 // vNIC capacity, as in Fig 12

	// Server: so expensive per byte it saturates below the vNIC rate.
	server := middlebox.NewServer("m0/vm-srv/app", C, 400)
	l.C.PlaceVM("m0", "vm-srv", 1.0, C, server)

	connPS := l.C.Connect("f-ps", cluster.VMEndpoint("m0", "vm-px"), cluster.VMEndpoint("m0", "vm-srv"), stream.Config{})
	proxy := middlebox.NewProxy("m0/vm-px/app", C, middlebox.ConnOutput{C: connPS})
	l.C.PlaceVM("m0", "vm-px", 1.0, C, proxy)

	connLP := l.C.Connect("f-lp", cluster.VMEndpoint("m0", "vm-lb"), cluster.VMEndpoint("m0", "vm-px"), stream.Config{})
	lb := middlebox.NewLoadBalancer("m0/vm-lb/app", C, middlebox.ConnOutput{C: connLP})
	l.C.PlaceVM("m0", "vm-lb", 1.0, C, lb)

	client := l.C.AddHost("client", 0)
	connCL := l.C.Connect("f-cl", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-lb"), stream.Config{})
	src := client.AddSource(connCL, 0) // as fast as possible

	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	l.C.AssignStack(tid, "m0")
	for _, vm := range []core.VMID{"vm-lb", "vm-px", "vm-srv"} {
		l.C.AssignVM(tid, "m0", vm)
	}
	l.C.AddChain(tid, "m0/vm-lb/app", "m0/vm-px/app", "m0/vm-srv/app")

	l.Run(3 * time.Second)

	rep, err := diagnosis.LocateRootCause(l.Ctl, tid, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RootCauses) != 1 || rep.RootCauses[0] != "m0/vm-srv/app" {
		t.Fatalf("root causes = %v; want [m0/vm-srv/app]\nmetrics: %+v", rep.RootCauses, rep.Metrics)
	}
	if s := rep.Metrics["m0/vm-lb/app"].State; s != diagnosis.StateWriteBlocked {
		t.Fatalf("LB state = %s; want WriteBlocked (metrics %+v)", s, rep.Metrics["m0/vm-lb/app"])
	}
	if s := rep.Metrics["m0/vm-px/app"].State; s != diagnosis.StateWriteBlocked {
		t.Fatalf("proxy state = %s; want WriteBlocked (metrics %+v)", s, rep.Metrics["m0/vm-px/app"])
	}

	// Underloaded client: slow the source to a trickle; everyone should be
	// ReadBlocked and the report should blame the source.
	src.SetRate(2e6)
	l.Run(2 * time.Second)
	rep, err = diagnosis.LocateRootCause(l.Ctl, tid, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SourceUnderloaded {
		t.Fatalf("want SourceUnderloaded; got %s\nmetrics: %+v", rep, rep.Metrics)
	}
}
