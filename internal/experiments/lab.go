// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) plus the motivating Figure 3. Each experiment is a
// scenario builder returning a typed result with a text renderer, shared
// by the benchmark harness (bench_test.go), the perfsight-lab binary, and
// the integration tests. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
)

// Lab couples a simulated cluster with PerfSight agents and a controller
// whose measurement windows advance virtual time.
type Lab struct {
	C      *cluster.Cluster
	Ctl    *controller.Controller
	Agents map[core.MachineID]*agent.Agent

	agentOpts agent.BuildOptions
}

// NewLab builds an empty lab with the given tick.
func NewLab(dt time.Duration) *Lab {
	c := cluster.New(dt)
	ctl := controller.New(c.Topology())
	ctl.Wait = func(d time.Duration) { c.Run(d) }
	return &Lab{
		C:      c,
		Ctl:    ctl,
		Agents: make(map[core.MachineID]*agent.Agent),
	}
}

// SetAgentOptions overrides agent build options (e.g. socket-based
// middlebox channels, emulated channel latencies) for subsequent
// BuildAgents calls.
func (l *Lab) SetAgentOptions(opts agent.BuildOptions) { l.agentOpts = opts }

// BuildAgents (re)builds the agent for every machine and registers local
// clients with the controller. Call after placement changes.
func (l *Lab) BuildAgents() error {
	for _, mid := range l.C.Machines() {
		if err := l.RefreshAgent(mid); err != nil {
			return err
		}
	}
	return nil
}

// RefreshAgent rebuilds one machine's agent (after VM add/remove).
func (l *Lab) RefreshAgent(mid core.MachineID) error {
	m := l.C.Machine(mid)
	if m == nil {
		return fmt.Errorf("experiments: unknown machine %s", mid)
	}
	opts := l.agentOpts
	if opts.Clock == nil {
		opts.Clock = l.C.NowNS
	}
	a, err := agent.Build(m, opts)
	if err != nil {
		return err
	}
	l.Agents[mid] = a
	l.Ctl.RegisterAgent(mid, &controller.LocalClient{A: a})
	return nil
}

// DefaultMachine adds a paper-testbed machine (8 cores, 10 GbE).
func (l *Lab) DefaultMachine(id core.MachineID) *machine.Machine {
	return l.C.AddMachine(machine.DefaultConfig(id))
}

// Run advances virtual time.
func (l *Lab) Run(d time.Duration) { l.C.Run(d) }

// flowID shortens dataplane.FlowID construction in scenario builders.
func flowID(s string) dataplane.FlowID { return dataplane.FlowID(s) }

// flowMeter counts delivery/drop feedback for open-loop flows.
type flowMeter struct {
	deliveredPkts  atomic.Int64
	deliveredBytes atomic.Int64
	droppedPkts    atomic.Int64
}

// Delivered implements dataplane.Feedback.
func (f *flowMeter) Delivered(packets int, bytes int64) {
	f.deliveredPkts.Add(int64(packets))
	f.deliveredBytes.Add(bytes)
}

// Dropped implements dataplane.Feedback.
func (f *flowMeter) Dropped(packets int, bytes int64, where core.ElementID) {
	f.droppedPkts.Add(int64(packets))
}

// batch builds a raw wire batch of the given size on a flow.
func batch(flow string, bytes int64, pktSize int) dataplane.Batch {
	if pktSize <= 0 {
		pktSize = 1448
	}
	pkts := int((bytes + int64(pktSize) - 1) / int64(pktSize))
	return dataplane.Batch{Flow: dataplane.FlowID(flow), Packets: pkts, Bytes: bytes}
}
