package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFig3Shape checks the motivating figure's three claims: a saturated
// plateau, a knee, and a decline near -439 Mbps per GB/s.
func TestFig3Shape(t *testing.T) {
	r, err := RunFig3(DefaultFig3Config())
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakNetGbps < 9 || r.PeakNetGbps > 10.5 {
		t.Errorf("peak %.2f Gbps; want ~10", r.PeakNetGbps)
	}
	if r.KneeGBps < 2.5 || r.KneeGBps > 6 {
		t.Errorf("knee at %.1f GB/s; want ~4-5", r.KneeGBps)
	}
	if r.SlopeMbpsPerGBps > -300 || r.SlopeMbpsPerGBps < -600 {
		t.Errorf("slope %.0f Mbps per GB/s; want ~-439", r.SlopeMbpsPerGBps)
	}
}

// TestFig8AllPhases checks every injected problem is located correctly.
func TestFig8AllPhases(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.PhaseLen = 6 * time.Second
	cfg.QuietLen = 4 * time.Second
	r, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Phases {
		if !p.OK {
			t.Errorf("phase %s: observed %s, want %s (inferred %s)",
				p.Name, p.ObservedLoc, p.ExpectedLoc, p.Inferred)
		}
	}
}

// TestFig9Shape checks the channel-latency ordering.
func TestFig9Shape(t *testing.T) {
	r, err := RunFig9(7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ShapeCorrect() {
		t.Errorf("latency shape wrong:\n%s", r)
	}
}

// TestFig10BacklogContention checks collapse plus correct diagnosis.
func TestFig10BacklogContention(t *testing.T) {
	r, err := RunFig10()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Correct() {
		t.Fatalf("diagnosis wrong: %s", r.Report)
	}
	if r.AfterGbps > 0.75*r.BeforeGbps {
		t.Errorf("flow1 %.3f -> %.3f Gbps; want a collapse", r.BeforeGbps, r.AfterGbps)
	}
}

// TestFig11MemoryBandwidth checks the throughput drop and TUN-dominated
// loss distribution.
func TestFig11MemoryBandwidth(t *testing.T) {
	r, err := RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Correct() {
		t.Fatalf("fig11 wrong: %s", r)
	}
	if r.AfterGbps > 0.75*r.BeforeGbps {
		t.Errorf("throughput %.2f -> %.2f; want a clear drop", r.BeforeGbps, r.AfterGbps)
	}
}

// TestFig12Propagation checks all three root-cause cases.
func TestFig12Propagation(t *testing.T) {
	r, err := RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllCorrect() {
		t.Fatalf("fig12 wrong:\n%s", r)
	}
}

// TestFig13Operator checks the multi-tenant workflow's headline numbers.
func TestFig13Operator(t *testing.T) {
	r, err := RunFig13()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Correct() {
		t.Fatalf("fig13 wrong:\n%s", r)
	}
	if !strings.Contains(r.Phases[0].Note, "vm-p2") {
		t.Errorf("phase 1 should blame vm-p2: %q", r.Phases[0].Note)
	}
}

// TestTable1RuleBook checks every resource probe.
func TestTable1RuleBook(t *testing.T) {
	r, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllCorrect() {
		t.Fatalf("rule book wrong:\n%s", r)
	}
}

// TestTable2Overhead checks the <2% instrumentation bound.
func TestTable2Overhead(t *testing.T) {
	r, err := RunTable2(3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Correct() {
		t.Fatalf("table2 wrong:\n%s", r)
	}
}

// TestFig15MiddleboxOverhead checks the <5% bound per middlebox type.
func TestFig15MiddleboxOverhead(t *testing.T) {
	r, err := RunFig15(2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Correct() {
		t.Fatalf("fig15 wrong:\n%s", r)
	}
}

// TestFig16QueryCost checks the polling-cost curve over real TCP.
func TestFig16QueryCost(t *testing.T) {
	r, err := RunFig16([]float64{2, 40, 120}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ShapeCorrect() {
		t.Errorf("fig16 shape wrong:\n%s", r)
	}
}
