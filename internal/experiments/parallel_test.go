package experiments

import (
	"runtime"
	"testing"
	"time"

	"perfsight/internal/history"
)

// goldenCfg is the 200-machine determinism scenario: small enough to run
// three times in a test, large enough that a single misordered commit
// somewhere in 60k machine-ticks would scramble the hash.
func goldenCfg() ScaleConfig {
	return ScaleConfig{
		Machines:      200,
		VMsPerMachine: 1,
		Domains:       8,
		Tick:          time.Millisecond,
		Duration:      300 * time.Millisecond,
		Seed:          42,
		RatePerVM:     200e6,
	}
}

// runGolden builds the scenario (serial, or parallel with the given
// worker count), runs it in six 50ms legs with an agent sweep into a
// fresh history store after each leg, and returns the store's content
// hash plus the raw trajectory hash.
func runGolden(t *testing.T, cfg ScaleConfig, parallel bool, workers int) (storeH, trajH uint64) {
	t.Helper()
	cfg.Workers = workers
	sl, err := buildScaleLab(cfg, parallel, true)
	if err != nil {
		t.Fatalf("build scale lab: %v", err)
	}
	defer sl.l.C.Close()
	st := history.New(history.Config{})
	legs := 6
	for i := 0; i < legs; i++ {
		sl.l.Run(cfg.Duration / time.Duration(legs))
		if err := sl.sweepToStore(st); err != nil {
			t.Fatalf("sweep leg %d: %v", i, err)
		}
	}
	return storeHash(st), sl.trajectoryHash()
}

// TestParallelDeterminismGolden: the same seeded 200-machine scenario must
// leave byte-identical history-store content whether it ran on the serial
// engine, the parallel engine with one worker, or the parallel engine with
// several workers.
func TestParallelDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 200-machine scenario three times")
	}
	cfg := goldenCfg()
	serialStore, serialTraj := runGolden(t, cfg, false, 0)
	par1Store, par1Traj := runGolden(t, cfg, true, 1)
	parNStore, parNTraj := runGolden(t, cfg, true, 4)

	if par1Traj != serialTraj {
		t.Errorf("trajectory diverged: serial %016x vs parallel@1 %016x", serialTraj, par1Traj)
	}
	if parNTraj != serialTraj {
		t.Errorf("trajectory diverged: serial %016x vs parallel@4 %016x", serialTraj, parNTraj)
	}
	if par1Store != serialStore {
		t.Errorf("history store diverged: serial %016x vs parallel@1 %016x", serialStore, par1Store)
	}
	if parNStore != serialStore {
		t.Errorf("history store diverged: serial %016x vs parallel@4 %016x", serialStore, parNStore)
	}
}

// TestParallelScaleSpeedup is the acceptance floor: the 2000-machine
// scenario must run at least 4x faster on the sharded engine than on the
// serial one — meaningful only with real cores, so single-digit-core CI
// boxes skip it (the determinism golden above still runs everywhere).
func TestParallelScaleSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 2000-machine scenario twice")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup floor needs >= 4 cores; have %d", runtime.NumCPU())
	}
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	res, err := RunScale(ScaleConfig{
		Machines: 2000,
		Domains:  8,
		Workers:  workers,
		Duration: 200 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("RunScale: %v", err)
	}
	t.Logf("\n%s", res)
	if !res.Deterministic() {
		t.Fatalf("parallel trajectory diverged from serial: %016x vs %016x", res.SerialHash, res.ParallelHash)
	}
	floor := 4.0
	if workers < 8 {
		floor = float64(workers) / 2
	}
	if res.Speedup() < floor {
		t.Fatalf("speedup %.2fx below the %.1fx floor (%d workers)", res.Speedup(), floor, workers)
	}
}

// TestRunScaleSmall keeps RunScale itself covered on every box: a small
// fleet, still asserting the serial and parallel hashes agree.
func TestRunScaleSmall(t *testing.T) {
	res, err := RunScale(ScaleConfig{
		Machines: 24,
		Domains:  6,
		Workers:  2,
		Duration: 100 * time.Millisecond,
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("RunScale: %v", err)
	}
	if !res.Deterministic() {
		t.Fatalf("parallel trajectory diverged from serial:\n%s", res)
	}
}
