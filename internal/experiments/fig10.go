package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// Fig10Sample is one timeline point of the backlog-contention experiment.
type Fig10Sample struct {
	T            float64
	Flow1Gbps    float64 // VM1's rate-limited receive throughput
	Flow2Kpps    float64 // VM2's small-packet send rate (delivered)
	EnqueueDrops float64
}

// Fig10Result reproduces §7.2 case 1 (Figure 10): VM1 receives at a
// 500 Mbps limit; at t=10 s VM2 floods small packets as fast as it can.
// The shared pCPU backlog queue (300 packets) is monopolized, VM1's
// throughput collapses and oscillates, and PerfSight's drop counters plus
// the NIC-saturation check identify the backlog queues as the contended
// resource.
type Fig10Result struct {
	Samples []Fig10Sample
	// Before/After are VM1's average throughput before and during the
	// flood.
	BeforeGbps, AfterGbps float64
	// Report is the Algorithm 1 diagnosis during the flood.
	Report *diagnosis.ContentionReport
}

// Correct reports whether diagnosis matched the paper's conclusion.
func (r *Fig10Result) Correct() bool {
	return r.Report != nil &&
		r.Report.TopLocation == diagnosis.LocBacklogEnqueue &&
		r.Report.Inferred == diagnosis.ResourcePCPUBacklog
}

// String renders the timeline and diagnosis.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: pCPU backlog queue contention\n")
	b.WriteString("t(s)  flow1(Gbps)  flow2(Kpkt/s)  enqueue drops\n")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%4.1f  %11.3f  %13.0f  %13.0f\n", s.T, s.Flow1Gbps, s.Flow2Kpps, s.EnqueueDrops)
	}
	fmt.Fprintf(&b, "flow1 before flood: %.3f Gbps; during flood: %.3f Gbps\n", r.BeforeGbps, r.AfterGbps)
	if r.Report != nil {
		fmt.Fprintf(&b, "diagnosis: %s\n", r.Report)
		fmt.Fprintf(&b, "NIC check: rx+tx %.0f Mbps of %.0f Mbps capacity (not saturated)\n",
			(r.Report.Evidence.PNICRxBps+r.Report.Evidence.PNICTxBps)/1e6,
			r.Report.Evidence.PNICCapBps/1e6)
	}
	return b.String()
}

// RunFig10 executes the two-VM contention scenario.
func RunFig10() (*Fig10Result, error) {
	l := NewLab(time.Millisecond)
	cfg := machine.DefaultConfig("m0")
	cfg.Stack.PNICRxBps = 1e9 // the paper's case 1 uses a 1 Gbps NIC
	cfg.Stack.PNICTxBps = 1e9
	cfg.Stack.BacklogQueues = 1 // unpinned interrupts funnel to one core
	// A small-packet storm defeats the kernel OVS flow cache: per-packet
	// softirq cost rises toward the upcall path's, so one core cannot
	// drain the backlog and the queue stays saturated.
	cfg.Stack.Costs.NAPICyclesPerPkt = 9000
	l.C.AddMachine(cfg)
	const tid = core.TenantID("t1")

	// VM1: rate-limited receiver (500 Mbps across four flows).
	sink := middlebox.NewSink("m0/vm1/app", 1e9)
	l.C.PlaceVM("m0", "vm1", 1.0, 1e9, sink)
	src := l.C.AddHost("src", 0)
	for j := 0; j < 4; j++ {
		conn := l.C.Connect(flowID(fmt.Sprintf("rx-%d", j)),
			cluster.HostEndpoint("src"), cluster.VMEndpoint("m0", "vm1"), stream.Config{})
		src.AddSource(conn, 125e6)
	}

	// VM2: small-packet flood, initially silent.
	l.C.AddHost("peer", 0)
	meter := &flowMeter{}
	flood := middlebox.NewRawSource("m0/vm2/app", 1e9, "smallpkts", 0, 64, meter)
	l.C.PlaceVM("m0", "vm2", 1.0, 1e9, flood)
	l.C.RouteFlow("smallpkts", cluster.VMEndpoint("m0", "vm2"), cluster.HostEndpoint("peer"))

	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	l.C.AssignStack(tid, "m0")
	l.C.AssignVM(tid, "m0", "vm1")
	l.C.AssignVM(tid, "m0", "vm2")

	res := &Fig10Result{}
	var prevRx, prevPkts int64
	var prevDrops uint64
	m := l.C.Machine("m0")
	sample := func(step time.Duration) {
		l.Run(step)
		rx := sink.ReceivedBytes()
		pkts := meter.deliveredPkts.Load()
		drops := m.Stack.Backlogs.TotalDrops()
		res.Samples = append(res.Samples, Fig10Sample{
			T:            l.C.Now().Seconds(),
			Flow1Gbps:    float64(rx-prevRx) * 8 / step.Seconds() / 1e9,
			Flow2Kpps:    float64(pkts-prevPkts) / step.Seconds() / 1e3,
			EnqueueDrops: float64(drops - prevDrops),
		})
		prevRx, prevPkts, prevDrops = rx, pkts, drops
	}

	for i := 0; i < 20; i++ { // 10 s baseline
		sample(500 * time.Millisecond)
	}
	flood.RateBps = 400e6 // ~780 Kpps of 64 B packets, "as fast as it can"
	for i := 0; i < 4; i++ {
		sample(500 * time.Millisecond)
	}

	// Diagnose during the flood through the agent/controller path. The
	// controller's Wait advances virtual time, so the window is live.
	rep, derr := diagnosis.FindContentionAndBottleneck(l.Ctl, tid, 3*time.Second)
	if derr != nil {
		return nil, derr
	}
	// Resync the per-sample deltas past the diagnosis window.
	prevRx, prevPkts, prevDrops = sink.ReceivedBytes(), meter.deliveredPkts.Load(), m.Stack.Backlogs.TotalDrops()
	for i := 0; i < 20; i++ {
		sample(500 * time.Millisecond)
	}
	res.Report = rep

	var before, after float64
	nb, na := 0, 0
	for _, s := range res.Samples {
		if s.T <= 10 {
			before += s.Flow1Gbps
			nb++
		} else if s.T > 12 {
			after += s.Flow1Gbps
			na++
		}
	}
	if nb > 0 {
		res.BeforeGbps = before / float64(nb)
	}
	if na > 0 {
		res.AfterGbps = after / float64(na)
	}
	return res, nil
}
