package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"perfsight/internal/anomaly"
	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// AnomalyLabResult is the anomaly-pipeline acceptance experiment: replay
// the Figure 11 memory-bandwidth scenario under the always-on pipeline
// and check that twenty seconds of sustained contention — dropping
// packets at every network VM's TUN — pages the operator exactly once:
// one incident, rooted at memory bandwidth, holding every triggered
// event, resolving itself once the hog stops. A twin run with the
// pipeline detached measures what evaluation adds to a Monitor sweep.
type AnomalyLabResult struct {
	// HogStart/HogStop bound the injected contention (virtual time).
	HogStart, HogStop time.Duration
	// Events is how many diagnosis events the pipeline journaled.
	Events int
	// Incidents is every incident the correlator ever opened (the
	// experiment demands exactly one).
	Incidents []anomaly.Incident
	// HogToFirstSeen is injection-to-detection in virtual time: the hog
	// starts mid-window, the next sweeps must cross the SLO and trigger.
	HogToFirstSeen time.Duration
	// DetectionNS is the incident's own latency evidence: record-clock
	// time from the last known-good sample to the opening trigger.
	DetectionNS int64
	// SweepWallOn/SweepWallOff are mean wall-clock costs of one Monitor
	// sweep with the pipeline attached vs detached (overhead must stay
	// within noise).
	SweepWallOn, SweepWallOff time.Duration
	Sweeps                    int
}

// incident returns the single incident (zero value when none).
func (r *AnomalyLabResult) incident() anomaly.Incident {
	if len(r.Incidents) == 0 {
		return anomaly.Incident{}
	}
	return r.Incidents[0]
}

// Correct reports whether the pipeline met the acceptance criteria.
func (r *AnomalyLabResult) Correct() bool {
	if len(r.Incidents) != 1 {
		return false
	}
	in := r.incident()
	return in.RootCause == "resource:memory-bandwidth" &&
		in.State == anomaly.StateResolved &&
		in.EventCount >= 2 &&
		len(in.Elements) >= 2 && // contention hits several TUNs, not one
		r.DetectionNS > 0 &&
		r.HogToFirstSeen > 0
}

// String renders the report.
func (r *AnomalyLabResult) String() string {
	var b strings.Builder
	b.WriteString("Anomaly pipeline: one incident from sustained memory-bus contention\n")
	fmt.Fprintf(&b, "contention injected t=%v..%v; %d diagnosis events journaled\n",
		r.HogStart, r.HogStop, r.Events)
	fmt.Fprintf(&b, "incidents opened: %d\n", len(r.Incidents))
	for _, in := range r.Incidents {
		fmt.Fprintf(&b, "  #%d [%s] root cause %s: %d events, %d elements, t=%vs..%vs",
			in.ID, in.State, in.RootCause, in.EventCount, len(in.Elements),
			in.FirstSeen/1e9, in.LastSeen/1e9)
		if in.ResolvedAt > 0 {
			fmt.Fprintf(&b, " (resolved t=%vs)", in.ResolvedAt/1e9)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "detection: hog-to-first-seen %v virtual; last-good-to-trigger %v record clock\n",
		r.HogToFirstSeen, time.Duration(r.DetectionNS))
	fmt.Fprintf(&b, "sweep wall cost over %d sweeps: pipeline on %v, off %v\n",
		r.Sweeps, r.SweepWallOn.Round(time.Microsecond), r.SweepWallOff.Round(time.Microsecond))
	if r.Correct() {
		b.WriteString("exactly one incident, correct root cause, self-resolved\n")
	} else {
		b.WriteString("ACCEPTANCE CRITERIA NOT MET\n")
	}
	return b.String()
}

// anomalyScenario builds the Fig 11 oversubscription lab: four
// network-intensive VMs behind one pNIC, offered ~3.4 Gbps aggregate.
func anomalyScenario() (*Lab, *machine.Machine, core.TenantID, error) {
	l := NewLab(time.Millisecond)
	m := l.DefaultMachine("m0")
	const tid = core.TenantID("t-anom")
	for i := 0; i < 4; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 2e9)
		l.C.PlaceVM("m0", vm, 1.0, 2e9, sink)
		hn := fmt.Sprintf("h%d", i)
		host := l.C.AddHost(hn, 0)
		for j := 0; j < 4; j++ {
			conn := l.C.Connect(flowID(fmt.Sprintf("f%d-%d", i, j)),
				cluster.HostEndpoint(hn), cluster.VMEndpoint("m0", vm), stream.Config{})
			host.AddSource(conn, 3.4e9/16)
		}
		l.C.AssignVM(tid, "m0", vm)
	}
	l.C.AssignStack(tid, "m0")
	if err := l.BuildAgents(); err != nil {
		return nil, nil, "", err
	}
	return l, m, tid, nil
}

// anomalySLO is the experiment's tenant SLO: a 100 pps drop threshold
// with a short cooldown so sustained contention produces several events
// for the correlator to fold.
func anomalySLO() anomaly.Config {
	return anomaly.Config{
		SLO: anomaly.SLOConfig{Default: anomaly.SLO{
			DropRatePPS: 100,
			Bands:       8, // recovery swings (~2x rate jump) must stay in band
			Persistence: 4,
			Window:      anomaly.Duration(3 * time.Second),
			Cooldown:    anomaly.Duration(5 * time.Second),
		}},
		Correlator: anomaly.CorrelatorConfig{
			Window:       30 * time.Second,
			ResolveAfter: 8 * time.Second,
		},
	}
}

// RunAnomalyLab executes the acceptance experiment.
func RunAnomalyLab() (*AnomalyLabResult, error) {
	res := &AnomalyLabResult{}

	// Twin run, pipeline detached: the sweep-cost baseline.
	{
		l, m, _, err := anomalyScenario()
		if err != nil {
			return nil, err
		}
		rl := newRecorderLab(l, anomalySLO())
		rl.Mon.AfterSweep = nil // monitor-only
		wall := runAnomalyTimeline(rl, m, nil)
		res.SweepWallOff = wall
	}

	// The real run: pipeline attached, incident expected.
	l, m, tid, err := anomalyScenario()
	if err != nil {
		return nil, err
	}
	rl := newRecorderLab(l, anomalySLO())
	res.SweepWallOn = runAnomalyTimeline(rl, m, res)

	res.Events = len(rl.Journal.Since(0, 0))
	res.Incidents = rl.Pipe.Incidents.List("", 0)
	if in := res.incident(); in.FirstSeen > 0 {
		res.DetectionNS = in.DetectionNS
		res.HogToFirstSeen = time.Duration(in.FirstSeen) - res.HogStart
	}
	_ = tid
	return res, nil
}

// runAnomalyTimeline drives the shared timeline — 8 s healthy, 20 s of
// memory-bus contention, 12 s recovery — sweeping once per virtual
// second, and returns the mean wall cost of one sweep. When res is
// non-nil the hog bounds are recorded into it.
func runAnomalyTimeline(rl *recorderLab, m *machine.Machine, res *AnomalyLabResult) time.Duration {
	sweeps := 0
	var wall time.Duration
	phase := func(seconds int) {
		for i := 0; i < seconds; i++ {
			rl.C.Run(time.Second)
			start := time.Now()
			rl.Mon.Sweep(context.Background())
			wall += time.Since(start)
			sweeps++
		}
	}
	phase(8)
	hog := m.AddHog(&machine.Hog{Name: "memvms", Kind: machine.HogMem, MemDemandBps: 23e9, CyclesPerByte: 0.33})
	if res != nil {
		res.HogStart = rl.C.Now()
	}
	phase(20)
	m.RemoveHog(hog)
	if res != nil {
		res.HogStop = rl.C.Now()
		res.Sweeps = sweeps + 12
	}
	phase(12)
	return wall / time.Duration(sweeps)
}
