package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// Table2Cell is one (condition, instrumentation) measurement series.
type Table2Cell struct {
	MeanMbps float64
	Variance float64
}

// Table2Result reproduces Table 2: proxy throughput with and without time
// counters, in the ReadBlocked regime (client rate-limited) and the
// Overloaded regime (client unconstrained, proxy CPU-bound). The paper's
// overhead is under 2%.
type Table2Result struct {
	BlockedWithout, BlockedWith       Table2Cell
	OverloadedWithout, OverloadedWith Table2Cell
	Runs                              int
}

// OverheadBlocked returns the throughput cost of time counters when the
// proxy is ReadBlocked.
func (r *Table2Result) OverheadBlocked() float64 {
	if r.BlockedWithout.MeanMbps == 0 {
		return 0
	}
	return 1 - r.BlockedWith.MeanMbps/r.BlockedWithout.MeanMbps
}

// OverheadOverloaded returns the cost when the proxy is Overloaded.
func (r *Table2Result) OverheadOverloaded() float64 {
	if r.OverloadedWithout.MeanMbps == 0 {
		return 0
	}
	return 1 - r.OverloadedWith.MeanMbps/r.OverloadedWithout.MeanMbps
}

// Correct checks the paper's bound: overhead under 2% in both regimes.
func (r *Table2Result) Correct() bool {
	return math.Abs(r.OverheadBlocked()) < 0.02 && math.Abs(r.OverheadOverloaded()) < 0.02 &&
		r.BlockedWithout.MeanMbps > 0 && r.OverloadedWithout.MeanMbps > 0
}

// String renders the table.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: throughput with/without time counters (%d runs each)\n", r.Runs)
	b.WriteString("experiment                      mean (Mbps)   variance\n")
	fmt.Fprintf(&b, "1: Blocked, without counters    %10.2f  %9.3f\n", r.BlockedWithout.MeanMbps, r.BlockedWithout.Variance)
	fmt.Fprintf(&b, "2: Blocked, with counters       %10.2f  %9.3f\n", r.BlockedWith.MeanMbps, r.BlockedWith.Variance)
	fmt.Fprintf(&b, "3: Overloaded, without counters %10.2f  %9.3f\n", r.OverloadedWithout.MeanMbps, r.OverloadedWithout.Variance)
	fmt.Fprintf(&b, "4: Overloaded, with counters    %10.2f  %9.3f\n", r.OverloadedWith.MeanMbps, r.OverloadedWith.Variance)
	fmt.Fprintf(&b, "overhead: blocked %.2f%%, overloaded %.2f%% (paper: <2%%)\n",
		r.OverheadBlocked()*100, r.OverheadOverloaded()*100)
	return b.String()
}

// proxyRun measures one client->proxy->server upload's throughput.
// blocked selects the rate-limited (ReadBlocked) regime; timers toggles
// the proxy's I/O time counters; run varies the client jitter seed.
func proxyRun(mb middlebox.MboxKind, blocked, timers bool, run int) float64 {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	l.C.AddHost("server", 0)
	out := l.C.Connect("p-out", cluster.VMEndpoint("m0", "vm-p"), cluster.HostEndpoint("server"), stream.Config{})

	app := middlebox.NewOfKind(mb, "m0/vm-p/app", 1e9, middlebox.ConnOutput{C: out})
	app.SetTimeCountersEnabled(timers)
	// A modest vCPU allocation makes the unconstrained regime genuinely
	// CPU-bound (the paper's Overloaded case saturates near 500 Mbps).
	l.C.PlaceVM("m0", "vm-p", 0.45, 1e9, app)

	client := l.C.AddHost("client", 0)
	rate := 0.0
	if blocked {
		rate = 42e6 // the paper's ~42 Mbps blocked regime
	}
	for j := 0; j < 4; j++ {
		in := l.C.Connect(flowID(fmt.Sprintf("c-in-%d-%d", run, j)),
			cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-p"), stream.Config{})
		client.AddSource(in, rate/4)
	}

	l.Run(2 * time.Second) // warm up
	before := out.DeliveredBytes()
	l.Run(3 * time.Second)
	return float64(out.DeliveredBytes()-before) * 8 / 3 / 1e6
}

// series runs N measurements and returns mean and variance.
func series(mb middlebox.MboxKind, blocked, timers bool, runs int) Table2Cell {
	var xs []float64
	for i := 0; i < runs; i++ {
		xs = append(xs, proxyRun(mb, blocked, timers, i))
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	if len(xs) > 1 {
		v /= float64(len(xs) - 1)
	}
	return Table2Cell{MeanMbps: mean, Variance: v}
}

// RunTable2 executes the four series. The paper repeats each 100 times;
// runs scales that down for CI use.
func RunTable2(runs int) (*Table2Result, error) {
	if runs <= 0 {
		runs = 10
	}
	return &Table2Result{
		BlockedWithout:    series(middlebox.KindProxy, true, false, runs),
		BlockedWith:       series(middlebox.KindProxy, true, true, runs),
		OverloadedWithout: series(middlebox.KindProxy, false, false, runs),
		OverloadedWith:    series(middlebox.KindProxy, false, true, runs),
		Runs:              runs,
	}, nil
}

// Fig15Row is one middlebox type's normalized instrumented throughput.
type Fig15Row struct {
	Name       string
	Normalized float64 // instrumented/uninstrumented, overloaded regime
}

// Fig15Result reproduces Figure 15: across middlebox types the time-counter
// overhead stays under 5%.
type Fig15Result struct {
	Rows []Fig15Row
	Runs int
}

// Correct checks the paper's 5% bound.
func (r *Fig15Result) Correct() bool {
	for _, row := range r.Rows {
		if row.Normalized < 0.95 || row.Normalized > 1.02 {
			return false
		}
	}
	return len(r.Rows) >= 5
}

// String renders the normalized-throughput chart data.
func (r *Fig15Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15: time-counter overhead across middlebox types (%d runs each)\n", r.Runs)
	b.WriteString("middlebox   normalized throughput (%)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s  %6.2f\n", row.Name, row.Normalized*100)
	}
	b.WriteString("(paper: all above 95%)\n")
	return b.String()
}

// RunFig15 compares instrumented vs uninstrumented throughput for five
// middlebox types in the overloaded regime.
func RunFig15(runs int) (*Fig15Result, error) {
	if runs <= 0 {
		runs = 5
	}
	kinds := []struct {
		name string
		kind middlebox.MboxKind
	}{
		{"Proxy", middlebox.KindProxy},
		{"LB", middlebox.KindLB},
		{"Cache", middlebox.KindCache},
		{"RE", middlebox.KindRE},
		{"IPS", middlebox.KindIPS},
	}
	res := &Fig15Result{Runs: runs}
	for _, k := range kinds {
		with := series(k.kind, false, true, runs)
		without := series(k.kind, false, false, runs)
		norm := 1.0
		if without.MeanMbps > 0 {
			norm = with.MeanMbps / without.MeanMbps
		}
		res.Rows = append(res.Rows, Fig15Row{Name: k.name, Normalized: norm})
	}
	return res, nil
}
