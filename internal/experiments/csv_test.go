package experiments

import (
	"strings"
	"testing"
	"time"

	"perfsight/internal/diagnosis"
)

func lines(s string) []string {
	return strings.Split(strings.TrimSpace(s), "\n")
}

func TestCSVHeadersAndRowWidths(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"fig3", (&Fig3Result{Points: []Fig3Point{{1, 1, 9.5}, {2, 2, 9.0}}}).CSV()},
		{"fig8", (&Fig8Result{Samples: []Fig8Sample{{T: 1, MboxMbps: 400}}}).CSV()},
		{"fig9", (&Fig9Result{Times: map[string]time.Duration{"a": 1000}, Order: []string{"a"}}).CSV()},
		{"fig10", (&Fig10Result{Samples: []Fig10Sample{{T: 1, Flow1Gbps: 0.5}}}).CSV()},
		{"fig11", (&Fig11Result{Samples: []Fig11Sample{{T: 1, NetGbps: 3.2}}}).CSV()},
		{"fig13", (&Fig13Result{Samples: []Fig13Sample{{T: 1, Tenant1Mbps: 180, Tenant2Mbps: 200}}}).CSV()},
		{"table2", (&Table2Result{}).CSV()},
		{"fig15", (&Fig15Result{Rows: []Fig15Row{{Name: "Proxy", Normalized: 0.99}}}).CSV()},
		{"fig16", (&Fig16Result{Points: []Fig16Point{{10, 0.5}}}).CSV()},
		{"ablations", (&AblationResult{Rows: []AblationRow{{Choice: "x", Metric: "y", Holds: true}}}).CSV()},
	}
	for _, tc := range cases {
		ls := lines(tc.csv)
		if len(ls) < 2 {
			t.Errorf("%s: no data rows:\n%s", tc.name, tc.csv)
			continue
		}
		width := len(strings.Split(ls[0], ","))
		for i, l := range ls[1:] {
			if got := len(strings.Split(l, ",")); got != width {
				t.Errorf("%s row %d: %d fields, header has %d", tc.name, i, got, width)
			}
		}
	}
}

func TestCSVTable1AndFig12(t *testing.T) {
	t1 := &Table1Result{Rows: []Table1Row{{
		Resource:    diagnosis.ResourceCPU,
		ExpectedLoc: diagnosis.LocTUNAggregated,
		ObservedLoc: diagnosis.LocTUNAggregated,
		Inferred:    diagnosis.ResourceCPU,
		OK:          true,
	}}}
	if !strings.Contains(t1.CSV(), "cpu,tun-aggregated,tun-aggregated,cpu,true") {
		t.Errorf("table1 csv:\n%s", t1.CSV())
	}

	f12 := &Fig12Result{Cases: []Fig12CaseResult{{
		Case: Fig12ProblematicNFS,
		Metrics: []Fig12Metrics{{
			Element: "m0/vm-lb/app", InRateMbps: 300, OutRateMbps: 70, HasOut: true,
			State: diagnosis.StateWriteBlocked,
		}},
	}}}
	if !strings.Contains(f12.CSV(), "problematic-nfs,m0/vm-lb/app,300,70,WriteBlocked") {
		t.Errorf("fig12 csv:\n%s", f12.CSV())
	}
}
