package experiments

import (
	"testing"
	"time"

	"perfsight/internal/anomaly"
)

// TestAnomalyLabOneIncident is the anomaly-pipeline acceptance gate:
// twenty seconds of sustained memory-bus contention, dropping packets
// across several network VMs' TUNs, must produce exactly ONE incident
// with the correct root cause — not an event per sweep, not an incident
// per element — and the incident must resolve itself once the hog stops.
func TestAnomalyLabOneIncident(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated timeline; skip in -short")
	}
	r, err := RunAnomalyLab()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)

	if len(r.Incidents) != 1 {
		t.Fatalf("correlator opened %d incidents, want exactly 1: %+v", len(r.Incidents), r.Incidents)
	}
	in := r.Incidents[0]
	if in.RootCause != "resource:memory-bandwidth" {
		t.Errorf("root cause = %q, want resource:memory-bandwidth", in.RootCause)
	}
	if in.State != anomaly.StateResolved {
		t.Errorf("incident state = %q after the hog stopped, want resolved", in.State)
	}
	if in.EventCount < 2 {
		t.Errorf("incident folded %d events, want >= 2 (cooldown-spaced recurrences)", in.EventCount)
	}
	if r.Events != in.EventCount {
		t.Errorf("journal has %d events but the incident folded %d — some escaped correlation",
			r.Events, in.EventCount)
	}
	if len(in.Elements) < 2 {
		t.Errorf("incident names %d elements, want the contention's multiple TUNs", len(in.Elements))
	}
	if int64(in.FirstSeen) < int64(r.HogStart) {
		t.Errorf("incident FirstSeen %v precedes the hog at %v", in.FirstSeen, r.HogStart)
	}
	if in.ResolvedAt <= in.LastSeen {
		t.Errorf("ResolvedAt %v not after LastSeen %v", in.ResolvedAt, in.LastSeen)
	}

	// Detection latency is measured and sane: the hog lands mid-window,
	// the pipeline must notice within a few sweep cadences.
	if r.DetectionNS <= 0 || r.DetectionNS > int64(5*time.Second) {
		t.Errorf("detection latency %v, want (0, 5s]", time.Duration(r.DetectionNS))
	}
	if r.HogToFirstSeen <= 0 || r.HogToFirstSeen > 10*time.Second {
		t.Errorf("hog-to-first-seen %v, want (0, 10s]", r.HogToFirstSeen)
	}

	// The pipeline's sweep cost must stay within noise of monitor-only.
	// The triggered diagnoses bill to the sweeps that fire them, so allow
	// a generous multiple rather than a tight percentage.
	if r.SweepWallOn > 3*r.SweepWallOff {
		t.Errorf("sweep with pipeline %v vs without %v — evaluation is not cheap",
			r.SweepWallOn, r.SweepWallOff)
	}
}
