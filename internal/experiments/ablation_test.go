package experiments

import "testing"

// TestAblations verifies each calibrated design choice actually produces
// the behaviour it was introduced for (and that removing it loses it).
func TestAblations(t *testing.T) {
	r, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if !row.Holds {
			t.Errorf("%s: with=%.2f without=%.2f (%s)", row.Choice, row.With, row.Without, row.Expected)
		}
	}
}
