package experiments

import (
	"testing"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// TestTranscoderUtilizationMisleads reproduces the §2.3 motivating
// example: a non-blocking video transcoder busy-waits, so its CPU
// utilization reads 100% whether it is the bottleneck or not. Utilization
// monitoring would flag it either way; PerfSight's element statistics must
// not — when the transcoder keeps up there are no drops and no blocked
// neighbours, and only when it truly saturates does it surface as the
// root cause.
func TestTranscoderUtilizationMisleads(t *testing.T) {
	run := func(offeredBps float64) (*diagnosis.ContentionReport, *diagnosis.RootCauseReport, float64) {
		l := NewLab(time.Millisecond)
		l.DefaultMachine("m0")
		const tid = core.TenantID("t1")
		const C = 200e6

		l.C.AddHost("server", 0)
		out := l.C.Connect("tc-out", cluster.VMEndpoint("m0", "vm-tc"), cluster.HostEndpoint("server"), stream.Config{})
		tc := middlebox.NewTranscoder("m0/vm-tc/app", C, middlebox.ConnOutput{C: out})
		l.C.PlaceVM("m0", "vm-tc", 1.0, C, tc)
		client := l.C.AddHost("client", 0)
		for j := 0; j < 4; j++ {
			in := l.C.Connect(flowID("tc-in"+string(rune('0'+j))),
				cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-tc"), stream.Config{})
			client.AddSource(in, offeredBps/4)
		}
		if err := l.BuildAgents(); err != nil {
			t.Fatal(err)
		}
		l.C.AssignStack(tid, "m0")
		l.C.AssignVM(tid, "m0", "vm-tc")
		l.C.AddChain(tid, "m0/vm-tc/app")

		l.Run(2 * time.Second)
		stack, err := diagnosis.FindContentionAndBottleneck(l.Ctl, tid, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := diagnosis.LocateRootCause(l.Ctl, tid, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		host, err := l.Ctl.GetAttr(tid, "m0/host", core.AttrCPUUtil)
		if err != nil {
			t.Fatal(err)
		}
		return stack, chain, host.GetOr(core.AttrCPUUtil, 0)
	}

	// Light load: the transcoder spins (high CPU) but keeps up. A
	// utilization monitor would cry wolf; PerfSight sees a healthy path.
	stack, chain, cpu := run(20e6)
	if cpu < 0.10 {
		t.Fatalf("busy-wait transcoder should look CPU-hungry; machine util %.2f", cpu)
	}
	if stack.TotalLoss != 0 {
		t.Fatalf("light load should be loss-free: %s", stack)
	}
	if chain.Metrics["m0/vm-tc/app"].State != diagnosis.StateNormal {
		t.Fatalf("light-load transcoder state: %v", chain.Metrics["m0/vm-tc/app"].State)
	}

	// Heavy load: now it genuinely saturates (80 cycles/byte on one vCPU
	// is ~31 MB/s) and the dataplane shows it.
	stack, chain, _ = run(190e6)
	saturated := stack.TotalLoss > 0 ||
		(len(chain.RootCauses) == 1 && chain.RootCauses[0] == "m0/vm-tc/app")
	if !saturated {
		t.Fatalf("saturated transcoder not identified: stack=%s chain=%s", stack, chain)
	}
}
