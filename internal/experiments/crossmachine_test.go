package experiments

import (
	"fmt"
	"testing"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// TestCrossMachineChainRootCause runs Algorithm 2 over a chain whose
// middleboxes live on different physical servers, each with its own agent:
// client -> LB (m0) -> proxy (m1) -> server (m2). The slow server must be
// isolated even though every hop's statistics come from a different agent.
func TestCrossMachineChainRootCause(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.C.RmemPerConn = 212992
	for i := 0; i < 3; i++ {
		l.DefaultMachine(core.MachineID(fmt.Sprintf("m%d", i)))
	}
	const tid = core.TenantID("t1")
	const C = 100e6

	server := middlebox.NewServer("m2/vm-srv/app", C, 600)
	l.C.PlaceVM("m2", "vm-srv", 1.0, C, server)

	connPS := l.C.Connect("f-ps", cluster.VMEndpoint("m1", "vm-px"), cluster.VMEndpoint("m2", "vm-srv"), stream.Config{})
	proxy := middlebox.NewProxy("m1/vm-px/app", C, middlebox.ConnOutput{C: connPS})
	l.C.PlaceVM("m1", "vm-px", 1.0, C, proxy)

	connLP := l.C.Connect("f-lp", cluster.VMEndpoint("m0", "vm-lb"), cluster.VMEndpoint("m1", "vm-px"), stream.Config{})
	lb := middlebox.NewLoadBalancer("m0/vm-lb/app", C, middlebox.ConnOutput{C: connLP})
	l.C.PlaceVM("m0", "vm-lb", 1.0, C, lb)

	client := l.C.AddHost("client", 0)
	connCL := l.C.Connect("f-cl", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-lb"), stream.Config{})
	client.AddSource(connCL, 0)

	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	l.C.AssignVM(tid, "m0", "vm-lb")
	l.C.AssignVM(tid, "m1", "vm-px")
	l.C.AssignVM(tid, "m2", "vm-srv")
	l.C.AddChain(tid, "m0/vm-lb/app", "m1/vm-px/app", "m2/vm-srv/app")

	l.Run(4 * time.Second)

	rep, err := diagnosis.LocateRootCause(l.Ctl, tid, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RootCauses) != 1 || rep.RootCauses[0] != "m2/vm-srv/app" {
		t.Fatalf("root causes %v; want [m2/vm-srv/app]\nmetrics: %+v", rep.RootCauses, rep.Metrics)
	}
	if rep.Metrics["m0/vm-lb/app"].State != diagnosis.StateWriteBlocked {
		t.Fatalf("LB (two machines upstream) not WriteBlocked: %+v", rep.Metrics["m0/vm-lb/app"])
	}
	if rep.Metrics["m1/vm-px/app"].State != diagnosis.StateWriteBlocked {
		t.Fatalf("proxy not WriteBlocked: %+v", rep.Metrics["m1/vm-px/app"])
	}
}

// TestCrossMachineThroughputConservation: bytes that leave the pNIC of an
// upstream machine must match what the downstream machine's pNIC admits
// (minus anything dropped there) — the inter-machine wire loses nothing.
func TestCrossMachineThroughputConservation(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	l.DefaultMachine("m1")

	sink := middlebox.NewSink("m1/vm-b/app", 1e9)
	l.C.PlaceVM("m1", "vm-b", 1.0, 1e9, sink)
	conn := l.C.Connect("f", cluster.VMEndpoint("m0", "vm-a"), cluster.VMEndpoint("m1", "vm-b"), stream.Config{})
	src := middlebox.NewConnSource("m0/vm-a/app", 1e9, conn, 400e6)
	l.C.PlaceVM("m0", "vm-a", 1.0, 1e9, src)

	l.Run(3 * time.Second)

	sent := l.C.Machine("m0").Stack.PNic.ES.Tx.Bytes.Load()
	recv := l.C.Machine("m1").Stack.PNic.ES.Rx.Bytes.Load()
	dropped := l.C.Machine("m1").Stack.PNic.ES.Drop.Bytes.Load()
	if sent == 0 {
		t.Fatal("no cross-machine traffic")
	}
	// One tick of store-and-forward may be in flight.
	inFlightSlack := uint64(2e6)
	if recv+dropped+inFlightSlack < sent {
		t.Fatalf("wire lost bytes: sent %d, received %d, dropped %d", sent, recv, dropped)
	}
	if got := float64(conn.DeliveredBytes()) * 8 / 3; got < 300e6 {
		t.Fatalf("end-to-end %.0f bps; want ~400 Mbps", got)
	}
}
