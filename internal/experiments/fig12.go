package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// Fig12Case identifies one of the three propagation scenarios.
type Fig12Case string

const (
	Fig12OverloadedServer  Fig12Case = "overloaded-server"
	Fig12UnderloadedClient Fig12Case = "underloaded-client"
	Fig12ProblematicNFS    Fig12Case = "problematic-nfs"
)

// Fig12Metrics is the b/t table the paper prints for each middlebox.
type Fig12Metrics struct {
	Element     core.ElementID
	InRateMbps  float64 // b/t_input
	OutRateMbps float64 // b/t_output ("N/A" when the box has no output)
	HasOut      bool
	State       diagnosis.MBState
}

// Fig12CaseResult is one scenario's outcome.
type Fig12CaseResult struct {
	Case              Fig12Case
	Metrics           []Fig12Metrics
	RootCauses        []core.ElementID
	SourceUnderloaded bool
	OK                bool
}

// Fig12Result reproduces Figure 12: a load balancer and two content
// filters (logging to a shared NFS server) between a client and HTTP
// servers; Algorithm 2 must isolate the true root cause in each case.
type Fig12Result struct {
	Cases []Fig12CaseResult
}

// AllCorrect reports whether every case found the expected root cause.
func (r *Fig12Result) AllCorrect() bool {
	for _, c := range r.Cases {
		if !c.OK {
			return false
		}
	}
	return len(r.Cases) == 3
}

// String renders the per-case tables.
func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12: root cause detection in the face of propagation (vNIC C = 100 Mbps)\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "\ncase %s:\n", c.Case)
		b.WriteString("middlebox            b/t_in (Mbps)  b/t_out (Mbps)  state\n")
		for _, m := range c.Metrics {
			out := "N/A"
			if m.HasOut {
				out = fmt.Sprintf("%.1f", m.OutRateMbps)
			}
			fmt.Fprintf(&b, "%-20s  %12.1f  %14s  %s\n", string(m.Element), m.InRateMbps, out, m.State)
		}
		if c.SourceUnderloaded {
			b.WriteString("verdict: traffic source Underloaded\n")
		} else {
			fmt.Fprintf(&b, "verdict: root cause(s) %v\n", c.RootCauses)
		}
		fmt.Fprintf(&b, "correct: %v\n", c.OK)
	}
	return b.String()
}

// fig12Chain holds the deployed scenario.
type fig12Chain struct {
	l            *Lab
	client       *cluster.HostSource
	servers      [2]*middlebox.Server
	nfs          *middlebox.Server
	lb, cf1, cf2 *middlebox.Forwarder
}

const fig12Tenant = core.TenantID("t-chain")

// buildFig12 deploys client -> LB -> {CF1, CF2} -> {S1, S2}, with both CFs
// logging to a shared NFS server. All vNICs are 100 Mbps, as in the paper.
func buildFig12(serverCPB float64, clientRate float64) *fig12Chain {
	const C = 100e6
	l := NewLab(time.Millisecond)
	l.C.RmemPerConn = 212992
	l.DefaultMachine("m0")
	ch := &fig12Chain{l: l}

	// Servers.
	for i := 0; i < 2; i++ {
		vm := core.VMID(fmt.Sprintf("vm-s%d", i+1))
		srv := middlebox.NewServer(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), C, serverCPB)
		l.C.PlaceVM("m0", vm, 1.0, C, srv)
		ch.servers[i] = srv
	}
	// NFS log server.
	ch.nfs = middlebox.NewNFSServer("m0/vm-nfs/app", C, 40e6)
	l.C.PlaceVM("m0", "vm-nfs", 1.0, C, ch.nfs)

	// Content filters, each forwarding to its server and logging to NFS.
	for i := 0; i < 2; i++ {
		vm := core.VMID(fmt.Sprintf("vm-cf%d", i+1))
		appID := core.ElementID(fmt.Sprintf("m0/%s/app", vm))
		toSrv := l.C.Connect(flowID(fmt.Sprintf("cf%d-s", i+1)),
			cluster.VMEndpoint("m0", vm), cluster.VMEndpoint("m0", core.VMID(fmt.Sprintf("vm-s%d", i+1))), stream.Config{})
		toNFS := l.C.Connect(flowID(fmt.Sprintf("cf%d-nfs", i+1)),
			cluster.VMEndpoint("m0", vm), cluster.VMEndpoint("m0", "vm-nfs"), stream.Config{})
		cf := middlebox.NewContentFilter(appID, C, 0.15, middlebox.ConnOutput{C: toSrv})
		cf.SetLogOutput(middlebox.ConnOutput{C: toNFS})
		l.C.PlaceVM("m0", vm, 1.0, C, cf)
		if i == 0 {
			ch.cf1 = cf
		} else {
			ch.cf2 = cf
		}
	}

	// Load balancer splitting across the content filters.
	toCF1 := l.C.Connect("lb-cf1", cluster.VMEndpoint("m0", "vm-lb"), cluster.VMEndpoint("m0", "vm-cf1"), stream.Config{})
	toCF2 := l.C.Connect("lb-cf2", cluster.VMEndpoint("m0", "vm-lb"), cluster.VMEndpoint("m0", "vm-cf2"), stream.Config{})
	ch.lb = middlebox.NewLoadBalancer("m0/vm-lb/app", C,
		middlebox.ConnOutput{C: toCF1}, middlebox.ConnOutput{C: toCF2})
	l.C.PlaceVM("m0", "vm-lb", 1.0, C, ch.lb)

	// Client.
	client := l.C.AddHost("client", 0)
	in := l.C.Connect("client-lb", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-lb"), stream.Config{})
	ch.client = client.AddSource(in, clientRate)

	if err := l.BuildAgents(); err != nil {
		panic(err)
	}
	l.C.AssignStack(fig12Tenant, "m0")
	for _, vm := range []core.VMID{"vm-lb", "vm-cf1", "vm-cf2", "vm-s1", "vm-s2", "vm-nfs"} {
		l.C.AssignVM(fig12Tenant, "m0", vm)
	}
	l.C.AddChain(fig12Tenant, "m0/vm-lb/app", "m0/vm-cf1/app", "m0/vm-s1/app")
	l.C.AddChain(fig12Tenant, "m0/vm-lb/app", "m0/vm-cf2/app", "m0/vm-s2/app")
	l.C.AddChain(fig12Tenant, "m0/vm-cf1/app", "m0/vm-nfs/app")
	l.C.AddChain(fig12Tenant, "m0/vm-cf2/app", "m0/vm-nfs/app")
	return ch
}

// diagnoseChain runs Algorithm 2 and converts the report to a case result.
func (ch *fig12Chain) diagnose(c Fig12Case, want []core.ElementID, wantUnderloaded bool) (Fig12CaseResult, error) {
	rep, err := diagnosis.LocateRootCause(ch.l.Ctl, fig12Tenant, 2*time.Second)
	if err != nil {
		return Fig12CaseResult{}, err
	}
	out := Fig12CaseResult{
		Case:              c,
		RootCauses:        rep.RootCauses,
		SourceUnderloaded: rep.SourceUnderloaded,
	}
	order := []core.ElementID{
		"m0/vm-lb/app", "m0/vm-cf1/app", "m0/vm-cf2/app",
		"m0/vm-nfs/app", "m0/vm-s1/app", "m0/vm-s2/app",
	}
	for _, id := range order {
		m, ok := rep.Metrics[id]
		if !ok {
			continue
		}
		out.Metrics = append(out.Metrics, Fig12Metrics{
			Element:     id,
			InRateMbps:  m.InRateBps / 1e6,
			OutRateMbps: m.OutRateBps / 1e6,
			HasOut:      m.OutActive,
			State:       m.State,
		})
	}
	if wantUnderloaded {
		out.OK = rep.SourceUnderloaded
	} else {
		out.OK = sameElements(rep.RootCauses, want)
	}
	return out, nil
}

func sameElements(got, want []core.ElementID) bool {
	if len(got) != len(want) {
		return false
	}
	seen := make(map[core.ElementID]bool, len(want))
	for _, w := range want {
		seen[w] = true
	}
	for _, g := range got {
		if !seen[g] {
			return false
		}
	}
	return true
}

// RunFig12 executes the three propagation cases.
func RunFig12() (*Fig12Result, error) {
	res := &Fig12Result{}

	// (b) Overloaded server: client POSTs as fast as possible; the servers
	// are expensive per byte and saturate well below the vNIC rate.
	ch := buildFig12(600, 0)
	ch.l.Run(4 * time.Second)
	cr, err := ch.diagnose(Fig12OverloadedServer,
		[]core.ElementID{"m0/vm-s1/app", "m0/vm-s2/app"}, false)
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cr)

	// (c) Underloaded client: a slow client leaves the whole chain
	// ReadBlocked.
	ch = buildFig12(30, 4e6)
	ch.l.Run(4 * time.Second)
	cr, err = ch.diagnose(Fig12UnderloadedClient, nil, true)
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cr)

	// (d) Problematic NFS: a memory leak degrades the NFS server; the
	// content filters WriteBlock on their logs and the stall propagates.
	ch = buildFig12(30, 70e6)
	ch.l.Run(3 * time.Second)
	// The leak must push the NFS server's capacity below the content
	// filters' aggregate log rate before the chain stalls on it.
	ch.nfs.InjectLeak(ch.l.C.Now(), 50)
	// Let the stall propagate: the NFS guest's socket pool must fill
	// before the content filters' log writes actually block.
	ch.l.Run(10 * time.Second)
	cr, err = ch.diagnose(Fig12ProblematicNFS,
		[]core.ElementID{"m0/vm-nfs/app"}, false)
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cr)

	return res, nil
}
