package experiments

import (
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/middlebox"
)

// FanoutResult measures the resilience corollary of Fig 9/16: the paper's
// scalability argument prices one statistics sweep at one agent round
// trip, which only holds if a slow or dead agent cannot serialize the
// fleet. Three sweeps over real TCP agents check that: all healthy, one
// agent stalled (bounded by the sweep deadline, partial results intact),
// and the follow-up sweep where the stalled agent's breaker is open and
// costs nothing.
type FanoutResult struct {
	Agents   int           // fleet size, including the stalled machine
	Deadline time.Duration // configured sweep deadline
	Healthy  time.Duration // sweep latency with every agent answering
	Stalled  time.Duration // sweep latency with one agent never answering
	Skipped  time.Duration // next sweep: breaker open, no deadline paid
	// PartialRecords counts elements still collected during the stalled
	// sweep; SkipErr reports whether that follow-up sweep surfaced the
	// breaker-skip error for the dead machine.
	PartialRecords int
	SkipErr        bool
}

// ShapeCorrect checks the claim: a stalled agent costs ~one deadline once
// (not fleet × timeout), the rest of the fleet still answers, and the
// breaker makes the next sweep cheap again. Bounds are generous for
// loaded CI machines; the ordering is the claim.
func (r *FanoutResult) ShapeCorrect() bool {
	return r.Healthy < r.Deadline &&
		r.Stalled >= r.Deadline/2 &&
		r.Stalled < 4*r.Deadline &&
		r.Skipped < r.Deadline/2 &&
		r.PartialRecords > 0 &&
		r.SkipErr
}

// String renders the three sweeps.
func (r *FanoutResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fan-out resilience: %d agents over TCP, sweep deadline %v\n", r.Agents, r.Deadline)
	fmt.Fprintf(&b, "all healthy        %10.1f ms\n", float64(r.Healthy)/1e6)
	fmt.Fprintf(&b, "one agent stalled  %10.1f ms  (%d elements still collected)\n",
		float64(r.Stalled)/1e6, r.PartialRecords)
	fmt.Fprintf(&b, "breaker open       %10.1f ms  (stalled agent skipped: %v)\n",
		float64(r.Skipped)/1e6, r.SkipErr)
	return b.String()
}

// RunFanout builds n machines served by real TCP agents plus one machine
// whose "agent" accepts connections but never answers, then times the
// three sweeps. deadline bounds each sweep; <=0 uses 300ms.
func RunFanout(n int, deadline time.Duration) (*FanoutResult, error) {
	if n < 2 {
		n = 4
	}
	if deadline <= 0 {
		deadline = 300 * time.Millisecond
	}

	l := NewLab(time.Millisecond)
	const tid = core.TenantID("t1")
	const stallMachine = core.MachineID("stall")
	machines := make([]core.MachineID, 0, n)
	for i := 0; i < n-1; i++ {
		machines = append(machines, core.MachineID(fmt.Sprintf("m%d", i)))
	}
	machines = append(machines, stallMachine)
	for _, mid := range machines {
		l.DefaultMachine(mid)
		app := core.ElementID(string(mid) + "/vm0/app")
		l.C.PlaceVM(mid, "vm0", 1.0, 1e9, middlebox.NewSink(app, 1e9))
	}
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	for _, mid := range machines {
		l.C.AssignStack(tid, mid)
		l.C.AssignVM(tid, mid, "vm0")
	}
	l.Run(100 * time.Millisecond)

	// Serve every healthy agent over real TCP; the client timeout exceeds
	// the sweep deadline so the sweep context is what bounds a stall.
	var cleanups []func()
	defer func() {
		for _, f := range cleanups {
			f()
		}
	}()
	for _, mid := range machines {
		if mid == stallMachine {
			continue
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go l.Agents[mid].Serve(ln)
		client := controller.NewTCPClient(ln.Addr().String())
		client.Timeout = 4 * deadline
		l.Ctl.RegisterAgent(mid, client)
		cleanups = append(cleanups, func() { client.Close(); ln.Close() })
	}

	// The stalled machine: a black hole that accepts and reads requests
	// but never replies — the half-open-agent failure mode that used to
	// park a sweep for the full client timeout.
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cleanups = append(cleanups, func() { sl.Close() })
	go func() {
		for {
			conn, err := sl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { io.Copy(io.Discard, c) }(conn)
		}
	}()
	stallClient := controller.NewTCPClient(sl.Addr().String())
	stallClient.Timeout = 4 * deadline
	l.Ctl.RegisterAgent(stallMachine, stallClient)
	cleanups = append(cleanups, func() { stallClient.Close() })

	l.Ctl.Sweep = controller.SweepConfig{
		Deadline:         deadline,
		Retries:          0,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	}

	res := &FanoutResult{Agents: n, Deadline: deadline}
	allIDs := l.Ctl.TenantElements(tid, nil)
	healthyIDs := l.Ctl.TenantElements(tid, func(_ core.ElementID, info core.ElementInfo) bool {
		return info.Machine != stallMachine
	})

	start := time.Now()
	if _, err := l.Ctl.Sample(tid, healthyIDs); err != nil {
		return nil, fmt.Errorf("fanout healthy sweep: %w", err)
	}
	res.Healthy = time.Since(start)

	start = time.Now()
	recs, err := l.Ctl.Sample(tid, allIDs)
	res.Stalled = time.Since(start)
	res.PartialRecords = len(recs)
	if err == nil {
		return nil, fmt.Errorf("fanout: stalled sweep reported no error")
	}

	start = time.Now()
	recs, err = l.Ctl.Sample(tid, allIDs)
	res.Skipped = time.Since(start)
	if len(recs) > res.PartialRecords {
		res.PartialRecords = len(recs)
	}
	res.SkipErr = err != nil && strings.Contains(err.Error(), controller.ErrAgentSkipped.Error())
	return res, nil
}
