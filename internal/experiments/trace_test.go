package experiments

// End-to-end lab for the distributed trace spine: one pull sweep and one
// push frame travel from a TCP agent into the controller's tracer, an
// anomaly incident references the traces that carried its triggering
// records, and the referenced traces render as skew-corrected waterfalls
// with both controller-side stages and agent-side per-channel spans —
// over the /traces HTTP surface and the renderer the `perfsight trace`
// subcommand uses.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/anomaly"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/history"
	"perfsight/internal/ingest"
	"perfsight/internal/telemetry"
)

// traceElem is a mutable element: the test advances its counters and
// spikes its drops to simulate a contended machine on demand.
type traceElem struct {
	id core.ElementID

	mu        sync.Mutex
	rx, drops float64
}

func (e *traceElem) ID() core.ElementID     { return e.id }
func (e *traceElem) Kind() core.ElementKind { return core.KindPNIC }
func (e *traceElem) Snapshot(ts int64) core.Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rx += 1000
	return core.Record{Timestamp: ts, Element: e.id, Attrs: []core.Attr{
		{ID: core.AttrRxBytes, Value: e.rx},
		{ID: core.AttrDropPackets, Value: e.drops},
	}}
}

func (e *traceElem) spike(drops float64) {
	e.mu.Lock()
	e.drops += drops
	e.mu.Unlock()
}

func waitTrace(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTraceSpineEndToEnd(t *testing.T) {
	const tid = core.TenantID("t1")
	testStart := time.Now().UnixNano()

	// A real TCP agent on a wall clock, granting spans, delta and push.
	elem := &traceElem{id: "m0/pnic"}
	a := agent.New("m0", func() int64 { return time.Now().UnixNano() })
	a.AllowStream = true
	a.AllowDelta = true
	a.AllowSpans = true
	a.CadenceMin = 10 * time.Millisecond
	a.CadenceMax = 50 * time.Millisecond
	a.Register(&agent.DirectAdapter{E: elem})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go a.Serve(ln)

	// Controller with the full trace spine: shared tracer, span store
	// with head sampling, instrumented TCP client requesting spans.
	topo := core.NewTopology()
	topo.Net(tid).Add(elem.id, core.ElementInfo{Machine: "m0", Kind: core.KindPNIC})
	ctl := controller.New(topo)
	reg := telemetry.NewRegistry()
	tracer := ctl.EnableTelemetry(reg)
	spanStore := telemetry.NewSpanStore(reg, 64, 16, 16)
	tracer.AttachSpanStore(spanStore, 1, 0)
	cl := controller.NewTCPClient(ln.Addr().String())
	cl.Timeout = 2 * time.Second
	cl.Delta = true
	cl.Spans = true
	cl.EnableTelemetry(reg, tracer)
	t.Cleanup(func() { cl.Close() })
	ctl.RegisterAgent("m0", cl)

	// Anomaly pipeline linked to the spine: incidents resolve the trace
	// of the pull sweep via TraceOf and pin referenced traces.
	store := history.New(history.Config{})
	journal := history.NewJournal(64)
	pipe := anomaly.NewPipeline(store, journal, anomaly.Config{
		SLO: anomaly.SLOConfig{Default: anomaly.SLO{
			DropRatePPS:      100,
			Window:           anomaly.Duration(time.Second),
			Cooldown:         anomaly.Duration(10 * time.Millisecond),
			DisableBaselines: true,
		}},
	})
	pipe.Spans = spanStore
	pipe.TraceOf = ctl.LastTraceID

	sweep := func() []core.Record {
		t.Helper()
		recs, err := ctl.Sample(tid, []core.ElementID{elem.id})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]core.Record, 0, len(recs))
		for _, r := range recs {
			store.Append(tid, r)
			out = append(out, r)
		}
		pipe.Observe(tid, out)
		return out
	}

	// ---- Pull path: healthy sweeps seed the rate detector, then a drop
	// spike under contention fires it.
	sweep()
	time.Sleep(20 * time.Millisecond)
	sweep()
	time.Sleep(20 * time.Millisecond)
	elem.spike(1e9)
	sweep()
	sweepTrace := ctl.LastTraceID(elem.id)
	if sweepTrace == 0 {
		t.Fatal("no trace recorded for the sweep")
	}

	events := journal.Since(0, 0)
	if len(events) == 0 {
		t.Fatal("drop spike produced no diagnosis event")
	}
	ev := events[0]
	if ev.TraceID != sweepTrace {
		t.Fatalf("event trace = %d, want the sweep's trace %d", ev.TraceID, sweepTrace)
	}
	in, ok := pipe.Incidents.Get(ev.IncidentID)
	if !ok {
		t.Fatalf("incident %d missing", ev.IncidentID)
	}
	if len(in.TraceIDs) != 1 || in.TraceIDs[0] != sweepTrace {
		t.Fatalf("incident traces = %v, want [%d]", in.TraceIDs, sweepTrace)
	}

	// The referenced trace was pinned as incident evidence and its
	// waterfall interleaves controller stages with the agent's
	// skew-corrected per-channel spans.
	tr, ok := spanStore.Get(sweepTrace)
	if !ok {
		t.Fatalf("span store lost the incident's trace %d", sweepTrace)
	}
	if tr.Keep != telemetry.KeepIncident {
		t.Fatalf("incident trace keep = %q, want %q", tr.Keep, telemetry.KeepIncident)
	}
	assertWaterfall(t, &tr, "agent:dispatch", testStart)

	// ---- Push path: the stream's frames carry spans too; the incident
	// accumulates the push frame's trace as further evidence.
	mgr := ingest.NewManager(ingest.Config{
		CadenceMin:  10 * time.Millisecond,
		CadenceMax:  50 * time.Millisecond,
		DialTimeout: 2 * time.Second,
		Redial:      10 * time.Millisecond,
		Delta:       true,
		Spans:       true,
		Tracer:      tracer,
		Sink: func(_ core.MachineID, recs []core.Record, traceID uint64) {
			for _, r := range recs {
				store.Append(tid, r)
			}
			pipe.ObserveTraced(tid, recs, traceID)
		},
	})
	mgr.Add("m0", ln.Addr().String())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); mgr.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })

	waitTrace(t, 10*time.Second, "push stream established", func() bool { return mgr.Streaming("m0") })
	time.Sleep(50 * time.Millisecond) // healthy stream samples
	elem.spike(1e9)
	waitTrace(t, 10*time.Second, "push-frame trace on the incident", func() bool {
		in, ok = pipe.Incidents.Get(ev.IncidentID)
		return ok && len(in.TraceIDs) >= 2
	})
	pushTrace := in.TraceIDs[len(in.TraceIDs)-1]
	ptr, ok := spanStore.Get(pushTrace)
	if !ok {
		t.Fatalf("span store lost the push frame's trace %d", pushTrace)
	}
	assertWaterfall(t, &ptr, "agent:push", testStart)

	// ---- The operator surfaces: /traces/{id} JSON and rendered, and the
	// waterfall renderer the `perfsight trace` subcommand runs locally.
	ts := &telemetry.TraceServer{Tracer: tracer, Store: spanStore}
	mux := http.NewServeMux()
	ts.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	resp, err := http.Get(fmt.Sprintf("%s/traces/%d", srv.URL, sweepTrace))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces/%d: %s", sweepTrace, resp.Status)
	}
	var got telemetry.StoredTrace
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != sweepTrace || len(got.Spans) != len(tr.Spans) {
		t.Fatalf("HTTP trace = id %d with %d spans, want id %d with %d", got.ID, len(got.Spans), sweepTrace, len(tr.Spans))
	}
	rendered, err := http.Get(fmt.Sprintf("%s/traces/%d?render=1", srv.URL, sweepTrace))
	if err != nil {
		t.Fatal(err)
	}
	defer rendered.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := rendered.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "agent/") {
		t.Fatalf("rendered waterfall lacks agent rows:\n%s", buf[:n])
	}

	list, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var tl telemetry.TraceList
	if err := json.NewDecoder(list.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Recent) == 0 || len(tl.Kept) == 0 {
		t.Fatalf("/traces listing empty: recent=%d kept=%d", len(tl.Recent), len(tl.Kept))
	}
}

// assertWaterfall checks one stored trace's forest: a controller-side
// stage span, the named agent root plus a per-channel child beneath it,
// and every agent span skew-corrected onto the controller timeline
// (inside the test's own wall-clock window).
func assertWaterfall(t *testing.T, tr *telemetry.StoredTrace, agentRoot string, testStart int64) {
	t.Helper()
	var sawController, sawRoot, sawChannel bool
	now := time.Now().UnixNano()
	for _, sp := range tr.Spans {
		switch {
		case sp.Component != "agent":
			sawController = true
		case sp.Name == agentRoot:
			sawRoot = true
		case sp.Name == "snapshot:encode":
			sawChannel = true
		}
		if sp.Component == "agent" && (sp.Start < testStart-int64(time.Minute) || sp.End() > now) {
			t.Fatalf("agent span %q off the controller timeline: start=%d end=%d now=%d",
				sp.Name, sp.Start, sp.End(), now)
		}
	}
	if !sawController || !sawRoot || !sawChannel {
		t.Fatalf("waterfall incomplete (controller=%v root(%s)=%v channel=%v): %+v",
			sawController, agentRoot, sawRoot, sawChannel, tr.Spans)
	}
	out := telemetry.RenderWaterfall(tr, 0)
	if !strings.Contains(out, "agent/"+agentRoot) || !strings.Contains(out, "agent/snapshot:encode") {
		t.Fatalf("rendered waterfall missing rows:\n%s", out)
	}
}
