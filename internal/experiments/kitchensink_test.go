package experiments

import (
	"testing"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// TestFullServiceChain pushes traffic through a firewall -> NAT -> IPS ->
// cache -> RE -> server chain (every forwarding middlebox kind) and checks
// end-to-end delivery reflects each element's policy: the firewall drops
// 10%, the cache absorbs 30% of what remains, the RE halves the rest.
func TestFullServiceChain(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	const tid = core.TenantID("t1")
	const C = 1e9

	mk := func(vm core.VMID, app machine.App) {
		l.C.PlaceVM("m0", vm, 1.0, C, app)
		l.C.AssignVM(tid, "m0", vm)
	}

	l.C.AddHost("server", 0)
	outRE := l.C.Connect("re-out", cluster.VMEndpoint("m0", "vm-re"), cluster.HostEndpoint("server"), stream.Config{})
	re := middlebox.NewRedundancyEliminator("m0/vm-re/app", C, 0.5, middlebox.ConnOutput{C: outRE})
	mk("vm-re", re)

	toRE := l.C.Connect("cache-re", cluster.VMEndpoint("m0", "vm-cache"), cluster.VMEndpoint("m0", "vm-re"), stream.Config{})
	cache := middlebox.NewCache("m0/vm-cache/app", C, 0.3, middlebox.ConnOutput{C: toRE})
	mk("vm-cache", cache)

	toCache := l.C.Connect("ips-cache", cluster.VMEndpoint("m0", "vm-ips"), cluster.VMEndpoint("m0", "vm-cache"), stream.Config{})
	ips := middlebox.NewIPS("m0/vm-ips/app", C, middlebox.ConnOutput{C: toCache})
	mk("vm-ips", ips)

	toIPS := l.C.Connect("nat-ips", cluster.VMEndpoint("m0", "vm-nat"), cluster.VMEndpoint("m0", "vm-ips"), stream.Config{})
	nat := middlebox.NewNAT("m0/vm-nat/app", C, middlebox.ConnOutput{C: toIPS})
	mk("vm-nat", nat)

	toNAT := l.C.Connect("fw-nat", cluster.VMEndpoint("m0", "vm-fw"), cluster.VMEndpoint("m0", "vm-nat"), stream.Config{})
	fw := middlebox.NewFirewall("m0/vm-fw/app", C, 0.1, middlebox.ConnOutput{C: toNAT})
	mk("vm-fw", fw)

	client := l.C.AddHost("client", 0)
	in := l.C.Connect("cl-fw", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-fw"), stream.Config{})
	client.AddSource(in, 100e6)

	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	l.C.AssignStack(tid, "m0")
	l.C.AddChain(tid, "m0/vm-fw/app", "m0/vm-nat/app", "m0/vm-ips/app",
		"m0/vm-cache/app", "m0/vm-re/app")

	l.Run(5 * time.Second)

	ingress := float64(in.DeliveredBytes())
	egress := float64(outRE.DeliveredBytes())
	if ingress == 0 {
		t.Fatal("no ingress")
	}
	// Expected end-to-end ratio: 0.9 (firewall) x 0.7 (cache) x 0.5 (RE).
	want := 0.9 * 0.7 * 0.5
	got := egress / ingress
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("end-to-end ratio %.3f; want ~%.3f (in=%.0f out=%.0f)", got, want, ingress, egress)
	}

	// The healthy chain must not produce a root-cause verdict that blames a
	// middlebox (ReadBlocked members and the source-underloaded verdict are
	// both fine for an input-limited chain; blocked-on-nothing is not).
	rep, err := diagnosis.LocateRootCause(l.Ctl, tid, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range rep.Metrics {
		if m.State == diagnosis.StateWriteBlocked {
			t.Fatalf("healthy chain shows %s WriteBlocked: %+v", id, m)
		}
	}
}
