package experiments

import "testing"

// TestHistoryReplayMatchesLive is the flight-recorder acceptance gate:
// Algorithms 1 and 2 must produce the same verdicts from the history
// store as from live SampleInterval collection over the same window, with
// the history path issuing zero agent queries.
func TestHistoryReplayMatchesLive(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated timeline; skip in -short")
	}
	r, err := RunHistoryReplay()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.StackQueriesLive == 0 {
		t.Error("live stack diagnosis issued no agent queries — counter not wired")
	}
	if r.StackQueriesHistory != 0 || r.ChainQueriesHistory != 0 {
		t.Errorf("history diagnosis queried agents (stack %d, chain %d), want 0",
			r.StackQueriesHistory, r.ChainQueriesHistory)
	}
	if !r.Match() {
		t.Errorf("history verdicts diverged from live:\nstack live    %v\nstack history %v\nchain live    %v\nchain history %v",
			r.StackLive, r.StackHistory, r.ChainLive, r.ChainHistory)
	}
	if len(r.Events) == 0 {
		t.Error("the contention phase produced no diagnosis events")
	}
	if r.StoreStats.Resident == 0 || r.StoreStats.Appends == 0 {
		t.Errorf("recorder stored nothing: %+v", r.StoreStats)
	}
}
