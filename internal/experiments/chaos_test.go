package experiments

import (
	"strings"
	"testing"
	"time"

	"perfsight/internal/core"
)

// TestParseChaosSpec drives the -chaos grammar table: every fault kind,
// multi-fault specs, and each malformed-spec error path.
func TestParseChaosSpec(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    []ChaosFault
		wantErr string // substring of the error; "" = success
	}{
		{name: "empty", spec: "", want: nil},
		{name: "blank", spec: "   ", want: nil},
		{
			name: "crash",
			spec: "crash:agent=vm3@10s,heal=15s",
			want: faultSpecs{{Kind: "crash", Agents: []string{"vm3"}, At: 10 * time.Second, Heal: 15 * time.Second}}.toFaults(),
		},
		{
			name: "partition multi agent",
			spec: "partition:agents=m1+m2@5s,heal=9s",
			want: faultSpecs{{Kind: "partition", Agents: []string{"m1", "m2"}, At: 5 * time.Second, Heal: 9 * time.Second}}.toFaults(),
		},
		{
			name: "skew with offset",
			spec: "skew:agent=m1,offset=250ms@2s",
			want: faultSpecs{{Kind: "skew", Agents: []string{"m1"}, At: 2 * time.Second, Offset: 250 * time.Millisecond}}.toFaults(),
		},
		{
			name: "slowdisk",
			spec: "slowdisk:agent=m0,latency=5ms@3s,heal=8s",
			want: faultSpecs{{Kind: "slowdisk", Agents: []string{"m0"}, At: 3 * time.Second, Heal: 8 * time.Second, Latency: 5 * time.Millisecond}}.toFaults(),
		},
		{
			name: "two faults",
			spec: "crash:agent=m0@6s,heal=9s; skew:agent=m0,offset=100ms@1s",
			want: faultSpecs{
				{Kind: "crash", Agents: []string{"m0"}, At: 6 * time.Second, Heal: 9 * time.Second},
				{Kind: "skew", Agents: []string{"m0"}, At: 1 * time.Second, Offset: 100 * time.Millisecond},
			}.toFaults(),
		},
		{name: "missing colon", spec: "crash", wantErr: "missing ':'"},
		{name: "unknown kind", spec: "meteor:agent=m0@5s", wantErr: "unknown fault kind"},
		{name: "not key=value", spec: "crash:agent@5s", wantErr: "not key=value"},
		{name: "unknown key", spec: "crash:agent=m0@5s,color=red", wantErr: "unknown key"},
		{name: "no at time", spec: "crash:agent=m0,heal=9s", wantErr: "no '@time'"},
		{name: "double at time", spec: "crash:agent=m0@5s,heal=9s@6s", wantErr: "more than once"},
		{name: "bad at duration", spec: "crash:agent=m0@tomorrow", wantErr: "bad '@time'"},
		{name: "bad heal duration", spec: "crash:agent=m0@5s,heal=later", wantErr: "bad heal"},
		{name: "heal before at", spec: "crash:agent=m0@10s,heal=9s", wantErr: "not after"},
		{name: "no agent", spec: "crash:heal=9s@5s", wantErr: "no agent"},
		{name: "empty agent in list", spec: "partition:agents=m1+@5s", wantErr: "empty agent"},
		{name: "skew without offset", spec: "skew:agent=m0@5s", wantErr: "missing offset"},
		{name: "slowdisk without latency", spec: "slowdisk:agent=m0@5s", wantErr: "missing latency"},
		{name: "only semicolons", spec: " ; ; ", wantErr: "no faults"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseChaosSpec(tc.spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseChaosSpec(%q) err = %v; want substring %q", tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseChaosSpec(%q) unexpected error: %v", tc.spec, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("ParseChaosSpec(%q) = %d faults; want %d", tc.spec, len(got), len(tc.want))
			}
			for i := range got {
				if got[i].String() != tc.want[i].String() {
					t.Fatalf("fault %d = %+v; want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// faultSpecs adapts string agent names in test tables to ChaosFault.
type faultSpec struct {
	Kind    string
	Agents  []string
	At      time.Duration
	Heal    time.Duration
	Offset  time.Duration
	Latency time.Duration
}

type faultSpecs []faultSpec

func (fs faultSpecs) toFaults() []ChaosFault {
	out := make([]ChaosFault, len(fs))
	for i, f := range fs {
		cf := ChaosFault{Kind: f.Kind, At: f.At, Heal: f.Heal, Offset: f.Offset, Latency: f.Latency}
		for _, a := range f.Agents {
			cf.Agents = append(cf.Agents, core.MachineID(a))
		}
		out[i] = cf
	}
	return out
}

// TestRunChaosLabDefaults runs all four fault experiments on the built-in
// schedule and requires every assertion to hold.
func TestRunChaosLabDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos lab advances tens of virtual seconds")
	}
	res, err := RunChaosLab("")
	if err != nil {
		t.Fatalf("RunChaosLab: %v", err)
	}
	if len(res.Outcomes) != 4 {
		t.Fatalf("outcomes = %d; want 4", len(res.Outcomes))
	}
	if !res.AllCorrect() {
		t.Fatalf("chaos checks failed:\n%s", res)
	}
	t.Logf("\n%s", res)
}

// TestRunChaosLabSpecOverride runs only the crash experiment at
// spec-chosen times, and rejects specs the lab timeline cannot honor.
func TestRunChaosLabSpecOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos lab advances tens of virtual seconds")
	}
	res, err := RunChaosLab("crash:agent=m0@6s,heal=10s")
	if err != nil {
		t.Fatalf("RunChaosLab(crash spec): %v", err)
	}
	if len(res.Outcomes) != 1 || !res.AllCorrect() {
		t.Fatalf("spec-driven crash experiment failed:\n%s", res)
	}
	if _, err := RunChaosLab("crash:agent=m0@1s,heal=2s"); err == nil {
		t.Fatal("crash window incompatible with the lab timeline must error")
	}
	if _, err := RunChaosLab("bogus"); err == nil {
		t.Fatal("malformed spec must error")
	}
}
