package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// CSVer is implemented by results that can export their data series for
// plotting; cmd/perfsight-lab writes them out under -out.
type CSVer interface {
	CSV() string
}

// csvTable renders rows with a header, RFC-4180-enough for the simple
// numeric/identifier fields used here.
func csvTable(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSV exports the Figure 3 sweep.
func (r *Fig3Result) CSV() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{f(p.MemDemandGBps), f(p.MemAchievedGBps), f(p.NetGbps)})
	}
	return csvTable([]string{"mem_demand_gbps", "mem_achieved_gbps", "net_gbps"}, rows)
}

// CSV exports the Figure 8 timeline.
func (r *Fig8Result) CSV() string {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		rows = append(rows, []string{
			f(s.T), f(s.MboxMbps), f(s.PNICDrops), f(s.BacklogDrops), f(s.TUNDrops), f(s.MboxTUNDrops),
		})
	}
	return csvTable([]string{"t_s", "mbox_mbps", "pnic_drops", "backlog_drops", "tun_drops", "mbox_tun_drops"}, rows)
}

// CSV exports the Figure 9 channel latencies.
func (r *Fig9Result) CSV() string {
	rows := make([][]string, 0, len(r.Order))
	for _, name := range r.Order {
		rows = append(rows, []string{name, f(float64(r.Times[name]) / 1e3)})
	}
	return csvTable([]string{"channel", "latency_us"}, rows)
}

// CSV exports the Figure 10 timeline.
func (r *Fig10Result) CSV() string {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		rows = append(rows, []string{f(s.T), f(s.Flow1Gbps), f(s.Flow2Kpps), f(s.EnqueueDrops)})
	}
	return csvTable([]string{"t_s", "flow1_gbps", "flow2_kpps", "enqueue_drops"}, rows)
}

// CSV exports the Figure 11 timeline.
func (r *Fig11Result) CSV() string {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		rows = append(rows, []string{f(s.T), f(s.NetGbps)})
	}
	return csvTable([]string{"t_s", "net_gbps"}, rows)
}

// CSV exports the Figure 12 state tables.
func (r *Fig12Result) CSV() string {
	var rows [][]string
	for _, c := range r.Cases {
		for _, m := range c.Metrics {
			out := ""
			if m.HasOut {
				out = f(m.OutRateMbps)
			}
			rows = append(rows, []string{
				string(c.Case), string(m.Element), f(m.InRateMbps), out, m.State.String(),
			})
		}
	}
	return csvTable([]string{"case", "middlebox", "bt_in_mbps", "bt_out_mbps", "state"}, rows)
}

// CSV exports the Figure 13 timeline.
func (r *Fig13Result) CSV() string {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		rows = append(rows, []string{f(s.T), f(s.Tenant1Mbps), f(s.Tenant2Mbps)})
	}
	return csvTable([]string{"t_s", "tenant1_mbps", "tenant2_mbps"}, rows)
}

// CSV exports the Table 1 rule book.
func (r *Table1Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Resource.String(), row.ExpectedLoc.String(), row.ObservedLoc.String(),
			row.Inferred.String(), fmt.Sprint(row.OK),
		})
	}
	return csvTable([]string{"resource", "expected_location", "observed_location", "inferred", "ok"}, rows)
}

// CSV exports the Table 2 overhead comparison.
func (r *Table2Result) CSV() string {
	rows := [][]string{
		{"blocked", "without", f(r.BlockedWithout.MeanMbps), f(r.BlockedWithout.Variance)},
		{"blocked", "with", f(r.BlockedWith.MeanMbps), f(r.BlockedWith.Variance)},
		{"overloaded", "without", f(r.OverloadedWithout.MeanMbps), f(r.OverloadedWithout.Variance)},
		{"overloaded", "with", f(r.OverloadedWith.MeanMbps), f(r.OverloadedWith.Variance)},
	}
	return csvTable([]string{"regime", "counters", "mean_mbps", "variance"}, rows)
}

// CSV exports the Figure 15 per-middlebox overheads.
func (r *Fig15Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, f(row.Normalized * 100)})
	}
	return csvTable([]string{"middlebox", "normalized_throughput_pct"}, rows)
}

// CSV exports the Figure 16 polling-cost curve.
func (r *Fig16Result) CSV() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{f(p.FrequencyHz), f(p.CPUPercent)})
	}
	return csvTable([]string{"frequency_hz", "cpu_pct"}, rows)
}

// CSV exports the ablation table.
func (r *AblationResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Choice, row.Metric, f(row.With), f(row.Without), fmt.Sprint(row.Holds)})
	}
	return csvTable([]string{"choice", "metric", "with", "without", "holds"}, rows)
}
