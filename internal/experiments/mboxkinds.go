package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// MboxKindsResult reports the two new middlebox-kind experiments: the IDS
// capture-ring loss diagnosed as a middlebox-located VM bottleneck, and
// the warming SmartCache thinning its output toward 1-MaxHitRatio.
type MboxKindsResult struct {
	// IDS experiment.
	IDSTopLocation diagnosis.DropLocation
	IDSInferred    diagnosis.Resource
	IDSTopElement  core.ElementID
	IDSDropPkts    float64
	IDSOK          bool

	// SmartCache experiment.
	CacheHitRatio float64
	CacheOutRatio float64 // interval tx/rx byte ratio after warming
	CacheWantOut  float64 // 1 - MaxHitRatio
	CacheOK       bool
}

// AllCorrect reports whether both experiments met their assertions.
func (r *MboxKindsResult) AllCorrect() bool { return r.IDSOK && r.CacheOK }

// String renders the two verdicts.
func (r *MboxKindsResult) String() string {
	var b strings.Builder
	b.WriteString("New middlebox kinds under diagnosis\n")
	fmt.Fprintf(&b, "IDS:        location %s, inferred %s, top element %s, ring drops %.0f pkts (ok=%v)\n",
		r.IDSTopLocation, r.IDSInferred, r.IDSTopElement, r.IDSDropPkts, r.IDSOK)
	fmt.Fprintf(&b, "SmartCache: hit ratio %.2f, out/in %.3f (want ~%.2f) (ok=%v)\n",
		r.CacheHitRatio, r.CacheOutRatio, r.CacheWantOut, r.CacheOK)
	return b.String()
}

const mboxTenant = core.TenantID("t-mbox")

// RunMboxKinds runs both new-kind scenarios and asserts the paper's
// pipeline covers them: Algorithm 1 must locate the IDS's capture-ring
// loss at the middlebox itself (not the virtualization stack) and the
// rule book must blame the VM's own allocation; the SmartCache's standard
// in/out counters must expose its warming hit ratio to the controller.
func RunMboxKinds() (*MboxKindsResult, error) {
	res := &MboxKindsResult{}
	if err := runIDSExperiment(res); err != nil {
		return nil, fmt.Errorf("ids: %w", err)
	}
	if err := runSmartCacheExperiment(res); err != nil {
		return nil, fmt.Errorf("smartcache: %w", err)
	}
	return res, nil
}

// runIDSExperiment: a tap-style IDS inspects a 400 Mbps stream with an
// expensive per-byte signature set. The guest kernel keeps delivering
// (kernel RX has vCPU priority, and the tap drains the socket), so every
// loss lands in the IDS's own capture ring — drops the stack's device
// counters never see, but the app's drop counters do.
func runIDSExperiment(res *MboxKindsResult) error {
	l := NewLab(time.Millisecond)
	defer l.C.Close()
	l.DefaultMachine("m0")
	srv := l.C.AddHost("srv", 0)
	_ = srv
	out := l.C.Connect("f-out", cluster.VMEndpoint("m0", "vm-ids"), cluster.HostEndpoint("srv"), stream.Config{})
	// ~2000 cycles/byte: deep inspection that a single vCPU cannot keep
	// up with at 400 Mbps, so the ring tail-drops.
	ids := middlebox.NewIDSWithConfig("m0/vm-ids/app", 1e9,
		middlebox.IDSConfig{CyclesPerByte: 2000}, middlebox.ConnOutput{C: out})
	l.C.PlaceVM("m0", "vm-ids", 1.0, 1e9, ids)
	client := l.C.AddHost("client", 0)
	in := l.C.Connect("f-in", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-ids"), stream.Config{})
	client.AddSource(in, 400e6)
	if err := l.BuildAgents(); err != nil {
		return err
	}
	l.C.AssignStack(mboxTenant, "m0")
	l.C.AssignVM(mboxTenant, "m0", "vm-ids")

	l.Run(2 * time.Second)
	rep, err := diagnosis.FindContentionAndBottleneck(l.Ctl, mboxTenant, 3*time.Second)
	if err != nil {
		return err
	}
	res.IDSTopLocation = rep.TopLocation
	res.IDSInferred = rep.Inferred
	if len(rep.Ranked) > 0 {
		res.IDSTopElement = rep.Ranked[0].Element
		res.IDSDropPkts = rep.Ranked[0].Loss
	}
	res.IDSOK = rep.TopLocation == diagnosis.LocMiddlebox &&
		rep.Inferred == diagnosis.ResourceVMBottleneck &&
		res.IDSTopElement == "m0/vm-ids/app" &&
		res.IDSDropPkts > 0
	return nil
}

// runSmartCacheExperiment: a redundancy-eliminating cache warms past its
// warmup horizon, after which its forwarded volume settles at
// 1-MaxHitRatio of its intake. Both the standard in/out byte counters and the
// cache_* extension attributes travel the normal agent channel, so the
// controller measures the warming from intervals alone.
func runSmartCacheExperiment(res *MboxKindsResult) error {
	l := NewLab(time.Millisecond)
	defer l.C.Close()
	l.DefaultMachine("m0")
	l.C.AddHost("srv", 0)
	out := l.C.Connect("f-out", cluster.VMEndpoint("m0", "vm-sc"), cluster.HostEndpoint("srv"), stream.Config{})
	sc := middlebox.NewSmartCache("m0/vm-sc/app", 1e9, middlebox.ConnOutput{C: out})
	l.C.PlaceVM("m0", "vm-sc", 1.0, 1e9, sc)
	client := l.C.AddHost("client", 0)
	in := l.C.Connect("f-in", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-sc"), stream.Config{})
	client.AddSource(in, 400e6)
	if err := l.BuildAgents(); err != nil {
		return err
	}
	l.C.AssignStack(mboxTenant, "m0")
	l.C.AssignVM(mboxTenant, "m0", "vm-sc")

	// 2s at 400 Mbps is ~100 MB seen — far past the 8 MB warmup horizon.
	l.Run(2 * time.Second)
	const appID = core.ElementID("m0/vm-sc/app")
	ivs, err := l.Ctl.SampleInterval(mboxTenant, []core.ElementID{appID}, 2*time.Second)
	if err != nil {
		return err
	}
	iv, ok := ivs[appID]
	if !ok {
		return fmt.Errorf("no interval for %s", appID)
	}
	inDelta := iv.Delta(core.AttrInBytes)
	outDelta := iv.Delta(core.AttrOutBytes)
	if inDelta <= 0 {
		return fmt.Errorf("cache saw no traffic in the interval (in_bytes delta %v)", inDelta)
	}
	res.CacheOutRatio = outDelta / inDelta
	// The hit-ratio gauge travels the normal agent channel as an
	// extension attribute; compare the controller's copy to the model's.
	res.CacheHitRatio = iv.Cur.GetOr(core.AttrIDFor("cache_hit_ratio"), -1)
	res.CacheWantOut = 1 - sc.Cfg.MaxHitRatio
	res.CacheOK = res.CacheHitRatio == sc.Cfg.MaxHitRatio &&
		res.CacheOutRatio > res.CacheWantOut-0.05 && res.CacheOutRatio < res.CacheWantOut+0.05
	return nil
}
