package experiments

import (
	"fmt"
	"testing"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/operator"
	"perfsight/internal/stream"
)

// TestOperatorWorkflowEndToEnd exercises the §7.3/§7.4 extensions against
// a live scenario: two tenants on one machine both suffer when a memory
// hog starts; ticket aggregation must call it one infrastructure problem
// and the advisor must tell the operator to migrate the interference.
func TestOperatorWorkflowEndToEnd(t *testing.T) {
	l := NewLab(time.Millisecond)
	m := l.DefaultMachine("m0")

	tenants := []core.TenantID{"alpha", "beta"}
	for ti, tid := range tenants {
		for i := 0; i < 2; i++ {
			vm := core.VMID(fmt.Sprintf("vm-%s-%d", tid, i))
			sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 2e9)
			l.C.PlaceVM("m0", vm, 1.0, 2e9, sink)
			hn := fmt.Sprintf("h-%d-%d", ti, i)
			host := l.C.AddHost(hn, 0)
			for j := 0; j < 4; j++ {
				conn := l.C.Connect(flowID(fmt.Sprintf("f-%d-%d-%d", ti, i, j)),
					cluster.HostEndpoint(hn), cluster.VMEndpoint("m0", vm), stream.Config{})
				host.AddSource(conn, 200e6)
			}
			l.C.AssignVM(tid, "m0", vm)
		}
		l.C.AssignStack(tid, "m0")
	}
	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}

	l.Run(2 * time.Second)
	m.AddHog(&machine.Hog{Name: "memhog", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33})

	var tickets []operator.Ticket
	for _, tid := range tenants {
		tk, err := operator.Diagnose(l.Ctl, tid, 3*time.Second)
		if err != nil {
			t.Fatalf("tenant %s: %v", tid, err)
		}
		if tk.Stack == nil || tk.Stack.TotalLoss == 0 {
			t.Fatalf("tenant %s saw no loss", tid)
		}
		tickets = append(tickets, tk)
	}

	agg := operator.AggregateTickets(tickets)
	if agg.Verdict != operator.VerdictSharedInfrastructure {
		t.Fatalf("aggregation verdict %v; want shared infrastructure\n%s", agg.Verdict, agg)
	}
	if agg.Machines["m0"] != 2 {
		t.Fatalf("machine implication count: %v", agg.Machines)
	}

	recs := operator.Advise(tickets[0])
	found := false
	for _, r := range recs {
		if r.Action == operator.ActionMigrateInterference && r.Owner == operator.OwnerOperator {
			found = true
		}
	}
	if !found {
		t.Fatalf("advisor did not recommend migration: %v", recs)
	}
}

// TestOperatorScaleOutAdvice runs the bottleneck-middlebox path: a chain
// whose proxy saturates must yield a tenant-owned scale-out recommendation.
func TestOperatorScaleOutAdvice(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	const tid = core.TenantID("t1")
	const C = 100e6

	server := middlebox.NewServer("m0/vm-srv/app", C, 600) // the bottleneck
	l.C.PlaceVM("m0", "vm-srv", 1.0, C, server)
	conn := l.C.Connect("px-srv", cluster.VMEndpoint("m0", "vm-px"), cluster.VMEndpoint("m0", "vm-srv"), stream.Config{})
	proxy := middlebox.NewProxy("m0/vm-px/app", C, middlebox.ConnOutput{C: conn})
	l.C.PlaceVM("m0", "vm-px", 1.0, C, proxy)
	client := l.C.AddHost("client", 0)
	in := l.C.Connect("cl-px", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-px"), stream.Config{})
	client.AddSource(in, 0)

	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	l.C.AssignStack(tid, "m0")
	l.C.AssignVM(tid, "m0", "vm-px")
	l.C.AssignVM(tid, "m0", "vm-srv")
	l.C.AddChain(tid, "m0/vm-px/app", "m0/vm-srv/app")

	l.Run(3 * time.Second)
	tk, err := operator.Diagnose(l.Ctl, tid, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	recs := operator.Advise(tk)
	found := false
	for _, r := range recs {
		if r.Action == operator.ActionScaleOut && r.Target == "m0/vm-srv/app" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no scale-out advice for the saturated server: %v (chain: %+v)", recs, tk.Chain)
	}
}
