package experiments

import (
	"net"
	"testing"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// TestAgentDeathSurfacesAsError: a controller whose agent's TCP endpoint
// dies must return errors, not hang or panic, and must recover once the
// agent is back.
func TestAgentDeathSurfacesAsError(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	l.C.PlaceVM("m0", "vm0", 1.0, 1e9, sink)
	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	const tid = core.TenantID("t1")
	l.C.AssignStack(tid, "m0")
	l.C.AssignVM(tid, "m0", "vm0")

	// Serve the agent over real TCP and point the controller at it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go l.Agents["m0"].Serve(ln)
	client := controller.NewTCPClient(ln.Addr().String())
	client.Timeout = 500 * time.Millisecond
	l.Ctl.RegisterAgent("m0", client)

	if _, err := l.Ctl.GetAttr(tid, "m0/pnic"); err != nil {
		t.Fatalf("healthy agent query failed: %v", err)
	}

	// Kill the agent.
	ln.Close()
	client.Close()
	if _, err := l.Ctl.GetAttr(tid, "m0/pnic"); err == nil {
		t.Fatal("query against a dead agent succeeded")
	}

	// Restart on a new port and re-register (operator action).
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go l.Agents["m0"].Serve(ln2)
	l.Ctl.RegisterAgent("m0", controller.NewTCPClient(ln2.Addr().String()))
	if _, err := l.Ctl.GetAttr(tid, "m0/pnic"); err != nil {
		t.Fatalf("query after agent restart failed: %v", err)
	}
}

// TestTopologyChurnMidQuery: a VM migrated away between samples must yield
// partial results and keep diagnosis usable for the remaining elements.
func TestTopologyChurnMidQuery(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	for _, vm := range []core.VMID{"vm0", "vm1"} {
		l.C.PlaceVM("m0", vm, 1.0, 1e9, middlebox.NewSink(core.ElementID("m0/"+string(vm)+"/app"), 1e9))
	}
	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	const tid = core.TenantID("t1")
	l.C.AssignStack(tid, "m0")
	l.C.AssignVM(tid, "m0", "vm0")
	l.C.AssignVM(tid, "m0", "vm1")
	l.Run(time.Second)

	// Migrate vm1 away and rebuild the agent; the topology still lists it.
	l.C.MigrateVM("m0", "vm1")
	if err := l.RefreshAgent("m0"); err != nil {
		t.Fatal(err)
	}

	ids := l.Ctl.TenantElements(tid, nil)
	recs, err := l.Ctl.Sample(tid, ids)
	if err == nil {
		t.Fatal("sampling a missing VM should report an error")
	}
	if _, ok := recs["m0/pnic"]; !ok {
		t.Fatal("partial results must still include live elements")
	}
	if _, ok := recs["m0/vm1/tun"]; ok {
		t.Fatal("migrated VM's element still returned")
	}

	// Diagnosis over the surviving elements must still work.
	rep, derr := diagnosis.FindContentionAndBottleneck(l.Ctl, tid, 500*time.Millisecond)
	if derr != nil {
		t.Fatalf("diagnosis unusable after churn: %v", derr)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
}

// TestStalledAgentBoundedSweep: the acceptance check for the concurrent
// collection layer. One of four TCP agents accepts but never answers; a
// full-fleet Sample must return the other machines' records within ~one
// sweep deadline (not fleet × timeout), and the next sweep must skip the
// dead agent via its open breaker.
func TestStalledAgentBoundedSweep(t *testing.T) {
	const deadline = 300 * time.Millisecond
	r, err := RunFanout(4, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if r.PartialRecords == 0 {
		t.Fatal("stalled sweep lost the healthy machines' records")
	}
	if r.Stalled >= 4*deadline {
		t.Fatalf("stalled sweep took %v; must be bounded by the %v deadline, not fleet size", r.Stalled, deadline)
	}
	if r.Stalled < deadline/2 {
		t.Fatalf("stalled sweep took %v; expected it to wait out most of the %v deadline", r.Stalled, deadline)
	}
	if !r.SkipErr {
		t.Fatal("follow-up sweep did not surface the breaker-skip error")
	}
	if r.Skipped >= deadline/2 {
		t.Fatalf("breaker-open sweep took %v; skipping must not re-pay the deadline", r.Skipped)
	}
	if !r.ShapeCorrect() {
		t.Fatalf("fan-out shape wrong:\n%s", r)
	}
}

// TestCountersMonotonicUnderLoad: every monotonic counter must never
// decrease across samples, whatever the traffic does — the interval
// arithmetic of Figure 6 depends on it.
func TestCountersMonotonicUnderLoad(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	l.C.PlaceVM("m0", "vm0", 1.0, 1e9, sink)
	h := l.C.AddHost("h", 0)
	for j := 0; j < 4; j++ {
		conn := l.C.Connect(flowID(string(rune('a'+j))), cluster.HostEndpoint("h"),
			cluster.VMEndpoint("m0", "vm0"), stream.Config{})
		h.AddSource(conn, 400e6)
	}
	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	const tid = core.TenantID("t1")
	l.C.AssignStack(tid, "m0")
	l.C.AssignVM(tid, "m0", "vm0")

	ids := l.Ctl.TenantElements(tid, nil)
	prev, _ := l.Ctl.Sample(tid, ids)
	monotonic := []core.AttrID{
		core.AttrRxPackets, core.AttrRxBytes, core.AttrTxPackets,
		core.AttrTxBytes, core.AttrDropPackets,
		core.AttrInBytes, core.AttrInTimeNS, core.AttrOutBytes, core.AttrOutTimeNS,
	}
	for round := 0; round < 10; round++ {
		l.Run(200 * time.Millisecond)
		cur, _ := l.Ctl.Sample(tid, ids)
		for id, c := range cur {
			p, ok := prev[id]
			if !ok {
				continue
			}
			for _, attr := range monotonic {
				pv, okP := p.Get(attr)
				cv, okC := c.Get(attr)
				if okP && okC && cv < pv {
					t.Fatalf("round %d: %s %s went backwards: %v -> %v", round, id, core.AttrName(attr), pv, cv)
				}
			}
		}
		prev = cur
	}
}

// TestDiagnosisOnEmptyTenant: querying a tenant with no elements is an
// error, not a crash.
func TestDiagnosisOnEmptyTenant(t *testing.T) {
	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	if err := l.BuildAgents(); err != nil {
		t.Fatal(err)
	}
	if _, err := diagnosis.FindContentionAndBottleneck(l.Ctl, "ghost", time.Second); err == nil {
		t.Fatal("empty tenant diagnosed")
	}
	if _, err := diagnosis.LocateRootCause(l.Ctl, "ghost", time.Second); err == nil {
		t.Fatal("empty tenant chain-diagnosed")
	}
}
