package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// Fig8Phase is one injected performance problem and its diagnosis.
type Fig8Phase struct {
	Name        string
	Start, End  time.Duration
	ExpectedLoc diagnosis.DropLocation
	ObservedLoc diagnosis.DropLocation
	Inferred    diagnosis.Resource
	Scope       diagnosis.Scope
	Evidence    diagnosis.Evidence
	OK          bool
}

// Fig8Sample is one per-second point of the Figure 8 timeline.
type Fig8Sample struct {
	T            float64 // seconds
	MboxMbps     float64 // average middlebox flow throughput
	PNICDrops    float64 // drops this second, by location
	BacklogDrops float64
	TUNDrops     float64
	MboxTUNDrops float64 // drops at the middlebox VMs' own TUNs
}

// Fig8Result reproduces Figure 8: throughput of flows through two
// middlebox VMs while five different performance problems are injected in
// 10-second phases, with PerfSight locating the drops each time.
type Fig8Result struct {
	Samples []Fig8Sample
	Phases  []Fig8Phase
}

// AllPhasesCorrect reports whether every phase was diagnosed at the
// expected drop location.
func (r *Fig8Result) AllPhasesCorrect() bool {
	for _, p := range r.Phases {
		if !p.OK {
			return false
		}
	}
	return len(r.Phases) > 0
}

// String renders the timeline and the per-phase diagnosis table.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: drop locations under injected performance problems\n")
	b.WriteString("t(s)  mbox(Mbps)  pNIC  backlog  TUN  mboxTUN\n")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%4.0f  %10.0f  %4.0f  %7.0f  %4.0f  %7.0f\n",
			s.T, s.MboxMbps, s.PNICDrops, s.BacklogDrops, s.TUNDrops, s.MboxTUNDrops)
	}
	b.WriteString("\nphase                 expected location   observed location   inferred resource   ok\n")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-20s  %-18s  %-18s  %-18s  %v\n",
			p.Name, p.ExpectedLoc, p.ObservedLoc, p.Inferred, p.OK)
	}
	return b.String()
}

// Fig8Config tunes the experiment.
type Fig8Config struct {
	Tick       time.Duration
	PhaseLen   time.Duration
	QuietLen   time.Duration
	TenantVMs  int
	RxFloodBps float64
	TxFloodBps float64 // per tenant VM
}

// DefaultFig8Config mirrors the paper: 8 VMs (2 middlebox + 6 tenant) on
// one machine, 10-second fault phases.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Tick:       time.Millisecond,
		PhaseLen:   10 * time.Second,
		QuietLen:   10 * time.Second,
		TenantVMs:  6,
		RxFloodBps: 14e9,
		TxFloodBps: 4e9,
	}
}

// RunFig8 executes the functional-validation timeline.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	l := NewLab(cfg.Tick)
	l.C.RmemPerConn = 212992 // Linux 3.2 default rmem, as on the testbed
	mcfg := machine.DefaultConfig("m0")
	mcfg.Stack.VNICRing = 256 // virtio default ring of the era
	m := l.C.AddMachine(mcfg)
	const tid = core.TenantID("t-mbox")

	// Two middlebox VMs running load balancers, each fed by a handful of
	// long-lived client connections (the aggregate in-flight of several
	// flows is what keeps the TUN loaded, as on the paper's testbed).
	const flowsPerMbox = 10
	type chain struct {
		out *stream.Conn
	}
	var chains []chain
	for i := 0; i < 2; i++ {
		vm := core.VMID(fmt.Sprintf("vm-mb%d", i))
		appID := core.ElementID(fmt.Sprintf("m0/%s/app", vm))
		client := l.C.AddHost(fmt.Sprintf("client%d", i), 0)
		l.C.AddHost(fmt.Sprintf("server%d", i), 0)
		out := l.C.Connect(flowID(fmt.Sprintf("mb%d-out", i)),
			cluster.VMEndpoint("m0", vm), cluster.HostEndpoint(fmt.Sprintf("server%d", i)), stream.Config{})
		// Balance is a thin proxy: the LB itself has ample headroom, so
		// the baseline is limited by the offered load, not the app.
		lb := middlebox.NewForwarder(appID, 1e9,
			middlebox.ForwardConfig{CyclesPerByte: 8, CyclesPerPacket: 2000}, middlebox.ConnOutput{C: out})
		l.C.PlaceVM("m0", vm, 1.0, 1e9, lb)
		for j := 0; j < flowsPerMbox; j++ {
			in := l.C.Connect(flowID(fmt.Sprintf("mb%d-in%d", i, j)),
				cluster.HostEndpoint(fmt.Sprintf("client%d", i)), cluster.VMEndpoint("m0", vm), stream.Config{})
			// Offered load matches the paper's ~420 Mbps per-middlebox
			// scale, well below the LB's capacity: the healthy baseline is
			// clean, and faults push the stack below the offered load.
			client.AddSource(in, 42e6)
		}
		chains = append(chains, chain{out: out})
	}

	// Tenant VMs: sinks plus (initially silent) flood sources.
	gw := l.C.AddHost("gw", 0)
	l.C.AddHost("txsink", 0)
	var floods []*middlebox.RawSource
	for i := 0; i < cfg.TenantVMs; i++ {
		vm := core.VMID(fmt.Sprintf("vm-t%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 4e9)
		txFlow := flowID(fmt.Sprintf("txflood-%d", i))
		flood := middlebox.NewRawSource(core.ElementID(fmt.Sprintf("m0/%s/flood", vm)), 4e9, txFlow, 0, 1448, nil)
		l.C.PlaceVM("m0", vm, 1.0, 4e9, sink, flood)
		l.C.RouteFlow(flowID(fmt.Sprintf("rxflood-%d", i)), cluster.HostEndpoint("gw"), cluster.VMEndpoint("m0", vm))
		l.C.RouteFlow(txFlow, cluster.VMEndpoint("m0", vm), cluster.HostEndpoint("txsink"))
		floods = append(floods, flood)
	}

	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	l.C.AssignStack(tid, "m0")
	for _, vm := range m.VMs() {
		l.C.AssignVM(tid, "m0", vm)
	}

	// Fault injectors driven by virtual time.
	var rxFloodOn bool
	l.C.Engine.AddFunc(func(now, dt time.Duration) {
		if !rxFloodOn {
			return
		}
		per := cfg.RxFloodBps / float64(cfg.TenantVMs) / 8 * dt.Seconds()
		for i := 0; i < cfg.TenantVMs; i++ {
			gw.EmitRaw(batch(fmt.Sprintf("rxflood-%d", i), int64(per), 1448))
		}
	})

	res := &Fig8Result{}
	var prevDelivered int64
	pnic := m.Stack.PNic

	var prevPNIC, prevBacklog, prevTUN, prevMboxTUN uint64
	tunDrops := func() (all, mbox uint64) {
		for _, id := range m.VMs() {
			vm := m.VM(id)
			if vm == nil {
				continue
			}
			d := vm.Stack.Tun.ES.Drop.Packets.Load()
			all += d
			if strings.HasPrefix(string(id), "vm-mb") {
				mbox += d
			}
		}
		return all, mbox
	}

	sampleSecond := func() {
		l.Run(time.Second)
		var delivered int64
		for _, ch := range chains {
			delivered += ch.out.DeliveredBytes()
		}
		curPNIC := pnic.ES.Drop.Packets.Load()
		curBacklog := m.Stack.Backlogs.TotalDrops()
		curTUN, curMboxTUN := tunDrops()
		res.Samples = append(res.Samples, Fig8Sample{
			T:            l.C.Now().Seconds(),
			MboxMbps:     float64(delivered-prevDelivered) * 8 / 1e6 / 2,
			PNICDrops:    float64(curPNIC - prevPNIC),
			BacklogDrops: float64(curBacklog - prevBacklog),
			TUNDrops:     float64(curTUN - prevTUN),
			MboxTUNDrops: float64(curMboxTUN - prevMboxTUN),
		})
		prevDelivered = delivered
		prevPNIC, prevBacklog, prevTUN, prevMboxTUN = curPNIC, curBacklog, curTUN, curMboxTUN
	}

	// diagnose samples the stack over the middle of the current phase via
	// the real agent/controller path and runs Algorithm 1.
	stackIDs := l.Ctl.TenantElements(tid, func(_ core.ElementID, info core.ElementInfo) bool {
		return info.Kind.InVirtualizationStack() || info.Kind == core.KindUnknown
	})
	diagnose := func(secondsIntoPhase int) *diagnosis.ContentionReport {
		prev, _ := l.Ctl.Sample(tid, stackIDs)
		for i := 0; i < secondsIntoPhase; i++ {
			sampleSecond()
		}
		cur, _ := l.Ctl.Sample(tid, stackIDs)
		ivs := make(map[core.ElementID]controller.Interval, len(prev))
		for id, p := range prev {
			if c, ok := cur[id]; ok {
				ivs[id] = controller.Interval{Prev: p, Cur: c}
			}
		}
		return diagnosis.AnalyzeStackIntervals(ivs)
	}

	runPhase := func(name string, expected diagnosis.DropLocation, on, off func()) {
		start := l.C.Now()
		on()
		sampleSecond() // onset second
		rep := diagnose(int(cfg.PhaseLen/time.Second) - 1)
		off()
		res.Phases = append(res.Phases, Fig8Phase{
			Name:        name,
			Start:       start,
			End:         l.C.Now(),
			ExpectedLoc: expected,
			ObservedLoc: rep.TopLocation,
			Inferred:    rep.Inferred,
			Scope:       rep.Scope,
			Evidence:    rep.Evidence,
			OK:          rep.TopLocation == expected,
		})
	}
	quiet := func() {
		for i := 0; i < int(cfg.QuietLen/time.Second); i++ {
			sampleSecond()
		}
	}

	// Baseline.
	quiet()

	// Phase 1: incoming-bandwidth flood -> pNIC drops.
	runPhase("rx-bw-bound", diagnosis.LocPNIC,
		func() { rxFloodOn = true },
		func() { rxFloodOn = false })
	quiet()

	// Phase 2: outgoing flood -> backlog-enqueue drops.
	runPhase("tx-bw-bound", diagnosis.LocBacklogEnqueue,
		func() {
			for _, f := range floods {
				f.RateBps = cfg.TxFloodBps
			}
		},
		func() {
			for _, f := range floods {
				f.RateBps = 0
			}
		})
	quiet()

	// Phase 3: CPU-intensive tenant VMs -> TUN drops (aggregated).
	var cpuHogs []*machine.Hog
	runPhase("pCPU-bound", diagnosis.LocTUNAggregated,
		func() {
			for i := 0; i < cfg.TenantVMs; i++ {
				cpuHogs = append(cpuHogs, m.AddHog(&machine.Hog{
					Name: fmt.Sprintf("cpuhog-%d", i), Kind: machine.HogCPU,
					VM: core.VMID(fmt.Sprintf("vm-t%d", i)), CPUDemandCores: 2.0,
				}))
			}
		},
		func() {
			for _, h := range cpuHogs {
				m.RemoveHog(h)
			}
			cpuHogs = nil
		})
	quiet()

	// Phase 4: memory-access-intensive tenant VMs -> TUN drops (aggregated).
	var memHogs []*machine.Hog
	runPhase("mem-bw-bound", diagnosis.LocTUNAggregated,
		func() {
			for i := 0; i < cfg.TenantVMs; i++ {
				memHogs = append(memHogs, m.AddHog(&machine.Hog{
					Name: fmt.Sprintf("memhog-%d", i), Kind: machine.HogMem,
					VM: core.VMID(fmt.Sprintf("vm-t%d", i)), MemDemandBps: 4.3e9, CyclesPerByte: 0.33,
				}))
			}
		},
		func() {
			for _, h := range memHogs {
				m.RemoveHog(h)
			}
			memHogs = nil
		})
	quiet()

	// Phase 5: CPU hog inside one middlebox VM -> its TUN only.
	var vmHog *machine.Hog
	runPhase("VM-CPU-bound", diagnosis.LocTUNIndividual,
		func() {
			vmHog = m.AddHog(&machine.Hog{
				Name: "mbhog", Kind: machine.HogCPU, VM: "vm-mb0", CPUDemandCores: 4.0,
			})
		},
		func() { m.RemoveHog(vmHog) })
	quiet()

	return res, nil
}
