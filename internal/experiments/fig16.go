package experiments

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"syscall"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/middlebox"
	"perfsight/internal/wire"
)

// Fig16Point is one (query frequency, CPU usage) measurement.
type Fig16Point struct {
	FrequencyHz float64
	CPUPercent  float64
}

// Fig16Result reproduces Figure 16: the CPU cost of polling the agent's
// full element set at increasing frequency, over the real TCP path. The
// paper measures under 0.5% at 10 Hz and a few percent at 180 Hz.
type Fig16Result struct {
	Points []Fig16Point
}

// ShapeCorrect checks increasing cost with a cheap low end. The bound is
// generous because wall-clock CPU accounting is noisy under coverage
// instrumentation and loaded CI machines.
func (r *Fig16Result) ShapeCorrect() bool {
	if len(r.Points) < 3 {
		return false
	}
	if r.Points[0].CPUPercent > 5 {
		return false
	}
	return r.Points[len(r.Points)-1].CPUPercent >= r.Points[0].CPUPercent
}

// String renders the curve.
func (r *Fig16Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 16: query frequency vs agent CPU usage\n")
	b.WriteString("frequency (Hz)  CPU usage (%)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%14.0f  %13.3f\n", p.FrequencyHz, p.CPUPercent)
	}
	return b.String()
}

// RunFig16 polls a live agent over TCP at each frequency for the given
// wall-clock window and reports process CPU usage attributable to the
// polling (rusage delta over wall time).
func RunFig16(freqs []float64, window time.Duration) (*Fig16Result, error) {
	if len(freqs) == 0 {
		freqs = []float64{1, 10, 20, 40, 80, 120, 180}
	}
	if window <= 0 {
		window = time.Second
	}

	l := NewLab(time.Millisecond)
	l.DefaultMachine("m0")
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	l.C.PlaceVM("m0", "vm0", 1.0, 1e9, sink)
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	a := l.Agents["m0"]

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go a.Serve(ln)
	client := controller.NewTCPClient(ln.Addr().String())
	defer client.Close()

	res := &Fig16Result{}
	for _, f := range freqs {
		interval := time.Duration(float64(time.Second) / f)
		// Collect garbage outside the window so GC from unrelated work does
		// not pollute the rusage delta.
		runtime.GC()
		start := time.Now()
		cpu0, err := processCPU()
		if err != nil {
			return nil, err
		}
		deadline := start.Add(window)
		next := start
		for time.Now().Before(deadline) {
			if _, err := client.Query(wire.Query{All: true}); err != nil {
				return nil, fmt.Errorf("fig16 at %.0f Hz: %w", f, err)
			}
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		cpu1, err := processCPU()
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		res.Points = append(res.Points, Fig16Point{
			FrequencyHz: f,
			CPUPercent:  100 * float64(cpu1-cpu0) / float64(wall),
		})
	}
	return res, nil
}

// processCPU returns the process's cumulative user+system CPU time.
func processCPU() (time.Duration, error) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, err
	}
	user := time.Duration(ru.Utime.Sec)*time.Second + time.Duration(ru.Utime.Usec)*time.Microsecond
	sys := time.Duration(ru.Stime.Sec)*time.Second + time.Duration(ru.Stime.Usec)*time.Microsecond
	return user + sys, nil
}
