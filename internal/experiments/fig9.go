package experiments

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/middlebox"
)

// Fig9Result reproduces Figure 9: the response time between the agent and
// each kind of component. Network-device statistics (TUN, pNIC) travel
// through device-file reads costing ~2 ms on the paper's testbed; every
// other channel completes well under 500 µs; the agent-controller round
// trip rides TCP.
type Fig9Result struct {
	// Times maps channel name to the median of N round trips.
	Times map[string]time.Duration
	// Order lists channels in the paper's x-axis order.
	Order []string
}

// ShapeCorrect checks the paper's ordering: device-file channels are the
// slowest element channels by a wide margin, and everything else stays in
// the sub-millisecond class. (The non-device bound is 1 ms rather than the
// paper's 500 µs reading because file and pipe I/O jitter on loaded CI
// machines; the ordering is the claim.)
func (r *Fig9Result) ShapeCorrect() bool {
	tun, pnic := r.Times["agent-tun"], r.Times["agent-pnic"]
	for name, d := range r.Times {
		switch name {
		case "agent-tun", "agent-pnic", "agent-controller":
			continue
		default:
			if d >= time.Millisecond {
				return false
			}
			if 2*d >= tun || 2*d >= pnic {
				return false
			}
		}
	}
	return tun >= time.Millisecond && pnic >= time.Millisecond
}

// String renders the measured channel latencies.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: response time between agent and other components\n")
	for _, name := range r.Order {
		fmt.Fprintf(&b, "%-18s %10.0f us\n", name, float64(r.Times[name])/1e3)
	}
	return b.String()
}

// RunFig9 measures each collection channel's round-trip time with the
// calibrated per-channel costs, plus the real TCP agent-controller path.
func RunFig9(rounds int) (*Fig9Result, error) {
	if rounds <= 0 {
		rounds = 21
	}
	l := NewLab(time.Millisecond)
	l.SetAgentOptions(agent.BuildOptions{
		UseMboxSockets: true,
		Latencies:      agent.CalibratedLatencies(),
	})
	l.DefaultMachine("m0")
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	l.C.PlaceVM("m0", "vm0", 1.0, 1e9, sink)
	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	a := l.Agents["m0"]

	measure := func(ids ...core.ElementID) (time.Duration, error) {
		var samples []time.Duration
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, err := a.Fetch(ids, nil, false); err != nil {
				return 0, err
			}
			samples = append(samples, time.Since(start))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return samples[len(samples)/2], nil
	}

	res := &Fig9Result{Times: make(map[string]time.Duration)}
	channels := []struct {
		name string
		id   core.ElementID
	}{
		{"agent-qemu", "m0/vm0/qemu"},
		{"agent-backlog", "m0/cpu0/backlog"},
		{"agent-vm", "m0/vm0/app"},      // middlebox stats socket
		{"agent-vswitch", "m0/vswitch"}, // OVS control channel
		{"agent-pnic", "m0/pnic"},       // device file
		{"agent-tun", "m0/vm0/tun"},     // device file
	}
	for _, ch := range channels {
		d, err := measure(ch.id)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", ch.name, err)
		}
		res.Times[ch.name] = d
		res.Order = append(res.Order, ch.name)
	}

	// Agent-controller over real TCP on loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go a.Serve(ln)
	client := controller.NewTCPClient(ln.Addr().String())
	defer client.Close()
	var samples []time.Duration
	for i := 0; i < rounds; i++ {
		d, err := client.Ping()
		if err != nil {
			return nil, fmt.Errorf("fig9 controller ping: %w", err)
		}
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	res.Times["agent-controller"] = samples[len(samples)/2]
	res.Order = append(res.Order, "agent-controller")
	return res, nil
}
