package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/history"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"

	"perfsight/internal/cluster"
)

// ScaleConfig sizes the parallel-engine scale scenario: a fleet of
// identical machines, each with sink VMs fed by per-machine hosts.
type ScaleConfig struct {
	Machines      int
	VMsPerMachine int
	Domains       int
	Workers       int
	Tick          time.Duration
	Duration      time.Duration
	Seed          uint64
	RatePerVM     float64 // offered load per VM, bps
}

// withDefaults fills zero fields with the 2000-machine scale scenario.
func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Machines <= 0 {
		c.Machines = 2000
	}
	if c.VMsPerMachine <= 0 {
		c.VMsPerMachine = 1
	}
	if c.Domains <= 0 {
		c.Domains = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RatePerVM <= 0 {
		c.RatePerVM = 200e6
	}
	return c
}

const scaleTenant = core.TenantID("t-scale")

// scaleLab is one built instance of the scale scenario plus the handles
// the trajectory hash walks.
type scaleLab struct {
	l     *Lab
	conns []*stream.Conn
}

// buildScaleLab constructs the scenario; when parallel is true the cluster
// is moved onto the sharded two-phase engine before any tick runs. With
// agents, every machine gets a PerfSight agent (the golden determinism
// test sweeps them into a history store).
func buildScaleLab(cfg ScaleConfig, parallel, agents bool) (*scaleLab, error) {
	l := NewLab(cfg.Tick)
	sl := &scaleLab{l: l}
	for i := 0; i < cfg.Machines; i++ {
		mid := core.MachineID(fmt.Sprintf("m%04d", i))
		l.DefaultMachine(mid)
		host := l.C.AddHost(fmt.Sprintf("h%04d", i), 0)
		for v := 0; v < cfg.VMsPerMachine; v++ {
			vm := core.VMID(fmt.Sprintf("vm%d", v))
			sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("%s/%s/app", mid, vm)), 1e9)
			l.C.PlaceVM(mid, vm, 1.0, 1e9, sink)
			conn := l.C.Connect(flowID(fmt.Sprintf("f%04d-%d", i, v)),
				cluster.HostEndpoint(fmt.Sprintf("h%04d", i)), cluster.VMEndpoint(mid, vm), stream.Config{})
			// Stagger offered load across machines so domains do unequal
			// work — the harder case for deterministic parallel merge.
			host.AddSource(conn, cfg.RatePerVM*(0.5+0.25*float64(i%4)))
			sl.conns = append(sl.conns, conn)
		}
	}
	if agents {
		if err := l.BuildAgents(); err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Machines; i++ {
			mid := core.MachineID(fmt.Sprintf("m%04d", i))
			l.C.AssignStack(scaleTenant, mid)
			for v := 0; v < cfg.VMsPerMachine; v++ {
				l.C.AssignVM(scaleTenant, mid, core.VMID(fmt.Sprintf("vm%d", v)))
			}
		}
	}
	if parallel {
		l.C.Parallelize(cfg.Domains, cfg.Workers, cfg.Seed)
	}
	return sl, nil
}

// trajectoryHash digests the scenario's end state: every connection's
// transport counters in creation order, then every element snapshot of
// every machine in ID order. Two runs that made identical per-tick
// decisions hash identically; any divergence — one misrouted batch, one
// reordered drop — changes it.
func (sl *scaleLab) trajectoryHash() uint64 {
	h := fnv.New64a()
	w := func(vals ...int64) {
		var b [8]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	for _, conn := range sl.conns {
		h.Write([]byte(conn.Flow()))
		st := conn.Stats()
		w(st.Delivered, st.Lost, st.InFlight, st.Cwnd, st.Buffered)
	}
	for _, mid := range sl.l.C.Machines() {
		m := sl.l.C.Machine(mid)
		hashRecord := func(rec core.Record) {
			h.Write([]byte(rec.Element))
			for _, a := range rec.Attrs {
				w(int64(a.ID), int64(math.Float64bits(a.Value)))
			}
		}
		hashRecord(m.HostElement().Snapshot(0))
		for _, vid := range m.VMs() {
			vm := m.VM(vid)
			hashRecord(vm.Stack.Tun.Snapshot(0))
			hashRecord(vm.Stack.VNic.Snapshot(0))
		}
	}
	return h.Sum64()
}

// sweepToStore fetches every agent's full element set and appends the
// records to the history store — the persistence path the golden
// determinism test hashes.
func (sl *scaleLab) sweepToStore(st *history.Store) error {
	for _, mid := range sl.l.C.Machines() {
		recs, err := sl.l.Agents[mid].Fetch(nil, nil, true)
		if err != nil {
			return fmt.Errorf("sweep %s: %w", mid, err)
		}
		for _, rec := range recs {
			st.Append(scaleTenant, rec)
		}
	}
	return nil
}

// storeHash digests the history store's full sorted dump: every tenant,
// element, attribute and stored point. Byte-identical trajectories produce
// identical store content and so identical hashes.
func storeHash(st *history.Store) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	for _, tid := range st.Tenants() {
		h.Write([]byte(tid))
		for _, eid := range st.Elements(tid) {
			h.Write([]byte(eid))
			for _, attr := range st.Attrs(tid, eid) {
				h.Write([]byte(attr))
				for _, p := range st.Series(tid, eid, attr, 0, math.MaxInt64, 0) {
					w(p.TS)
					w(int64(math.Float64bits(p.V)))
				}
			}
		}
	}
	return h.Sum64()
}

// ScaleResult reports the serial-vs-parallel scale run.
type ScaleResult struct {
	Cfg          ScaleConfig
	SerialWall   time.Duration
	ParallelWall time.Duration
	SerialHash   uint64
	ParallelHash uint64
}

// Speedup is serial wall time over parallel wall time.
func (r *ScaleResult) Speedup() float64 {
	if r.ParallelWall <= 0 {
		return 0
	}
	return float64(r.SerialWall) / float64(r.ParallelWall)
}

// Deterministic reports whether both executions produced byte-identical
// trajectories.
func (r *ScaleResult) Deterministic() bool { return r.SerialHash == r.ParallelHash }

// String renders the scale table row.
func (r *ScaleResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel scale: %d machines x %d VMs, %s sim time, tick %s\n",
		r.Cfg.Machines, r.Cfg.VMsPerMachine, r.Cfg.Duration, r.Cfg.Tick)
	fmt.Fprintf(&sb, "serial    %12s   hash %016x\n", r.SerialWall.Round(time.Millisecond), r.SerialHash)
	fmt.Fprintf(&sb, "parallel  %12s   hash %016x   (%d domains, %d workers)\n",
		r.ParallelWall.Round(time.Millisecond), r.ParallelHash, r.Cfg.Domains, r.Cfg.Workers)
	fmt.Fprintf(&sb, "speedup   %.2fx   deterministic %v\n", r.Speedup(), r.Deterministic())
	return sb.String()
}

// RunScale builds the scenario twice — once on the serial engine, once on
// the sharded parallel engine — runs both for the configured virtual
// duration, and compares wall time and trajectory hashes.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{Cfg: cfg}

	serial, err := buildScaleLab(cfg, false, false)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	serial.l.Run(cfg.Duration)
	res.SerialWall = time.Since(start)
	res.SerialHash = serial.trajectoryHash()
	serial.l.C.Close()

	par, err := buildScaleLab(cfg, true, false)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	par.l.Run(cfg.Duration)
	res.ParallelWall = time.Since(start)
	res.ParallelHash = par.trajectoryHash()
	par.l.C.Close()
	return res, nil
}
