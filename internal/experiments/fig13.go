package experiments

import (
	"fmt"
	"strings"
	"time"

	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// Fig13Sample is one per-second point of the multi-tenant timeline.
type Fig13Sample struct {
	T           float64
	Tenant1Mbps float64
	Tenant2Mbps float64
}

// Fig13Phase records the operator's diagnosis at each stage.
type Fig13Phase struct {
	Name     string
	Location diagnosis.DropLocation
	Inferred diagnosis.Resource
	Scope    diagnosis.Scope
	Note     string
}

// Fig13Result reproduces the §7.3 operator workflow (Figures 13/14): two
// tenants' proxies share a machine; tenant 2 is bottlenecked by its own
// proxy (~200 Mbps); a memory-intensive management task then hits both;
// the operator migrates it away; finally tenant 2's proxy is scaled out
// and its throughput reaches the offered 360 Mbps.
type Fig13Result struct {
	Samples []Fig13Sample
	Phases  []Fig13Phase
	// Phase averages for tenant 2 (the paper's headline numbers).
	T2Bottleneck, T2MemPhase, T2Recovered, T2ScaledOut float64
	T1Baseline                                         float64
}

// Correct checks the headline shape: bottleneck ~200, dip, recovery, then
// ~360 after scale-out.
func (r *Fig13Result) Correct() bool {
	return r.T2Bottleneck > 150e6 && r.T2Bottleneck < 260e6 &&
		r.T2MemPhase < 0.7*r.T2Bottleneck &&
		r.T2Recovered > 0.85*r.T2Bottleneck &&
		r.T2ScaledOut > 300e6
}

// String renders the timeline and phase diagnoses.
func (r *Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 13: multi-tenant throughput under operator actions\n")
	b.WriteString("t(s)  tenant1(Mbps)  tenant2(Mbps)\n")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%4.0f  %13.0f  %13.0f\n", s.T, s.Tenant1Mbps, s.Tenant2Mbps)
	}
	b.WriteString("\noperator diagnoses:\n")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  %-14s %s / %s (%s) — %s\n", p.Name+":", p.Location, p.Inferred, p.Scope, p.Note)
	}
	fmt.Fprintf(&b, "\ntenant2: bottleneck %.0f Mbps (paper ~200), mem-contention %.0f, recovered %.0f, scaled out %.0f (paper 360)\n",
		r.T2Bottleneck/1e6, r.T2MemPhase/1e6, r.T2Recovered/1e6, r.T2ScaledOut/1e6)
	fmt.Fprintf(&b, "tenant1 baseline %.0f Mbps (paper 180)\n", r.T1Baseline/1e6)
	return b.String()
}

// RunFig13 executes the operator scenario.
func RunFig13() (*Fig13Result, error) {
	l := NewLab(time.Millisecond)
	l.C.RmemPerConn = 212992
	shared := machine.DefaultConfig("m-shared")
	shared.Stack.VNICRing = 256
	shared.Stack.SocketRxBytes = 512 << 10 // era-appropriate socket pools
	m := l.C.AddMachine(shared)
	l.DefaultMachine("m-spare") // target for the scale-out instance

	const (
		t1 = core.TenantID("tenant1")
		t2 = core.TenantID("tenant2")
		// Proxy capacity ~200 Mbps on one vCPU: 2.5e9 cycles/s at ~95
		// cycles/byte (plus per-packet costs).
		bottleneckCPB = 88
		fastCPB       = 10
	)

	// Tenant 1: client -> proxy1 -> server, offered 180 Mbps.
	l.C.AddHost("server1", 0)
	out1 := l.C.Connect("t1-out", cluster.VMEndpoint("m-shared", "vm-p1"), cluster.HostEndpoint("server1"), stream.Config{})
	p1 := middlebox.NewForwarder("m-shared/vm-p1/app", 1e9,
		middlebox.ForwardConfig{CyclesPerByte: fastCPB, CyclesPerPacket: 2500}, middlebox.ConnOutput{C: out1})
	l.C.PlaceVM("m-shared", "vm-p1", 1.0, 1e9, p1)
	c1 := l.C.AddHost("client1", 0)
	var t1Srcs []*cluster.HostSource
	for j := 0; j < 6; j++ {
		in := l.C.Connect(flowID(fmt.Sprintf("t1-in%d", j)),
			cluster.HostEndpoint("client1"), cluster.VMEndpoint("m-shared", "vm-p1"), stream.Config{})
		t1Srcs = append(t1Srcs, c1.AddSource(in, 30e6))
	}

	// Tenant 2: client -> proxy2 -> server, offered 360 Mbps but the proxy
	// can only process ~200 Mbps.
	l.C.AddHost("server2", 0)
	out2 := l.C.Connect("t2-out", cluster.VMEndpoint("m-shared", "vm-p2"), cluster.HostEndpoint("server2"), stream.Config{})
	p2 := middlebox.NewForwarder("m-shared/vm-p2/app", 1e9,
		middlebox.ForwardConfig{CyclesPerByte: bottleneckCPB, CyclesPerPacket: 3000}, middlebox.ConnOutput{C: out2})
	l.C.PlaceVM("m-shared", "vm-p2", 1.0, 1e9, p2)
	c2 := l.C.AddHost("client2", 0)
	var t2Srcs []*cluster.HostSource
	for j := 0; j < 8; j++ {
		in := l.C.Connect(flowID(fmt.Sprintf("t2-in%d", j)),
			cluster.HostEndpoint("client2"), cluster.VMEndpoint("m-shared", "vm-p2"), stream.Config{})
		t2Srcs = append(t2Srcs, c2.AddSource(in, 45e6))
	}

	if err := l.BuildAgents(); err != nil {
		return nil, err
	}
	// The cloud operator's view spans every VM on the shared machine; the
	// per-tenant views cover each tenant's own virtual network.
	const op = core.TenantID("operator")
	for _, tid := range []core.TenantID{t1, t2, op} {
		l.C.AssignStack(tid, "m-shared")
	}
	l.C.AssignVM(t1, "m-shared", "vm-p1")
	l.C.AssignVM(t2, "m-shared", "vm-p2")
	l.C.AssignVM(op, "m-shared", "vm-p1")
	l.C.AssignVM(op, "m-shared", "vm-p2")
	l.C.AddChain(t1, "m-shared/vm-p1/app")
	l.C.AddChain(t2, "m-shared/vm-p2/app")

	res := &Fig13Result{}
	var out2b *stream.Conn
	var prev1, prev2, prev2b int64
	sample := func() {
		l.Run(time.Second)
		d1 := out1.DeliveredBytes()
		d2 := out2.DeliveredBytes()
		var d2b int64
		if out2b != nil {
			d2b = out2b.DeliveredBytes()
		}
		res.Samples = append(res.Samples, Fig13Sample{
			T:           l.C.Now().Seconds(),
			Tenant1Mbps: float64(d1-prev1) * 8 / 1e6,
			Tenant2Mbps: float64(d2-prev2+d2b-prev2b) * 8 / 1e6,
		})
		prev1, prev2, prev2b = d1, d2, d2b
	}
	// resync skips the bytes delivered during a diagnosis window (which
	// advances virtual time) so the next sample stays a 1-second delta.
	resync := func() {
		prev1 = out1.DeliveredBytes()
		prev2 = out2.DeliveredBytes()
		if out2b != nil {
			prev2b = out2b.DeliveredBytes()
		}
	}
	avg2 := func(from, to float64) float64 {
		var s float64
		n := 0
		for _, x := range res.Samples {
			if x.T > from && x.T <= to {
				s += x.Tenant2Mbps
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n) * 1e6
	}

	// Phase 1 (0-10 s): tenant 2 bottlenecked at its proxy. TCP flow
	// control keeps the stack loss-free, so the operator turns to the
	// middlebox-state application (§5.1 bottleneck detection): a middlebox
	// that is neither Read- nor WriteBlocked while its tenant underperforms
	// is the bottleneck.
	for i := 0; i < 3; i++ {
		sample()
	}
	rc, err := diagnosis.LocateRootCause(l.Ctl, t2, 3*time.Second)
	if err != nil {
		return nil, err
	}
	resync()
	for i := 0; i < 4; i++ {
		sample()
	}
	note := "no middlebox isolated"
	if len(rc.RootCauses) > 0 {
		note = fmt.Sprintf("tenant 2 bottlenecked at %s (state %s)",
			rc.RootCauses[0], rc.Metrics[rc.RootCauses[0]].State)
	}
	res.Phases = append(res.Phases, Fig13Phase{Name: "bottleneck", Note: note})

	// Phase 2 (10-20 s): memory-intensive management task on the host.
	hog := m.AddHog(&machine.Hog{Name: "mgmt", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33})
	for i := 0; i < 3; i++ {
		sample()
	}
	rep, err := diagnosis.FindContentionAndBottleneck(l.Ctl, op, 3*time.Second)
	if err != nil {
		return nil, err
	}
	resync()
	for i := 0; i < 4; i++ {
		sample()
	}
	res.Phases = append(res.Phases, Fig13Phase{
		Name: "mem-task", Location: rep.TopLocation, Inferred: rep.Inferred, Scope: rep.Scope,
		Note: "both tenants' proxies dropping at their TUNs",
	})

	// Phase 3 (20-30 s): the operator migrates the management task away.
	m.RemoveHog(hog)
	for i := 0; i < 10; i++ {
		sample()
	}

	// Phase 4 (30-40 s): scale out tenant 2's proxy and reroute half of
	// its flows to the new instance on the spare machine.
	out2b = l.C.Connect("t2b-out", cluster.VMEndpoint("m-spare", "vm-p2b"), cluster.HostEndpoint("server2"), stream.Config{})
	p2b := middlebox.NewForwarder("m-spare/vm-p2b/app", 1e9,
		middlebox.ForwardConfig{CyclesPerByte: bottleneckCPB, CyclesPerPacket: 3000}, middlebox.ConnOutput{C: out2b})
	l.C.PlaceVM("m-spare", "vm-p2b", 1.0, 1e9, p2b)
	if err := l.RefreshAgent("m-spare"); err != nil {
		return nil, err
	}
	l.C.AssignVM(t2, "m-spare", "vm-p2b")
	for j := 4; j < 8; j++ {
		l.C.RerouteFlow(flowID(fmt.Sprintf("t2-in%d", j)),
			cluster.HostEndpoint("client2"), cluster.VMEndpoint("m-spare", "vm-p2b"))
	}
	for i := 0; i < 10; i++ {
		sample()
	}
	res.Phases = append(res.Phases, Fig13Phase{
		Name: "scale-out", Location: diagnosis.LocNone, Inferred: diagnosis.ResourceUnknown,
		Note: "half of tenant 2's flows rerouted to vm-p2b on m-spare",
	})

	res.T1Baseline = 0
	var n1 float64
	for _, s := range res.Samples {
		if s.T <= 10 {
			res.T1Baseline += s.Tenant1Mbps * 1e6
			n1++
		}
	}
	if n1 > 0 {
		res.T1Baseline /= n1
	}
	res.T2Bottleneck = avg2(3, 10)
	res.T2MemPhase = avg2(12, 20)
	res.T2Recovered = avg2(23, 30)
	res.T2ScaledOut = avg2(34, 40)
	return res, nil
}
