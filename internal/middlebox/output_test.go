package middlebox

import (
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/stream"
)

type sinkWin int64

func (w sinkWin) RxFree() int64 { return int64(w) }

func TestConnOutput(t *testing.T) {
	var emitted int64
	conn := stream.NewConn("f", stream.Config{SendBufBytes: 1000},
		func(b dataplane.Batch) int64 { emitted += b.Bytes; return b.Bytes }, sinkWin(1<<20))
	o := ConnOutput{C: conn}
	if o.Free() != 1000 {
		t.Fatalf("free %d", o.Free())
	}
	if got := o.Write(dataplane.Batch{Bytes: 600}); got != 600 {
		t.Fatalf("write %d", got)
	}
	if o.Free() != 400 {
		t.Fatalf("free after write %d", o.Free())
	}
	o.Pump(time.Millisecond)
	if emitted == 0 {
		t.Fatal("pump emitted nothing")
	}
}

type fakeSock struct {
	free     int64
	accepted []dataplane.Batch
}

func (s *fakeSock) TxFree() int64 { return s.free }
func (s *fakeSock) Write(b dataplane.Batch) int64 {
	if b.Bytes > s.free {
		b.Bytes = s.free
	}
	s.free -= b.Bytes
	s.accepted = append(s.accepted, b)
	return b.Bytes
}

func TestRawOutputPacketizes(t *testing.T) {
	sock := &fakeSock{free: 1 << 20}
	fb := &countFB{}
	o := RawOutput{Flow: "udp", PacketSize: 500, FB: fb, Sock: sock}
	if o.Free() != 1<<20 {
		t.Fatalf("free %d", o.Free())
	}
	if got := o.Write(dataplane.Batch{Bytes: 1400}); got != 1400 {
		t.Fatalf("write %d", got)
	}
	b := sock.accepted[0]
	if b.Flow != "udp" || b.Packets != 3 || !b.Egress {
		t.Fatalf("batch: %+v", b)
	}
	if b.FB == nil {
		t.Fatal("feedback not attached")
	}
	o.Pump(time.Millisecond) // no-op, must not panic
}

func TestRawOutputDefaultPacketSize(t *testing.T) {
	sock := &fakeSock{free: 1 << 20}
	o := RawOutput{Flow: "f", Sock: sock}
	o.Write(dataplane.Batch{Bytes: 1448 * 2})
	if sock.accepted[0].Packets != 2 {
		t.Fatalf("packets: %d", sock.accepted[0].Packets)
	}
}

func TestNullOutput(t *testing.T) {
	var o NullOutput
	if o.Free() <= 0 {
		t.Fatal("null output has no space")
	}
	if got := o.Write(dataplane.Batch{Bytes: 123}); got != 123 {
		t.Fatalf("write %d", got)
	}
	o.Pump(time.Millisecond)
}

type countFB struct{ delivered, dropped int64 }

func (f *countFB) Delivered(p int, b int64)                 { f.delivered += b }
func (f *countFB) Dropped(p int, b int64, _ core.ElementID) { f.dropped += b }
