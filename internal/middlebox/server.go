package middlebox

import (
	"time"

	"perfsight/internal/core"
	"perfsight/internal/machine"
)

// Server is a terminating middlebox (HTTP server, NFS log server): it
// reads from the VM socket and consumes the data at a per-byte cost,
// optionally gated by a disk rate. It has no network output, so its
// output counters stay zero — the "N/A" columns of Fig 12 — and it can
// never be classified WriteBlocked; when it is the bottleneck it simply
// remains in Algorithm 2's candidate set.
type Server struct {
	Base
	// CyclesPerByte is the request-processing cost.
	CyclesPerByte float64
	// CyclesPerPacket is the per-request overhead.
	CyclesPerPacket float64
	// MembusFactor is bus bytes per processed byte.
	MembusFactor float64
	// DiskBps bounds consumption by storage bandwidth (0 = no disk).
	DiskBps float64
	// LeakPerSec injects the CentOS-7267-style NFS bug of §7.2: the
	// effective per-byte cost grows by this factor each second, so the
	// server gradually becomes overloaded and stalls its writers.
	LeakPerSec float64
	// CPUHz converts cycles to time for accounting.
	CPUHz float64

	leakStart time.Duration
	leaking   bool
	consumed  int64
}

// NewServer builds a terminating server.
func NewServer(id core.ElementID, capacityBps float64, cyclesPerByte float64) *Server {
	return &Server{
		Base:            NewBase(id, capacityBps),
		CyclesPerByte:   cyclesPerByte,
		CyclesPerPacket: 3000,
		MembusFactor:    4.0,
		CPUHz:           DefaultCPUHz,
	}
}

// NewHTTPServer returns a server with typical request-handling cost.
func NewHTTPServer(id core.ElementID, capacityBps float64) *Server {
	return NewServer(id, capacityBps, 20)
}

// NewNFSServer returns a disk-backed log server.
func NewNFSServer(id core.ElementID, capacityBps, diskBps float64) *Server {
	s := NewServer(id, capacityBps, 15)
	s.DiskBps = diskBps
	return s
}

// InjectLeak starts the memory-leak bug at virtual time now.
func (s *Server) InjectLeak(now time.Duration, leakPerSec float64) {
	s.leaking = true
	s.leakStart = now
	s.LeakPerSec = leakPerSec
}

// HealLeak stops the bug (VM reloaded with fixed software).
func (s *Server) HealLeak() { s.leaking = false }

// ConsumedBytes returns cumulative processed bytes.
func (s *Server) ConsumedBytes() int64 { return s.consumed }

// effCyclesPerByte applies the leak-induced slowdown.
func (s *Server) effCyclesPerByte(now time.Duration) float64 {
	if !s.leaking || s.LeakPerSec <= 0 {
		return s.CyclesPerByte
	}
	elapsed := (now - s.leakStart).Seconds()
	if elapsed < 0 {
		elapsed = 0
	}
	return s.CyclesPerByte * (1 + s.LeakPerSec*elapsed)
}

// CPUDemand implements machine.App.
func (s *Server) CPUDemand(dt time.Duration) float64 {
	return s.CapacityBps / 8 * dt.Seconds() * s.effCyclesPerByte(0) * 2
}

// Step implements machine.App.
func (s *Server) Step(ctx *machine.AppContext) {
	sock := ctx.VM.Socket
	cpb := s.effCyclesPerByte(ctx.Now)

	inAvail := sock.RxAvailable()
	cpuBytes := ctx.VCPU.BytesFor(cpb)
	busBytes := ctx.Bus.WireBytesFor(s.MembusFactor)
	if busBytes < cpuBytes {
		cpuBytes = busBytes
	}
	moved := inAvail
	if cpuBytes < moved {
		moved = cpuBytes
	}
	if s.DiskBps > 0 {
		// DiskBps is bytes/s of storage bandwidth.
		if disk := int64(s.DiskBps * ctx.Dt.Seconds()); disk < moved {
			moved = disk
		}
	}
	if moved < 0 {
		moved = 0
	}

	var pkts int
	var readBytes int64
	if moved > 0 {
		for _, b := range sock.Read(moved) {
			pkts += b.Packets
			readBytes += b.Bytes
			if s.Hist != nil {
				s.Hist.ObserveN(b.AvgSize(), b.Packets)
			}
		}
	}
	cycles := float64(readBytes)*cpb + float64(pkts)*s.CyclesPerPacket
	ctx.VCPU.SpendCycles(cycles)
	ctx.Bus.SpendWireBytes(readBytes, s.MembusFactor)
	s.consumed += readBytes

	// Disk or CPU gating is processing, not output blocking (no network
	// output exists); only true input starvation is ReadBlocked.
	inLimited := readBytes >= inAvail && inAvail <= cpuBytes && moved < cpuBytes
	if inAvail == 0 {
		inLimited = true
	}
	instr := s.Account(TickIO{
		Dt:        ctx.Dt,
		InBytes:   readBytes,
		ProcNS:    int64(cycles / s.CPUHz * 1e9),
		InLimited: inLimited,
		InPackets: pkts,
	})
	ctx.VCPU.SpendCycles(instr)
}
