package middlebox

import (
	"sync"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
)

// IDSConfig parameterizes the Snort-like intrusion detection system.
type IDSConfig struct {
	// CyclesPerByte is the payload inspection cost (pattern matching over
	// every byte) — far above a proxy's copy cost.
	CyclesPerByte float64
	// CyclesPerPacket is the per-packet decode + rule-tree walk cost.
	CyclesPerPacket float64
	// MembusFactor is memory-bus bytes per inspected byte (rule tables and
	// reassembly buffers churn the bus).
	MembusFactor float64
	// BufBytes sizes the capture ring between the tap and the inspection
	// loop. When inspection falls behind, arrivals beyond this are
	// tail-dropped — the IDS's visible loss signal under CPU contention.
	BufBytes int64
	// AlertRatio is the fraction of inspected packets that raise an alert.
	AlertRatio float64
	// CPUHz converts cycles to time for accounting (DefaultCPUHz if 0).
	CPUHz float64
}

func (c *IDSConfig) fill() {
	if c.CyclesPerByte == 0 {
		c.CyclesPerByte = 55
	}
	if c.CyclesPerPacket == 0 {
		c.CyclesPerPacket = 9000
	}
	if c.MembusFactor == 0 {
		c.MembusFactor = 6
	}
	if c.BufBytes == 0 {
		c.BufBytes = 256 << 10
	}
	if c.AlertRatio == 0 {
		c.AlertRatio = 0.001
	}
	if c.CPUHz == 0 {
		c.CPUHz = DefaultCPUHz
	}
}

// IDS models a Snort-like inline detector. Unlike a Forwarder it does not
// backpressure its input: a packet tap drains the socket unconditionally
// (the kernel already delivered the data) into a bounded capture ring, and
// the inspection loop works the ring down at its per-byte/per-packet cost.
// When the vCPU grant cannot keep up, the ring overflows and the excess is
// tail-dropped — so an IDS under CPU contention LOSES packets where a
// blocking middlebox would merely WriteBlock its upstream. Those drops are
// exported as the standard drop counters, which is what lets Algorithm 1
// rank the middlebox itself as a drop location (LocMiddlebox in the rule
// book).
type IDS struct {
	Base
	Cfg IDSConfig
	Out Output

	bufBytes int64 // capture-ring occupancy
	bufPkts  int64

	inspectedBytes int64
	inspectedPkts  int64
	droppedBytes   int64 // ring-overflow tail drops
	droppedPkts    int64
	alertAcc       float64
}

// NewIDS builds a Snort-like IDS with representative inspection costs.
func NewIDS(id core.ElementID, capacityBps float64, out Output) *IDS {
	return NewIDSWithConfig(id, capacityBps, IDSConfig{}, out)
}

// NewIDSWithConfig builds an IDS with explicit costs.
func NewIDSWithConfig(id core.ElementID, capacityBps float64, cfg IDSConfig, out Output) *IDS {
	cfg.fill()
	return &IDS{Base: NewBase(id, capacityBps), Cfg: cfg, Out: out}
}

var _ machine.App = (*IDS)(nil)

// DroppedPackets returns cumulative capture-ring tail drops.
func (s *IDS) DroppedPackets() int64 { return s.droppedPkts }

// InspectedBytes returns cumulative bytes that made it through inspection.
func (s *IDS) InspectedBytes() int64 { return s.inspectedBytes }

// Alerts returns the cumulative alert count.
func (s *IDS) Alerts() int64 { return int64(s.alertAcc) }

// CPUDemand implements machine.App: the backlog in the ring plus headroom
// for line-rate arrivals, at the inspection cost.
func (s *IDS) CPUDemand(dt time.Duration) float64 {
	return (float64(s.bufBytes) + s.CapacityBps/8*dt.Seconds()) * s.Cfg.CyclesPerByte
}

// Step implements machine.App.
func (s *IDS) Step(ctx *machine.AppContext) {
	sock := ctx.VM.Socket
	dt := ctx.Dt

	// Capture phase: drain the socket unconditionally. Delivery feedback
	// already fired when the kernel enqueued the data, so overflow here is
	// a pure local loss (no retransmission) — exactly a pcap ring drop.
	var capturedBytes int64
	if avail := sock.RxAvailable(); avail > 0 {
		for _, b := range sock.Read(avail) {
			if s.Hist != nil {
				s.Hist.ObserveN(b.AvgSize(), b.Packets)
			}
			take := b.Bytes
			if free := s.Cfg.BufBytes - s.bufBytes; take > free {
				take = free
			}
			if take < 0 {
				take = 0
			}
			keptPkts := int64(b.Packets)
			if take < b.Bytes && b.Bytes > 0 {
				keptPkts = int64(b.Packets) * take / b.Bytes
			}
			s.bufBytes += take
			s.bufPkts += keptPkts
			capturedBytes += take
			if lost := b.Bytes - take; lost > 0 {
				s.droppedBytes += lost
				s.droppedPkts += int64(b.Packets) - keptPkts
			}
		}
	}

	// Inspection phase: work the ring down as the vCPU and bus grants
	// allow; an inline deployment also stalls on downstream space.
	cpuBytes := ctx.VCPU.BytesFor(s.Cfg.CyclesPerByte)
	if busBytes := ctx.Bus.WireBytesFor(s.Cfg.MembusFactor); busBytes < cpuBytes {
		cpuBytes = busBytes
	}
	outFree := int64(^uint64(0) >> 1)
	if s.Out != nil {
		outFree = s.Out.Free()
	}
	inspect := s.bufBytes
	if cpuBytes < inspect {
		inspect = cpuBytes
	}
	if outFree < inspect {
		inspect = outFree
	}
	if inspect < 0 {
		inspect = 0
	}
	var pkts int64
	if s.bufBytes > 0 {
		pkts = s.bufPkts * inspect / s.bufBytes
	}
	s.bufBytes -= inspect
	s.bufPkts -= pkts

	cycles := float64(inspect)*s.Cfg.CyclesPerByte + float64(pkts)*s.Cfg.CyclesPerPacket
	ctx.VCPU.SpendCycles(cycles)
	ctx.Bus.SpendWireBytes(inspect, s.Cfg.MembusFactor)
	s.inspectedBytes += inspect
	s.inspectedPkts += pkts
	s.alertAcc += s.Cfg.AlertRatio * float64(pkts)

	var outPkts int
	if s.Out != nil && inspect > 0 {
		accepted := s.Out.Write(dataplane.Batch{Bytes: inspect})
		outPkts = int(accepted / 1448)
	}

	inLimited := false
	outLimited := false
	switch {
	case cpuBytes <= inspect: // inspection is compute (or bus) bound
	case s.bufBytes == 0:
		inLimited = true // ring drained, waiting for traffic
	default:
		outLimited = true // downstream space held inspection back
	}
	instr := s.Account(TickIO{
		Dt:         dt,
		InBytes:    capturedBytes,
		OutBytes:   inspect,
		ProcNS:     int64(cycles / s.Cfg.CPUHz * 1e9),
		InLimited:  inLimited,
		OutLimited: outLimited,
		InPackets:  int(pkts),
		OutPackets: outPkts,
	})
	ctx.VCPU.SpendCycles(instr)

	if s.Out != nil {
		s.Out.Pump(dt)
	}
}

// Snapshot implements machine.App: the Base record plus the drop counters
// (so Algorithm 1 sees the ring overflow) and the IDS's own extension
// attributes.
func (s *IDS) Snapshot(ts int64) core.Record {
	rec := s.Base.Snapshot(ts)
	alerts, ring := idsAttrs()
	rec.Attrs = append(rec.Attrs,
		core.Attr{ID: core.AttrDropPackets, Value: float64(s.droppedPkts)},
		core.Attr{ID: core.AttrDropBytes, Value: float64(s.droppedBytes)},
		core.Attr{ID: alerts, Value: float64(int64(s.alertAcc))},
		core.Attr{ID: ring, Value: float64(s.bufBytes)},
	)
	return rec
}

var (
	idsAttrsOnce    sync.Once
	attrIDSAlerts   core.AttrID
	attrIDSRingOccu core.AttrID
)

// idsAttrs lazily registers the IDS extension attributes in the schema
// registry (shared with the wire format, so controllers resolve them by
// name).
func idsAttrs() (alerts, ringBytes core.AttrID) {
	idsAttrsOnce.Do(func() {
		attrIDSAlerts, _ = core.RegisterAttr("ids_alerts", core.SemCounter, "alerts")
		attrIDSRingOccu, _ = core.RegisterAttr("ids_ring_bytes", core.SemGauge, "bytes")
	})
	return attrIDSAlerts, attrIDSRingOccu
}
