package middlebox

import "perfsight/internal/core"

// MboxKind names the middlebox types used across the evaluation (Fig 15
// compares their instrumentation overhead).
type MboxKind int

const (
	KindProxy MboxKind = iota
	KindLB
	KindCache
	KindRE
	KindIPS
	KindFirewall
	KindNAT
	KindTranscoder
)

// String returns the kind's display name.
func (k MboxKind) String() string {
	switch k {
	case KindProxy:
		return "proxy"
	case KindLB:
		return "lb"
	case KindCache:
		return "cache"
	case KindRE:
		return "re"
	case KindIPS:
		return "ips"
	case KindFirewall:
		return "firewall"
	case KindNAT:
		return "nat"
	case KindTranscoder:
		return "transcoder"
	}
	return "unknown"
}

// NewOfKind builds a forwarding middlebox of the named kind with its
// representative costs.
func NewOfKind(k MboxKind, id core.ElementID, capacityBps float64, out Output) *Forwarder {
	switch k {
	case KindLB:
		return NewLoadBalancer(id, capacityBps, out)
	case KindCache:
		return NewCache(id, capacityBps, 0.3, out)
	case KindRE:
		return NewRedundancyEliminator(id, capacityBps, 0.5, out)
	case KindIPS:
		return NewIPS(id, capacityBps, out)
	case KindFirewall:
		return NewFirewall(id, capacityBps, 0.05, out)
	case KindNAT:
		return NewNAT(id, capacityBps, out)
	case KindTranscoder:
		return NewTranscoder(id, capacityBps, out)
	default:
		return NewProxy(id, capacityBps, out)
	}
}
