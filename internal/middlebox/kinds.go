package middlebox

import (
	"perfsight/internal/core"
	"perfsight/internal/machine"
)

// MboxKind names the middlebox types used across the evaluation (Fig 15
// compares their instrumentation overhead).
type MboxKind int

const (
	KindProxy MboxKind = iota
	KindLB
	KindCache
	KindRE
	KindIPS
	KindFirewall
	KindNAT
	KindTranscoder
	// KindIDS is the Snort-like detector with a bounded capture ring that
	// tail-drops under CPU contention (see IDS).
	KindIDS
	// KindSmartCache is the SmartRE-style cache whose output rate follows
	// a warming hit ratio (see SmartCache).
	KindSmartCache
)

// kindNames holds the display names in kind order; MboxKindFromString
// accepts exactly these.
var kindNames = [...]string{
	KindProxy:      "proxy",
	KindLB:         "lb",
	KindCache:      "cache",
	KindRE:         "re",
	KindIPS:        "ips",
	KindFirewall:   "firewall",
	KindNAT:        "nat",
	KindTranscoder: "transcoder",
	KindIDS:        "ids",
	KindSmartCache: "smartcache",
}

// String returns the kind's display name.
func (k MboxKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MboxKindFromString resolves a display name (as used in lab flags) back
// to its kind.
func MboxKindFromString(s string) (MboxKind, bool) {
	for k, name := range kindNames {
		if name == s {
			return MboxKind(k), true
		}
	}
	return 0, false
}

// NewOfKind builds a forwarding middlebox of the named kind with its
// representative costs. Kinds that are not plain Forwarders (IDS,
// SmartCache) fall back to their closest Forwarder approximation here;
// use NewAppOfKind to get the real models.
func NewOfKind(k MboxKind, id core.ElementID, capacityBps float64, out Output) *Forwarder {
	switch k {
	case KindLB:
		return NewLoadBalancer(id, capacityBps, out)
	case KindCache:
		return NewCache(id, capacityBps, 0.3, out)
	case KindRE:
		return NewRedundancyEliminator(id, capacityBps, 0.5, out)
	case KindIPS, KindIDS:
		return NewIPS(id, capacityBps, out)
	case KindFirewall:
		return NewFirewall(id, capacityBps, 0.05, out)
	case KindNAT:
		return NewNAT(id, capacityBps, out)
	case KindSmartCache:
		return NewCache(id, capacityBps, 0.6, out)
	case KindTranscoder:
		return NewTranscoder(id, capacityBps, out)
	default:
		return NewProxy(id, capacityBps, out)
	}
}

// NewAppOfKind builds a middlebox app of the named kind. Unlike NewOfKind
// it can return the kinds that are not Forwarders — the IDS with its drop
// behavior and the warming SmartCache — so scenario builders can place any
// kind by name.
func NewAppOfKind(k MboxKind, id core.ElementID, capacityBps float64, out Output) machine.App {
	switch k {
	case KindIDS:
		return NewIDS(id, capacityBps, out)
	case KindSmartCache:
		return NewSmartCache(id, capacityBps, out)
	default:
		return NewOfKind(k, id, capacityBps, out)
	}
}
