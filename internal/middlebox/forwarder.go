package middlebox

import (
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
)

// DefaultCPUHz converts app cycles to processing time for the §5.2 time
// split (matches machine.DefaultConfig).
const DefaultCPUHz = 2.5e9

// ForwardConfig parameterizes a forwarding middlebox.
type ForwardConfig struct {
	// CyclesPerByte is the per-byte processing cost; it sets the middlebox's
	// natural capacity (vCPUs × CPUHz / CyclesPerByte bytes/s).
	CyclesPerByte float64
	// CyclesPerPacket is the per-packet overhead (syscall, header work).
	CyclesPerPacket float64
	// MembusFactor is memory-bus bytes per processed byte (two copies plus
	// working-set traffic by default).
	MembusFactor float64
	// OutRatio is output bytes per forwarded input byte (1 for proxies,
	// <1 for compressing/caching elements).
	OutRatio float64
	// DropRatio is the fraction of input discarded by policy (firewall).
	DropRatio float64
	// LogRatio is bytes written to the log output per input byte (the
	// content filter's NFS logging in Fig 12).
	LogRatio float64
	// BusyWait marks non-blocking-I/O designs (the §2.3 transcoder): when
	// input-starved they spin instead of blocking, so their leftover time
	// counts as processing, and their CPU demand is always full.
	BusyWait bool
	// CPUHz converts cycles to time for accounting (DefaultCPUHz if 0).
	CPUHz float64
}

func (c *ForwardConfig) fill() {
	if c.MembusFactor == 0 {
		c.MembusFactor = 5.0
	}
	if c.OutRatio == 0 {
		c.OutRatio = 1.0
	}
	if c.CPUHz == 0 {
		c.CPUHz = DefaultCPUHz
	}
}

// Forwarder is the generic middlebox: it reads from the VM's guest socket,
// processes at the configured cost, and distributes output across one or
// more outputs (plus an optional log output). The named middleboxes —
// load balancer, content filter, firewall, NAT, IPS, cache, redundancy
// eliminator, transcoder — are Forwarders with representative costs.
type Forwarder struct {
	Base
	Cfg  ForwardConfig
	Outs []Output
	Log  Output

	processed int64
	dropped   int64
}

// NewForwarder builds a forwarding middlebox.
func NewForwarder(id core.ElementID, capacityBps float64, cfg ForwardConfig, outs ...Output) *Forwarder {
	cfg.fill()
	return &Forwarder{Base: NewBase(id, capacityBps), Cfg: cfg, Outs: outs}
}

// SetLogOutput attaches a secondary log stream (content filter -> NFS).
func (f *Forwarder) SetLogOutput(o Output) { f.Log = o }

// ProcessedBytes returns cumulative forwarded input bytes.
func (f *Forwarder) ProcessedBytes() int64 { return f.processed }

// CPUDemand implements machine.App.
func (f *Forwarder) CPUDemand(dt time.Duration) float64 {
	if f.Cfg.BusyWait {
		return f.Cfg.CPUHz * dt.Seconds() // spins regardless of input
	}
	// Pending input at per-byte cost, plus headroom for intra-tick arrivals
	// at the vNIC line rate.
	pending := float64(0)
	// The VM socket is only reachable during Step; demand is sized from
	// capacity instead, which is what a busy poll loop would claim.
	pending += f.CapacityBps / 8 * dt.Seconds() * f.Cfg.CyclesPerByte
	return pending
}

// Step implements machine.App.
func (f *Forwarder) Step(ctx *machine.AppContext) {
	sock := ctx.VM.Socket
	dt := ctx.Dt

	inAvail := sock.RxAvailable()
	cpuBytes := ctx.VCPU.BytesFor(f.Cfg.CyclesPerByte)
	busBytes := ctx.Bus.WireBytesFor(f.Cfg.MembusFactor)
	if busBytes < cpuBytes {
		cpuBytes = busBytes // treat bus starvation as compute limitation
	}

	// Map downstream space back to admissible input bytes.
	keep := (1 - f.Cfg.DropRatio) * f.Cfg.OutRatio
	inByOut := int64(^uint64(0) >> 1)
	if len(f.Outs) > 0 && keep > 0 {
		var space int64
		for _, o := range f.Outs {
			space += o.Free()
		}
		inByOut = int64(float64(space) / keep)
	}
	if f.Log != nil && f.Cfg.LogRatio > 0 {
		if byLog := int64(float64(f.Log.Free()) / f.Cfg.LogRatio); byLog < inByOut {
			inByOut = byLog
		}
	}

	moved := inAvail
	if cpuBytes < moved {
		moved = cpuBytes
	}
	if inByOut < moved {
		moved = inByOut
	}
	if moved < 0 {
		moved = 0
	}

	var inPkts int
	var readBytes int64
	if moved > 0 {
		for _, b := range sock.Read(moved) {
			inPkts += b.Packets
			readBytes += b.Bytes
			if f.Hist != nil {
				f.Hist.ObserveN(b.AvgSize(), b.Packets)
			}
		}
	}
	cycles := float64(readBytes)*f.Cfg.CyclesPerByte + float64(inPkts)*f.Cfg.CyclesPerPacket
	ctx.VCPU.SpendCycles(cycles)
	ctx.Bus.SpendWireBytes(readBytes, f.Cfg.MembusFactor)
	f.processed += readBytes
	f.dropped += int64(float64(readBytes) * f.Cfg.DropRatio)

	// Distribute output proportionally to free space.
	outBytes := int64(float64(readBytes) * keep)
	outPkts := f.writeOuts(outBytes)
	if f.Log != nil && f.Cfg.LogRatio > 0 {
		logBytes := int64(float64(readBytes) * f.Cfg.LogRatio)
		f.Log.Write(dataplane.Batch{Bytes: logBytes})
	}

	// Determine the binding constraint for the time split.
	inLimited := false
	outLimited := false
	switch {
	case cpuBytes <= moved: // compute (or bus) bound
	case inAvail <= moved:
		inLimited = !f.Cfg.BusyWait // spinners never report block time
	default:
		outLimited = true
	}
	instr := f.Account(TickIO{
		Dt:         dt,
		InBytes:    readBytes,
		OutBytes:   outBytes,
		ProcNS:     int64(cycles / f.Cfg.CPUHz * 1e9),
		InLimited:  inLimited,
		OutLimited: outLimited,
		InPackets:  inPkts,
		OutPackets: outPkts,
	})
	ctx.VCPU.SpendCycles(instr)
	if f.Cfg.BusyWait {
		// Spin away the slack — but a user-space spinner cannot starve the
		// guest kernel outright, so leave it a scheduling slice.
		ctx.VCPU.SpendCycles(0.9 * ctx.VCPU.Remaining())
	}

	for _, o := range f.Outs {
		o.Pump(dt)
	}
	if f.Log != nil {
		f.Log.Pump(dt)
	}
}

// writeOuts spreads outBytes across outputs by available space and returns
// the packet count written.
func (f *Forwarder) writeOuts(outBytes int64) int {
	if outBytes <= 0 || len(f.Outs) == 0 {
		return 0
	}
	frees := make([]int64, len(f.Outs))
	var total int64
	for i, o := range f.Outs {
		frees[i] = o.Free()
		total += frees[i]
	}
	pkts := 0
	remaining := outBytes
	for i, o := range f.Outs {
		var share int64
		if total > 0 {
			share = outBytes * frees[i] / total
		}
		if i == len(f.Outs)-1 || share > remaining {
			share = remaining
		}
		if share <= 0 {
			continue
		}
		accepted := o.Write(dataplane.Batch{Bytes: share})
		remaining -= accepted
		pkts += int(accepted / 1448)
	}
	return pkts
}

// Named middlebox constructors with representative costs. The absolute
// numbers are calibration (DESIGN.md §5); their ratios mirror published
// per-byte costs: NAT/firewall cheap, proxying moderate, IPS/RE expensive.

// NewProxy is a plain TCP proxy (Table 2's middlebox).
func NewProxy(id core.ElementID, capacityBps float64, out Output) *Forwarder {
	return NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 12, CyclesPerPacket: 4000}, out)
}

// NewLoadBalancer models Balance: cheap per-byte, splits across backends.
func NewLoadBalancer(id core.ElementID, capacityBps float64, outs ...Output) *Forwarder {
	return NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 10, CyclesPerPacket: 3000}, outs...)
}

// NewContentFilter models CherryProxy: inspects payloads and logs.
func NewContentFilter(id core.ElementID, capacityBps float64, logRatio float64, out Output) *Forwarder {
	f := NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 30, CyclesPerPacket: 5000, LogRatio: logRatio}, out)
	return f
}

// NewFirewall drops a fraction of traffic at low per-byte cost.
func NewFirewall(id core.ElementID, capacityBps, dropRatio float64, out Output) *Forwarder {
	return NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 6, CyclesPerPacket: 2500, DropRatio: dropRatio}, out)
}

// NewNAT rewrites headers: almost purely per-packet cost.
func NewNAT(id core.ElementID, capacityBps float64, out Output) *Forwarder {
	return NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 2, CyclesPerPacket: 3500}, out)
}

// NewIPS models Snort-style deep inspection: expensive per byte.
func NewIPS(id core.ElementID, capacityBps float64, out Output) *Forwarder {
	return NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 60, CyclesPerPacket: 6000}, out)
}

// NewCache absorbs a hit fraction and forwards misses.
func NewCache(id core.ElementID, capacityBps, hitRatio float64, out Output) *Forwarder {
	return NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 18, CyclesPerPacket: 4500, OutRatio: 1 - hitRatio}, out)
}

// NewRedundancyEliminator models SmartRE: heavy fingerprinting per byte,
// emitting a compressed stream.
func NewRedundancyEliminator(id core.ElementID, capacityBps, compressRatio float64, out Output) *Forwarder {
	return NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 45, CyclesPerPacket: 5500, MembusFactor: 8, OutRatio: compressRatio}, out)
}

// NewTranscoder models the §2.3 non-blocking video transcoder whose CPU
// utilization is always 100%.
func NewTranscoder(id core.ElementID, capacityBps float64, out Output) *Forwarder {
	return NewForwarder(id, capacityBps, ForwardConfig{CyclesPerByte: 80, CyclesPerPacket: 5000, BusyWait: true}, out)
}
