package middlebox

import (
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	"perfsight/internal/stream"
)

// appBusFactor is the memory-bus bytes per wire byte charged by the
// simple source/sink apps (one user/kernel copy plus touch), matching the
// dataplane calibration (dataplane.DefaultCosts().AppMembusFactor).
const appBusFactor = 4.0

// ConnSource is a closed-loop traffic generator: an HTTP-POST client or
// any application pushing data over a stream connection. RateBps == 0
// means "as fast as possible" (limited only by the connection's windows,
// i.e. by TCP — the Fig 12(b) fast client).
type ConnSource struct {
	Base
	Conn          *stream.Conn
	RateBps       float64
	CyclesPerByte float64
	CPUHz         float64

	generated int64
}

// NewConnSource builds a client app writing to conn.
func NewConnSource(id core.ElementID, capacityBps float64, conn *stream.Conn, rateBps float64) *ConnSource {
	return &ConnSource{
		Base:          NewBase(id, capacityBps),
		Conn:          conn,
		RateBps:       rateBps,
		CyclesPerByte: 1.5,
		CPUHz:         DefaultCPUHz,
	}
}

// GeneratedBytes returns bytes accepted into the connection so far.
func (s *ConnSource) GeneratedBytes() int64 { return s.generated }

// CPUDemand implements machine.App.
func (s *ConnSource) CPUDemand(dt time.Duration) float64 {
	rate := s.RateBps
	if rate == 0 {
		rate = s.CapacityBps
	}
	return rate / 8 * dt.Seconds() * s.CyclesPerByte * 2
}

// Step implements machine.App.
func (s *ConnSource) Step(ctx *machine.AppContext) {
	budget := int64(s.RateBps / 8 * ctx.Dt.Seconds())
	unlimited := s.RateBps == 0
	if byCPU := ctx.VCPU.BytesFor(s.CyclesPerByte); unlimited || byCPU < budget {
		if unlimited {
			budget = byCPU
		} else if byCPU < budget {
			budget = byCPU
		}
	}
	if byBus := ctx.Bus.WireBytesFor(appBusFactor); byBus < budget {
		budget = byBus
	}
	want := budget

	// Write and pump in a short loop: a busy sender refills its send
	// buffer as the stack drains it, so per-tick throughput is not capped
	// by one send-buffer's worth.
	var accepted int64
	for i := 0; i < 8 && budget > 0; i++ {
		got := s.Conn.Write(budget)
		if i == 0 {
			s.Conn.Pump(ctx.Dt) // grants this tick's pace credit
		} else {
			s.Conn.Pump(0) // re-pump within the tick
		}
		accepted += got
		budget -= got
		if got == 0 {
			break
		}
	}
	cycles := float64(accepted) * s.CyclesPerByte
	ctx.VCPU.SpendCycles(cycles)
	ctx.Bus.SpendWireBytes(accepted, appBusFactor)
	s.generated += accepted

	instr := s.Account(TickIO{
		Dt:         ctx.Dt,
		OutBytes:   accepted,
		ProcNS:     int64(cycles / s.CPUHz * 1e9),
		OutLimited: accepted < want,
		OutPackets: int(accepted / 1448),
	})
	ctx.VCPU.SpendCycles(instr)
	s.Conn.Pump(0)
}

// RawSource is an open-loop generator: a UDP flood or best-effort sender
// (the Fig 10 small-packet flood, the Fig 8 tx-flood VMs). It pushes
// fixed-size packets on a flow with no congestion response.
type RawSource struct {
	Base
	Out           RawOutput
	RateBps       float64
	PacketSize    int
	CyclesPerByte float64
	CyclesPerPkt  float64
	CPUHz         float64

	sentPackets int64
	sentBytes   int64
}

// NewRawSource builds a flood app sending on flow at rateBps with the
// given packet size. fb, if non-nil, receives delivery/drop feedback.
func NewRawSource(id core.ElementID, capacityBps float64, flow dataplane.FlowID, rateBps float64, packetSize int, fb dataplane.Feedback) *RawSource {
	if packetSize <= 0 {
		packetSize = 1448
	}
	return &RawSource{
		Base:          NewBase(id, capacityBps),
		Out:           RawOutput{Flow: flow, PacketSize: packetSize, FB: fb},
		RateBps:       rateBps,
		PacketSize:    packetSize,
		CyclesPerByte: 2,
		CyclesPerPkt:  1500,
		CPUHz:         DefaultCPUHz,
	}
}

// SentPackets returns packets pushed into the stack so far.
func (s *RawSource) SentPackets() int64 { return s.sentPackets }

// SentBytes returns bytes pushed into the stack so far.
func (s *RawSource) SentBytes() int64 { return s.sentBytes }

// CPUDemand implements machine.App.
func (s *RawSource) CPUDemand(dt time.Duration) float64 {
	bytes := s.RateBps / 8 * dt.Seconds()
	return bytes*s.CyclesPerByte + bytes/float64(s.PacketSize)*s.CyclesPerPkt
}

// Step implements machine.App.
func (s *RawSource) Step(ctx *machine.AppContext) {
	s.Out.Sock = ctx.VM.Socket
	want := int64(s.RateBps / 8 * ctx.Dt.Seconds())
	byCPU := int64(float64(ctx.VCPU.Remaining()) /
		(s.CyclesPerByte + s.CyclesPerPkt/float64(s.PacketSize)))
	if byCPU < want {
		want = byCPU
	}
	if byBus := ctx.Bus.WireBytesFor(appBusFactor); byBus < want {
		want = byBus
	}
	if want <= 0 {
		s.Account(TickIO{Dt: ctx.Dt, OutLimited: true})
		return
	}
	accepted := s.Out.Write(dataplane.Batch{Bytes: want})
	pkts := int(accepted / int64(s.PacketSize))
	cycles := float64(accepted)*s.CyclesPerByte + float64(pkts)*s.CyclesPerPkt
	ctx.VCPU.SpendCycles(cycles)
	ctx.Bus.SpendWireBytes(accepted, appBusFactor)
	s.sentBytes += accepted
	s.sentPackets += int64(pkts)

	instr := s.Account(TickIO{
		Dt:         ctx.Dt,
		OutBytes:   accepted,
		ProcNS:     int64(cycles / s.CPUHz * 1e9),
		OutLimited: accepted < want,
		OutPackets: pkts,
	})
	ctx.VCPU.SpendCycles(instr)
}

// Sink is a pure receiver measuring what arrives (the Fig 10 rate-limited
// receiver VM, tenant application VMs). It reads everything cheaply.
type Sink struct {
	Base
	CyclesPerByte float64
	CPUHz         float64

	received      int64
	receivedPkts  int64
	windowBytes   int64
	windowStart   time.Duration
	lastWindowBps float64
}

// NewSink builds a receiving app.
func NewSink(id core.ElementID, capacityBps float64) *Sink {
	return &Sink{Base: NewBase(id, capacityBps), CyclesPerByte: 1.5, CPUHz: DefaultCPUHz}
}

// ReceivedBytes returns cumulative bytes read.
func (s *Sink) ReceivedBytes() int64 { return s.received }

// ReceivedPackets returns cumulative packets read.
func (s *Sink) ReceivedPackets() int64 { return s.receivedPkts }

// CPUDemand implements machine.App.
func (s *Sink) CPUDemand(dt time.Duration) float64 {
	return s.CapacityBps / 8 * dt.Seconds() * s.CyclesPerByte * 2
}

// Step implements machine.App.
func (s *Sink) Step(ctx *machine.AppContext) {
	sock := ctx.VM.Socket
	inAvail := sock.RxAvailable()
	cpuBytes := ctx.VCPU.BytesFor(s.CyclesPerByte)
	if byBus := ctx.Bus.WireBytesFor(appBusFactor); byBus < cpuBytes {
		cpuBytes = byBus
	}
	moved := inAvail
	if cpuBytes < moved {
		moved = cpuBytes
	}
	var pkts int
	var readBytes int64
	if moved > 0 {
		for _, b := range sock.Read(moved) {
			pkts += b.Packets
			readBytes += b.Bytes
		}
	}
	cycles := float64(readBytes) * s.CyclesPerByte
	ctx.VCPU.SpendCycles(cycles)
	ctx.Bus.SpendWireBytes(readBytes, appBusFactor)
	s.received += readBytes
	s.receivedPkts += int64(pkts)
	s.windowBytes += readBytes

	instr := s.Account(TickIO{
		Dt:        ctx.Dt,
		InBytes:   readBytes,
		ProcNS:    int64(cycles / s.CPUHz * 1e9),
		InLimited: moved >= inAvail,
		InPackets: pkts,
	})
	ctx.VCPU.SpendCycles(instr)
}

// WindowThroughputBps returns the receive rate since the last call and
// resets the window (experiment plumbing).
func (s *Sink) WindowThroughputBps(now time.Duration) float64 {
	elapsed := now - s.windowStart
	if elapsed <= 0 {
		return s.lastWindowBps
	}
	s.lastWindowBps = float64(s.windowBytes) * 8 / elapsed.Seconds()
	s.windowBytes = 0
	s.windowStart = now
	return s.lastWindowBps
}
