package middlebox_test

import (
	"testing"
	"time"

	"perfsight/internal/core"
	. "perfsight/internal/middlebox"
)

// TestIDSAmpleCPUForwardsEverything: with a generous vCPU grant the capture
// ring never overflows and every byte is inspected and forwarded.
func TestIDSAmpleCPUForwardsEverything(t *testing.T) {
	h := newHarness(t)
	out := &fastOutput{}
	ids := NewIDS("m0/vm0/app", 1e9, out)
	ids.SetTimeCountersEnabled(false)
	h.deliver(20000)
	h.step(ids, time.Millisecond, 20e6)
	if ids.DroppedPackets() != 0 {
		t.Fatalf("ample CPU dropped %d packets", ids.DroppedPackets())
	}
	if ids.InspectedBytes() != 20000 || out.bytes != 20000 {
		t.Fatalf("inspected %d forwarded %d; want 20000/20000", ids.InspectedBytes(), out.bytes)
	}
}

// TestIDSDropsUnderCPUContention is the kind's defining behavior: the tap
// keeps capturing while inspection is starved of cycles, so the ring
// overflows and the overflow shows up in the standard drop counters that
// Algorithm 1 ranks.
func TestIDSDropsUnderCPUContention(t *testing.T) {
	h := newHarness(t)
	ids := NewIDSWithConfig("m0/vm0/app", 1e9, IDSConfig{BufBytes: 20000}, &fastOutput{})
	ids.SetTimeCountersEnabled(false)
	for tick := 0; tick < 5; tick++ {
		h.deliver(50000)
		h.step(ids, time.Duration(tick)*time.Millisecond, 10_000) // ~180 B of inspection
	}
	if ids.DroppedPackets() == 0 {
		t.Fatal("starved IDS dropped nothing; ring overflow not modeled")
	}
	rec := ids.Snapshot(0)
	if got := rec.GetOr(core.AttrDropPackets, 0); got != float64(ids.DroppedPackets()) {
		t.Fatalf("snapshot drop_packets = %v; want %d", got, ids.DroppedPackets())
	}
	if got := rec.GetOr(core.AttrDropBytes, 0); got <= 0 {
		t.Fatalf("snapshot drop_bytes = %v; want > 0", got)
	}
	if rec.GetOr(core.AttrKind, 0) != float64(core.KindMiddlebox) {
		t.Fatal("IDS record must carry the middlebox kind tag")
	}
}

// TestIDSAlerts: alerts accumulate as a fraction of inspected packets and
// export through the registered extension attribute.
func TestIDSAlerts(t *testing.T) {
	h := newHarness(t)
	ids := NewIDSWithConfig("m0/vm0/app", 1e9, IDSConfig{AlertRatio: 0.1}, &fastOutput{})
	ids.SetTimeCountersEnabled(false)
	h.deliver(144800) // 100 packets
	h.step(ids, time.Millisecond, 20e6)
	if got := ids.Alerts(); got < 8 || got > 12 {
		t.Fatalf("alerts = %d; want ~10 (0.1 of 100 packets)", got)
	}
	rec := ids.Snapshot(0)
	if got := rec.GetOr(core.AttrIDFor("ids_alerts"), 0); got != float64(ids.Alerts()) {
		t.Fatalf("ids_alerts attr = %v; want %d", got, ids.Alerts())
	}
}

// TestSmartCacheWarmsUp: the hit ratio ramps with observed bytes, so the
// output stream thins from a 1:1 copy toward 1−MaxHitRatio of the input.
func TestSmartCacheWarmsUp(t *testing.T) {
	h := newHarness(t)
	out := &fastOutput{}
	sc := NewSmartCacheWithConfig("m0/vm0/app", 1e9, SmartCacheConfig{
		MaxHitRatio: 0.5,
		WarmupBytes: 50000,
	}, out)
	sc.SetTimeCountersEnabled(false)

	if sc.HitRatio() != 0 {
		t.Fatalf("cold cache hit ratio = %v; want 0", sc.HitRatio())
	}
	h.deliver(25000)
	h.step(sc, 0, 5e6)
	coldMiss := sc.MissBytes()
	if coldMiss < 24000 { // cold: essentially everything forwarded
		t.Fatalf("cold cache forwarded only %d of 25000", coldMiss)
	}

	// Warm it past WarmupBytes, then measure the steady-state ratio.
	for tick := 1; tick <= 4; tick++ {
		h.deliver(25000)
		h.step(sc, time.Duration(tick)*time.Millisecond, 5e6)
	}
	if sc.HitRatio() != 0.5 {
		t.Fatalf("warm hit ratio = %v; want 0.5", sc.HitRatio())
	}
	before := sc.MissBytes()
	h.deliver(20000)
	h.step(sc, 5*time.Millisecond, 5e6)
	warmMiss := sc.MissBytes() - before
	if warmMiss < 9000 || warmMiss > 11000 {
		t.Fatalf("warm cache forwarded %d of 20000; want ~10000", warmMiss)
	}
	if got := sc.HitBytes() + sc.MissBytes(); out.bytes != sc.MissBytes() || got == 0 {
		t.Fatalf("accounting mismatch: out=%d miss=%d hit=%d", out.bytes, sc.MissBytes(), sc.HitBytes())
	}
}

// TestSmartCacheSnapshotAttrs checks the extension attributes round-trip
// through the schema registry.
func TestSmartCacheSnapshotAttrs(t *testing.T) {
	h := newHarness(t)
	sc := NewSmartCache("m0/vm0/app", 1e9, &fastOutput{})
	sc.SetTimeCountersEnabled(false)
	h.deliver(10000)
	h.step(sc, 0, 5e6)
	rec := sc.Snapshot(0)
	if got := rec.GetOr(core.AttrIDFor("cache_miss_bytes"), -1); got != float64(sc.MissBytes()) {
		t.Fatalf("cache_miss_bytes = %v; want %d", got, sc.MissBytes())
	}
	if got := rec.GetOr(core.AttrIDFor("cache_hit_ratio"), -1); got != sc.HitRatio() {
		t.Fatalf("cache_hit_ratio = %v; want %v", got, sc.HitRatio())
	}
}

// TestMboxKindRoundTrip: every kind's display name resolves back to the
// kind, and the app factory returns the dedicated models for the new kinds.
func TestMboxKindRoundTrip(t *testing.T) {
	kinds := []MboxKind{KindProxy, KindLB, KindCache, KindRE, KindIPS,
		KindFirewall, KindNAT, KindTranscoder, KindIDS, KindSmartCache}
	for _, k := range kinds {
		got, ok := MboxKindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("round trip failed for %v: got %v ok=%v", k, got, ok)
		}
	}
	if _, ok := MboxKindFromString("bogus"); ok {
		t.Fatal("bogus kind resolved")
	}
	if _, ok := NewAppOfKind(KindIDS, "m/v/a", 1e9, &fastOutput{}).(*IDS); !ok {
		t.Fatal("NewAppOfKind(KindIDS) is not an *IDS")
	}
	if _, ok := NewAppOfKind(KindSmartCache, "m/v/a", 1e9, &fastOutput{}).(*SmartCache); !ok {
		t.Fatal("NewAppOfKind(KindSmartCache) is not a *SmartCache")
	}
	if _, ok := NewAppOfKind(KindProxy, "m/v/a", 1e9, &fastOutput{}).(*Forwarder); !ok {
		t.Fatal("NewAppOfKind(KindProxy) is not a *Forwarder")
	}
}
