// Package middlebox implements the middlebox software the paper deploys in
// VMs — load balancer (Balance), content-filter proxy (CherryProxy), NFS
// log server, HTTP server/client, firewall, NAT, IPS, cache, redundancy
// eliminator, transcoder — together with the open-loop traffic sources and
// sinks used by the contention experiments.
//
// Every middlebox embeds Base, which implements the §5.2 decomposition of
// a middlebox's time:
//
//	t_total = t_input + t_process + t_output
//	t_input/output = t_block + t_memcpy
//
// Each tick the app moves what its input, its CPU grant and its output
// allow; the tick's wall time is then apportioned: memcpy time at Cmem for
// the bytes moved, processing time for the cycles spent, and the leftover
// charged as block time on whichever side was the binding constraint.
// These are precisely the in/out bytes and times Algorithm 2 consumes.
package middlebox

import (
	"time"

	"perfsight/internal/core"
	"perfsight/internal/stats"
)

// DefaultCmem is the user/kernel memcpy bandwidth (bytes/s). It is two to
// three orders of magnitude above typical vNIC rates, which is what makes
// the paper's b/t < C blocked test discriminating.
const DefaultCmem = 12.8e9

// DefaultTimerCycles is the CPU cost of one time-counter update (two clock
// reads + accumulate), ~0.29 µs at 2.5 GHz (§7.4).
const DefaultTimerCycles = 725

// IOChunk is the bytes moved per instrumented read/write call: time
// counters bracket syscalls, not packets, so the Table 2 overhead scales
// with call count.
const IOChunk = 16384

// Base provides identity, instrumentation and time accounting for apps.
type Base struct {
	id          core.ElementID
	IO          *stats.IOStats
	Hist        *stats.SizeHistogram // optional packet-size tracking
	CapacityBps float64              // the VM's vNIC capacity C
	Cmem        float64
	// TimerCycles is the per-call instrumentation cost charged to the vCPU
	// when time counters are enabled (Table 2's overhead source).
	TimerCycles float64
}

// NewBase builds instrumentation for a middlebox with vNIC capacity C.
func NewBase(id core.ElementID, capacityBps float64) Base {
	return Base{
		id:          id,
		IO:          stats.NewIOStats(),
		CapacityBps: capacityBps,
		Cmem:        DefaultCmem,
		TimerCycles: DefaultTimerCycles,
	}
}

// ID implements machine.App.
func (b *Base) ID() core.ElementID { return b.id }

// SetTimeCountersEnabled toggles the I/O time instrumentation.
func (b *Base) SetTimeCountersEnabled(on bool) { b.IO.SetTimeCountersEnabled(on) }

// EnableSizeHistogram turns on the optional packet-size statistic.
func (b *Base) EnableSizeHistogram() {
	if b.Hist == nil {
		b.Hist = stats.NewSizeHistogram()
	}
}

// Snapshot implements machine.App: the middlebox's Record carries the
// Algorithm 2 inputs (in/out bytes and times, capacity) plus the type tag
// the controller's GetAttr(tid, mb, "type") filter matches on.
func (b *Base) Snapshot(ts int64) core.Record {
	rec := core.Record{Timestamp: ts, Element: b.id}
	rec.Attrs = append(rec.Attrs,
		core.Attr{ID: core.AttrKind, Value: float64(core.KindMiddlebox)},
		core.Attr{ID: core.AttrType, Value: 1},
		core.Attr{ID: core.AttrCapacityBps, Value: b.CapacityBps},
	)
	rec.Attrs = append(rec.Attrs, b.IO.Attrs()...)
	if b.Hist != nil {
		rec.Attrs = append(rec.Attrs, b.Hist.Attrs()...)
	}
	return rec
}

// TickIO summarizes one tick of I/O for time accounting.
type TickIO struct {
	Dt       time.Duration
	InBytes  int64 // bytes the input method returned
	OutBytes int64 // bytes the output method accepted
	// ProcCycles is the compute spent, converted to time by the caller.
	ProcNS int64
	// InLimited: the tick ended starved for input (ReadBlocked direction).
	InLimited bool
	// OutLimited: the tick ended stalled on output space (WriteBlocked).
	OutLimited bool
	// InPackets/OutPackets drive the per-packet instrumentation charge.
	InPackets  int
	OutPackets int
}

// Account applies the §5.2 time split to the IO counters and returns the
// instrumentation cycles to charge the vCPU (0 when timers are disabled).
func (b *Base) Account(t TickIO) (instrumentationCycles float64) {
	memcpyIn := time.Duration(float64(t.InBytes) / b.Cmem * 1e9)
	memcpyOut := time.Duration(float64(t.OutBytes) / b.Cmem * 1e9)
	proc := time.Duration(t.ProcNS)
	leftover := t.Dt - memcpyIn - memcpyOut - proc
	if leftover < 0 {
		leftover = 0
	}
	inTime := memcpyIn
	outTime := memcpyOut
	switch {
	case t.InLimited:
		inTime += leftover
	case t.OutLimited:
		outTime += leftover
	default:
		// CPU-bound (or fully busy): leftover is processing time and does
		// not inflate the I/O counters.
	}
	b.IO.InBytes.Add(uint64(t.InBytes))
	b.IO.OutBytes.Add(uint64(t.OutBytes))
	b.IO.InTime.Observe(inTime)
	b.IO.OutTime.Observe(outTime)

	if b.IO.InTime.Enabled() {
		// Two timestamp reads per instrumented I/O call; calls move
		// IOChunk bytes each.
		calls := (t.InBytes+IOChunk-1)/IOChunk + (t.OutBytes+IOChunk-1)/IOChunk
		return float64(calls) * 2 * b.TimerCycles
	}
	return 0
}
