package middlebox

import (
	"time"

	"perfsight/internal/dataplane"
	"perfsight/internal/stream"
)

// Output abstracts where a middlebox's output method writes: a TCP-like
// stream connection toward the next hop, or raw (UDP-like) packets pushed
// straight into the guest socket send buffer.
type Output interface {
	// Free returns the bytes the output can accept without blocking.
	Free() int64
	// Write submits up to b.Bytes; it returns the bytes accepted.
	Write(b dataplane.Batch) int64
	// Pump advances the output once per tick (stream pacing; no-op for raw).
	Pump(dt time.Duration)
}

// ConnOutput sends over a stream connection.
type ConnOutput struct {
	C *stream.Conn
}

// Free implements Output.
func (o ConnOutput) Free() int64 { return o.C.SendBufFree() }

// Write implements Output: bytes enter the conn's send buffer; the conn
// packetizes them itself when pumping.
func (o ConnOutput) Write(b dataplane.Batch) int64 { return o.C.Write(b.Bytes) }

// Pump implements Output.
func (o ConnOutput) Pump(dt time.Duration) { o.C.Pump(dt) }

// RawOutput sends open-loop packets of fixed size on a flow. The socket it
// writes to is installed by the hosting VM at placement time.
type RawOutput struct {
	Flow       dataplane.FlowID
	PacketSize int
	FB         dataplane.Feedback // optional delivery/drop accounting
	Sock       SocketWriter
}

// SocketWriter is the slice of the guest socket a raw output needs.
type SocketWriter interface {
	TxFree() int64
	Write(b dataplane.Batch) int64
}

// Free implements Output.
func (o RawOutput) Free() int64 { return o.Sock.TxFree() }

// Write implements Output.
func (o RawOutput) Write(b dataplane.Batch) int64 {
	size := o.PacketSize
	if size <= 0 {
		size = 1448
	}
	pkts := int((b.Bytes + int64(size) - 1) / int64(size))
	if pkts < 1 {
		pkts = 1
	}
	return o.Sock.Write(dataplane.Batch{
		Flow:    o.Flow,
		Packets: pkts,
		Bytes:   b.Bytes,
		FB:      o.FB,
		Egress:  true,
	})
}

// Pump implements Output.
func (o RawOutput) Pump(time.Duration) {}

// NullOutput accepts and discards everything (a perfect downstream).
type NullOutput struct{}

// Free implements Output.
func (NullOutput) Free() int64 { return int64(^uint64(0) >> 1) }

// Write implements Output.
func (NullOutput) Write(b dataplane.Batch) int64 { return b.Bytes }

// Pump implements Output.
func (NullOutput) Pump(time.Duration) {}
