package middlebox

import (
	"sync"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
)

// SmartCacheConfig parameterizes the SmartRE-style caching element.
type SmartCacheConfig struct {
	// CyclesPerByte is the chunk fingerprinting + index lookup cost.
	CyclesPerByte float64
	// CyclesPerPacket is the per-packet framing overhead.
	CyclesPerPacket float64
	// MembusFactor is memory-bus bytes per processed byte (the chunk store
	// is a large, cache-hostile hash table).
	MembusFactor float64
	// MaxHitRatio is the steady-state fraction of input bytes served from
	// the cache (suppressed from the output stream).
	MaxHitRatio float64
	// WarmupBytes is how much traffic the cache must see before the hit
	// ratio ramps to MaxHitRatio; a cold cache forwards everything.
	WarmupBytes int64
	// CPUHz converts cycles to time for accounting (DefaultCPUHz if 0).
	CPUHz float64
}

func (c *SmartCacheConfig) fill() {
	if c.CyclesPerByte == 0 {
		c.CyclesPerByte = 20
	}
	if c.CyclesPerPacket == 0 {
		c.CyclesPerPacket = 4500
	}
	if c.MembusFactor == 0 {
		c.MembusFactor = 6
	}
	if c.MaxHitRatio == 0 {
		c.MaxHitRatio = 0.6
	}
	if c.WarmupBytes == 0 {
		c.WarmupBytes = 8 << 20
	}
	if c.CPUHz == 0 {
		c.CPUHz = DefaultCPUHz
	}
}

// SmartCache models a SmartRE-style redundancy-elimination cache: every
// input byte is fingerprinted, hits are suppressed, and only misses reach
// the output. Unlike the static-ratio NewCache forwarder, its output rate
// is a FUNCTION of the hit ratio, which itself warms with observed
// traffic — so the element's in:out byte ratio drifts over a run, the
// signature Algorithm 2 must not misread as a developing bottleneck.
type SmartCache struct {
	Base
	Cfg SmartCacheConfig
	Out Output

	seen      int64 // cumulative fingerprinted bytes (drives warmup)
	hitBytes  int64
	missBytes int64
}

// NewSmartCache builds a SmartRE-style cache with representative costs.
func NewSmartCache(id core.ElementID, capacityBps float64, out Output) *SmartCache {
	return NewSmartCacheWithConfig(id, capacityBps, SmartCacheConfig{}, out)
}

// NewSmartCacheWithConfig builds a cache with explicit costs.
func NewSmartCacheWithConfig(id core.ElementID, capacityBps float64, cfg SmartCacheConfig, out Output) *SmartCache {
	cfg.fill()
	return &SmartCache{Base: NewBase(id, capacityBps), Cfg: cfg, Out: out}
}

var _ machine.App = (*SmartCache)(nil)

// HitRatio returns the current hit ratio: MaxHitRatio scaled by how far
// the warmup has progressed.
func (s *SmartCache) HitRatio() float64 {
	warm := float64(s.seen) / float64(s.Cfg.WarmupBytes)
	if warm > 1 {
		warm = 1
	}
	return s.Cfg.MaxHitRatio * warm
}

// HitBytes returns cumulative bytes served from the cache.
func (s *SmartCache) HitBytes() int64 { return s.hitBytes }

// MissBytes returns cumulative bytes forwarded to the output.
func (s *SmartCache) MissBytes() int64 { return s.missBytes }

// CPUDemand implements machine.App.
func (s *SmartCache) CPUDemand(dt time.Duration) float64 {
	return s.CapacityBps / 8 * dt.Seconds() * s.Cfg.CyclesPerByte
}

// Step implements machine.App.
func (s *SmartCache) Step(ctx *machine.AppContext) {
	sock := ctx.VM.Socket
	dt := ctx.Dt

	// The ratio for this tick is fixed at tick start — warming applies
	// from the next tick, keeping the trajectory deterministic.
	hr := s.HitRatio()
	keep := 1 - hr

	inAvail := sock.RxAvailable()
	cpuBytes := ctx.VCPU.BytesFor(s.Cfg.CyclesPerByte)
	if busBytes := ctx.Bus.WireBytesFor(s.Cfg.MembusFactor); busBytes < cpuBytes {
		cpuBytes = busBytes
	}
	// Downstream space maps back to admissible input through the CURRENT
	// keep ratio: a warm cache can absorb far more input per output byte.
	inByOut := int64(^uint64(0) >> 1)
	if s.Out != nil && keep > 0 {
		inByOut = int64(float64(s.Out.Free()) / keep)
	}

	moved := inAvail
	if cpuBytes < moved {
		moved = cpuBytes
	}
	if inByOut < moved {
		moved = inByOut
	}
	if moved < 0 {
		moved = 0
	}

	var inPkts int
	var readBytes int64
	if moved > 0 {
		for _, b := range sock.Read(moved) {
			inPkts += b.Packets
			readBytes += b.Bytes
			if s.Hist != nil {
				s.Hist.ObserveN(b.AvgSize(), b.Packets)
			}
		}
	}
	cycles := float64(readBytes)*s.Cfg.CyclesPerByte + float64(inPkts)*s.Cfg.CyclesPerPacket
	ctx.VCPU.SpendCycles(cycles)
	ctx.Bus.SpendWireBytes(readBytes, s.Cfg.MembusFactor)

	s.seen += readBytes
	hit := int64(hr * float64(readBytes))
	miss := readBytes - hit
	s.hitBytes += hit
	s.missBytes += miss

	var outPkts int
	if s.Out != nil && miss > 0 {
		accepted := s.Out.Write(dataplane.Batch{Bytes: miss})
		outPkts = int(accepted / 1448)
	}

	inLimited := false
	outLimited := false
	switch {
	case cpuBytes <= moved: // fingerprinting is compute (or bus) bound
	case inAvail <= moved:
		inLimited = true
	default:
		outLimited = true
	}
	instr := s.Account(TickIO{
		Dt:         dt,
		InBytes:    readBytes,
		OutBytes:   miss,
		ProcNS:     int64(cycles / s.Cfg.CPUHz * 1e9),
		InLimited:  inLimited,
		OutLimited: outLimited,
		InPackets:  inPkts,
		OutPackets: outPkts,
	})
	ctx.VCPU.SpendCycles(instr)

	if s.Out != nil {
		s.Out.Pump(dt)
	}
}

// Snapshot implements machine.App: the Base record plus the cache's
// extension attributes (hit/miss bytes and the live hit ratio).
func (s *SmartCache) Snapshot(ts int64) core.Record {
	rec := s.Base.Snapshot(ts)
	hitID, missID, ratioID := cacheAttrs()
	rec.Attrs = append(rec.Attrs,
		core.Attr{ID: hitID, Value: float64(s.hitBytes)},
		core.Attr{ID: missID, Value: float64(s.missBytes)},
		core.Attr{ID: ratioID, Value: s.HitRatio()},
	)
	return rec
}

var (
	cacheAttrsOnce sync.Once
	attrCacheHit   core.AttrID
	attrCacheMiss  core.AttrID
	attrCacheRatio core.AttrID
)

// cacheAttrs lazily registers the cache extension attributes.
func cacheAttrs() (hit, miss, ratio core.AttrID) {
	cacheAttrsOnce.Do(func() {
		attrCacheHit, _ = core.RegisterAttr("cache_hit_bytes", core.SemCounter, "bytes")
		attrCacheMiss, _ = core.RegisterAttr("cache_miss_bytes", core.SemCounter, "bytes")
		attrCacheRatio, _ = core.RegisterAttr("cache_hit_ratio", core.SemGauge, "ratio")
	})
	return attrCacheHit, attrCacheMiss, attrCacheRatio
}
