package middlebox_test

import (
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	. "perfsight/internal/middlebox"
)

// fastOutput accepts everything instantly.
type fastOutput struct{ bytes int64 }

func (o *fastOutput) Free() int64                   { return 1 << 40 }
func (o *fastOutput) Write(b dataplane.Batch) int64 { o.bytes += b.Bytes; return b.Bytes }
func (o *fastOutput) Pump(time.Duration)            {}

// blockedOutput accepts nothing.
type blockedOutput struct{}

func (blockedOutput) Free() int64                   { return 0 }
func (blockedOutput) Write(b dataplane.Batch) int64 { return 0 }
func (blockedOutput) Pump(time.Duration)            {}

// appHarness drives a single app against a real VM stack column without a
// full machine: deliver bytes into the socket, step the app, observe.
type appHarness struct {
	vm  *dataplane.VMStack
	ctx *machine.AppContext
}

func newHarness(t *testing.T) *appHarness {
	t.Helper()
	stack := dataplane.NewStack(dataplane.DefaultStackConfig("m0", 2))
	vm := stack.AddVM("vm0", 1e9)
	return &appHarness{vm: vm}
}

// step runs one 1 ms tick of the app with the given vCPU cycles.
func (h *appHarness) step(app machine.App, now time.Duration, cycles float64) {
	h.ctx = &machine.AppContext{
		Now:  now,
		Dt:   time.Millisecond,
		VM:   h.vm,
		VCPU: dataplane.NewCycleBudget(cycles),
		Bus:  dataplane.NewMembusBudget(1 << 30),
	}
	app.Step(h.ctx)
}

func (h *appHarness) deliver(bytes int64) {
	pkts := int(bytes / 1448)
	if pkts == 0 {
		pkts = 1
	}
	h.vm.Socket.DeliverRx(dataplane.Batch{Flow: "in", Packets: pkts, Bytes: bytes})
}

func TestForwarderMovesInputToOutput(t *testing.T) {
	h := newHarness(t)
	out := &fastOutput{}
	f := NewProxy("m0/vm0/app", 1e9, out)
	h.deliver(10000)
	h.step(f, time.Millisecond, 2.5e6)
	if out.bytes != 10000 {
		t.Fatalf("forwarded %d; want 10000", out.bytes)
	}
	if f.ProcessedBytes() != 10000 {
		t.Fatalf("processed counter %d", f.ProcessedBytes())
	}
}

func TestForwarderCPUBoundIsNeitherBlocked(t *testing.T) {
	h := newHarness(t)
	f := NewForwarder("m0/vm0/app", 1e9, ForwardConfig{CyclesPerByte: 100}, &fastOutput{})
	h.deliver(1 << 20) // far more than 25k cycles can move
	h.step(f, time.Millisecond, 25_000)
	rec := f.Snapshot(0)
	moved := rec.GetOr(core.AttrInBytes, 0)
	if moved == 0 || moved > 1448 { // one-packet fluid granularity
		t.Fatalf("cpu-bound moved %v; want <= one packet", moved)
	}
	// CPU-bound: in-time is memcpy-scale, so b/t_in is enormous (not
	// ReadBlocked) and out-time likewise.
	inNS := rec.GetOr(core.AttrInTimeNS, 0)
	if inNS > 1e5 {
		t.Fatalf("cpu-bound charged %v ns of input time", inNS)
	}
}

func TestForwarderInputStarvedIsReadBlockedShape(t *testing.T) {
	h := newHarness(t)
	f := NewProxy("m0/vm0/app", 1e9, &fastOutput{})
	h.deliver(100) // a trickle
	h.step(f, time.Millisecond, 2.5e6)
	rec := f.Snapshot(0)
	inNS := rec.GetOr(core.AttrInTimeNS, 0)
	// Nearly the whole tick must be charged as input (block) time.
	if inNS < 0.9e6 {
		t.Fatalf("starved forwarder charged only %v ns input time", inNS)
	}
	inBps := rec.GetOr(core.AttrInBytes, 0) * 8 / (inNS / 1e9)
	if inBps >= 1e9 {
		t.Fatalf("b/t_in %v should be below capacity when starved", inBps)
	}
}

func TestForwarderOutputBlockedIsWriteBlockedShape(t *testing.T) {
	h := newHarness(t)
	f := NewProxy("m0/vm0/app", 1e9, blockedOutput{})
	h.deliver(1 << 20)
	h.step(f, time.Millisecond, 2.5e6)
	rec := f.Snapshot(0)
	outNS := rec.GetOr(core.AttrOutTimeNS, 0)
	if outNS < 0.9e6 {
		t.Fatalf("blocked forwarder charged only %v ns output time", outNS)
	}
	if got := rec.GetOr(core.AttrInBytes, 0); got != 0 {
		t.Fatalf("forwarder read %v bytes it could not write", got)
	}
}

func TestFirewallDropsPolicyFraction(t *testing.T) {
	h := newHarness(t)
	out := &fastOutput{}
	f := NewFirewall("m0/vm0/app", 1e9, 0.25, out)
	h.deliver(100000)
	h.step(f, time.Millisecond, 2.5e7)
	if out.bytes >= 100000 || out.bytes < 70000 {
		t.Fatalf("firewall forwarded %d of 100000 with 25%% drop policy", out.bytes)
	}
}

func TestREOutputCompression(t *testing.T) {
	h := newHarness(t)
	out := &fastOutput{}
	f := NewRedundancyEliminator("m0/vm0/app", 1e9, 0.5, out)
	h.deliver(100000)
	for i := 0; i < 20; i++ {
		h.step(f, time.Duration(i+1)*time.Millisecond, 2.5e7)
	}
	if out.bytes < 45000 || out.bytes > 55000 {
		t.Fatalf("RE emitted %d of 100000 at ratio 0.5", out.bytes)
	}
}

func TestContentFilterLogsToSecondaryOutput(t *testing.T) {
	h := newHarness(t)
	out := &fastOutput{}
	logOut := &fastOutput{}
	f := NewContentFilter("m0/vm0/app", 1e9, 0.1, out)
	f.SetLogOutput(logOut)
	h.deliver(100000)
	for i := 0; i < 10; i++ {
		h.step(f, time.Duration(i+1)*time.Millisecond, 2.5e7)
	}
	if out.bytes != 100000 {
		t.Fatalf("primary forwarded %d", out.bytes)
	}
	if logOut.bytes < 9000 || logOut.bytes > 11000 {
		t.Fatalf("log output %d; want ~10%%", logOut.bytes)
	}
}

func TestContentFilterStallsWhenLogBlocked(t *testing.T) {
	h := newHarness(t)
	out := &fastOutput{}
	f := NewContentFilter("m0/vm0/app", 1e9, 0.1, out)
	f.SetLogOutput(blockedOutput{})
	h.deliver(100000)
	h.step(f, time.Millisecond, 2.5e7)
	if out.bytes != 0 {
		t.Fatalf("CF forwarded %d despite a blocked log", out.bytes)
	}
	rec := f.Snapshot(0)
	if rec.GetOr(core.AttrOutTimeNS, 0) < 0.9e6 {
		t.Fatal("blocked log should charge output time (WriteBlocked)")
	}
}

func TestServerConsumesAtCPURate(t *testing.T) {
	h := newHarness(t)
	s := NewServer("m0/vm0/app", 1e9, 100)
	h.deliver(1 << 20)
	h.step(s, time.Millisecond, 100_000) // 1000 bytes worth of cycles
	if got := s.ConsumedBytes(); got == 0 || got > 1448 {
		t.Fatalf("server consumed %d; want <= one packet", got)
	}
	// CPU-bound server: neither blocked (Fig 12 servers stay candidates).
	rec := s.Snapshot(0)
	if rec.GetOr(core.AttrInTimeNS, 0) > 1e5 {
		t.Fatal("cpu-bound server charged block time")
	}
	if _, ok := rec.Get(core.AttrOutBytes); !ok {
		t.Fatal("output counters should exist (at zero)")
	}
	if rec.GetOr(core.AttrOutBytes, -1) != 0 {
		t.Fatal("server has no network output")
	}
}

func TestServerDiskBound(t *testing.T) {
	h := newHarness(t)
	s := NewNFSServer("m0/vm0/app", 1e9, 1e6) // 1 MB/s disk
	h.deliver(1 << 20)
	h.step(s, time.Millisecond, 2.5e7)
	if got := s.ConsumedBytes(); got > 1448 {
		t.Fatalf("disk-bound server consumed %d per ms; want <= one packet", got)
	}
}

func TestServerLeakDegradesOverTime(t *testing.T) {
	h := newHarness(t)
	s := NewServer("m0/vm0/app", 1e9, 10)
	s.InjectLeak(0, 10)
	h.deliver(1 << 22)
	h.step(s, 0, 2.5e6)
	early := s.ConsumedBytes()
	h.deliver(1 << 22)
	h.step(s, 10*time.Second, 2.5e6)
	late := s.ConsumedBytes() - early
	if float64(late) > 0.05*float64(early) {
		t.Fatalf("leak barely degraded: %d then %d", early, late)
	}
	s.HealLeak()
	h.deliver(1 << 22)
	before := s.ConsumedBytes()
	h.step(s, 20*time.Second, 2.5e6)
	if healed := s.ConsumedBytes() - before; healed < early/2 {
		t.Fatalf("healed server still slow: %d vs %d", healed, early)
	}
}

func TestSinkReadsEverything(t *testing.T) {
	h := newHarness(t)
	s := NewSink("m0/vm0/app", 1e9)
	h.deliver(50000)
	h.step(s, time.Millisecond, 2.5e6)
	if s.ReceivedBytes() != 50000 {
		t.Fatalf("sink read %d", s.ReceivedBytes())
	}
	if s.ReceivedPackets() == 0 {
		t.Fatal("packet accounting missing")
	}
	if bps := s.WindowThroughputBps(time.Second); bps <= 0 {
		t.Fatalf("window throughput %v", bps)
	}
}

func TestRawSourceRateAndAccounting(t *testing.T) {
	h := newHarness(t)
	src := NewRawSource("m0/vm0/app", 1e9, "f", 80e6, 1448, nil)
	for i := 0; i < 100; i++ {
		h.step(src, time.Duration(i+1)*time.Millisecond, 2.5e6)
		h.vm.Socket.DequeueTx(-1, 1<<30) // drain so the socket never binds
	}
	bps := float64(src.SentBytes()) * 8 / 0.1
	if bps < 70e6 || bps > 90e6 {
		t.Fatalf("raw source %.0f bps; want ~80e6", bps)
	}
	if src.SentPackets() == 0 {
		t.Fatal("packets not counted")
	}
}

func TestInstrumentationTogglesChargeCycles(t *testing.T) {
	run := func(timers bool) float64 {
		h := newHarness(t)
		f := NewProxy("m0/vm0/app", 1e9, &fastOutput{})
		f.SetTimeCountersEnabled(timers)
		h.deliver(1 << 20)
		budget := dataplane.NewCycleBudget(2.5e6)
		ctx := &machine.AppContext{Now: 0, Dt: time.Millisecond, VM: h.vm, VCPU: budget, Bus: dataplane.NewMembusBudget(1 << 30)}
		f.Step(ctx)
		return budget.Spent()
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Fatalf("instrumentation free: with=%v without=%v", with, without)
	}
}

func TestTranscoderBusyWaitNeverBlocks(t *testing.T) {
	h := newHarness(t)
	f := NewTranscoder("m0/vm0/app", 1e9, &fastOutput{})
	if f.CPUDemand(time.Millisecond) < 2.4e6 {
		t.Fatal("transcoder must demand the whole core")
	}
	budget := dataplane.NewCycleBudget(2.5e6)
	ctx := &machine.AppContext{Now: 0, Dt: time.Millisecond, VM: h.vm, VCPU: budget, Bus: dataplane.NewMembusBudget(1 << 30)}
	f.Step(ctx) // no input at all
	// The spinner burns ~90% of the slice (it cannot starve the guest
	// kernel outright).
	if budget.Remaining() > 0.15*2.5e6 {
		t.Fatalf("spinner left %.0f cycles on the table", budget.Remaining())
	}
	rec := f.Snapshot(0)
	if rec.GetOr(core.AttrInTimeNS, 0) > 1e5 {
		t.Fatal("non-blocking transcoder charged block time while starved")
	}
}

func TestMboxKindFactory(t *testing.T) {
	for k := KindProxy; k <= KindTranscoder; k++ {
		f := NewOfKind(k, "m0/vm0/app", 1e9, &fastOutput{})
		if f == nil {
			t.Fatalf("kind %v returned nil", k)
		}
		if f.ID() != "m0/vm0/app" {
			t.Fatalf("kind %v id %s", k, f.ID())
		}
		if k.String() == "unknown" {
			t.Fatalf("kind %v has no name", int(k))
		}
	}
}

func TestSnapshotCarriesAlgorithm2Inputs(t *testing.T) {
	f := NewProxy("m0/vm0/app", 2e8, &fastOutput{})
	rec := f.Snapshot(42)
	if rec.GetOr(core.AttrType, 0) != 1 {
		t.Fatal("middlebox type tag missing")
	}
	if rec.GetOr(core.AttrCapacityBps, 0) != 2e8 {
		t.Fatal("capacity missing")
	}
	for _, a := range []core.AttrID{core.AttrInBytes, core.AttrInTimeNS, core.AttrOutBytes, core.AttrOutTimeNS} {
		if _, ok := rec.Get(a); !ok {
			t.Fatalf("missing %s", core.AttrName(a))
		}
	}
}

func TestSizeHistogramOptIn(t *testing.T) {
	h := newHarness(t)
	f := NewProxy("m0/vm0/app", 1e9, &fastOutput{})
	f.EnableSizeHistogram()
	h.deliver(14480)
	h.step(f, time.Millisecond, 2.5e6)
	rec := f.Snapshot(0)
	found := false
	for _, a := range rec.Attrs {
		if a.Name() == "size_le_1518" && a.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("histogram attrs missing: %v", rec.Attrs)
	}
}
