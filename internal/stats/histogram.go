package stats

import (
	"sync/atomic"

	"perfsight/internal/core"
)

// SizeHistogram tracks a packet-size distribution in fixed buckets. The
// paper (§4.1) notes operators "can implement more complicated statistics
// at an element such as packet size distribution tracking if they can
// accept the resulting performance impact"; this is that optional
// statistic, and BenchmarkSizeHistogram quantifies the impact.
//
// Buckets follow common MTU-relevant boundaries. The histogram is lock-free
// and, like the time counter, can be disabled to take it off the fast path.
type SizeHistogram struct {
	buckets [len(SizeBucketBounds) + 1]atomic.Uint64
	enabled atomic.Bool
}

// SizeBucketBounds are the inclusive upper bounds of the histogram buckets,
// in bytes. A final implicit bucket captures everything larger.
var SizeBucketBounds = [...]int{64, 128, 256, 512, 1024, 1518, 9000}

// NewSizeHistogram returns an enabled histogram.
func NewSizeHistogram() *SizeHistogram {
	h := &SizeHistogram{}
	h.enabled.Store(true)
	return h
}

// SetEnabled turns the histogram on or off.
func (h *SizeHistogram) SetEnabled(on bool) { h.enabled.Store(on) }

// Observe records one packet of the given size.
func (h *SizeHistogram) Observe(size int) {
	if !h.enabled.Load() {
		return
	}
	h.buckets[bucketIndex(size)].Add(1)
}

// ObserveN records n packets of the given (average) size.
func (h *SizeHistogram) ObserveN(size, n int) {
	if n <= 0 || !h.enabled.Load() {
		return
	}
	h.buckets[bucketIndex(size)].Add(uint64(n))
}

func bucketIndex(size int) int {
	for i, b := range SizeBucketBounds {
		if size <= b {
			return i
		}
	}
	return len(SizeBucketBounds)
}

// Counts returns a copy of the bucket counts. Index i < len(SizeBucketBounds)
// counts packets with size <= SizeBucketBounds[i]; the last index counts the
// rest.
func (h *SizeHistogram) Counts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Total returns the number of observed packets.
func (h *SizeHistogram) Total() uint64 {
	var t uint64
	for i := range h.buckets {
		t += h.buckets[i].Load()
	}
	return t
}

// sizeAttrIDs holds the extension AttrIDs of the buckets, registered once
// at package init rather than re-resolved on every snapshot. They stay
// gauges so Sub passes the cumulative distribution through unchanged, as
// the pre-schema code did.
var sizeAttrIDs = func() [len(SizeBucketBounds) + 1]core.AttrID {
	var ids [len(SizeBucketBounds) + 1]core.AttrID
	for i, b := range SizeBucketBounds {
		ids[i], _ = core.RegisterAttr(sizeAttrName(b, false), core.SemGauge, "packets")
	}
	ids[len(SizeBucketBounds)], _ = core.RegisterAttr(
		sizeAttrName(SizeBucketBounds[len(SizeBucketBounds)-1], true), core.SemGauge, "packets")
	return ids
}()

// Attrs renders the histogram as record attributes named size_le_<bound>
// and size_gt_<maxbound>.
func (h *SizeHistogram) Attrs() []core.Attr {
	out := make([]core.Attr, 0, len(h.buckets))
	for i := range h.buckets {
		out = append(out, core.Attr{
			ID:    sizeAttrIDs[i],
			Value: float64(h.buckets[i].Load()),
		})
	}
	return out
}

func sizeAttrName(bound int, above bool) string {
	if above {
		return "size_gt_" + itoa(bound)
	}
	return "size_le_" + itoa(bound)
}

// itoa avoids pulling strconv into the datapath hot file for one use.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
