package stats

import (
	"math"
	"sync/atomic"
)

// LogLinear is a log-linear histogram: bucket upper bounds grow linearly
// within each decade and geometrically across decades (1, 2, ... 9, 10,
// 20, ... 90, 100, ...). This is the classic shape for latency data — a
// bounded number of buckets covers many orders of magnitude while keeping
// relative quantile error below one linear step.
//
// Like the other §4.1 counters it is updated on hot paths, so Observe is
// a bounds search plus one atomic add (plus an atomic CAS for the sum).
// Negative and non-finite values are rejected (they are recorded nowhere,
// not even in the overflow bucket). Safe for concurrent use.
type LogLinear struct {
	bounds []float64 // ascending inclusive upper bounds
	counts []atomic.Uint64
	// over counts observations above the last bound.
	over    atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewLogLinear builds a histogram whose buckets span [min, max] with
// stepsPerDecade linear subdivisions per decade. min must be > 0; max is
// rounded up to the next decade boundary. Invalid arguments fall back to
// a 1..1e9, 9-steps-per-decade layout (nanosecond latencies up to 1 s).
func NewLogLinear(min, max float64, stepsPerDecade int) *LogLinear {
	if !(min > 0) || !(max > min) || stepsPerDecade < 1 {
		min, max, stepsPerDecade = 1, 1e9, 9
	}
	var bounds []float64
	for decade := min; decade < max; decade *= 10 {
		for i := 1; i <= stepsPerDecade; i++ {
			b := decade * (1 + 9*float64(i)/float64(stepsPerDecade))
			bounds = append(bounds, b)
			if b >= max {
				break
			}
		}
		if bounds[len(bounds)-1] >= max {
			break
		}
	}
	h := &LogLinear{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds))
	return h
}

// Observe records one value. Negative, NaN and ±Inf values are rejected.
func (h *LogLinear) Observe(v float64) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if i := h.bucketOf(v); i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// bucketOf returns the index whose bound is the first >= v, or
// len(bounds) for overflow (rendered and counted via over).
func (h *LogLinear) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of accepted observations.
func (h *LogLinear) Count() uint64 { return h.total.Load() }

// Sum returns the sum of accepted observations.
func (h *LogLinear) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (shared; do not modify).
func (h *LogLinear) Bounds() []float64 { return h.bounds }

// Counts returns a copy of the per-bucket counts; the final extra entry
// counts observations above the last bound.
func (h *LogLinear) Counts() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	out[len(h.bounds)] = h.over.Load()
	return out
}

// Quantile estimates the q-quantile (q clamped to [0,1]) by linear
// interpolation within the containing bucket. It returns (0, false) when
// nothing was observed. q=0 returns the lower edge of the first occupied
// bucket; q=1 the upper bound of the last occupied one. Values in the
// overflow bucket report the last finite bound — the histogram cannot
// resolve beyond its range.
func (h *LogLinear) Quantile(q float64) (float64, bool) {
	total := h.total.Load()
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if q == 0 {
		for i := range h.counts {
			if h.counts[i].Load() > 0 {
				if i == 0 {
					return 0, true
				}
				return h.bounds[i-1], true
			}
		}
		return h.bounds[len(h.bounds)-1], true
	}
	// Rank of the target observation, 1-based.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := float64(rank-cum) / float64(n)
			return lower + (upper-lower)*frac, true
		}
		cum += n
	}
	// Remaining mass is in the overflow bucket.
	return h.bounds[len(h.bounds)-1], true
}
