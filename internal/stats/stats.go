// Package stats provides the counter primitives PerfSight instruments into
// dataplane elements (§4.1): packet counters, byte counters, drop counters
// and I/O time counters, plus the registry through which an agent discovers
// the elements on its physical server.
//
// Counters are updated on the datapath, so they must be cheap (the paper
// measures ~3 ns per simple counter update and ~0.29 µs per time-counter
// update) and safe for concurrent use. All counters here are lock-free
// atomics.
package stats

import (
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset sets the counter to zero. Only tests and scenario resets use this;
// the datapath never resets counters (queries difference two snapshots).
func (c *Counter) Reset() { c.v.Store(0) }

// PacketByte is the (packets, bytes) counter pair every element keeps for
// each of its traffic directions.
type PacketByte struct {
	Packets Counter
	Bytes   Counter
}

// Add records n packets totalling b bytes.
func (p *PacketByte) Add(n int, b int64) {
	if n > 0 {
		p.Packets.Add(uint64(n))
	}
	if b > 0 {
		p.Bytes.Add(uint64(b))
	}
}

// TimeCounter accumulates elapsed time, in nanoseconds. It backs the I/O
// time statistics of §5.2: input/output time = block time + memcpy time.
//
// Two usage styles are supported:
//
//   - Simulated elements call Observe with virtual durations.
//   - Live code brackets an I/O call with Start/Stop, which reads the
//     monotonic clock twice — exactly the instrumentation whose overhead
//     Table 2 measures.
//
// The Enabled flag implements the paper's with/without-time-counter
// comparison: when disabled, Observe/Start/Stop are no-ops beyond the flag
// check, so an uninstrumented element pays (almost) nothing.
type TimeCounter struct {
	ns      atomic.Int64
	enabled atomic.Bool
}

// NewTimeCounter returns an enabled time counter.
func NewTimeCounter() *TimeCounter {
	t := &TimeCounter{}
	t.enabled.Store(true)
	return t
}

// SetEnabled turns instrumentation on or off.
func (t *TimeCounter) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether the counter records observations.
func (t *TimeCounter) Enabled() bool { return t.enabled.Load() }

// Observe accumulates d of I/O time (virtual or real).
func (t *TimeCounter) Observe(d time.Duration) {
	if d <= 0 || !t.enabled.Load() {
		return
	}
	t.ns.Add(int64(d))
}

// Start returns a token for Stop. Live instrumentation style.
func (t *TimeCounter) Start() int64 {
	if !t.enabled.Load() {
		return 0
	}
	return nanotime()
}

// Stop accumulates the time elapsed since Start returned token.
func (t *TimeCounter) Stop(token int64) {
	if token == 0 || !t.enabled.Load() {
		return
	}
	t.ns.Add(nanotime() - token)
}

// Load returns accumulated nanoseconds.
func (t *TimeCounter) Load() int64 { return t.ns.Load() }

// Reset zeroes the accumulated time.
func (t *TimeCounter) Reset() { t.ns.Store(0) }

// nanotime reads the monotonic clock.
func nanotime() int64 {
	return time.Since(processStart).Nanoseconds()
}

var processStart = time.Now()

// IOStats groups the four I/O counters of a middlebox-style element:
// bytes and time for the input method, bytes and time for the output
// method (§5.2). Input time covers both block time and memcpy time, as the
// diagnosis algorithm requires.
type IOStats struct {
	InBytes  Counter
	OutBytes Counter
	InTime   TimeCounter
	OutTime  TimeCounter
}

// NewIOStats returns IOStats with time counters enabled.
func NewIOStats() *IOStats {
	s := &IOStats{}
	s.InTime.enabled.Store(true)
	s.OutTime.enabled.Store(true)
	return s
}

// SetTimeCountersEnabled toggles both time counters (Table 2 experiment).
func (s *IOStats) SetTimeCountersEnabled(on bool) {
	s.InTime.SetEnabled(on)
	s.OutTime.SetEnabled(on)
}

// Attrs renders the I/O counters as record attributes.
func (s *IOStats) Attrs() []core.Attr {
	return []core.Attr{
		{ID: core.AttrInBytes, Value: float64(s.InBytes.Load())},
		{ID: core.AttrInTimeNS, Value: float64(s.InTime.Load())},
		{ID: core.AttrOutBytes, Value: float64(s.OutBytes.Load())},
		{ID: core.AttrOutTimeNS, Value: float64(s.OutTime.Load())},
	}
}

// ElementStats is the standard counter block embedded by dataplane
// elements: rx/tx packet+byte counters and a drop counter.
type ElementStats struct {
	Rx   PacketByte
	Tx   PacketByte
	Drop PacketByte
}

// Attrs renders the counters as record attributes.
func (s *ElementStats) Attrs() []core.Attr {
	return []core.Attr{
		{ID: core.AttrRxPackets, Value: float64(s.Rx.Packets.Load())},
		{ID: core.AttrRxBytes, Value: float64(s.Rx.Bytes.Load())},
		{ID: core.AttrTxPackets, Value: float64(s.Tx.Packets.Load())},
		{ID: core.AttrTxBytes, Value: float64(s.Tx.Bytes.Load())},
		{ID: core.AttrDropPackets, Value: float64(s.Drop.Packets.Load())},
		{ID: core.AttrDropBytes, Value: float64(s.Drop.Bytes.Load())},
	}
}

// Registry tracks the elements present on one physical server, for the
// agent to interrogate. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	elements map[core.ElementID]core.Element
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{elements: make(map[core.ElementID]core.Element)}
}

// Register adds (or replaces) an element.
func (r *Registry) Register(e core.Element) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.elements[e.ID()] = e
}

// Unregister removes an element, e.g. when a VM is migrated away.
func (r *Registry) Unregister(id core.ElementID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.elements, id)
}

// Get returns the element with the given ID.
func (r *Registry) Get(id core.ElementID) (core.Element, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.elements[id]
	return e, ok
}

// List returns all registered elements (order unspecified).
func (r *Registry) List() []core.Element {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]core.Element, 0, len(r.elements))
	for _, e := range r.elements {
		out = append(out, e)
	}
	return out
}

// Len returns the number of registered elements.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.elements)
}

// Snapshot returns records for every registered element at timestamp ts.
func (r *Registry) Snapshot(ts int64) []core.Record {
	elems := r.List()
	out := make([]core.Record, 0, len(elems))
	for _, e := range elems {
		out = append(out, e.Snapshot(ts))
	}
	return out
}

// AuditFinding reports an element whose instrumentation looks incomplete.
type AuditFinding struct {
	Element core.ElementID
	Kind    core.ElementKind
	Missing []string
}

// Audit inspects every element's snapshot and flags missing counters —
// buffered elements without a drop counter, middleboxes without I/O time
// counters. This automates the coverage check that the paper performed
// manually ("we perform the instrumentation task manually and
// exhaustively, but we believe it can be automated", §4.1).
func (r *Registry) Audit(ts int64) []AuditFinding {
	var findings []AuditFinding
	for _, e := range r.List() {
		rec := e.Snapshot(ts)
		var missing []string
		need := []core.AttrID{core.AttrRxPackets, core.AttrTxPackets}
		if hasBuffer(e.Kind()) {
			need = append(need, core.AttrDropPackets, core.AttrQueueLen)
		}
		if e.Kind() == core.KindMiddlebox {
			need = append(need, core.AttrInBytes, core.AttrInTimeNS,
				core.AttrOutBytes, core.AttrOutTimeNS, core.AttrCapacityBps)
		}
		for _, n := range need {
			if _, ok := rec.Get(n); !ok {
				missing = append(missing, core.AttrName(n))
			}
		}
		if len(missing) > 0 {
			findings = append(findings, AuditFinding{Element: e.ID(), Kind: e.Kind(), Missing: missing})
		}
	}
	return findings
}

// hasBuffer reports whether elements of kind k exchange packets through a
// bounded buffer (and can therefore drop).
func hasBuffer(k core.ElementKind) bool {
	switch k {
	case core.KindPNIC, core.KindPCPUBacklog, core.KindTUN, core.KindVNIC,
		core.KindVCPUBacklog, core.KindGuestSocket:
		return true
	}
	return false
}
