package stats

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"perfsight/internal/core"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 6 {
		t.Fatalf("counter = %d; want 6", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 80000 {
		t.Fatalf("concurrent count = %d; want 80000", c.Load())
	}
}

func TestPacketByteIgnoresNonPositive(t *testing.T) {
	var p PacketByte
	p.Add(-1, -5)
	p.Add(0, 0)
	p.Add(3, 100)
	if p.Packets.Load() != 3 || p.Bytes.Load() != 100 {
		t.Fatalf("pkts=%d bytes=%d", p.Packets.Load(), p.Bytes.Load())
	}
}

func TestTimeCounterObserve(t *testing.T) {
	tc := NewTimeCounter()
	tc.Observe(5 * time.Microsecond)
	tc.Observe(-time.Second) // ignored
	if tc.Load() != 5000 {
		t.Fatalf("time counter = %d ns; want 5000", tc.Load())
	}
	tc.Reset()
	if tc.Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimeCounterStartStop(t *testing.T) {
	tc := NewTimeCounter()
	tok := tc.Start()
	if tok == 0 {
		t.Fatal("enabled Start returned zero token")
	}
	tc.Stop(tok)
	if tc.Load() < 0 {
		t.Fatal("negative accumulation")
	}
}

func TestTimeCounterDisabled(t *testing.T) {
	tc := NewTimeCounter()
	tc.SetEnabled(false)
	if tc.Enabled() {
		t.Fatal("still enabled")
	}
	if tok := tc.Start(); tok != 0 {
		t.Fatal("disabled Start returned token")
	}
	tc.Observe(time.Second)
	tc.Stop(12345)
	if tc.Load() != 0 {
		t.Fatalf("disabled counter accumulated %d", tc.Load())
	}
}

func TestIOStatsAttrs(t *testing.T) {
	s := NewIOStats()
	s.InBytes.Add(10)
	s.OutBytes.Add(20)
	s.InTime.Observe(time.Microsecond)
	s.OutTime.Observe(2 * time.Microsecond)
	rec := core.Record{Attrs: s.Attrs()}
	if v, _ := rec.Get(core.AttrInBytes); v != 10 {
		t.Fatalf("in_bytes = %v", v)
	}
	if v, _ := rec.Get(core.AttrOutTimeNS); v != 2000 {
		t.Fatalf("out_time_ns = %v", v)
	}
	s.SetTimeCountersEnabled(false)
	s.InTime.Observe(time.Second)
	if s.InTime.Load() != 1000 {
		t.Fatal("disabled IO timer accumulated")
	}
}

func TestElementStatsAttrs(t *testing.T) {
	var es ElementStats
	es.Rx.Add(2, 100)
	es.Tx.Add(1, 50)
	es.Drop.Add(1, 50)
	rec := core.Record{Attrs: es.Attrs()}
	for name, want := range map[core.AttrID]float64{
		core.AttrRxPackets:   2,
		core.AttrRxBytes:     100,
		core.AttrTxPackets:   1,
		core.AttrTxBytes:     50,
		core.AttrDropPackets: 1,
		core.AttrDropBytes:   50,
	} {
		if v, _ := rec.Get(name); v != want {
			t.Fatalf("%s = %v; want %v", core.AttrName(name), v, want)
		}
	}
}

// fakeElement is a minimal core.Element for registry tests.
type fakeElement struct {
	id    core.ElementID
	kind  core.ElementKind
	attrs []core.Attr
}

func (f fakeElement) ID() core.ElementID     { return f.id }
func (f fakeElement) Kind() core.ElementKind { return f.kind }
func (f fakeElement) Snapshot(ts int64) core.Record {
	return core.Record{Timestamp: ts, Element: f.id, Attrs: f.attrs}
}

func TestRegistryCRUD(t *testing.T) {
	r := NewRegistry()
	e1 := fakeElement{id: "a"}
	e2 := fakeElement{id: "b"}
	r.Register(e1)
	r.Register(e2)
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("Get(a) failed")
	}
	r.Unregister("a")
	if _, ok := r.Get("a"); ok {
		t.Fatal("a still present after Unregister")
	}
	snaps := r.Snapshot(99)
	if len(snaps) != 1 || snaps[0].Timestamp != 99 {
		t.Fatalf("snapshot: %v", snaps)
	}
}

func TestAuditFlagsMissingCounters(t *testing.T) {
	r := NewRegistry()
	// A TUN without drop counters and queue gauges is underinstrumented.
	r.Register(fakeElement{id: "m0/vm0/tun", kind: core.KindTUN, attrs: []core.Attr{
		{ID: core.AttrRxPackets}, {ID: core.AttrTxPackets},
	}})
	// A fully-instrumented NAPI routine passes.
	r.Register(fakeElement{id: "m0/napi", kind: core.KindNAPIRoutine, attrs: []core.Attr{
		{ID: core.AttrRxPackets}, {ID: core.AttrTxPackets},
	}})
	// A middlebox missing I/O time counters is flagged.
	r.Register(fakeElement{id: "m0/vm0/app", kind: core.KindMiddlebox, attrs: []core.Attr{
		{ID: core.AttrRxPackets}, {ID: core.AttrTxPackets},
		{ID: core.AttrInBytes}, {ID: core.AttrOutBytes},
	}})

	findings := r.Audit(0)
	byID := map[core.ElementID][]string{}
	for _, f := range findings {
		byID[f.Element] = f.Missing
	}
	if _, ok := byID["m0/napi"]; ok {
		t.Fatal("fully instrumented element flagged")
	}
	if missing := byID["m0/vm0/tun"]; len(missing) == 0 {
		t.Fatal("underinstrumented TUN not flagged")
	}
	mb := byID["m0/vm0/app"]
	found := false
	for _, m := range mb {
		if m == core.AttrName(core.AttrInTimeNS) {
			found = true
		}
	}
	if !found {
		t.Fatalf("middlebox missing attrs %v should include in_time_ns", mb)
	}
}

func TestSizeHistogramBuckets(t *testing.T) {
	h := NewSizeHistogram()
	h.Observe(64)    // bucket 0 (<=64)
	h.Observe(65)    // bucket 1 (<=128)
	h.Observe(1500)  // <=1518
	h.Observe(64000) // jumbo overflow
	counts := h.Counts()
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("small buckets: %v", counts)
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("overflow bucket: %v", counts)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestSizeHistogramDisabled(t *testing.T) {
	h := NewSizeHistogram()
	h.SetEnabled(false)
	h.Observe(100)
	h.ObserveN(100, 50)
	if h.Total() != 0 {
		t.Fatal("disabled histogram counted")
	}
}

func TestSizeHistogramAttrsNames(t *testing.T) {
	h := NewSizeHistogram()
	h.ObserveN(100, 3)
	rec := core.Record{Attrs: h.Attrs()}
	if v, ok := rec.Get(core.AttrIDFor("size_le_128")); !ok || v != 3 {
		t.Fatalf("size_le_128 = %v, present=%v", v, ok)
	}
	if _, ok := rec.Get(core.AttrIDFor("size_gt_9000")); !ok {
		t.Fatal("overflow attr missing")
	}
}

// TestSizeHistogramConservation: total always equals observations.
func TestSizeHistogramConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		h := NewSizeHistogram()
		for _, s := range sizes {
			h.Observe(int(s))
		}
		return h.Total() == uint64(len(sizes))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
