package stats

import (
	"math"
	"sync"
	"testing"
)

func TestLogLinearBoundsShape(t *testing.T) {
	h := NewLogLinear(1, 1000, 9)
	b := h.Bounds()
	if len(b) == 0 {
		t.Fatal("no bounds generated")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	if b[0] != 2 {
		t.Fatalf("first bound = %v, want 2", b[0])
	}
	if last := b[len(b)-1]; last < 1000 {
		t.Fatalf("last bound %v does not cover max 1000", last)
	}
}

func TestLogLinearZeroSamples(t *testing.T) {
	h := NewLogLinear(1, 1e6, 9)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("fresh histogram count=%d sum=%v, want zeros", h.Count(), h.Sum())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v, ok := h.Quantile(q); ok || v != 0 {
			t.Fatalf("Quantile(%v) on empty = (%v, %v), want (0, false)", q, v, ok)
		}
	}
}

func TestLogLinearSingleSample(t *testing.T) {
	h := NewLogLinear(1, 1e6, 9)
	h.Observe(42)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() != 42 {
		t.Fatalf("sum = %v, want 42", h.Sum())
	}
	// Every quantile of a single sample must land inside the sample's
	// bucket (40, 50] for the 9-steps-per-decade layout.
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		v, ok := h.Quantile(q)
		if !ok {
			t.Fatalf("Quantile(%v) not ok with one sample", q)
		}
		if v < 40 || v > 50 {
			t.Fatalf("Quantile(%v) = %v, want within (40, 50]", q, v)
		}
	}
}

func TestLogLinearQuantileBoundaries(t *testing.T) {
	h := NewLogLinear(1, 1e6, 9)
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket (90, 100]
	}
	for i := 0; i < 100; i++ {
		h.Observe(1000) // bucket (900, 1000]
	}
	if v, ok := h.Quantile(0); !ok || v != 90 {
		t.Fatalf("p0 = (%v, %v), want lower edge 90", v, ok)
	}
	if v, ok := h.Quantile(1); !ok || v != 1000 {
		t.Fatalf("p100 = (%v, %v), want upper bound 1000", v, ok)
	}
	if v, _ := h.Quantile(0.5); v > 100 {
		t.Fatalf("p50 = %v, want <= 100 (first bucket holds half the mass)", v)
	}
	if v, _ := h.Quantile(0.99); v < 900 || v > 1000 {
		t.Fatalf("p99 = %v, want within (900, 1000]", v)
	}
	// Out-of-range q clamps rather than erroring.
	if v, ok := h.Quantile(-3); !ok || v != 90 {
		t.Fatalf("q=-3 = (%v, %v), want clamp to p0", v, ok)
	}
	if v, ok := h.Quantile(7); !ok || v != 1000 {
		t.Fatalf("q=7 = (%v, %v), want clamp to p100", v, ok)
	}
}

func TestLogLinearRejectsNegativeAndNonFinite(t *testing.T) {
	h := NewLogLinear(1, 1e6, 9)
	h.Observe(-1)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("rejected values leaked in: count=%d sum=%v", h.Count(), h.Sum())
	}
	h.Observe(0) // zero is a legal observation (first bucket)
	if h.Count() != 1 {
		t.Fatalf("zero not accepted: count=%d", h.Count())
	}
}

func TestLogLinearOverflowBucket(t *testing.T) {
	h := NewLogLinear(1, 100, 9)
	big := h.Bounds()[len(h.Bounds())-1] * 50
	h.Observe(big)
	counts := h.Counts()
	if counts[len(counts)-1] != 1 {
		t.Fatalf("overflow not counted: %v", counts)
	}
	if v, ok := h.Quantile(1); !ok || v != h.Bounds()[len(h.Bounds())-1] {
		t.Fatalf("p100 with only overflow = (%v, %v), want last finite bound", v, ok)
	}
	if h.Sum() != big {
		t.Fatalf("sum = %v, want %v", h.Sum(), big)
	}
}

func TestLogLinearBadArgsFallBack(t *testing.T) {
	for _, h := range []*LogLinear{
		NewLogLinear(0, 10, 9),
		NewLogLinear(10, 1, 9),
		NewLogLinear(1, 10, 0),
	} {
		if len(h.Bounds()) == 0 {
			t.Fatal("fallback layout has no buckets")
		}
		h.Observe(5)
		if h.Count() != 1 {
			t.Fatal("fallback histogram does not record")
		}
	}
}

func TestLogLinearConcurrent(t *testing.T) {
	h := NewLogLinear(1, 1e9, 9)
	var wg sync.WaitGroup
	const G, N = 8, 1000
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(float64(1 + (g*N+i)%100000))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != G*N {
		t.Fatalf("count = %d, want %d", h.Count(), G*N)
	}
}
