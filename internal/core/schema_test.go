package core

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// TestSchemaNameIDBijection: the schema's name↔ID mapping must be a
// bijection — every schema ID has a unique canonical name, the name
// resolves back to the same ID, and the ID space 1..SchemaMax is dense.
func TestSchemaNameIDBijection(t *testing.T) {
	defs := SchemaAttrs()
	if len(defs) != int(SchemaMax) {
		t.Fatalf("SchemaAttrs returned %d defs; want %d", len(defs), SchemaMax)
	}
	seenNames := make(map[string]AttrID)
	for i, def := range defs {
		if def.ID != AttrID(i+1) {
			t.Fatalf("schema IDs not dense: defs[%d].ID = %d", i, def.ID)
		}
		if def.Name == "" {
			t.Fatalf("schema attr %d has no name", def.ID)
		}
		if prev, dup := seenNames[def.Name]; dup {
			t.Fatalf("name %q maps to both %d and %d", def.Name, prev, def.ID)
		}
		seenNames[def.Name] = def.ID
		if got := AttrName(def.ID); got != def.Name {
			t.Fatalf("AttrName(%d) = %q; want %q", def.ID, got, def.Name)
		}
		id, ok := LookupAttr(def.Name)
		if !ok || id != def.ID {
			t.Fatalf("LookupAttr(%q) = %d,%v; want %d", def.Name, id, ok, def.ID)
		}
		if !IsSchemaAttr(def.ID) {
			t.Fatalf("IsSchemaAttr(%d) = false", def.ID)
		}
	}
	if IsSchemaAttr(AttrInvalid) || IsSchemaAttr(SchemaMax+1) || IsSchemaAttr(AttrExtBase) {
		t.Fatal("IsSchemaAttr accepts non-schema IDs")
	}
	if SchemaMax >= AttrExtBase {
		t.Fatalf("schema region %d overlaps extension base %d", SchemaMax, AttrExtBase)
	}
}

// TestSchemaSemanticsMatchSub: Sub must difference exactly the counters
// the schema declares, preserving the behavior the pre-schema switch had.
func TestSchemaSemanticsMatchSub(t *testing.T) {
	counters := map[AttrID]bool{
		AttrRxPackets: true, AttrRxBytes: true, AttrTxPackets: true,
		AttrTxBytes: true, AttrDropPackets: true, AttrDropBytes: true,
		AttrInBytes: true, AttrInTimeNS: true, AttrOutBytes: true, AttrOutTimeNS: true,
	}
	for _, def := range SchemaAttrs() {
		want := counters[def.ID]
		if got := def.Semantics == SemCounter; got != want {
			t.Errorf("%s: counter = %v; want %v", def.Name, got, want)
		}
		if got := isMonotonic(def.ID); got != want {
			t.Errorf("isMonotonic(%s) = %v; want %v", def.Name, got, want)
		}
	}
}

// TestExtensionRegistration covers the runtime-registered attribute space:
// new names land at or above AttrExtBase, registration is idempotent,
// schema names are never shadowed, and declared semantics drive Sub.
func TestExtensionRegistration(t *testing.T) {
	id, err := RegisterAttr("test_ext_counter", SemCounter, "bytes")
	if err != nil {
		t.Fatal(err)
	}
	if id < AttrExtBase {
		t.Fatalf("extension ID %d below AttrExtBase %d", id, AttrExtBase)
	}
	if again, _ := RegisterAttr("test_ext_counter", SemGauge, ""); again != id {
		t.Fatalf("re-registration moved the ID: %d != %d", again, id)
	}
	if AttrSemanticsOf(id) != SemCounter {
		t.Fatal("re-registration overwrote the original semantics")
	}
	if AttrName(id) != "test_ext_counter" {
		t.Fatalf("AttrName(%d) = %q", id, AttrName(id))
	}
	if sid, _ := RegisterAttr("rx_bytes", SemGauge, ""); sid != AttrRxBytes {
		t.Fatalf("registering a schema name returned %d; want %d", sid, AttrRxBytes)
	}

	// A counter extension is differenced by Sub; an auto-registered
	// (gauge) extension is passed through — same as unknown names before.
	gaugeID := AttrIDFor("test_ext_gauge")
	prev := Record{Timestamp: 1, Element: "e", Attrs: []Attr{{ID: id, Value: 100}, {ID: gaugeID, Value: 100}}}
	cur := Record{Timestamp: 2, Element: "e", Attrs: []Attr{{ID: id, Value: 150}, {ID: gaugeID, Value: 150}}}
	d := cur.Sub(prev)
	if v, _ := d.Get(id); v != 50 {
		t.Fatalf("counter ext delta = %v; want 50", v)
	}
	if v, _ := d.Get(gaugeID); v != 150 {
		t.Fatalf("gauge ext delta = %v; want 150 (pass-through)", v)
	}
}

// TestAttrNameRoundTripProperty: for arbitrary attribute names — including
// ones no schema ever declared — resolving to an ID and back must preserve
// the name exactly (the "no data loss from old agents" guarantee), and the
// JSON form must round-trip value and identity.
func TestAttrNameRoundTripProperty(t *testing.T) {
	prop := func(name string, value float64) bool {
		if name == "" {
			name = "empty"
		}
		id := AttrIDFor(name)
		if id == AttrInvalid {
			return false
		}
		if AttrName(id) != name {
			return false
		}
		b, err := json.Marshal(Attr{ID: id, Value: value})
		if err != nil {
			return false
		}
		var back Attr
		if err := json.Unmarshal(b, &back); err != nil {
			return false
		}
		return back.ID == id && (back.Value == value || back.Value != back.Value && value != value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAttrRegistryConcurrent hammers the copy-on-write registry from many
// goroutines (meaningful under -race): concurrent AttrIDFor calls for the
// same name must agree, and readers must never see a torn table.
func TestAttrRegistryConcurrent(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	ids := make([][16]AttrID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				ids[w][i] = AttrIDFor(fmt.Sprintf("conc_attr_%d", i))
				_ = AttrName(ids[w][i])
				_, _ = LookupAttr("rx_bytes")
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ids[w] != ids[0] {
			t.Fatalf("worker %d saw different IDs: %v vs %v", w, ids[w], ids[0])
		}
	}
}

// TestRegisterAttrCap drives the extension registry to maxExtAttrs and
// verifies cap behavior: new names are refused with an error, the
// rejection counter (the perfsight_schema_ext_rejected_total feed) ticks,
// AttrIDFor degrades to AttrInvalid without panicking, and names already
// in the table keep resolving. The full table is swapped in and restored
// white-box so the process-global registry is not poisoned for other
// tests.
func TestRegisterAttrCap(t *testing.T) {
	full := &extTable{
		byName: make(map[string]AttrID, maxExtAttrs),
		defs:   make([]AttrDef, maxExtAttrs),
	}
	for i := range full.defs {
		id := AttrExtBase + AttrID(i)
		name := "cap_fill_" + strconv.Itoa(i)
		full.defs[i] = AttrDef{ID: id, Name: name, Semantics: SemGauge}
		full.byName[name] = id
	}
	extMu.Lock()
	saved := extCur.Load()
	extCur.Store(full)
	extMu.Unlock()
	defer func() {
		extMu.Lock()
		extCur.Store(saved)
		extMu.Unlock()
	}()

	if got := ExtAttrCount(); got != maxExtAttrs {
		t.Fatalf("ExtAttrCount = %d; want %d", got, maxExtAttrs)
	}
	before := ExtRejected()
	id, err := RegisterAttr("cap_overflow_attr", SemCounter, "bytes")
	if err == nil {
		t.Fatal("RegisterAttr succeeded past the cap")
	}
	if id != AttrInvalid {
		t.Fatalf("rejected registration returned ID %d; want AttrInvalid", id)
	}
	if got := ExtRejected(); got != before+1 {
		t.Fatalf("ExtRejected = %d after one rejection; want %d", got, before+1)
	}
	if got := AttrIDFor("cap_overflow_other"); got != AttrInvalid {
		t.Fatalf("AttrIDFor past the cap = %d; want AttrInvalid", got)
	}
	if got := ExtRejected(); got != before+2 {
		t.Fatalf("ExtRejected = %d after two rejections; want %d", got, before+2)
	}

	// Names already in the table — extension or schema — are unaffected.
	if got, ok := LookupAttr("cap_fill_0"); !ok || got != AttrExtBase {
		t.Fatalf("LookupAttr(cap_fill_0) = %d,%v; want %d,true", got, ok, AttrExtBase)
	}
	if again, err := RegisterAttr("cap_fill_7", SemCounter, ""); err != nil || again != AttrExtBase+7 {
		t.Fatalf("re-registering an existing name at the cap: %d, %v", again, err)
	}
	if sid, err := RegisterAttr("rx_bytes", SemGauge, ""); err != nil || sid != AttrRxBytes {
		t.Fatalf("schema name at the cap: %d, %v", sid, err)
	}
}

// snapshotShapedRecord mirrors a dataplane element snapshot: schema attrs
// in ascending ID order, the shape Record.Get's dense probe is built for.
func snapshotShapedRecord() Record {
	return Record{Timestamp: 1e9, Element: "m0/pnic", Attrs: []Attr{
		{ID: AttrKind, Value: 1},
		{ID: AttrRxPackets, Value: 1e6}, {ID: AttrRxBytes, Value: 1.5e9},
		{ID: AttrTxPackets, Value: 9e5}, {ID: AttrTxBytes, Value: 1.2e9},
		{ID: AttrDropPackets, Value: 100}, {ID: AttrDropBytes, Value: 15e4},
		{ID: AttrCapacityBps, Value: 1e10},
	}}
}

// TestRecordGetUnsortedAttrs: the dense probe is an optimization, not a
// requirement — records with arbitrary attr order (old peers, hand-built
// tests) must still resolve every attribute.
func TestRecordGetUnsortedAttrs(t *testing.T) {
	r := Record{Element: "e", Attrs: []Attr{
		{ID: AttrCapacityBps, Value: 4},
		{ID: AttrIDFor("zzz_ext"), Value: 5},
		{ID: AttrKind, Value: 6},
		{ID: AttrDropPackets, Value: 7},
	}}
	for _, tc := range []struct {
		id   AttrID
		want float64
	}{{AttrCapacityBps, 4}, {AttrIDFor("zzz_ext"), 5}, {AttrKind, 6}, {AttrDropPackets, 7}} {
		if v, ok := r.Get(tc.id); !ok || v != tc.want {
			t.Fatalf("Get(%s) = %v,%v; want %v", AttrName(tc.id), v, ok, tc.want)
		}
	}
	if _, ok := r.Get(AttrRxBytes); ok {
		t.Fatal("absent attr found")
	}
}

// TestRecordAllocBudget is the bench-core CI gate: Record.Get and the
// buffer-reusing Record.SubInto must stay at the allocs/op recorded in
// testdata/record_alloc_budget.txt (zero — these run in the diagnosis and
// history inner loops once per element per sweep).
func TestRecordAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/record_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parse budget: %v", err)
	}
	cur := snapshotShapedRecord()
	prev := snapshotShapedRecord()
	prev.Timestamp = 0

	getAllocs := testing.AllocsPerRun(100, func() {
		if _, ok := cur.Get(AttrDropPackets); !ok {
			t.Fatal("lookup failed")
		}
		_ = cur.GetOr(AttrQueueLen, 0) // absent: full-scan path
	})
	scratch := make([]Attr, 0, len(cur.Attrs))
	subAllocs := testing.AllocsPerRun(100, func() {
		d := cur.SubInto(prev, scratch)
		scratch = d.Attrs
	})
	t.Logf("Record.Get allocs/op = %.1f, Record.SubInto allocs/op = %.1f (budget %.0f)", getAllocs, subAllocs, budget)
	if getAllocs > budget {
		t.Fatalf("Record.Get allocs/op = %.1f exceeds budget %.0f (testdata/record_alloc_budget.txt)", getAllocs, budget)
	}
	if subAllocs > budget {
		t.Fatalf("Record.SubInto allocs/op = %.1f exceeds budget %.0f (testdata/record_alloc_budget.txt)", subAllocs, budget)
	}
}

// TestSuccessorsAllocFreeSingleChain gates the Algorithm 2 satellite: on a
// single-chain topology Successors/Predecessors return subslices of the
// chain, with zero allocations.
func TestSuccessorsAllocFreeSingleChain(t *testing.T) {
	net := &VirtualNet{Chains: [][]ElementID{{"a", "b", "c", "d"}}}
	if got := testing.AllocsPerRun(100, func() {
		if s := net.Successors("b"); len(s) != 2 {
			t.Fatalf("successors: %v", s)
		}
		if p := net.Predecessors("c"); len(p) != 2 {
			t.Fatalf("predecessors: %v", p)
		}
	}); got != 0 {
		t.Fatalf("single-chain Successors+Predecessors allocs/op = %.1f; want 0", got)
	}
	// The returned subslices must be safe to append to without mutating
	// the underlying chain (capacity-clamped).
	s := net.Successors("b")
	_ = append(s, "x")
	if net.Chains[0][3] != "d" {
		t.Fatal("append to Successors result scribbled on the chain")
	}
}

// --- benchmarks backing the EXPERIMENTS.md "Typed statistics schema" table ---

// namedAttr replicates the pre-schema Attr{Name string, Value float64} so
// the string-scan baseline measures exactly what the old Record.Get did.
type namedAttr struct {
	name  string
	value float64
}

func getByNameScan(attrs []namedAttr, name string) (float64, bool) {
	for _, a := range attrs {
		if a.name == name {
			return a.value, true
		}
	}
	return 0, false
}

func namedCopy(r Record) []namedAttr {
	out := make([]namedAttr, len(r.Attrs))
	for i, a := range r.Attrs {
		out[i] = namedAttr{AttrName(a.ID), a.Value}
	}
	return out
}

func BenchmarkRecordGetID(b *testing.B) {
	r := snapshotShapedRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Get(AttrDropPackets); !ok {
			b.Fatal("missing")
		}
		if _, ok := r.Get(AttrCapacityBps); !ok {
			b.Fatal("missing")
		}
	}
}

func BenchmarkRecordGetStringScanBaseline(b *testing.B) {
	attrs := namedCopy(snapshotShapedRecord())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := getByNameScan(attrs, "drop_packets"); !ok {
			b.Fatal("missing")
		}
		if _, ok := getByNameScan(attrs, "capacity_bps"); !ok {
			b.Fatal("missing")
		}
	}
}

func BenchmarkRecordSubInto(b *testing.B) {
	cur := snapshotShapedRecord()
	prev := snapshotShapedRecord()
	prev.Timestamp = 0
	scratch := make([]Attr, 0, len(cur.Attrs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := cur.SubInto(prev, scratch)
		scratch = d.Attrs
	}
}

// subByNameScan replicates the pre-schema Record.Sub verbatim: allocate
// the output slice, switch on the attribute name for monotonicity, and
// string-scan prev for the matching attribute.
func subByNameScan(cur, prev []namedAttr) []namedAttr {
	out := make([]namedAttr, 0, len(cur))
	mono := func(name string) bool {
		switch name {
		case "rx_packets", "rx_bytes", "tx_packets", "tx_bytes",
			"drop_packets", "drop_bytes",
			"in_bytes", "in_time_ns", "out_bytes", "out_time_ns":
			return true
		}
		return false
	}
	for _, a := range cur {
		v := a.value
		if mono(a.name) {
			if pv, ok := getByNameScan(prev, a.name); ok {
				v -= pv
			}
		}
		out = append(out, namedAttr{a.name, v})
	}
	return out
}

func BenchmarkRecordSubStringScanBaseline(b *testing.B) {
	cur := namedCopy(snapshotShapedRecord())
	prev := namedCopy(snapshotShapedRecord())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = subByNameScan(cur, prev)
	}
}

func BenchmarkSuccessorsSingleChain(b *testing.B) {
	net := &VirtualNet{Chains: [][]ElementID{{"t1/fw", "t1/ids", "t1/proxy", "t1/lb"}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := net.Successors("t1/ids"); len(s) != 2 {
			b.Fatal("bad successors")
		}
		if p := net.Predecessors("t1/proxy"); len(p) != 2 {
			b.Fatal("bad predecessors")
		}
	}
}

func BenchmarkKindFromString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if KindFromString("middlebox") != KindMiddlebox {
			b.Fatal("bad kind")
		}
	}
}
