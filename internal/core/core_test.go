package core

import (
	"testing"
)

func TestElementIDComponents(t *testing.T) {
	for _, tc := range []struct {
		id      ElementID
		machine MachineID
		vm      VMID
		leaf    string
	}{
		{"m0/pnic", "m0", "", "pnic"},
		{"m0/cpu3/backlog", "m0", "", "backlog"},
		{"m0/vm2/tun", "m0", "vm2", "tun"},
		{"m0/vm2/guest/socket", "m0", "vm2", "socket"},
		{"m0/vm-lb/app", "m0", "vm-lb", "app"},
		{"solo", "solo", "", "solo"},
		{"", "", "", ""},
		{"m0/vm2", "m0", "", "vm2"},       // two parts: middle segment absent
		{"m0/v/x", "m0", "", "x"},         // middle segment too short for "vm"
		{"m0/vswitch/q0", "m0", "", "q0"}, // "v" prefix but not "vm"
		{"/vm1/x", "", "vm1", "x"},
	} {
		if got := tc.id.Machine(); got != tc.machine {
			t.Errorf("%s.Machine() = %s; want %s", tc.id, got, tc.machine)
		}
		if got := tc.id.VM(); got != tc.vm {
			t.Errorf("%s.VM() = %s; want %s", tc.id, got, tc.vm)
		}
		if got := tc.id.Leaf(); got != tc.leaf {
			t.Errorf("%s.Leaf() = %s; want %s", tc.id, got, tc.leaf)
		}
	}
}

// VM() runs on every record of every sweep (topology routing), so it
// must not allocate.
func TestElementIDVMDoesNotAllocate(t *testing.T) {
	ids := []ElementID{"m0/pnic", "m0/vm2/tun", "m0/vm2/guest/socket", "solo"}
	allocs := testing.AllocsPerRun(100, func() {
		for _, id := range ids {
			_ = id.VM()
		}
	})
	if allocs != 0 {
		t.Fatalf("VM() allocs/op = %v; want 0", allocs)
	}
}

func BenchmarkElementIDVM(b *testing.B) {
	ids := []ElementID{"m0/pnic", "m0/vm2/tun", "m0/vm2/guest/socket", "m0/cpu3/backlog"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ids[i%len(ids)].VM()
	}
}

func TestElementKindRoundTrip(t *testing.T) {
	for k := KindUnknown; k <= KindMiddlebox; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v; want %v", k.String(), got, k)
		}
	}
	if KindFromString("nonsense") != KindUnknown {
		t.Error("unknown name should map to KindUnknown")
	}
}

func TestInVirtualizationStack(t *testing.T) {
	stack := []ElementKind{KindPNIC, KindPNICDriver, KindPCPUBacklog, KindNAPIRoutine, KindVSwitch, KindTUN, KindHypervisorIO}
	vmSide := []ElementKind{KindVNIC, KindVNICDriver, KindVCPUBacklog, KindGuestNAPI, KindGuestSocket, KindMiddlebox}
	for _, k := range stack {
		if !k.InVirtualizationStack() {
			t.Errorf("%v should be in the virtualization stack", k)
		}
	}
	for _, k := range vmSide {
		if k.InVirtualizationStack() {
			t.Errorf("%v should not be in the virtualization stack", k)
		}
	}
}

func TestRecordGetSet(t *testing.T) {
	x, y, z := AttrIDFor("x"), AttrIDFor("y"), AttrIDFor("z")
	r := Record{Element: "e"}
	if _, ok := r.Get(x); ok {
		t.Fatal("Get on empty record succeeded")
	}
	r.Set(x, 1)
	r.Set(y, 2)
	r.Set(x, 3) // replace
	if v, _ := r.Get(x); v != 3 {
		t.Fatalf("x = %v; want 3", v)
	}
	if r.GetOr(z, 42) != 42 {
		t.Fatal("GetOr default not applied")
	}
	if r.GetOr(y, 42) != 2 {
		t.Fatal("GetOr ignored present value")
	}
	if len(r.Attrs) != 2 {
		t.Fatalf("Set duplicated attributes: %v", r.Attrs)
	}
}

func TestRecordSubDifferencesCountersOnly(t *testing.T) {
	prev := Record{Timestamp: 1000, Element: "e", Attrs: []Attr{
		{ID: AttrRxBytes, Value: 100},
		{ID: AttrQueueLen, Value: 7},
		{ID: AttrCapacityBps, Value: 1e9},
	}}
	cur := Record{Timestamp: 2000, Element: "e", Attrs: []Attr{
		{ID: AttrRxBytes, Value: 250},
		{ID: AttrQueueLen, Value: 3},
		{ID: AttrCapacityBps, Value: 1e9},
	}}
	d := cur.Sub(prev)
	if v, _ := d.Get(AttrRxBytes); v != 150 {
		t.Fatalf("delta rx_bytes = %v; want 150", v)
	}
	if v, _ := d.Get(AttrQueueLen); v != 3 {
		t.Fatalf("gauge queue_len = %v; want 3 (not differenced)", v)
	}
	if v, _ := d.Get(AttrCapacityBps); v != 1e9 {
		t.Fatalf("static capacity = %v; want 1e9", v)
	}
	if cur.Interval(prev) != 1000 {
		t.Fatalf("interval = %v", cur.Interval(prev))
	}
}

func TestRecordKind(t *testing.T) {
	r := Record{}
	if r.Kind() != KindUnknown {
		t.Fatal("record without kind attr should be unknown")
	}
	r.Set(AttrKind, float64(KindTUN))
	if r.Kind() != KindTUN {
		t.Fatalf("kind = %v; want TUN", r.Kind())
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Timestamp: 5, Element: "eth0", Attrs: []Attr{NamedAttr("rx", 7)}}
	want := "<5, eth0, (rx, 7)>"
	if got := r.String(); got != want {
		t.Fatalf("String() = %q; want %q", got, want)
	}
}

func TestRecordSortAttrs(t *testing.T) {
	r := Record{Attrs: []Attr{NamedAttr("z", 0), NamedAttr("a", 0), NamedAttr("m", 0)}}
	r.SortAttrs()
	if r.Attrs[0].Name() != "a" || r.Attrs[2].Name() != "z" {
		t.Fatalf("sorted attrs: %v", r.Attrs)
	}
}

func TestTopologyNetAndAdd(t *testing.T) {
	topo := NewTopology()
	n := topo.Net("t1")
	if n == nil {
		t.Fatal("Net returned nil")
	}
	if topo.Net("t1") != n {
		t.Fatal("Net not idempotent")
	}
	n.Add("m0/pnic", ElementInfo{Machine: "m0", Kind: KindPNIC})
	if info, ok := n.Elements["m0/pnic"]; !ok || info.Machine != "m0" {
		t.Fatal("element not registered")
	}
}

func TestChainSuccessorsPredecessors(t *testing.T) {
	n := &VirtualNet{Elements: map[ElementID]ElementInfo{}}
	n.Chains = append(n.Chains, []ElementID{"a", "b", "c"})
	n.Chains = append(n.Chains, []ElementID{"b", "d"})

	succ := n.Successors("b")
	if len(succ) != 2 || succ[0] != "c" || succ[1] != "d" {
		t.Fatalf("Successors(b) = %v; want [c d]", succ)
	}
	pred := n.Predecessors("b")
	if len(pred) != 1 || pred[0] != "a" {
		t.Fatalf("Predecessors(b) = %v; want [a]", pred)
	}
	if got := n.Successors("c"); len(got) != 0 {
		t.Fatalf("Successors(c) = %v; want empty", got)
	}
	if got := n.Predecessors("a"); len(got) != 0 {
		t.Fatalf("Predecessors(a) = %v; want empty", got)
	}
	if got := n.Successors("missing"); len(got) != 0 {
		t.Fatalf("Successors(missing) = %v", got)
	}
}
