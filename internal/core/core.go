// Package core defines the shared vocabulary of the PerfSight framework:
// element identities, the unified statistics record format exchanged between
// elements, agents, the controller and diagnostic applications, and the
// attribute names of the counters the paper's instrumentation exposes.
//
// The paper (§4.2) specifies that an agent answers a query with
//
//	<TimeStamp, Element, (attr1, value1), (attr2, value2), ...>
//
// Record is exactly that message. Everything above the element layer —
// agent, wire protocol, controller, diagnosis — speaks only this format,
// which is what decouples statistics collection from analytics (§3).
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// TenantID names a tenant whose virtual cluster spans one or more machines.
type TenantID string

// MachineID names a physical server in the cloud.
type MachineID string

// VMID names a virtual machine on some physical server.
type VMID string

// ElementID uniquely names a software-dataplane element. IDs are
// hierarchical, slash-separated paths:
//
//	m0/pnic                  an element of machine m0's virtualization stack
//	m0/cpu3/backlog          a per-core element
//	m0/vm2/tun               the host-side TUN serving VM vm2
//	m0/vm2/guest/socket      an element inside vm2's guest OS
//	m0/vm2/app               the middlebox software in vm2
type ElementID string

// Machine returns the machine component of the element path.
func (e ElementID) Machine() MachineID {
	s := string(e)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return MachineID(s[:i])
	}
	return MachineID(s)
}

// VM returns the VM component of the element path, or "" if the element
// belongs to the shared virtualization stack. It scans with IndexByte
// instead of splitting, so the hot diagnosis paths that group records by
// VM never allocate here.
func (e ElementID) VM() VMID {
	s := string(e)
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return ""
	}
	rest := s[i+1:]
	j := strings.IndexByte(rest, '/')
	if j < 0 {
		return "" // two components: machine/element, no VM in the path
	}
	seg := rest[:j]
	if len(seg) >= 2 && seg[0] == 'v' && seg[1] == 'm' {
		return VMID(seg)
	}
	return ""
}

// Leaf returns the last path component (the element's local name).
func (e ElementID) Leaf() string {
	s := string(e)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// ElementKind classifies dataplane elements. The kinds follow Figure 5 of
// the paper: the virtualization-stack elements shared by all VMs on a
// machine, and the per-VM elements of the software middlebox.
type ElementKind int

const (
	KindUnknown ElementKind = iota

	// Virtualization stack (shared by all VMs on the machine).
	KindPNIC         // physical NIC (DMA ring)
	KindPNICDriver   // interrupt handler: pNIC ring -> pCPU backlog
	KindPCPUBacklog  // per-core backlog queue (netdev_max_backlog)
	KindNAPIRoutine  // softirq: backlog -> virtual switch frame handler
	KindVSwitch      // Open vSwitch datapath with per-rule statistics
	KindTUN          // TAP/TUN socket queue feeding one VM
	KindHypervisorIO // QEMU I/O handler: TUN <-> vNIC

	// Software middlebox (confined to one VM).
	KindVNIC        // virtual NIC ring
	KindVNICDriver  // guest interrupt handler: vNIC -> vCPU backlog
	KindVCPUBacklog // guest per-core backlog queue
	KindGuestNAPI   // guest softirq: vCPU backlog -> guest socket
	KindGuestSocket // guest kernel socket buffer
	KindMiddlebox   // the middlebox software itself
)

var kindNames = map[ElementKind]string{
	KindUnknown:      "unknown",
	KindPNIC:         "pnic",
	KindPNICDriver:   "pnic_driver",
	KindPCPUBacklog:  "pcpu_backlog",
	KindNAPIRoutine:  "napi",
	KindVSwitch:      "vswitch",
	KindTUN:          "tun",
	KindHypervisorIO: "hypervisor_io",
	KindVNIC:         "vnic",
	KindVNICDriver:   "vnic_driver",
	KindVCPUBacklog:  "vcpu_backlog",
	KindGuestNAPI:    "guest_napi",
	KindGuestSocket:  "guest_socket",
	KindMiddlebox:    "middlebox",
}

func (k ElementKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// InVirtualizationStack reports whether elements of this kind are shared by
// multiple VMs (§2.1 category (a)) as opposed to confined to one middlebox
// VM (category (b)).
func (k ElementKind) InVirtualizationStack() bool {
	switch k {
	case KindPNIC, KindPNICDriver, KindPCPUBacklog, KindNAPIRoutine,
		KindVSwitch, KindTUN, KindHypervisorIO:
		return true
	}
	return false
}

// kindByName inverts kindNames once at init so KindFromString is a map
// lookup instead of a per-call iteration.
var kindByName = func() map[string]ElementKind {
	m := make(map[string]ElementKind, len(kindNames))
	for k, name := range kindNames {
		m[name] = k
	}
	return m
}()

// KindFromString parses the string form produced by ElementKind.String.
func KindFromString(s string) ElementKind {
	if k, ok := kindByName[s]; ok {
		return k
	}
	return KindUnknown
}

// Attr is one (attribute, value) pair of a statistics record. Attributes
// are identified by compact AttrIDs in memory; the JSON form keeps the
// paper's named pairs — see MarshalJSON.
type Attr struct {
	ID    AttrID
	Value float64
	// Payload carries the encoded summary of a SemSketch attribute (a
	// count-min sketch + top-k blob); nil for ordinary scalar attributes.
	// Value then holds the summary epoch, so delta codecs and change
	// detectors that compare Values alone still notice a new summary.
	Payload []byte
}

// NamedAttr builds an Attr from an attribute name, registering unknown
// names as extension attributes. Dynamic producers (per-flow OVS rule
// counters, custom middlebox statistics) use it; static snapshot paths use
// the schema IDs directly.
func NamedAttr(name string, value float64) Attr {
	return Attr{ID: AttrIDFor(name), Value: value}
}

// Name returns the attribute's canonical name.
func (a Attr) Name() string { return AttrName(a.ID) }

// attrJSON is the JSON shape of Attr — the §4.2 named pair. It must stay
// byte-identical to the pre-AttrID encoding for payload-free attrs
// (internal/compat pins it); Payload rides as an extra base64 field only
// when present, so every pre-sketch record is unchanged on the wire.
type attrJSON struct {
	Name    string  `json:"name"`
	Value   float64 `json:"value"`
	Payload []byte  `json:"payload,omitempty"`
}

// MarshalJSON emits the named-pair form, so /history, /metrics consumers
// and v1-codec peers see attribute names, never numeric IDs.
func (a Attr) MarshalJSON() ([]byte, error) {
	return json.Marshal(attrJSON{Name: AttrName(a.ID), Value: a.Value, Payload: a.Payload})
}

// UnmarshalJSON resolves the wire name to an AttrID, auto-registering
// unknown names as extension attributes so records from old (or newer)
// peers round-trip without losing attributes.
func (a *Attr) UnmarshalJSON(b []byte) error {
	var aj attrJSON
	if err := json.Unmarshal(b, &aj); err != nil {
		return err
	}
	a.ID = AttrIDFor(aj.Name)
	a.Value = aj.Value
	if len(aj.Payload) > 0 {
		a.Payload = aj.Payload
	} else {
		a.Payload = nil
	}
	return nil
}

// Record is the unified statistics message format (§4.2):
// a timestamp, the element it describes, and its counter values.
type Record struct {
	// Timestamp is virtual nanoseconds since scenario start for simulated
	// elements, or wall-clock UnixNano for live agents.
	Timestamp int64     `json:"ts"`
	Element   ElementID `json:"element"`
	Attrs     []Attr    `json:"attrs"`
}

// Get returns the value of the attribute. Snapshot paths emit schema
// attributes in ascending ID order, so the attribute with ID k sits at
// index ≤ k−1: Get probes min(k−1, len−1) and walks backward — O(1) with a
// couple of integer compares on snapshot-shaped records — then sweeps the
// indexes after the probe so arbitrarily ordered records stay correct.
func (r Record) Get(id AttrID) (float64, bool) {
	n := len(r.Attrs)
	if n == 0 || id == AttrInvalid {
		return 0, false
	}
	probe := int(id) - 1
	if probe >= n {
		probe = n - 1
	}
	for i := probe; i >= 0; i-- {
		if r.Attrs[i].ID == id {
			return r.Attrs[i].Value, true
		}
	}
	for i := probe + 1; i < n; i++ {
		if r.Attrs[i].ID == id {
			return r.Attrs[i].Value, true
		}
	}
	return 0, false
}

// GetAttr returns the whole attribute — value and payload — for id.
// Payload-carrying attrs (SemSketch) need this; Get returns only the
// numeric value.
func (r Record) GetAttr(id AttrID) (Attr, bool) {
	for i := range r.Attrs {
		if r.Attrs[i].ID == id {
			return r.Attrs[i], true
		}
	}
	return Attr{}, false
}

// GetOr returns the value of the attribute, or def if absent.
func (r Record) GetOr(id AttrID, def float64) float64 {
	if v, ok := r.Get(id); ok {
		return v
	}
	return def
}

// Set replaces or appends the attribute.
func (r *Record) Set(id AttrID, value float64) {
	for i, a := range r.Attrs {
		if a.ID == id {
			r.Attrs[i].Value = value
			return
		}
	}
	r.Attrs = append(r.Attrs, Attr{ID: id, Value: value})
}

// Kind returns the element kind carried in the record, if any.
func (r Record) Kind() ElementKind {
	v, ok := r.Get(AttrKind)
	if !ok {
		return KindUnknown
	}
	return ElementKind(int(v))
}

// Sub returns a record holding r's counters minus prev's, with r's
// timestamp. Non-counter attributes (kind, capacity, queue state) keep r's
// value. It is the building block of the interval statistics in Figure 6
// (GetThroughput, GetPktLoss, GetAvgPktSize all difference two snapshots).
func (r Record) Sub(prev Record) Record {
	return r.SubInto(prev, make([]Attr, 0, len(r.Attrs)))
}

// SubInto is Sub writing its attributes into dst's storage (dst is
// truncated first). Hot loops pass a scratch slice to difference snapshots
// without allocating; with enough capacity it performs zero allocations.
func (r Record) SubInto(prev Record, dst []Attr) Record {
	out := Record{Timestamp: r.Timestamp, Element: r.Element, Attrs: dst[:0]}
	for _, a := range r.Attrs {
		if isMonotonic(a.ID) {
			if pv, ok := prev.Get(a.ID); ok {
				a.Value -= pv
			}
		}
		// a is a copy, so Payload (sketch summaries are not differenced)
		// and non-counter values pass through unchanged.
		out.Attrs = append(out.Attrs, a)
	}
	return out
}

// Interval returns the time spanned by the two records.
func (r Record) Interval(prev Record) time.Duration {
	return time.Duration(r.Timestamp - prev.Timestamp)
}

func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%d, %s", r.Timestamp, r.Element)
	for _, a := range r.Attrs {
		fmt.Fprintf(&b, ", (%s, %g)", AttrName(a.ID), a.Value)
	}
	b.WriteString(">")
	return b.String()
}

// SortAttrs orders the record's attributes by canonical name, for stable
// output on the JSON surfaces (names, not IDs, are what consumers see).
func (r *Record) SortAttrs() {
	sort.Slice(r.Attrs, func(i, j int) bool { return AttrName(r.Attrs[i].ID) < AttrName(r.Attrs[j].ID) })
}

// Element is the abstraction at the heart of PerfSight (§4.1): a logical
// unit on the software datapath that reads traffic from, and writes traffic
// to, its neighbours via buffers or function calls, and that exposes the
// instrumented counters as a Record snapshot.
type Element interface {
	ID() ElementID
	Kind() ElementKind
	// Snapshot returns the element's counters at the given timestamp.
	// Implementations must be safe for concurrent use with the datapath.
	Snapshot(ts int64) Record
}

// Topology describes where every element of every tenant's virtual network
// lives — the controller's vNet[tenantID].elem[elementID] map (§4.3).
type Topology struct {
	Tenants map[TenantID]*VirtualNet `json:"tenants"`
}

// VirtualNet is one tenant's virtual network: its elements, the machine
// hosting each, and the middlebox chain order used by Algorithm 2.
type VirtualNet struct {
	Elements map[ElementID]ElementInfo `json:"elements"`
	// Chains lists the middlebox elements of each service chain in
	// traversal order (source first). Algorithm 2 uses chain order to find
	// a middlebox's predecessors and successors.
	Chains [][]ElementID `json:"chains"`
}

// ElementInfo locates one element and records its static properties.
type ElementInfo struct {
	Machine MachineID   `json:"machine"`
	Kind    ElementKind `json:"kind"`
	// CapacityBps is the element's line rate where meaningful (vNIC, pNIC).
	CapacityBps float64 `json:"capacity_bps,omitempty"`
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{Tenants: make(map[TenantID]*VirtualNet)}
}

// Net returns the tenant's virtual network, creating it if needed.
func (t *Topology) Net(id TenantID) *VirtualNet {
	n, ok := t.Tenants[id]
	if !ok {
		n = &VirtualNet{Elements: make(map[ElementID]ElementInfo)}
		t.Tenants[id] = n
	}
	return n
}

// Add registers an element in the tenant's network.
func (n *VirtualNet) Add(id ElementID, info ElementInfo) {
	n.Elements[id] = info
}

// Successors returns the elements after mb in any chain containing it.
//
// In the common case — mb occurs once, in one chain — the result is a
// capacity-clamped subslice of that chain, so Algorithm 2's pruning inner
// loop performs zero allocations. Only when mb appears at several
// positions do the tails get copied into a fresh slice (the full-slice
// expression forces append to copy rather than scribble on the chain).
func (n *VirtualNet) Successors(mb ElementID) []ElementID {
	var out []ElementID
	for _, chain := range n.Chains {
		for i, e := range chain {
			if e != mb {
				continue
			}
			tail := chain[i+1:]
			if len(tail) == 0 {
				continue
			}
			if out == nil {
				out = tail[:len(tail):len(tail)]
			} else {
				out = append(out, tail...)
			}
		}
	}
	return out
}

// Predecessors returns the elements before mb in any chain containing it.
// Like Successors, the single-occurrence case is allocation-free.
func (n *VirtualNet) Predecessors(mb ElementID) []ElementID {
	var out []ElementID
	for _, chain := range n.Chains {
		for i, e := range chain {
			if e != mb {
				continue
			}
			if i == 0 {
				continue
			}
			if out == nil {
				out = chain[:i:i]
			} else {
				out = append(out, chain[:i]...)
			}
		}
	}
	return out
}
