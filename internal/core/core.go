// Package core defines the shared vocabulary of the PerfSight framework:
// element identities, the unified statistics record format exchanged between
// elements, agents, the controller and diagnostic applications, and the
// attribute names of the counters the paper's instrumentation exposes.
//
// The paper (§4.2) specifies that an agent answers a query with
//
//	<TimeStamp, Element, (attr1, value1), (attr2, value2), ...>
//
// Record is exactly that message. Everything above the element layer —
// agent, wire protocol, controller, diagnosis — speaks only this format,
// which is what decouples statistics collection from analytics (§3).
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TenantID names a tenant whose virtual cluster spans one or more machines.
type TenantID string

// MachineID names a physical server in the cloud.
type MachineID string

// VMID names a virtual machine on some physical server.
type VMID string

// ElementID uniquely names a software-dataplane element. IDs are
// hierarchical, slash-separated paths:
//
//	m0/pnic                  an element of machine m0's virtualization stack
//	m0/cpu3/backlog          a per-core element
//	m0/vm2/tun               the host-side TUN serving VM vm2
//	m0/vm2/guest/socket      an element inside vm2's guest OS
//	m0/vm2/app               the middlebox software in vm2
type ElementID string

// Machine returns the machine component of the element path.
func (e ElementID) Machine() MachineID {
	s := string(e)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return MachineID(s[:i])
	}
	return MachineID(s)
}

// VM returns the VM component of the element path, or "" if the element
// belongs to the shared virtualization stack. It scans with IndexByte
// instead of splitting, so the hot diagnosis paths that group records by
// VM never allocate here.
func (e ElementID) VM() VMID {
	s := string(e)
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return ""
	}
	rest := s[i+1:]
	j := strings.IndexByte(rest, '/')
	if j < 0 {
		return "" // two components: machine/element, no VM in the path
	}
	seg := rest[:j]
	if len(seg) >= 2 && seg[0] == 'v' && seg[1] == 'm' {
		return VMID(seg)
	}
	return ""
}

// Leaf returns the last path component (the element's local name).
func (e ElementID) Leaf() string {
	s := string(e)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// ElementKind classifies dataplane elements. The kinds follow Figure 5 of
// the paper: the virtualization-stack elements shared by all VMs on a
// machine, and the per-VM elements of the software middlebox.
type ElementKind int

const (
	KindUnknown ElementKind = iota

	// Virtualization stack (shared by all VMs on the machine).
	KindPNIC         // physical NIC (DMA ring)
	KindPNICDriver   // interrupt handler: pNIC ring -> pCPU backlog
	KindPCPUBacklog  // per-core backlog queue (netdev_max_backlog)
	KindNAPIRoutine  // softirq: backlog -> virtual switch frame handler
	KindVSwitch      // Open vSwitch datapath with per-rule statistics
	KindTUN          // TAP/TUN socket queue feeding one VM
	KindHypervisorIO // QEMU I/O handler: TUN <-> vNIC

	// Software middlebox (confined to one VM).
	KindVNIC        // virtual NIC ring
	KindVNICDriver  // guest interrupt handler: vNIC -> vCPU backlog
	KindVCPUBacklog // guest per-core backlog queue
	KindGuestNAPI   // guest softirq: vCPU backlog -> guest socket
	KindGuestSocket // guest kernel socket buffer
	KindMiddlebox   // the middlebox software itself
)

var kindNames = map[ElementKind]string{
	KindUnknown:      "unknown",
	KindPNIC:         "pnic",
	KindPNICDriver:   "pnic_driver",
	KindPCPUBacklog:  "pcpu_backlog",
	KindNAPIRoutine:  "napi",
	KindVSwitch:      "vswitch",
	KindTUN:          "tun",
	KindHypervisorIO: "hypervisor_io",
	KindVNIC:         "vnic",
	KindVNICDriver:   "vnic_driver",
	KindVCPUBacklog:  "vcpu_backlog",
	KindGuestNAPI:    "guest_napi",
	KindGuestSocket:  "guest_socket",
	KindMiddlebox:    "middlebox",
}

func (k ElementKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// InVirtualizationStack reports whether elements of this kind are shared by
// multiple VMs (§2.1 category (a)) as opposed to confined to one middlebox
// VM (category (b)).
func (k ElementKind) InVirtualizationStack() bool {
	switch k {
	case KindPNIC, KindPNICDriver, KindPCPUBacklog, KindNAPIRoutine,
		KindVSwitch, KindTUN, KindHypervisorIO:
		return true
	}
	return false
}

// KindFromString parses the string form produced by ElementKind.String.
func KindFromString(s string) ElementKind {
	for k, name := range kindNames {
		if name == s {
			return k
		}
	}
	return KindUnknown
}

// Attribute names of the counters PerfSight gathers (§4.1). The prototype
// implements three counter types in each element — a packet counter, a byte
// counter, and an I/O time counter — from which drop rates, throughput and
// packet size are derived (Figure 6).
const (
	AttrKind = "kind" // element kind (value: ElementKind as float)

	// Packet/byte counters, receive and transmit side.
	AttrRxPackets = "rx_packets"
	AttrRxBytes   = "rx_bytes"
	AttrTxPackets = "tx_packets"
	AttrTxBytes   = "tx_bytes"

	// Drop counters. Drops are attributed to the element whose enqueue or
	// processing branch discarded the packet (§4.1: "possible code branches
	// that might drop it").
	AttrDropPackets = "drop_packets"
	AttrDropBytes   = "drop_bytes"

	// Occupancy of the element's buffer, if it has one.
	AttrQueueLen = "queue_len"
	AttrQueueCap = "queue_cap"

	// I/O time counters (§5.2): bytes moved by the input/output methods and
	// the time those methods spent (block time + memory-copy time), in
	// nanoseconds of virtual time.
	AttrInBytes   = "in_bytes"
	AttrInTimeNS  = "in_time_ns"
	AttrOutBytes  = "out_bytes"
	AttrOutTimeNS = "out_time_ns"

	// Static configuration attributes.
	AttrCapacityBps = "capacity_bps" // vNIC / pNIC line rate
	AttrType        = "type"         // 1.0 if the element is a middlebox

	// Machine-level utilization gauges, published by the per-machine host
	// pseudo-element. Algorithm 1's rule book consults them to disambiguate
	// symptoms that share a drop location (§5.1: "the operator can combine
	// this with other symptoms such as CPU utilization and NIC throughput").
	AttrCPUUtil    = "cpu_util"    // fraction of machine CPU busy
	AttrMembusUtil = "membus_util" // fraction of memory-bus capacity used
	AttrMemBytes   = "mem_bytes"   // cumulative memory-hog bytes moved
)

// Attr is one (attribute, value) pair of a statistics record.
type Attr struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Record is the unified statistics message format (§4.2):
// a timestamp, the element it describes, and its counter values.
type Record struct {
	// Timestamp is virtual nanoseconds since scenario start for simulated
	// elements, or wall-clock UnixNano for live agents.
	Timestamp int64     `json:"ts"`
	Element   ElementID `json:"element"`
	Attrs     []Attr    `json:"attrs"`
}

// Get returns the value of the named attribute.
func (r Record) Get(name string) (float64, bool) {
	for _, a := range r.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return 0, false
}

// GetOr returns the value of the named attribute, or def if absent.
func (r Record) GetOr(name string, def float64) float64 {
	if v, ok := r.Get(name); ok {
		return v
	}
	return def
}

// Set replaces or appends the named attribute.
func (r *Record) Set(name string, value float64) {
	for i, a := range r.Attrs {
		if a.Name == name {
			r.Attrs[i].Value = value
			return
		}
	}
	r.Attrs = append(r.Attrs, Attr{Name: name, Value: value})
}

// Kind returns the element kind carried in the record, if any.
func (r Record) Kind() ElementKind {
	v, ok := r.Get(AttrKind)
	if !ok {
		return KindUnknown
	}
	return ElementKind(int(v))
}

// Sub returns a record holding r's counters minus prev's, with r's
// timestamp. Non-counter attributes (kind, capacity, queue state) keep r's
// value. It is the building block of the interval statistics in Figure 6
// (GetThroughput, GetPktLoss, GetAvgPktSize all difference two snapshots).
func (r Record) Sub(prev Record) Record {
	out := Record{Timestamp: r.Timestamp, Element: r.Element}
	out.Attrs = make([]Attr, 0, len(r.Attrs))
	for _, a := range r.Attrs {
		v := a.Value
		if isMonotonic(a.Name) {
			if pv, ok := prev.Get(a.Name); ok {
				v -= pv
			}
		}
		out.Attrs = append(out.Attrs, Attr{Name: a.Name, Value: v})
	}
	return out
}

// isMonotonic reports whether the attribute is a monotonically increasing
// counter (as opposed to a gauge or static configuration value).
func isMonotonic(name string) bool {
	switch name {
	case AttrRxPackets, AttrRxBytes, AttrTxPackets, AttrTxBytes,
		AttrDropPackets, AttrDropBytes,
		AttrInBytes, AttrInTimeNS, AttrOutBytes, AttrOutTimeNS:
		return true
	}
	return false
}

// Interval returns the time spanned by the two records.
func (r Record) Interval(prev Record) time.Duration {
	return time.Duration(r.Timestamp - prev.Timestamp)
}

func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%d, %s", r.Timestamp, r.Element)
	for _, a := range r.Attrs {
		fmt.Fprintf(&b, ", (%s, %g)", a.Name, a.Value)
	}
	b.WriteString(">")
	return b.String()
}

// SortAttrs orders the record's attributes by name, for stable output.
func (r *Record) SortAttrs() {
	sort.Slice(r.Attrs, func(i, j int) bool { return r.Attrs[i].Name < r.Attrs[j].Name })
}

// Element is the abstraction at the heart of PerfSight (§4.1): a logical
// unit on the software datapath that reads traffic from, and writes traffic
// to, its neighbours via buffers or function calls, and that exposes the
// instrumented counters as a Record snapshot.
type Element interface {
	ID() ElementID
	Kind() ElementKind
	// Snapshot returns the element's counters at the given timestamp.
	// Implementations must be safe for concurrent use with the datapath.
	Snapshot(ts int64) Record
}

// Topology describes where every element of every tenant's virtual network
// lives — the controller's vNet[tenantID].elem[elementID] map (§4.3).
type Topology struct {
	Tenants map[TenantID]*VirtualNet `json:"tenants"`
}

// VirtualNet is one tenant's virtual network: its elements, the machine
// hosting each, and the middlebox chain order used by Algorithm 2.
type VirtualNet struct {
	Elements map[ElementID]ElementInfo `json:"elements"`
	// Chains lists the middlebox elements of each service chain in
	// traversal order (source first). Algorithm 2 uses chain order to find
	// a middlebox's predecessors and successors.
	Chains [][]ElementID `json:"chains"`
}

// ElementInfo locates one element and records its static properties.
type ElementInfo struct {
	Machine MachineID   `json:"machine"`
	Kind    ElementKind `json:"kind"`
	// CapacityBps is the element's line rate where meaningful (vNIC, pNIC).
	CapacityBps float64 `json:"capacity_bps,omitempty"`
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{Tenants: make(map[TenantID]*VirtualNet)}
}

// Net returns the tenant's virtual network, creating it if needed.
func (t *Topology) Net(id TenantID) *VirtualNet {
	n, ok := t.Tenants[id]
	if !ok {
		n = &VirtualNet{Elements: make(map[ElementID]ElementInfo)}
		t.Tenants[id] = n
	}
	return n
}

// Add registers an element in the tenant's network.
func (n *VirtualNet) Add(id ElementID, info ElementInfo) {
	n.Elements[id] = info
}

// Successors returns the elements after mb in any chain containing it.
func (n *VirtualNet) Successors(mb ElementID) []ElementID {
	var out []ElementID
	for _, chain := range n.Chains {
		for i, e := range chain {
			if e == mb {
				out = append(out, chain[i+1:]...)
			}
		}
	}
	return out
}

// Predecessors returns the elements before mb in any chain containing it.
func (n *VirtualNet) Predecessors(mb ElementID) []ElementID {
	var out []ElementID
	for _, chain := range n.Chains {
		for i, e := range chain {
			if e == mb {
				out = append(out, chain[:i]...)
			}
		}
	}
	return out
}
