package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// AttrID is the compact identifier of one statistics attribute. The paper's
// record format names attributes with strings on the wire (§4.2), but every
// layer of this implementation speaks IDs internally: Record lookup, the
// history store's ring keys, wire v2's attribute coding and the diagnosis
// rule matching all index by AttrID, and convert to the canonical name only
// at the JSON/v1 boundary.
//
// The ID space has two regions:
//
//	1..SchemaMax      schema attributes, fixed at compile time, declared in
//	                  schemaDefs. Their numeric order matches the order the
//	                  standard snapshot paths emit them, which is what makes
//	                  Record.Get's dense probe O(1) on snapshot records.
//	AttrExtBase..     extension attributes, registered at runtime (per-flow
//	                  OVS rule counters, size-histogram buckets, middlebox
//	                  custom counters, names learned from old peers).
//	                  Extension IDs are process-local: they are never sent on
//	                  the wire as numbers, only as their names.
//
// The gap between SchemaMax and AttrExtBase is reserved for future schema
// attributes so extension IDs never need to move.
type AttrID uint16

// AttrInvalid is the zero AttrID; no attribute uses it.
const AttrInvalid AttrID = 0

// Schema attribute IDs (§4.1's counters plus static configuration and the
// host gauges). The declaration order is the order the snapshot paths emit
// attributes, so IDs within one record ascend.
const (
	AttrKind AttrID = iota + 1 // element kind (value: ElementKind as float)
	AttrType                   // 1.0 if the element is a middlebox

	// Packet/byte counters, receive and transmit side.
	AttrRxPackets
	AttrRxBytes
	AttrTxPackets
	AttrTxBytes

	// Drop counters. Drops are attributed to the element whose enqueue or
	// processing branch discarded the packet (§4.1: "possible code branches
	// that might drop it").
	AttrDropPackets
	AttrDropBytes

	// Static configuration: vNIC / pNIC line rate.
	AttrCapacityBps

	// Occupancy of the element's buffer, if it has one.
	AttrQueueLen
	AttrQueueCap

	// I/O time counters (§5.2): bytes moved by the input/output methods and
	// the time those methods spent (block time + memory-copy time), in
	// nanoseconds of virtual time.
	AttrInBytes
	AttrInTimeNS
	AttrOutBytes
	AttrOutTimeNS

	// Machine-level utilization gauges, published by the per-machine host
	// pseudo-element. Algorithm 1's rule book consults them to disambiguate
	// symptoms that share a drop location (§5.1).
	AttrCPUUtil
	AttrMembusUtil
	AttrMemBytes // cumulative memory-hog bytes moved

	// SchemaMax is the highest schema AttrID. Wire v2 encodes IDs in
	// 1..SchemaMax as a single byte; anything above travels by name.
	SchemaMax AttrID = iota
)

// AttrExtBase is the first extension AttrID. IDs in (SchemaMax,
// AttrExtBase) are reserved for future schema growth.
const AttrExtBase AttrID = 64

// maxExtAttrs bounds the extension registry so hostile input (a peer
// streaming unique attribute names) cannot grow it without limit.
const maxExtAttrs = 16384

// AttrSemantics classifies how an attribute's value evolves; Record.Sub
// differences counters and passes gauges/config through unchanged.
type AttrSemantics uint8

const (
	// SemGauge values go up and down (queue occupancy, utilization).
	SemGauge AttrSemantics = iota
	// SemCounter values increase monotonically (packet/byte/time counters).
	SemCounter
	// SemConfig values are static configuration (kind, type, capacity).
	SemConfig
	// SemSketch attributes carry an encoded summary blob in Attr.Payload
	// (count-min sketch + heavy-hitter top-k); the numeric Value is the
	// summary's epoch, which advances whenever the summary content
	// changes. Sub passes sketch attrs through undifferenced.
	SemSketch
)

func (s AttrSemantics) String() string {
	switch s {
	case SemCounter:
		return "counter"
	case SemConfig:
		return "config"
	case SemSketch:
		return "sketch"
	}
	return "gauge"
}

// AttrDef declares one attribute of the statistics schema: its ID, its
// canonical wire/JSON name, how its value evolves, and its unit.
type AttrDef struct {
	ID        AttrID
	Name      string
	Semantics AttrSemantics
	Unit      string
}

// schemaDefs is the central schema registry, indexed by AttrID.
var schemaDefs = [SchemaMax + 1]AttrDef{
	AttrKind:        {AttrKind, "kind", SemConfig, "enum"},
	AttrType:        {AttrType, "type", SemConfig, "flag"},
	AttrRxPackets:   {AttrRxPackets, "rx_packets", SemCounter, "packets"},
	AttrRxBytes:     {AttrRxBytes, "rx_bytes", SemCounter, "bytes"},
	AttrTxPackets:   {AttrTxPackets, "tx_packets", SemCounter, "packets"},
	AttrTxBytes:     {AttrTxBytes, "tx_bytes", SemCounter, "bytes"},
	AttrDropPackets: {AttrDropPackets, "drop_packets", SemCounter, "packets"},
	AttrDropBytes:   {AttrDropBytes, "drop_bytes", SemCounter, "bytes"},
	AttrCapacityBps: {AttrCapacityBps, "capacity_bps", SemConfig, "bps"},
	AttrQueueLen:    {AttrQueueLen, "queue_len", SemGauge, "packets"},
	AttrQueueCap:    {AttrQueueCap, "queue_cap", SemConfig, "packets"},
	AttrInBytes:     {AttrInBytes, "in_bytes", SemCounter, "bytes"},
	AttrInTimeNS:    {AttrInTimeNS, "in_time_ns", SemCounter, "ns"},
	AttrOutBytes:    {AttrOutBytes, "out_bytes", SemCounter, "bytes"},
	AttrOutTimeNS:   {AttrOutTimeNS, "out_time_ns", SemCounter, "ns"},
	AttrCPUUtil:     {AttrCPUUtil, "cpu_util", SemGauge, "fraction"},
	AttrMembusUtil:  {AttrMembusUtil, "membus_util", SemGauge, "fraction"},
	// AttrMemBytes is deliberately a gauge: the memory-hog experiment reads
	// the cumulative value directly, so Sub must not difference it.
	AttrMemBytes: {AttrMemBytes, "mem_bytes", SemGauge, "bytes"},
}

// schemaByName maps canonical names back to schema IDs, built once at init.
var schemaByName = func() map[string]AttrID {
	m := make(map[string]AttrID, SchemaMax)
	for id := AttrID(1); id <= SchemaMax; id++ {
		m[schemaDefs[id].Name] = id
	}
	return m
}()

// monotonicSchema is the Record.Sub fast path: true for schema counters.
var monotonicSchema = func() [SchemaMax + 1]bool {
	var t [SchemaMax + 1]bool
	for id := AttrID(1); id <= SchemaMax; id++ {
		t[id] = schemaDefs[id].Semantics == SemCounter
	}
	return t
}()

// extTable is the immutable snapshot of the extension-attribute registry.
// Readers load it atomically; writers copy, extend, and swap under extMu.
type extTable struct {
	byName map[string]AttrID
	defs   []AttrDef // defs[i] has ID AttrExtBase+i
}

var (
	extMu  sync.Mutex
	extCur atomic.Pointer[extTable]

	// extRejected counts RegisterAttr calls refused because the extension
	// registry hit maxExtAttrs. Before this counter existed, cap
	// exhaustion was invisible: AttrIDFor silently dropped the attribute.
	// Telemetry surfaces it as perfsight_schema_ext_rejected_total.
	extRejected atomic.Uint64
)

// FlowSketchAttrName is the extension attribute carrying an element's
// encoded per-flow summary (count-min sketch + heavy-hitter top-k).
// Attr.Payload holds the blob; Attr.Value holds the summary epoch.
const FlowSketchAttrName = "flow_sketch"

// attrFlowSketch is registered eagerly in init so every layer — including
// wire decoders that resolve attrs by name via AttrIDFor, which would
// otherwise default the name to SemGauge — sees SemSketch semantics
// regardless of initialization order.
var attrFlowSketch AttrID

func init() {
	extCur.Store(&extTable{byName: map[string]AttrID{}})
	attrFlowSketch, _ = RegisterAttr(FlowSketchAttrName, SemSketch, "blob")
}

// SketchAttrID returns the AttrID of the flow_sketch summary attribute.
func SketchAttrID() AttrID { return attrFlowSketch }

// RegisterAttr registers a runtime extension attribute (a middlebox-specific
// counter, a per-flow statistic) and returns its process-local AttrID.
// Registering a name that already exists — schema or extension — returns the
// existing ID; the declared semantics and unit then apply only if the name
// was new. It fails once maxExtAttrs distinct extension names exist.
func RegisterAttr(name string, sem AttrSemantics, unit string) (AttrID, error) {
	if id, ok := LookupAttr(name); ok {
		return id, nil
	}
	extMu.Lock()
	defer extMu.Unlock()
	cur := extCur.Load()
	if id, ok := cur.byName[name]; ok {
		return id, nil
	}
	if len(cur.defs) >= maxExtAttrs {
		extRejected.Add(1)
		return AttrInvalid, fmt.Errorf("core: extension attribute registry full (%d attrs), cannot register %q", maxExtAttrs, name)
	}
	id := AttrExtBase + AttrID(len(cur.defs))
	next := &extTable{
		byName: make(map[string]AttrID, len(cur.byName)+1),
		defs:   make([]AttrDef, len(cur.defs), len(cur.defs)+1),
	}
	for k, v := range cur.byName {
		next.byName[k] = v
	}
	copy(next.defs, cur.defs)
	next.byName[name] = id
	next.defs = append(next.defs, AttrDef{ID: id, Name: name, Semantics: sem, Unit: unit})
	extCur.Store(next)
	return id, nil
}

// LookupAttr resolves an attribute name to its ID without registering
// anything. It is what boundary code (HTTP query params, wire attr filters)
// uses: an unknown name simply cannot match any record.
func LookupAttr(name string) (AttrID, bool) {
	if id, ok := schemaByName[name]; ok {
		return id, true
	}
	if id, ok := extCur.Load().byName[name]; ok {
		return id, true
	}
	return AttrInvalid, false
}

// AttrIDFor resolves a name to an ID, auto-registering unknown names as
// extension gauges. Decode paths use it so attributes from old peers (or
// future schemas) survive with their name intact. When the extension
// registry is full it returns AttrInvalid — the one case a name is dropped,
// bounded by maxExtAttrs.
func AttrIDFor(name string) AttrID {
	if id, ok := LookupAttr(name); ok {
		return id
	}
	id, err := RegisterAttr(name, SemGauge, "")
	if err != nil {
		return AttrInvalid
	}
	return id
}

// AttrName returns the canonical name of an attribute — the string the JSON
// surface and the v1 codec emit.
func AttrName(id AttrID) string {
	if id >= 1 && id <= SchemaMax {
		return schemaDefs[id].Name
	}
	if id >= AttrExtBase {
		ext := extCur.Load()
		if i := int(id - AttrExtBase); i < len(ext.defs) {
			return ext.defs[i].Name
		}
	}
	return fmt.Sprintf("attr(%d)", uint16(id))
}

// AttrSemanticsOf returns how the attribute's value evolves. Unknown IDs
// are gauges.
func AttrSemanticsOf(id AttrID) AttrSemantics {
	if id >= 1 && id <= SchemaMax {
		return schemaDefs[id].Semantics
	}
	if id >= AttrExtBase {
		ext := extCur.Load()
		if i := int(id - AttrExtBase); i < len(ext.defs) {
			return ext.defs[i].Semantics
		}
	}
	return SemGauge
}

// AttrUnit returns the attribute's unit string ("" when undeclared).
func AttrUnit(id AttrID) string {
	if id >= 1 && id <= SchemaMax {
		return schemaDefs[id].Unit
	}
	if id >= AttrExtBase {
		ext := extCur.Load()
		if i := int(id - AttrExtBase); i < len(ext.defs) {
			return ext.defs[i].Unit
		}
	}
	return ""
}

// IsSchemaAttr reports whether id is a compile-time schema attribute —
// the set wire v2 may encode as a bare 1-byte ID.
func IsSchemaAttr(id AttrID) bool { return id >= 1 && id <= SchemaMax }

// ExtAttrCount returns how many extension attributes are registered, and
// ExtRejected how many registrations the maxExtAttrs cap has refused.
// Both feed /healthz so an operator can see a tenant mix approaching (or
// blowing through) the registry cap instead of silently losing names.
func ExtAttrCount() int { return len(extCur.Load().defs) }

// ExtRejected returns the number of extension registrations refused at
// the registry cap since process start.
func ExtRejected() uint64 { return extRejected.Load() }

// SchemaAttrs returns a copy of the schema attribute definitions.
func SchemaAttrs() []AttrDef {
	out := make([]AttrDef, 0, SchemaMax)
	for id := AttrID(1); id <= SchemaMax; id++ {
		out = append(out, schemaDefs[id])
	}
	return out
}

// isMonotonic reports whether the attribute is a monotonically increasing
// counter (as opposed to a gauge or static configuration value).
func isMonotonic(id AttrID) bool {
	if id <= SchemaMax {
		return monotonicSchema[id]
	}
	return AttrSemanticsOf(id) == SemCounter
}
