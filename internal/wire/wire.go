// Package wire defines the message protocol between the PerfSight
// controller and its per-server agents: length-prefixed frames over TCP.
// The payloads carry the §4.2 unified record format, so the protocol is
// oblivious to element diversity — extending the statistics set needs no
// protocol change.
//
// Two payload codecs exist. Every connection starts with the JSON codec;
// a controller may send a hello frame (always JSON) to negotiate the
// compact binary codec v2 (see v2.go), with transparent fallback to JSON
// when the peer predates or refuses it.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"perfsight/internal/core"
)

// MaxFrame bounds a frame to keep a misbehaving peer from ballooning
// memory.
const MaxFrame = 16 << 20

// MsgType enumerates protocol messages.
type MsgType string

const (
	// TypeQuery asks an agent for element statistics.
	TypeQuery MsgType = "query"
	// TypeResponse carries the requested records.
	TypeResponse MsgType = "response"
	// TypeListElements asks for the agent's element inventory.
	TypeListElements MsgType = "list"
	// TypeElementList carries the inventory.
	TypeElementList MsgType = "elements"
	// TypePing / TypePong measure agent liveness and response time.
	TypePing MsgType = "ping"
	TypePong MsgType = "pong"
	// TypeError reports a failure for the request with the same ID.
	TypeError MsgType = "error"
	// TypeHello / TypeHelloAck negotiate the payload codec for the rest
	// of the connection. Hello frames are always JSON-encoded so peers
	// that predate codec v2 can parse them; an old agent answers a hello
	// with TypeError ("unknown message type"), which the client reads as
	// "JSON only".
	TypeHello    MsgType = "hello"
	TypeHelloAck MsgType = "hello_ack"
	// TypeStreamStart flips a negotiated connection into push mode: the
	// agent streams TypeStreamData frames at adaptive cadence until the
	// connection closes. Only valid after a hello granted the stream
	// capability.
	TypeStreamStart MsgType = "stream_start"
	// TypeStreamData is one pushed batch of records (agent → controller),
	// sequenced so the receiver can count gaps.
	TypeStreamData MsgType = "stream_data"
	// TypeStreamControl is the controller's backpressure signal
	// (controller → agent): it raises the sender's cadence floor while
	// ingest queues are congested, and releases it when they drain.
	TypeStreamControl MsgType = "stream_control"
)

// Codec names carried in Hello frames.
const (
	CodecJSON = "json"
	CodecV2   = "v2"
)

// Hello is the codec-negotiation payload of TypeHello/TypeHelloAck.
type Hello struct {
	// Codecs lists wire codecs in preference order (offer), or carries
	// the single granted codec (ack). An ack without CodecV2 means the
	// connection stays on JSON.
	Codecs []string `json:"codecs,omitempty"`
	// Delta requests (offer) or grants (ack) delta-encoded responses:
	// the agent resends only attrs whose values changed since that
	// connection's previous response for the same element.
	Delta bool `json:"delta,omitempty"`
	// Stream requests (offer) or grants (ack) push streaming: the
	// connection accepts a TypeStreamStart and pushes TypeStreamData
	// frames. Old agents never set it in an ack, so a controller falls
	// back to pull sweeps transparently.
	Stream bool `json:"stream,omitempty"`
	// Sketch requests (offer) or grants (ack) sketch-based flow
	// statistics: the agent ships one constant-size `flow_sketch` payload
	// attr per vswitch instead of enumerating per-rule counters. A peer
	// that never offers it (an old controller) gets the legacy per-flow
	// enumeration, so mixed versions interoperate.
	Sketch bool `json:"sketch,omitempty"`
	// Spans requests (offer) or grants (ack) span-context piggybacking:
	// the agent decorates v2 response and stream_data frames with a
	// compact span section (its clock reading plus per-channel gather
	// spans) that the controller skew-corrects onto its own timeline.
	// Granted only alongside codec v2 — the JSON encoding is unaffected,
	// and a peer that never offers it keeps the plain agent_ns split.
	Spans bool `json:"spans,omitempty"`
}

// Span is one agent-side span piggybacked on a v2 response or
// stream_data frame. IDs and parents are frame-local (assigned from 1
// per frame); the controller remaps them into its trace and re-anchors
// Parent 0 spans under its own gather span. StartNS is on the *agent's*
// clock — the receiver skew-corrects it (see telemetry.SkewEstimator).
type Span struct {
	ID      uint64
	Parent  uint64
	Name    string
	StartNS int64
	DurNS   int64
	Status  string // "" = ok
}

// StreamInfo parameterizes push streaming; it rides TypeStreamStart
// (cadence bounds), TypeStreamData (sequence), and TypeStreamControl
// (throttle) frames.
type StreamInfo struct {
	// CadenceMinNS/CadenceMaxNS bound the adaptive push cadence on a
	// stream_start: the agent sends every CadenceMinNS while counters
	// move and decays toward CadenceMaxNS when quiescent. The agent may
	// clamp both to its own configured bounds; the effective bounds are
	// echoed on the first stream_data frame.
	CadenceMinNS int64 `json:"cadence_min_ns,omitempty"`
	CadenceMaxNS int64 `json:"cadence_max_ns,omitempty"`
	// Seq numbers stream_data frames per connection, starting at 1, so
	// the receiver can detect sender-side restarts and count gaps.
	Seq uint64 `json:"seq,omitempty"`
	// ThrottleNS is the backpressure signal on a stream_control frame: a
	// new cadence floor the sender must respect (0 releases the throttle
	// back to the negotiated CadenceMinNS).
	ThrottleNS int64 `json:"throttle_ns,omitempty"`
}

// Codec turns Messages into frame payloads and back. JSONCodec is
// stateless; V2Codec carries per-connection string tables and delta
// state, so use one instance per connection endpoint and do not share it
// across goroutines.
type Codec interface {
	Name() string
	// Encode returns the frame payload for m. The slice may alias an
	// internal buffer that is overwritten by the next Encode call.
	Encode(m *Message) ([]byte, error)
	// Decode parses one frame payload. Returned Records own their
	// storage and stay valid across subsequent calls.
	Decode(payload []byte) (*Message, error)
}

// JSONCodec is the v1 payload codec: one JSON object per frame.
type JSONCodec struct{}

// Name implements Codec.
func (JSONCodec) Name() string { return CodecJSON }

// Encode implements Codec.
func (JSONCodec) Encode(m *Message) ([]byte, error) { return Encode(m) }

// Decode implements Codec.
func (JSONCodec) Decode(payload []byte) (*Message, error) { return Decode(payload) }

// Query requests statistics from an agent.
type Query struct {
	// Elements to fetch; empty with All=true fetches everything.
	Elements []core.ElementID `json:"elements,omitempty"`
	// Attrs filters the returned attributes (empty = all).
	Attrs []string `json:"attrs,omitempty"`
	All   bool     `json:"all,omitempty"`
}

// ElementMeta describes one element in an inventory response.
type ElementMeta struct {
	ID   core.ElementID   `json:"id"`
	Kind core.ElementKind `json:"kind"`
}

// Message is one protocol frame.
type Message struct {
	Type     MsgType        `json:"type"`
	ID       uint64         `json:"id"`
	Machine  core.MachineID `json:"machine,omitempty"`
	Query    *Query         `json:"query,omitempty"`
	Records  []core.Record  `json:"records,omitempty"`
	Elements []ElementMeta  `json:"element_list,omitempty"`
	Error    string         `json:"error,omitempty"`
	// Hello carries codec negotiation; only valid on TypeHello and
	// TypeHelloAck frames, which are always JSON-encoded.
	Hello *Hello `json:"hello,omitempty"`
	// Stream carries push-streaming parameters; only valid on the
	// TypeStream* frames.
	Stream *StreamInfo `json:"stream,omitempty"`

	// TraceID correlates a request/response pair with the controller's
	// query-lifecycle trace (internal/telemetry); agents echo it back.
	// Zero means untraced.
	TraceID uint64 `json:"trace_id,omitempty"`
	// AgentNS is the agent-side handling time of the request in
	// nanoseconds, set on responses so the controller can split its
	// observed round trip into transport vs. agent-gather time.
	AgentNS int64 `json:"agent_ns,omitempty"`
	// AgentTS is the agent's clock (unix nanoseconds) when it finished
	// handling — the t3 of the midpoint clock-skew estimate. It rides
	// JSON hello_ack frames (seeding skew for push streams) and the v2
	// span section; it is never JSON-encoded on data frames, because
	// agents only set it once the spans capability is granted (v2-only).
	AgentTS int64 `json:"agent_ts,omitempty"`
	// AgentSpans carries the agent's piggybacked spans. v2-only — the
	// json:"-" tag guarantees the JSON codec is byte-identical with and
	// without the spans capability. On decode the slice aliases the
	// codec's scratch buffer and is only valid until the next Decode:
	// consumers must fold spans into a trace before reading more frames.
	AgentSpans []Span `json:"-"`
}

// Encode marshals a message into a frame payload (without the length
// header). Split from Write so instrumented callers can time the encode
// and transmit stages separately.
func Encode(m *Message) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("wire: frame too large: %d bytes", len(payload))
	}
	return payload, nil
}

// Decode parses a frame payload produced by Encode/ReadFrame.
func Decode(payload []byte) (*Message, error) {
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return &m, nil
}

// WriteFrame sends an encoded payload: 4-byte big-endian length, then
// the bytes.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame too large: %d bytes", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// ReadFrame receives one raw frame payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var buf []byte
	return ReadFrameBuf(r, &buf)
}

// ReadFrameBuf receives one raw frame payload into *buf, growing it only
// when the frame outsizes its capacity. The returned slice aliases *buf
// and is valid until the next call with the same buffer — connection
// loops hold one buffer (typically from GetBuf) so steady-state reads
// allocate nothing.
func ReadFrameBuf(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return payload, nil
}

// bufPool recycles frame buffers across connections, so a freshly
// accepted connection starts with a warmed buffer instead of growing its
// own from scratch.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf borrows a frame buffer from the shared pool; pair with PutBuf
// when the connection ends.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a (possibly grown) frame buffer to the shared pool.
func PutBuf(b *[]byte) {
	if b == nil {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Write frames and sends a message: 4-byte big-endian length, then JSON.
func Write(w io.Writer, m *Message) error {
	payload, err := Encode(m)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// Read receives one framed message.
func Read(r io.Reader) (*Message, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return Decode(payload)
}

// AttrFilter selects a subset of attributes. Build one per query with
// NewAttrFilter: the wire's attribute names are compiled once to IDs —
// schema attrs become bits in a fixed mask, extension attrs a small ID set
// — so matching each record attribute is an integer test, not a string
// map probe. Unknown names resolve to nothing (they cannot match any
// record) and are deliberately not registered, so a hostile peer cannot
// grow the extension registry by streaming made-up query names.
type AttrFilter struct {
	mask uint32 // bit i set: keep schema attr i (SchemaMax < 32)
	ext  map[core.AttrID]struct{}
	n    int // requested name count, a capacity hint for Apply
}

// NewAttrFilter compiles an attribute name list; empty names return a
// nil filter, which passes records through untouched.
func NewAttrFilter(names []string) *AttrFilter {
	if len(names) == 0 {
		return nil
	}
	f := &AttrFilter{n: len(names)}
	for _, name := range names {
		id, ok := core.LookupAttr(name)
		if !ok {
			continue
		}
		if core.IsSchemaAttr(id) {
			f.mask |= 1 << id
			continue
		}
		if f.ext == nil {
			f.ext = make(map[core.AttrID]struct{}, len(names))
		}
		f.ext[id] = struct{}{}
	}
	return f
}

// Match reports whether the filter keeps the attribute.
func (f *AttrFilter) Match(id core.AttrID) bool {
	if core.IsSchemaAttr(id) {
		return f.mask&(1<<id) != 0
	}
	_, ok := f.ext[id]
	return ok
}

// Apply returns a copy of rec keeping only the filter's attributes, in
// record order. A nil filter returns rec unchanged.
func (f *AttrFilter) Apply(rec core.Record) core.Record {
	if f == nil {
		return rec
	}
	n := len(rec.Attrs)
	if f.n < n {
		n = f.n
	}
	out := core.Record{Timestamp: rec.Timestamp, Element: rec.Element,
		Attrs: make([]core.Attr, 0, n)}
	for _, a := range rec.Attrs {
		if f.Match(a.ID) {
			out.Attrs = append(out.Attrs, a)
		}
	}
	return out
}

// FilterAttrs returns a copy of rec keeping only the named attributes
// (all when names is empty). Callers filtering many records against the
// same names should build one AttrFilter instead.
func FilterAttrs(rec core.Record, names []string) core.Record {
	return NewAttrFilter(names).Apply(rec)
}
