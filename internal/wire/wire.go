// Package wire defines the message protocol between the PerfSight
// controller and its per-server agents: length-prefixed JSON frames over
// TCP. The payloads carry the §4.2 unified record format, so the protocol
// is oblivious to element diversity — extending the statistics set needs
// no protocol change.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"perfsight/internal/core"
)

// MaxFrame bounds a frame to keep a misbehaving peer from ballooning
// memory.
const MaxFrame = 16 << 20

// MsgType enumerates protocol messages.
type MsgType string

const (
	// TypeQuery asks an agent for element statistics.
	TypeQuery MsgType = "query"
	// TypeResponse carries the requested records.
	TypeResponse MsgType = "response"
	// TypeListElements asks for the agent's element inventory.
	TypeListElements MsgType = "list"
	// TypeElementList carries the inventory.
	TypeElementList MsgType = "elements"
	// TypePing / TypePong measure agent liveness and response time.
	TypePing MsgType = "ping"
	TypePong MsgType = "pong"
	// TypeError reports a failure for the request with the same ID.
	TypeError MsgType = "error"
)

// Query requests statistics from an agent.
type Query struct {
	// Elements to fetch; empty with All=true fetches everything.
	Elements []core.ElementID `json:"elements,omitempty"`
	// Attrs filters the returned attributes (empty = all).
	Attrs []string `json:"attrs,omitempty"`
	All   bool     `json:"all,omitempty"`
}

// ElementMeta describes one element in an inventory response.
type ElementMeta struct {
	ID   core.ElementID   `json:"id"`
	Kind core.ElementKind `json:"kind"`
}

// Message is one protocol frame.
type Message struct {
	Type     MsgType        `json:"type"`
	ID       uint64         `json:"id"`
	Machine  core.MachineID `json:"machine,omitempty"`
	Query    *Query         `json:"query,omitempty"`
	Records  []core.Record  `json:"records,omitempty"`
	Elements []ElementMeta  `json:"element_list,omitempty"`
	Error    string         `json:"error,omitempty"`

	// TraceID correlates a request/response pair with the controller's
	// query-lifecycle trace (internal/telemetry); agents echo it back.
	// Zero means untraced.
	TraceID uint64 `json:"trace_id,omitempty"`
	// AgentNS is the agent-side handling time of the request in
	// nanoseconds, set on responses so the controller can split its
	// observed round trip into transport vs. agent-gather time.
	AgentNS int64 `json:"agent_ns,omitempty"`
}

// Encode marshals a message into a frame payload (without the length
// header). Split from Write so instrumented callers can time the encode
// and transmit stages separately.
func Encode(m *Message) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("wire: frame too large: %d bytes", len(payload))
	}
	return payload, nil
}

// Decode parses a frame payload produced by Encode/ReadFrame.
func Decode(payload []byte) (*Message, error) {
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return &m, nil
}

// WriteFrame sends an encoded payload: 4-byte big-endian length, then
// the bytes.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame too large: %d bytes", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// ReadFrame receives one raw frame payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return payload, nil
}

// Write frames and sends a message: 4-byte big-endian length, then JSON.
func Write(w io.Writer, m *Message) error {
	payload, err := Encode(m)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// Read receives one framed message.
func Read(r io.Reader) (*Message, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return Decode(payload)
}

// FilterAttrs returns a copy of rec keeping only the named attributes
// (all when names is empty).
func FilterAttrs(rec core.Record, names []string) core.Record {
	if len(names) == 0 {
		return rec
	}
	out := core.Record{Timestamp: rec.Timestamp, Element: rec.Element}
	for _, n := range names {
		if v, ok := rec.Get(n); ok {
			out.Attrs = append(out.Attrs, core.Attr{Name: n, Value: v})
		}
	}
	return out
}
