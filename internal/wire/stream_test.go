package wire

import (
	"reflect"
	"testing"

	"perfsight/internal/core"
)

// Stream frames must round-trip identically through both codecs.
func TestStreamFrameRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: TypeStreamStart, ID: 1, Query: &Query{All: true},
			Stream: &StreamInfo{CadenceMinNS: 100e6, CadenceMaxNS: 2e9}},
		{Type: TypeStreamStart, ID: 2, Query: &Query{
			Elements: []core.ElementID{"m0/pnic"}, Attrs: []string{"rx_bytes"}}},
		{Type: TypeStreamData, ID: 3, Machine: "m0",
			Stream: &StreamInfo{Seq: 7, CadenceMinNS: 50e6, CadenceMaxNS: 1e9},
			Records: []core.Record{{Timestamp: 42, Element: "m0/pnic", Attrs: []core.Attr{
				{ID: core.AttrRxBytes, Value: 1000},
				{ID: core.AttrDropPackets, Value: 3},
			}}}},
		{Type: TypeStreamControl, ID: 4, Stream: &StreamInfo{ThrottleNS: 500e6}},
		{Type: TypeStreamControl, ID: 5, Stream: &StreamInfo{}}, // release
		{Type: TypeStreamData, ID: 6, Machine: "m0"},            // no stream info at all
	}
	for _, codec := range []struct {
		name string
		enc  Codec
		dec  Codec
	}{
		{"json", JSONCodec{}, JSONCodec{}},
		{"v2", NewV2Codec(false), NewV2Codec(false)},
	} {
		for _, m := range msgs {
			payload, err := codec.enc.Encode(m)
			if err != nil {
				t.Fatalf("%s: encode %s: %v", codec.name, m.Type, err)
			}
			got, err := codec.dec.Decode(payload)
			if err != nil {
				t.Fatalf("%s: decode %s: %v", codec.name, m.Type, err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%s %s round trip:\n got %+v\nwant %+v", codec.name, m.Type, got, m)
			}
		}
	}
}

// Pushed stream_data frames participate in the same delta chain as pull
// responses: after one full record, subsequent batches for the element
// resend only changed attrs, and the decoder reconstructs exact values —
// including across a response→stream_data mode switch on one connection.
func TestStreamDataDeltaChain(t *testing.T) {
	enc := NewV2Codec(true)
	dec := NewV2Codec(true)

	mkRec := func(ts int64, rx, drops float64) core.Record {
		return core.Record{Timestamp: ts, Element: "m0/pnic", Attrs: []core.Attr{
			{ID: core.AttrRxBytes, Value: rx},
			{ID: core.AttrDropPackets, Value: drops},
		}}
	}
	roundTrip := func(m *Message) *Message {
		t.Helper()
		payload, err := enc.Encode(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := dec.Decode(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return got
	}

	// Frame 1: an ordinary pull response seeds the chain.
	first := roundTrip(&Message{Type: TypeResponse, ID: 1, Machine: "m0",
		Records: []core.Record{mkRec(100, 1000, 0)}})
	if v, _ := first.Records[0].Get(core.AttrRxBytes); v != 1000 {
		t.Fatalf("seed rx_bytes = %v", v)
	}

	// Frame 2: a pushed batch rides the same chain as a delta record.
	payload2, err := enc.Encode(&Message{Type: TypeStreamData, ID: 2, Machine: "m0",
		Stream:  &StreamInfo{Seq: 1},
		Records: []core.Record{mkRec(200, 1500, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	payload1, err := NewV2Codec(true).Encode(&Message{Type: TypeStreamData, ID: 2, Machine: "m0",
		Stream:  &StreamInfo{Seq: 1},
		Records: []core.Record{mkRec(200, 1500, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(payload2) >= len(payload1) {
		t.Fatalf("chained stream frame (%dB) not smaller than fresh-session full frame (%dB): delta state unused", len(payload2), len(payload1))
	}
	second, err := dec.Decode(payload2)
	if err != nil {
		t.Fatal(err)
	}
	rec := second.Records[0]
	if v, _ := rec.Get(core.AttrRxBytes); v != 1500 {
		t.Fatalf("delta rx_bytes = %v, want 1500", v)
	}
	if v, _ := rec.Get(core.AttrDropPackets); v != 2 {
		t.Fatalf("delta drop_packets = %v, want 2", v)
	}
	if rec.Timestamp != 200 {
		t.Fatalf("delta ts = %d, want 200", rec.Timestamp)
	}
	// The first frame's record must keep its own values (no aliasing of
	// codec-internal delta state).
	if v, _ := first.Records[0].Get(core.AttrRxBytes); v != 1000 {
		t.Fatalf("frame 1 corrupted by frame 2: rx_bytes = %v", v)
	}
}

// A delta stream_data frame on a fresh decoder (reconnect without a new
// full record) must error — never apply against a stale or absent base.
func TestStreamDeltaRejectedWithoutBase(t *testing.T) {
	enc := NewV2Codec(true)
	rec := core.Record{Timestamp: 1, Element: "m0/pnic",
		Attrs: []core.Attr{{ID: core.AttrRxBytes, Value: 5}}}
	// Seed the encoder so its next frame is a delta record.
	if _, err := enc.Encode(&Message{Type: TypeStreamData, ID: 1, Records: []core.Record{rec}}); err != nil {
		t.Fatal(err)
	}
	rec.Timestamp, rec.Attrs[0].Value = 2, 6
	payload, err := enc.Encode(&Message{Type: TypeStreamData, ID: 2, Records: []core.Record{rec}})
	if err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), payload...) // Encode's buffer aliases; copy before reusing enc
	if _, err := NewV2Codec(true).Decode(buf); err == nil {
		t.Fatal("fresh decoder accepted a delta record with no base")
	}
}
