package wire

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"perfsight/internal/core"
)

// v2SweepResponse builds a representative steady-state sweep response:
// elems elements, each with the same nattrs counter attributes — the
// shape of one machine's answer during a fleet sweep.
func v2SweepResponse(elems, nattrs int, tick int64) *Message {
	m := &Message{Type: TypeResponse, ID: uint64(tick), Machine: "m7", AgentNS: 12345}
	for e := 0; e < elems; e++ {
		rec := core.Record{
			Timestamp: tick*1e9 + int64(e),
			Element:   core.ElementID(fmt.Sprintf("m7/vm%d/vnic", e)),
		}
		for a := 0; a < nattrs; a++ {
			rec.Attrs = append(rec.Attrs, core.NamedAttr(fmt.Sprintf("attr_%d_bytes", a), float64(tick*1000+int64(e*nattrs+a))))
		}
		m.Records = append(m.Records, rec)
	}
	return m
}

func TestV2RoundTripMessageTypes(t *testing.T) {
	msgs := []*Message{
		{Type: TypePing, ID: 1},
		{Type: TypePong, ID: 2, Machine: "m0"},
		{Type: TypeError, ID: 3, Error: "boom"},
		{Type: TypeQuery, ID: 4, TraceID: 99, Query: &Query{All: true}},
		{Type: TypeQuery, ID: 5, Query: &Query{
			Elements: []core.ElementID{"m0/pnic", "m0/vm1/vnic"},
			Attrs:    []string{"rx_bytes", "tx_bytes"},
		}},
		{Type: TypeListElements, ID: 6},
		{Type: TypeElementList, ID: 7, Machine: "m0", Elements: []ElementMeta{
			{ID: "m0/pnic", Kind: core.KindPNIC},
			{ID: "m0/vm1/vnic", Kind: core.KindVNIC},
		}},
		{Type: TypeResponse, ID: 8, Machine: "m0", AgentNS: 42, Error: "partial: x",
			Records: []core.Record{
				{Timestamp: 100, Element: "m0/pnic", Attrs: []core.Attr{
					core.NamedAttr("rx_bytes", 1e12),
					core.NamedAttr("ratio", 0.625),
					core.NamedAttr("neg", -17),
					core.NamedAttr("huge", math.MaxFloat64),
				}},
				{Timestamp: 90, Element: "m0/vm1/vnic"}, // ts goes backwards, no attrs
			}},
		v2SweepResponse(26, 12, 3),
	}
	enc := NewV2Codec(false)
	dec := NewV2Codec(false)
	for _, m := range msgs {
		payload, err := enc.Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, err := dec.Decode(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", m.Type, got, m)
		}
	}
}

// Interned strings shrink repeat frames: the second identical response
// must be much smaller than the first because every element ID and attr
// name became a 1-2 byte table reference.
func TestV2StringInterning(t *testing.T) {
	enc := NewV2Codec(false)
	first, err := enc.Encode(v2SweepResponse(26, 12, 1))
	if err != nil {
		t.Fatal(err)
	}
	n1 := len(first)
	second, err := enc.Encode(v2SweepResponse(26, 12, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Attr names already intern within the first frame (they repeat per
	// record); the second frame also drops the inline element IDs.
	if len(second) >= n1*3/4 {
		t.Fatalf("interning ineffective: first frame %dB, second %dB", n1, len(second))
	}
	third, err := enc.Encode(v2SweepResponse(26, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(third) != len(second) {
		t.Fatalf("steady state not reached: second %dB, third %dB", len(second), len(third))
	}
	// And the decoder tracks the same table.
	dec := NewV2Codec(false)
	if _, err := dec.Decode(mustEncode(t, NewV2Codec(false), v2SweepResponse(2, 2, 1))); err != nil {
		t.Fatal(err)
	}
}

func mustEncode(t *testing.T, c *V2Codec, m *Message) []byte {
	t.Helper()
	b, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Delta sessions resend only changed attrs, and the decoder's merged
// records must equal what a full encoding would have carried.
func TestV2DeltaRoundTrip(t *testing.T) {
	enc := NewV2Codec(true)
	dec := NewV2Codec(true)

	roundTrip := func(tick int64) *Message {
		t.Helper()
		m := v2SweepResponse(4, 6, tick)
		payload, err := enc.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("tick %d:\n got %+v\nwant %+v", tick, got, m)
		}
		return got
	}

	first := roundTrip(1)
	second := roundTrip(2)
	// Decoded records own their storage: the merge base mutates every
	// frame, the returned records must not.
	if v := first.Records[0].Attrs[0].Value; v != 1000 {
		t.Fatalf("first sweep mutated by second: %v", v)
	}
	if v := second.Records[0].Attrs[0].Value; v != 2000 {
		t.Fatalf("second sweep: %v", v)
	}

	// A quiet element (no changed values) costs only a few bytes.
	quiet := &Message{Type: TypeResponse, ID: 9, Machine: "m7",
		Records: []core.Record{{Timestamp: 5, Element: "m7/pnic", Attrs: []core.Attr{
			core.NamedAttr("rx_bytes", 100), core.NamedAttr("tx_bytes", 200)}}}}
	if _, err := dec.Decode(mustEncode(t, enc, quiet)); err != nil {
		t.Fatal(err)
	}
	sizeBefore := len(mustEncode(t, enc, quiet))
	got, err := dec.Decode(mustEncode(t, enc, quiet))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, quiet.Records) {
		t.Fatalf("quiet delta: %+v", got.Records)
	}
	if sizeBefore > 16 {
		t.Fatalf("quiet delta record cost %dB; want a handful", sizeBefore)
	}

	// Changing the attribute set falls back to a full record.
	quiet.Records[0].Attrs = append(quiet.Records[0].Attrs, core.NamedAttr("drops", 1))
	got, err = dec.Decode(mustEncode(t, enc, quiet))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, quiet.Records) {
		t.Fatalf("attr-set change: %+v", got.Records)
	}
}

// TestV2SketchPayloadRoundTrip: a payload-carrying attr (tag 3, the
// flow_sketch blob) survives full-record coding byte-for-byte, and on a
// delta session the blob is resent only when its epoch (the attr value)
// changes — a quiescent sketch costs a few bytes per frame, not the blob.
func TestV2SketchPayloadRoundTrip(t *testing.T) {
	blob := []byte{'F', 'K', 1, 16, 2, 1, 4, 7, 0, 0, 0, 0}
	msg := func(epoch float64, blob []byte) *Message {
		return &Message{Type: TypeResponse, ID: 1, Machine: "m0",
			Records: []core.Record{{Timestamp: int64(epoch), Element: "m0/vswitch", Attrs: []core.Attr{
				{ID: core.AttrRxPackets, Value: 100 * epoch},
				{ID: core.SketchAttrID(), Value: epoch, Payload: blob},
			}}}}
	}

	// Stateless session: exact round trip including the payload bytes.
	got, err := NewV2Codec(false).Decode(mustEncode(t, NewV2Codec(false), msg(1, blob)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, msg(1, blob).Records) {
		t.Fatalf("payload round trip:\n got %+v\nwant %+v", got.Records, msg(1, blob).Records)
	}

	// Delta session: first frame carries the blob; an epoch-stable frame
	// must not resend it, an epoch change must.
	enc, dec := NewV2Codec(true), NewV2Codec(true)
	if _, err := dec.Decode(mustEncode(t, enc, msg(1, blob))); err != nil {
		t.Fatal(err)
	}
	stable := msg(2, blob)
	stable.Records[0].Attrs[1].Value = 1 // same epoch, counter moved
	stableFrame := mustEncode(t, enc, stable)
	stableLen := len(stableFrame)
	got, err = dec.Decode(stableFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, stable.Records) {
		t.Fatalf("stable-epoch delta merge:\n got %+v\nwant %+v", got.Records, stable.Records)
	}
	if p := got.Records[0].Attrs[1].Payload; string(p) != string(blob) {
		t.Fatalf("merge lost the cached payload: %v", p)
	}

	grown := append(append([]byte{}, blob...), 0xAA, 0xBB, 0xCC, 0xDD)
	grown[7] = 9 // new epoch inside the blob too
	changed := msg(3, grown)
	changed.Records[0].Attrs[1].Value = 9
	changedFrame := mustEncode(t, enc, changed)
	changedLen := len(changedFrame)
	got, err = dec.Decode(changedFrame)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.Records[0].Attrs[1].Payload; string(p) != string(grown) {
		t.Fatalf("epoch change did not refresh the payload: %v", p)
	}
	if !bytes.Contains(changedFrame, grown) {
		t.Fatalf("changed-epoch frame (%dB) does not resend the blob", changedLen)
	}
	if bytes.Contains(stableFrame, blob) {
		t.Fatalf("stable-epoch frame (%dB) resends the %dB blob; delta should elide it", stableLen, len(blob))
	}
}

func TestV2EncodeRejections(t *testing.T) {
	enc := NewV2Codec(false)
	if _, err := enc.Encode(&Message{Type: TypeHello}); err == nil {
		t.Fatal("hello accepted by v2 encoder")
	}
	if _, err := enc.Encode(&Message{Type: TypePing, Hello: &Hello{}}); err == nil {
		t.Fatal("hello body accepted by v2 encoder")
	}
	if _, err := enc.Encode(&Message{Type: MsgType("bogus")}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestV2DecodeErrors(t *testing.T) {
	valid := mustEncode(t, NewV2Codec(false), v2SweepResponse(2, 3, 1))
	cases := map[string][]byte{
		"empty":     {},
		"short":     {v2Magic},
		"bad magic": {0x7b, 1, 0, 0, 0}, // '{' — a JSON frame
		"bad type":  {v2Magic, 0xEE, 0, 0, 0},
		"truncated": valid[:len(valid)/2],
		"trailing":  append(append([]byte{}, valid...), 0xFF),
		// A record count far beyond what the remaining bytes could hold
		// must be rejected before any allocation is attempted.
		"huge count": {v2Magic, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0x03},
	}
	for name, b := range cases {
		dec := NewV2Codec(false)
		if _, err := dec.Decode(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// A string-table reference beyond the table must error.
	enc := NewV2Codec(false)
	frame := mustEncode(t, enc, &Message{Type: TypePong, ID: 1, Machine: "m0"})
	// Fresh decoder has an empty table, so the second encode (which
	// references the interned "m0") is corrupt for it.
	frame2 := mustEncode(t, enc, &Message{Type: TypePong, ID: 2, Machine: "m0"})
	fresh := NewV2Codec(false)
	if _, err := fresh.Decode(frame2); err == nil || !strings.Contains(err.Error(), "string ref") {
		t.Fatalf("out-of-table ref: %v", err)
	}
	_ = frame

	// Delta records are invalid on non-delta sessions and for elements
	// the session has not seen in full.
	dEnc := NewV2Codec(true)
	base := &Message{Type: TypeResponse, ID: 1, Records: []core.Record{
		{Timestamp: 1, Element: "m0/pnic", Attrs: []core.Attr{core.NamedAttr("a", 1)}}}}
	if _, err := dEnc.Encode(base); err != nil {
		t.Fatal(err)
	}
	base.Records[0].Timestamp = 2
	deltaFrame := mustEncode(t, dEnc, base) // second frame is a delta record
	if _, err := NewV2Codec(false).Decode(deltaFrame); err == nil {
		t.Fatal("delta record accepted on non-delta session")
	}
	if _, err := NewV2Codec(true).Decode(deltaFrame); err == nil {
		t.Fatal("delta record accepted for unseen element")
	}
}

// TestV2AttrKeyCoding pins the attribute-key wire rules introduced with
// the statistics schema: schema attributes travel as bare 1-byte AttrIDs,
// extension attributes by name (key 0 introduces one, higher keys
// reference the connection's intern table), and a key referencing past
// the table is rejected — extension IDs are process-local and never
// travel numerically, only as connection-scoped name references.
func TestV2AttrKeyCoding(t *testing.T) {
	// A record whose last attribute is a schema attr yields a frame whose
	// final two bytes are the attr key and the varint value — a stable
	// place to mutate.
	frame := mustEncode(t, NewV2Codec(false), &Message{Type: TypeResponse, ID: 1, Machine: "m0",
		Records: []core.Record{{Timestamp: 1, Element: "m0/host",
			Attrs: []core.Attr{{ID: core.AttrMemBytes, Value: 3}}}}})
	if frame[len(frame)-2] != byte(core.AttrMemBytes) {
		t.Fatalf("frame does not end with the bare schema attr id: % x", frame[len(frame)-4:])
	}
	m, err := NewV2Codec(false).Decode(frame)
	if err != nil || m.Records[0].Attrs[0].ID != core.AttrMemBytes || m.Records[0].Attrs[0].Value != 3 {
		t.Fatalf("decode: %v %+v", err, m)
	}

	outOfRange := append([]byte{}, frame...)
	outOfRange[len(outOfRange)-2] = 60 // > SchemaMax: name ref far outside the table
	if _, err := NewV2Codec(false).Decode(outOfRange); err == nil || !strings.Contains(err.Error(), "outside table") {
		t.Fatalf("out-of-range attr key not rejected: %v", err)
	}

	corrupt := append([]byte{}, frame...)
	corrupt[len(corrupt)-2] = 0 // ext marker: the value byte now reads as a string ref
	if _, err := NewV2Codec(false).Decode(corrupt); err == nil {
		t.Fatal("corrupt attr key decoded without error")
	}

	// An extension attribute round-trips by name, mixed with schema attrs.
	frame2 := mustEncode(t, NewV2Codec(false), &Message{Type: TypeResponse, ID: 2, Machine: "m0",
		Records: []core.Record{{Timestamp: 1, Element: "m0/vm1/app",
			Attrs: []core.Attr{{ID: core.AttrRxPackets, Value: 5},
				core.NamedAttr("v2_ext_attr_key_test", 9)}}}})
	m, err = NewV2Codec(false).Decode(frame2)
	if err != nil {
		t.Fatal(err)
	}
	attrs := m.Records[0].Attrs
	if len(attrs) != 2 || attrs[0].ID != core.AttrRxPackets ||
		attrs[1].Name() != "v2_ext_attr_key_test" || attrs[1].Value != 9 {
		t.Fatalf("extension attr lost in round trip: %+v", attrs)
	}
}

// TestV2RoundTripAllocBudget pins the steady-state allocation cost of a
// full sweep-response round trip against a checked-in budget. CI fails
// when a change regresses past it (see make bench-wire).
func TestV2RoundTripAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/v2_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parse budget: %v", err)
	}
	enc := NewV2Codec(false)
	dec := NewV2Codec(false)
	tick := int64(0)
	msg := v2SweepResponse(26, 12, tick)
	// Warm the intern tables; steady state is what sweeps pay.
	for i := 0; i < 3; i++ {
		if _, err := dec.Decode(mustEncode(t, enc, msg)); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(50, func() {
		tick++
		m := v2SweepResponse(26, 12, tick)
		payload, err := enc.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(payload); err != nil {
			t.Fatal(err)
		}
	})
	// v2SweepResponse itself allocates the input message; measure it
	// separately and subtract so the budget tracks only the codec.
	input := testing.AllocsPerRun(50, func() {
		tick++
		_ = v2SweepResponse(26, 12, tick)
	})
	codec := got - input
	t.Logf("round trip allocs/op = %.1f (input %.1f, codec %.1f, budget %.0f)", got, input, codec, budget)
	if codec > budget {
		t.Fatalf("codec round-trip allocs/op = %.1f exceeds budget %.0f (testdata/v2_alloc_budget.txt)", codec, budget)
	}
}

// TestV2VsJSONSizeAndAllocs enforces the codec's reason to exist: on a
// representative steady-state sweep response, v2 must put at least 60%
// fewer bytes on the wire and allocate at least 80% less than JSON.
func TestV2VsJSONSizeAndAllocs(t *testing.T) {
	enc := NewV2Codec(false)
	dec := NewV2Codec(false)
	tick := int64(0)
	warm := v2SweepResponse(26, 12, tick)
	for i := 0; i < 3; i++ {
		if _, err := dec.Decode(mustEncode(t, enc, warm)); err != nil {
			t.Fatal(err)
		}
	}

	jsonBytes, err := Encode(warm)
	if err != nil {
		t.Fatal(err)
	}
	v2Bytes := mustEncode(t, enc, warm)
	if ratio := float64(len(v2Bytes)) / float64(len(jsonBytes)); ratio > 0.40 {
		t.Fatalf("v2 frame %dB vs JSON %dB (%.0f%%); want ≤40%%",
			len(v2Bytes), len(jsonBytes), 100*ratio)
	}

	inputAllocs := testing.AllocsPerRun(20, func() {
		tick++
		_ = v2SweepResponse(26, 12, tick)
	})
	v2Allocs := testing.AllocsPerRun(20, func() {
		tick++
		m := v2SweepResponse(26, 12, tick)
		payload, _ := enc.Encode(m)
		if _, err := dec.Decode(payload); err != nil {
			t.Fatal(err)
		}
	}) - inputAllocs
	jsonAllocs := testing.AllocsPerRun(20, func() {
		tick++
		m := v2SweepResponse(26, 12, tick)
		payload, _ := Encode(m)
		if _, err := Decode(payload); err != nil {
			t.Fatal(err)
		}
	}) - inputAllocs
	t.Logf("bytes: v2 %d vs json %d; allocs/op: v2 %.1f vs json %.1f",
		len(v2Bytes), len(jsonBytes), v2Allocs, jsonAllocs)
	if v2Allocs > 0.20*jsonAllocs {
		t.Fatalf("v2 allocs/op %.1f vs JSON %.1f; want ≤20%%", v2Allocs, jsonAllocs)
	}
}

// Frames over MaxFrame are refused at encode time like the JSON codec.
func TestV2EncodeMaxFrame(t *testing.T) {
	enc := NewV2Codec(false)
	m := &Message{Type: TypeError, Error: strings.Repeat("x", MaxFrame)}
	if _, err := enc.Encode(m); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
