package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"perfsight/internal/core"
)

// Codec v2 is the compact binary payload encoding, negotiated per
// connection by a JSON hello exchange (see Hello). Frame layout:
//
//	0xF2 | type | uvarint id | uvarint trace_id | svarint agent_ns
//	     | istr machine | bstr error
//	     | u8 hasQuery [ u8 all | uvarint n, n·istr elements
//	                   | uvarint n, n·istr attrs ]
//	     | span section (spans sessions, response/stream_data only):
//	       svarint agent_ts | uvarint n, n·span
//	     | uvarint n, n·( istr id, uvarint kind )          element metas
//	     | uvarint n, n·record                             records
//
//	span   = uvarint id | uvarint parent | istr name
//	       | svarint start_ns | svarint dur_ns | bstr status
//	       (ids frame-local; start_ns on the sender's clock — the
//	       receiver skew-corrects. Present only when the hello granted
//	       the spans capability, so span-blind sessions stay
//	       byte-identical to earlier codec versions.)
//
//	record = u8 flags(1=full, 0=delta)
//	       | svarint ts (difference vs previous record; first absolute)
//	       | istr element
//	       | full:  uvarint n, n·( attrkey, value )
//	       | delta: uvarint n, n·( uvarint attr index, value )
//
//	attrkey = uvarint k: 1..SchemaMax → the schema AttrID itself (1 byte,
//	          no intern-table slot); k == 0 → new extension-attr name
//	          (uvarint len + bytes, interned); k > SchemaMax → intern
//	          table entry k−SchemaMax−1. Extension AttrIDs are
//	          process-local and never travel numerically.
//
//	value  = uvarint u: even → integral float, unzigzag(u>>1);
//	         u == 1 → raw float64 bits, 8 bytes little-endian;
//	         u == 3 → payload attr: uvarint len + blob bytes, then the
//	         numeric value (recursively, tags above). Sketch summaries
//	         travel this way, with the summary epoch as the numeric value
//	         so the delta mode resends the blob only when it changed.
//	         (counters are integral floats, so most values are varints)
//
//	istr   = uvarint v: v == 0 → uvarint len + bytes, appended to the
//	         connection's string table (until v2MaxStrings); v > 0 →
//	         table entry v-1. bstr = uvarint len + bytes, not interned.
//
// Attribute names and element IDs repeat on every response, so the
// per-connection intern table reduces them to 1-2 bytes after the first
// frame; varint integers and the optional delta record mode (send only
// attrs whose values changed since the connection's last response for
// that element) do the rest of the frame-size reduction over JSON.
const (
	v2Magic      = 0xF2
	v2MaxStrings = 1 << 16
)

var v2TypeCode = map[MsgType]byte{
	TypeQuery:         1,
	TypeResponse:      2,
	TypeListElements:  3,
	TypeElementList:   4,
	TypePing:          5,
	TypePong:          6,
	TypeError:         7,
	TypeStreamStart:   8,
	TypeStreamData:    9,
	TypeStreamControl: 10,
}

// v2StreamType reports whether frames of this type carry a StreamInfo
// section. Scoping the section to stream frames keeps every pre-stream
// frame byte-identical to earlier codec versions.
func v2StreamType(t MsgType) bool {
	return t == TypeStreamStart || t == TypeStreamData || t == TypeStreamControl
}

// v2DeltaType reports whether records of this frame type participate in
// the connection's delta state: pull responses and pushed stream batches
// share one chain, which is what lets a connection switch from sweeps to
// streaming without resending the world.
func v2DeltaType(t MsgType) bool {
	return t == TypeResponse || t == TypeStreamData
}

// v2SpanType reports whether frames of this type carry the span section
// on a spans-enabled session: exactly the frames that carry gathered
// records (pull responses and pushed stream batches). Double-gated —
// frame type AND negotiated capability — so a session that never
// granted spans emits frames byte-identical to earlier codec versions.
func v2SpanType(t MsgType) bool {
	return t == TypeResponse || t == TypeStreamData
}

// v2CodeType is the reverse of v2TypeCode, built once so the two can
// never drift.
var v2CodeType = func() map[byte]MsgType {
	m := make(map[byte]MsgType, len(v2TypeCode))
	for t, c := range v2TypeCode {
		m[c] = t
	}
	return m
}()

// v2DeltaState is the last full attribute set exchanged for one element
// on a delta connection — the encoder's "what the peer already has" and
// the decoder's merge base.
type v2DeltaState struct {
	ts    int64
	attrs []core.Attr
}

// v2RecMeta stages one decoded record until the frame's total attribute
// count is known, so the output can be materialized with two allocations
// (one []Record, one flat []Attr) regardless of element count.
type v2RecMeta struct {
	ts         int64
	elem       core.ElementID
	start, end int
}

// V2Codec encodes and decodes codec-v2 payloads for one connection
// endpoint. It is stateful — intern tables and delta state must see
// every frame of the connection, in order — and not goroutine-safe.
type V2Codec struct {
	delta bool
	spans bool

	// Encode side: reusable output buffer, sent-string intern table, and
	// (delta sessions) the last-sent attrs per element.
	buf     []byte
	encTab  map[string]uint32
	encSent map[core.ElementID]*v2DeltaState

	// Decode side: received-string table, (delta sessions) the merge
	// base per element, and scratch reused across frames.
	decTab       []string
	decSeen      map[core.ElementID]*v2DeltaState
	scratchAttrs []core.Attr
	scratchRecs  []v2RecMeta
	scratchSpans []Span
}

// NewV2Codec returns a fresh per-connection codec. delta enables the
// changed-attrs-only record mode on response frames; both endpoints must
// agree on it (the hello exchange guarantees that).
func NewV2Codec(delta bool) *V2Codec {
	return &V2Codec{delta: delta, encTab: make(map[string]uint32)}
}

// Name implements Codec.
func (c *V2Codec) Name() string { return CodecV2 }

// Delta reports whether the session delta-encodes response records.
func (c *V2Codec) Delta() bool { return c.delta }

// EnableSpans switches the session to span-decorated frames. Call on
// both endpoints exactly when the hello exchange granted the spans
// capability — the section has no per-frame presence flag of its own
// beyond the frame type, so the two sides must agree.
func (c *V2Codec) EnableSpans() { c.spans = true }

// Spans reports whether the session carries span sections.
func (c *V2Codec) Spans() bool { return c.spans }

// Encode implements Codec. The returned slice aliases the codec's
// internal buffer and is overwritten by the next Encode call.
func (c *V2Codec) Encode(m *Message) ([]byte, error) {
	code, ok := v2TypeCode[m.Type]
	if !ok {
		return nil, fmt.Errorf("wire: codec v2 cannot encode message type %q", m.Type)
	}
	if m.Hello != nil {
		return nil, fmt.Errorf("wire: hello frames must use the JSON codec")
	}
	b := append(c.buf[:0], v2Magic, code)
	b = binary.AppendUvarint(b, m.ID)
	b = binary.AppendUvarint(b, m.TraceID)
	b = binary.AppendVarint(b, m.AgentNS)
	b = c.appendIStr(b, string(m.Machine))
	b = binary.AppendUvarint(b, uint64(len(m.Error)))
	b = append(b, m.Error...)
	if m.Query != nil {
		b = append(b, 1)
		if m.Query.All {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, uint64(len(m.Query.Elements)))
		for _, e := range m.Query.Elements {
			b = c.appendIStr(b, string(e))
		}
		b = binary.AppendUvarint(b, uint64(len(m.Query.Attrs)))
		for _, a := range m.Query.Attrs {
			b = c.appendIStr(b, a)
		}
	} else {
		b = append(b, 0)
	}
	if v2StreamType(m.Type) {
		if m.Stream != nil {
			b = append(b, 1)
			b = binary.AppendVarint(b, m.Stream.CadenceMinNS)
			b = binary.AppendVarint(b, m.Stream.CadenceMaxNS)
			b = binary.AppendUvarint(b, m.Stream.Seq)
			b = binary.AppendVarint(b, m.Stream.ThrottleNS)
		} else {
			b = append(b, 0)
		}
	}
	if c.spans && v2SpanType(m.Type) {
		b = binary.AppendVarint(b, m.AgentTS)
		b = binary.AppendUvarint(b, uint64(len(m.AgentSpans)))
		for i := range m.AgentSpans {
			sp := &m.AgentSpans[i]
			b = binary.AppendUvarint(b, sp.ID)
			b = binary.AppendUvarint(b, sp.Parent)
			b = c.appendIStr(b, sp.Name)
			b = binary.AppendVarint(b, sp.StartNS)
			b = binary.AppendVarint(b, sp.DurNS)
			b = binary.AppendUvarint(b, uint64(len(sp.Status)))
			b = append(b, sp.Status...)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(m.Elements)))
	for _, el := range m.Elements {
		b = c.appendIStr(b, string(el.ID))
		b = binary.AppendUvarint(b, uint64(el.Kind))
	}
	b = binary.AppendUvarint(b, uint64(len(m.Records)))
	prevTS := int64(0)
	for i := range m.Records {
		b = c.appendRecord(b, &m.Records[i], m.Type, prevTS)
		prevTS = m.Records[i].Timestamp
	}
	c.buf = b
	if len(b) > MaxFrame {
		return nil, fmt.Errorf("wire: frame too large: %d bytes", len(b))
	}
	return b, nil
}

func (c *V2Codec) appendIStr(b []byte, s string) []byte {
	if id, ok := c.encTab[s]; ok {
		return binary.AppendUvarint(b, uint64(id)+1)
	}
	b = append(b, 0)
	b = binary.AppendUvarint(b, uint64(len(s)))
	b = append(b, s...)
	if len(c.encTab) < v2MaxStrings {
		c.encTab[s] = uint32(len(c.encTab))
	}
	return b
}

// appendValue writes one attribute value: integral floats (all PerfSight
// counters) as a zigzag varint, everything else as raw float64 bits.
func appendValue(b []byte, v float64) []byte {
	if iv := int64(v); float64(iv) == v && iv > -(1<<52) && iv < 1<<52 {
		zz := uint64(iv<<1) ^ uint64(iv>>63)
		return binary.AppendUvarint(b, zz<<1)
	}
	b = binary.AppendUvarint(b, 1)
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendAttrValue writes one attribute's value, wrapping it in the
// length-prefixed payload form (tag 3) when the attr carries a blob.
func appendAttrValue(b []byte, a *core.Attr) []byte {
	if len(a.Payload) > 0 {
		b = binary.AppendUvarint(b, 3)
		b = binary.AppendUvarint(b, uint64(len(a.Payload)))
		b = append(b, a.Payload...)
	}
	return appendValue(b, a.Value)
}

func sameAttrIDs(a, b []core.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// appendAttrKey writes one attribute identifier. Schema attributes travel
// as their 1-byte AttrID (1..SchemaMax), bypassing the intern table
// entirely. Extension attributes — whose numeric IDs are process-local and
// therefore meaningless to the peer — travel by name: key 0 introduces a
// new name (interned by both sides), and keys above SchemaMax reference
// the shared intern table at key−SchemaMax−1, so a repeated extension
// attribute costs the same 1-2 bytes it did when all names were interned.
func (c *V2Codec) appendAttrKey(b []byte, id core.AttrID) []byte {
	if core.IsSchemaAttr(id) {
		return binary.AppendUvarint(b, uint64(id))
	}
	name := core.AttrName(id)
	if ref, ok := c.encTab[name]; ok {
		return binary.AppendUvarint(b, uint64(ref)+uint64(core.SchemaMax)+1)
	}
	b = append(b, 0)
	b = binary.AppendUvarint(b, uint64(len(name)))
	b = append(b, name...)
	if len(c.encTab) < v2MaxStrings {
		c.encTab[name] = uint32(len(c.encTab))
	}
	return b
}

func (c *V2Codec) appendRecord(b []byte, rec *core.Record, mtype MsgType, prevTS int64) []byte {
	if c.delta && v2DeltaType(mtype) {
		if st := c.encSent[rec.Element]; st != nil && sameAttrIDs(st.attrs, rec.Attrs) {
			b = append(b, 0) // delta record
			b = binary.AppendVarint(b, rec.Timestamp-prevTS)
			b = c.appendIStr(b, string(rec.Element))
			changed := 0
			for i := range rec.Attrs {
				if rec.Attrs[i].Value != st.attrs[i].Value {
					changed++
				}
			}
			b = binary.AppendUvarint(b, uint64(changed))
			for i := range rec.Attrs {
				if v := rec.Attrs[i].Value; v != st.attrs[i].Value {
					b = binary.AppendUvarint(b, uint64(i))
					b = appendAttrValue(b, &rec.Attrs[i])
					st.attrs[i] = rec.Attrs[i]
				}
			}
			st.ts = rec.Timestamp
			return b
		}
	}
	b = append(b, 1) // full record
	b = binary.AppendVarint(b, rec.Timestamp-prevTS)
	b = c.appendIStr(b, string(rec.Element))
	b = binary.AppendUvarint(b, uint64(len(rec.Attrs)))
	for i := range rec.Attrs {
		b = c.appendAttrKey(b, rec.Attrs[i].ID)
		b = appendAttrValue(b, &rec.Attrs[i])
	}
	if c.delta && v2DeltaType(mtype) {
		if c.encSent == nil {
			c.encSent = make(map[core.ElementID]*v2DeltaState)
		}
		st := c.encSent[rec.Element]
		if st == nil {
			st = &v2DeltaState{}
			c.encSent[rec.Element] = st
		}
		st.ts = rec.Timestamp
		st.attrs = append(st.attrs[:0], rec.Attrs...)
	}
	return b
}

// v2dec is a bounds-checked cursor over one frame payload. Every length
// and table reference is validated, so corrupt frames error instead of
// panicking or ballooning memory (see FuzzV2Decode).
type v2dec struct {
	c   *V2Codec
	b   []byte
	off int
}

func (d *v2dec) remaining() int { return len(d.b) - d.off }

func (d *v2dec) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("wire: v2: truncated frame at byte %d", d.off)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *v2dec) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: v2: bad uvarint at byte %d", d.off)
	}
	d.off += n
	return u, nil
}

func (d *v2dec) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: v2: bad varint at byte %d", d.off)
	}
	d.off += n
	return v, nil
}

// count reads an item count and rejects any that could not fit in the
// remaining payload at min bytes per item — a cheap bound that keeps a
// corrupt frame from provoking a huge allocation.
func (d *v2dec) count(min int) (int, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if min < 1 {
		min = 1
	}
	if u > uint64(d.remaining()/min) {
		return 0, fmt.Errorf("wire: v2: count %d exceeds frame", u)
	}
	return int(u), nil
}

func (d *v2dec) istr() (string, error) {
	u, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if u == 0 {
		s, err := d.bstr()
		if err != nil {
			return "", err
		}
		if len(d.c.decTab) < v2MaxStrings {
			d.c.decTab = append(d.c.decTab, s)
		}
		return s, nil
	}
	idx := u - 1
	if idx >= uint64(len(d.c.decTab)) {
		return "", fmt.Errorf("wire: v2: string ref %d outside table of %d", idx, len(d.c.decTab))
	}
	return d.c.decTab[idx], nil
}

// attrKey reads one attribute identifier: a bare schema AttrID in
// 1..SchemaMax; key 0 followed by a new extension-attribute name (interned
// into the connection's string table); or a key above SchemaMax
// referencing the table at key−SchemaMax−1. Names resolve
// (auto-registering) to local extension IDs — a peer's numeric extension
// IDs never appear on the wire, only table references scoped to this
// connection, so an out-of-table key is rejected.
func (d *v2dec) attrKey() (core.Attr, error) {
	k, err := d.uvarint()
	if err != nil {
		return core.Attr{}, err
	}
	switch {
	case k == 0:
		name, err := d.bstr()
		if err != nil {
			return core.Attr{}, err
		}
		if len(d.c.decTab) < v2MaxStrings {
			d.c.decTab = append(d.c.decTab, name)
		}
		return core.Attr{ID: core.AttrIDFor(name)}, nil
	case k <= uint64(core.SchemaMax):
		return core.Attr{ID: core.AttrID(k)}, nil
	}
	idx := k - uint64(core.SchemaMax) - 1
	if idx >= uint64(len(d.c.decTab)) {
		return core.Attr{}, fmt.Errorf("wire: v2: attr name ref %d outside table of %d", idx, len(d.c.decTab))
	}
	return core.Attr{ID: core.AttrIDFor(d.c.decTab[idx])}, nil
}

func (d *v2dec) bstr() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", fmt.Errorf("wire: v2: string of %d bytes exceeds frame", n)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// value reads one attribute value. A payload attr (tag 3) returns the
// blob copied out of the frame: decoded records outlive the frame buffer
// (which is pooled), so the blob must own its bytes.
func (d *v2dec) value() (float64, []byte, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if u&1 == 0 {
		zz := u >> 1
		return float64(int64(zz>>1) ^ -int64(zz&1)), nil, nil
	}
	switch u {
	case 1:
		if d.remaining() < 8 {
			return 0, nil, fmt.Errorf("wire: v2: truncated float value")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
		return v, nil, nil
	case 3:
		n, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if n == 0 || n > uint64(d.remaining()) {
			return 0, nil, fmt.Errorf("wire: v2: payload of %d bytes invalid for frame", n)
		}
		blob := make([]byte, n)
		copy(blob, d.b[d.off:d.off+int(n)])
		d.off += int(n)
		v, p, err := d.value()
		if err != nil {
			return 0, nil, err
		}
		if p != nil {
			return 0, nil, fmt.Errorf("wire: v2: nested payload value")
		}
		return v, blob, nil
	}
	return 0, nil, fmt.Errorf("wire: v2: bad value tag %d", u)
}

// Decode implements Codec. A payload that is not a v2 frame (a JSON peer
// that skipped negotiation, a desynchronized stream) errors cleanly so
// the connection owner can drop the connection and renegotiate.
func (c *V2Codec) Decode(payload []byte) (*Message, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("wire: v2: frame of %d bytes too short", len(payload))
	}
	if payload[0] != v2Magic {
		return nil, fmt.Errorf("wire: v2: bad magic %#x (codec mismatch?)", payload[0])
	}
	mt, ok := v2CodeType[payload[1]]
	if !ok {
		return nil, fmt.Errorf("wire: v2: unknown message type code %d", payload[1])
	}
	d := v2dec{c: c, b: payload, off: 2}
	m := &Message{Type: mt}
	var err error
	if m.ID, err = d.uvarint(); err != nil {
		return nil, err
	}
	if m.TraceID, err = d.uvarint(); err != nil {
		return nil, err
	}
	if m.AgentNS, err = d.varint(); err != nil {
		return nil, err
	}
	mach, err := d.istr()
	if err != nil {
		return nil, err
	}
	m.Machine = core.MachineID(mach)
	if m.Error, err = d.bstr(); err != nil {
		return nil, err
	}
	hasQuery, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch hasQuery {
	case 0:
	case 1:
		q := &Query{}
		all, err := d.byte()
		if err != nil {
			return nil, err
		}
		if all > 1 {
			return nil, fmt.Errorf("wire: v2: bad query all flag %d", all)
		}
		q.All = all == 1
		n, err := d.count(1)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			q.Elements = make([]core.ElementID, n)
			for i := range q.Elements {
				s, err := d.istr()
				if err != nil {
					return nil, err
				}
				q.Elements[i] = core.ElementID(s)
			}
		}
		if n, err = d.count(1); err != nil {
			return nil, err
		}
		if n > 0 {
			q.Attrs = make([]string, n)
			for i := range q.Attrs {
				if q.Attrs[i], err = d.istr(); err != nil {
					return nil, err
				}
			}
		}
		m.Query = q
	default:
		return nil, fmt.Errorf("wire: v2: bad query presence flag %d", hasQuery)
	}
	if v2StreamType(mt) {
		hasStream, err := d.byte()
		if err != nil {
			return nil, err
		}
		switch hasStream {
		case 0:
		case 1:
			si := &StreamInfo{}
			if si.CadenceMinNS, err = d.varint(); err != nil {
				return nil, err
			}
			if si.CadenceMaxNS, err = d.varint(); err != nil {
				return nil, err
			}
			if si.Seq, err = d.uvarint(); err != nil {
				return nil, err
			}
			if si.ThrottleNS, err = d.varint(); err != nil {
				return nil, err
			}
			m.Stream = si
		default:
			return nil, fmt.Errorf("wire: v2: bad stream presence flag %d", hasStream)
		}
	}
	if c.spans && v2SpanType(mt) {
		if m.AgentTS, err = d.varint(); err != nil {
			return nil, err
		}
		// Span names are interned refs (often 2 bytes), so 6 is the
		// realistic floor per span: id, parent, name, start, dur, status.
		nsp, err := d.count(6)
		if err != nil {
			return nil, err
		}
		if nsp > 0 {
			// Unlike records, decoded spans alias the codec's scratch
			// slice: consumers fold them into a trace during the same
			// frame handling and never retain them, so AgentSpans is
			// only valid until the next Decode on this codec.
			c.scratchSpans = c.scratchSpans[:0]
			for i := 0; i < nsp; i++ {
				var sp Span
				if sp.ID, err = d.uvarint(); err != nil {
					return nil, err
				}
				if sp.Parent, err = d.uvarint(); err != nil {
					return nil, err
				}
				if sp.Name, err = d.istr(); err != nil {
					return nil, err
				}
				if sp.StartNS, err = d.varint(); err != nil {
					return nil, err
				}
				if sp.DurNS, err = d.varint(); err != nil {
					return nil, err
				}
				if sp.Status, err = d.bstr(); err != nil {
					return nil, err
				}
				c.scratchSpans = append(c.scratchSpans, sp)
			}
			m.AgentSpans = c.scratchSpans
		}
	}
	n, err := d.count(2)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.Elements = make([]ElementMeta, n)
		for i := range m.Elements {
			s, err := d.istr()
			if err != nil {
				return nil, err
			}
			kind, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			m.Elements[i] = ElementMeta{ID: core.ElementID(s), Kind: core.ElementKind(int64(kind))}
		}
	}
	if err := c.decodeRecords(&d, m); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("wire: v2: %d trailing bytes", d.remaining())
	}
	return m, nil
}

func (c *V2Codec) decodeRecords(d *v2dec, m *Message) error {
	nrec, err := d.count(3)
	if err != nil {
		return err
	}
	if nrec == 0 {
		return nil
	}
	c.scratchRecs = c.scratchRecs[:0]
	c.scratchAttrs = c.scratchAttrs[:0]
	prevTS := int64(0)
	for i := 0; i < nrec; i++ {
		flags, err := d.byte()
		if err != nil {
			return err
		}
		dts, err := d.varint()
		if err != nil {
			return err
		}
		ts := prevTS + dts
		prevTS = ts
		elemS, err := d.istr()
		if err != nil {
			return err
		}
		elem := core.ElementID(elemS)
		start := len(c.scratchAttrs)
		switch flags {
		case 1: // full record
			na, err := d.count(2)
			if err != nil {
				return err
			}
			for j := 0; j < na; j++ {
				a, err := d.attrKey()
				if err != nil {
					return err
				}
				v, blob, err := d.value()
				if err != nil {
					return err
				}
				a.Value = v
				a.Payload = blob
				c.scratchAttrs = append(c.scratchAttrs, a)
			}
			if c.delta && v2DeltaType(m.Type) {
				if c.decSeen == nil {
					c.decSeen = make(map[core.ElementID]*v2DeltaState)
				}
				st := c.decSeen[elem]
				if st == nil {
					st = &v2DeltaState{}
					c.decSeen[elem] = st
				}
				st.ts = ts
				st.attrs = append(st.attrs[:0], c.scratchAttrs[start:]...)
			}
		case 0: // delta record: merge changed attrs into the stored base
			if !c.delta {
				return fmt.Errorf("wire: v2: delta record on non-delta session")
			}
			st := c.decSeen[elem]
			if st == nil {
				return fmt.Errorf("wire: v2: delta record for unseen element %q", elem)
			}
			nc, err := d.count(2)
			if err != nil {
				return err
			}
			for j := 0; j < nc; j++ {
				idx, err := d.uvarint()
				if err != nil {
					return err
				}
				if idx >= uint64(len(st.attrs)) {
					return fmt.Errorf("wire: v2: delta attr index %d outside %d attrs of %q", idx, len(st.attrs), elem)
				}
				v, blob, err := d.value()
				if err != nil {
					return err
				}
				st.attrs[idx].Value = v
				if blob != nil {
					st.attrs[idx].Payload = blob
				}
			}
			st.ts = ts
			c.scratchAttrs = append(c.scratchAttrs, st.attrs...)
		default:
			return fmt.Errorf("wire: v2: bad record flags %#x", flags)
		}
		c.scratchRecs = append(c.scratchRecs, v2RecMeta{ts: ts, elem: elem, start: start, end: len(c.scratchAttrs)})
	}
	// Materialize with exactly two allocations. The returned records own
	// their storage: callers retain them across frames (SampleInterval
	// holds the previous sweep while the current one decodes), so they
	// must not alias the codec's scratch.
	flat := make([]core.Attr, len(c.scratchAttrs))
	copy(flat, c.scratchAttrs)
	recs := make([]core.Record, len(c.scratchRecs))
	for i, rm := range c.scratchRecs {
		r := core.Record{Timestamp: rm.ts, Element: rm.elem}
		if rm.end > rm.start {
			r.Attrs = flat[rm.start:rm.end:rm.end]
		}
		recs[i] = r
	}
	m.Records = recs
	return nil
}
