package wire

import (
	"bytes"
	"reflect"
	"testing"

	"perfsight/internal/core"
)

func spanSession() (*V2Codec, *V2Codec) {
	enc := NewV2Codec(false)
	enc.EnableSpans()
	dec := NewV2Codec(false)
	dec.EnableSpans()
	return enc, dec
}

func TestV2SpanRoundTrip(t *testing.T) {
	enc, dec := spanSession()
	in := &Message{Type: TypeResponse, ID: 9, TraceID: 42, Machine: "m0",
		AgentNS: 75000, AgentTS: 1_000_000_075_000,
		AgentSpans: []Span{
			{ID: 1, Name: "agent:dispatch", StartNS: 1_000_000_000_000, DurNS: 75000},
			{ID: 2, Parent: 1, Name: "ovs:DUMP-SKETCH", StartNS: 1_000_000_001_000, DurNS: 40000},
			{ID: 3, Parent: 1, Name: "procfs:netdev", StartNS: 1_000_000_045_000, DurNS: 20000, Status: "timeout"},
		},
		Records: []core.Record{{Timestamp: 5, Element: "m0/pnic",
			Attrs: []core.Attr{{ID: core.AttrRxBytes, Value: 11}}}}}
	payload, err := enc.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dec.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.AgentTS != in.AgentTS {
		t.Fatalf("agent_ts = %d, want %d", out.AgentTS, in.AgentTS)
	}
	if !reflect.DeepEqual(out.AgentSpans, in.AgentSpans) {
		t.Fatalf("spans lost:\n in %+v\nout %+v", in.AgentSpans, out.AgentSpans)
	}

	// Span names are interned: the second frame with the same names must
	// be smaller than the first.
	second, err := enc.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) >= len(payload) {
		t.Fatalf("span names not interned: frame 2 is %d bytes vs %d", len(second), len(payload))
	}
	out2, err := dec.Decode(second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out2.AgentSpans, in.AgentSpans) {
		t.Fatalf("interned spans lost: %+v", out2.AgentSpans)
	}
}

// TestV2SpanSectionGating proves the double gate: non-span frame types on
// a spans session, and span frame types on a span-blind session, are
// byte-identical to a plain v2 session — the capability changes nothing
// until both the type and the grant line up.
func TestV2SpanSectionGating(t *testing.T) {
	withSpans := &Message{Type: TypeResponse, ID: 3, Machine: "m0",
		AgentTS:    123,
		AgentSpans: []Span{{ID: 1, Name: "agent:dispatch", StartNS: 10, DurNS: 5}}}
	query := &Message{Type: TypeQuery, ID: 2, Query: &Query{All: true}}

	spansEnc := NewV2Codec(false)
	spansEnc.EnableSpans()
	plainEnc := NewV2Codec(false)

	// Query frames never carry the section, granted or not.
	a, err := spansEnc.Encode(query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plainEnc.Encode(query)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("query frame differs on spans session:\n%x\n%x", a, b)
	}

	// A span-blind session drops the section entirely — a response with
	// populated AgentSpans still encodes byte-identically to one without.
	blind, err := plainEnc.Encode(withSpans)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := NewV2Codec(false).Encode(&Message{Type: TypeResponse, ID: 3, Machine: "m0"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blind, bare) {
		t.Fatalf("span-blind encoder leaked span bytes:\n%x\n%x", blind, bare)
	}
	out, err := NewV2Codec(false).Decode(blind)
	if err != nil {
		t.Fatal(err)
	}
	if out.AgentTS != 0 || out.AgentSpans != nil {
		t.Fatalf("span-blind decode produced spans: %+v", out)
	}
}

// TestV2SpanSessionMismatch drives a span-decorated frame into a peer
// that never granted the capability (and the reverse). The hello exchange
// prevents this in practice; the codec's job is to fail cleanly so the
// connection owner drops and renegotiates instead of panicking or
// silently mis-merging.
func TestV2SpanSessionMismatch(t *testing.T) {
	spansEnc := NewV2Codec(false)
	spansEnc.EnableSpans()
	frame, err := spansEnc.Encode(&Message{Type: TypeResponse, ID: 4, Machine: "m0",
		AgentTS: 999,
		AgentSpans: []Span{
			{ID: 1, Name: "agent:dispatch", StartNS: 100, DurNS: 50},
			{ID: 2, Parent: 1, Name: "ovs:DUMP", StartNS: 110, DurNS: 20},
		}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewV2Codec(false).Decode(frame); err == nil {
		t.Fatal("span-blind peer accepted a span-decorated frame")
	}

	plain, err := NewV2Codec(false).Encode(&Message{Type: TypeResponse, ID: 5, Machine: "m0",
		Records: []core.Record{{Timestamp: 1, Element: "m0/pnic",
			Attrs: []core.Attr{{ID: core.AttrRxBytes, Value: 7}}}}})
	if err != nil {
		t.Fatal(err)
	}
	spansDec := NewV2Codec(false)
	spansDec.EnableSpans()
	if _, err := spansDec.Decode(plain); err == nil {
		t.Fatal("spans peer accepted a plain frame as span-decorated")
	}
}

// TestV2SpanTruncation clips a span-decorated frame at every byte
// boundary: each prefix must error, never panic.
func TestV2SpanTruncation(t *testing.T) {
	enc, _ := spanSession()
	frame, err := enc.Encode(&Message{Type: TypeResponse, ID: 6, Machine: "m0",
		AgentTS: 777,
		AgentSpans: []Span{
			{ID: 1, Name: "agent:dispatch", StartNS: 100, DurNS: 50, Status: "error"},
		}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(frame); i++ {
		dec := NewV2Codec(false)
		dec.EnableSpans()
		if _, err := dec.Decode(frame[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(frame))
		}
	}
}
