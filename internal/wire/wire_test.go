package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"perfsight/internal/core"
)

func TestMessageRoundTrip(t *testing.T) {
	in := &Message{
		Type:    TypeResponse,
		ID:      42,
		Machine: "m0",
		Records: []core.Record{{
			Timestamp: 123,
			Element:   "m0/pnic",
			Attrs:     []core.Attr{core.NamedAttr("rx_bytes", 1e9)},
		}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%+v\nout=%+v", in, out)
	}
}

// TestTraceFieldsRoundTrip pins the telemetry correlation fields: a
// traced request and a timed response must survive the frame intact.
func TestTraceFieldsRoundTrip(t *testing.T) {
	in := &Message{
		Type:    TypeResponse,
		ID:      9,
		Machine: "m0",
		TraceID: 0xCAFED00D,
		AgentNS: 123456789,
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != in.TraceID || out.AgentNS != in.AgentNS {
		t.Fatalf("trace fields lost: got trace_id=%d agent_ns=%d", out.TraceID, out.AgentNS)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%+v\nout=%+v", in, out)
	}
	// Untraced messages must not grow the frame: zero values are omitted.
	var bare bytes.Buffer
	if err := Write(&bare, &Message{Type: TypePing, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(bare.Bytes(), []byte("trace_id")) || bytes.Contains(bare.Bytes(), []byte("agent_ns")) {
		t.Fatalf("zero trace fields serialized: %s", bare.Bytes())
	}
}

// TestEncodeDecodeSplit checks the staged API (Encode/WriteFrame and
// ReadFrame/Decode) agrees with the combined Write/Read path.
func TestEncodeDecodeSplit(t *testing.T) {
	in := &Message{Type: TypeQuery, ID: 3, TraceID: 77, Query: &Query{All: true}}
	payload, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("staged round trip:\n in=%+v\nout=%+v", in, out)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(1); i <= 3; i++ {
		Write(&buf, &Message{Type: TypePing, ID: i})
	}
	for i := uint64(1); i <= 3; i++ {
		m, err := Read(&buf)
		if err != nil || m.ID != i {
			t.Fatalf("frame %d: %v, %v", i, m, err)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("want EOF after last frame, got %v", err)
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := Read(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadRejectsEmptyFrame(t *testing.T) {
	var hdr [4]byte
	if _, err := Read(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestReadRejectsTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, &Message{Type: TypePing, ID: 1})
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestReadRejectsMalformedJSON(t *testing.T) {
	payload := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	data := append(hdr[:], payload...)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestFilterAttrs(t *testing.T) {
	rec := core.Record{Element: "e", Attrs: []core.Attr{
		core.NamedAttr("a", 1), core.NamedAttr("b", 2), core.NamedAttr("c", 3),
	}}
	got := FilterAttrs(rec, []string{"c", "a", "missing"})
	if len(got.Attrs) != 2 {
		t.Fatalf("filtered attrs: %v", got.Attrs)
	}
	if v, _ := got.Get(core.AttrIDFor("c")); v != 3 {
		t.Fatal("filter lost value")
	}
	// Empty filter passes everything through untouched.
	if all := FilterAttrs(rec, nil); len(all.Attrs) != 3 {
		t.Fatal("nil filter dropped attrs")
	}
}

// TestQueryRoundTripProperty fuzzes query payloads through the framing.
func TestQueryRoundTripProperty(t *testing.T) {
	f := func(ids []string, attrs []string, all bool, id uint64) bool {
		q := &Query{All: all}
		for _, s := range ids {
			q.Elements = append(q.Elements, core.ElementID(s))
		}
		q.Attrs = attrs
		in := &Message{Type: TypeQuery, ID: id, Query: q}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil || out.Type != TypeQuery || out.ID != id || out.Query == nil {
			return false
		}
		if out.Query.All != all || len(out.Query.Elements) != len(q.Elements) {
			return false
		}
		for i := range q.Elements {
			if out.Query.Elements[i] != q.Elements[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
