package wire

import (
	"bytes"
	"reflect"
	"testing"
	"unicode/utf8"

	"perfsight/internal/core"
)

// FuzzRead throws arbitrary bytes at the frame reader: it must never
// panic, and whatever it accepts must re-encode.
func FuzzRead(f *testing.F) {
	// Seed with a valid frame and some near-misses.
	var buf bytes.Buffer
	Write(&buf, &Message{Type: TypeQuery, ID: 7, Query: &Query{All: true}})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	// Telemetry correlation fields: a traced query and a timed response.
	var traced bytes.Buffer
	Write(&traced, &Message{Type: TypeQuery, ID: 8, TraceID: 42, Query: &Query{All: true}})
	f.Add(traced.Bytes())
	var timed bytes.Buffer
	Write(&timed, &Message{Type: TypeResponse, ID: 8, TraceID: 42, AgentNS: 98765, Machine: "m0"})
	f.Add(timed.Bytes())
	f.Add([]byte(`{"type":"pong","id":1,"trace_id":-1}`)) // near-miss: negative trace id

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, msg); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if back.Type != msg.Type || back.ID != msg.ID {
			t.Fatalf("identity lost: %+v vs %+v", msg, back)
		}
		if back.TraceID != msg.TraceID || back.AgentNS != msg.AgentNS {
			t.Fatalf("trace identity lost: %+v vs %+v", msg, back)
		}
	})
}

// FuzzV2Decode throws arbitrary bytes at the v2 decoder: corrupt,
// truncated, or oversized frames (and string-table references pointing
// outside the table) must error, never panic, and never balloon memory.
func FuzzV2Decode(f *testing.F) {
	enc := NewV2Codec(false)
	valid, _ := enc.Encode(&Message{Type: TypeResponse, ID: 3, Machine: "m0",
		Records: []core.Record{{Timestamp: 10, Element: "m0/pnic",
			Attrs: []core.Attr{core.NamedAttr("rx_bytes", 123), core.NamedAttr("ratio", 0.5)}}}})
	f.Add(append([]byte{}, valid...))
	f.Add(valid[:len(valid)/2])                                         // truncated
	f.Add([]byte{v2Magic})                                              // short
	f.Add([]byte{v2Magic, 2, 0, 0, 0, 5})                               // string ref outside table
	f.Add([]byte{v2Magic, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0x03}) // huge count
	f.Add([]byte(`{"type":"pong","id":1}`))                             // JSON frame on a v2 session
	query, _ := enc.Encode(&Message{Type: TypeQuery, ID: 4,
		Query: &Query{Elements: []core.ElementID{"m0/pnic"}, Attrs: []string{"rx_bytes"}}})
	f.Add(append([]byte{}, query...))
	// Attr-key coding seeds: a schema-ID-coded record (final two bytes are
	// bare attr key + varint value), its out-of-range-ID mutation, its
	// corrupt-key mutation, and an extension attr travelling by name.
	idFrame, _ := NewV2Codec(false).Encode(&Message{Type: TypeResponse, ID: 5, Machine: "m0",
		Records: []core.Record{{Timestamp: 1, Element: "m0/host",
			Attrs: []core.Attr{{ID: core.AttrMemBytes, Value: 3}}}}})
	f.Add(append([]byte{}, idFrame...))
	outOfRange := append([]byte{}, idFrame...)
	outOfRange[len(outOfRange)-2] = 60 // > SchemaMax: name ref outside the table
	f.Add(outOfRange)
	corruptKey := append([]byte{}, idFrame...)
	corruptKey[len(corruptKey)-2] = 0 // ext marker with no name behind it
	f.Add(corruptKey)
	extFrame, _ := NewV2Codec(false).Encode(&Message{Type: TypeResponse, ID: 6, Machine: "m0",
		Records: []core.Record{{Timestamp: 1, Element: "m0/vm1/app",
			Attrs: []core.Attr{{ID: core.AttrRxPackets, Value: 5},
				core.NamedAttr("fuzz_ext_attr_seed", 9)}}}})
	f.Add(append([]byte{}, extFrame...))
	// Stream frames: a start with cadence bounds, a sequenced data batch,
	// a throttle control, and a corrupt stream-presence-flag mutation.
	startFrame, _ := NewV2Codec(false).Encode(&Message{Type: TypeStreamStart, ID: 7,
		Query:  &Query{All: true},
		Stream: &StreamInfo{CadenceMinNS: 1e8, CadenceMaxNS: 2e9}})
	f.Add(append([]byte{}, startFrame...))
	dataFrame, _ := NewV2Codec(false).Encode(&Message{Type: TypeStreamData, ID: 8, Machine: "m0",
		Stream: &StreamInfo{Seq: 3},
		Records: []core.Record{{Timestamp: 9, Element: "m0/pnic",
			Attrs: []core.Attr{{ID: core.AttrRxBytes, Value: 11}}}}})
	f.Add(append([]byte{}, dataFrame...))
	ctrlFrame, _ := NewV2Codec(false).Encode(&Message{Type: TypeStreamControl, ID: 9,
		Stream: &StreamInfo{ThrottleNS: 5e8}})
	f.Add(append([]byte{}, ctrlFrame...))
	badStream := append([]byte{}, ctrlFrame...)
	for i := range badStream {
		if badStream[i] == 1 { // the stream presence flag
			badStream[i] = 9
			break
		}
	}
	f.Add(badStream)
	// Payload (tag 3) seeds: a flow_sketch attr carrying a real sketch
	// blob, its truncated mutation (length uvarint promises more bytes
	// than the frame holds), an oversized length claim, a payload whose
	// blob is a zero-width sketch header (opaque to wire, hostile to the
	// sketch decoder downstream), and a stale-epoch delta frame that a
	// stateless decoder must reject rather than merge.
	sketchBlob := []byte{'F', 'K', 1, 16, 2, 1, 4, 7, 0, 0, 0, 0}
	sketchFrame, _ := NewV2Codec(false).Encode(&Message{Type: TypeResponse, ID: 10, Machine: "m0",
		Records: []core.Record{{Timestamp: 2, Element: "m0/vswitch",
			Attrs: []core.Attr{{ID: core.AttrRxPackets, Value: 5},
				{ID: core.SketchAttrID(), Value: 7, Payload: sketchBlob}}}}})
	f.Add(append([]byte{}, sketchFrame...))
	f.Add(sketchFrame[:len(sketchFrame)-4]) // truncated mid-payload
	oversized := append([]byte{}, sketchFrame...)
	if i := bytes.Index(oversized, []byte{3, byte(len(sketchBlob))}); i >= 0 {
		oversized[i+1] = 0xFF // length uvarint now runs past the frame
	}
	f.Add(oversized)
	zeroWidth := []byte{'F', 'K', 1, 0, 2, 1, 4, 7, 0, 0, 0, 0}
	zwFrame, _ := NewV2Codec(false).Encode(&Message{Type: TypeResponse, ID: 11, Machine: "m0",
		Records: []core.Record{{Timestamp: 3, Element: "m0/vswitch",
			Attrs: []core.Attr{{ID: core.SketchAttrID(), Value: 7, Payload: zeroWidth}}}}})
	f.Add(append([]byte{}, zwFrame...))
	deltaEnc := NewV2Codec(true)
	deltaEnc.Encode(&Message{Type: TypeResponse, ID: 12, Machine: "m0",
		Records: []core.Record{{Timestamp: 4, Element: "m0/vswitch",
			Attrs: []core.Attr{{ID: core.SketchAttrID(), Value: 9, Payload: sketchBlob}}}}})
	epochRegress, _ := deltaEnc.Encode(&Message{Type: TypeResponse, ID: 13, Machine: "m0",
		Records: []core.Record{{Timestamp: 5, Element: "m0/vswitch",
			Attrs: []core.Attr{{ID: core.SketchAttrID(), Value: 3, Payload: sketchBlob}}}}})
	f.Add(append([]byte{}, epochRegress...))
	// Span-section seeds: a span-decorated response, its truncated
	// mutation (section cut mid-span), the same frame as seen by a peer
	// that never granted spans (the span block then parses as element
	// metas and must error or mis-decode safely, never panic), and a
	// frame whose agent timestamps are skew-nonsense — decode must accept
	// it; sanity lives in the skew estimator and ClampSpanWindow.
	spanEnc := NewV2Codec(false)
	spanEnc.EnableSpans()
	spanFrame, _ := spanEnc.Encode(&Message{Type: TypeResponse, ID: 14, Machine: "m0",
		AgentNS: 75000, AgentTS: 1e15,
		AgentSpans: []Span{
			{ID: 1, Name: "agent:dispatch", StartNS: 1e15 - 75000, DurNS: 75000},
			{ID: 2, Parent: 1, Name: "ovs:DUMP-SKETCH", StartNS: 1e15 - 70000, DurNS: 40000},
			{ID: 3, Parent: 1, Name: "procfs:netdev", StartNS: 1e15 - 30000, DurNS: 20000, Status: "error"},
		},
		Records: []core.Record{{Timestamp: 6, Element: "m0/pnic",
			Attrs: []core.Attr{{ID: core.AttrRxBytes, Value: 11}}}}})
	f.Add(append([]byte{}, spanFrame...))
	f.Add(spanFrame[:len(spanFrame)-8]) // truncated span block
	nonsenseEnc := NewV2Codec(false)
	nonsenseEnc.EnableSpans()
	nonsense, _ := nonsenseEnc.Encode(&Message{Type: TypeResponse, ID: 15, Machine: "m0",
		AgentTS: -1 << 60,
		AgentSpans: []Span{
			{ID: 1, Name: "agent:dispatch", StartNS: 1 << 60, DurNS: -5},
		}})
	f.Add(append([]byte{}, nonsense...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewV2Codec(false)
		msg, err := dec.Decode(data)
		if err == nil {
			// Whatever a fresh session accepts must re-encode and re-decode
			// to the same message on another fresh session pair.
			e2 := NewV2Codec(false)
			payload, err := e2.Encode(msg)
			if err != nil {
				t.Fatalf("accepted message failed to re-encode: %v", err)
			}
			back, err := NewV2Codec(false).Decode(payload)
			if err != nil {
				t.Fatalf("re-encoded frame failed to parse: %v", err)
			}
			if back.Type != msg.Type || back.ID != msg.ID || back.Machine != msg.Machine {
				t.Fatalf("identity lost: %+v vs %+v", msg, back)
			}
		}
		// Same bytes through a spans session: the span block must decode
		// or error cleanly, and accepted frames must round-trip spans.
		spansDec := NewV2Codec(false)
		spansDec.EnableSpans()
		smsg, err := spansDec.Decode(data)
		if err != nil {
			return
		}
		se := NewV2Codec(false)
		se.EnableSpans()
		payload, err := se.Encode(smsg)
		if err != nil {
			t.Fatalf("accepted span message failed to re-encode: %v", err)
		}
		sd := NewV2Codec(false)
		sd.EnableSpans()
		back, err := sd.Decode(payload)
		if err != nil {
			t.Fatalf("re-encoded span frame failed to parse: %v", err)
		}
		if back.AgentTS != smsg.AgentTS || len(back.AgentSpans) != len(smsg.AgentSpans) {
			t.Fatalf("span identity lost: %+v vs %+v", smsg, back)
		}
	})
}

// FuzzCodecRoundTrip differentially tests the two codecs: any message
// both can represent must survive a v2 round trip exactly as it survives
// a JSON round trip.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), int64(3), "m0", "", "m0/pnic", "rx_bytes", 100.5, int64(9), false)
	f.Add(uint64(0), uint64(0), int64(0), "", "partial", "m1/vm2/vnic", "", -0.0, int64(-1), true)
	f.Add(uint64(7), uint64(9), int64(-5), "m\x00x", "e", "漢字", "attr", 1e300, int64(1<<60), false)
	f.Fuzz(func(t *testing.T, id, traceID uint64, agentNS int64, machine, errStr, elem, attr string, val float64, ts int64, all bool) {
		// encoding/json coerces invalid UTF-8 to U+FFFD, so only valid
		// strings round-trip losslessly through both codecs (v2 itself
		// preserves raw bytes; a separate v2-only check covers that).
		for _, s := range []string{machine, errStr, elem, attr} {
			if !utf8.ValidString(s) {
				return
			}
		}
		// Construct a canonical message (nil slices when empty) so both
		// codecs' nil-vs-empty conventions line up.
		in := &Message{Type: TypeResponse, ID: id, TraceID: traceID, AgentNS: agentNS,
			Machine: core.MachineID(machine), Error: errStr,
			Records: []core.Record{{Timestamp: ts, Element: core.ElementID(elem),
				Attrs: []core.Attr{core.NamedAttr(attr, val)}}}}
		if all {
			in.Query = &Query{All: true}
		}
		jsonPayload, err := Encode(in)
		if err != nil {
			return // non-finite floats: JSON cannot carry the message at all
		}
		viaJSON, err := Decode(jsonPayload)
		if err != nil {
			t.Fatalf("json round trip: %v", err)
		}
		v2Payload, err := NewV2Codec(false).Encode(in)
		if err != nil {
			t.Fatalf("v2 encode: %v", err)
		}
		viaV2, err := NewV2Codec(false).Decode(v2Payload)
		if err != nil {
			t.Fatalf("v2 decode: %v", err)
		}
		if !reflect.DeepEqual(viaJSON, viaV2) {
			t.Fatalf("codecs disagree:\njson %+v\n  v2 %+v", viaJSON, viaV2)
		}
	})
}

// FuzzRecordJSON exercises record marshalling through the protocol with
// arbitrary attribute names/values.
func FuzzRecordJSON(f *testing.F) {
	f.Add("rx_bytes", 1.5, int64(42))
	f.Add("", -1.0, int64(0))
	f.Fuzz(func(t *testing.T, name string, val float64, ts int64) {
		in := &Message{Type: TypeResponse, Records: []core.Record{{
			Timestamp: ts,
			Element:   "m0/pnic",
			Attrs:     []core.Attr{core.NamedAttr(name, val)},
		}}}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			// Non-finite floats are not representable in JSON; rejecting
			// them is correct behaviour.
			return
		}
		out, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(out.Records) != 1 || out.Records[0].Timestamp != ts {
			t.Fatalf("record identity lost: %+v", out.Records)
		}
	})
}
