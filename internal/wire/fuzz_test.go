package wire

import (
	"bytes"
	"testing"

	"perfsight/internal/core"
)

// FuzzRead throws arbitrary bytes at the frame reader: it must never
// panic, and whatever it accepts must re-encode.
func FuzzRead(f *testing.F) {
	// Seed with a valid frame and some near-misses.
	var buf bytes.Buffer
	Write(&buf, &Message{Type: TypeQuery, ID: 7, Query: &Query{All: true}})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	// Telemetry correlation fields: a traced query and a timed response.
	var traced bytes.Buffer
	Write(&traced, &Message{Type: TypeQuery, ID: 8, TraceID: 42, Query: &Query{All: true}})
	f.Add(traced.Bytes())
	var timed bytes.Buffer
	Write(&timed, &Message{Type: TypeResponse, ID: 8, TraceID: 42, AgentNS: 98765, Machine: "m0"})
	f.Add(timed.Bytes())
	f.Add([]byte(`{"type":"pong","id":1,"trace_id":-1}`)) // near-miss: negative trace id

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, msg); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if back.Type != msg.Type || back.ID != msg.ID {
			t.Fatalf("identity lost: %+v vs %+v", msg, back)
		}
		if back.TraceID != msg.TraceID || back.AgentNS != msg.AgentNS {
			t.Fatalf("trace identity lost: %+v vs %+v", msg, back)
		}
	})
}

// FuzzRecordJSON exercises record marshalling through the protocol with
// arbitrary attribute names/values.
func FuzzRecordJSON(f *testing.F) {
	f.Add("rx_bytes", 1.5, int64(42))
	f.Add("", -1.0, int64(0))
	f.Fuzz(func(t *testing.T, name string, val float64, ts int64) {
		in := &Message{Type: TypeResponse, Records: []core.Record{{
			Timestamp: ts,
			Element:   "m0/pnic",
			Attrs:     []core.Attr{{Name: name, Value: val}},
		}}}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			// Non-finite floats are not representable in JSON; rejecting
			// them is correct behaviour.
			return
		}
		out, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(out.Records) != 1 || out.Records[0].Timestamp != ts {
			t.Fatalf("record identity lost: %+v", out.Records)
		}
	})
}
