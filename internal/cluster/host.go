package cluster

import (
	"hash/fnv"
	"sync"
	"time"

	"perfsight/internal/dataplane"
	"perfsight/internal/sim"
	"perfsight/internal/stream"
)

// Host is an external endpoint outside the simulated cloud — a client on
// the Internet, the cloud gateway, or a remote server. Hosts have no
// virtualization stack: they emit directly onto the wire (bounded by their
// access link) and consume arrivals instantly (an infinitely fast peer),
// which keeps the diagnosed bottlenecks inside the software dataplane
// where the paper's experiments place them.
type Host struct {
	Name string
	// LinkBps bounds egress (0 = unlimited).
	LinkBps float64

	mu        sync.Mutex
	outQ      []dataplane.Batch
	tickSent  int64
	tickCap   int64
	inboxCap  int64
	rxBytes   int64
	rxPackets int64

	pump    []*stream.Conn
	sources []*HostSource
}

// emit is the stream.Emitter for host-originated connections.
func (h *Host) emit(b dataplane.Batch) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tickCap > 0 {
		free := h.tickCap - h.tickSent
		if free <= 0 {
			return 0
		}
		if b.Bytes > free {
			var over dataplane.Batch
			b, over = b.SplitBytes(free)
			_ = over // stays in the conn's send buffer
		}
	}
	h.tickSent += b.Bytes
	h.outQ = append(h.outQ, b)
	return b.Bytes
}

// EmitRaw pushes an open-loop batch from this host onto the wire.
func (h *Host) EmitRaw(b dataplane.Batch) int64 {
	return h.emit(b)
}

// RxFree implements stream.Window: hosts consume instantly, so they always
// advertise a large window.
func (h *Host) RxFree() int64 { return h.inboxCap }

// deliver consumes an arrival.
func (h *Host) deliver(b dataplane.Batch) {
	h.mu.Lock()
	h.rxBytes += b.Bytes
	h.rxPackets += int64(b.Packets)
	h.mu.Unlock()
	b.NotifyDelivered()
}

// ReceivedBytes returns cumulative bytes delivered to this host.
func (h *Host) ReceivedBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rxBytes
}

// ReceivedPackets returns cumulative packets delivered to this host.
func (h *Host) ReceivedPackets() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rxPackets
}

// AddSource attaches a closed-loop generator writing into conn at rateBps
// (0 = as fast as the connection accepts). Rate-limited sources carry a
// small deterministic jitter (±2%) seeded from the flow ID, breaking the
// lockstep a noiseless simulation would otherwise impose on every flow.
func (h *Host) AddSource(conn *stream.Conn, rateBps float64) *HostSource {
	hs := fnv.New64a()
	hs.Write([]byte(conn.Flow()))
	s := &HostSource{Conn: conn, RateBps: rateBps, rng: sim.NewRNG(hs.Sum64())}
	h.sources = append(h.sources, s)
	return s
}

// tick resets the link budget, runs sources, and pumps host-side conns.
func (h *Host) tick(now, dt time.Duration) {
	h.mu.Lock()
	h.tickSent = 0
	if h.LinkBps > 0 {
		h.tickCap = int64(h.LinkBps / 8 * dt.Seconds())
	} else {
		h.tickCap = 0
	}
	h.mu.Unlock()

	for _, s := range h.sources {
		s.tick(dt)
	}
	for _, conn := range h.pump {
		conn.Pump(dt)
	}
}

// drainOut collects this tick's wire emissions.
func (h *Host) drainOut() []dataplane.Batch {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.outQ
	h.outQ = nil
	return out
}

// HostSource writes application data into a host-side connection — the
// external HTTP client of the Fig 12 and Fig 13 experiments.
type HostSource struct {
	Conn    *stream.Conn
	RateBps float64 // 0 = unlimited

	generated int64
	paused    bool
	rng       *sim.RNG
}

// Pause stops generation (scenario control).
func (s *HostSource) Pause(p bool) { s.paused = p }

// SetRate changes the offered rate.
func (s *HostSource) SetRate(bps float64) { s.RateBps = bps }

// GeneratedBytes returns bytes accepted by the connection.
func (s *HostSource) GeneratedBytes() int64 { return s.generated }

func (s *HostSource) tick(dt time.Duration) {
	if s.paused {
		return
	}
	want := s.Conn.SendBufFree()
	if s.RateBps > 0 {
		rate := s.RateBps
		if s.rng != nil {
			rate = s.rng.Jitter(rate, 0.02)
		}
		if w := int64(rate / 8 * dt.Seconds()); w < want {
			want = w
		}
	}
	if want > 0 {
		s.generated += s.Conn.Write(want)
	}
}
