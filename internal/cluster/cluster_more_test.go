package cluster

import (
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

func TestRegistrySyncOnPlacement(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	reg := c.Registry("m0")
	base := reg.Len()
	c.PlaceVM("m0", "vm0", 1.0, 1e9, middlebox.NewSink("m0/vm0/app", 1e9))
	if reg.Len() <= base {
		t.Fatal("registry not updated on placement")
	}
	if _, ok := reg.Get("m0/vm0/tun"); !ok {
		t.Fatal("per-VM element missing from registry")
	}
	c.MigrateVM("m0", "vm0")
	if _, ok := reg.Get("m0/vm0/tun"); ok {
		t.Fatal("migrated VM's element lingers in registry")
	}
}

func TestTopologyAssignment(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	c.PlaceVM("m0", "vm0", 1.0, 2e8, middlebox.NewSink("m0/vm0/app", 2e8))
	c.AssignStack("t1", "m0")
	c.AssignVM("t1", "m0", "vm0")
	c.AddChain("t1", "m0/vm0/app")

	net := c.Topology().Tenants["t1"]
	if net == nil {
		t.Fatal("tenant missing")
	}
	if _, ok := net.Elements["m0/pnic"]; !ok {
		t.Fatal("stack element not assigned")
	}
	info, ok := net.Elements["m0/vm0/app"]
	if !ok || info.Kind != core.KindMiddlebox {
		t.Fatalf("app info: %+v", info)
	}
	if info.CapacityBps != 2e8 {
		t.Fatalf("app capacity %v; want vNIC capacity", info.CapacityBps)
	}
	if len(net.Chains) != 1 {
		t.Fatal("chain not recorded")
	}
}

func TestRerouteFlowMovesTraffic(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	c.AddMachine(testMachineCfg("m1"))
	sinkA := middlebox.NewSink("m0/vmA/app", 1e9)
	sinkB := middlebox.NewSink("m1/vmB/app", 1e9)
	c.PlaceVM("m0", "vmA", 1.0, 1e9, sinkA)
	c.PlaceVM("m1", "vmB", 1.0, 1e9, sinkB)

	h := c.AddHost("h", 0)
	conn := c.Connect("f", HostEndpoint("h"), VMEndpoint("m0", "vmA"), stream.Config{})
	h.AddSource(conn, 100e6)
	c.Run(time.Second)
	if sinkA.ReceivedBytes() == 0 {
		t.Fatal("no traffic before reroute")
	}

	c.RerouteFlow("f", HostEndpoint("h"), VMEndpoint("m1", "vmB"))
	beforeA := sinkA.ReceivedBytes()
	c.Run(2 * time.Second)
	if sinkB.ReceivedBytes() == 0 {
		t.Fatal("no traffic after reroute")
	}
	// A few in-flight bytes may still land at A right after the switch.
	if grown := sinkA.ReceivedBytes() - beforeA; grown > 1<<20 {
		t.Fatalf("old destination still receiving: +%d bytes", grown)
	}
	if c.Machine("m0").Stack.VSwitch.Lookup("f") != nil {
		t.Fatal("stale switch rule on the old machine")
	}
}

func TestUnroutedWireTrafficNotifiesDrop(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	src := middlebox.NewRawSource("m0/vm0/app", 1e9, "orphan", 50e6, 1448, nil)
	c.PlaceVM("m0", "vm0", 1.0, 1e9, src)
	// Switch rule exists (to pNIC) but no cluster route: fabric blackhole.
	c.Machine("m0").Stack.VSwitch.InstallToPNIC("orphan")
	c.Run(500 * time.Millisecond) // must not panic or wedge
	if src.SentBytes() == 0 {
		t.Fatal("source never emitted")
	}
}

func TestDuplicateMachinePanics(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.AddMachine(testMachineCfg("m0"))
}

func TestDuplicateHostPanics(t *testing.T) {
	c := New(time.Millisecond)
	c.AddHost("h", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.AddHost("h", 0)
}

func TestHostLinkRateLimitsEgress(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	sink := middlebox.NewSink("m0/vm0/app", 10e9)
	c.PlaceVM("m0", "vm0", 2.0, 10e9, sink)
	h := c.AddHost("h", 100e6) // 100 Mbps access link
	conn := c.Connect("f", HostEndpoint("h"), VMEndpoint("m0", "vm0"), stream.Config{})
	h.AddSource(conn, 0)
	c.Run(2 * time.Second)
	bps := float64(conn.DeliveredBytes()) * 8 / 2
	if bps > 120e6 {
		t.Fatalf("host link leaked: %.0f bps", bps)
	}
	if bps < 50e6 {
		t.Fatalf("host link too strict: %.0f bps", bps)
	}
}

func TestHostReceiveAccounting(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	c.AddHost("server", 0)
	conn := c.Connect("f", VMEndpoint("m0", "vm0"), HostEndpoint("server"), stream.Config{})
	src := middlebox.NewConnSource("m0/vm0/app", 1e9, conn, 50e6)
	c.PlaceVM("m0", "vm0", 1.0, 1e9, src)
	c.Run(time.Second)
	h := c.Host("server")
	if h.ReceivedBytes() == 0 || h.ReceivedPackets() == 0 {
		t.Fatal("host receive counters idle")
	}
	if h.ReceivedBytes() != conn.DeliveredBytes() {
		t.Fatalf("host counted %d, conn delivered %d", h.ReceivedBytes(), conn.DeliveredBytes())
	}
}

func TestHostSourcePauseAndRate(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	c.PlaceVM("m0", "vm0", 1.0, 1e9, sink)
	h := c.AddHost("h", 0)
	conn := c.Connect("f", HostEndpoint("h"), VMEndpoint("m0", "vm0"), stream.Config{})
	src := h.AddSource(conn, 100e6)
	c.Run(time.Second)
	before := src.GeneratedBytes()
	src.Pause(true)
	c.Run(time.Second)
	if src.GeneratedBytes() != before {
		t.Fatal("paused source kept generating")
	}
	src.Pause(false)
	src.SetRate(10e6)
	c.Run(time.Second)
	delta := src.GeneratedBytes() - before
	if bps := float64(delta) * 8; bps > 15e6 {
		t.Fatalf("rate change ignored: %.0f bps", bps)
	}
}

func TestConnectUnknownEndpointsPanic(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown host")
		}
	}()
	c.Connect("f", HostEndpoint("ghost"), VMEndpoint("m0", "vm0"), stream.Config{})
}

func TestVirtualTimeBookkeeping(t *testing.T) {
	c := New(time.Millisecond)
	c.Run(250 * time.Millisecond)
	if c.Now() != 250*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	if c.NowNS() != int64(250*time.Millisecond) {
		t.Fatalf("NowNS = %d", c.NowNS())
	}
}
