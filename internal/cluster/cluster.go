// Package cluster assembles multi-machine scenarios: physical machines
// running the simulated virtualization stack, external hosts (clients,
// servers, the cloud gateway — the "Internet" side of Figure 2), flow
// routing between them, and the tenant topology the PerfSight controller
// consumes. It is the test-bed builder used by the experiments, examples
// and integration tests.
package cluster

import (
	"fmt"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	"perfsight/internal/sim"
	"perfsight/internal/stats"
	"perfsight/internal/stream"
	"perfsight/internal/telemetry"
)

// Endpoint designates one end of a flow: a VM on a machine, or an
// external host.
type Endpoint struct {
	Machine core.MachineID
	VM      core.VMID
	Host    string
}

// VMEndpoint returns an endpoint for a VM.
func VMEndpoint(m core.MachineID, vm core.VMID) Endpoint {
	return Endpoint{Machine: m, VM: vm}
}

// HostEndpoint returns an endpoint for an external host.
func HostEndpoint(name string) Endpoint { return Endpoint{Host: name} }

// IsHost reports whether the endpoint is an external host.
func (e Endpoint) IsHost() bool { return e.Host != "" }

// route records a flow's wire-level destination.
type route struct {
	machine core.MachineID
	host    string
}

// Cluster is a complete simulated deployment.
type Cluster struct {
	Engine *sim.Engine

	// RmemPerConn clamps the receive window a VM-destined connection
	// advertises, modelling per-socket tcp_rmem rather than the VM's
	// whole socket pool (Linux 3.2 default: 212992). Zero means 1 MiB.
	RmemPerConn int64
	// AckDelay is how stale the receive window a sender acts on may be
	// (window updates ride ACKs, one RTT behind). Senders overshooting a
	// stale window is what lets a slow VM's TUN overflow before flow
	// control catches up, as on real TCP. Zero means 2 ms.
	AckDelay time.Duration
	// NoStaleWindows disables the freeze of window updates while a guest
	// cannot poll its ring (ablation knob; see DESIGN.md §5).
	NoStaleWindows bool

	machines     map[core.MachineID]*machine.Machine
	machineOrder []core.MachineID
	hosts        map[string]*Host
	hostOrder    []string
	routes       map[dataplane.FlowID]route
	pending      map[core.MachineID][]dataplane.Batch
	registries   map[core.MachineID]*stats.Registry
	topo         *core.Topology

	// Optional self-telemetry (EnableTelemetry): wall-clock cost of each
	// simulated tick, and where newly attached drop tracers register.
	telReg  *telemetry.Registry
	tickDur *telemetry.Histogram
	ticks   *telemetry.Counter
}

// New builds an empty cluster with the given tick size.
func New(dt time.Duration) *Cluster {
	c := &Cluster{
		Engine:     sim.NewEngine(dt),
		machines:   make(map[core.MachineID]*machine.Machine),
		hosts:      make(map[string]*Host),
		routes:     make(map[dataplane.FlowID]route),
		pending:    make(map[core.MachineID][]dataplane.Batch),
		registries: make(map[core.MachineID]*stats.Registry),
		topo:       core.NewTopology(),
	}
	c.Engine.AddFunc(c.tick)
	return c
}

// Now returns current virtual time.
func (c *Cluster) Now() time.Duration { return c.Engine.Now() }

// NowNS returns current virtual time in nanoseconds (record timestamps).
func (c *Cluster) NowNS() int64 { return int64(c.Engine.Now()) }

// Run advances virtual time by d.
func (c *Cluster) Run(d time.Duration) { c.Engine.Run(d) }

// AddMachine creates a physical machine.
func (c *Cluster) AddMachine(cfg machine.Config) *machine.Machine {
	if _, dup := c.machines[cfg.ID]; dup {
		panic(fmt.Sprintf("cluster: duplicate machine %s", cfg.ID))
	}
	m := machine.New(cfg)
	c.machines[cfg.ID] = m
	c.machineOrder = append(c.machineOrder, cfg.ID)
	c.registries[cfg.ID] = stats.NewRegistry()
	return m
}

// Machine returns a machine by ID.
func (c *Cluster) Machine(id core.MachineID) *machine.Machine { return c.machines[id] }

// Machines returns machine IDs in creation order.
func (c *Cluster) Machines() []core.MachineID {
	return append([]core.MachineID(nil), c.machineOrder...)
}

// AddHost creates an external host with the given access-link rate
// (0 = unlimited).
func (c *Cluster) AddHost(name string, linkBps float64) *Host {
	if _, dup := c.hosts[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate host %s", name))
	}
	h := &Host{Name: name, LinkBps: linkBps, inboxCap: 4 << 20}
	c.hosts[name] = h
	c.hostOrder = append(c.hostOrder, name)
	return h
}

// Host returns a host by name.
func (c *Cluster) Host(name string) *Host { return c.hosts[name] }

// PlaceVM places a VM and registers its elements with the machine's agent
// registry.
func (c *Cluster) PlaceVM(m core.MachineID, vm core.VMID, vcpus, vnicBps float64, apps ...machine.App) *machine.VM {
	mm := c.machines[m]
	if mm == nil {
		panic(fmt.Sprintf("cluster: unknown machine %s", m))
	}
	v := mm.AddVM(vm, vcpus, vnicBps, apps...)
	c.syncRegistry(m)
	return v
}

// MigrateVM removes a VM from one machine (the §7.3 operator response to
// contention). Traffic must be re-routed by the caller.
func (c *Cluster) MigrateVM(from core.MachineID, vm core.VMID) {
	if mm := c.machines[from]; mm != nil {
		mm.RemoveVM(vm)
		c.syncRegistry(from)
	}
}

// syncRegistry rebuilds a machine's element registry after placement
// changes.
func (c *Cluster) syncRegistry(m core.MachineID) {
	reg := c.registries[m]
	if reg == nil {
		return
	}
	for _, e := range reg.List() {
		reg.Unregister(e.ID())
	}
	for _, e := range c.machines[m].Elements() {
		reg.Register(e)
	}
}

// EnableDropTracing attaches a drop tracer to a machine's stack and
// returns it; capacity bounds the retained event ring (<= 0 picks the
// dataplane default — read it back with Capacity()). With cluster
// telemetry on, the tracer's event/ring gauges register automatically.
func (c *Cluster) EnableDropTracing(m core.MachineID, capacity int) *dataplane.DropTracer {
	mm := c.machines[m]
	if mm == nil {
		return nil
	}
	tr := dataplane.NewDropTracer(capacity)
	mm.Stack.AttachTracer(tr)
	if c.telReg != nil {
		tr.RegisterMetrics(c.telReg, string(m))
	}
	return tr
}

// EnableTelemetry wires the cluster's self-metrics into reg: wall-clock
// duration of each simulated tick (the stack-tick hot path) plus
// machine/host inventory gauges. Call before Run; tracers attached by
// EnableDropTracing afterwards register their gauges in the same reg.
func (c *Cluster) EnableTelemetry(reg *telemetry.Registry) *Cluster {
	c.telReg = reg
	c.tickDur = reg.Histogram("perfsight_dataplane_tick_duration_ns",
		"wall-clock cost of one simulated cluster tick, nanoseconds")
	c.ticks = reg.Counter("perfsight_dataplane_ticks_total",
		"simulated cluster ticks executed")
	reg.GaugeFunc("perfsight_dataplane_machines",
		"physical machines in the cluster", func() float64 {
			return float64(len(c.machines))
		})
	reg.GaugeFunc("perfsight_dataplane_hosts",
		"external hosts in the cluster", func() float64 {
			return float64(len(c.hosts))
		})
	reg.GaugeFunc("perfsight_dataplane_virtual_seconds",
		"simulated time elapsed", func() float64 {
			return c.Engine.Now().Seconds()
		})
	return c
}

// Registry returns the per-machine element registry the agent serves.
func (c *Cluster) Registry(m core.MachineID) *stats.Registry { return c.registries[m] }

// Topology returns the tenant topology for the controller.
func (c *Cluster) Topology() *core.Topology { return c.topo }

// Assign records elements as belonging to a tenant's virtual network.
func (c *Cluster) Assign(tid core.TenantID, m core.MachineID, kind core.ElementKind, capacityBps float64, ids ...core.ElementID) {
	net := c.topo.Net(tid)
	for _, id := range ids {
		net.Add(id, core.ElementInfo{Machine: m, Kind: kind, CapacityBps: capacityBps})
	}
}

// AssignStack assigns every virtualization-stack element of machine m to
// the tenant (contending tenants share these).
func (c *Cluster) AssignStack(tid core.TenantID, m core.MachineID) {
	mm := c.machines[m]
	net := c.topo.Net(tid)
	for _, e := range mm.Stack.Elements() {
		net.Add(e.ID(), core.ElementInfo{Machine: m, Kind: e.Kind()})
	}
	net.Add(mm.HostElement().ID(), core.ElementInfo{Machine: m, Kind: core.KindUnknown})
}

// AssignVM assigns a VM's per-VM elements (TUN, QEMU, guest, apps) to the
// tenant.
func (c *Cluster) AssignVM(tid core.TenantID, m core.MachineID, vm core.VMID) {
	mm := c.machines[m]
	v := mm.VM(vm)
	if v == nil {
		return
	}
	net := c.topo.Net(tid)
	for _, e := range v.Stack.Elements() {
		net.Add(e.ID(), core.ElementInfo{Machine: m, Kind: e.Kind()})
	}
	for _, a := range v.Apps {
		rec := a.Snapshot(0)
		net.Add(a.ID(), core.ElementInfo{
			Machine:     m,
			Kind:        core.KindMiddlebox,
			CapacityBps: rec.GetOr(core.AttrCapacityBps, 0),
		})
	}
}

// AddChain records a tenant's middlebox chain (traversal order) for
// Algorithm 2.
func (c *Cluster) AddChain(tid core.TenantID, chain ...core.ElementID) {
	net := c.topo.Net(tid)
	net.Chains = append(net.Chains, chain)
}

// RouteFlow installs wire routing and switch rules so flow f travels from
// src to dst. It must be called before traffic is generated on f.
func (c *Cluster) RouteFlow(f dataplane.FlowID, src, dst Endpoint) {
	if dst.IsHost() {
		c.routes[f] = route{host: dst.Host}
	} else {
		c.routes[f] = route{machine: dst.Machine}
		mm := c.machines[dst.Machine]
		if mm == nil {
			panic(fmt.Sprintf("cluster: route %s to unknown machine %s", f, dst.Machine))
		}
		mm.Stack.VSwitch.InstallToVM(f, dst.VM)
	}
	if !src.IsHost() {
		sm := c.machines[src.Machine]
		if sm == nil {
			panic(fmt.Sprintf("cluster: route %s from unknown machine %s", f, src.Machine))
		}
		if dst.IsHost() || dst.Machine != src.Machine {
			sm.Stack.VSwitch.InstallToPNIC(f)
		}
		// Same-machine VM-to-VM: the destination rule above already routes
		// the flow from the backlog to the target TUN.
	}
}

// RerouteFlow points an existing flow at a new destination (scale-out /
// migration). The old destination's switch rule is removed.
func (c *Cluster) RerouteFlow(f dataplane.FlowID, src, newDst Endpoint) {
	if r, ok := c.routes[f]; ok && r.machine != "" {
		if mm := c.machines[r.machine]; mm != nil {
			mm.Stack.VSwitch.Remove(f)
		}
	}
	c.RouteFlow(f, src, newDst)
}

// Connect creates a stream connection on flow f from src to dst, with
// routing installed. Endpoints resolve lazily, so conns may be created
// before their VMs are placed (apps usually take their output conns at
// construction) and keep working across migration. The sender side must
// pump the conn (VM apps pump their own conns; host-side conns are pumped
// by the host each tick).
func (c *Cluster) Connect(f dataplane.FlowID, src, dst Endpoint, cfg stream.Config) *stream.Conn {
	c.RouteFlow(f, src, dst)
	var emit stream.Emitter
	if src.IsHost() {
		h := c.hosts[src.Host]
		if h == nil {
			panic(fmt.Sprintf("cluster: Connect %s from unknown host %s", f, src.Host))
		}
		emit = h.emit
	} else {
		emit = func(b dataplane.Batch) int64 {
			vs := c.machines[src.Machine].VM(src.VM)
			if vs == nil {
				return 0
			}
			b.Egress = true
			return vs.Stack.Socket.Write(b)
		}
	}
	var rwnd stream.Window
	if dst.IsHost() {
		h := c.hosts[dst.Host]
		if h == nil {
			panic(fmt.Sprintf("cluster: Connect %s to unknown host %s", f, dst.Host))
		}
		rwnd = h
	} else {
		rwnd = &vmWindow{c: c, m: dst.Machine, vm: dst.VM}
	}
	conn := stream.NewConn(f, cfg, emit, rwnd)
	if src.IsHost() {
		c.hosts[src.Host].pump = append(c.hosts[src.Host].pump, conn)
	}
	return conn
}

// vmWindow resolves a VM's socket receive window lazily, clamped to the
// per-connection rmem and refreshed only at ACK cadence.
type vmWindow struct {
	c  *Cluster
	m  core.MachineID
	vm core.VMID

	lastVal    int64
	lastUpdate time.Duration
	primed     bool
}

// RxFree implements stream.Window.
func (w *vmWindow) RxFree() int64 {
	now := w.c.Now()
	delay := w.c.AckDelay
	if delay <= 0 {
		delay = 2 * time.Millisecond
	}
	if w.primed && now-w.lastUpdate < delay {
		return w.lastVal
	}
	mm := w.c.machines[w.m]
	if mm == nil {
		return 0
	}
	vs := mm.VM(w.vm)
	if vs == nil {
		return 0
	}
	if w.primed && !w.c.NoStaleWindows && vs.Stack.KernelBehind() {
		// A guest that cannot poll its ring cannot send ACKs or window
		// updates either: senders keep acting on the last advertised
		// window, which is how a starved VM's TUN overflows before flow
		// control reacts.
		return w.lastVal
	}
	free := vs.Stack.Socket.RxFree()
	clamp := w.c.RmemPerConn
	if clamp <= 0 {
		clamp = 1 << 20
	}
	if free > clamp {
		free = clamp
	}
	w.lastVal = free
	w.lastUpdate = now
	w.primed = true
	return free
}

// tick advances the whole cluster one step: hosts emit, machines run, and
// wire traffic is routed with one tick of store-and-forward latency.
func (c *Cluster) tick(now, dt time.Duration) {
	if c.tickDur != nil {
		start := time.Now()
		defer func() {
			c.tickDur.Observe(float64(time.Since(start).Nanoseconds()))
			c.ticks.Inc()
		}()
	}
	next := make(map[core.MachineID][]dataplane.Batch, len(c.machines))

	// External hosts generate and pump first.
	for _, hn := range c.hostOrder {
		h := c.hosts[hn]
		h.tick(now, dt)
		for _, b := range h.drainOut() {
			c.routeBatch(b, next, dt)
		}
	}

	// Machines consume last tick's wire arrivals and run their pipelines.
	for _, mid := range c.machineOrder {
		m := c.machines[mid]
		if arr := c.pending[mid]; len(arr) > 0 {
			m.OfferWire(arr, dt)
		}
		m.Tick(now, dt)
		for _, b := range m.CollectWire() {
			c.routeBatch(b, next, dt)
		}
	}
	c.pending = next
}

// routeBatch delivers a wire batch toward its flow's destination.
func (c *Cluster) routeBatch(b dataplane.Batch, next map[core.MachineID][]dataplane.Batch, dt time.Duration) {
	r, ok := c.routes[b.Flow]
	if !ok {
		// Unrouted wire traffic disappears into the fabric; flows are
		// notified so closed loops do not hang.
		b.NotifyDropped("fabric/unrouted")
		return
	}
	if r.host != "" {
		c.hosts[r.host].deliver(b)
		return
	}
	next[r.machine] = append(next[r.machine], b)
}
