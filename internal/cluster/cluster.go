// Package cluster assembles multi-machine scenarios: physical machines
// running the simulated virtualization stack, external hosts (clients,
// servers, the cloud gateway — the "Internet" side of Figure 2), flow
// routing between them, and the tenant topology the PerfSight controller
// consumes. It is the test-bed builder used by the experiments, examples
// and integration tests.
package cluster

import (
	"fmt"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	"perfsight/internal/sim"
	"perfsight/internal/stats"
	"perfsight/internal/stream"
	"perfsight/internal/telemetry"
)

// Endpoint designates one end of a flow: a VM on a machine, or an
// external host.
type Endpoint struct {
	Machine core.MachineID
	VM      core.VMID
	Host    string
}

// VMEndpoint returns an endpoint for a VM.
func VMEndpoint(m core.MachineID, vm core.VMID) Endpoint {
	return Endpoint{Machine: m, VM: vm}
}

// HostEndpoint returns an endpoint for an external host.
func HostEndpoint(name string) Endpoint { return Endpoint{Host: name} }

// IsHost reports whether the endpoint is an external host.
func (e Endpoint) IsHost() bool { return e.Host != "" }

// route records a flow's wire-level destination.
type route struct {
	machine core.MachineID
	host    string
}

// Cluster is a complete simulated deployment.
//
// Ticks follow a canonical two-phase schedule in both serial and parallel
// mode (see DESIGN.md §"Parallel lab & chaos"): pre tickers (chaos,
// actuators) → host phase → machine phase → serialized commit (wire
// routing, fabric fair share, deferred connection feedback, receive-window
// refresh, post tickers). Machines exchange wire traffic with the cluster
// exclusively through the OfferWire/CollectWire structs, never by mutating
// another machine, which is what makes the phases safe to shard across
// tick domains (Parallelize) while staying byte-identical to serial runs.
type Cluster struct {
	Engine *sim.Engine

	// FabricBps caps aggregate machine-to-machine wire bandwidth (the core
	// fabric). At commit, per-flow demands receive a max–min fair share of
	// the fabric's per-tick byte budget and the excess is dropped at
	// "fabric/core" — the cluster-level fair-share solver that runs in the
	// commit phase. Zero means an unconstrained fabric.
	FabricBps float64

	// RmemPerConn clamps the receive window a VM-destined connection
	// advertises, modelling per-socket tcp_rmem rather than the VM's
	// whole socket pool (Linux 3.2 default: 212992). Zero means 1 MiB.
	RmemPerConn int64
	// AckDelay is how stale the receive window a sender acts on may be
	// (window updates ride ACKs, one RTT behind). Senders overshooting a
	// stale window is what lets a slow VM's TUN overflow before flow
	// control catches up, as on real TCP. Zero means 2 ms.
	AckDelay time.Duration
	// NoStaleWindows disables the freeze of window updates while a guest
	// cannot poll its ring (ablation knob; see DESIGN.md §5).
	NoStaleWindows bool

	machines     map[core.MachineID]*machine.Machine
	machineOrder []core.MachineID
	hosts        map[string]*Host
	hostOrder    []string
	routes       map[dataplane.FlowID]route
	pending      map[core.MachineID][]dataplane.Batch
	registries   map[core.MachineID]*stats.Registry
	topo         *core.Topology

	// Two-phase tick state. conns/windows are everything the commit phase
	// must settle serially; pre/post run outside the parallel phases in
	// both modes.
	par       *sim.ParallelEngine
	pre       []sim.Ticker
	post      []sim.Ticker
	conns     []*stream.Conn
	windows   []*vmWindow
	frozen    bool      // placement frozen by Parallelize
	tickStart time.Time // telemetry: wall-clock start of the current tick

	// Optional self-telemetry (EnableTelemetry): wall-clock cost of each
	// simulated tick, and where newly attached drop tracers register.
	telReg  *telemetry.Registry
	tickDur *telemetry.Histogram
	ticks   *telemetry.Counter
}

// New builds an empty cluster with the given tick size.
func New(dt time.Duration) *Cluster {
	c := &Cluster{
		Engine:     sim.NewEngine(dt),
		machines:   make(map[core.MachineID]*machine.Machine),
		hosts:      make(map[string]*Host),
		routes:     make(map[dataplane.FlowID]route),
		pending:    make(map[core.MachineID][]dataplane.Batch),
		registries: make(map[core.MachineID]*stats.Registry),
		topo:       core.NewTopology(),
	}
	c.Engine.AddFunc(c.tick)
	return c
}

// Now returns current virtual time.
func (c *Cluster) Now() time.Duration {
	if c.par != nil {
		return c.par.Now()
	}
	return c.Engine.Now()
}

// NowNS returns current virtual time in nanoseconds (record timestamps).
func (c *Cluster) NowNS() int64 { return int64(c.Now()) }

// Run advances virtual time by d (whole ticks, rounded up — see
// sim.Engine.Run).
func (c *Cluster) Run(d time.Duration) {
	if c.par != nil {
		c.par.Run(d)
		return
	}
	c.Engine.Run(d)
}

// Parallelize shards the cluster across `domains` tick domains advanced by
// a pool of `workers` goroutines. Hosts run in parallel phase 0, machines
// in parallel phase 1, and the cross-domain merge stays in the serialized
// commit, so trajectories are byte-identical to the serial engine for the
// same scenario seed at any worker count. Each domain gets its own RNG
// stream derived from seed.
//
// Call after the topology is built and before Run: machine/host placement
// is frozen (VM placement, routes and connections stay dynamic — they only
// touch commit-phase structures). Call Close when done to stop the worker
// pool.
func (c *Cluster) Parallelize(domains, workers int, seed uint64) *sim.ParallelEngine {
	if c.par != nil {
		panic("cluster: Parallelize called twice")
	}
	if c.Engine.Now() != 0 {
		panic("cluster: Parallelize must be called before Run")
	}
	par := sim.NewParallelEngine(c.Engine.Dt(), domains, 2, workers, seed)
	for j, p := range sim.Partition(len(c.hostOrder), par.Domains()) {
		from, to := p[0], p[1]
		par.Domain(j).AddFunc(0, func(now, dt time.Duration) { c.hostRange(from, to, now, dt) })
	}
	for j, p := range sim.Partition(len(c.machineOrder), par.Domains()) {
		from, to := p[0], p[1]
		par.Domain(j).AddFunc(1, func(now, dt time.Duration) { c.machineRange(from, to, now, dt) })
	}
	par.AddPreFunc(func(now, dt time.Duration) {
		if c.tickDur != nil {
			c.tickStart = time.Now()
		}
		for _, t := range c.pre {
			t.Tick(now, dt)
		}
	})
	par.AddCommitFunc(func(now, dt time.Duration) {
		c.commit(now, dt)
		if c.tickDur != nil {
			c.tickDur.Observe(float64(time.Since(c.tickStart).Nanoseconds()))
			c.ticks.Inc()
		}
	})
	c.par = par
	c.frozen = true
	return par
}

// Parallel reports whether the cluster runs on the sharded engine.
func (c *Cluster) Parallel() bool { return c.par != nil }

// Close stops the parallel worker pool, if any. Safe to call on serial
// clusters and idempotent.
func (c *Cluster) Close() {
	if c.par != nil {
		c.par.Close()
	}
}

// AddPreTick registers a ticker that runs serialized before the tick's
// parallel phases in both modes — the place for chaos injectors and
// scenario actuators that mutate machines.
func (c *Cluster) AddPreTick(t sim.Ticker) { c.pre = append(c.pre, t) }

// AddPreTickFunc registers a pre-phase function ticker.
func (c *Cluster) AddPreTickFunc(f func(now, dt time.Duration)) { c.AddPreTick(sim.TickerFunc(f)) }

// AddPostTick registers a ticker that runs serialized at the end of the
// commit phase in both modes (after routing, feedback and window refresh).
func (c *Cluster) AddPostTick(t sim.Ticker) { c.post = append(c.post, t) }

// AddPostTickFunc registers a commit-tail function ticker.
func (c *Cluster) AddPostTickFunc(f func(now, dt time.Duration)) { c.AddPostTick(sim.TickerFunc(f)) }

// AddMachine creates a physical machine.
func (c *Cluster) AddMachine(cfg machine.Config) *machine.Machine {
	if c.frozen {
		panic("cluster: AddMachine after Parallelize (placement is frozen)")
	}
	if _, dup := c.machines[cfg.ID]; dup {
		panic(fmt.Sprintf("cluster: duplicate machine %s", cfg.ID))
	}
	m := machine.New(cfg)
	c.machines[cfg.ID] = m
	c.machineOrder = append(c.machineOrder, cfg.ID)
	c.registries[cfg.ID] = stats.NewRegistry()
	return m
}

// Machine returns a machine by ID.
func (c *Cluster) Machine(id core.MachineID) *machine.Machine { return c.machines[id] }

// Machines returns machine IDs in creation order.
func (c *Cluster) Machines() []core.MachineID {
	return append([]core.MachineID(nil), c.machineOrder...)
}

// AddHost creates an external host with the given access-link rate
// (0 = unlimited).
func (c *Cluster) AddHost(name string, linkBps float64) *Host {
	if c.frozen {
		panic("cluster: AddHost after Parallelize (placement is frozen)")
	}
	if _, dup := c.hosts[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate host %s", name))
	}
	h := &Host{Name: name, LinkBps: linkBps, inboxCap: 4 << 20}
	c.hosts[name] = h
	c.hostOrder = append(c.hostOrder, name)
	return h
}

// Host returns a host by name.
func (c *Cluster) Host(name string) *Host { return c.hosts[name] }

// PlaceVM places a VM and registers its elements with the machine's agent
// registry.
func (c *Cluster) PlaceVM(m core.MachineID, vm core.VMID, vcpus, vnicBps float64, apps ...machine.App) *machine.VM {
	mm := c.machines[m]
	if mm == nil {
		panic(fmt.Sprintf("cluster: unknown machine %s", m))
	}
	v := mm.AddVM(vm, vcpus, vnicBps, apps...)
	c.syncRegistry(m)
	return v
}

// MigrateVM removes a VM from one machine (the §7.3 operator response to
// contention). Traffic must be re-routed by the caller.
func (c *Cluster) MigrateVM(from core.MachineID, vm core.VMID) {
	if mm := c.machines[from]; mm != nil {
		mm.RemoveVM(vm)
		c.syncRegistry(from)
	}
}

// syncRegistry rebuilds a machine's element registry after placement
// changes.
func (c *Cluster) syncRegistry(m core.MachineID) {
	reg := c.registries[m]
	if reg == nil {
		return
	}
	for _, e := range reg.List() {
		reg.Unregister(e.ID())
	}
	for _, e := range c.machines[m].Elements() {
		reg.Register(e)
	}
}

// EnableDropTracing attaches a drop tracer to a machine's stack and
// returns it; capacity bounds the retained event ring (<= 0 picks the
// dataplane default — read it back with Capacity()). With cluster
// telemetry on, the tracer's event/ring gauges register automatically.
func (c *Cluster) EnableDropTracing(m core.MachineID, capacity int) *dataplane.DropTracer {
	mm := c.machines[m]
	if mm == nil {
		return nil
	}
	tr := dataplane.NewDropTracer(capacity)
	mm.Stack.AttachTracer(tr)
	if c.telReg != nil {
		tr.RegisterMetrics(c.telReg, string(m))
	}
	return tr
}

// EnableTelemetry wires the cluster's self-metrics into reg: wall-clock
// duration of each simulated tick (the stack-tick hot path) plus
// machine/host inventory gauges. Call before Run; tracers attached by
// EnableDropTracing afterwards register their gauges in the same reg.
func (c *Cluster) EnableTelemetry(reg *telemetry.Registry) *Cluster {
	c.telReg = reg
	c.tickDur = reg.Histogram("perfsight_dataplane_tick_duration_ns",
		"wall-clock cost of one simulated cluster tick, nanoseconds")
	c.ticks = reg.Counter("perfsight_dataplane_ticks_total",
		"simulated cluster ticks executed")
	reg.GaugeFunc("perfsight_dataplane_machines",
		"physical machines in the cluster", func() float64 {
			return float64(len(c.machines))
		})
	reg.GaugeFunc("perfsight_dataplane_hosts",
		"external hosts in the cluster", func() float64 {
			return float64(len(c.hosts))
		})
	reg.GaugeFunc("perfsight_dataplane_virtual_seconds",
		"simulated time elapsed", func() float64 {
			return c.Now().Seconds()
		})
	return c
}

// Registry returns the per-machine element registry the agent serves.
func (c *Cluster) Registry(m core.MachineID) *stats.Registry { return c.registries[m] }

// Topology returns the tenant topology for the controller.
func (c *Cluster) Topology() *core.Topology { return c.topo }

// Assign records elements as belonging to a tenant's virtual network.
func (c *Cluster) Assign(tid core.TenantID, m core.MachineID, kind core.ElementKind, capacityBps float64, ids ...core.ElementID) {
	net := c.topo.Net(tid)
	for _, id := range ids {
		net.Add(id, core.ElementInfo{Machine: m, Kind: kind, CapacityBps: capacityBps})
	}
}

// AssignStack assigns every virtualization-stack element of machine m to
// the tenant (contending tenants share these).
func (c *Cluster) AssignStack(tid core.TenantID, m core.MachineID) {
	mm := c.machines[m]
	net := c.topo.Net(tid)
	for _, e := range mm.Stack.Elements() {
		net.Add(e.ID(), core.ElementInfo{Machine: m, Kind: e.Kind()})
	}
	net.Add(mm.HostElement().ID(), core.ElementInfo{Machine: m, Kind: core.KindUnknown})
}

// AssignVM assigns a VM's per-VM elements (TUN, QEMU, guest, apps) to the
// tenant.
func (c *Cluster) AssignVM(tid core.TenantID, m core.MachineID, vm core.VMID) {
	mm := c.machines[m]
	v := mm.VM(vm)
	if v == nil {
		return
	}
	net := c.topo.Net(tid)
	for _, e := range v.Stack.Elements() {
		net.Add(e.ID(), core.ElementInfo{Machine: m, Kind: e.Kind()})
	}
	for _, a := range v.Apps {
		rec := a.Snapshot(0)
		net.Add(a.ID(), core.ElementInfo{
			Machine:     m,
			Kind:        core.KindMiddlebox,
			CapacityBps: rec.GetOr(core.AttrCapacityBps, 0),
		})
	}
}

// AddChain records a tenant's middlebox chain (traversal order) for
// Algorithm 2.
func (c *Cluster) AddChain(tid core.TenantID, chain ...core.ElementID) {
	net := c.topo.Net(tid)
	net.Chains = append(net.Chains, chain)
}

// RouteFlow installs wire routing and switch rules so flow f travels from
// src to dst. It must be called before traffic is generated on f.
func (c *Cluster) RouteFlow(f dataplane.FlowID, src, dst Endpoint) {
	if dst.IsHost() {
		c.routes[f] = route{host: dst.Host}
	} else {
		c.routes[f] = route{machine: dst.Machine}
		mm := c.machines[dst.Machine]
		if mm == nil {
			panic(fmt.Sprintf("cluster: route %s to unknown machine %s", f, dst.Machine))
		}
		mm.Stack.VSwitch.InstallToVM(f, dst.VM)
	}
	if !src.IsHost() {
		sm := c.machines[src.Machine]
		if sm == nil {
			panic(fmt.Sprintf("cluster: route %s from unknown machine %s", f, src.Machine))
		}
		if dst.IsHost() || dst.Machine != src.Machine {
			sm.Stack.VSwitch.InstallToPNIC(f)
		}
		// Same-machine VM-to-VM: the destination rule above already routes
		// the flow from the backlog to the target TUN.
	}
}

// RerouteFlow points an existing flow at a new destination (scale-out /
// migration). The old destination's switch rule is removed.
func (c *Cluster) RerouteFlow(f dataplane.FlowID, src, newDst Endpoint) {
	if r, ok := c.routes[f]; ok && r.machine != "" {
		if mm := c.machines[r.machine]; mm != nil {
			mm.Stack.VSwitch.Remove(f)
		}
	}
	c.RouteFlow(f, src, newDst)
}

// Connect creates a stream connection on flow f from src to dst, with
// routing installed. Endpoints resolve lazily, so conns may be created
// before their VMs are placed (apps usually take their output conns at
// construction) and keep working across migration. The sender side must
// pump the conn (VM apps pump their own conns; host-side conns are pumped
// by the host each tick).
func (c *Cluster) Connect(f dataplane.FlowID, src, dst Endpoint, cfg stream.Config) *stream.Conn {
	c.RouteFlow(f, src, dst)
	var emit stream.Emitter
	if src.IsHost() {
		h := c.hosts[src.Host]
		if h == nil {
			panic(fmt.Sprintf("cluster: Connect %s from unknown host %s", f, src.Host))
		}
		emit = h.emit
	} else {
		emit = func(b dataplane.Batch) int64 {
			vs := c.machines[src.Machine].VM(src.VM)
			if vs == nil {
				return 0
			}
			b.Egress = true
			return vs.Stack.Socket.Write(b)
		}
	}
	var rwnd stream.Window
	if dst.IsHost() {
		h := c.hosts[dst.Host]
		if h == nil {
			panic(fmt.Sprintf("cluster: Connect %s to unknown host %s", f, dst.Host))
		}
		rwnd = h
	} else {
		w := &vmWindow{c: c, m: dst.Machine, vm: dst.VM}
		w.refresh(c.Now()) // prime so first-tick pumps see a real window
		c.windows = append(c.windows, w)
		rwnd = w
	}
	conn := stream.NewConn(f, cfg, emit, rwnd)
	// Batches on this flow may be delivered/dropped by concurrently-ticking
	// shards; queue the feedback and settle it in commit, in both modes, so
	// serial and parallel trajectories stay identical.
	conn.DeferFeedback()
	c.conns = append(c.conns, conn)
	if src.IsHost() {
		c.hosts[src.Host].pump = append(c.hosts[src.Host].pump, conn)
	}
	return conn
}

// vmWindow caches a VM's socket receive window, clamped to the
// per-connection rmem and refreshed at ACK cadence — but only from the
// serialized commit phase, when every machine's tick has settled. During
// the phases RxFree returns the cached advertisement, so a sender in one
// tick domain never reads a destination socket another domain is mutating.
// This is also the physically faithful model: window updates ride ACKs,
// they are not a live view of the receiver.
type vmWindow struct {
	c  *Cluster
	m  core.MachineID
	vm core.VMID

	lastVal    int64
	lastUpdate time.Duration
	primed     bool
}

// RxFree implements stream.Window: the window advertised by the last ACK.
func (w *vmWindow) RxFree() int64 { return w.lastVal }

// refresh re-reads the destination socket at commit. Staleness contract:
// senders act on a window at least one tick old (the refresh-to-use gap)
// and at most AckDelay old, frozen entirely while the guest cannot poll
// its ring (it cannot ACK either); immediate once the VM exists but the
// cache was never primed. One tick of the AckDelay budget is consumed by
// the commit-to-read gap itself, so the cadence gate only withholds
// refreshes beyond that.
func (w *vmWindow) refresh(now time.Duration) {
	delay := w.c.AckDelay
	if delay <= 0 {
		delay = 2 * time.Millisecond
	}
	delay -= w.c.Engine.Dt() // the cached value is read one tick after refresh
	if w.primed && now-w.lastUpdate < delay {
		return
	}
	mm := w.c.machines[w.m]
	if mm == nil {
		w.lastVal = 0
		w.primed = false
		return
	}
	vs := mm.VM(w.vm)
	if vs == nil {
		w.lastVal = 0
		w.primed = false
		return
	}
	if w.primed && !w.c.NoStaleWindows && vs.Stack.KernelBehind() {
		// A guest that cannot poll its ring cannot send ACKs or window
		// updates either: senders keep acting on the last advertised
		// window, which is how a starved VM's TUN overflows before flow
		// control reacts.
		return
	}
	free := vs.Stack.Socket.RxFree()
	clamp := w.c.RmemPerConn
	if clamp <= 0 {
		clamp = 1 << 20
	}
	if free > clamp {
		free = clamp
	}
	w.lastVal = free
	w.lastUpdate = now
	w.primed = true
}

// tick advances the whole cluster one step on the serial engine, using the
// same canonical phase order the parallel engine uses: pre → hosts →
// machines → commit. Keeping one schedule for both modes is what lets the
// determinism golden test demand byte-identical trajectories.
func (c *Cluster) tick(now, dt time.Duration) {
	if c.tickDur != nil {
		start := time.Now()
		defer func() {
			c.tickDur.Observe(float64(time.Since(start).Nanoseconds()))
			c.ticks.Inc()
		}()
	}
	for _, t := range c.pre {
		t.Tick(now, dt)
	}
	c.hostRange(0, len(c.hostOrder), now, dt)
	c.machineRange(0, len(c.machineOrder), now, dt)
	c.commit(now, dt)
}

// hostRange ticks hosts [from, to) in creation order: external hosts
// generate and pump. Hosts only touch their own queues and conns, so
// disjoint ranges may run concurrently (parallel phase 0).
func (c *Cluster) hostRange(from, to int, now, dt time.Duration) {
	for _, hn := range c.hostOrder[from:to] {
		c.hosts[hn].tick(now, dt)
	}
}

// machineRange ticks machines [from, to) in creation order: each consumes
// last tick's wire arrivals (OfferWire) and runs its pipeline. A machine
// tick reads and writes only its own stack — cross-machine effects are
// declared through the OfferWire/CollectWire exchange and settle at commit
// — so disjoint ranges may run concurrently (parallel phase 1).
func (c *Cluster) machineRange(from, to int, now, dt time.Duration) {
	for _, mid := range c.machineOrder[from:to] {
		m := c.machines[mid]
		if arr := c.pending[mid]; len(arr) > 0 {
			m.OfferWire(arr, dt)
		}
		m.Tick(now, dt)
	}
}

// commit is the serialized merge that ends every tick: collect departures
// in canonical order (hosts, then machines, each in creation order), route
// them, apply the fabric fair share, settle deferred connection feedback
// in canonical order, refresh receive-window caches from settled socket
// state, then run post tickers.
func (c *Cluster) commit(now, dt time.Duration) {
	next := make(map[core.MachineID][]dataplane.Batch, len(c.machines))
	for _, hn := range c.hostOrder {
		for _, b := range c.hosts[hn].drainOut() {
			c.routeBatch(b, next, dt)
		}
	}
	for _, mid := range c.machineOrder {
		for _, b := range c.machines[mid].CollectWire() {
			c.routeBatch(b, next, dt)
		}
	}
	c.trimFabric(next, dt)
	c.pending = next
	for _, cn := range c.conns {
		cn.FlushFeedback()
	}
	for _, w := range c.windows {
		w.refresh(now)
	}
	for _, t := range c.post {
		t.Tick(now, dt)
	}
}

// trimFabric applies FabricBps to next tick's machine-bound wire traffic:
// flows get a max–min fair share of the fabric's per-tick byte budget and
// the excess is dropped at "fabric/core", like an oversubscribed core
// switch. Flows are keyed in first-seen canonical order so the allocation
// never depends on map iteration.
func (c *Cluster) trimFabric(next map[core.MachineID][]dataplane.Batch, dt time.Duration) {
	if c.FabricBps <= 0 {
		return
	}
	budget := sim.BytesIn(c.FabricBps, dt)
	var flows []dataplane.FlowID
	demand := map[dataplane.FlowID]int64{}
	total := int64(0)
	for _, mid := range c.machineOrder {
		for _, b := range next[mid] {
			if _, seen := demand[b.Flow]; !seen {
				flows = append(flows, b.Flow)
			}
			demand[b.Flow] += b.Bytes
			total += b.Bytes
		}
	}
	if total <= budget {
		return
	}
	demands := make([]float64, len(flows))
	for i, f := range flows {
		demands[i] = float64(demand[f])
	}
	alloc := sim.FairShare(float64(budget), demands)
	allow := make(map[dataplane.FlowID]int64, len(flows))
	for i, f := range flows {
		allow[f] = int64(alloc[i])
	}
	for _, mid := range c.machineOrder {
		arr := next[mid]
		kept := arr[:0]
		for _, b := range arr {
			quota := allow[b.Flow]
			if quota >= b.Bytes {
				allow[b.Flow] = quota - b.Bytes
				kept = append(kept, b)
				continue
			}
			pass, drop := b.SplitBytes(quota)
			allow[b.Flow] = 0
			if pass.Bytes > 0 {
				kept = append(kept, pass)
			}
			if drop.Bytes > 0 {
				drop.NotifyDropped("fabric/core")
			}
		}
		if len(kept) > 0 {
			next[mid] = kept
		} else {
			delete(next, mid)
		}
	}
}

// routeBatch delivers a wire batch toward its flow's destination.
func (c *Cluster) routeBatch(b dataplane.Batch, next map[core.MachineID][]dataplane.Batch, dt time.Duration) {
	r, ok := c.routes[b.Flow]
	if !ok {
		// Unrouted wire traffic disappears into the fabric; flows are
		// notified so closed loops do not hang.
		b.NotifyDropped("fabric/unrouted")
		return
	}
	if r.host != "" {
		c.hosts[r.host].deliver(b)
		return
	}
	next[r.machine] = append(next[r.machine], b)
}
