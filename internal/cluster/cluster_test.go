package cluster

import (
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

// newTestMachine returns a default 8-core machine config.
func testMachineCfg(id core.MachineID) machine.Config {
	return machine.DefaultConfig(id)
}

// TestHostToVMStreamThroughput pushes a stream from an external host into
// a VM sink and checks the achieved rate approaches the vNIC capacity.
func TestHostToVMStreamThroughput(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	c.PlaceVM("m0", "vm0", 1.0, 1e9, sink)
	client := c.AddHost("client", 0)

	conn := c.Connect("f1", HostEndpoint("client"), VMEndpoint("m0", "vm0"), stream.Config{})
	client.AddSource(conn, 0) // as fast as possible

	c.Run(3 * time.Second)

	gotBps := float64(conn.DeliveredBytes()) * 8 / 3.0
	if gotBps < 0.5e9 {
		t.Fatalf("stream throughput %.0f bps; want at least half of the 1 Gbps vNIC", gotBps)
	}
	if gotBps > 1.1e9 {
		t.Fatalf("stream throughput %.0f bps exceeds the 1 Gbps vNIC", gotBps)
	}
	if sink.ReceivedBytes() == 0 {
		t.Fatal("sink read nothing")
	}
}

// TestVMToHostStreamThroughput checks the reverse (egress) path.
func TestVMToHostStreamThroughput(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	c.AddHost("server", 0)

	conn := c.Connect("f1", VMEndpoint("m0", "vm0"), HostEndpoint("server"), stream.Config{})
	src := middlebox.NewConnSource("m0/vm0/app", 1e9, conn, 0)
	c.PlaceVM("m0", "vm0", 1.0, 1e9, src)

	c.Run(3 * time.Second)

	gotBps := float64(conn.DeliveredBytes()) * 8 / 3.0
	if gotBps < 0.5e9 || gotBps > 1.1e9 {
		t.Fatalf("egress throughput %.0f bps; want ~1 Gbps", gotBps)
	}
}

// TestVMToVMSameMachine exercises the hairpin path through the backlog and
// vswitch without touching the pNIC.
func TestVMToVMSameMachine(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))

	sink := middlebox.NewSink("m0/vm1/app", 1e9)
	c.PlaceVM("m0", "vm1", 1.0, 1e9, sink)
	conn := c.Connect("f1", VMEndpoint("m0", "vm0"), VMEndpoint("m0", "vm1"), stream.Config{})
	src := middlebox.NewConnSource("m0/vm0/app", 1e9, conn, 0)
	c.PlaceVM("m0", "vm0", 1.0, 1e9, src)

	c.Run(2 * time.Second)

	got := float64(conn.DeliveredBytes()) * 8 / 2.0
	if got < 0.4e9 {
		t.Fatalf("hairpin throughput %.0f bps; want >= 0.4 Gbps", got)
	}
	m := c.Machine("m0")
	if tx := m.Stack.PNic.ES.Tx.Packets.Load(); tx != 0 {
		t.Fatalf("hairpin traffic leaked to the pNIC: %d packets", tx)
	}
}

// TestChainThroughVM checks a host -> middlebox VM -> host forwarding
// chain delivers end to end.
func TestChainThroughVM(t *testing.T) {
	c := New(time.Millisecond)
	c.AddMachine(testMachineCfg("m0"))
	client := c.AddHost("client", 0)
	c.AddHost("server", 0)

	out := c.Connect("f-out", VMEndpoint("m0", "vm0"), HostEndpoint("server"), stream.Config{})
	proxy := middlebox.NewProxy("m0/vm0/app", 1e9, middlebox.ConnOutput{C: out})
	c.PlaceVM("m0", "vm0", 1.0, 1e9, proxy)

	in := c.Connect("f-in", HostEndpoint("client"), VMEndpoint("m0", "vm0"), stream.Config{})
	client.AddSource(in, 200e6)

	c.Run(3 * time.Second)

	inBps := float64(in.DeliveredBytes()) * 8 / 3.0
	outBps := float64(out.DeliveredBytes()) * 8 / 3.0
	if inBps < 150e6 {
		t.Fatalf("chain ingress %.0f bps; want ~200 Mbps", inBps)
	}
	if outBps < 0.85*inBps {
		t.Fatalf("chain egress %.0f bps lags ingress %.0f bps", outBps, inBps)
	}
	if proxy.ProcessedBytes() == 0 {
		t.Fatal("proxy processed nothing")
	}
}

// TestRawFloodDrops verifies an open-loop flood beyond pNIC capacity drops
// at the pNIC (the Table 1 incoming-bandwidth symptom).
func TestRawFloodDrops(t *testing.T) {
	cfg := testMachineCfg("m0")
	cfg.Stack.PNICRxBps = 1e9
	cfg.Stack.PNICTxBps = 1e9
	c := New(time.Millisecond)
	c.AddMachine(cfg)
	sink := middlebox.NewSink("m0/vm0/app", 10e9)
	c.PlaceVM("m0", "vm0", 2.0, 10e9, sink)
	gw := c.AddHost("gw", 0)
	c.RouteFlow("flood", HostEndpoint("gw"), VMEndpoint("m0", "vm0"))

	c.Engine.AddFunc(func(now, dt time.Duration) {
		bytes := int64(3e9 / 8 * dt.Seconds()) // 3 Gbps into a 1 Gbps NIC
		gw.EmitRaw(dataplane.Batch{Flow: "flood", Packets: int(bytes / 1500), Bytes: bytes})
	})
	c.Run(2 * time.Second)

	m := c.Machine("m0")
	drops := m.Stack.PNic.ES.Drop.Packets.Load()
	if drops == 0 {
		t.Fatal("no pNIC drops under 3x overload")
	}
	rx := m.Stack.PNic.ES.Rx.Packets.Load()
	if rx == 0 {
		t.Fatal("pNIC admitted nothing")
	}
}
