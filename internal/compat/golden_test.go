// Package compat pins the externally visible byte surfaces of the record
// format: the JSON form of core.Record (what /history, /metrics consumers
// and the v1 JSON codec emit) and v1 frame payloads. The golden files were
// generated before the AttrID refactor; the refactored code must reproduce
// them byte-for-byte so old peers and dashboards see an unchanged surface.
//
// Regenerate (only when intentionally changing the surface) with:
//
//	go test ./internal/compat -run Golden -update
package compat

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/middlebox"
	"perfsight/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecords builds records through the real snapshot paths plus two
// hand-shaped ones (host gauges, OVS-style dynamic rule counters) parsed
// from JSON, the way an old agent's frames arrive.
func goldenRecords(t *testing.T) []core.Record {
	t.Helper()

	pnic := dataplane.NewBase("m0/pnic", core.KindPNIC)
	pnic.CapacityBps = 1e9
	pnic.CountRx(dataplane.Batch{Packets: 100, Bytes: 150000})
	pnic.CountTx(dataplane.Batch{Packets: 90, Bytes: 120000})
	pnic.CountDrop(dataplane.Batch{Packets: 10, Bytes: 15000})

	tun := dataplane.NewBase("m0/vm1/tun", core.KindTUN)
	tun.CountRx(dataplane.Batch{Packets: 7, Bytes: 10500})
	tun.AttachBuffer(dataplane.NewBuffer(500, 1<<20))

	mb := middlebox.NewBase("m0/vm1/app", 2e8)
	mb.IO.InBytes.Add(5000)
	mb.IO.OutBytes.Add(4200)
	mb.IO.InTime.Observe(3 * time.Millisecond)
	mb.IO.OutTime.Observe(2 * time.Millisecond)
	mb.EnableSizeHistogram()
	mb.Hist.ObserveN(64, 10)
	mb.Hist.ObserveN(1500, 5)
	mb.Hist.ObserveN(9500, 1)

	recs := []core.Record{
		pnic.Snapshot(1000),
		tun.Snapshot(1000),
		mb.Snapshot(2000),
	}

	// Records that did not come from local snapshot paths: host utilization
	// gauges and OVS per-rule counters whose names are minted at runtime.
	// Parsing them from JSON is exactly how they arrive from old agents.
	for _, raw := range []string{
		`{"ts":12345,"element":"m0/host","attrs":[{"name":"cpu_util","value":0.5},{"name":"membus_util","value":0.25}]}`,
		`{"ts":777,"element":"m0/vswitch","attrs":[{"name":"kind","value":5},{"name":"rx_packets","value":3},{"name":"rule_f1_packets","value":42},{"name":"rule_f1_bytes","value":63000},{"name":"custom gap attr","value":-1.5},{"name":"huge","value":1e18}]}`,
	} {
		var rec core.Record
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			t.Fatalf("unmarshal fixture: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n got: %s\nwant: %s", name, got, want)
	}
}

// TestRecordJSONGolden pins the JSON marshalling of Record — one record
// per line, exactly as the v1 codec and the HTTP endpoints see it.
func TestRecordJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, rec := range goldenRecords(t) {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	checkGolden(t, "record_golden.jsonl", buf.Bytes())
}

// TestV1FrameGolden pins the v1 (JSON) codec's frame payload bytes for the
// three frame shapes a mixed-version deployment exchanges: a query, a
// statistics response, and an element inventory.
func TestV1FrameGolden(t *testing.T) {
	msgs := []*wire.Message{
		{
			Type:    wire.TypeQuery,
			ID:      7,
			Machine: "m0",
			Query: &wire.Query{
				Elements: []core.ElementID{"m0/pnic", "m0/vm1/app"},
				Attrs:    []string{"rx_packets", "rx_bytes", "drop_packets"},
			},
			TraceID: 99,
		},
		{
			Type:    wire.TypeResponse,
			ID:      7,
			Machine: "m0",
			Records: goldenRecords(t),
			AgentNS: 1234,
		},
		{
			Type: wire.TypeElementList,
			ID:   8,
			Elements: []wire.ElementMeta{
				{ID: "m0/pnic", Kind: core.KindPNIC},
				{ID: "m0/vm1/tun", Kind: core.KindTUN},
				{ID: "m0/vm1/app", Kind: core.KindMiddlebox},
			},
		},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		payload, err := wire.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(payload)
		buf.WriteByte('\n')
	}
	checkGolden(t, "v1_frames_golden.jsonl", buf.Bytes())
}

// TestRecordJSONRoundTrip proves decode(encode(r)) is lossless for every
// golden record, including runtime-named attributes.
func TestRecordJSONRoundTrip(t *testing.T) {
	for _, rec := range goldenRecords(t) {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var back core.Record
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		b2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("round trip not stable:\n first: %s\nsecond: %s", b, b2)
		}
	}
}
