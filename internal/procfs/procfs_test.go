package procfs

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestFSMountReadUnmount(t *testing.T) {
	fs := New()
	if _, err := fs.ReadFile("/proc/x"); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	fs.Mount("/proc/x", func() []byte { return []byte("hello") })
	data, err := fs.ReadFile("/proc/x")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read: %q, %v", data, err)
	}
	fs.Unmount("/proc/x")
	if _, err := fs.ReadFile("/proc/x"); err == nil {
		t.Fatal("read after unmount succeeded")
	}
}

func TestFSGeneratorsAreLive(t *testing.T) {
	fs := New()
	n := 0
	fs.Mount("/live", func() []byte { n++; return []byte{byte('0' + n)} })
	fs.ReadFile("/live")
	data, _ := fs.ReadFile("/live")
	if string(data) != "2" {
		t.Fatalf("generator not re-invoked: %q", data)
	}
}

func TestFSList(t *testing.T) {
	fs := New()
	fs.Mount("/b", func() []byte { return nil })
	fs.Mount("/a", func() []byte { return nil })
	got := fs.List()
	if !reflect.DeepEqual(got, []string{"/a", "/b"}) {
		t.Fatalf("list = %v", got)
	}
}

func TestNetDevRoundTrip(t *testing.T) {
	in := []NetDevStats{
		{Name: "eth0", RxBytes: 1, RxPackets: 2, RxDropped: 3, TxBytes: 4, TxPackets: 5, TxDropped: 6, QueueLen: 7, QueueCap: 8},
		{Name: "tap-vm0", RxBytes: 100, TxBytes: 200, QueueCap: 500},
	}
	out, err := ParseNetDev(FormatNetDev(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%+v\nout=%+v", in, out)
	}
}

func TestNetDevParseRejectsGarbage(t *testing.T) {
	if _, err := ParseNetDev([]byte("header\nheader2\nnot a device line\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestNetDevRoundTripProperty fuzzes the counters.
func TestNetDevRoundTripProperty(t *testing.T) {
	f := func(rxB, rxP, rxD, txB, txP, txD uint32, qlen, qcap uint8) bool {
		in := []NetDevStats{{
			Name:    "dev0",
			RxBytes: uint64(rxB), RxPackets: uint64(rxP), RxDropped: uint64(rxD),
			TxBytes: uint64(txB), TxPackets: uint64(txP), TxDropped: uint64(txD),
			QueueLen: int(qlen), QueueCap: int(qcap),
		}}
		out, err := ParseNetDev(FormatNetDev(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftnetRoundTrip(t *testing.T) {
	in := []SoftnetStats{
		{Processed: 0xdeadbeef, Dropped: 0x12, Queued: 0x300},
		{Processed: 1, Dropped: 0, Queued: 0},
	}
	out, err := ParseSoftnet(FormatSoftnet(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSoftnetParseRejectsGarbage(t *testing.T) {
	if _, err := ParseSoftnet([]byte("zz yy xx\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSoftnetEmpty(t *testing.T) {
	out, err := ParseSoftnet(FormatSoftnet(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round trip: %v, %v", out, err)
	}
}

// TestSoftnetRoundTripProperty fuzzes the hex encoding.
func TestSoftnetRoundTripProperty(t *testing.T) {
	f := func(rows []struct{ P, D, Q uint32 }) bool {
		in := make([]SoftnetStats, len(rows))
		for i, r := range rows {
			in[i] = SoftnetStats{Processed: uint64(r.P), Dropped: uint64(r.D), Queued: uint64(r.Q)}
		}
		out, err := ParseSoftnet(FormatSoftnet(in))
		if err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
