package procfs

import (
	"testing"
)

// FuzzParseNetDev must never panic on arbitrary file contents, and must
// round-trip anything it accepts.
func FuzzParseNetDev(f *testing.F) {
	f.Add(string(FormatNetDev([]NetDevStats{{Name: "eth0", RxBytes: 1}})))
	f.Add("h1\nh2\neth0: 1 2 3 4 5 6 7 8\n")
	f.Add("h1\nh2\nbroken line\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		devs, err := ParseNetDev([]byte(data))
		if err != nil {
			return
		}
		again, err := ParseNetDev(FormatNetDev(devs))
		if err != nil {
			t.Fatalf("accepted devices failed to re-parse: %v", err)
		}
		if len(again) != len(devs) {
			t.Fatalf("device count changed: %d -> %d", len(devs), len(again))
		}
	})
}

// FuzzParseSoftnet must never panic and must round-trip what it accepts.
func FuzzParseSoftnet(f *testing.F) {
	f.Add(string(FormatSoftnet([]SoftnetStats{{Processed: 10, Dropped: 2, Queued: 1}})))
	f.Add("zzzz\n")
	f.Add("00000001 00000002")
	f.Fuzz(func(t *testing.T, data string) {
		rows, err := ParseSoftnet([]byte(data))
		if err != nil {
			return
		}
		again, err := ParseSoftnet(FormatSoftnet(rows))
		if err != nil {
			t.Fatalf("accepted rows failed to re-parse: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("row count changed: %d -> %d", len(rows), len(again))
		}
	})
}
