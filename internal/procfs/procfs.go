// Package procfs provides the in-memory virtual file tree through which
// kernel-resident elements publish their counters, mirroring how the real
// PerfSight agent reads them on Linux (§4.2/§6): net_device statistics via
// device files (ifconfig-style), and softnet_data per-CPU statistics via
// /proc/net/softnet_stat. The agent reads and *parses text*, exercising the
// same collection path as on the paper's testbed rather than calling into
// the elements directly.
package procfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FS is a tree of virtual files whose contents are generated on read.
type FS struct {
	mu    sync.RWMutex
	files map[string]func() []byte
}

// New returns an empty file system.
func New() *FS {
	return &FS{files: make(map[string]func() []byte)}
}

// Mount registers a generator for path, replacing any existing file.
func (f *FS) Mount(path string, gen func() []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[path] = gen
}

// Unmount removes a file.
func (f *FS) Unmount(path string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.files, path)
}

// ReadFile renders the file at path.
func (f *FS) ReadFile(path string) ([]byte, error) {
	f.mu.RLock()
	gen := f.files[path]
	f.mu.RUnlock()
	if gen == nil {
		return nil, fmt.Errorf("procfs: %s: no such file", path)
	}
	return gen(), nil
}

// List returns all mounted paths, sorted.
func (f *FS) List() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.files))
	for p := range f.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// NetDevStats is the counter set a net_device exposes.
type NetDevStats struct {
	Name      string
	RxBytes   uint64
	RxPackets uint64
	RxDropped uint64
	TxBytes   uint64
	TxPackets uint64
	TxDropped uint64
	QueueLen  int
	QueueCap  int
}

// FormatNetDev renders /proc/net/dev-style lines for the given devices,
// with a header, plus queue occupancy columns (tx queue state is readable
// via sysfs on Linux; folded into one file here).
func FormatNetDev(devs []NetDevStats) []byte {
	var b strings.Builder
	b.WriteString("Inter-|   Receive                    |  Transmit                    | Queue\n")
	b.WriteString(" face |bytes    packets drop         |bytes    packets drop         | len cap\n")
	for _, d := range devs {
		fmt.Fprintf(&b, "%s: %d %d %d %d %d %d %d %d\n",
			d.Name, d.RxBytes, d.RxPackets, d.RxDropped,
			d.TxBytes, d.TxPackets, d.TxDropped, d.QueueLen, d.QueueCap)
	}
	return []byte(b.String())
}

// ParseNetDev parses FormatNetDev output.
func ParseNetDev(data []byte) ([]NetDevStats, error) {
	lines := strings.Split(string(data), "\n")
	var out []NetDevStats
	for i, line := range lines {
		if i < 2 || strings.TrimSpace(line) == "" {
			continue
		}
		name, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("procfs: netdev line %d: missing device name: %q", i, line)
		}
		var d NetDevStats
		d.Name = strings.TrimSpace(name)
		n, err := fmt.Sscanf(strings.TrimSpace(rest), "%d %d %d %d %d %d %d %d",
			&d.RxBytes, &d.RxPackets, &d.RxDropped,
			&d.TxBytes, &d.TxPackets, &d.TxDropped, &d.QueueLen, &d.QueueCap)
		if err != nil || n != 8 {
			return nil, fmt.Errorf("procfs: netdev line %d: parse %q: %v", i, line, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// SoftnetStats is one per-CPU backlog queue's counter set.
type SoftnetStats struct {
	Processed uint64 // packets dequeued by the NAPI routine
	Dropped   uint64 // enqueue failures (backlog full)
	Queued    uint64 // current occupancy
}

// FormatSoftnet renders /proc/net/softnet_stat-style hex columns, one line
// per CPU.
func FormatSoftnet(rows []SoftnetStats) []byte {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%08x %08x %08x\n", r.Processed, r.Dropped, r.Queued)
	}
	return []byte(b.String())
}

// ParseSoftnet parses FormatSoftnet output.
func ParseSoftnet(data []byte) ([]SoftnetStats, error) {
	var out []SoftnetStats
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var r SoftnetStats
		n, err := fmt.Sscanf(line, "%x %x %x", &r.Processed, &r.Dropped, &r.Queued)
		if err != nil || n != 3 {
			return nil, fmt.Errorf("procfs: softnet line %d: parse %q: %v", i, line, err)
		}
		out = append(out, r)
	}
	return out, nil
}
