// Package sim provides the deterministic discrete-tick simulation engine
// underneath the reproduced testbed: a virtual clock, a tick loop, and the
// resource-allocation solvers (max–min fair share) the machine model uses
// to apportion shared CPU, memory-bus and NIC capacity among contending
// dataplane elements.
//
// The paper ran on a real Linux/OVS/QEMU testbed; this engine is the
// substitution (see DESIGN.md §2) that lets the same instrumentation,
// agents and diagnosis algorithms run against a faithful, seedable model of
// that testbed. Virtual time is a time.Duration since scenario start and
// advances in fixed ticks (default 1 ms), small relative to the multi-second
// phenomena in the paper's figures.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// DefaultTick is the default virtual-time step.
const DefaultTick = time.Millisecond

// Ticker is a component advanced by the engine each tick. Tick is called
// with the time at the *end* of the step and the step length.
type Ticker interface {
	Tick(now, dt time.Duration)
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(now, dt time.Duration)

// Tick implements Ticker.
func (f TickerFunc) Tick(now, dt time.Duration) { f(now, dt) }

// Engine drives virtual time. Tickers run in registration order every
// tick, which makes runs fully deterministic.
type Engine struct {
	now     time.Duration
	dt      time.Duration
	tickers []Ticker
}

// NewEngine returns an engine with the given tick size (DefaultTick if
// dt <= 0).
func NewEngine(dt time.Duration) *Engine {
	if dt <= 0 {
		dt = DefaultTick
	}
	return &Engine{dt: dt}
}

// Add registers a ticker. Order of registration is order of execution.
func (e *Engine) Add(t Ticker) { e.tickers = append(e.tickers, t) }

// AddFunc registers a function ticker.
func (e *Engine) AddFunc(f func(now, dt time.Duration)) { e.Add(TickerFunc(f)) }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Dt returns the tick size.
func (e *Engine) Dt() time.Duration { return e.dt }

// Step advances virtual time by one tick.
func (e *Engine) Step() {
	e.now += e.dt
	for _, t := range e.tickers {
		t.Tick(e.now, e.dt)
	}
}

// Run advances virtual time by at least d. Rounding contract: time only
// moves in whole ticks, so a d that is not a multiple of the tick size is
// rounded UP — Run(d) is exactly RunUntil(Now()+d), and Run never silently
// drops a sub-tick remainder. Run(0) and negative d are no-ops.
func (e *Engine) Run(d time.Duration) {
	if d <= 0 {
		return
	}
	e.RunUntil(e.now + d)
}

// RunUntil advances virtual time until Now() >= t.
func (e *Engine) RunUntil(t time.Duration) {
	for e.now < t {
		e.Step()
	}
}

// FairShare computes the max–min fair allocation of capacity among the
// given demands (water-filling): every demand is satisfied up to the common
// fair level, and capacity left by small demands is redistributed to large
// ones. The returned slice is parallel to demands.
//
// Invariants (property-tested):
//   - 0 <= alloc[i] <= demands[i]
//   - sum(alloc) <= capacity (+epsilon), with equality when
//     sum(demands) >= capacity (work conservation)
//   - equal demands receive equal allocations
func FairShare(capacity float64, demands []float64) []float64 {
	alloc := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return alloc
	}
	total := 0.0
	for _, d := range demands {
		if d > 0 {
			total += d
		}
	}
	if total <= capacity {
		for i, d := range demands {
			if d > 0 {
				alloc[i] = d
			}
		}
		return alloc
	}
	// Water-filling over demands sorted ascending.
	idx := make([]int, 0, len(demands))
	for i, d := range demands {
		if d > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return demands[idx[a]] < demands[idx[b]] })
	remaining := capacity
	for n := 0; n < len(idx); n++ {
		share := remaining / float64(len(idx)-n)
		i := idx[n]
		if demands[i] <= share {
			alloc[i] = demands[i]
			remaining -= demands[i]
		} else {
			// All remaining demands exceed the equal share; split evenly.
			for m := n; m < len(idx); m++ {
				alloc[idx[m]] = share
			}
			return alloc
		}
	}
	return alloc
}

// WeightedFairShare computes max–min fairness where claimant i's fair level
// is proportional to weights[i]. A zero or negative weight receives nothing.
func WeightedFairShare(capacity float64, demands, weights []float64) []float64 {
	if len(demands) != len(weights) {
		panic(fmt.Sprintf("sim: WeightedFairShare len(demands)=%d len(weights)=%d", len(demands), len(weights)))
	}
	alloc := make([]float64, len(demands))
	if capacity <= 0 {
		return alloc
	}
	// Normalize into virtual demands d_i/w_i, water-fill a common level.
	type claim struct {
		i    int
		norm float64
	}
	var claims []claim
	totalW := 0.0
	totalD := 0.0
	for i := range demands {
		if demands[i] > 0 && weights[i] > 0 {
			claims = append(claims, claim{i, demands[i] / weights[i]})
			totalW += weights[i]
			totalD += demands[i]
		}
	}
	if totalD <= capacity {
		for _, c := range claims {
			alloc[c.i] = demands[c.i]
		}
		return alloc
	}
	sort.Slice(claims, func(a, b int) bool { return claims[a].norm < claims[b].norm })
	remaining := capacity
	remW := totalW
	for n, c := range claims {
		level := remaining / remW // allocation per unit weight
		if c.norm <= level {
			alloc[c.i] = demands[c.i]
			remaining -= demands[c.i]
			remW -= weights[c.i]
		} else {
			for m := n; m < len(claims); m++ {
				j := claims[m].i
				alloc[j] = level * weights[j]
			}
			return alloc
		}
	}
	return alloc
}

// BytesIn returns how many whole bytes a rate (bits per second) moves in dt.
func BytesIn(bps float64, dt time.Duration) int64 {
	return int64(bps / 8 * dt.Seconds())
}

// BitsPerSec returns the rate that moves the given bytes in dt.
func BitsPerSec(bytes int64, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	return float64(bytes) * 8 / dt.Seconds()
}

// Mbps converts bits/s to Mbit/s.
func Mbps(bps float64) float64 { return bps / 1e6 }

// Gbps converts bits/s to Gbit/s.
func Gbps(bps float64) float64 { return bps / 1e9 }

// RNG is a small deterministic pseudo-random generator (xorshift64*),
// used instead of math/rand so scenario runs are stable across Go versions.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It uses Lemire's bounded
// rejection method (multiply-shift with a rare retry) rather than a plain
// modulo, which would skew low values whenever 2^64 is not a multiple of n.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		// Reject the biased fringe: values below 2^64 mod n.
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Jitter returns v scaled by a uniform factor in [1-f, 1+f].
func (r *RNG) Jitter(v, f float64) float64 {
	return v * (1 + f*(2*r.Float64()-1))
}

// Normal returns an approximately normal sample with the given mean and
// standard deviation (Irwin–Hall sum of 12 uniforms).
func (r *RNG) Normal(mean, stddev float64) float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return mean + (s-6)*stddev
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}
