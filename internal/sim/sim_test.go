package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStepAdvancesClock(t *testing.T) {
	e := NewEngine(time.Millisecond)
	if e.Now() != 0 {
		t.Fatalf("fresh engine at %v", e.Now())
	}
	e.Step()
	if e.Now() != time.Millisecond {
		t.Fatalf("after one step: %v", e.Now())
	}
	e.Run(10 * time.Millisecond)
	if e.Now() != 11*time.Millisecond {
		t.Fatalf("after Run(10ms): %v", e.Now())
	}
}

func TestEngineDefaultTick(t *testing.T) {
	e := NewEngine(0)
	if e.Dt() != DefaultTick {
		t.Fatalf("dt = %v; want %v", e.Dt(), DefaultTick)
	}
}

func TestEngineTickerOrderAndArgs(t *testing.T) {
	e := NewEngine(time.Millisecond)
	var order []int
	var gotNow time.Duration
	var gotDt time.Duration
	e.AddFunc(func(now, dt time.Duration) { order = append(order, 1); gotNow, gotDt = now, dt })
	e.AddFunc(func(now, dt time.Duration) { order = append(order, 2) })
	e.Step()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("ticker order %v", order)
	}
	if gotNow != time.Millisecond || gotDt != time.Millisecond {
		t.Fatalf("ticker args now=%v dt=%v", gotNow, gotDt)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(time.Millisecond)
	e.RunUntil(5 * time.Millisecond)
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("RunUntil landed at %v", e.Now())
	}
	e.RunUntil(3 * time.Millisecond) // in the past: no-op
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("RunUntil moved backwards to %v", e.Now())
	}
}

func TestFairShareUnderloaded(t *testing.T) {
	alloc := FairShare(100, []float64{10, 20, 30})
	want := []float64{10, 20, 30}
	for i := range want {
		if alloc[i] != want[i] {
			t.Fatalf("alloc = %v; want %v", alloc, want)
		}
	}
}

func TestFairShareOverloadedEqualSplit(t *testing.T) {
	alloc := FairShare(90, []float64{100, 100, 100})
	for i, a := range alloc {
		if math.Abs(a-30) > 1e-9 {
			t.Fatalf("alloc[%d] = %v; want 30", i, a)
		}
	}
}

func TestFairShareWaterFilling(t *testing.T) {
	// Small demand fully satisfied; the rest split the remainder.
	alloc := FairShare(100, []float64{10, 200, 200})
	if alloc[0] != 10 {
		t.Fatalf("small claim got %v; want 10", alloc[0])
	}
	if math.Abs(alloc[1]-45) > 1e-9 || math.Abs(alloc[2]-45) > 1e-9 {
		t.Fatalf("large claims got %v, %v; want 45 each", alloc[1], alloc[2])
	}
}

func TestFairShareZeroAndNegativeDemands(t *testing.T) {
	alloc := FairShare(100, []float64{0, -5, 50})
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Fatalf("non-positive demands allocated: %v", alloc)
	}
	if alloc[2] != 50 {
		t.Fatalf("positive demand got %v; want 50", alloc[2])
	}
}

func TestFairShareZeroCapacity(t *testing.T) {
	alloc := FairShare(0, []float64{1, 2})
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Fatalf("zero capacity allocated %v", alloc)
	}
}

// TestFairShareProperties checks the max–min invariants over random inputs.
func TestFairShareProperties(t *testing.T) {
	f := func(capRaw uint16, demandsRaw []uint16) bool {
		capacity := float64(capRaw)
		demands := make([]float64, len(demandsRaw))
		total := 0.0
		for i, d := range demandsRaw {
			demands[i] = float64(d)
			total += float64(d)
		}
		alloc := FairShare(capacity, demands)
		if len(alloc) != len(demands) {
			return false
		}
		sum := 0.0
		for i := range alloc {
			if alloc[i] < -1e-9 || alloc[i] > demands[i]+1e-9 {
				return false // bounded by demand
			}
			sum += alloc[i]
		}
		if sum > capacity+1e-6 {
			return false // never over-allocates
		}
		if total >= capacity && capacity > 0 && sum < capacity-1e-6 {
			return false // work conserving when overloaded
		}
		// Equal demands get equal allocations.
		for i := range demands {
			for j := range demands {
				if demands[i] == demands[j] && math.Abs(alloc[i]-alloc[j]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedFairShare(t *testing.T) {
	// Weight 2 gets twice the share of weight 1 when both are trimmed.
	alloc := WeightedFairShare(90, []float64{100, 100}, []float64{1, 2})
	if math.Abs(alloc[0]-30) > 1e-9 || math.Abs(alloc[1]-60) > 1e-9 {
		t.Fatalf("weighted alloc = %v; want [30 60]", alloc)
	}
	// Underloaded: everyone gets demand regardless of weight.
	alloc = WeightedFairShare(300, []float64{100, 100}, []float64{1, 2})
	if alloc[0] != 100 || alloc[1] != 100 {
		t.Fatalf("underloaded weighted alloc = %v", alloc)
	}
}

func TestWeightedFairShareMismatchedLensPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	WeightedFairShare(1, []float64{1}, []float64{1, 2})
}

func TestBytesInAndBitsPerSec(t *testing.T) {
	if got := BytesIn(8e9, time.Millisecond); got != 1e6 {
		t.Fatalf("BytesIn(8Gbps, 1ms) = %d; want 1e6", got)
	}
	if got := BitsPerSec(1e6, time.Millisecond); got != 8e9 {
		t.Fatalf("BitsPerSec(1e6, 1ms) = %g; want 8e9", got)
	}
	if got := BitsPerSec(100, 0); got != 0 {
		t.Fatalf("BitsPerSec with zero interval = %g", got)
	}
}

func TestRateHelpers(t *testing.T) {
	if Mbps(5e6) != 5 {
		t.Fatalf("Mbps(5e6) = %g", Mbps(5e6))
	}
	if Gbps(5e9) != 5 {
		t.Fatalf("Gbps(5e9) = %g", Gbps(5e9))
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.05)
		if v < 95 || v > 105 {
			t.Fatalf("jitter out of bounds: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean %v; want ~10", mean)
	}
	if math.Abs(std-2) > 0.15 {
		t.Fatalf("std %v; want ~2", std)
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestClamp(t *testing.T) {
	for _, tc := range []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	} {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Fatalf("Clamp(%v,%v,%v) = %v; want %v", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}
