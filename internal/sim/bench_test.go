package sim

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// workTicker is a representative no-alloc tick workload: a little integer
// mixing per tick, the shape of a machine model's hot loop.
type workTicker struct {
	state uint64
}

func (w *workTicker) Tick(now, dt time.Duration) {
	x := w.state + uint64(now)
	x ^= x >> 13
	x *= 0x2545F4914F6CDD1D
	w.state = x
}

// TestTickAllocBudget pins the steady-state per-tick allocation cost of
// BOTH engines against a checked-in budget (testdata/tick_alloc_budget.txt,
// expected 0): once tickers are registered and the worker pool is warm, a
// tick must not allocate — neither in the serial loop nor in the parallel
// dispatch/barrier machinery. CI fails when a change regresses past it
// (see make bench-sim).
func TestTickAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/tick_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parse budget: %v", err)
	}

	serial := NewEngine(time.Millisecond)
	for i := 0; i < 64; i++ {
		serial.Add(&workTicker{state: uint64(i)})
	}
	serial.Step() // warm
	gotSerial := testing.AllocsPerRun(200, serial.Step)
	t.Logf("serial Engine.Step allocs/op = %.2f (budget %s)", gotSerial, strings.TrimSpace(string(raw)))
	if gotSerial > budget {
		t.Fatalf("serial Engine.Step allocs/op = %.2f exceeds budget %.2f (testdata/tick_alloc_budget.txt)", gotSerial, budget)
	}

	par := NewParallelEngine(time.Millisecond, 8, 2, 4, 1)
	defer par.Close()
	for i := 0; i < 8; i++ {
		d := par.Domain(i)
		for j := 0; j < 8; j++ {
			d.Add(0, &workTicker{state: uint64(i*8 + j)})
			d.Add(1, &workTicker{state: uint64(i*8+j) ^ 0xFF})
		}
	}
	par.AddCommit(&workTicker{})
	par.Step() // warm: spins up the worker pool
	gotPar := testing.AllocsPerRun(200, par.Step)
	t.Logf("ParallelEngine.Step allocs/op = %.2f (budget %s)", gotPar, strings.TrimSpace(string(raw)))
	if gotPar > budget {
		t.Fatalf("ParallelEngine.Step allocs/op = %.2f exceeds budget %.2f (testdata/tick_alloc_budget.txt)", gotPar, budget)
	}
}

// BenchmarkEngineTick measures the serial engine's per-tick overhead with
// 64 registered tickers.
func BenchmarkEngineTick(b *testing.B) {
	e := NewEngine(time.Millisecond)
	for i := 0; i < 64; i++ {
		e.Add(&workTicker{state: uint64(i)})
	}
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkParallelEngineTick measures the parallel engine's per-tick
// overhead (dispatch + two barriers + commit) with the same 64 tickers
// spread over 8 domains.
func BenchmarkParallelEngineTick(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			e := NewParallelEngine(time.Millisecond, 8, 2, workers, 1)
			defer e.Close()
			for i := 0; i < 8; i++ {
				d := e.Domain(i)
				for j := 0; j < 4; j++ {
					d.Add(0, &workTicker{state: uint64(i*4 + j)})
					d.Add(1, &workTicker{state: uint64(i*4+j) ^ 0xFF})
				}
			}
			e.Step()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}
