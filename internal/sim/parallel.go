package sim

import (
	"fmt"
	"sync"
	"time"
)

// Domain is one shard of a parallel simulation: a set of tickers that only
// touch state owned by the shard, advanced concurrently with every other
// domain inside a phase. A domain carries its own RNG stream, seeded from
// the scenario seed and the domain ID, so the amount of randomness a shard
// consumes never depends on goroutine scheduling or on what other shards do.
type Domain struct {
	id     int
	rng    *RNG
	phases [][]Ticker
}

// ID returns the domain's index in the engine (0-based, stable).
func (d *Domain) ID() int { return d.id }

// RNG returns the domain-private random stream.
func (d *Domain) RNG() *RNG { return d.rng }

// Add registers a ticker in the given phase of this domain. Tickers in the
// same (domain, phase) run sequentially in registration order; tickers in
// different domains of the same phase may run concurrently and therefore
// must not share mutable state.
func (d *Domain) Add(phase int, t Ticker) {
	d.phases[phase] = append(d.phases[phase], t)
}

// AddFunc registers a function ticker in the given phase of this domain.
func (d *Domain) AddFunc(phase int, f func(now, dt time.Duration)) {
	d.Add(phase, TickerFunc(f))
}

// ParallelEngine drives virtual time across sharded tick domains with
// deterministic two-phase semantics. Each tick runs:
//
//  1. the serial *pre* tickers (chaos schedulers, actuators) in order,
//  2. each parallel phase in turn: all domains advance concurrently on the
//     worker pool, with a barrier between phases,
//  3. the serial *commit* tickers (cross-domain merges: routing, fair-share
//     settlement, feedback flushes) in order.
//
// Determinism argument: work inside a (domain, phase) is sequential; domains
// within a phase are mutually independent by construction (the Add contract),
// so their relative execution order cannot change any state; everything that
// couples domains happens in the serial commit, which iterates in a fixed
// canonical order. Randomness comes only from per-domain streams. The result
// is byte-identical trajectories for a given seed at any worker count,
// including Workers=1, which is exactly the serial schedule.
type ParallelEngine struct {
	now     time.Duration
	dt      time.Duration
	domains []*Domain
	pre     []Ticker
	commit  []Ticker

	workers int
	started bool
	closed  bool
	work    []chan int // per-worker phase dispatch
	wg      sync.WaitGroup
	done    sync.WaitGroup // worker goroutine lifetime
}

// NewParallelEngine returns an engine with the given tick size (DefaultTick
// if dt <= 0), `domains` tick domains of `phases` parallel phases each, and
// a pool of `workers` goroutines (clamped to [1, domains]). Domain d's RNG
// is seeded from seed and d so shards draw from disjoint streams.
func NewParallelEngine(dt time.Duration, domains, phases, workers int, seed uint64) *ParallelEngine {
	if dt <= 0 {
		dt = DefaultTick
	}
	if domains < 1 {
		domains = 1
	}
	if phases < 1 {
		phases = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > domains {
		workers = domains
	}
	e := &ParallelEngine{dt: dt, workers: workers}
	e.domains = make([]*Domain, domains)
	for i := range e.domains {
		e.domains[i] = &Domain{
			id:     i,
			rng:    NewRNG(domainSeed(seed, i)),
			phases: make([][]Ticker, phases),
		}
	}
	return e
}

// domainSeed derives a well-mixed per-domain seed from the scenario seed
// (splitmix64 finalizer over seed+id, so nearby IDs land far apart).
func domainSeed(seed uint64, id int) uint64 {
	x := seed + 0x9E3779B97F4A7C15*uint64(id+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Domains returns the number of tick domains.
func (e *ParallelEngine) Domains() int { return len(e.domains) }

// Workers returns the worker-pool size.
func (e *ParallelEngine) Workers() int { return e.workers }

// Domain returns domain i.
func (e *ParallelEngine) Domain(i int) *Domain { return e.domains[i] }

// AddPre registers a serial ticker that runs before the parallel phases.
func (e *ParallelEngine) AddPre(t Ticker) { e.pre = append(e.pre, t) }

// AddPreFunc registers a serial pre-phase function ticker.
func (e *ParallelEngine) AddPreFunc(f func(now, dt time.Duration)) { e.AddPre(TickerFunc(f)) }

// AddCommit registers a serial ticker that runs after all parallel phases.
// Commit tickers own the cross-domain merge and run in registration order.
func (e *ParallelEngine) AddCommit(t Ticker) { e.commit = append(e.commit, t) }

// AddCommitFunc registers a serial commit-phase function ticker.
func (e *ParallelEngine) AddCommitFunc(f func(now, dt time.Duration)) { e.AddCommit(TickerFunc(f)) }

// Now returns the current virtual time.
func (e *ParallelEngine) Now() time.Duration { return e.now }

// Dt returns the tick size.
func (e *ParallelEngine) Dt() time.Duration { return e.dt }

// start spins up the persistent worker pool. Worker w owns domains
// w, w+workers, w+2*workers, ... and runs them in ascending ID order —
// a static partition, so no work-stealing and no scheduling-dependent
// assignment ever occurs.
func (e *ParallelEngine) start() {
	e.started = true
	e.work = make([]chan int, e.workers)
	for w := 0; w < e.workers; w++ {
		ch := make(chan int, 1)
		e.work[w] = ch
		first := w
		e.done.Add(1)
		go func() {
			defer e.done.Done()
			for phase := range ch {
				for i := first; i < len(e.domains); i += e.workers {
					d := e.domains[i]
					for _, t := range d.phases[phase] {
						t.Tick(e.now, e.dt)
					}
				}
				e.wg.Done()
			}
		}()
	}
}

// Step advances virtual time by one tick.
func (e *ParallelEngine) Step() {
	if e.closed {
		panic("sim: Step on closed ParallelEngine")
	}
	e.now += e.dt
	for _, t := range e.pre {
		t.Tick(e.now, e.dt)
	}
	nPhases := len(e.domains[0].phases)
	if e.workers == 1 {
		// Serial schedule: domains in ID order, no goroutines involved.
		for phase := 0; phase < nPhases; phase++ {
			for _, d := range e.domains {
				for _, t := range d.phases[phase] {
					t.Tick(e.now, e.dt)
				}
			}
		}
	} else {
		if !e.started {
			e.start()
		}
		for phase := 0; phase < nPhases; phase++ {
			e.wg.Add(e.workers)
			for _, ch := range e.work {
				ch <- phase
			}
			e.wg.Wait() // barrier between phases
		}
	}
	for _, t := range e.commit {
		t.Tick(e.now, e.dt)
	}
}

// Run advances virtual time by at least d, rounded up to whole ticks
// (same contract as Engine.Run).
func (e *ParallelEngine) Run(d time.Duration) {
	if d <= 0 {
		return
	}
	e.RunUntil(e.now + d)
}

// RunUntil advances virtual time until Now() >= t.
func (e *ParallelEngine) RunUntil(t time.Duration) {
	for e.now < t {
		e.Step()
	}
}

// Close stops the worker pool. The engine must not be stepped afterwards.
// Close is idempotent and safe on engines that never started workers.
func (e *ParallelEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.started {
		for _, ch := range e.work {
			close(ch)
		}
		e.done.Wait()
	}
}

// Partition splits n items (identified by index) into k contiguous,
// near-equal ranges and returns the slice of [start, end) bounds. It is the
// canonical way cluster-level code assigns machines to domains: contiguous
// ranges keep creation-order iteration inside a shard cache-friendly and
// make the assignment independent of map iteration order.
func Partition(n, k int) [][2]int {
	if k < 1 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	out := make([][2]int, 0, k)
	if n <= 0 {
		return append(out, [2]int{0, 0})
	}
	base, extra := n/k, n%k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// String describes the engine configuration (for logs and experiments).
func (e *ParallelEngine) String() string {
	return fmt.Sprintf("ParallelEngine{domains=%d workers=%d dt=%s}", len(e.domains), e.workers, e.dt)
}
