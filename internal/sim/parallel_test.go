package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestIntnUnbiased checks the Lemire bounded-rejection Intn: values stay in
// range for awkward n (including n near 2^63 where plain modulo skews
// badly), and small-n draws are uniform within tolerance.
func TestIntnUnbiased(t *testing.T) {
	r := NewRNG(42)
	for _, n := range []int{1, 2, 3, 7, 1000, 1 << 30, (1 << 62) + 12345} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	// Uniformity: 10 buckets, 200k draws, each bucket within 5% of expected.
	const n, draws = 10, 200000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if dev := float64(c)/want - 1; dev > 0.05 || dev < -0.05 {
			t.Fatalf("bucket %d: count %d deviates %.1f%% from expected %.0f", b, c, dev*100, want)
		}
	}
	// The rejection loop must still terminate instantly for n = 1.
	if v := r.Intn(1); v != 0 {
		t.Fatalf("Intn(1) = %d, want 0", v)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

// TestEngineRunRoundsUp pins the documented rounding contract: Run(d)
// advances by whole ticks, rounding a sub-tick remainder UP, and agrees
// with RunUntil.
func TestEngineRunRoundsUp(t *testing.T) {
	e := NewEngine(time.Millisecond)
	e.Run(2500 * time.Microsecond) // not a multiple of dt
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Run(2.5ms): now = %s, want 3ms (round up to whole ticks)", e.Now())
	}
	e.Run(0)
	e.Run(-time.Second)
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Run(<=0) must be a no-op, now = %s", e.Now())
	}
	// Run(d) ≡ RunUntil(Now()+d) for a fresh engine with the same schedule.
	e2 := NewEngine(time.Millisecond)
	e2.RunUntil(2500 * time.Microsecond)
	if e2.Now() != 3*time.Millisecond {
		t.Fatalf("RunUntil(2.5ms): now = %s, want 3ms", e2.Now())
	}
}

// shardedScenario builds a ParallelEngine whose domains run a two-phase
// toy workload (phase 0 produces from the domain RNG, phase 1 mixes) with
// a serial commit that folds the shards into a shared trajectory hash.
// Returns the engine and the hash accumulator.
func shardedScenario(domains, workers int, seed uint64) (*ParallelEngine, *uint64, []*uint64) {
	e := NewParallelEngine(time.Millisecond, domains, 2, workers, seed)
	hash := new(uint64)
	shard := make([]*uint64, domains)
	for i := 0; i < domains; i++ {
		d := e.Domain(i)
		acc := new(uint64)
		shard[i] = acc
		d.AddFunc(0, func(now, dt time.Duration) {
			*acc += d.RNG().Uint64() + uint64(d.RNG().Intn(1000))
		})
		d.AddFunc(1, func(now, dt time.Duration) {
			*acc ^= *acc >> 13
			*acc *= 0x9E3779B97F4A7C15
		})
	}
	e.AddCommitFunc(func(now, dt time.Duration) {
		for _, acc := range shard {
			*hash = (*hash ^ *acc) * 0x100000001B3
		}
	})
	return e, hash, shard
}

// TestParallelEngineDeterministic asserts the core tentpole property: the
// same seed yields a byte-identical trajectory at any worker count,
// including the pure-serial 1-worker schedule.
func TestParallelEngineDeterministic(t *testing.T) {
	const domains = 8
	const seed = 0xDEADBEEF
	run := func(workers int) uint64 {
		e, hash, _ := shardedScenario(domains, workers, seed)
		defer e.Close()
		e.Run(200 * time.Millisecond)
		return *hash
	}
	want := run(1)
	for _, w := range []int{2, 3, 4, 8} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d: trajectory hash %#x != serial hash %#x", w, got, want)
		}
	}
}

// TestParallelEnginePhaseBarrier asserts no domain enters phase 1 before
// every domain finished phase 0 within the same tick.
func TestParallelEnginePhaseBarrier(t *testing.T) {
	const domains = 8
	e := NewParallelEngine(time.Millisecond, domains, 2, 4, 1)
	defer e.Close()
	var inPhase0 atomic.Int64
	var violations atomic.Int64
	for i := 0; i < domains; i++ {
		d := e.Domain(i)
		d.AddFunc(0, func(now, dt time.Duration) { inPhase0.Add(1) })
		d.AddFunc(1, func(now, dt time.Duration) {
			if inPhase0.Load() != domains {
				violations.Add(1)
			}
		})
	}
	e.AddCommitFunc(func(now, dt time.Duration) { inPhase0.Store(0) })
	e.Run(100 * time.Millisecond)
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d phase-barrier violations: phase 1 ran before all domains finished phase 0", v)
	}
}

// TestParallelEngineConcurrency drives many ticks under -race with shared
// commit state and per-domain mutable state to let the race detector prove
// the phase/commit discipline is sound.
func TestParallelEngineConcurrency(t *testing.T) {
	e, hash, shard := shardedScenario(16, 4, 7)
	defer e.Close()
	e.Run(300 * time.Millisecond)
	if *hash == 0 {
		t.Fatal("trajectory hash unexpectedly zero")
	}
	for i, acc := range shard {
		if *acc == 0 {
			t.Fatalf("domain %d never ticked", i)
		}
	}
}

// TestDomainRNGStreamsDisjoint checks per-domain streams are decorrelated:
// distinct domains seeded from the same scenario seed draw different
// sequences, and the same (seed, domain) always draws the same sequence.
func TestDomainRNGStreamsDisjoint(t *testing.T) {
	a := NewParallelEngine(0, 4, 1, 1, 99)
	b := NewParallelEngine(0, 4, 1, 1, 99)
	defer a.Close()
	defer b.Close()
	seen := map[uint64]int{}
	for i := 0; i < 4; i++ {
		va, vb := a.Domain(i).RNG().Uint64(), b.Domain(i).RNG().Uint64()
		if va != vb {
			t.Fatalf("domain %d: same seed drew %#x vs %#x", i, va, vb)
		}
		if prev, dup := seen[va]; dup {
			t.Fatalf("domains %d and %d share a stream", prev, i)
		}
		seen[va] = i
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{0, 4}, {1, 4}, {5, 2}, {2000, 7}, {16, 16}, {3, 100}} {
		parts := Partition(tc.n, tc.k)
		covered := 0
		prevEnd := 0
		for _, p := range parts {
			if p[0] != prevEnd {
				t.Fatalf("Partition(%d,%d): gap before %v", tc.n, tc.k, p)
			}
			if p[1] < p[0] {
				t.Fatalf("Partition(%d,%d): inverted range %v", tc.n, tc.k, p)
			}
			covered += p[1] - p[0]
			prevEnd = p[1]
		}
		if covered != tc.n {
			t.Fatalf("Partition(%d,%d) covers %d items", tc.n, tc.k, covered)
		}
		for _, p := range parts {
			if size := p[1] - p[0]; tc.n >= tc.k && (size < tc.n/tc.k || size > tc.n/tc.k+1) {
				t.Fatalf("Partition(%d,%d): unbalanced range %v", tc.n, tc.k, p)
			}
		}
	}
}

func TestChaosFiresInOrder(t *testing.T) {
	c := NewChaos(1)
	var fired []string
	rec := func(name string) func(time.Duration) {
		return func(now time.Duration) { fired = append(fired, fmt.Sprintf("%s@%s", name, now)) }
	}
	c.At(5*time.Millisecond, "b", rec("b"))
	c.At(2*time.Millisecond, "a", rec("a"))
	c.Window(5*time.Millisecond, 8*time.Millisecond, "w", rec("w+"), rec("w-"))
	e := NewEngine(time.Millisecond)
	e.Add(c)
	e.Run(10 * time.Millisecond)
	want := "[a@2ms b@5ms w+@5ms w-@8ms]"
	if got := fmt.Sprint(fired); got != want {
		t.Fatalf("chaos fired %s, want %s", got, want)
	}
	if c.Pending() != 0 || c.Fired() != 4 {
		t.Fatalf("pending=%d fired=%d, want 0/4", c.Pending(), c.Fired())
	}
}

// TestChaosLateSchedule: a fault scheduled for a time already in the past
// fires on the next tick, not never.
func TestChaosLateSchedule(t *testing.T) {
	c := NewChaos(1)
	e := NewEngine(time.Millisecond)
	e.Add(c)
	e.Run(5 * time.Millisecond)
	var at time.Duration
	c.At(time.Millisecond, "late", func(now time.Duration) { at = now })
	e.Run(time.Millisecond)
	if at != 6*time.Millisecond {
		t.Fatalf("late fault fired at %s, want 6ms (next tick)", at)
	}
}

func TestChaosJitteredDeterministic(t *testing.T) {
	a, b := NewChaos(7), NewChaos(7)
	for i := 0; i < 10; i++ {
		ja, jb := a.Jittered(time.Second, 0.2), b.Jittered(time.Second, 0.2)
		if ja != jb {
			t.Fatalf("Jittered diverged for equal seeds: %s vs %s", ja, jb)
		}
		if ja < 800*time.Millisecond || ja > 1200*time.Millisecond {
			t.Fatalf("Jittered(1s, 0.2) = %s out of ±20%%", ja)
		}
	}
}
