package sim

import (
	"sort"
	"time"
)

// Fault is one scheduled chaos event: at virtual time At (inclusive), Apply
// fires exactly once. Faults are pure state flips — the injected condition
// itself (a dead agent, a partitioned link, a skewed clock) lives in whatever
// component Apply mutates.
type Fault struct {
	At    time.Duration
	Name  string
	Apply func(now time.Duration)

	seq  int  // insertion order, tie-breaker for equal At
	done bool // fired already
}

// Chaos is a seeded, schedulable fault injector. It implements Ticker and is
// meant to run in the serial pre phase of an engine (or as an ordinary ticker
// on the serial engine), so faults always land between ticks, never inside
// one — identical placement under serial and parallel execution.
//
// Randomness for fault placement comes from the injector's own RNG stream, so
// chaotic scenarios stay deterministic per seed: same seed, same fault times,
// same trajectories.
type Chaos struct {
	rng    *RNG
	faults []*Fault
	sorted bool
	fired  int
}

// NewChaos returns an injector whose schedule jitter draws from a stream
// seeded by seed.
func NewChaos(seed uint64) *Chaos {
	return &Chaos{rng: NewRNG(seed)}
}

// RNG returns the injector's private random stream (for callers that want
// seeded fault placement, e.g. picking a victim machine).
func (c *Chaos) RNG() *RNG { return c.rng }

// At schedules apply to fire at virtual time t (first tick whose end time
// is >= t).
func (c *Chaos) At(t time.Duration, name string, apply func(now time.Duration)) {
	c.faults = append(c.faults, &Fault{At: t, Name: name, Apply: apply, seq: len(c.faults)})
	c.sorted = false
}

// Window schedules a fault that applies at start and heals at stop.
func (c *Chaos) Window(start, stop time.Duration, name string, apply, heal func(now time.Duration)) {
	c.At(start, name+"/apply", apply)
	c.At(stop, name+"/heal", heal)
}

// Jittered returns t perturbed by ±frac using the injector's seeded stream,
// clamped to be non-negative. Useful for schedules that should vary between
// seeds but not between runs.
func (c *Chaos) Jittered(t time.Duration, frac float64) time.Duration {
	j := time.Duration(c.rng.Jitter(float64(t), frac))
	if j < 0 {
		return 0
	}
	return j
}

// Pending returns how many scheduled faults have not fired yet.
func (c *Chaos) Pending() int { return len(c.faults) - c.fired }

// Fired returns how many faults have fired.
func (c *Chaos) Fired() int { return c.fired }

// Tick fires every unfired fault whose At is <= now, in (At, insertion)
// order. It implements Ticker. Faults may be scheduled mid-run; one whose
// At is already in the past fires on the next tick.
func (c *Chaos) Tick(now, dt time.Duration) {
	if !c.sorted {
		sort.SliceStable(c.faults, func(a, b int) bool {
			if c.faults[a].At != c.faults[b].At {
				return c.faults[a].At < c.faults[b].At
			}
			return c.faults[a].seq < c.faults[b].seq
		})
		c.sorted = true
	}
	for _, f := range c.faults {
		if f.done || f.At > now {
			continue
		}
		f.done = true
		c.fired++
		f.Apply(now)
	}
}
