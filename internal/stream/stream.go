// Package stream implements the TCP-like transport connecting middleboxes
// in a chain. Propagation of performance problems (§5.2) is entirely a
// product of TCP semantics: a sender that cannot push data WriteBlocks and
// pushes the stall to its predecessors; a source that does not produce
// leaves its successors ReadBlocked. Conn reproduces exactly those
// semantics — bounded send buffer, receiver-window flow control, and AIMD
// congestion control reacting to drops in the software dataplane — while
// the data itself travels as dataplane batches through the instrumented
// element pipeline.
package stream

import (
	"cmp"
	"slices"
	"sync"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
)

// Window receives the conn's advertised receive window: the free space of
// the destination's receive buffer (guest socket or external-host inbox).
type Window interface {
	RxFree() int64
}

// Emitter injects a batch into the source side's transmit path: a VM's
// guest socket send buffer, or an external host's wire queue. It returns
// the bytes accepted (the rest stays in the conn's send buffer).
type Emitter func(b dataplane.Batch) int64

// Config tunes a connection.
type Config struct {
	MSS          int     // segment size, bytes (default 1448)
	InitCwnd     int64   // initial congestion window, bytes
	MinCwnd      int64   // floor after loss
	MaxCwnd      int64   // cap (0 = none)
	SendBufBytes int64   // application send buffer (default 256 KiB)
	Beta         float64 // multiplicative decrease factor (default 0.7)
	// AIFactor scales congestion-avoidance growth (MSS per RTT). The
	// default of 8 approximates CUBIC's fast window rebuild so loss
	// sawteeth have second-scale periods, as on modern Linux stacks.
	AIFactor float64
}

func (c *Config) fill() {
	if c.MSS <= 0 {
		c.MSS = 1448
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = int64(10 * c.MSS)
	}
	if c.MinCwnd <= 0 {
		c.MinCwnd = int64(2 * c.MSS)
	}
	if c.SendBufBytes <= 0 {
		c.SendBufBytes = 256 << 10
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 8 << 20 // tcp_wmem-style cap keeps AIMD dynamics sane
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.7
	}
	if c.AIFactor <= 0 {
		c.AIFactor = 8
	}
}

// Conn is one unidirectional stream between two endpoints.
type Conn struct {
	flow dataplane.FlowID
	cfg  Config

	mu        sync.Mutex
	sendBuf   int64 // bytes the application has written, not yet emitted
	retrans   int64 // bytes lost in the network awaiting retransmission
	inFlight  int64
	cwnd      float64
	ssthresh  float64
	delivered int64 // cumulative bytes acknowledged
	lost      int64 // cumulative bytes dropped (then retransmitted)
	lastWhere core.ElementID

	// Pacing state: sending is capped near 1.25x the recent delivery rate
	// (fq-style pacing / ACK clocking), which prevents the fluid model from
	// dumping a whole window in one tick and synchronizing losses.
	rateEst       float64 // bytes/s EWMA of delivery rate
	sinceLastPump int64   // bytes delivered since the previous tick's Pump
	paceRemaining int64   // unspent pace credit within the current tick

	// Deferred-feedback mode (parallel lab): Delivered/Dropped calls made
	// during a tick's parallel phases are queued instead of applied, then
	// applied in canonical order by FlushFeedback during the serial commit.
	deferFB   bool
	pendingFB []fbEvent

	emit Emitter
	rwnd Window
}

// fbEvent is one queued feedback notification.
type fbEvent struct {
	drop    bool
	packets int
	bytes   int64
	where   core.ElementID
}

// NewConn builds a connection for the given flow.
func NewConn(flow dataplane.FlowID, cfg Config, emit Emitter, rwnd Window) *Conn {
	cfg.fill()
	return &Conn{
		flow:     flow,
		cfg:      cfg,
		cwnd:     float64(cfg.InitCwnd),
		ssthresh: 1 << 30,
		emit:     emit,
		rwnd:     rwnd,
	}
}

// Flow returns the connection's flow ID.
func (c *Conn) Flow() dataplane.FlowID { return c.flow }

// Write appends application data to the send buffer, returning the bytes
// accepted. Zero with wantBytes > 0 is the WriteBlocked condition.
func (c *Conn) Write(wantBytes int64) (accepted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	free := c.cfg.SendBufBytes - c.sendBuf
	if free <= 0 {
		return 0
	}
	if wantBytes > free {
		wantBytes = free
	}
	c.sendBuf += wantBytes
	return wantBytes
}

// SendBufFree returns free send-buffer bytes.
func (c *Conn) SendBufFree() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.SendBufBytes - c.sendBuf
}

// Buffered returns unsent bytes (send buffer plus retransmission backlog).
func (c *Conn) Buffered() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sendBuf + c.retrans
}

// Pump emits buffered data as the congestion window, receive window and
// pacing rate allow. Call with the tick length once per tick; additional
// calls within the same tick must pass dt == 0, which reuses the tick's
// remaining pace credit instead of granting new credit.
func (c *Conn) Pump(dt time.Duration) {
	c.mu.Lock()
	if dt > 0 {
		// New tick: refresh the delivery-rate estimate and pace credit.
		inst := float64(c.sinceLastPump) / dt.Seconds()
		c.sinceLastPump = 0
		c.rateEst = 0.9*c.rateEst + 0.1*inst
		pace := int64(1.25 * c.rateEst * dt.Seconds())
		if floor := int64(16 * c.cfg.MSS); pace < floor {
			pace = floor
		}
		c.paceRemaining = pace
	}
	pace := c.paceRemaining
	window := int64(c.cwnd)
	if c.rwnd != nil {
		if r := c.rwnd.RxFree(); r < window {
			window = r
		}
	}
	if c.cfg.MaxCwnd > 0 && window > c.cfg.MaxCwnd {
		window = c.cfg.MaxCwnd
	}
	budget := window - c.inFlight
	if budget > pace {
		budget = pace
	}
	if budget <= 0 || c.sendBuf+c.retrans <= 0 {
		c.mu.Unlock()
		return
	}
	send := c.sendBuf + c.retrans
	if send > budget {
		send = budget
	}
	// Retransmissions take priority.
	fromRetrans := send
	if fromRetrans > c.retrans {
		fromRetrans = c.retrans
	}
	c.retrans -= fromRetrans
	c.sendBuf -= send - fromRetrans
	c.inFlight += send
	c.paceRemaining -= send
	c.mu.Unlock()

	pkts := int((send + int64(c.cfg.MSS) - 1) / int64(c.cfg.MSS))
	if pkts == 0 {
		pkts = 1
	}
	b := dataplane.Batch{Flow: c.flow, Packets: pkts, Bytes: send, FB: c}
	if got := c.emit(b); got < send {
		// Source-side buffer full: reclaim the unemitted remainder.
		c.mu.Lock()
		c.inFlight -= send - got
		c.sendBuf += send - got
		c.paceRemaining += send - got
		c.mu.Unlock()
	}
}

// DeferFeedback switches the connection into deferred-feedback mode: from
// now on Delivered/Dropped only queue, and the owner must call
// FlushFeedback once per tick (from serialized commit code). This is what
// makes a flow whose batches are touched by concurrently-ticking shards
// deterministic — the queue absorbs the nondeterministic arrival order and
// the flush replays it in a canonical one.
func (c *Conn) DeferFeedback() {
	c.mu.Lock()
	c.deferFB = true
	c.mu.Unlock()
}

// FlushFeedback applies queued feedback in canonical order: deliveries
// before drops, then by (where, bytes, packets). Events with equal keys are
// identical operations, so any arrival order collapses to the same state —
// the determinism argument for cross-domain flows. No-op when nothing is
// queued.
func (c *Conn) FlushFeedback() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pendingFB) == 0 {
		return
	}
	slices.SortFunc(c.pendingFB, func(a, b fbEvent) int {
		if a.drop != b.drop {
			if a.drop {
				return 1
			}
			return -1
		}
		if d := cmp.Compare(a.where, b.where); d != 0 {
			return d
		}
		if d := cmp.Compare(a.bytes, b.bytes); d != 0 {
			return d
		}
		return cmp.Compare(a.packets, b.packets)
	})
	for _, ev := range c.pendingFB {
		if ev.drop {
			c.applyDropped(ev.bytes, ev.where)
		} else {
			c.applyDelivered(ev.bytes)
		}
	}
	c.pendingFB = c.pendingFB[:0]
}

// Delivered implements dataplane.Feedback: data reached the receiver.
func (c *Conn) Delivered(packets int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deferFB {
		c.pendingFB = append(c.pendingFB, fbEvent{packets: packets, bytes: bytes})
		return
	}
	c.applyDelivered(bytes)
}

func (c *Conn) applyDelivered(bytes int64) {
	c.inFlight -= bytes
	if c.inFlight < 0 {
		c.inFlight = 0
	}
	c.delivered += bytes
	c.sinceLastPump += bytes
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(bytes) // slow start
	} else {
		c.cwnd += c.cfg.AIFactor * float64(c.cfg.MSS) * float64(bytes) / c.cwnd // CA
	}
	if c.cfg.MaxCwnd > 0 && c.cwnd > float64(c.cfg.MaxCwnd) {
		c.cwnd = float64(c.cfg.MaxCwnd)
	}
}

// Dropped implements dataplane.Feedback: data was discarded at an element.
func (c *Conn) Dropped(packets int, bytes int64, where core.ElementID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deferFB {
		c.pendingFB = append(c.pendingFB, fbEvent{drop: true, packets: packets, bytes: bytes, where: where})
		return
	}
	c.applyDropped(bytes, where)
}

func (c *Conn) applyDropped(bytes int64, where core.ElementID) {
	c.inFlight -= bytes
	if c.inFlight < 0 {
		c.inFlight = 0
	}
	c.lost += bytes
	c.retrans += bytes
	c.lastWhere = where
	c.cwnd *= c.cfg.Beta
	c.ssthresh = c.cwnd
	if c.cwnd < float64(c.cfg.MinCwnd) {
		c.cwnd = float64(c.cfg.MinCwnd)
	}
}

// Stats is a point-in-time view of the connection.
type Stats struct {
	Delivered int64
	Lost      int64
	InFlight  int64
	Cwnd      int64
	Buffered  int64
	LastDrop  core.ElementID
}

// Stats returns current counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Delivered: c.delivered,
		Lost:      c.lost,
		InFlight:  c.inFlight,
		Cwnd:      int64(c.cwnd),
		Buffered:  c.sendBuf + c.retrans,
		LastDrop:  c.lastWhere,
	}
}

// DeliveredBytes returns cumulative acknowledged bytes.
func (c *Conn) DeliveredBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}
