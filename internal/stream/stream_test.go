package stream

import (
	"testing"
	"time"

	"perfsight/internal/dataplane"
)

// sinkWindow is a fixed-window receiver.
type sinkWindow int64

func (w sinkWindow) RxFree() int64 { return int64(w) }

// collectEmitter accepts everything and records emissions.
type collectEmitter struct {
	emitted []dataplane.Batch
	accept  int64 // per-call acceptance cap (-1 = all)
}

func (c *collectEmitter) emit(b dataplane.Batch) int64 {
	if c.accept >= 0 && b.Bytes > c.accept {
		b.Bytes = c.accept
	}
	c.emitted = append(c.emitted, b)
	return b.Bytes
}

func newConn(cfg Config, e *collectEmitter, w Window) *Conn {
	return NewConn("f", cfg, e.emit, w)
}

func TestConnWriteBoundedBySendBuf(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{SendBufBytes: 1000}, e, sinkWindow(1<<20))
	if got := c.Write(600); got != 600 {
		t.Fatalf("first write %d", got)
	}
	if got := c.Write(600); got != 400 {
		t.Fatalf("second write %d; want 400 (buffer cap)", got)
	}
	if got := c.Write(10); got != 0 {
		t.Fatalf("full buffer accepted %d", got)
	}
	if c.SendBufFree() != 0 || c.Buffered() != 1000 {
		t.Fatalf("free=%d buffered=%d", c.SendBufFree(), c.Buffered())
	}
}

func TestConnPumpRespectsCwnd(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{InitCwnd: 2000, SendBufBytes: 1 << 20}, e, sinkWindow(1<<20))
	c.Write(10000)
	c.Pump(time.Millisecond)
	var sent int64
	for _, b := range e.emitted {
		sent += b.Bytes
	}
	if sent > 2000 {
		t.Fatalf("sent %d beyond initial cwnd 2000", sent)
	}
	if st := c.Stats(); st.InFlight != sent {
		t.Fatalf("inflight %d != sent %d", st.InFlight, sent)
	}
}

func TestConnPumpRespectsReceiveWindow(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{InitCwnd: 1 << 20, SendBufBytes: 1 << 20}, e, sinkWindow(500))
	c.Write(10000)
	c.Pump(time.Millisecond)
	if st := c.Stats(); st.InFlight > 500 {
		t.Fatalf("inflight %d beyond rwnd 500", st.InFlight)
	}
}

func TestConnDeliveryGrowsWindowAndThroughput(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{InitCwnd: 1448 * 2, SendBufBytes: 1 << 20}, e, sinkWindow(1<<30))
	total := int64(0)
	for tick := 0; tick < 200; tick++ {
		c.Write(1 << 20)
		c.Pump(time.Millisecond)
		// Deliver everything emitted this tick (a perfect network).
		for _, b := range e.emitted {
			c.Delivered(b.Packets, b.Bytes)
			total += b.Bytes
		}
		e.emitted = nil
	}
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	st := c.Stats()
	if st.Cwnd <= 1448*2 {
		t.Fatalf("cwnd did not grow: %d", st.Cwnd)
	}
	if st.Delivered != total {
		t.Fatalf("delivered accounting %d != %d", st.Delivered, total)
	}
}

func TestConnLossShrinksWindowAndRetransmits(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{InitCwnd: 100000, SendBufBytes: 1 << 20}, e, sinkWindow(1<<30))
	c.Write(50000)
	c.Pump(time.Millisecond)
	before := c.Stats()
	c.Dropped(10, 14480, "m0/vm0/tun")
	after := c.Stats()
	if after.Cwnd >= before.Cwnd {
		t.Fatalf("cwnd did not shrink: %d -> %d", before.Cwnd, after.Cwnd)
	}
	if after.Lost != 14480 {
		t.Fatalf("lost = %d", after.Lost)
	}
	if after.LastDrop != "m0/vm0/tun" {
		t.Fatalf("drop location %s", after.LastDrop)
	}
	if after.Buffered < 14480 {
		t.Fatal("lost bytes not queued for retransmission")
	}
	// The retransmission must eventually be re-emitted.
	e.emitted = nil
	for i := 0; i < 50 && len(e.emitted) == 0; i++ {
		c.Pump(time.Millisecond)
	}
	if len(e.emitted) == 0 {
		t.Fatal("no retransmission emitted")
	}
}

func TestConnCwndFloor(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{MinCwnd: 1000, SendBufBytes: 1 << 20}, e, sinkWindow(1<<30))
	for i := 0; i < 50; i++ {
		c.Dropped(1, 5000, "x")
	}
	if st := c.Stats(); st.Cwnd < 1000 {
		t.Fatalf("cwnd %d below floor", st.Cwnd)
	}
}

func TestConnEmitterBackpressureReclaims(t *testing.T) {
	e := &collectEmitter{accept: 100} // source socket nearly full
	c := newConn(Config{InitCwnd: 1 << 20, SendBufBytes: 1 << 20}, e, sinkWindow(1<<30))
	c.Write(5000)
	c.Pump(time.Millisecond)
	st := c.Stats()
	if st.InFlight != 100 {
		t.Fatalf("inflight %d; want 100 (only what the socket accepted)", st.InFlight)
	}
	if st.Buffered != 4900 {
		t.Fatalf("buffered %d; want 4900 reclaimed", st.Buffered)
	}
}

func TestConnPacingLimitsBurst(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{InitCwnd: 8 << 20, MaxCwnd: 8 << 20, SendBufBytes: 8 << 20, MSS: 1448}, e, sinkWindow(1<<30))
	c.Write(8 << 20)
	c.Pump(time.Millisecond)
	var sent int64
	for _, b := range e.emitted {
		sent += b.Bytes
	}
	// From cold start the pace floor is 16 MSS per tick.
	if sent > 16*1448 {
		t.Fatalf("cold-start burst %d; want <= %d", sent, 16*1448)
	}
	// A same-tick re-pump must not grant fresh pace credit.
	e.emitted = nil
	c.Pump(0)
	for _, b := range e.emitted {
		sent += b.Bytes
	}
	if sent > 16*1448 {
		t.Fatalf("re-pump added credit: %d", sent)
	}
}

func TestConnPaceTracksDeliveryRate(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{InitCwnd: 8 << 20, MaxCwnd: 8 << 20, SendBufBytes: 8 << 20}, e, sinkWindow(1<<30))
	// Sustain deliveries so rateEst rises; pace should follow.
	var lastTickBytes int64
	for tick := 0; tick < 300; tick++ {
		c.Write(1 << 20)
		e.emitted = nil
		c.Pump(time.Millisecond)
		lastTickBytes = 0
		for _, b := range e.emitted {
			lastTickBytes += b.Bytes
			c.Delivered(b.Packets, b.Bytes)
		}
	}
	if lastTickBytes <= 16*1448 {
		t.Fatalf("pace never grew beyond the floor: %d/tick", lastTickBytes)
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.fill()
	if cfg.MSS != 1448 || cfg.Beta != 0.7 || cfg.SendBufBytes != 256<<10 ||
		cfg.MaxCwnd != 8<<20 || cfg.AIFactor != 8 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.InitCwnd != int64(10*cfg.MSS) {
		t.Fatalf("init cwnd %d", cfg.InitCwnd)
	}
}

func TestConnFlowIdentity(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{}, e, sinkWindow(1<<30))
	if c.Flow() != dataplane.FlowID("f") {
		t.Fatalf("flow %s", c.Flow())
	}
	c.Write(1000)
	c.Pump(time.Millisecond)
	if len(e.emitted) == 0 || e.emitted[0].Flow != "f" {
		t.Fatal("emitted batch lost its flow identity")
	}
	if e.emitted[0].FB == nil {
		t.Fatal("emitted batch must carry the conn as feedback")
	}
}

// TestDeferredFeedbackCanonicalOrder: a conn in deferred mode fed the same
// feedback events in two different arrival orders must land in identical
// state after FlushFeedback — the property the parallel lab's commit phase
// relies on.
func TestDeferredFeedbackCanonicalOrder(t *testing.T) {
	run := func(order []int) Stats {
		e := &collectEmitter{accept: -1}
		c := newConn(Config{}, e, sinkWindow(1<<30))
		c.Write(1 << 20)
		c.Pump(time.Millisecond)
		c.DeferFeedback()
		events := []func(){
			func() { c.Delivered(4, 4096) },
			func() { c.Dropped(1, 1448, "m0/vswitch") },
			func() { c.Delivered(2, 2048) },
			func() { c.Dropped(1, 1448, "m1/vnic") },
		}
		for _, i := range order {
			events[i]()
		}
		c.FlushFeedback()
		return c.Stats()
	}
	a := run([]int{0, 1, 2, 3})
	b := run([]int{3, 2, 1, 0})
	if a != b {
		t.Fatalf("deferred feedback is order-sensitive:\n a=%+v\n b=%+v", a, b)
	}
	if a.Delivered != 4096+2048 || a.Lost != 2*1448 {
		t.Fatalf("flush lost events: %+v", a)
	}
}

// TestDeferredFeedbackNotAppliedUntilFlush: queued events must not touch
// conn state mid-tick.
func TestDeferredFeedbackNotAppliedUntilFlush(t *testing.T) {
	e := &collectEmitter{accept: -1}
	c := newConn(Config{}, e, sinkWindow(1<<30))
	c.Write(1 << 20)
	c.Pump(time.Millisecond)
	before := c.Stats()
	c.DeferFeedback()
	c.Delivered(4, 4096)
	if got := c.Stats(); got.Delivered != before.Delivered || got.InFlight != before.InFlight {
		t.Fatalf("deferred Delivered applied early: %+v vs %+v", got, before)
	}
	c.FlushFeedback()
	if got := c.Stats(); got.Delivered != before.Delivered+4096 {
		t.Fatalf("flush did not apply: %+v", got)
	}
}
