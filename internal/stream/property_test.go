package stream

import (
	"testing"
	"testing/quick"
	"time"

	"perfsight/internal/dataplane"
)

// lossyPipe is an emitter that holds emitted bytes and later delivers or
// drops them according to a script.
type lossyPipe struct {
	conn     *Conn
	inflight []dataplane.Batch
}

func (p *lossyPipe) emit(b dataplane.Batch) int64 {
	p.inflight = append(p.inflight, b)
	return b.Bytes
}

// settle delivers or drops the oldest in-flight batch.
func (p *lossyPipe) settle(drop bool) {
	if len(p.inflight) == 0 {
		return
	}
	b := p.inflight[0]
	p.inflight = p.inflight[1:]
	if drop {
		p.conn.Dropped(b.Packets, b.Bytes, "pipe")
	} else {
		p.conn.Delivered(b.Packets, b.Bytes)
	}
}

func (p *lossyPipe) inflightBytes() int64 {
	var n int64
	for _, b := range p.inflight {
		n += b.Bytes
	}
	return n
}

// TestConnConservationProperty: for any sequence of writes, pumps and
// deliver/drop events, written == delivered + buffered + inflight, and the
// core gauges never go negative. Lost bytes re-enter the buffered pool, so
// they are not counted separately.
func TestConnConservationProperty(t *testing.T) {
	type op struct {
		Kind  uint8 // 0 write, 1 pump, 2 deliver, 3 drop
		Bytes uint16
	}
	f := func(ops []op) bool {
		pipe := &lossyPipe{}
		c := NewConn("f", Config{SendBufBytes: 1 << 20}, pipe.emit, sinkWindow(1<<30))
		pipe.conn = c
		var written int64
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				written += c.Write(int64(o.Bytes))
			case 1:
				c.Pump(time.Millisecond)
			case 2:
				pipe.settle(false)
			case 3:
				pipe.settle(true)
			}
			st := c.Stats()
			if st.InFlight < 0 || st.Buffered < 0 || st.Cwnd < 0 {
				return false
			}
			// The conn's inflight gauge must cover at least what the pipe
			// actually holds (feedback may lag, never lead).
			if st.InFlight != pipe.inflightBytes() {
				return false
			}
			if st.Delivered+st.Buffered+st.InFlight != written {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConnLiveLockFreedom: under heavy loss the conn keeps making progress
// (retransmissions eventually deliver everything).
func TestConnLiveLockFreedom(t *testing.T) {
	pipe := &lossyPipe{}
	c := NewConn("f", Config{SendBufBytes: 1 << 20}, pipe.emit, sinkWindow(1<<30))
	pipe.conn = c
	const payload = 512 << 10
	written := int64(0)
	for written < payload {
		written += c.Write(payload - written)
		c.Pump(time.Millisecond)
		pipe.settle(true) // everything dropped at first
	}
	// Now let the network heal; everything must drain within bounded time.
	for i := 0; i < 100000 && c.DeliveredBytes() < payload; i++ {
		c.Write(0)
		c.Pump(time.Millisecond)
		pipe.settle(false)
		pipe.settle(false)
	}
	if c.DeliveredBytes() != payload {
		t.Fatalf("delivered %d of %d after healing", c.DeliveredBytes(), payload)
	}
}
