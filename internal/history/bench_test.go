package history

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"perfsight/internal/core"
)

// benchRecord is a representative sweep record: kind plus the full
// counter set an agent returns for a stack element.
func benchRecord(eid core.ElementID, ts int64) core.Record {
	return core.Record{
		Timestamp: ts,
		Element:   eid,
		Attrs: []core.Attr{
			{ID: core.AttrKind, Value: float64(core.KindVSwitch)},
			{ID: core.AttrRxPackets, Value: float64(ts)},
			{ID: core.AttrRxBytes, Value: float64(ts) * 1448},
			{ID: core.AttrTxPackets, Value: float64(ts)},
			{ID: core.AttrTxBytes, Value: float64(ts) * 1448},
			{ID: core.AttrDropPackets, Value: 0},
			{ID: core.AttrQueueLen, Value: 3},
		},
	}
}

// TestAppendAllocBudget pins the steady-state allocation cost of storing
// one swept record against a checked-in budget: the rings are
// preallocated, so a warmed series must not allocate per append. CI fails
// when a change regresses past it (see make bench-history).
func TestAppendAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/append_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parse budget: %v", err)
	}
	s := New(Config{MaxPointsPerSeries: 64, DownsampleStep: 10 * time.Millisecond, Retention: time.Second})
	rec := benchRecord("m0/vswitch", 0)
	ts := int64(0)
	// Warm: allocate the element group, the attr series, and their rings,
	// and spin the rings past full so step-down folding is on the path.
	for i := 0; i < 200; i++ {
		ts += int64(time.Millisecond)
		rec.Timestamp = ts
		s.Append(testTenant, rec)
	}
	got := testing.AllocsPerRun(500, func() {
		ts += int64(time.Millisecond)
		rec.Timestamp = ts
		for i := range rec.Attrs[1:] {
			rec.Attrs[i+1].Value++
		}
		s.Append(testTenant, rec)
	})
	t.Logf("steady-state Append allocs/op = %.2f (budget %s)", got, strings.TrimSpace(string(raw)))
	if got > budget {
		t.Fatalf("Append allocs/op = %.2f exceeds budget %.2f (testdata/append_alloc_budget.txt)", got, budget)
	}
}

// BenchmarkHistoryAppend measures the flight recorder's per-record write
// cost at steady state (rings full, step-down active).
func BenchmarkHistoryAppend(b *testing.B) {
	s := New(Config{MaxPointsPerSeries: 512, DownsampleStep: 10 * time.Millisecond, Retention: time.Minute})
	rec := benchRecord("m0/vswitch", 0)
	ts := int64(0)
	for i := 0; i < 1024; i++ {
		ts += int64(time.Millisecond)
		rec.Timestamp = ts
		s.Append(testTenant, rec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += int64(time.Millisecond)
		rec.Timestamp = ts
		s.Append(testTenant, rec)
	}
}

// BenchmarkHistoryInterval measures synthesizing one diagnosis interval
// from stored history — the read path /diagnose leans on.
func BenchmarkHistoryInterval(b *testing.B) {
	s := New(Config{})
	for i := int64(1); i <= 512; i++ {
		s.Append(testTenant, benchRecord("m0/vswitch", i*int64(time.Second)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Interval(testTenant, "m0/vswitch", 3*time.Second, 0); !ok {
			b.Fatal("no interval")
		}
	}
}

// BenchmarkHistoryDiagnoseStack measures a full Algorithm 1 run from
// history over a 16-element tenant.
func BenchmarkHistoryDiagnoseStack(b *testing.B) {
	s := New(Config{})
	for e := 0; e < 16; e++ {
		eid := core.ElementID("m0/el" + strconv.Itoa(e))
		for i := int64(1); i <= 64; i++ {
			s.Append(testTenant, benchRecord(eid, i*int64(time.Second)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.DiagnoseStack(testTenant, 3*time.Second, 0); err != nil {
			b.Fatal(err)
		}
	}
}
