package history

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
)

// Server exposes the flight recorder over HTTP on the telemetry mux:
//
//	/history?tenant=&element=&attr=&from=&to=&limit=
//	    raw stored points of one series; without attr, the element's
//	    attrs; without element, the tenant's elements.
//	/events?since=SEQ&limit=
//	    the journal's diagnosis events after SEQ, oldest first.
//	/events?since=SEQ&follow=1
//	    the same backlog, then an NDJSON stream of events as they land
//	    (one JSON event per line, flushed per event) until the client
//	    disconnects — the push mechanism behind `perfsight incidents
//	    --follow`, backed by Journal.Subscribe's drop-oldest fan-out.
//	/diagnose?tenant=&at=&window=
//	    run Algorithm 1 (and Algorithm 2 when the tenant has chains)
//	    from stored history over the window ending at `at`, without
//	    issuing any agent query.
//	/flows?tenant=&element=&at=&k=
//	    the element's per-flow traffic ranking, heaviest first: the
//	    flow_sketch summary (heavy hitters + ε·N error bound) when the
//	    element reports sketch statistics, legacy rule_* enumeration
//	    otherwise. Without element, every recorded element that has flow
//	    statistics.
//
// Timestamps (`at`, `from`, `to`) accept integer record-clock
// nanoseconds or RFC 3339; `at` may be omitted for "newest". `window`
// is a Go duration (default 3s).
type Server struct {
	Store   *Store
	Journal *Journal
	// Net resolves a tenant's virtual network for chain diagnosis; nil
	// limits /diagnose to Algorithm 1.
	Net func(core.TenantID) *core.VirtualNet
	// DefaultTenant is used when a request omits tenant=.
	DefaultTenant core.TenantID
}

// Register attaches the endpoints to mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/history", s.handleHistory)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/diagnose", s.handleDiagnose)
	mux.HandleFunc("/flows", s.handleFlows)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseTS parses a timestamp parameter: integer nanoseconds or RFC 3339.
// Empty returns def.
func parseTS(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t.UnixNano(), nil
	}
	return 0, fmt.Errorf("bad timestamp %q (want ns int or RFC3339)", s)
}

func (s *Server) tenant(r *http.Request) core.TenantID {
	if t := r.URL.Query().Get("tenant"); t != "" {
		return core.TenantID(t)
	}
	return s.DefaultTenant
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tid := s.tenant(r)
	elem := core.ElementID(q.Get("element"))
	attr := q.Get("attr")
	switch {
	case elem == "":
		writeJSON(w, map[string]any{"tenant": tid, "elements": s.Store.Elements(tid)})
	case attr == "":
		writeJSON(w, map[string]any{"tenant": tid, "element": elem, "attrs": s.Store.Attrs(tid, elem)})
	default:
		from, err := parseTS(q.Get("from"), 0)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "from: %v", err)
			return
		}
		to, err := parseTS(q.Get("to"), 1<<62)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "to: %v", err)
			return
		}
		limit, _ := strconv.Atoi(q.Get("limit"))
		pts := s.Store.Series(tid, elem, attr, from, to, limit)
		writeJSON(w, map[string]any{
			"tenant": tid, "element": elem, "attr": attr, "points": pts,
		})
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.Journal == nil {
		httpErr(w, http.StatusNotFound, "event journal disabled")
		return
	}
	q := r.URL.Query()
	since, err := strconv.ParseInt(q.Get("since"), 10, 64)
	if err != nil && q.Get("since") != "" {
		httpErr(w, http.StatusBadRequest, "bad since %q", q.Get("since"))
		return
	}
	if f := q.Get("follow"); f != "" && f != "0" && f != "false" {
		s.followEvents(w, r, since)
		return
	}
	limit, _ := strconv.Atoi(q.Get("limit"))
	evs := s.Journal.Since(since, limit)
	_, last, dropped := s.Journal.Stats()
	next := since
	if n := len(evs); n > 0 {
		next = evs[n-1].Seq
	}
	writeJSON(w, map[string]any{
		"events": evs, "next": next, "last_seq": last, "dropped": dropped,
	})
}

// followEvents streams the journal as NDJSON: the backlog after since,
// then live events from a subscription until the client goes away. The
// subscription's bounded buffer means a stalled client skips events
// (drop-oldest) rather than back-pressuring the pipeline; seq numbers
// let the client notice the gap.
func (s *Server) followEvents(w http.ResponseWriter, r *http.Request, since int64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpErr(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	// Subscribe before draining the backlog so no event can fall into
	// the gap; the seq filter below deduplicates the overlap.
	sub := s.Journal.Subscribe(256)
	defer sub.Close()
	last := since
	for _, ev := range s.Journal.Since(since, 0) {
		if enc.Encode(ev) != nil {
			return
		}
		last = ev.Seq
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if ev.Seq <= last {
				continue // already sent in the backlog
			}
			if enc.Encode(ev) != nil {
				return
			}
			last = ev.Seq
			fl.Flush()
		}
	}
}

// handleFlows serves per-flow rankings reconstructed from stored records.
func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tid := s.tenant(r)
	asOf, err := parseTS(q.Get("at"), 0)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "at: %v", err)
		return
	}
	k, _ := strconv.Atoi(q.Get("k"))
	ids := s.Store.Elements(tid)
	if elem := q.Get("element"); elem != "" {
		ids = []core.ElementID{core.ElementID(elem)}
	}
	var reports []*diagnosis.FlowReport
	for _, id := range ids {
		rec, ok := s.Store.At(tid, id, asOf)
		if !ok {
			continue
		}
		if fr, ok := diagnosis.TopFlows(rec, k); ok {
			reports = append(reports, fr)
		}
	}
	if len(reports) == 0 {
		httpErr(w, http.StatusNotFound, "tenant %q has no elements with flow statistics", tid)
		return
	}
	writeJSON(w, map[string]any{"tenant": tid, "flows": reports})
}

// diagnoseResponse is the /diagnose payload.
type diagnoseResponse struct {
	Tenant   core.TenantID               `json:"tenant"`
	AsOf     int64                       `json:"as_of"`
	WindowNS int64                       `json:"window_ns"`
	Stack    *diagnosis.ContentionReport `json:"stack,omitempty"`
	StackErr string                      `json:"stack_error,omitempty"`
	Chain    *diagnosis.RootCauseReport  `json:"chain,omitempty"`
	ChainErr string                      `json:"chain_error,omitempty"`
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tid := s.tenant(r)
	asOf, err := parseTS(q.Get("at"), 0)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "at: %v", err)
		return
	}
	window := 3 * time.Second
	if ws := q.Get("window"); ws != "" {
		window, err = time.ParseDuration(ws)
		if err != nil || window <= 0 {
			httpErr(w, http.StatusBadRequest, "bad window %q", ws)
			return
		}
	}
	if asOf <= 0 {
		newest, ok := s.Store.NewestTS(tid)
		if !ok {
			httpErr(w, http.StatusNotFound, "no history for tenant %q", tid)
			return
		}
		asOf = newest
	}
	resp := diagnoseResponse{Tenant: tid, AsOf: asOf, WindowNS: int64(window)}
	if rep, err := s.Store.DiagnoseStack(tid, window, asOf); err != nil {
		resp.StackErr = err.Error()
	} else {
		resp.Stack = rep
	}
	var net *core.VirtualNet
	if s.Net != nil {
		net = s.Net(tid)
	}
	if net != nil && len(net.Chains) > 0 {
		if rep, err := s.Store.DiagnoseChain(tid, window, asOf, net); err != nil {
			resp.ChainErr = err.Error()
		} else {
			resp.Chain = rep
		}
	}
	if resp.Stack == nil && resp.Chain == nil {
		httpErr(w, http.StatusNotFound, "tenant %q has no diagnosable history in window (stack: %s)", tid, resp.StackErr)
		return
	}
	writeJSON(w, resp)
}
