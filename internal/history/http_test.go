package history

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
)

// httpSetup populates a store with a clean-then-dropping vswitch plus a
// pNIC, and serves it.
func httpSetup(t *testing.T) (*httptest.Server, *Journal) {
	t.Helper()
	s := New(Config{})
	for i := int64(1); i <= 6; i++ {
		drops := 0.0
		if i >= 4 {
			drops = float64(i-3) * 500
		}
		s.Append(testTenant, stackRec("m0/vswitch", i*1e9, drops))
		s.Append(testTenant, core.Record{Timestamp: i * 1e9, Element: "m0/pnic",
			Attrs: []core.Attr{
				{ID: core.AttrKind, Value: float64(core.KindPNIC)},
				{ID: core.AttrRxBytes, Value: float64(i) * 1e6},
			}})
	}
	j := NewJournal(8)
	j.Append(Event{TS: 4e9, Tenant: testTenant, Element: "m0/vswitch", DropRate: 500, Summary: "test spike"})
	mux := http.NewServeMux()
	(&Server{Store: s, Journal: j, DefaultTenant: testTenant}).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, j
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHistoryEndpoint(t *testing.T) {
	ts, _ := httpSetup(t)

	var elems struct {
		Elements []core.ElementID `json:"elements"`
	}
	if code := get(t, ts.URL+"/history", &elems); code != 200 {
		t.Fatalf("/history status %d", code)
	}
	if len(elems.Elements) != 2 || elems.Elements[0] != "m0/pnic" {
		t.Fatalf("elements = %v", elems.Elements)
	}

	var attrs struct {
		Attrs []string `json:"attrs"`
	}
	get(t, ts.URL+"/history?element=m0/vswitch", &attrs)
	if len(attrs.Attrs) != 3 {
		t.Fatalf("attrs = %v, want kind/rx_packets/drop_packets", attrs.Attrs)
	}

	var pts struct {
		Points []Point `json:"points"`
	}
	get(t, ts.URL+"/history?element=m0/vswitch&attr=drop_packets&from=2000000000&to=5000000000", &pts)
	if len(pts.Points) != 4 || pts.Points[0].TS != 2e9 || pts.Points[3].TS != 5e9 {
		t.Fatalf("window query points = %+v", pts.Points)
	}

	if code := get(t, ts.URL+"/history?element=m0/vswitch&attr=drop_packets&from=bogus", nil); code != 400 {
		t.Fatalf("bad from: status %d, want 400", code)
	}
}

func TestEventsEndpoint(t *testing.T) {
	ts, j := httpSetup(t)
	j.Append(Event{TS: 5e9, Tenant: testTenant, Element: "m0/vswitch", DropRate: 1000, Summary: "again"})

	var resp struct {
		Events  []Event `json:"events"`
		Next    int64   `json:"next"`
		LastSeq int64   `json:"last_seq"`
	}
	get(t, ts.URL+"/events", &resp)
	if len(resp.Events) != 2 || resp.Next != 2 || resp.LastSeq != 2 {
		t.Fatalf("events = %d next = %d last = %d", len(resp.Events), resp.Next, resp.LastSeq)
	}
	resp.Events = nil
	get(t, ts.URL+"/events?since=1", &resp)
	if len(resp.Events) != 1 || resp.Events[0].Summary != "again" {
		t.Fatalf("since=1 events = %+v", resp.Events)
	}
}

func TestEventsFollowStreams(t *testing.T) {
	ts, j := httpSetup(t)

	resp, err := http.Get(ts.URL + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := make(chan Event, 8)
	go func() {
		dec := json.NewDecoder(resp.Body)
		for {
			var ev Event
			if dec.Decode(&ev) != nil {
				close(lines)
				return
			}
			lines <- ev
		}
	}()
	recv := func() Event {
		t.Helper()
		select {
		case ev := <-lines:
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for streamed event")
			return Event{}
		}
	}
	// Backlog first (the seeded spike), then live appends as they land.
	if ev := recv(); ev.Seq != 1 || ev.Summary != "test spike" {
		t.Fatalf("backlog event = %+v", ev)
	}
	j.Append(Event{TS: 7e9, Tenant: testTenant, Element: "m0/vswitch", Summary: "live one"})
	if ev := recv(); ev.Seq != 2 || ev.Summary != "live one" {
		t.Fatalf("live event = %+v", ev)
	}
	// Disconnecting tears the subscription down.
	resp.Body.Close()
	deadline := time.After(5 * time.Second)
	for j.SubscriberCount() != 0 {
		select {
		case <-deadline:
			t.Fatalf("subscription leaked after disconnect: %d", j.SubscriberCount())
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestDiagnoseEndpoint(t *testing.T) {
	ts, _ := httpSetup(t)

	var resp struct {
		AsOf  int64                       `json:"as_of"`
		Stack *diagnosis.ContentionReport `json:"stack"`
	}
	// Newest history (asOf omitted): drops are climbing, Algorithm 1 runs.
	if code := get(t, ts.URL+"/diagnose?window=3s", &resp); code != 200 {
		t.Fatalf("/diagnose status %d", code)
	}
	if resp.AsOf != 6e9 {
		t.Fatalf("as_of = %d, want newest 6e9", resp.AsOf)
	}
	if resp.Stack == nil || len(resp.Stack.Ranked) == 0 {
		t.Fatal("no stack report from history")
	}
	if resp.Stack.Ranked[0].Element != "m0/vswitch" {
		t.Fatalf("top drop element = %s", resp.Stack.Ranked[0].Element)
	}

	// The same verdict must come back for an explicit past instant.
	var at struct {
		Stack *diagnosis.ContentionReport `json:"stack"`
	}
	get(t, ts.URL+"/diagnose?at=6000000000&window=3s", &at)
	if at.Stack == nil || at.Stack.TopLocation != resp.Stack.TopLocation {
		t.Fatalf("explicit at= verdict differs: %+v vs %+v", at.Stack, resp.Stack)
	}

	if code := get(t, ts.URL+"/diagnose?tenant=ghost", nil); code != 404 {
		t.Fatalf("unknown tenant: status %d, want 404", code)
	}
	if code := get(t, ts.URL+"/diagnose?window=banana", nil); code != 400 {
		t.Fatalf("bad window: status %d, want 400", code)
	}
}

// TestDiagnoseJSONRoundTrip proves the enum JSON forms survive a
// marshal/unmarshal cycle through the wire structs the CLI decodes.
func TestDiagnoseJSONRoundTrip(t *testing.T) {
	rep := &diagnosis.ContentionReport{
		Scope:       diagnosis.ScopeContention,
		TopLocation: diagnosis.LocVSwitch,
		Inferred:    diagnosis.ResourceMemoryBandwidth,
		Ranked: []diagnosis.ElementLoss{
			{Element: "m0/vswitch", Kind: core.KindVSwitch, Loss: 1500},
		},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back diagnosis.ContentionReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scope != rep.Scope || back.TopLocation != rep.TopLocation {
		t.Fatalf("enums did not round-trip: %+v", back)
	}
	if back.Ranked[0].Kind != core.KindVSwitch {
		t.Fatalf("element kind did not round-trip: %+v", back.Ranked[0])
	}
}
