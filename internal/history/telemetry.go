package history

import (
	"perfsight/internal/telemetry"
)

// storeMetrics is the store's self-telemetry block, resolved once at
// EnableTelemetry time and read through one atomic pointer load on the
// append path (the repo-wide opt-in gate idiom).
type storeMetrics struct {
	appends   *telemetry.Counter
	evictions *telemetry.Counter
}

// EnableTelemetry registers the flight recorder's occupancy gauges and
// append/eviction counters in reg. Occupancy and series counts are pulled
// at scrape time; the counters are updated inline on append.
func (s *Store) EnableTelemetry(reg *telemetry.Registry) {
	m := &storeMetrics{
		appends: reg.Counter("perfsight_history_points_appended_total",
			"points appended to the history store"),
		evictions: reg.Counter("perfsight_history_points_evicted_total",
			"points dropped by downsampling folds, ring overflow, or retention"),
	}
	reg.GaugeFunc("perfsight_history_resident_points",
		"points currently resident across all history rings",
		func() float64 { return float64(s.resident.Load()) })
	reg.GaugeFunc("perfsight_history_series",
		"live (tenant, element, attr) series in the history store",
		func() float64 { return float64(s.series.Load()) })
	reg.GaugeFunc("perfsight_history_elements",
		"live (tenant, element) groups in the history store",
		func() float64 { return float64(s.elements.Load()) })
	s.tel.Store(m)
}

// monitorMetrics counts the background collection loop's sweeps.
type monitorMetrics struct {
	sweeps        *telemetry.Counter
	sweepErrors   *telemetry.Counter
	records       *telemetry.Counter
	sweepsSkipped *telemetry.Counter
}

// EnableTelemetry registers monitor sweep counters in reg. Call before
// Run.
func (m *Monitor) EnableTelemetry(reg *telemetry.Registry) {
	m.tel = &monitorMetrics{
		sweeps: reg.Counter("perfsight_monitor_sweeps_total",
			"background monitoring sweeps completed"),
		sweepErrors: reg.Counter("perfsight_monitor_sweep_errors_total",
			"monitoring sweeps with at least one per-machine failure"),
		records: reg.Counter("perfsight_monitor_records_total",
			"records collected by monitoring sweeps"),
		sweepsSkipped: reg.Counter("perfsight_monitor_sweeps_skipped_total",
			"sweep ticks skipped because the previous sweep overran the interval"),
	}
}

// EnableTelemetry registers journal occupancy and event counters in reg.
func (j *Journal) EnableTelemetry(reg *telemetry.Registry) {
	m := &journalMetrics{
		events: reg.Counter("perfsight_history_events_total",
			"diagnosis events appended to the journal"),
		dropped: reg.Counter("perfsight_history_events_dropped_total",
			"journal events overwritten before being read"),
		subDropped: reg.Counter("perfsight_history_sub_notifications_dropped_total",
			"journal events dropped from slow subscriber buffers (drop-oldest)"),
	}
	reg.GaugeFunc("perfsight_history_journal_events",
		"events currently held in the bounded journal",
		func() float64 {
			j.mu.Lock()
			defer j.mu.Unlock()
			return float64(j.n)
		})
	reg.GaugeFunc("perfsight_history_journal_subscribers",
		"live journal subscriptions (event fan-out consumers)",
		func() float64 { return float64(j.SubscriberCount()) })
	j.tel.Store(m)
}

// journalMetrics is the journal's telemetry block.
type journalMetrics struct {
	events     *telemetry.Counter
	dropped    *telemetry.Counter
	subDropped *telemetry.Counter
}
