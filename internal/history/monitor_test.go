package history

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// fakeAgent is an AgentClient serving scripted per-element drop counters
// with a shared advancing clock, so Monitor sweeps see fresh timestamps.
type fakeAgent struct {
	clock *atomic.Int64 // record-clock ns, advanced by the test
	elems []core.ElementID
	drops func(eid core.ElementID, now int64) float64
	fail  atomic.Bool
	calls atomic.Int64
}

func (f *fakeAgent) Query(q wire.Query) ([]core.Record, error) {
	f.calls.Add(1)
	if f.fail.Load() {
		return nil, errors.New("fake: agent down")
	}
	now := f.clock.Load()
	var out []core.Record
	for _, eid := range f.elems {
		out = append(out, core.Record{
			Timestamp: now,
			Element:   eid,
			Attrs: []core.Attr{
				{ID: core.AttrKind, Value: float64(core.KindVSwitch)},
				{ID: core.AttrDropPackets, Value: f.drops(eid, now)},
			},
		})
	}
	return out, nil
}

func (f *fakeAgent) ListElements() ([]wire.ElementMeta, error) { return nil, nil }
func (f *fakeAgent) Ping() (time.Duration, error)              { return time.Microsecond, nil }
func (f *fakeAgent) Close() error                              { return nil }

// monitorSetup wires a controller over two fake machines into a monitor.
func monitorSetup(drops func(core.ElementID, int64) float64) (*Monitor, *atomic.Int64, []*fakeAgent) {
	topo := core.NewTopology()
	net := topo.Net(testTenant)
	ctl := controller.New(topo)
	ctl.Sweep = controller.SweepConfig{}
	var clock atomic.Int64
	var fakes []*fakeAgent
	for _, m := range []core.MachineID{"m0", "m1"} {
		eid := core.ElementID(string(m) + "/vswitch")
		net.Add(eid, core.ElementInfo{Machine: m, Kind: core.KindVSwitch})
		f := &fakeAgent{clock: &clock, elems: []core.ElementID{eid}, drops: drops}
		ctl.RegisterAgent(m, f)
		fakes = append(fakes, f)
	}
	store := New(Config{})
	return NewMonitor(ctl, store, MonitorConfig{Interval: time.Hour}), &clock, fakes
}

func TestMonitorSweepAppendsAndHooks(t *testing.T) {
	mon, clock, _ := monitorSetup(func(_ core.ElementID, now int64) float64 { return float64(now) })
	var hooked atomic.Int64
	mon.AfterSweep = func(tid core.TenantID, recs map[core.ElementID]core.Record, err error) {
		if tid != testTenant {
			t.Errorf("AfterSweep tenant = %s", tid)
		}
		if err != nil {
			t.Errorf("AfterSweep err = %v", err)
		}
		hooked.Add(int64(len(recs)))
	}

	for i := int64(1); i <= 3; i++ {
		clock.Store(i * 1e9)
		if err := mon.Sweep(context.Background()); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	if hooked.Load() != 6 {
		t.Fatalf("AfterSweep saw %d records, want 6", hooked.Load())
	}
	st := mon.Store.Stats()
	if st.Elements != 2 {
		t.Fatalf("store Elements = %d, want 2", st.Elements)
	}
	pts := mon.Store.Series(testTenant, "m0/vswitch", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0)
	if len(pts) != 3 {
		t.Fatalf("m0/vswitch has %d points, want 3", len(pts))
	}
}

func TestMonitorSweepPartialFailure(t *testing.T) {
	mon, clock, fakes := monitorSetup(func(_ core.ElementID, now int64) float64 { return float64(now) })
	clock.Store(1e9)
	fakes[1].fail.Store(true)
	err := mon.Sweep(context.Background())
	if err == nil {
		t.Fatal("sweep with a dead machine returned nil error")
	}
	// The healthy machine's records still landed.
	if pts := mon.Store.Series(testTenant, "m0/vswitch", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0); len(pts) != 1 {
		t.Fatalf("healthy machine stored %d points, want 1", len(pts))
	}
	if pts := mon.Store.Series(testTenant, "m1/vswitch", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0); len(pts) != 0 {
		t.Fatalf("dead machine stored %d points, want 0", len(pts))
	}
}

func TestMonitorRunStopsOnCancel(t *testing.T) {
	mon, clock, _ := monitorSetup(func(_ core.ElementID, now int64) float64 { return 0 })
	clock.Store(1e9)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- mon.Run(ctx) }()
	// The immediate first sweep lands before any tick.
	deadline := time.After(2 * time.Second)
	for mon.Store.Stats().Appends == 0 {
		select {
		case <-deadline:
			t.Fatal("Run never performed its first sweep")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestJournalBoundedWithSequence(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Append(Event{Element: core.ElementID("e")})
	}
	n, last, dropped := j.Stats()
	if n != 4 || last != 6 || dropped != 2 {
		t.Fatalf("Stats = (%d, %d, %d), want (4, 6, 2)", n, last, dropped)
	}
	evs := j.Since(0, 0)
	if len(evs) != 4 || evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("Since(0) = %+v, want seqs 3..6", evs)
	}
	if evs := j.Since(5, 0); len(evs) != 1 || evs[0].Seq != 6 {
		t.Fatalf("Since(5) = %+v, want just seq 6", evs)
	}
	if evs := j.Since(0, 2); len(evs) != 2 || evs[1].Seq != 4 {
		t.Fatalf("Since(0, max 2) = %+v, want seqs 3,4", evs)
	}
}

func TestWatcherEmitsOnSpikeWithCooldown(t *testing.T) {
	mon, clock, _ := monitorSetup(func(eid core.ElementID, now int64) float64 {
		if eid == "m0/vswitch" && now >= 3e9 {
			// 1000 drops per 1s sweep gap from t=3s on.
			return float64(now-2e9) / 1e6
		}
		return 0
	})
	journal := NewJournal(16)
	w := NewWatcher(mon.Store, journal, WatcherConfig{
		DropRateThreshold: 100,
		Window:            2 * time.Second,
		Cooldown:          5 * time.Second,
	})
	mon.AfterSweep = w.AfterSweep

	for i := int64(1); i <= 6; i++ {
		clock.Store(i * 1e9)
		mon.Sweep(context.Background())
	}
	evs := journal.Since(0, 0)
	if len(evs) != 1 {
		t.Fatalf("watcher emitted %d events, want 1 (cooldown suppresses the rest)", len(evs))
	}
	ev := evs[0]
	if ev.Element != "m0/vswitch" || ev.Tenant != testTenant {
		t.Fatalf("event blames %s/%s", ev.Tenant, ev.Element)
	}
	if ev.DropRate < 900 || ev.DropRate > 1100 {
		t.Fatalf("event drop rate = %v, want ~1000 pps", ev.DropRate)
	}
	if ev.Summary == "" {
		t.Fatal("event has no summary")
	}
	if ev.Stack == nil {
		t.Fatalf("event carries no stack evidence (summary %q)", ev.Summary)
	}
	if len(ev.Stack.Ranked) == 0 || ev.Stack.Ranked[0].Element != "m0/vswitch" {
		t.Fatalf("stack evidence does not rank the dropping element first: %+v", ev.Stack.Ranked)
	}

	// Past the cooldown, the still-spiking element fires again.
	clock.Store(9e9)
	mon.Sweep(context.Background())
	if evs := journal.Since(0, 0); len(evs) != 2 {
		t.Fatalf("post-cooldown sweep: %d events, want 2", len(evs))
	}
}
