package history

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// fakeAgent is an AgentClient serving scripted per-element drop counters
// with a shared advancing clock, so Monitor sweeps see fresh timestamps.
type fakeAgent struct {
	clock *atomic.Int64 // record-clock ns, advanced by the test
	elems []core.ElementID
	drops func(eid core.ElementID, now int64) float64
	fail  atomic.Bool
	calls atomic.Int64
	delay time.Duration // per-query stall, for slow-sweep tests

	onQuery func() // observes each query's start, for timing tests
}

func (f *fakeAgent) Query(q wire.Query) ([]core.Record, error) {
	f.calls.Add(1)
	if f.onQuery != nil {
		f.onQuery()
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.fail.Load() {
		return nil, errors.New("fake: agent down")
	}
	now := f.clock.Load()
	var out []core.Record
	for _, eid := range f.elems {
		out = append(out, core.Record{
			Timestamp: now,
			Element:   eid,
			Attrs: []core.Attr{
				{ID: core.AttrKind, Value: float64(core.KindVSwitch)},
				{ID: core.AttrDropPackets, Value: f.drops(eid, now)},
			},
		})
	}
	return out, nil
}

func (f *fakeAgent) ListElements() ([]wire.ElementMeta, error) { return nil, nil }
func (f *fakeAgent) Ping() (time.Duration, error)              { return time.Microsecond, nil }
func (f *fakeAgent) Close() error                              { return nil }

// monitorSetup wires a controller over two fake machines into a monitor.
func monitorSetup(drops func(core.ElementID, int64) float64) (*Monitor, *atomic.Int64, []*fakeAgent) {
	topo := core.NewTopology()
	net := topo.Net(testTenant)
	ctl := controller.New(topo)
	ctl.Sweep = controller.SweepConfig{}
	var clock atomic.Int64
	var fakes []*fakeAgent
	for _, m := range []core.MachineID{"m0", "m1"} {
		eid := core.ElementID(string(m) + "/vswitch")
		net.Add(eid, core.ElementInfo{Machine: m, Kind: core.KindVSwitch})
		f := &fakeAgent{clock: &clock, elems: []core.ElementID{eid}, drops: drops}
		ctl.RegisterAgent(m, f)
		fakes = append(fakes, f)
	}
	store := New(Config{})
	return NewMonitor(ctl, store, MonitorConfig{Interval: time.Hour}), &clock, fakes
}

func TestMonitorSweepAppendsAndHooks(t *testing.T) {
	mon, clock, _ := monitorSetup(func(_ core.ElementID, now int64) float64 { return float64(now) })
	var hooked atomic.Int64
	mon.AfterSweep = func(tid core.TenantID, recs map[core.ElementID]core.Record, err error) {
		if tid != testTenant {
			t.Errorf("AfterSweep tenant = %s", tid)
		}
		if err != nil {
			t.Errorf("AfterSweep err = %v", err)
		}
		hooked.Add(int64(len(recs)))
	}

	for i := int64(1); i <= 3; i++ {
		clock.Store(i * 1e9)
		if err := mon.Sweep(context.Background()); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	if hooked.Load() != 6 {
		t.Fatalf("AfterSweep saw %d records, want 6", hooked.Load())
	}
	st := mon.Store.Stats()
	if st.Elements != 2 {
		t.Fatalf("store Elements = %d, want 2", st.Elements)
	}
	pts := mon.Store.Series(testTenant, "m0/vswitch", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0)
	if len(pts) != 3 {
		t.Fatalf("m0/vswitch has %d points, want 3", len(pts))
	}
}

func TestMonitorSweepPartialFailure(t *testing.T) {
	mon, clock, fakes := monitorSetup(func(_ core.ElementID, now int64) float64 { return float64(now) })
	clock.Store(1e9)
	fakes[1].fail.Store(true)
	err := mon.Sweep(context.Background())
	if err == nil {
		t.Fatal("sweep with a dead machine returned nil error")
	}
	// The healthy machine's records still landed.
	if pts := mon.Store.Series(testTenant, "m0/vswitch", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0); len(pts) != 1 {
		t.Fatalf("healthy machine stored %d points, want 1", len(pts))
	}
	if pts := mon.Store.Series(testTenant, "m1/vswitch", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0); len(pts) != 0 {
		t.Fatalf("dead machine stored %d points, want 0", len(pts))
	}
}

func TestMonitorRunStopsOnCancel(t *testing.T) {
	mon, clock, _ := monitorSetup(func(_ core.ElementID, now int64) float64 { return 0 })
	clock.Store(1e9)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- mon.Run(ctx) }()
	// The immediate first sweep lands before any tick.
	deadline := time.After(2 * time.Second)
	for mon.Store.Stats().Appends == 0 {
		select {
		case <-deadline:
			t.Fatal("Run never performed its first sweep")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

// A sweep that outlasts the interval must not trigger an immediate
// back-to-back re-sweep off the ticker's buffered tick: pending ticks
// are skipped and counted, and the next sweep waits for a fresh tick.
func TestMonitorSlowSweepSkipsNotOverlaps(t *testing.T) {
	mon, clock, fakes := monitorSetup(func(_ core.ElementID, now int64) float64 { return float64(now) })
	clock.Store(1e9)
	const interval = 100 * time.Millisecond
	mon.Cfg.Interval = interval
	for _, f := range fakes {
		f.delay = 240 * time.Millisecond // every sweep overruns ~2.4 intervals
	}

	var mu sync.Mutex
	var starts, ends []time.Time
	fakes[0].onQuery = func() {
		mu.Lock()
		starts = append(starts, time.Now())
		mu.Unlock()
	}
	mon.AfterSweep = func(core.TenantID, map[core.ElementID]core.Record, error) {
		mu.Lock()
		ends = append(ends, time.Now())
		mu.Unlock()
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- mon.Run(ctx) }()
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(ends)
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("monitor never completed 3 sweeps")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	cancel()
	<-done

	if got := mon.SkippedSweeps(); got == 0 {
		t.Fatal("overrunning sweeps skipped no ticks")
	}
	// Between one sweep's end and the next sweep's start there must be
	// real idle time (waiting for a fresh tick). The pre-fix loop takes
	// the buffered tick the instant Sweep returns, so this gap collapses
	// to ~0.
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(starts) && i < len(ends)+1; i++ {
		gap := starts[i].Sub(ends[i-1])
		if gap < interval/10 {
			t.Fatalf("sweep %d started %v after sweep %d ended — back-to-back overlap, want >= %v idle",
				i, gap, i-1, interval/10)
		}
	}
}

// With Skip set (the push-ingest demotion hook), the sweeper excludes
// elements on streaming machines and never queries their agents.
func TestMonitorSkipStreamingMachines(t *testing.T) {
	mon, clock, fakes := monitorSetup(func(_ core.ElementID, now int64) float64 { return float64(now) })
	clock.Store(1e9)
	mon.Skip = func(m core.MachineID) bool { return m == "m1" }
	if err := mon.Sweep(context.Background()); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if pts := mon.Store.Series(testTenant, "m0/vswitch", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0); len(pts) != 1 {
		t.Fatalf("pull machine stored %d points, want 1", len(pts))
	}
	if pts := mon.Store.Series(testTenant, "m1/vswitch", core.AttrName(core.AttrDropPackets), 0, 1<<62, 0); len(pts) != 0 {
		t.Fatalf("streaming machine stored %d points, want 0 (covered by push ingest)", len(pts))
	}
	if got := fakes[1].calls.Load(); got != 0 {
		t.Fatalf("streaming machine's agent was queried %d times by the fallback sweeper", got)
	}
}

func TestJournalBoundedWithSequence(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Append(Event{Element: core.ElementID("e")})
	}
	n, last, dropped := j.Stats()
	if n != 4 || last != 6 || dropped != 2 {
		t.Fatalf("Stats = (%d, %d, %d), want (4, 6, 2)", n, last, dropped)
	}
	evs := j.Since(0, 0)
	if len(evs) != 4 || evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("Since(0) = %+v, want seqs 3..6", evs)
	}
	if evs := j.Since(5, 0); len(evs) != 1 || evs[0].Seq != 6 {
		t.Fatalf("Since(5) = %+v, want just seq 6", evs)
	}
	if evs := j.Since(0, 2); len(evs) != 2 || evs[1].Seq != 4 {
		t.Fatalf("Since(0, max 2) = %+v, want seqs 3,4", evs)
	}
}

// Drop-spike detection itself now lives in internal/anomaly (the
// pipeline's first registered detector); see anomaly's pipeline tests
// for the spike/cooldown behavior that used to be tested here.

func TestJournalSubscribeFanOut(t *testing.T) {
	j := NewJournal(16)
	sub := j.Subscribe(2)
	defer sub.Close()
	if j.SubscriberCount() != 1 {
		t.Fatalf("SubscriberCount = %d, want 1", j.SubscriberCount())
	}
	j.Append(Event{Summary: "a"})
	j.Append(Event{Summary: "b"})
	// Buffer full: the third append drops the oldest pending event.
	j.Append(Event{Summary: "c"})
	if got := sub.Dropped(); got != 1 {
		t.Fatalf("sub.Dropped = %d, want 1", got)
	}
	if ev := <-sub.C(); ev.Summary != "b" || ev.Seq != 2 {
		t.Fatalf("first received = %+v, want summary b seq 2 (a dropped)", ev)
	}
	if ev := <-sub.C(); ev.Summary != "c" {
		t.Fatalf("second received = %+v, want summary c", ev)
	}
	sub.Close()
	sub.Close() // idempotent
	if j.SubscriberCount() != 0 {
		t.Fatalf("SubscriberCount after close = %d, want 0", j.SubscriberCount())
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("closed subscription channel still open")
	}
	// Appends after close must not panic or deliver.
	j.Append(Event{Summary: "d"})
}

// Unsubscribe churn: closing followers concurrently with publishes (the
// /events?follow=1 disconnect path) must never double-close a channel,
// send on a closed channel, or leak the subscription from the fan-out
// list. Run under -race (make check does); the assertions at the end
// catch leaks, the detector catches the rest.
func TestJournalSubscribeChurn(t *testing.T) {
	j := NewJournal(64)
	stop := make(chan struct{})
	var pubs, churn sync.WaitGroup

	// Publishers: tight append loops.
	for p := 0; p < 3; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for {
				select {
				case <-stop:
					return
				default:
					j.Append(Event{Summary: "churn"})
				}
			}
		}()
	}

	// Churners: subscribe, consume a little, close — including a close
	// racing the consumer mid-receive and a redundant concurrent Close.
	for c := 0; c < 4; c++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			iters := 60
			if testing.Short() {
				iters = 15
			}
			for i := 0; i < iters; i++ {
				sub := j.Subscribe(2)
				drained := make(chan struct{})
				go func() {
					for range sub.C() {
					}
					close(drained)
				}()
				if i%2 == 0 {
					<-sub.C() // sometimes race the drainer for events
				}
				var cwg sync.WaitGroup
				cwg.Add(2)
				go func() { defer cwg.Done(); sub.Close() }()
				go func() { defer cwg.Done(); sub.Close() }()
				cwg.Wait()
				<-drained // channel must actually close exactly once
			}
		}()
	}

	churnDone := make(chan struct{})
	go func() { churn.Wait(); close(churnDone) }()
	select {
	case <-churnDone:
	case <-time.After(30 * time.Second):
		t.Fatal("subscribe/close churn wedged")
	}
	close(stop)
	pubDone := make(chan struct{})
	go func() { pubs.Wait(); close(pubDone) }()
	select {
	case <-pubDone:
	case <-time.After(10 * time.Second):
		t.Fatal("publishers wedged after stop")
	}
	if got := j.SubscriberCount(); got != 0 {
		t.Fatalf("leaked %d subscriptions after churn", got)
	}
	// The journal still works after the churn.
	sub := j.Subscribe(1)
	j.Append(Event{Summary: "after"})
	if ev := <-sub.C(); ev.Summary != "after" {
		t.Fatalf("post-churn delivery = %+v", ev)
	}
	sub.Close()
}

func TestJournalSubscribeConcurrent(t *testing.T) {
	j := NewJournal(64)
	sub := j.Subscribe(8)
	done := make(chan int64)
	go func() {
		var last, n int64
		for ev := range sub.C() {
			if ev.Seq <= last {
				panic("out-of-order delivery")
			}
			last = ev.Seq
			n++
		}
		done <- n
	}()
	const total = 5000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				j.Append(Event{Summary: "x"})
			}
		}()
	}
	wg.Wait()
	// Give the consumer a moment to drain what's buffered, then close.
	for len(sub.C()) > 0 {
		time.Sleep(time.Millisecond)
	}
	sub.Close()
	received := <-done
	if received+sub.Dropped() > total {
		t.Fatalf("received %d + dropped %d > appended %d", received, sub.Dropped(), total)
	}
	if received == 0 {
		t.Fatal("subscriber received nothing")
	}
}
