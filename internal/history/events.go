package history

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
)

// Event is one evidence-bearing diagnosis event: the watcher saw a
// per-element drop-rate spike, diagnosed the window ending at the spike
// from stored history, and recorded the full chain of evidence — the
// ranked drop table and rule-book inference of Algorithm 1 and, when the
// tenant has middlebox chains, the Algorithm 2 metrics with its pruning
// steps. Nothing here requires re-querying an agent after the fact.
type Event struct {
	Seq      int64          `json:"seq"`
	TS       int64          `json:"ts"` // record-clock ns at detection
	Tenant   core.TenantID  `json:"tenant"`
	Element  core.ElementID `json:"element"`       // the spiking element
	DropRate float64        `json:"drop_rate_pps"` // drops/s over the sweep gap
	WindowNS int64          `json:"window_ns"`     // diagnosis window length

	Stack *diagnosis.ContentionReport `json:"stack,omitempty"`
	Chain *diagnosis.RootCauseReport  `json:"chain,omitempty"`

	Summary string `json:"summary"`
}

// Journal is a bounded in-memory ring of diagnosis events. Appends past
// capacity overwrite the oldest events (counted as dropped); sequence
// numbers are monotonic so readers can page with Since.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	head    int
	n       int
	seq     int64
	dropped int64

	tel atomic.Pointer[journalMetrics]
}

// NewJournal builds a journal holding at most capacity events
// (default 256).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 256
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Append stores ev, assigning and returning its sequence number.
func (j *Journal) Append(ev Event) int64 {
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	overwrote := j.n == len(j.buf)
	if overwrote {
		j.buf[j.head] = ev
		j.head = (j.head + 1) % len(j.buf)
		j.dropped++
	} else {
		j.buf[(j.head+j.n)%len(j.buf)] = ev
		j.n++
	}
	seq := ev.Seq
	j.mu.Unlock()
	if m := j.tel.Load(); m != nil {
		m.events.Inc()
		if overwrote {
			m.dropped.Inc()
		}
	}
	return seq
}

// Since returns up to max events with Seq > seq, oldest first (max <= 0
// means all retained).
func (j *Journal) Since(seq int64, max int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for i := 0; i < j.n; i++ {
		ev := j.buf[(j.head+i)%len(j.buf)]
		if ev.Seq <= seq {
			continue
		}
		out = append(out, ev)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Stats returns retained events, the latest sequence number, and how
// many events were overwritten unread-ably.
func (j *Journal) Stats() (retained int, lastSeq, dropped int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n, j.seq, j.dropped
}

// WatcherConfig shapes spike detection.
type WatcherConfig struct {
	// DropRateThreshold is the per-element drop rate (packets/s over the
	// gap between two sweeps) that triggers a diagnosis event.
	// Default 50.
	DropRateThreshold float64
	// Window is the history window the triggered diagnosis analyzes,
	// ending at the spike. Default 3s.
	Window time.Duration
	// Cooldown suppresses further events for a tenant after one fires,
	// in record-clock time. Default 30s.
	Cooldown time.Duration
}

func (c WatcherConfig) withDefaults() WatcherConfig {
	if c.DropRateThreshold <= 0 {
		c.DropRateThreshold = 50
	}
	if c.Window <= 0 {
		c.Window = 3 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// Watcher turns monitoring sweeps into diagnosis events: wired as a
// Monitor.AfterSweep hook, it tracks every element's drop counter across
// consecutive sweeps and, when some element's drop rate crosses the
// threshold, diagnoses the surrounding window from the store and appends
// the evidence to the journal.
type Watcher struct {
	Store   *Store
	Journal *Journal
	Cfg     WatcherConfig
	// Net resolves a tenant's virtual network so chain events carry
	// Algorithm 2 pruning; nil skips the chain diagnosis.
	Net func(core.TenantID) *core.VirtualNet

	mu        sync.Mutex
	lastDrop  map[elemKey]Point // previous sweep's drop counter per element
	lastFired map[core.TenantID]int64
}

// NewWatcher builds a watcher emitting into journal.
func NewWatcher(store *Store, journal *Journal, cfg WatcherConfig) *Watcher {
	return &Watcher{
		Store:     store,
		Journal:   journal,
		Cfg:       cfg.withDefaults(),
		lastDrop:  make(map[elemKey]Point),
		lastFired: make(map[core.TenantID]int64),
	}
}

// AfterSweep is the Monitor hook: inspect one sweep's records, detect
// drop-rate spikes, and emit at most one event per tenant per cooldown.
func (w *Watcher) AfterSweep(tid core.TenantID, recs map[core.ElementID]core.Record, _ error) {
	type spike struct {
		id   core.ElementID
		rate float64
		ts   int64
	}
	var worst spike
	w.mu.Lock()
	for id, rec := range recs {
		drops, ok := rec.Get(core.AttrDropPackets)
		if !ok {
			continue
		}
		k := elemKey{tid, id}
		prev, seen := w.lastDrop[k]
		w.lastDrop[k] = Point{TS: rec.Timestamp, V: drops}
		if !seen || rec.Timestamp <= prev.TS {
			continue
		}
		rate := (drops - prev.V) / (time.Duration(rec.Timestamp - prev.TS).Seconds())
		if rate > worst.rate {
			worst = spike{id, rate, rec.Timestamp}
		}
	}
	fired := w.lastFired[tid]
	cooled := worst.ts-fired >= int64(w.Cfg.Cooldown)
	if worst.rate >= w.Cfg.DropRateThreshold && (fired == 0 || cooled) {
		w.lastFired[tid] = worst.ts
	} else {
		worst.rate = 0
	}
	w.mu.Unlock()
	if worst.rate == 0 {
		return
	}

	ev := Event{
		TS:       worst.ts,
		Tenant:   tid,
		Element:  worst.id,
		DropRate: worst.rate,
		WindowNS: int64(w.Cfg.Window),
	}
	if rep, err := w.Store.DiagnoseStack(tid, w.Cfg.Window, worst.ts); err == nil {
		ev.Stack = rep
		ev.Summary = rep.String()
	}
	if w.Net != nil {
		if net := w.Net(tid); net != nil && len(net.Chains) > 0 {
			if rep, err := w.Store.DiagnoseChain(tid, w.Cfg.Window, worst.ts, net); err == nil {
				ev.Chain = rep
				if ev.Summary != "" {
					ev.Summary += "; "
				}
				ev.Summary += rep.String()
			}
		}
	}
	if ev.Summary == "" {
		ev.Summary = fmt.Sprintf("drop spike at %s (%.0f pps), window too thin to diagnose", worst.id, worst.rate)
	}
	w.Journal.Append(ev)
}
