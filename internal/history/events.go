package history

import (
	"sync"
	"sync/atomic"

	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
)

// Event is one evidence-bearing diagnosis event: a detector in the
// anomaly pipeline saw a series violate its tenant's SLO, the window
// ending at the violation was diagnosed from stored history, and the
// full chain of evidence was recorded — the ranked drop table and
// rule-book inference of Algorithm 1 and, when the tenant has middlebox
// chains, the Algorithm 2 metrics with its pruning steps. Nothing here
// requires re-querying an agent after the fact.
type Event struct {
	Seq     int64          `json:"seq"`
	TS      int64          `json:"ts"` // record-clock ns at detection
	Tenant  core.TenantID  `json:"tenant"`
	Element core.ElementID `json:"element"` // the violating element

	// Detector names the pipeline detector that fired ("drop-rate",
	// "ewma-baseline"); Attr is the offending series' attribute name,
	// Value its rate or gauge value, and Baseline the EWMA mean it was
	// judged against (0 for threshold detectors).
	Detector string  `json:"detector,omitempty"`
	Attr     string  `json:"attr,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Baseline float64 `json:"baseline,omitempty"`

	DropRate float64 `json:"drop_rate_pps"` // drops/s over the sweep gap (drop-rate detector)
	WindowNS int64   `json:"window_ns"`     // diagnosis window length

	// IncidentID links the event to the correlated incident it was
	// folded into (0 when no correlator is attached).
	IncidentID int64 `json:"incident_id,omitempty"`

	// TraceID references the distributed trace of the sweep query or
	// push frame that carried the triggering records (0 when tracing is
	// off or the trace is unknown). The span store pins referenced
	// traces so their waterfalls stay retrievable alongside the event.
	TraceID uint64 `json:"trace_id,omitempty"`

	Stack *diagnosis.ContentionReport `json:"stack,omitempty"`
	Chain *diagnosis.RootCauseReport  `json:"chain,omitempty"`

	Summary string `json:"summary"`
}

// Journal is a bounded in-memory ring of diagnosis events. Appends past
// capacity overwrite the oldest events (counted as dropped); sequence
// numbers are monotonic so readers can page with Since. Push consumers
// attach with Subscribe.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	head    int
	n       int
	seq     int64
	dropped int64
	subs    []*Subscription

	tel atomic.Pointer[journalMetrics]
}

// NewJournal builds a journal holding at most capacity events
// (default 256).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 256
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Append stores ev, assigning and returning its sequence number, and
// fans the event out to subscribers.
func (j *Journal) Append(ev Event) int64 {
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	overwrote := j.n == len(j.buf)
	if overwrote {
		j.buf[j.head] = ev
		j.head = (j.head + 1) % len(j.buf)
		j.dropped++
	} else {
		j.buf[(j.head+j.n)%len(j.buf)] = ev
		j.n++
	}
	seq := ev.Seq
	var subDropped uint64
	for _, s := range j.subs {
		subDropped += s.push(ev)
	}
	j.mu.Unlock()
	if m := j.tel.Load(); m != nil {
		m.events.Inc()
		if overwrote {
			m.dropped.Inc()
		}
		if subDropped > 0 {
			m.subDropped.Add(subDropped)
		}
	}
	return seq
}

// Since returns up to max events with Seq > seq, oldest first (max <= 0
// means all retained).
func (j *Journal) Since(seq int64, max int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for i := 0; i < j.n; i++ {
		ev := j.buf[(j.head+i)%len(j.buf)]
		if ev.Seq <= seq {
			continue
		}
		out = append(out, ev)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Stats returns retained events, the latest sequence number, and how
// many events were overwritten unread-ably.
func (j *Journal) Stats() (retained int, lastSeq, dropped int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n, j.seq, j.dropped
}

// Subscription is one live consumer of journal appends. Events arrive
// on C in append order; a consumer that falls more than its buffer
// behind loses the oldest pending events (drop-oldest, counted in
// telemetry and per-subscription), never blocking the append path.
type Subscription struct {
	j       *Journal
	ch      chan Event
	dropped atomic.Int64
	closed  bool
}

// Subscribe attaches a bounded-channel consumer (buffer default 64).
// Close it when done or the journal retains it forever.
func (j *Journal) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	s := &Subscription{j: j, ch: make(chan Event, buffer)}
	j.mu.Lock()
	j.subs = append(j.subs, s)
	j.mu.Unlock()
	return s
}

// C is the event stream.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped reports how many events this subscription lost to a full
// buffer.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel. Safe to call
// once; pending buffered events remain readable until the channel
// drains.
func (s *Subscription) Close() {
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	subs := s.j.subs
	for i, other := range subs {
		if other == s {
			s.j.subs = append(subs[:i:i], subs[i+1:]...)
			break
		}
	}
	close(s.ch)
}

// push delivers ev without blocking, dropping the oldest pending event
// when the buffer is full. Caller holds j.mu (which also serializes
// push with Close, so the channel cannot close mid-send). Returns how
// many events were dropped (0 or 1).
func (s *Subscription) push(ev Event) uint64 {
	for {
		select {
		case s.ch <- ev:
			return 0
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
			select {
			case s.ch <- ev:
				return 1
			default:
				continue // another reader raced the slot; retry
			}
		default:
			// The reader drained the buffer between our two selects;
			// loop and try the plain send again.
		}
	}
}

// SubscriberCount reports attached subscriptions.
func (j *Journal) SubscriberCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs)
}
