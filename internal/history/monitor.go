package history

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
)

// MonitorConfig shapes the background collection loop.
type MonitorConfig struct {
	// Interval is the sweep cadence. Default 2s.
	Interval time.Duration
	// Tenants restricts monitoring; empty means every tenant present in
	// the controller topology at sweep time.
	Tenants []core.TenantID
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	return c
}

// Monitor drives Controller.SampleContext at a fixed cadence and appends
// every swept record into the flight-recorder store — the continuous
// statistics-gathering loop of §4, on top of the sweep layer's deadline,
// retry and breaker machinery, so one stalled agent cannot stall the
// recorder. Run it in a goroutine; Sweep is also callable directly, which
// is how virtual-time labs drive it.
type Monitor struct {
	Ctl   *controller.Controller
	Store *Store
	Cfg   MonitorConfig

	// AfterSweep, when set, observes every completed sweep (the watcher
	// hook). recs is the partial result map; err joins per-machine
	// failures, as from SampleContext.
	AfterSweep func(tid core.TenantID, recs map[core.ElementID]core.Record, err error)

	// Skip, when set, excludes elements hosted on machines it reports
	// true for. The push-ingest path sets it to ingest.Manager.Streaming,
	// demoting the monitor to a fallback sweeper: streamed machines are
	// already feeding the store on arrival, and double-appending them
	// would skew rate math. A machine whose stream drops automatically
	// falls back into the next sweep.
	Skip func(core.MachineID) bool

	tel     *monitorMetrics
	skipped atomic.Uint64
}

// NewMonitor builds a monitor over ctl writing into store.
func NewMonitor(ctl *controller.Controller, store *Store, cfg MonitorConfig) *Monitor {
	return &Monitor{Ctl: ctl, Store: store, Cfg: cfg.withDefaults()}
}

// tenants resolves the tenant set for one sweep, sorted for determinism.
func (m *Monitor) tenants() []core.TenantID {
	if len(m.Cfg.Tenants) > 0 {
		return m.Cfg.Tenants
	}
	topo := m.Ctl.Topology()
	out := make([]core.TenantID, 0, len(topo.Tenants))
	for tid := range topo.Tenants {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sweep collects every monitored tenant's elements once and appends the
// results. Partial failures are recorded (the healthy machines' records
// still land) and joined into the returned error.
func (m *Monitor) Sweep(ctx context.Context) error {
	var keep func(core.ElementID, core.ElementInfo) bool
	if m.Skip != nil {
		keep = func(_ core.ElementID, info core.ElementInfo) bool { return !m.Skip(info.Machine) }
	}
	var errs []error
	for _, tid := range m.tenants() {
		ids := m.Ctl.TenantElements(tid, keep)
		if len(ids) == 0 {
			continue
		}
		recs, err := m.Ctl.SampleContext(ctx, tid, ids)
		for _, rec := range recs {
			m.Store.Append(tid, rec)
		}
		if m.tel != nil {
			m.tel.sweeps.Inc()
			m.tel.records.Add(uint64(len(recs)))
			if err != nil {
				m.tel.sweepErrors.Inc()
			}
		}
		if m.AfterSweep != nil {
			m.AfterSweep(tid, recs, err)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("tenant %s: %w", tid, err))
		}
	}
	return errors.Join(errs...)
}

// Run sweeps at the configured cadence until ctx is done. Sweep errors
// are absorbed (the store keeps whatever arrived; the next tick retries);
// the only exit is ctx cancellation.
//
// A sweep that outlasts the interval does NOT earn an immediate re-sweep:
// the ticker buffers one tick while Sweep runs, and taking it on return
// would start a second sweep back-to-back — overlapping measurement
// windows whose intervals mis-measure every rate derived from them.
// Pending ticks are drained and counted as skipped instead, so the loop
// re-aligns to the cadence and the monitor_sweeps_skipped series says
// how often collection fell behind.
func (m *Monitor) Run(ctx context.Context) error {
	tick := time.NewTicker(m.Cfg.Interval)
	defer tick.Stop()
	_ = m.Sweep(ctx) // an immediate first sweep so history starts at t0
	m.drainPending(tick)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			_ = m.Sweep(ctx)
			m.drainPending(tick)
		}
	}
}

// drainPending consumes ticks that fired while a sweep ran, counting
// each as a skipped sweep.
func (m *Monitor) drainPending(tick *time.Ticker) {
	for {
		select {
		case <-tick.C:
			m.skipped.Add(1)
			if m.tel != nil {
				m.tel.sweepsSkipped.Inc()
			}
		default:
			return
		}
	}
}

// SkippedSweeps reports how many sweep ticks were skipped because the
// previous sweep overran the interval.
func (m *Monitor) SkippedSweeps() uint64 { return m.skipped.Load() }

// DiagnoseStack runs Algorithm 1 (contention/bottleneck) purely from
// stored history: it synthesizes intervals for the tenant's
// virtualization-stack elements over the window ending at asOf (<= 0
// means newest) and analyzes them without touching any agent.
func (s *Store) DiagnoseStack(tid core.TenantID, window time.Duration, asOf int64) (*diagnosis.ContentionReport, error) {
	ivs := s.Intervals(tid, nil, window, asOf)
	for id, iv := range ivs {
		kind := iv.Cur.Kind()
		// Same element-kind set the live path samples (middleboxes rank
		// too: application-level loss like an IDS capture ring counts).
		if !kind.InVirtualizationStack() && kind != core.KindUnknown &&
			kind != core.KindPNIC && kind != core.KindMiddlebox {
			delete(ivs, id)
		}
	}
	if len(ivs) == 0 {
		return nil, fmt.Errorf("history: no stack intervals for tenant %q in window", tid)
	}
	return diagnosis.AnalyzeStackIntervals(ivs), nil
}

// DiagnoseChain runs Algorithm 2 (root cause under propagation) purely
// from stored history over the tenant's middlebox elements. net supplies
// the chain order; nil skips the pruning that needs topology.
func (s *Store) DiagnoseChain(tid core.TenantID, window time.Duration, asOf int64, net *core.VirtualNet) (*diagnosis.RootCauseReport, error) {
	ivs := s.Intervals(tid, nil, window, asOf)
	for id, iv := range ivs {
		if iv.Cur.Kind() != core.KindMiddlebox {
			delete(ivs, id)
		}
	}
	if len(ivs) == 0 {
		return nil, fmt.Errorf("history: no middlebox intervals for tenant %q in window", tid)
	}
	return diagnosis.AnalyzeChainIntervals(ivs, net), nil
}
