package history

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"perfsight/internal/core"
)

const testTenant = core.TenantID("t1")

// stackRec builds a vswitch record with the counters the diagnosis and
// watcher paths read.
func stackRec(eid core.ElementID, ts int64, drops float64) core.Record {
	return core.Record{
		Timestamp: ts,
		Element:   eid,
		Attrs: []core.Attr{
			{ID: core.AttrKind, Value: float64(core.KindVSwitch)},
			{ID: core.AttrRxPackets, Value: float64(ts) / 10},
			{ID: core.AttrDropPackets, Value: drops},
		},
	}
}

func TestSeriesAtAndInterval(t *testing.T) {
	s := New(Config{})
	const eid = core.ElementID("m0/vswitch")
	for i := int64(1); i <= 5; i++ {
		s.Append(testTenant, stackRec(eid, i*1e9, float64(i*100)))
	}

	pts := s.Series(testTenant, eid, core.AttrName(core.AttrDropPackets), 0, 1<<62, 0)
	if len(pts) != 5 {
		t.Fatalf("Series returned %d points, want 5", len(pts))
	}
	for i, p := range pts {
		if want := int64(i+1) * 1e9; p.TS != want {
			t.Fatalf("point %d TS = %d, want %d (ascending order)", i, p.TS, want)
		}
	}

	// At reconstructs the newest record at or before asOf.
	rec, ok := s.At(testTenant, eid, 3500e6)
	if !ok {
		t.Fatal("At(3.5s) found nothing")
	}
	if rec.Timestamp != 3e9 {
		t.Fatalf("At(3.5s) Timestamp = %d, want 3e9", rec.Timestamp)
	}
	if v, _ := rec.Get(core.AttrDropPackets); v != 300 {
		t.Fatalf("At(3.5s) drops = %v, want 300", v)
	}
	if rec.Kind() != core.KindVSwitch {
		t.Fatalf("At lost the kind attr: %v", rec.Kind())
	}

	// Interval: Cur at asOf, Prev one window earlier; Delta is Cur-Prev.
	iv, ok := s.Interval(testTenant, eid, 2*time.Second, 5e9)
	if !ok {
		t.Fatal("Interval(2s @5s) found nothing")
	}
	if iv.Cur.Timestamp != 5e9 || iv.Prev.Timestamp != 3e9 {
		t.Fatalf("Interval snapshots at %d/%d, want 3e9/5e9", iv.Prev.Timestamp, iv.Cur.Timestamp)
	}
	if d := iv.DropPackets(); d != 200 {
		t.Fatalf("Interval drop delta = %v, want 200", d)
	}

	// A window reaching before recorded history yields no interval.
	if _, ok := s.Interval(testTenant, eid, 2*time.Second, 1e9); ok {
		t.Fatal("Interval before history start should not synthesize")
	}
}

func TestAppendDuplicateAndOutOfOrder(t *testing.T) {
	s := New(Config{})
	const eid = core.ElementID("m0/vswitch")
	s.Append(testTenant, stackRec(eid, 1e9, 10))
	s.Append(testTenant, stackRec(eid, 2e9, 20))
	appends := s.Stats().Appends

	// A duplicate timestamp replaces the stored value without growing.
	s.Append(testTenant, stackRec(eid, 2e9, 25))
	if got := s.Stats().Appends; got != appends {
		t.Fatalf("duplicate-TS append grew Appends to %d (was %d)", got, appends)
	}
	rec, _ := s.At(testTenant, eid, 0)
	if v, _ := rec.Get(core.AttrDropPackets); v != 25 {
		t.Fatalf("duplicate-TS append kept drops = %v, want replacement 25", v)
	}

	// An older timestamp is dropped outright.
	s.Append(testTenant, stackRec(eid, 1500e6, 99))
	pts := s.Series(testTenant, eid, core.AttrName(core.AttrDropPackets), 0, 1<<62, 0)
	if len(pts) != 2 {
		t.Fatalf("out-of-order append changed point count: %d", len(pts))
	}
}

func TestDownsampleLastValueWinsPreservesDeltas(t *testing.T) {
	// Raw ring of 2, 10ns buckets: points displaced from the raw ring
	// fold to one point per bucket, keeping the newest (for counters,
	// the bucket-end value — so window deltas survive step-down).
	s := New(Config{MaxPointsPerSeries: 2, DownsampleStep: 10 * time.Nanosecond, Retention: time.Second})
	const eid = core.ElementID("m0/vswitch")
	for ts := int64(1); ts <= 20; ts++ {
		s.Append(testTenant, core.Record{Timestamp: ts, Element: eid,
			Attrs: []core.Attr{{ID: core.AttrDropPackets, Value: float64(ts * 10)}}})
	}
	pts := s.Series(testTenant, eid, core.AttrName(core.AttrDropPackets), 0, 1<<62, 0)
	// Raw holds {19, 20}; displaced 1..18 fold to bucket 0 (TS 1..9 -> 9),
	// bucket 1 (TS 10..18 -> 18).
	want := []Point{{9, 90}, {18, 180}, {19, 190}, {20, 200}}
	if len(pts) != len(want) {
		t.Fatalf("points after step-down: %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
	st := s.Stats()
	if st.Downsampled != 18 {
		t.Fatalf("Downsampled = %d, want 18", st.Downsampled)
	}
	if st.Resident != int64(len(pts)) {
		t.Fatalf("Resident = %d but store holds %d points", st.Resident, len(pts))
	}
}

// TestRetentionBoundsResident is the bounded-memory proof: a stream far
// longer than the horizon leaves resident points under the configured
// cap, with everything behind the horizon evicted.
func TestRetentionBoundsResident(t *testing.T) {
	cfg := Config{
		MaxPointsPerSeries: 8,
		DownsampleStep:     10 * time.Millisecond,
		Retention:          100 * time.Millisecond,
	}
	s := New(cfg)
	elems := []core.ElementID{"m0/vswitch", "m0/pnic", "m1/vswitch"}
	const sweeps = 10_000
	step := int64(time.Millisecond)
	for i := int64(1); i <= sweeps; i++ {
		for _, eid := range elems {
			s.Append(testTenant, stackRec(eid, i*step, float64(i)))
		}
	}

	st := s.Stats()
	if st.Series != int64(3*len(elems)) {
		t.Fatalf("Series = %d, want %d", st.Series, 3*len(elems))
	}
	if st.Resident > s.MaxResident() {
		t.Fatalf("Resident %d exceeds configured bound %d", st.Resident, s.MaxResident())
	}
	if st.Evicted == 0 {
		t.Fatal("a stream 100x the horizon evicted nothing")
	}
	if st.Appends != int64(sweeps*3*len(elems)) {
		t.Fatalf("Appends = %d, want %d", st.Appends, sweeps*3*len(elems))
	}

	// Accounting cross-check: the atomic Resident counter must equal the
	// points actually reachable through Series.
	var held int64
	newest, _ := s.NewestTS(testTenant)
	horizon := newest - int64(cfg.Retention) - int64(cfg.DownsampleStep)
	for _, eid := range elems {
		for _, attr := range s.Attrs(testTenant, eid) {
			pts := s.Series(testTenant, eid, attr, 0, 1<<62, 0)
			held += int64(len(pts))
			if len(pts) > 0 && pts[0].TS < horizon {
				t.Fatalf("%s %s oldest point %d predates horizon %d", eid, attr, pts[0].TS, horizon)
			}
		}
	}
	if held != st.Resident {
		t.Fatalf("Resident counter %d != %d reachable points", st.Resident, held)
	}
}

// TestConcurrentAppendAndRead exercises the lock striping under -race:
// one writer per element appending monotonically while readers walk every
// query path.
func TestConcurrentAppendAndRead(t *testing.T) {
	s := New(Config{MaxPointsPerSeries: 32, DownsampleStep: 10 * time.Millisecond, Retention: 200 * time.Millisecond})
	const writers = 8
	const perWriter = 2_000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eid := core.ElementID(fmt.Sprintf("m%d/vswitch", w))
			for i := int64(1); i <= perWriter; i++ {
				s.Append(testTenant, stackRec(eid, i*int64(time.Millisecond), float64(i)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, eid := range s.Elements(testTenant) {
					s.At(testTenant, eid, 0)
					s.Series(testTenant, eid, core.AttrName(core.AttrDropPackets), 0, 1<<62, 10)
				}
				s.Intervals(testTenant, nil, 50*time.Millisecond, 0)
				s.Stats()
				s.NewestTS(testTenant)
			}
		}()
	}

	// Wait for the writers, then release the readers.
	for {
		if st := s.Stats(); st.Appends >= writers*perWriter {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.Elements != writers {
		t.Fatalf("Elements = %d, want %d", st.Elements, writers)
	}
	if st.Resident > s.MaxResident() {
		t.Fatalf("Resident %d exceeds bound %d", st.Resident, s.MaxResident())
	}
}
