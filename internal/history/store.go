// Package history is PerfSight's flight recorder: a sharded, lock-striped
// in-memory time-series store that retains the records a background
// Monitor sweeps out of the agent fleet, so diagnostic applications can
// analyze any past window instantly instead of blocking 2·T on live
// samples (§4–5's continuous-statistics promise).
//
// The store is keyed by (tenant, element, attr). Each series is a pair of
// ring buffers: a raw ring holding the most recent points at full sweep
// cadence, and a step-down ring holding one point per DownsampleStep for
// older history. A point pushed out of the raw ring is folded into its
// downsample bucket (last value wins — the attrs are overwhelmingly
// monotonic counters, so keeping the latest point per bucket preserves
// window deltas at bucket granularity); the step-down ring in turn evicts
// past the retention horizon. Total resident points are therefore bounded
// by series × (MaxPointsPerSeries + Retention/DownsampleStep).
package history

import (
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
)

// Config bounds the store's memory.
type Config struct {
	// Retention is the horizon behind the newest appended point beyond
	// which downsampled points are evicted. Default 15m.
	Retention time.Duration
	// MaxPointsPerSeries caps the raw (full-cadence) ring. Default 512.
	MaxPointsPerSeries int
	// DownsampleStep is the step-down resolution for points that age out
	// of the raw ring: one retained point per step. Default 10s.
	DownsampleStep time.Duration
	// Shards is the lock-striping factor. Default 16.
	Shards int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Retention <= 0 {
		c.Retention = 15 * time.Minute
	}
	if c.MaxPointsPerSeries <= 0 {
		c.MaxPointsPerSeries = 512
	}
	if c.DownsampleStep <= 0 {
		c.DownsampleStep = 10 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	return c
}

// downCap is the step-down ring capacity for the config: one point per
// step across the retention horizon, plus one for the in-progress bucket.
func (c Config) downCap() int {
	n := int(c.Retention/c.DownsampleStep) + 1
	if n > 4096 {
		n = 4096
	}
	return n
}

// Point is one stored sample of a series.
type Point struct {
	TS int64   `json:"ts"` // record timestamp, ns (virtual or UnixNano)
	V  float64 `json:"v"`
}

// ring is a fixed-capacity FIFO of points ordered by ascending TS.
type ring struct {
	buf  []Point
	head int // index of oldest
	n    int
}

func newRing(capacity int) ring { return ring{buf: make([]Point, capacity)} }

// at returns the i-th oldest point, i in [0, n).
func (r *ring) at(i int) Point { return r.buf[(r.head+i)%len(r.buf)] }

// last returns the newest point.
func (r *ring) last() (Point, bool) {
	if r.n == 0 {
		return Point{}, false
	}
	return r.at(r.n - 1), true
}

// setLast overwrites the newest point.
func (r *ring) setLast(p Point) { r.buf[(r.head+r.n-1)%len(r.buf)] = p }

// push appends p, evicting the oldest point when full.
func (r *ring) push(p Point) (evicted Point, wasFull bool) {
	if r.n == len(r.buf) {
		evicted = r.buf[r.head]
		r.buf[r.head] = p
		r.head = (r.head + 1) % len(r.buf)
		return evicted, true
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
	return Point{}, false
}

// popOldest removes and returns the oldest point.
func (r *ring) popOldest() Point {
	p := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

// before returns the newest point with TS <= t.
func (r *ring) before(t int64) (Point, bool) {
	// First logical index with TS > t.
	i := sort.Search(r.n, func(i int) bool { return r.at(i).TS > t })
	if i == 0 {
		return Point{}, false
	}
	return r.at(i - 1), true
}

// scan calls fn for every point with from <= TS <= to, oldest first.
func (r *ring) scan(from, to int64, fn func(Point) bool) bool {
	i := sort.Search(r.n, func(i int) bool { return r.at(i).TS >= from })
	for ; i < r.n; i++ {
		p := r.at(i)
		if p.TS > to {
			return true
		}
		if !fn(p) {
			return false
		}
	}
	return true
}

// series is one (tenant, element, attr) time series: raw + step-down rings.
type series struct {
	raw  ring
	down ring
}

// elemKey identifies one element's series group.
type elemKey struct {
	Tenant  core.TenantID
	Element core.ElementID
}

// blobSample is the newest payload stored for one attr of an element.
// Payload-bearing attrs (sketch summaries) keep only the latest blob —
// the numeric epoch still records as a full series, but summary content
// is a point-in-time artifact, and retaining one per element keeps the
// store's payload memory constant regardless of sweep cadence.
type blobSample struct {
	ts   int64
	blob []byte
}

// elemSeries groups the attr series of one element.
type elemSeries struct {
	attrs  map[core.AttrID]*series
	blobs  map[core.AttrID]blobSample
	lastTS int64
}

type shard struct {
	mu    sync.RWMutex
	elems map[elemKey]*elemSeries
}

// Stats is a point-in-time summary of the store's occupancy.
type Stats struct {
	Series      int64 // live (tenant, element, attr) series
	Elements    int64 // live (tenant, element) groups
	Resident    int64 // points currently held across all rings
	Appends     int64 // points ever appended
	Downsampled int64 // points folded from the raw ring into step-down buckets
	Evicted     int64 // points permanently dropped (bucket fold, ring overflow, retention)
}

// Store is the flight-recorder time-series store. All methods are safe
// for concurrent use; writes to different elements contend only within a
// shard stripe.
type Store struct {
	cfg    Config
	seed   maphash.Seed
	shards []shard

	series      atomic.Int64
	elements    atomic.Int64
	resident    atomic.Int64
	appends     atomic.Int64
	downsampled atomic.Int64
	evicted     atomic.Int64

	tel atomic.Pointer[storeMetrics]
}

// New builds a store with the given bounds (zero fields take defaults).
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, seed: maphash.MakeSeed(), shards: make([]shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i].elems = make(map[elemKey]*elemSeries)
	}
	return s
}

// Config returns the store's effective (defaulted) configuration.
func (s *Store) Config() Config { return s.cfg }

func (s *Store) shardOf(k elemKey) *shard {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(string(k.Tenant))
	h.WriteByte(0)
	h.WriteString(string(k.Element))
	return &s.shards[h.Sum64()%uint64(len(s.shards))]
}

// Append stores one swept record under the tenant. Points must arrive in
// non-decreasing timestamp order per element; a duplicate timestamp
// replaces the previous value (a re-sweep at the same instant), and an
// older timestamp is dropped.
func (s *Store) Append(tid core.TenantID, rec core.Record) {
	k := elemKey{tid, rec.Element}
	sh := s.shardOf(k)
	sh.mu.Lock()
	es := sh.elems[k]
	if es == nil {
		es = &elemSeries{attrs: make(map[core.AttrID]*series, len(rec.Attrs))}
		sh.elems[k] = es
		s.elements.Add(1)
	}
	if rec.Timestamp > es.lastTS {
		es.lastTS = rec.Timestamp
	}
	for _, a := range rec.Attrs {
		sr := es.attrs[a.ID]
		if sr == nil {
			sr = &series{
				raw:  newRing(s.cfg.MaxPointsPerSeries),
				down: newRing(s.cfg.downCap()),
			}
			es.attrs[a.ID] = sr
			s.series.Add(1)
		}
		s.appendPoint(sr, Point{TS: rec.Timestamp, V: a.Value})
		if len(a.Payload) > 0 {
			if es.blobs == nil {
				es.blobs = make(map[core.AttrID]blobSample, 1)
			}
			if prev := es.blobs[a.ID]; rec.Timestamp >= prev.ts {
				// Blobs are immutable after decode, so storing the
				// reference (not a copy) is safe.
				es.blobs[a.ID] = blobSample{ts: rec.Timestamp, blob: a.Payload}
			}
		}
	}
	sh.mu.Unlock()
}

// appendPoint pushes p into the series, stepping evicted raw points down
// into their downsample bucket and enforcing the retention horizon.
func (s *Store) appendPoint(sr *series, p Point) {
	if last, ok := sr.raw.last(); ok {
		if p.TS == last.TS {
			sr.raw.setLast(p)
			return
		}
		if p.TS < last.TS {
			return // out of order: monitor sweeps only move forward
		}
	}
	s.appends.Add(1)
	s.resident.Add(1)
	if m := s.tel.Load(); m != nil {
		m.appends.Inc()
	}
	old, wasFull := sr.raw.push(p)
	if wasFull {
		// The displaced raw point steps down: last value per bucket wins.
		s.downsampled.Add(1)
		bucket := old.TS / int64(s.cfg.DownsampleStep)
		if dl, ok := sr.down.last(); ok && dl.TS/int64(s.cfg.DownsampleStep) == bucket {
			sr.down.setLast(old) // the replaced bucket value is gone
			s.resident.Add(-1)
			s.noteEvicted(1)
		} else if _, full := sr.down.push(old); full {
			s.resident.Add(-1)
			s.noteEvicted(1)
		}
	}
	// Retention: drop downsampled points behind the horizon.
	horizon := p.TS - int64(s.cfg.Retention)
	for sr.down.n > 0 && sr.down.at(0).TS < horizon {
		sr.down.popOldest()
		s.resident.Add(-1)
		s.noteEvicted(1)
	}
}

func (s *Store) noteEvicted(n int64) {
	s.evicted.Add(n)
	if m := s.tel.Load(); m != nil {
		m.evictions.Add(uint64(n))
	}
}

// Stats returns the store's occupancy counters.
func (s *Store) Stats() Stats {
	return Stats{
		Series:      s.series.Load(),
		Elements:    s.elements.Load(),
		Resident:    s.resident.Load(),
		Appends:     s.appends.Load(),
		Downsampled: s.downsampled.Load(),
		Evicted:     s.evicted.Load(),
	}
}

// MaxResident returns the configured worst-case resident points for the
// current series population — the bound the retention test asserts.
func (s *Store) MaxResident() int64 {
	return s.series.Load() * int64(s.cfg.MaxPointsPerSeries+s.cfg.downCap())
}

// Tenants lists tenants with stored history, sorted.
func (s *Store) Tenants() []core.TenantID {
	seen := make(map[core.TenantID]bool)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.elems {
			seen[k.Tenant] = true
		}
		sh.mu.RUnlock()
	}
	out := make([]core.TenantID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Elements lists the tenant's recorded elements, sorted.
func (s *Store) Elements(tid core.TenantID) []core.ElementID {
	var out []core.ElementID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.elems {
			if k.Tenant == tid {
				out = append(out, k.Element)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Attrs lists the recorded attribute names of one element, sorted.
func (s *Store) Attrs(tid core.TenantID, eid core.ElementID) []string {
	k := elemKey{tid, eid}
	sh := s.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	es := sh.elems[k]
	if es == nil {
		return nil
	}
	out := make([]string, 0, len(es.attrs))
	for a := range es.attrs {
		out = append(out, core.AttrName(a))
	}
	sort.Strings(out)
	return out
}

// NewestTS returns the newest record timestamp stored for the tenant.
func (s *Store) NewestTS(tid core.TenantID) (int64, bool) {
	var newest int64
	found := false
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, es := range sh.elems {
			if k.Tenant == tid && (!found || es.lastTS > newest) {
				newest, found = es.lastTS, true
			}
		}
		sh.mu.RUnlock()
	}
	return newest, found
}

// Series returns the stored points of one (tenant, element, attr) series
// with from <= TS <= to, oldest first, downsampled history followed by
// raw. limit <= 0 means unlimited.
func (s *Store) Series(tid core.TenantID, eid core.ElementID, attr string, from, to int64, limit int) []Point {
	id, ok := core.LookupAttr(attr)
	if !ok {
		return nil // a name no producer ever registered has no series
	}
	k := elemKey{tid, eid}
	sh := s.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	es := sh.elems[k]
	if es == nil {
		return nil
	}
	sr := es.attrs[id]
	if sr == nil {
		return nil
	}
	var out []Point
	keep := func(p Point) bool {
		out = append(out, p)
		return limit <= 0 || len(out) < limit
	}
	if sr.down.scan(from, to, keep) {
		sr.raw.scan(from, to, keep)
	}
	return out
}

// At reconstructs the element's record as of asOf: for every recorded
// attr, the newest stored value at or before asOf. The record carries the
// newest such sample timestamp. asOf <= 0 means "newest".
func (s *Store) At(tid core.TenantID, eid core.ElementID, asOf int64) (core.Record, bool) {
	k := elemKey{tid, eid}
	sh := s.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	es := sh.elems[k]
	if es == nil {
		return core.Record{}, false
	}
	if asOf <= 0 {
		asOf = es.lastTS
	}
	rec := core.Record{Element: eid}
	for id, sr := range es.attrs {
		p, ok := sr.raw.before(asOf)
		if !ok {
			p, ok = sr.down.before(asOf)
		}
		if !ok {
			continue
		}
		a := core.Attr{ID: id, Value: p.V}
		// Attach the stored summary blob when it had been produced by
		// asOf; queries into deeper history get the epoch series alone.
		if bs, hasBlob := es.blobs[id]; hasBlob && bs.ts <= asOf {
			a.Payload = bs.blob
		}
		rec.Attrs = append(rec.Attrs, a)
		if p.TS > rec.Timestamp {
			rec.Timestamp = p.TS
		}
	}
	if len(rec.Attrs) == 0 {
		return core.Record{}, false
	}
	rec.SortAttrs()
	return rec, true
}

// Interval synthesizes a controller.Interval for the element over the
// window ending at asOf (asOf <= 0 means newest): the Cur snapshot is the
// record at asOf, the Prev snapshot the record one window earlier.
func (s *Store) Interval(tid core.TenantID, eid core.ElementID, window time.Duration, asOf int64) (controller.Interval, bool) {
	cur, ok := s.At(tid, eid, asOf)
	if !ok {
		return controller.Interval{}, false
	}
	prev, ok := s.At(tid, eid, cur.Timestamp-int64(window))
	if !ok || prev.Timestamp >= cur.Timestamp {
		return controller.Interval{}, false
	}
	return controller.Interval{Prev: prev, Cur: cur}, true
}

// Intervals synthesizes intervals for a set of elements (nil = every
// recorded element of the tenant) over the window ending at asOf.
// Elements without enough history are omitted, mirroring the partial
// results of a live SampleInterval under churn.
func (s *Store) Intervals(tid core.TenantID, ids []core.ElementID, window time.Duration, asOf int64) map[core.ElementID]controller.Interval {
	if ids == nil {
		ids = s.Elements(tid)
	}
	out := make(map[core.ElementID]controller.Interval, len(ids))
	for _, id := range ids {
		if iv, ok := s.Interval(tid, id, window, asOf); ok {
			out[id] = iv
		}
	}
	return out
}
