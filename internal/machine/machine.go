// Package machine models one physical server of the paper's testbed: CPU
// cores, the shared memory bus, the physical NIC, the virtualization-stack
// dataplane, the VMs placed on it, and interfering workloads (CPU hogs,
// memory-access hogs, management tasks).
//
// Each virtual-time tick the machine apportions its CPU cycles among the
// contending consumers — the host softirq path, each VM's QEMU I/O thread,
// each VM's vCPUs, and host-level tasks — by max–min fair share, and its
// memory-bus bytes between streaming memory hogs (served with priority,
// per the DESIGN.md §5 calibration) and datapath copies. Contention and
// bottleneck phenomena then emerge rather than being scripted: starve QEMU
// of cycles or the bus and the TUN overflows; flood small packets and the
// backlog enqueue drops.
package machine

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/sim"
)

// Config sizes a physical machine. The defaults mirror the paper's Dell
// T5500 testbed: 8 cores, 10 GbE, 16 GB.
type Config struct {
	ID        core.MachineID
	Cores     int
	CPUHz     float64 // cycles per second per core
	MembusBps float64 // memory-bus capacity, bytes per second
	MemBytes  int64   // RAM size (sk_buff alloc fails when nearly full)
	Stack     dataplane.StackConfig
	// NoLoadInflation disables the wakeup-latency cost inflation on I/O
	// threads (ablation knob; see DESIGN.md §5).
	NoLoadInflation bool
	// NoGuestBurstScheduling disables the bursty guest execution under a
	// dominating in-VM hog (ablation knob; see DESIGN.md §5).
	NoGuestBurstScheduling bool
}

// DefaultConfig returns a testbed-like machine configuration.
func DefaultConfig(id core.MachineID) Config {
	return Config{
		ID:        id,
		Cores:     8,
		CPUHz:     2.5e9,
		MembusBps: 27e9,
		MemBytes:  16 << 30, // 16 GB, as on the Dell T5500 testbed
		Stack:     dataplane.DefaultStackConfig(id, 8),
	}
}

// App is middlebox or workload software running inside a VM. Apps are
// stepped once per tick under their VM's vCPU grant.
type App interface {
	ID() core.ElementID
	// CPUDemand returns the cycles the app would consume this tick if
	// unconstrained; the machine uses it to size the VM's vCPU claim.
	CPUDemand(dt time.Duration) float64
	Step(ctx *AppContext)
	// Snapshot exposes the app's middlebox counters (§4.1 instrumentation).
	Snapshot(ts int64) core.Record
}

// AppContext is what an app sees during its tick.
type AppContext struct {
	Now, Dt time.Duration
	VM      *dataplane.VMStack
	VCPU    *dataplane.CycleBudget
	Bus     *dataplane.MembusBudget
}

// VM is one virtual machine: its stack column, vCPU allocation and apps.
type VM struct {
	ID    core.VMID
	VCPUs float64 // cores allocated
	Stack *dataplane.VMStack
	Apps  []App
}

// HogKind distinguishes interfering workloads.
type HogKind int

const (
	// HogCPU is a compute-bound task (busy loop).
	HogCPU HogKind = iota
	// HogMem is a memory-access-bound task (streaming copies).
	HogMem
	// HogMemSpace allocates and holds memory (a leaking or greedy task),
	// driving the machine toward sk_buff allocation failures.
	HogMemSpace
)

// Hog is an interfering workload on the host or inside a VM.
type Hog struct {
	Name string
	Kind HogKind
	// VM is the hosting VM, or "" for a host-level task (e.g. the
	// management task of §7.3).
	VM core.VMID
	// CPUDemandCores is the compute appetite (HogCPU), in cores.
	CPUDemandCores float64
	// MemDemandBps is the streaming-copy appetite (HogMem), bytes/s.
	MemDemandBps float64
	// CyclesPerByte is the CPU cost of the streaming copy (HogMem).
	CyclesPerByte float64
	// AllocBytes is the resident memory held (HogMemSpace).
	AllocBytes int64

	achievedCycles float64
	achievedBytes  int64
	lastBytesBps   float64
}

// AchievedMemBps returns the hog's memory throughput over the last tick.
func (h *Hog) AchievedMemBps() float64 { return h.lastBytesBps }

// AchievedCycles returns the cumulative CPU cycles a compute hog burned.
func (h *Hog) AchievedCycles() float64 { return h.achievedCycles }

// AchievedMemBytes returns cumulative bytes moved.
func (h *Hog) AchievedMemBytes() int64 { return h.achievedBytes }

// Machine is one physical server.
type Machine struct {
	Cfg   Config
	Stack *dataplane.Stack

	vms      map[core.VMID]*VM
	vmOrder  []core.VMID
	hogs     []*Hog
	host     *HostStats
	outWire  []dataplane.Batch
	lastTick tickStats
	tick     int64

	// Last-tick spends drive next-tick demand headroom: a consumer claims
	// its queued work plus twice what it managed last tick, so claims
	// track actual load instead of line-rate worst cases (which would
	// spuriously trigger the oversubscription penalty on idle machines).
	lastSoftirqSpent float64
	lastQemuSpent    map[core.VMID]float64
	lastSoftirqBus   float64
	lastQemuBus      map[core.VMID]float64
	lastGuestBus     map[core.VMID]float64
	lastVcpuApp      map[core.VMID]float64 // non-hog vCPU cycles spent
}

type tickStats struct {
	cpuSpent   float64
	cpuTotal   float64
	busSpent   float64
	busTotal   float64
	softirqCut bool // softirq demand exceeded its grant
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	if cfg.CPUHz <= 0 {
		cfg.CPUHz = 2.5e9
	}
	if cfg.MembusBps <= 0 {
		cfg.MembusBps = 27e9
	}
	if cfg.Stack.Machine == "" {
		cfg.Stack = dataplane.DefaultStackConfig(cfg.ID, cfg.Cores)
	}
	m := &Machine{
		Cfg:           cfg,
		Stack:         dataplane.NewStack(cfg.Stack),
		vms:           make(map[core.VMID]*VM),
		lastQemuSpent: make(map[core.VMID]float64),
		lastQemuBus:   make(map[core.VMID]float64),
		lastGuestBus:  make(map[core.VMID]float64),
		lastVcpuApp:   make(map[core.VMID]float64),
	}
	m.host = &HostStats{id: core.ElementID(string(cfg.ID) + "/host"), m: m}
	return m
}

// ID returns the machine's identity.
func (m *Machine) ID() core.MachineID { return m.Cfg.ID }

// AddVM places a VM with the given vCPU allocation and vNIC capacity.
func (m *Machine) AddVM(id core.VMID, vcpus, vnicBps float64, apps ...App) *VM {
	if _, dup := m.vms[id]; dup {
		panic(fmt.Sprintf("machine %s: duplicate VM %s", m.Cfg.ID, id))
	}
	vm := &VM{ID: id, VCPUs: vcpus, Stack: m.Stack.AddVM(id, vnicBps), Apps: apps}
	m.vms[id] = vm
	m.vmOrder = append(m.vmOrder, id)
	return vm
}

// RemoveVM migrates a VM away (its elements stop being ticked).
func (m *Machine) RemoveVM(id core.VMID) {
	delete(m.vms, id)
	for i, v := range m.vmOrder {
		if v == id {
			m.vmOrder = append(m.vmOrder[:i], m.vmOrder[i+1:]...)
			break
		}
	}
	m.Stack.RemoveVM(id)
}

// VM returns the named VM.
func (m *Machine) VM(id core.VMID) *VM { return m.vms[id] }

// VMs returns VM IDs in placement order.
func (m *Machine) VMs() []core.VMID { return append([]core.VMID(nil), m.vmOrder...) }

// AddHog attaches an interfering workload.
func (m *Machine) AddHog(h *Hog) *Hog {
	m.hogs = append(m.hogs, h)
	return h
}

// RemoveHog detaches a workload (e.g. the operator migrating the
// management task away in §7.3).
func (m *Machine) RemoveHog(h *Hog) {
	for i, x := range m.hogs {
		if x == h {
			m.hogs = append(m.hogs[:i], m.hogs[i+1:]...)
			return
		}
	}
}

// OfferWire presents arrivals from the physical network for this tick.
func (m *Machine) OfferWire(batches []dataplane.Batch, dt time.Duration) {
	m.Stack.OfferRx(batches, dt)
}

// CollectWire returns (and clears) this tick's wire departures.
func (m *Machine) CollectWire() []dataplane.Batch {
	out := m.outWire
	m.outWire = nil
	return out
}

// HostElement returns the machine-utilization pseudo-element.
func (m *Machine) HostElement() core.Element { return m.host }

// Elements returns every PerfSight element on this machine (stack, per-VM,
// apps, host gauge).
func (m *Machine) Elements() []core.Element {
	out := m.Stack.Elements()
	for _, id := range m.vmOrder {
		vm := m.vms[id]
		out = append(out, vm.Stack.Elements()...)
		for _, a := range vm.Apps {
			out = append(out, appElement{a})
		}
	}
	out = append(out, m.host)
	return out
}

// appElement adapts an App to core.Element.
type appElement struct{ a App }

func (e appElement) ID() core.ElementID            { return e.a.ID() }
func (e appElement) Kind() core.ElementKind        { return core.KindMiddlebox }
func (e appElement) Snapshot(ts int64) core.Record { return e.a.Snapshot(ts) }

// Tick advances the machine one step. See the package comment for the
// phase ordering rationale.
func (m *Machine) Tick(now, dt time.Duration) {
	m.tick++
	if tr := m.Stack.Tracer(); tr != nil {
		tr.SetNow(int64(now))
	}
	m.Stack.Backlogs.BeginTick()
	// 1. Wire departures free pNIC transmit-queue space first.
	m.outWire = append(m.outWire, m.Stack.DrainTx(dt)...)

	// 2. Host CPU load and its effect on I/O threads. The machine's
	// *actually runnable* load — spinning hogs plus the datapath's real
	// recent consumption — determines two things a pure fair-share
	// allocation would miss (this is why NFV deployments pin cores):
	//
	//   - CFS gives each runnable thread one timeslice: no single I/O
	//     thread can claim more than totalCycles/#runnable.
	//   - Wakeup-heavy I/O threads (host softirq, per-VM QEMU I/O), which
	//     sleep and wake per packet batch, pay sharply growing scheduling-
	//     latency and cache-pollution overhead as load approaches the
	//     cores. vCPU threads hold cores for full slices and batch hogs
	//     are insensitive, so neither pays it.
	//
	// The rho^16 inflation curve is a calibration choice (DESIGN.md §5)
	// reproducing the paper's CPU-contention symptoms (Fig 8 phase 3)
	// while staying negligible below ~80% load.
	totalCycles := float64(m.Cfg.Cores) * m.Cfg.CPUHz * dt.Seconds()
	realLoad := m.lastSoftirqSpent
	threads := 1.0 // softirq
	const tinyThread = 0.005
	for _, id := range m.vmOrder {
		realLoad += m.lastQemuSpent[id] + m.lastVcpuApp[id]
		if m.lastQemuSpent[id] > tinyThread*m.Cfg.CPUHz*dt.Seconds() {
			threads++
		}
		if m.lastVcpuApp[id] > tinyThread*m.Cfg.CPUHz*dt.Seconds() {
			threads++
		}
	}
	for _, h := range m.hogs {
		d := m.hogCPUDemand(h, dt)
		if h.VM != "" {
			// A hog inside a VM is bounded by the VM's vCPU threads.
			if cap := m.vms[h.VM].VCPUs * m.Cfg.CPUHz * dt.Seconds(); d > cap {
				d = cap
			}
		}
		realLoad += d
		if d > 0 {
			threads++
		}
	}
	// Memory-space pressure: when resident allocations approach RAM,
	// atomic sk_buff allocations start failing in the driver (Table 1's
	// memory-space row).
	memTotal := m.Cfg.MemBytes
	if memTotal <= 0 {
		memTotal = 16 << 30
	}
	var resident int64
	for _, h := range m.hogs {
		resident += h.AllocBytes
	}
	free := float64(memTotal-resident) / float64(memTotal)
	switch {
	case free < 0.02:
		m.Stack.Driver.AllocFailRate = 0.5
	case free < 0.05:
		m.Stack.Driver.AllocFailRate = 0.1 * (0.05 - free) / 0.03
	default:
		m.Stack.Driver.AllocFailRate = 0
	}

	rho := sim.Clamp(realLoad/totalCycles, 0, 1)
	rho16 := math.Pow(rho, 16)
	if m.Cfg.NoLoadInflation {
		rho16 = 0
	}
	m.Stack.SetCostScales(1+8*rho16, 1+48*rho16)
	perThread := totalCycles / threads

	// 3a. Size the competing CPU claims, I/O threads capped per-thread.
	type claimant struct {
		name   string
		demand float64
	}
	var claims []claimant
	// The softirq claim is bounded by its kthreads (up to two cores here)
	// and by one core per backlog queue: a single queue's drain cannot be
	// parallelized, which is the §7.2 case-1 contention.
	softirqCap := minf(2*perThread, float64(m.Cfg.Stack.BacklogQueues)*m.Cfg.CPUHz*dt.Seconds())
	softirqDemand := minf(m.softirqDemand(dt), softirqCap)
	claims = append(claims, claimant{"softirq", softirqDemand})
	for _, id := range m.vmOrder {
		vm := m.vms[id]
		claims = append(claims, claimant{"qemu/" + string(id), minf(m.qemuDemand(vm, dt), perThread)})
		vcpuCap := vm.VCPUs * m.Cfg.CPUHz * dt.Seconds()
		claims = append(claims, claimant{"vcpu/" + string(id), minf(m.vcpuDemand(vm, dt), vcpuCap)})
	}
	hostHogBase := len(claims)
	for _, h := range m.hogs {
		if h.VM != "" {
			continue // in-VM hogs are apps; they claim through their VM
		}
		claims = append(claims, claimant{"hog/" + h.Name, m.hogCPUDemand(h, dt)})
	}
	demands := make([]float64, len(claims))
	for i, c := range claims {
		demands[i] = c.demand
	}
	alloc := sim.FairShare(totalCycles, demands)

	// 3. Memory-bus budgets: streaming hogs reserve with priority (the
	// DESIGN.md §5 calibration of why memory-bandwidth contention shows no
	// explicit symptom); the residual is max–min fair-shared across the
	// datapath consumers the same way CPU is, so every pipeline stage
	// degrades together instead of the last stage starving outright.
	busTotal := m.Cfg.MembusBps * dt.Seconds()
	hogBusDemand := 0.0
	for _, h := range m.hogs {
		if h.Kind == HogMem {
			hogBusDemand += h.MemDemandBps * dt.Seconds()
		}
	}
	hogBus := minf(hogBusDemand, busTotal)
	busDemands := make([]float64, 1+2*len(m.vmOrder))
	busDemands[0] = m.softirqBusDemand(dt)
	for i, id := range m.vmOrder {
		vm := m.vms[id]
		busDemands[1+2*i] = m.qemuBusDemand(vm, dt)
		busDemands[2+2*i] = m.guestBusDemand(vm, dt)
	}
	busAlloc := sim.FairShare(busTotal-hogBus, busDemands)
	busPool := dataplane.NewMembusBudget(int64(busTotal - hogBus))
	busCap := func(i int) int64 {
		c := int64(1.75 * busAlloc[i])
		if c < busEpsilon {
			c = busEpsilon
		}
		return c
	}
	hogBusLeft := hogBus

	// 4. Execute the datapath phases under their grants. VM transmit runs
	// before the host softirq so TAP enqueues are drained within the tick
	// (the kernel raises and serves NET_RX_SOFTIRQ promptly); VM receive
	// runs after, once the softirq has refilled the TUNs.
	// Rotate the service order across ticks so the work-conserving shared
	// pools do not systematically favor the first-placed VM.
	n := len(m.vmOrder)
	order := make([]int, n)
	for k := 0; k < n; k++ {
		if n > 0 {
			order[k] = (int(m.tick) + k) % n
		}
	}
	qemuBudgets := make([]*dataplane.CycleBudget, n)
	qemuBuses := make([]*dataplane.MembusBudget, n)
	for _, i := range order {
		id := m.vmOrder[i]
		qemuBudgets[i] = dataplane.NewCycleBudget(alloc[1+2*i])
		qemuBuses[i] = busPool.Child(busCap(1 + 2*i))
		m.Stack.RunQemuTx(id, qemuBudgets[i], qemuBuses[i], dt)
	}

	softirq := dataplane.NewCycleBudget(alloc[0])
	softirqBus := busPool.Child(busCap(0))
	m.Stack.RunHostSoftirq(softirq, softirqBus)
	m.lastTick.busSpent += float64(softirqBus.Spent())
	m.lastSoftirqSpent = softirq.Spent()
	m.lastSoftirqBus = float64(softirqBus.Spent())

	vcpuBudgets := make(map[core.VMID]*dataplane.CycleBudget, n)
	for _, i := range order {
		id := m.vmOrder[i]
		vm := m.vms[id]
		qemu := qemuBudgets[i]
		qemuBus := qemuBuses[i]
		m.Stack.RunQemuRx(id, qemu, qemuBus, dt)
		m.lastQemuSpent[id] = qemu.Spent()
		m.lastQemuBus[id] = float64(qemuBus.Spent())
		vcpu := dataplane.NewCycleBudget(alloc[2+2*i])
		guestBus := busPool.Child(busCap(2 + 2*i))
		vcpuBudgets[id] = vcpu

		// In-VM hogs timeshare the guest with its apps: carve out their
		// demand-proportional slice of the vCPU grant first, so a CPU-
		// intensive task inside a middlebox VM degrades the middlebox
		// (the Fig 8 "VM CPU bound" phase). A hog that dominates the vCPU
		// also makes the guest's kernel and apps run in bursts — the
		// guest scheduler wakes them at millisecond latency — which is
		// what lets the TUN overflow before TCP flow control reacts.
		hogSpentVM := 0.0
		runGuest := true
		if hogD := m.vmHogDemand(id, dt); hogD > 0 {
			share := hogD / m.vcpuDemand(vm, dt)
			if share > 0.5 && !m.Cfg.NoGuestBurstScheduling {
				period := int64(1 + share*20)
				runGuest = (m.tick+int64(i))%period == 0
			}
			cut := vcpu.Remaining() * share
			for _, h := range m.hogs {
				if h.VM != id {
					continue
				}
				grant := minf(cut, m.hogCPUDemand(h, dt))
				spent := m.runHog(h, grant, &hogBusLeft, dt)
				vcpu.SpendCycles(spent)
				cut -= spent
				hogSpentVM += spent
				m.lastTick.cpuSpent += spent
			}
		}

		if runGuest {
			vm.Stack.GuestRx(vcpu, guestBus)
			ctx := &AppContext{Now: now, Dt: dt, VM: vm.Stack, VCPU: vcpu, Bus: guestBus}
			for _, a := range vm.Apps {
				a.Step(ctx)
			}
			vm.Stack.GuestTx(vcpu, guestBus)
		}
		m.lastGuestBus[id] = float64(guestBus.Spent())
		m.lastVcpuApp[id] = vcpu.Spent() - hogSpentVM
		m.lastTick.cpuSpent += qemu.Spent() + vcpu.Spent()
		m.lastTick.busSpent += float64(qemuBus.Spent() + guestBus.Spent())
	}

	// 5. Host-level hogs consume their grants (in-VM hogs already ran
	// inside their VM's slice).
	hi := hostHogBase
	for _, h := range m.hogs {
		if h.VM != "" {
			continue
		}
		grant := alloc[hi]
		hi++
		spent := m.runHog(h, grant, &hogBusLeft, dt)
		m.lastTick.cpuSpent += spent
	}

	// 6. Collect this tick's departures queued behind the line-rate drain.
	m.lastTick.cpuSpent += softirq.Spent()
	m.lastTick.cpuTotal = totalCycles
	m.lastTick.busSpent += hogBus - hogBusLeft
	m.lastTick.busTotal = busTotal
	m.lastTick.softirqCut = softirqDemand > alloc[0]*1.01
	m.host.update(m.lastTick)
	m.lastTick = tickStats{}
}

// runHog executes one hog under its CPU grant and the hog bus reserve,
// returning cycles spent.
func (m *Machine) runHog(h *Hog, cpuGrant float64, busLeft *float64, dt time.Duration) float64 {
	switch h.Kind {
	case HogCPU:
		want := h.CPUDemandCores * m.Cfg.CPUHz * dt.Seconds()
		spent := minf(want, cpuGrant)
		h.achievedCycles += spent
		h.lastBytesBps = 0
		return spent
	case HogMem:
		cpb := h.CyclesPerByte
		if cpb <= 0 {
			cpb = 0.5
		}
		want := h.MemDemandBps * dt.Seconds()
		byCPU := cpuGrant / cpb
		bytes := minf(minf(want, byCPU), *busLeft)
		*busLeft -= bytes
		h.achievedBytes += int64(bytes)
		h.lastBytesBps = bytes / dt.Seconds()
		return bytes * cpb
	}
	return 0
}

// softirqDemand estimates the cycles the host softirq path could usefully
// consume this tick: pending ring and backlog packets at their costs, plus
// headroom for traffic arriving within the tick.
func (m *Machine) softirqDemand(dt time.Duration) float64 {
	c := m.Cfg.Stack.Costs
	pending := float64(m.Stack.PNic.RxRingLen())*(c.DriverCyclesPerPkt+c.NAPICyclesPerPkt) +
		float64(m.Stack.Backlogs.TotalLen())*c.NAPICyclesPerPkt
	// Headroom: twice last tick's throughput plus a bootstrap sliver.
	headroom := 2*m.lastSoftirqSpent + 0.01*m.Cfg.CPUHz*dt.Seconds()
	return pending + headroom
}

// softirqBusDemand estimates the host softirq path's memory-bus appetite:
// pending ring and backlog bytes plus one tick of line rate, at its copy
// factors.
func (m *Machine) softirqBusDemand(dt time.Duration) float64 {
	c := m.Cfg.Stack.Costs
	factor := c.DriverMembusFactor + c.NAPIMembusFactor
	pend := float64(m.Stack.PNic.RxRingBytes() + m.Stack.Backlogs.TotalBytes())
	return pend*factor + 2*m.lastSoftirqBus + busEpsilon
}

// qemuBusDemand estimates one VM's hypervisor-I/O copy appetite.
func (m *Machine) qemuBusDemand(vm *VM, dt time.Duration) float64 {
	c := m.Cfg.Stack.Costs
	pend := float64(vm.Stack.Tun.QueuedBytes() + vm.Stack.VNic.TxRingBytes())
	return pend*c.QEMUMembusFactor + 2*m.lastQemuBus[vm.ID] + busEpsilon
}

// guestBusDemand estimates one VM's guest-kernel and application copy
// appetite.
// busEpsilon (bytes per tick) bootstraps an idle consumer's bus claim.
const busEpsilon = 512 << 10

func (m *Machine) guestBusDemand(vm *VM, dt time.Duration) float64 {
	c := m.Cfg.Stack.Costs
	pend := float64(vm.Stack.VNic.RxRingBytes() + vm.Stack.GuestQueue.QueuedBytes() +
		vm.Stack.Socket.RxAvailable() + vm.Stack.Socket.TxQueued())
	return pend*(2*c.GuestMembusFactor+c.AppMembusFactor) + 2*m.lastGuestBus[vm.ID] + busEpsilon
}

// qemuDemand estimates one VM's hypervisor-I/O appetite.
func (m *Machine) qemuDemand(vm *VM, dt time.Duration) float64 {
	c := m.Cfg.Stack.Costs
	pending := float64(vm.Stack.Tun.Len()+vm.Stack.VNic.TxRingLen()) * c.QEMUCyclesPerPkt
	headroom := 2*m.lastQemuSpent[vm.ID] + 0.005*m.Cfg.CPUHz*dt.Seconds()
	return pending + headroom
}

// vcpuDemand estimates one VM's guest appetite: guest kernel work plus the
// declared demand of its apps and in-VM hogs.
func (m *Machine) vcpuDemand(vm *VM, dt time.Duration) float64 {
	c := m.Cfg.Stack.Costs
	d := float64(vm.Stack.VNic.RxRingLen()+vm.Stack.GuestQueue.Len()) * c.GuestCyclesPerPkt * 2
	for _, a := range vm.Apps {
		d += a.CPUDemand(dt)
	}
	// A window- or downstream-limited app declares appetite it cannot use;
	// cap the app+guest claim near recent actual spend so idle declared
	// demand does not manufacture scheduler contention. Hogs are always
	// runnable, so their demand stays fully declared.
	cap := 2*m.lastVcpuApp[vm.ID] + 0.1*m.Cfg.CPUHz*dt.Seconds()
	if d > cap {
		d = cap
	}
	for _, h := range m.hogs {
		if h.VM == vm.ID {
			d += m.hogCPUDemand(h, dt)
		}
	}
	// Always leave a sliver so an idle guest can start receiving.
	d += 0.005 * m.Cfg.CPUHz * dt.Seconds()
	return d
}

// vmHogDemand sums the CPU appetite of hogs inside one VM.
func (m *Machine) vmHogDemand(vm core.VMID, dt time.Duration) float64 {
	d := 0.0
	for _, h := range m.hogs {
		if h.VM == vm {
			d += m.hogCPUDemand(h, dt)
		}
	}
	return d
}

func (m *Machine) hogCPUDemand(h *Hog, dt time.Duration) float64 {
	switch h.Kind {
	case HogCPU:
		return h.CPUDemandCores * m.Cfg.CPUHz * dt.Seconds()
	case HogMem:
		cpb := h.CyclesPerByte
		if cpb <= 0 {
			cpb = 0.5
		}
		return h.MemDemandBps * dt.Seconds() * cpb
	}
	return 0
}

// HostStats is the pseudo-element publishing machine utilization gauges.
// The gauges are written by the tick loop and read concurrently by agent
// snapshots, so they are stored as atomic float bits.
type HostStats struct {
	id core.ElementID
	m  *Machine

	cpuUtilBits atomic.Uint64
	busUtilBits atomic.Uint64
}

func (h *HostStats) update(t tickStats) {
	const ewma = 0.2
	if t.cpuTotal > 0 {
		v := (1-ewma)*h.CPUUtil() + ewma*sim.Clamp(t.cpuSpent/t.cpuTotal, 0, 1)
		h.cpuUtilBits.Store(math.Float64bits(v))
	}
	if t.busTotal > 0 {
		v := (1-ewma)*h.MembusUtil() + ewma*sim.Clamp(t.busSpent/t.busTotal, 0, 1)
		h.busUtilBits.Store(math.Float64bits(v))
	}
}

// ID implements core.Element.
func (h *HostStats) ID() core.ElementID { return h.id }

// Kind implements core.Element.
func (h *HostStats) Kind() core.ElementKind { return core.KindUnknown }

// Snapshot implements core.Element.
func (h *HostStats) Snapshot(ts int64) core.Record {
	return core.Record{
		Timestamp: ts,
		Element:   h.id,
		Attrs: []core.Attr{
			{ID: core.AttrCPUUtil, Value: h.CPUUtil()},
			{ID: core.AttrMembusUtil, Value: h.MembusUtil()},
		},
	}
}

// CPUUtil returns the smoothed machine CPU utilization (0..1).
func (h *HostStats) CPUUtil() float64 { return math.Float64frombits(h.cpuUtilBits.Load()) }

// MembusUtil returns the smoothed memory-bus utilization (0..1).
func (h *HostStats) MembusUtil() float64 { return math.Float64frombits(h.busUtilBits.Load()) }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// SortedVMIDs returns VM IDs sorted lexicographically (stable reporting).
func (m *Machine) SortedVMIDs() []core.VMID {
	out := append([]core.VMID(nil), m.vmOrder...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
