package machine_test

import (
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	. "perfsight/internal/machine"
	"perfsight/internal/middlebox"
)

func tick(m *Machine, n int) {
	for i := 0; i < n; i++ {
		m.Tick(time.Duration(i+1)*time.Millisecond, time.Millisecond)
	}
}

func TestAddRemoveVM(t *testing.T) {
	m := New(DefaultConfig("m0"))
	m.AddVM("vm0", 1.0, 1e9)
	m.AddVM("vm1", 1.0, 1e9)
	if len(m.VMs()) != 2 || m.VM("vm0") == nil {
		t.Fatal("placement failed")
	}
	m.RemoveVM("vm0")
	if m.VM("vm0") != nil || len(m.VMs()) != 1 {
		t.Fatal("removal failed")
	}
	if m.Stack.VMs["vm0"] != nil {
		t.Fatal("stack column not removed")
	}
}

func TestDuplicateVMPanics(t *testing.T) {
	m := New(DefaultConfig("m0"))
	m.AddVM("vm0", 1.0, 1e9)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.AddVM("vm0", 1.0, 1e9)
}

func TestElementsIncludeEverything(t *testing.T) {
	m := New(DefaultConfig("m0"))
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	m.AddVM("vm0", 1.0, 1e9, sink)
	ids := map[core.ElementID]bool{}
	for _, e := range m.Elements() {
		ids[e.ID()] = true
	}
	for _, want := range []core.ElementID{"m0/pnic", "m0/vswitch", "m0/vm0/tun", "m0/vm0/app", "m0/host"} {
		if !ids[want] {
			t.Errorf("missing element %s", want)
		}
	}
}

func TestTrafficDeliveryToApp(t *testing.T) {
	m := New(DefaultConfig("m0"))
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	m.AddVM("vm0", 1.0, 1e9, sink)
	m.Stack.VSwitch.InstallToVM("f", "vm0")
	for i := 0; i < 100; i++ {
		m.OfferWire([]dataplane.Batch{{Flow: "f", Packets: 10, Bytes: 14480}}, time.Millisecond)
		m.Tick(time.Duration(i+1)*time.Millisecond, time.Millisecond)
	}
	if sink.ReceivedBytes() == 0 {
		t.Fatal("nothing reached the app")
	}
	if m.Stack.PNic.ES.Rx.Packets.Load() == 0 {
		t.Fatal("pNIC counters idle")
	}
}

func TestEgressReachesWire(t *testing.T) {
	m := New(DefaultConfig("m0"))
	src := middlebox.NewRawSource("m0/vm0/app", 1e9, "out", 100e6, 1448, nil)
	m.AddVM("vm0", 1.0, 1e9, src)
	m.Stack.VSwitch.InstallToPNIC("out")
	var wire int64
	for i := 0; i < 200; i++ {
		m.Tick(time.Duration(i+1)*time.Millisecond, time.Millisecond)
		for _, b := range m.CollectWire() {
			wire += b.Bytes
		}
	}
	if wire == 0 {
		t.Fatal("no egress")
	}
	gotBps := float64(wire) * 8 / 0.2
	if gotBps < 50e6 || gotBps > 130e6 {
		t.Fatalf("egress %.0f bps; want ~100 Mbps", gotBps)
	}
}

func TestCPUHogConsumesFairShare(t *testing.T) {
	m := New(DefaultConfig("m0"))
	m.AddVM("vm0", 1.0, 1e9)
	h := m.AddHog(&Hog{Name: "h", Kind: HogCPU, VM: "vm0", CPUDemandCores: 1})
	tick(m, 100)
	if h.AchievedCycles() == 0 {
		t.Fatal("hog starved on an idle machine")
	}
	util := m.HostElement().(*HostStats).CPUUtil()
	// 1 core of 8 demanded: ~12.5% utilization.
	if util < 0.08 || util > 0.25 {
		t.Fatalf("cpu util %.2f; want ~0.125", util)
	}
}

func TestMemHogAchievesDemandAndBusUtil(t *testing.T) {
	m := New(DefaultConfig("m0"))
	m.AddVM("vm0", 1.0, 1e9)
	h := m.AddHog(&Hog{Name: "h", Kind: HogMem, VM: "vm0", MemDemandBps: 2e9, CyclesPerByte: 0.33})
	tick(m, 200)
	bps := float64(h.AchievedMemBytes()) / 0.2
	if bps < 1.9e9 || bps > 2.1e9 {
		t.Fatalf("hog achieved %.2g B/s; want 2e9", bps)
	}
	if h.AchievedMemBps() <= 0 {
		t.Fatal("instantaneous rate not tracked")
	}
	if u := m.HostElement().(*HostStats).MembusUtil(); u < 0.05 {
		t.Fatalf("bus util %.3f too low", u)
	}
}

func TestRemoveHogStopsConsumption(t *testing.T) {
	m := New(DefaultConfig("m0"))
	h := m.AddHog(&Hog{Name: "h", Kind: HogMem, MemDemandBps: 1e9, CyclesPerByte: 0.33})
	tick(m, 50)
	before := h.AchievedMemBytes()
	m.RemoveHog(h)
	tick(m, 50)
	if h.AchievedMemBytes() != before {
		t.Fatal("removed hog kept running")
	}
}

func TestMemSpacePressureSetsAllocFail(t *testing.T) {
	m := New(DefaultConfig("m0"))
	m.AddVM("vm0", 1.0, 1e9)
	tick(m, 2)
	if m.Stack.Driver.AllocFailRate != 0 {
		t.Fatal("alloc failures without pressure")
	}
	m.AddHog(&Hog{Name: "leak", Kind: HogMemSpace, AllocBytes: 16 << 30})
	tick(m, 2)
	if m.Stack.Driver.AllocFailRate == 0 {
		t.Fatal("full RAM did not trigger alloc failures")
	}
}

func TestHostStatsSnapshot(t *testing.T) {
	m := New(DefaultConfig("m0"))
	tick(m, 10)
	rec := m.HostElement().Snapshot(123)
	if rec.Element != "m0/host" || rec.Timestamp != 123 {
		t.Fatalf("host snapshot identity: %+v", rec)
	}
	if _, ok := rec.Get(core.AttrCPUUtil); !ok {
		t.Fatal("cpu_util missing")
	}
	if _, ok := rec.Get(core.AttrMembusUtil); !ok {
		t.Fatal("membus_util missing")
	}
}

func TestInVMHogStealsFromApp(t *testing.T) {
	// Two identical CPU-bound forwarder VMs; one shares its vCPU with a
	// hog. Its throughput must fall well below the clean one's.
	build := func(withHog bool) float64 {
		m := New(DefaultConfig("m0"))
		out := &countingOutput{}
		fwd := middlebox.NewForwarder("m0/vm0/app", 1e9,
			middlebox.ForwardConfig{CyclesPerByte: 50}, out)
		m.AddVM("vm0", 1.0, 1e9, fwd)
		m.Stack.VSwitch.InstallToVM("f", "vm0")
		if withHog {
			m.AddHog(&Hog{Name: "h", Kind: HogCPU, VM: "vm0", CPUDemandCores: 4})
		}
		for i := 0; i < 300; i++ {
			m.OfferWire([]dataplane.Batch{{Flow: "f", Packets: 40, Bytes: 40 * 1448}}, time.Millisecond)
			m.Tick(time.Duration(i+1)*time.Millisecond, time.Millisecond)
		}
		return float64(fwd.ProcessedBytes())
	}
	clean := build(false)
	hogged := build(true)
	if hogged > 0.5*clean {
		t.Fatalf("in-VM hog barely hurt the app: %.0f vs %.0f", hogged, clean)
	}
}

// countingOutput is an infinitely fast middlebox output.
type countingOutput struct{ bytes int64 }

func (c *countingOutput) Free() int64                   { return 1 << 40 }
func (c *countingOutput) Write(b dataplane.Batch) int64 { c.bytes += b.Bytes; return b.Bytes }
func (c *countingOutput) Pump(time.Duration)            {}

func TestOversubscriptionInflatesIOCosts(t *testing.T) {
	m := New(DefaultConfig("m0"))
	m.AddVM("vm0", 1.0, 1e9)
	tick(m, 5)
	if m.Stack.VMs["vm0"].Qemu.CostScale > 1.05 {
		t.Fatalf("idle machine inflated io costs: %v", m.Stack.VMs["vm0"].Qemu.CostScale)
	}
	for i := 0; i < 6; i++ {
		m.AddHog(&Hog{Name: "h", Kind: HogCPU, CPUDemandCores: 2})
	}
	tick(m, 5)
	if m.Stack.VMs["vm0"].Qemu.CostScale < 2 {
		t.Fatalf("overloaded machine did not inflate io costs: %v", m.Stack.VMs["vm0"].Qemu.CostScale)
	}
}
