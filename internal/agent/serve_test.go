package agent

import (
	"io"
	"net"
	"testing"
	"time"

	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// TestServeReadTimeoutShedsIdleConn: a connection that sends nothing is
// closed once ReadTimeout elapses, so a half-open controller cannot park
// a handler goroutine forever.
func TestServeReadTimeoutShedsIdleConn(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	reg := telemetry.NewRegistry()
	a.EnableTelemetry(reg)
	a.ReadTimeout = 100 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go a.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Send nothing; the agent must hang up on us.
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("idle connection read: %v; want EOF from agent-side close", err)
	}
	idle := reg.Counter("perfsight_agent_idle_disconnects_total", "")
	if idle.Value() != 1 {
		t.Fatalf("idle disconnect counter = %d; want 1", idle.Value())
	}

	// An active connection inside the timeout still works.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.Write(conn2, &wire.Message{Type: wire.TypePing, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if resp, err := wire.Read(conn2); err != nil || resp.Type != wire.TypePong {
		t.Fatalf("active connection broken: %+v, %v", resp, err)
	}
}

// TestServeMaxConnsRefusesOverCap: with MaxConns=1 a second concurrent
// connection is closed at accept, and the slot frees once the first
// connection ends.
func TestServeMaxConnsRefusesOverCap(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	reg := telemetry.NewRegistry()
	a.EnableTelemetry(reg)
	a.MaxConns = 1
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go a.Serve(ln)

	first, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Prove the first connection holds its slot (request served).
	if err := wire.Write(first, &wire.Message{Type: wire.TypePing, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if resp, err := wire.Read(first); err != nil || resp.Type != wire.TypePong {
		t.Fatalf("first connection: %+v, %v", resp, err)
	}

	second, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := second.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("over-cap connection read: %v; want refused (EOF)", err)
	}
	refused := reg.Counter("perfsight_agent_connections_refused_total", "")
	if refused.Value() != 1 {
		t.Fatalf("refused counter = %d; want 1", refused.Value())
	}

	// Close the first connection; its slot must become available again.
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		third, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		werr := wire.Write(third, &wire.Message{Type: wire.TypePing, ID: 2})
		var resp *wire.Message
		if werr == nil {
			third.SetReadDeadline(time.Now().Add(time.Second))
			resp, err = wire.Read(third)
		}
		third.Close()
		if werr == nil && err == nil && resp.Type == wire.TypePong {
			return // slot recycled
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after first connection closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFetchStatsConcurrent: the atomic query/busy accounting must hold up
// under parallel Fetches (it used to take the full write lock).
func TestFetchStatsConcurrent(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	const workers, per = 8, 25
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				a.Fetch(nil, nil, true)
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	queries, busy := a.Stats()
	if queries != workers*per {
		t.Fatalf("queries = %d; want %d", queries, workers*per)
	}
	if busy <= 0 {
		t.Fatal("busy time not accumulated")
	}
}
