package agent

import (
	"fmt"
	"os"
	"path/filepath"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	"perfsight/internal/procfs"
)

// Latencies carries per-channel emulated collection costs. The Calibrated
// set reproduces Figure 9's testbed measurements: device-file reads for
// network devices cost ~2 ms, everything else completes well under 500 µs.
type Latencies struct {
	NetDev  Latency
	Softnet Latency
	QEMULog Latency
	Mbox    Latency
	OVS     Latency
	Direct  Latency
}

// CalibratedLatencies mirrors the paper's measured per-channel costs.
func CalibratedLatencies() Latencies {
	return Latencies{
		NetDev:  Latency(2e6),   // 2 ms: TUN/pNIC device files
		Softnet: Latency(120e3), // 120 µs: /proc read
		QEMULog: Latency(250e3), // 250 µs: log append + tail
		Mbox:    Latency(180e3), // 180 µs: socket round trip
		OVS:     Latency(300e3), // 300 µs: control channel
		Direct:  Latency(80e3),  // 80 µs: in-kernel API
	}
}

// BuildOptions configures agent construction.
type BuildOptions struct {
	// FS is the virtual /proc tree; a fresh one is created if nil.
	FS *procfs.FS
	// QEMULogDir receives per-VM QEMU counter logs; a temp dir if "".
	QEMULogDir string
	// UseMboxSockets serves middlebox stats over stats sockets instead of
	// the direct API.
	UseMboxSockets bool
	// Latencies emulates per-channel costs (zero = full speed).
	Latencies Latencies
	// QEMULogExtra, when non-nil, adds a runtime-settable delay to every
	// QEMU log-tail fetch (the chaos layer's slow-disk injection point).
	QEMULogExtra *LatencyVar
	// Clock supplies record timestamps (nil = wall clock).
	Clock func() int64
	// FlowStats selects how vswitch adapters report per-flow traffic. The
	// zero value is FlowStatsExact — the legacy per-rule enumeration —
	// so existing construction sites behave as before; the agent binary
	// defaults its -flow-stats flag to sketch.
	FlowStats FlowStatsMode
	// Sketch sizes the flow summary when FlowStats is FlowStatsSketch
	// (zero fields take the dataplane defaults).
	Sketch dataplane.SketchConfig
}

// Build assembles the agent for a machine, mounting the virtual /proc
// files its kernel elements publish and wiring one adapter per element
// through that element's native channel. Rebuild after placement changes.
func Build(m *machine.Machine, opts BuildOptions) (*Agent, error) {
	fs := opts.FS
	if fs == nil {
		fs = procfs.New()
	}
	logDir := opts.QEMULogDir
	if logDir == "" {
		d, err := os.MkdirTemp("", "perfsight-qemu-")
		if err != nil {
			return nil, fmt.Errorf("agent: build %s: %w", m.ID(), err)
		}
		logDir = d
	}

	a := New(m.ID(), opts.Clock)
	lat := opts.Latencies
	stack := m.Stack

	// Host net devices: pNIC (eth0) and each VM's TUN (tap-<vm>) publish
	// into one /proc/net/dev file, read back by NetDev adapters.
	hostDevPath := "/proc/net/dev"
	pnic := stack.PNic
	vmIDs := m.VMs()
	fs.Mount(hostDevPath, func() []byte {
		devs := []procfs.NetDevStats{netdevFromRecord("eth0", pnic.Snapshot(0))}
		for _, id := range m.VMs() {
			if vm := m.VM(id); vm != nil {
				devs = append(devs, netdevFromRecord("tap-"+string(id), vm.Stack.Tun.Snapshot(0)))
			}
		}
		return procfs.FormatNetDev(devs)
	})
	a.Register(&NetDevAdapter{
		ID: pnic.ID(), DevKind: core.KindPNIC, FS: fs, Path: hostDevPath,
		Dev: "eth0", CapBps: pnic.RxCapBps, Latency: lat.NetDev,
	})

	// Host softnet file: one row per pCPU backlog queue.
	softnetPath := "/proc/net/softnet_stat"
	queues := stack.Backlogs.Queues()
	fs.Mount(softnetPath, func() []byte {
		rows := make([]procfs.SoftnetStats, len(queues))
		for i, q := range queues {
			rec := q.Snapshot(0)
			rows[i] = procfs.SoftnetStats{
				Processed: uint64(rec.GetOr(core.AttrTxPackets, 0)),
				Dropped:   uint64(rec.GetOr(core.AttrDropPackets, 0)),
				Queued:    uint64(rec.GetOr(core.AttrQueueLen, 0)),
			}
		}
		return procfs.FormatSoftnet(rows)
	})
	for i, q := range queues {
		a.Register(&SoftnetAdapter{
			ID: q.ID(), FS: fs, Path: softnetPath, Row: i,
			Cap: m.Cfg.Stack.BacklogCap, QueueKind: core.KindPCPUBacklog, Latency: lat.Softnet,
		})
	}

	// Driver and NAPI are unbuffered kernel routines: generic API.
	a.Register(&DirectAdapter{E: stack.Driver, Latency: lat.Direct})
	a.Register(&DirectAdapter{E: stack.Napi, Latency: lat.Direct})

	// Virtual switch over its control channel. In sketch mode the switch
	// feeds its datapath into a constant-memory flow summary, the adapter
	// fetches it via DUMP-SKETCH, and the agent advertises the capability
	// (old controllers still negotiate down to legacy enumeration).
	if opts.FlowStats == FlowStatsSketch {
		stack.VSwitch.EnableFlowSketch(opts.Sketch)
		a.AllowSketch = true
	}
	ovs := &OVSChannelServer{VS: stack.VSwitch}
	a.Register(&OVSAdapter{ID: stack.VSwitch.ID(), Dial: ovs.PipeDialer(), Latency: lat.OVS, Mode: opts.FlowStats})

	// Per-VM elements.
	for _, id := range vmIDs {
		vm := m.VM(id)
		if vm == nil {
			continue
		}
		vs := vm.Stack

		// TUN through the host device file.
		a.Register(&NetDevAdapter{
			ID: vs.Tun.ID(), DevKind: core.KindTUN, FS: fs, Path: hostDevPath,
			Dev: "tap-" + string(id), Latency: lat.NetDev,
		})

		// QEMU through its counter log.
		a.Register(&QEMULogAdapter{
			E:       vs.Qemu,
			Path:    filepath.Join(logDir, fmt.Sprintf("qemu-%s.log", id)),
			Latency: lat.QEMULog,
			Extra:   opts.QEMULogExtra,
		})

		// Guest kernel elements: vNIC via the guest's device file, backlog
		// via the guest softnet file, the rest via the generic API.
		guestDev := fmt.Sprintf("/vm/%s/proc/net/dev", id)
		vnic := vs.VNic
		fs.Mount(guestDev, func() []byte {
			return procfs.FormatNetDev([]procfs.NetDevStats{netdevFromRecord("eth0", vnic.Snapshot(0))})
		})
		a.Register(&NetDevAdapter{
			ID: vnic.ID(), DevKind: core.KindVNIC, FS: fs, Path: guestDev,
			Dev: "eth0", CapBps: vnic.RxCapBps, Latency: lat.NetDev,
		})

		guestSoftnet := fmt.Sprintf("/vm/%s/proc/net/softnet_stat", id)
		gq := vs.GuestQueue
		fs.Mount(guestSoftnet, func() []byte {
			rec := gq.Snapshot(0)
			return procfs.FormatSoftnet([]procfs.SoftnetStats{{
				Processed: uint64(rec.GetOr(core.AttrTxPackets, 0)),
				Dropped:   uint64(rec.GetOr(core.AttrDropPackets, 0)),
				Queued:    uint64(rec.GetOr(core.AttrQueueLen, 0)),
			}})
		})
		a.Register(&SoftnetAdapter{
			ID: gq.ID(), FS: fs, Path: guestSoftnet, Row: 0,
			Cap: m.Cfg.Stack.GuestBacklog, QueueKind: core.KindVCPUBacklog, Latency: lat.Softnet,
		})

		a.Register(&DirectAdapter{E: vs.Driver, Latency: lat.Direct})
		a.Register(&DirectAdapter{E: vs.GuestNapi, Latency: lat.Direct})
		a.Register(&DirectAdapter{E: vs.Socket, Latency: lat.Direct})

		// Middlebox software: socket channel or direct.
		for _, app := range vm.Apps {
			el := appAsElement{app}
			if opts.UseMboxSockets {
				srv := &StatsServer{E: el}
				a.Register(&MboxSocketAdapter{ID: app.ID(), Dial: srv.PipeDialer(), Latency: lat.Mbox})
			} else {
				a.Register(&DirectAdapter{E: el, Latency: lat.Mbox})
			}
		}
	}

	// Machine utilization gauge.
	a.Register(&DirectAdapter{E: m.HostElement(), Latency: lat.Direct})
	return a, nil
}

// appAsElement adapts a machine.App to core.Element.
type appAsElement struct{ a machine.App }

func (e appAsElement) ID() core.ElementID            { return e.a.ID() }
func (e appAsElement) Kind() core.ElementKind        { return core.KindMiddlebox }
func (e appAsElement) Snapshot(ts int64) core.Record { return e.a.Snapshot(ts) }

// netdevFromRecord converts an element snapshot into device-file counters.
func netdevFromRecord(name string, rec core.Record) procfs.NetDevStats {
	return procfs.NetDevStats{
		Name:      name,
		RxBytes:   uint64(rec.GetOr(core.AttrRxBytes, 0)),
		RxPackets: uint64(rec.GetOr(core.AttrRxPackets, 0)),
		RxDropped: uint64(rec.GetOr(core.AttrDropPackets, 0)),
		TxBytes:   uint64(rec.GetOr(core.AttrTxBytes, 0)),
		TxPackets: uint64(rec.GetOr(core.AttrTxPackets, 0)),
		QueueLen:  int(rec.GetOr(core.AttrQueueLen, 0)),
		QueueCap:  int(rec.GetOr(core.AttrQueueCap, 0)),
	}
}
