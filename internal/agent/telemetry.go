package agent

import (
	"sync"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// metrics is the agent's self-telemetry block (§4.2 argues the monitor
// itself must stay cheap and accountable; these series make that claim
// checkable on a live agent). All fields are pre-resolved at
// EnableTelemetry time so the per-query cost is a few atomic updates.
type metrics struct {
	reg *telemetry.Registry

	queries      *telemetry.Counter
	queryErrors  *telemetry.Counter
	queryDur     *telemetry.Histogram
	wireRead     *telemetry.Counter
	wireWrite    *telemetry.Counter
	conns        *telemetry.Counter
	connsRefused *telemetry.Counter
	idleClosed   *telemetry.Counter
	bytesRx      *telemetry.Counter
	bytesTx      *telemetry.Counter
	codecV2      *telemetry.Counter
	codecJSON    *telemetry.Counter

	streams         *telemetry.Counter
	streamFrames    *telemetry.Counter
	streamThrottled *telemetry.Counter

	reqMu    sync.RWMutex
	requests map[wire.MsgType]*telemetry.Counter

	gatherMu sync.RWMutex
	gather   map[core.ElementKind]*telemetry.Histogram
}

// EnableTelemetry wires the agent's self-metrics into reg and returns
// the agent for chaining. Call once at startup, before Serve; the
// instrumented query path is benchmarked (BenchmarkInstrumentedQuery)
// to stay within a few percent of the bare one.
func (a *Agent) EnableTelemetry(reg *telemetry.Registry) *Agent {
	m := &metrics{
		reg: reg,
		queries: reg.Counter("perfsight_agent_queries_total",
			"statistics queries answered"),
		queryErrors: reg.Counter("perfsight_agent_query_errors_total",
			"queries that returned an error (unknown element, adapter failure)"),
		queryDur: reg.Histogram("perfsight_agent_query_duration_ns",
			"full gather latency per query, nanoseconds"),
		wireRead: reg.Counter("perfsight_agent_wire_errors_total",
			"protocol frame failures", telemetry.Label{Key: "dir", Value: "read"}),
		wireWrite: reg.Counter("perfsight_agent_wire_errors_total",
			"protocol frame failures", telemetry.Label{Key: "dir", Value: "write"}),
		conns: reg.Counter("perfsight_agent_connections_total",
			"controller connections accepted"),
		connsRefused: reg.Counter("perfsight_agent_connections_refused_total",
			"controller connections closed at accept because MaxConns was reached"),
		idleClosed: reg.Counter("perfsight_agent_idle_disconnects_total",
			"served connections closed after sitting idle past ReadTimeout"),
		bytesRx: reg.Counter("perfsight_agent_wire_bytes_total",
			"frame bytes exchanged with controllers, including the 4-byte length header",
			telemetry.Label{Key: "dir", Value: "rx"}),
		bytesTx: reg.Counter("perfsight_agent_wire_bytes_total",
			"frame bytes exchanged with controllers, including the 4-byte length header",
			telemetry.Label{Key: "dir", Value: "tx"}),
		codecV2: reg.Counter("perfsight_agent_codec_negotiations_total",
			"hello exchanges by granted wire codec",
			telemetry.Label{Key: "codec", Value: wire.CodecV2}),
		codecJSON: reg.Counter("perfsight_agent_codec_negotiations_total",
			"hello exchanges by granted wire codec",
			telemetry.Label{Key: "codec", Value: wire.CodecJSON}),
		streams: reg.Counter("perfsight_agent_streams_total",
			"connections converted to push streaming by stream_start"),
		streamFrames: reg.Counter("perfsight_agent_stream_frames_total",
			"stream_data batches pushed to controllers"),
		streamThrottled: reg.Counter("perfsight_agent_stream_throttles_total",
			"non-zero backpressure throttles received from controllers"),
		requests: make(map[wire.MsgType]*telemetry.Counter),
		gather:   make(map[core.ElementKind]*telemetry.Histogram),
	}
	reg.GaugeFunc("perfsight_agent_elements",
		"elements registered with the agent", func() float64 {
			a.mu.RLock()
			defer a.mu.RUnlock()
			return float64(len(a.adapters))
		})
	reg.GaugeFunc("perfsight_agent_busy_seconds",
		"cumulative time spent gathering statistics (Fig 16 overhead)", func() float64 {
			_, busy := a.Stats()
			return busy.Seconds()
		})
	// Schema-registry pressure: extension-attr population and cap
	// rejections. Before this series, hitting the 16,384-name cap (a
	// production tenant mix in legacy exact flow mode) silently dropped
	// attributes.
	reg.GaugeFunc("perfsight_schema_ext_attrs",
		"extension attributes registered in the process-wide schema registry", func() float64 {
			return float64(core.ExtAttrCount())
		})
	reg.GaugeFunc("perfsight_schema_ext_rejected_total",
		"attribute registrations refused because the extension registry hit its cap", func() float64 {
			return float64(core.ExtRejected())
		})
	a.tel.Store(m)
	return a
}

// observeGather records one adapter fetch, bucketed by element kind (the
// per-channel cost structure of Fig 9: device files vs /proc vs sockets).
func (m *metrics) observeGather(kind core.ElementKind, d time.Duration) {
	m.gatherMu.RLock()
	h := m.gather[kind]
	m.gatherMu.RUnlock()
	if h == nil {
		m.gatherMu.Lock()
		if h = m.gather[kind]; h == nil {
			h = m.reg.Histogram("perfsight_agent_gather_duration_ns",
				"per-adapter statistics gather latency, nanoseconds",
				telemetry.Label{Key: "channel", Value: kind.String()})
			m.gather[kind] = h
		}
		m.gatherMu.Unlock()
	}
	h.Observe(float64(d.Nanoseconds()))
}

// countRequest bumps the per-message-type request counter.
func (m *metrics) countRequest(t wire.MsgType) {
	m.reqMu.RLock()
	c := m.requests[t]
	m.reqMu.RUnlock()
	if c == nil {
		m.reqMu.Lock()
		if c = m.requests[t]; c == nil {
			c = m.reg.Counter("perfsight_agent_requests_total",
				"protocol requests dispatched, by message type",
				telemetry.Label{Key: "type", Value: string(t)})
			m.requests[t] = c
		}
		m.reqMu.Unlock()
	}
	c.Inc()
}
