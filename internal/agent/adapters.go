// Package agent implements the per-physical-server PerfSight agent (§4.2):
// it interrogates the machine's dataplane elements through channels
// tailored to each element type — device files and /proc for kernel
// elements, an OpenFlow-style control channel for the virtual switch, log
// files for QEMU, sockets for middlebox software — and serves the unified
// record format to the controller over TCP.
package agent

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/procfs"
)

// Adapter fetches one element's statistics through its native channel.
type Adapter interface {
	ElementID() core.ElementID
	Kind() core.ElementKind
	Fetch(ts int64) (core.Record, error)
}

// Latency emulates a collection channel's round-trip cost. Zero (the
// default) means full speed; the Fig 9 experiment sets the calibrated
// per-channel costs of the paper's testbed. Sub-millisecond delays spin
// instead of sleeping — time.Sleep's scheduler granularity would otherwise
// distort the Fig 9 shape.
type Latency time.Duration

func (l Latency) apply() {
	if l <= 0 {
		return
	}
	d := time.Duration(l)
	if d >= 2*time.Millisecond {
		time.Sleep(d)
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}

// LatencyVar is a runtime-settable latency shared by reference across
// adapters: the chaos layer's handle for degrading a channel mid-run (a
// disk gone slow under the QEMU log tail) without rebuilding the agent.
// A nil *LatencyVar applies nothing.
type LatencyVar struct{ ns atomic.Int64 }

// Set updates the latency; safe concurrently with Fetch.
func (v *LatencyVar) Set(d time.Duration) { v.ns.Store(int64(d)) }

// Get returns the current latency.
func (v *LatencyVar) Get() Latency {
	if v == nil {
		return 0
	}
	return Latency(v.ns.Load())
}

func (v *LatencyVar) apply() { v.Get().apply() }

// DirectAdapter reads an element through the generic element-agent API —
// used for elements instrumented with PerfSight's own counters (guest
// stack elements, and middleboxes when not served over a socket).
type DirectAdapter struct {
	E       core.Element
	Latency Latency
}

// ElementID implements Adapter.
func (a *DirectAdapter) ElementID() core.ElementID { return a.E.ID() }

// Kind implements Adapter.
func (a *DirectAdapter) Kind() core.ElementKind { return a.E.Kind() }

// Fetch implements Adapter.
func (a *DirectAdapter) Fetch(ts int64) (core.Record, error) {
	a.Latency.apply()
	return a.E.Snapshot(ts), nil
}

// NetDevAdapter reads a net_device-backed element (pNIC, TUN, vNIC) by
// reading and parsing its device file in the virtual /proc tree, the way
// ifconfig does (§6).
type NetDevAdapter struct {
	ID      core.ElementID
	DevKind core.ElementKind
	FS      *procfs.FS
	Path    string
	Dev     string // device name within the file
	CapBps  float64
	Latency Latency
}

// ElementID implements Adapter.
func (a *NetDevAdapter) ElementID() core.ElementID { return a.ID }

// Kind implements Adapter.
func (a *NetDevAdapter) Kind() core.ElementKind { return a.DevKind }

// Fetch implements Adapter.
func (a *NetDevAdapter) Fetch(ts int64) (core.Record, error) {
	a.Latency.apply()
	data, err := a.FS.ReadFile(a.Path)
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: netdev %s: %w", a.ID, err)
	}
	devs, err := procfs.ParseNetDev(data)
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: netdev %s: %w", a.ID, err)
	}
	for _, d := range devs {
		if d.Name != a.Dev {
			continue
		}
		rec := core.Record{Timestamp: ts, Element: a.ID}
		rec.Attrs = []core.Attr{
			{ID: core.AttrKind, Value: float64(a.DevKind)},
			{ID: core.AttrRxPackets, Value: float64(d.RxPackets)},
			{ID: core.AttrRxBytes, Value: float64(d.RxBytes)},
			{ID: core.AttrTxPackets, Value: float64(d.TxPackets)},
			{ID: core.AttrTxBytes, Value: float64(d.TxBytes)},
			{ID: core.AttrDropPackets, Value: float64(d.RxDropped + d.TxDropped)},
			{ID: core.AttrQueueLen, Value: float64(d.QueueLen)},
			{ID: core.AttrQueueCap, Value: float64(d.QueueCap)},
		}
		if a.CapBps > 0 {
			rec.Attrs = append(rec.Attrs, core.Attr{ID: core.AttrCapacityBps, Value: a.CapBps})
		}
		return rec, nil
	}
	return core.Record{}, fmt.Errorf("agent: netdev %s: device %q not in %s", a.ID, a.Dev, a.Path)
}

// SoftnetAdapter reads one per-CPU backlog queue's row of the softnet
// statistics file (§6: "accessible from the /proc file system").
type SoftnetAdapter struct {
	ID   core.ElementID
	FS   *procfs.FS
	Path string
	Row  int
	Cap  int
	// QueueKind is KindPCPUBacklog on the host, KindVCPUBacklog in guests.
	QueueKind core.ElementKind
	Latency   Latency
}

// ElementID implements Adapter.
func (a *SoftnetAdapter) ElementID() core.ElementID { return a.ID }

// Kind implements Adapter.
func (a *SoftnetAdapter) Kind() core.ElementKind { return a.QueueKind }

// Fetch implements Adapter.
func (a *SoftnetAdapter) Fetch(ts int64) (core.Record, error) {
	a.Latency.apply()
	data, err := a.FS.ReadFile(a.Path)
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: softnet %s: %w", a.ID, err)
	}
	rows, err := procfs.ParseSoftnet(data)
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: softnet %s: %w", a.ID, err)
	}
	if a.Row < 0 || a.Row >= len(rows) {
		return core.Record{}, fmt.Errorf("agent: softnet %s: row %d of %d", a.ID, a.Row, len(rows))
	}
	r := rows[a.Row]
	return core.Record{
		Timestamp: ts,
		Element:   a.ID,
		Attrs: []core.Attr{
			{ID: core.AttrKind, Value: float64(a.QueueKind)},
			{ID: core.AttrRxPackets, Value: float64(r.Processed + r.Dropped)},
			{ID: core.AttrTxPackets, Value: float64(r.Processed)},
			{ID: core.AttrDropPackets, Value: float64(r.Dropped)},
			{ID: core.AttrQueueLen, Value: float64(r.Queued)},
			{ID: core.AttrQueueCap, Value: float64(a.Cap)},
		},
	}, nil
}

// QEMULogAdapter collects a hypervisor-I/O element's counters from a log
// file: the instrumented QEMU appends counter lines, and the agent parses
// the most recent one (§6: "We write these counters into logs and
// PerfSight fetches the counters' values from the logs").
type QEMULogAdapter struct {
	E       core.Element
	Path    string
	Latency Latency
	// Extra is an optional runtime-settable delay on top of Latency — the
	// log tail's exposure to disk health (chaos slow-disk injection).
	Extra *LatencyVar

	mu sync.Mutex
}

// ElementID implements Adapter.
func (a *QEMULogAdapter) ElementID() core.ElementID { return a.E.ID() }

// Kind implements Adapter.
func (a *QEMULogAdapter) Kind() core.ElementKind { return a.E.Kind() }

// Fetch implements Adapter: the instrumented QEMU flushes a log line, then
// the agent tails and parses it.
func (a *QEMULogAdapter) Fetch(ts int64) (core.Record, error) {
	a.Latency.apply()
	a.Extra.apply()
	a.mu.Lock()
	defer a.mu.Unlock()

	rec := a.E.Snapshot(ts)
	line, err := json.Marshal(rec)
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: qemulog %s: marshal: %w", a.E.ID(), err)
	}
	// Rotate before the log grows unbounded (QEMU's logrotate analogue).
	if st, err := os.Stat(a.Path); err == nil && st.Size() > 64<<10 {
		if err := os.Truncate(a.Path, 0); err != nil {
			return core.Record{}, fmt.Errorf("agent: qemulog %s: rotate: %w", a.E.ID(), err)
		}
	}
	f, err := os.OpenFile(a.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: qemulog %s: %w", a.E.ID(), err)
	}
	_, werr := f.Write(append(line, '\n'))
	cerr := f.Close()
	if werr != nil {
		return core.Record{}, fmt.Errorf("agent: qemulog %s: append: %w", a.E.ID(), werr)
	}
	if cerr != nil {
		return core.Record{}, fmt.Errorf("agent: qemulog %s: close: %w", a.E.ID(), cerr)
	}

	data, err := os.ReadFile(a.Path)
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: qemulog %s: read: %w", a.E.ID(), err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	last := lines[len(lines)-1]
	var out core.Record
	if err := json.Unmarshal([]byte(last), &out); err != nil {
		return core.Record{}, fmt.Errorf("agent: qemulog %s: parse %q: %w", a.E.ID(), last, err)
	}
	return out, nil
}

// MboxSocketAdapter queries middlebox software over a socket (§6: "we use
// sockets between middlebox software and the agent"). StatsServer is the
// middlebox side; the adapter dials through the provided dialer (net.Pipe
// in simulations, TCP for live deployments).
type MboxSocketAdapter struct {
	ID      core.ElementID
	Dial    func() (net.Conn, error)
	Latency Latency
}

// ElementID implements Adapter.
func (a *MboxSocketAdapter) ElementID() core.ElementID { return a.ID }

// Kind implements Adapter.
func (a *MboxSocketAdapter) Kind() core.ElementKind { return core.KindMiddlebox }

// Fetch implements Adapter.
func (a *MboxSocketAdapter) Fetch(ts int64) (core.Record, error) {
	a.Latency.apply()
	conn, err := a.Dial()
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: mbox %s: dial: %w", a.ID, err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "STATS %d\n", ts); err != nil {
		return core.Record{}, fmt.Errorf("agent: mbox %s: send: %w", a.ID, err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: mbox %s: recv: %w", a.ID, err)
	}
	var rec core.Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return core.Record{}, fmt.Errorf("agent: mbox %s: parse: %w", a.ID, err)
	}
	return rec, nil
}

// StatsServer answers STATS requests for one middlebox element. Run serves
// a single connection; ServeListener accepts in a loop.
type StatsServer struct {
	E core.Element
}

// Handle serves one connection until it closes.
func (s *StatsServer) Handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var ts int64
		if _, err := fmt.Sscanf(sc.Text(), "STATS %d", &ts); err != nil {
			fmt.Fprintf(conn, "{\"error\":%q}\n", err.Error())
			continue
		}
		line, err := json.Marshal(s.E.Snapshot(ts))
		if err != nil {
			fmt.Fprintf(conn, "{\"error\":%q}\n", err.Error())
			continue
		}
		conn.Write(append(line, '\n'))
	}
}

// PipeDialer returns a dialer connected to the stats server through an
// in-memory pipe, spawning a handler per dial.
func (s *StatsServer) PipeDialer() func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, server := net.Pipe()
		go s.Handle(server)
		return client, nil
	}
}
