package agent

import (
	"perfsight/internal/wire"
)

// Span support: when a controller negotiates the spans capability (v2
// sessions only), the agent decorates every query response and pushed
// stream_data frame with a compact span list decomposing its handling
// time per collection channel — one child span per adapter fetch, under
// one root span covering the whole dispatch. Span IDs are frame-local
// (root is always 1); the controller remaps them into its trace and
// skew-corrects the timestamps, which are on the agent's clock.

// maxAgentSpans caps the per-frame span list. The controller-side trace
// keeps at most telemetry.MaxSpansPerTrace spans anyway; capping here
// too bounds the wire cost of a sweep over a machine with hundreds of
// elements.
const maxAgentSpans = 32

// ChannelNamer lets an adapter name its collection channel for span
// annotation — the per-channel cost structure of Fig 9 ("ovs:DUMP",
// "procfs:netdev", ...). legacy reports whether the fetch was demoted to
// the legacy per-rule enumeration for a sketch-blind peer. Adapters
// without the method fall back to their element kind.
type ChannelNamer interface {
	ChannelName(legacy bool) string
}

// channelName resolves an adapter's span name without allocating: known
// adapters return constants, the fallback is the kind's name.
func channelName(ad Adapter, legacy bool) string {
	if cn, ok := ad.(ChannelNamer); ok {
		return cn.ChannelName(legacy)
	}
	return ad.Kind().String()
}

// ChannelName implements ChannelNamer: the vswitch control channel,
// named by the command actually issued.
func (a *OVSAdapter) ChannelName(legacy bool) string {
	if !legacy && a.Mode == FlowStatsSketch {
		return "ovs:DUMP-SKETCH"
	}
	return "ovs:DUMP"
}

// ChannelName implements ChannelNamer.
func (a *NetDevAdapter) ChannelName(bool) string { return "procfs:netdev" }

// ChannelName implements ChannelNamer.
func (a *SoftnetAdapter) ChannelName(bool) string { return "procfs:softnet" }

// ChannelName implements ChannelNamer.
func (a *QEMULogAdapter) ChannelName(bool) string { return "log:qemu" }

// ChannelName implements ChannelNamer.
func (a *MboxSocketAdapter) ChannelName(bool) string { return "socket:mbox" }

// ChannelName implements ChannelNamer: in-process snapshot of an
// instrumented element.
func (a *DirectAdapter) ChannelName(bool) string { return "snapshot:encode" }

// spanBuf accumulates one frame's spans into a per-connection slice so
// steady-state span decoration reuses its backing array. Slot 0 is
// reserved for the root span (ID 1, Parent 0), written last by root()
// once the dispatch duration is known; children parent under it.
type spanBuf struct {
	spans   []wire.Span
	dropped int
}

// begin resets the buffer and reserves the root slot.
func (b *spanBuf) begin() {
	b.spans = append(b.spans[:0], wire.Span{ID: 1})
	b.dropped = 0
}

// child appends one channel span under the root. Over-cap spans are
// dropped (the controller tracks its own drop budget).
func (b *spanBuf) child(name string, startNS, durNS int64, status string) {
	if len(b.spans) >= maxAgentSpans {
		b.dropped++
		return
	}
	b.spans = append(b.spans, wire.Span{
		ID: uint64(len(b.spans)) + 1, Parent: 1,
		Name: name, StartNS: startNS, DurNS: durNS, Status: status,
	})
}

// root finalizes slot 0 with the whole dispatch's extent.
func (b *spanBuf) root(name string, startNS, durNS int64) {
	b.spans[0] = wire.Span{ID: 1, Name: name, StartNS: startNS, DurNS: durNS}
}
