package agent

import (
	"fmt"
	"testing"
)

func TestParseRuleLine(t *testing.T) {
	cases := []struct {
		in         string
		flow       string
		pkts, byts uint64
		ok         bool
	}{
		{"flow=f1 packets=100 bytes=144800", "f1", 100, 144800, true},
		{"flow=tenantA/http packets=0 bytes=0", "tenantA/http", 0, 0, true},
		{"flow=f1 packets=18446744073709551615 bytes=1", "f1", 1<<64 - 1, 1, true},
		{"flow=f1 packets=18446744073709551616 bytes=1", "", 0, 0, false}, // uint64 overflow
		{"flow=f1 packets=1e3 bytes=1", "", 0, 0, false},
		{"flow=f1 packets= bytes=1", "", 0, 0, false},
		{"flow= packets=1 bytes=1", "", 0, 0, false},
		{"flow=f1 packets=1", "", 0, 0, false},
		{"flow=f1 bytes=1 packets=1", "", 0, 0, false}, // field order is fixed
		{"packets=1 bytes=1", "", 0, 0, false},
		{"", "", 0, 0, false},
	}
	for _, c := range cases {
		flow, pkts, byts, ok := parseRuleLine([]byte(c.in))
		if ok != c.ok {
			t.Errorf("parseRuleLine(%q) ok=%v; want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if string(flow) != c.flow || pkts != c.pkts || byts != c.byts {
			t.Errorf("parseRuleLine(%q) = %q,%d,%d; want %q,%d,%d",
				c.in, flow, pkts, byts, c.flow, c.pkts, c.byts)
		}
	}
}

// The manual parser must stay allocation-free: at legacy enumeration
// scale it runs once per flow per sweep.
func TestParseRuleLineAllocBudget(t *testing.T) {
	line := []byte("flow=tenantA/flow-123 packets=123456789 bytes=178764830272")
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, ok := parseRuleLine(line); !ok {
			t.Fatal("parse failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("parseRuleLine allocates %v/op; want 0", allocs)
	}
}

// BenchmarkOVSRuleParse is the manual strings.Cut/strconv-style parser
// referenced by the parseRuleLine comment. Compare with the Sscanf
// variant below — the form the adapter used before.
func BenchmarkOVSRuleParse(b *testing.B) {
	line := []byte("flow=tenantA/flow-123 packets=123456789 bytes=178764830272")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := parseRuleLine(line); !ok {
			b.Fatal("parse failed")
		}
	}
}

// BenchmarkOVSRuleParseSscanf is the old fmt.Sscanf implementation, kept
// only as the benchmark baseline the manual parser replaced.
func BenchmarkOVSRuleParseSscanf(b *testing.B) {
	line := "flow=tenantA/flow-123 packets=123456789 bytes=178764830272"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var flow string
		var pkts, byts uint64
		if _, err := fmt.Sscanf(line, "flow=%s packets=%d bytes=%d", &flow, &pkts, &byts); err != nil {
			b.Fatal(err)
		}
	}
}
