package agent

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/procfs"
	"perfsight/internal/wire"
)

// testMachine builds a machine with one sink VM and some traffic counters.
func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m := machine.New(machine.DefaultConfig("m0"))
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	m.AddVM("vm0", 1.0, 1e9, sink)
	m.Stack.VSwitch.InstallToVM("f1", "vm0")
	// Push some traffic through so counters are non-zero.
	m.OfferWire([]dataplane.Batch{{Flow: "f1", Packets: 100, Bytes: 100 * 1448}}, time.Millisecond)
	for i := 0; i < 50; i++ {
		m.Tick(time.Duration(i+1)*time.Millisecond, time.Millisecond)
	}
	return m
}

func buildTestAgent(t *testing.T, m *machine.Machine, opts BuildOptions) *Agent {
	t.Helper()
	if opts.QEMULogDir == "" {
		opts.QEMULogDir = t.TempDir()
	}
	a, err := Build(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildRegistersAllChannels(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	ids := a.Elements()
	want := []core.ElementID{
		"m0/pnic", "m0/pnic_driver", "m0/napi", "m0/vswitch", "m0/cpu0/backlog",
		"m0/vm0/tun", "m0/vm0/qemu", "m0/vm0/guest/vnic", "m0/vm0/guest/backlog",
		"m0/vm0/guest/socket", "m0/vm0/app", "m0/host",
	}
	have := map[core.ElementID]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("element %s not registered (have %v)", w, ids)
		}
	}
}

func TestNetDevAdapterThroughFile(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	recs, err := a.Fetch([]core.ElementID{"m0/pnic"}, nil, false)
	if err != nil || len(recs) != 1 {
		t.Fatalf("fetch pnic: %v, %v", recs, err)
	}
	rec := recs[0]
	if rec.Kind() != core.KindPNIC {
		t.Fatalf("kind %v", rec.Kind())
	}
	if rec.GetOr(core.AttrRxPackets, 0) == 0 {
		t.Fatal("pNIC rx counter zero after traffic")
	}
	// The record must agree with the element's own counters.
	direct := m.Stack.PNic.Snapshot(0)
	if rec.GetOr(core.AttrRxBytes, -1) != direct.GetOr(core.AttrRxBytes, -2) {
		t.Fatal("file path and direct path disagree")
	}
}

func TestTUNAdapterSharesHostDevFile(t *testing.T) {
	m := testMachine(t)
	fs := procfs.New()
	a := buildTestAgent(t, m, BuildOptions{FS: fs})
	if _, err := fs.ReadFile("/proc/net/dev"); err != nil {
		t.Fatal("host netdev file not mounted")
	}
	recs, err := a.Fetch([]core.ElementID{"m0/vm0/tun"}, nil, false)
	if err != nil || len(recs) != 1 {
		t.Fatalf("fetch tun: %v", err)
	}
	if recs[0].GetOr(core.AttrQueueCap, 0) == 0 {
		t.Fatal("tun queue capacity missing")
	}
}

func TestSoftnetAdapterRows(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	recs, err := a.Fetch([]core.ElementID{"m0/cpu0/backlog", "m0/cpu7/backlog"}, nil, false)
	if err != nil || len(recs) != 2 {
		t.Fatalf("fetch backlogs: %v, %v", recs, err)
	}
	for _, r := range recs {
		if r.Kind() != core.KindPCPUBacklog {
			t.Fatalf("kind %v", r.Kind())
		}
		if _, ok := r.Get(core.AttrDropPackets); !ok {
			t.Fatal("backlog drop counter missing")
		}
	}
}

func TestQEMULogAdapterWritesAndParses(t *testing.T) {
	m := testMachine(t)
	dir := t.TempDir()
	a := buildTestAgent(t, m, BuildOptions{QEMULogDir: dir})
	recs, err := a.Fetch([]core.ElementID{"m0/vm0/qemu"}, nil, false)
	if err != nil || len(recs) != 1 {
		t.Fatalf("fetch qemu: %v", err)
	}
	if recs[0].GetOr(core.AttrRxPackets, 0) == 0 {
		t.Fatal("qemu counters zero after traffic")
	}
	data, err := os.ReadFile(filepath.Join(dir, "qemu-vm0.log"))
	if err != nil {
		t.Fatalf("log file missing: %v", err)
	}
	if !strings.Contains(string(data), "m0/vm0/qemu") {
		t.Fatal("log line lacks element ID")
	}
}

func TestQEMULogRotation(t *testing.T) {
	m := testMachine(t)
	dir := t.TempDir()
	a := buildTestAgent(t, m, BuildOptions{QEMULogDir: dir})
	path := filepath.Join(dir, "qemu-vm0.log")
	for i := 0; i < 500; i++ {
		if _, err := a.Fetch([]core.ElementID{"m0/vm0/qemu"}, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 128<<10 {
		t.Fatalf("log grew unbounded: %d bytes", st.Size())
	}
}

func TestOVSAdapterRules(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	recs, err := a.Fetch([]core.ElementID{"m0/vswitch"}, nil, false)
	if err != nil || len(recs) != 1 {
		t.Fatalf("fetch vswitch: %v", err)
	}
	if _, ok := recs[0].Get(core.AttrIDFor("rule_f1_packets")); !ok {
		t.Fatalf("per-rule counter missing: %v", recs[0].Attrs)
	}
	if recs[0].GetOr(core.AttrIDFor("rule_f1_packets"), 0) == 0 {
		t.Fatal("rule counter zero after traffic")
	}
}

func TestMboxSocketAdapter(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{UseMboxSockets: true})
	recs, err := a.Fetch([]core.ElementID{"m0/vm0/app"}, nil, false)
	if err != nil || len(recs) != 1 {
		t.Fatalf("fetch app: %v", err)
	}
	if recs[0].GetOr(core.AttrType, 0) != 1 {
		t.Fatal("middlebox type tag missing over socket channel")
	}
	if _, ok := recs[0].Get(core.AttrInTimeNS); !ok {
		t.Fatal("I/O time counters missing over socket channel")
	}
}

func TestFetchAttrsFilterAndClock(t *testing.T) {
	m := testMachine(t)
	clock := func() int64 { return 777 }
	a := buildTestAgent(t, m, BuildOptions{Clock: clock})
	recs, err := a.Fetch([]core.ElementID{"m0/pnic"}, []string{core.AttrName(core.AttrRxBytes)}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0].Attrs) != 1 || recs[0].Attrs[0].ID != core.AttrRxBytes {
		t.Fatalf("filter leaked attrs: %v", recs[0].Attrs)
	}
	if recs[0].Timestamp != 777 {
		t.Fatalf("timestamp %d; want injected clock", recs[0].Timestamp)
	}
}

func TestFetchUnknownElementPartialResult(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	recs, err := a.Fetch([]core.ElementID{"m0/pnic", "m0/ghost"}, nil, false)
	if err == nil {
		t.Fatal("unknown element did not error")
	}
	if len(recs) != 1 {
		t.Fatalf("partial results: %d", len(recs))
	}
}

func TestFetchAll(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	recs, err := a.Fetch(nil, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(a.Elements()) {
		t.Fatalf("all fetch returned %d of %d", len(recs), len(a.Elements()))
	}
	queries, busy := a.Stats()
	if queries == 0 || busy <= 0 {
		t.Fatal("agent self-stats not tracked")
	}
}

func TestAgentServeTCP(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go a.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Ping.
	if err := wire.Write(conn, &wire.Message{Type: wire.TypePing, ID: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.Read(conn)
	if err != nil || resp.Type != wire.TypePong || resp.Machine != "m0" {
		t.Fatalf("ping: %+v, %v", resp, err)
	}

	// Inventory.
	wire.Write(conn, &wire.Message{Type: wire.TypeListElements, ID: 2})
	resp, err = wire.Read(conn)
	if err != nil || resp.Type != wire.TypeElementList || len(resp.Elements) == 0 {
		t.Fatalf("list: %+v, %v", resp, err)
	}

	// Query.
	wire.Write(conn, &wire.Message{Type: wire.TypeQuery, ID: 3,
		Query: &wire.Query{Elements: []core.ElementID{"m0/pnic"}}})
	resp, err = wire.Read(conn)
	if err != nil || resp.Type != wire.TypeResponse || len(resp.Records) != 1 {
		t.Fatalf("query: %+v, %v", resp, err)
	}
	if resp.ID != 3 {
		t.Fatalf("response id %d", resp.ID)
	}

	// Unknown type yields a typed error, connection survives.
	wire.Write(conn, &wire.Message{Type: "bogus", ID: 4})
	resp, err = wire.Read(conn)
	if err != nil || resp.Type != wire.TypeError {
		t.Fatalf("bogus type: %+v, %v", resp, err)
	}
	wire.Write(conn, &wire.Message{Type: wire.TypePing, ID: 5})
	if resp, err = wire.Read(conn); err != nil || resp.Type != wire.TypePong {
		t.Fatal("connection did not survive a bad message")
	}
}

func TestAgentMalformedFrameClosesConnOnly(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go a.Serve(ln)

	bad, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	bad.Write([]byte{0xff, 0xff, 0xff, 0xff}) // absurd frame length
	buf := make([]byte, 1)
	bad.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bad.Read(buf); err == nil {
		t.Fatal("agent kept a poisoned connection open")
	}
	bad.Close()

	// A fresh connection still works.
	good, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	wire.Write(good, &wire.Message{Type: wire.TypePing, ID: 1})
	if resp, err := wire.Read(good); err != nil || resp.Type != wire.TypePong {
		t.Fatalf("agent died after malformed frame: %v", err)
	}
}

func TestUnregisterRemovesElement(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	a.Unregister("m0/pnic")
	if _, err := a.Fetch([]core.ElementID{"m0/pnic"}, nil, false); err == nil {
		t.Fatal("unregistered element still served")
	}
}

func TestCalibratedLatenciesOrdering(t *testing.T) {
	lat := CalibratedLatencies()
	if lat.NetDev <= lat.Softnet || lat.NetDev <= lat.Mbox || lat.NetDev <= lat.OVS {
		t.Fatal("device files must be the slowest channel (Fig 9)")
	}
	for _, l := range []Latency{lat.Softnet, lat.QEMULog, lat.Mbox, lat.OVS, lat.Direct} {
		if time.Duration(l) >= 500*time.Microsecond {
			t.Fatalf("non-device channel %v >= 500us", time.Duration(l))
		}
	}
}
