package agent

import (
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// Agent gathers statistics from the elements of one physical server and
// answers controller queries. To reduce overhead it pulls counter values
// from elements only when queried (§4.2).
type Agent struct {
	machine core.MachineID
	clock   func() int64

	mu       sync.RWMutex
	adapters map[core.ElementID]Adapter

	queryCount uint64
	busyNS     int64
}

// New builds an agent for a machine. clock supplies record timestamps
// (virtual time in simulations, wall clock live); nil uses wall clock.
func New(machine core.MachineID, clock func() int64) *Agent {
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	return &Agent{
		machine:  machine,
		clock:    clock,
		adapters: make(map[core.ElementID]Adapter),
	}
}

// Machine returns the agent's server identity.
func (a *Agent) Machine() core.MachineID { return a.machine }

// Register attaches an element adapter.
func (a *Agent) Register(ad Adapter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.adapters[ad.ElementID()] = ad
}

// Unregister removes an element (VM migrated away).
func (a *Agent) Unregister(id core.ElementID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.adapters, id)
}

// Elements returns the sorted inventory.
func (a *Agent) Elements() []core.ElementID {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]core.ElementID, 0, len(a.adapters))
	for id := range a.adapters {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fetch gathers records for the requested elements (all when ids empty and
// all=true). Unknown elements yield an error; partial results are
// returned alongside it.
func (a *Agent) Fetch(ids []core.ElementID, attrs []string, all bool) ([]core.Record, error) {
	start := time.Now()
	defer func() {
		a.mu.Lock()
		a.queryCount++
		a.busyNS += time.Since(start).Nanoseconds()
		a.mu.Unlock()
	}()

	if all {
		ids = a.Elements()
	}
	ts := a.clock()
	var recs []core.Record
	var firstErr error
	for _, id := range ids {
		a.mu.RLock()
		ad := a.adapters[id]
		a.mu.RUnlock()
		if ad == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("agent %s: unknown element %s", a.machine, id)
			}
			continue
		}
		rec, err := ad.Fetch(ts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		recs = append(recs, wire.FilterAttrs(rec, attrs))
	}
	return recs, firstErr
}

// Stats reports the agent's own collection overhead (Fig 16).
func (a *Agent) Stats() (queries uint64, busy time.Duration) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.queryCount, time.Duration(a.busyNS)
}

// Serve answers controller connections on l until the listener closes.
func (a *Agent) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go a.handle(conn)
	}
}

func (a *Agent) handle(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := wire.Read(conn)
		if err != nil {
			return // EOF or broken peer; connection-scoped, agent keeps serving
		}
		resp := a.dispatch(msg)
		if err := wire.Write(conn, resp); err != nil {
			log.Printf("perfsight-agent %s: write response: %v", a.machine, err)
			return
		}
	}
}

func (a *Agent) dispatch(msg *wire.Message) *wire.Message {
	switch msg.Type {
	case wire.TypePing:
		return &wire.Message{Type: wire.TypePong, ID: msg.ID, Machine: a.machine}
	case wire.TypeListElements:
		var metas []wire.ElementMeta
		a.mu.RLock()
		for id, ad := range a.adapters {
			metas = append(metas, wire.ElementMeta{ID: id, Kind: ad.Kind()})
		}
		a.mu.RUnlock()
		sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
		return &wire.Message{Type: wire.TypeElementList, ID: msg.ID, Machine: a.machine, Elements: metas}
	case wire.TypeQuery:
		if msg.Query == nil {
			return &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: "query message without query body"}
		}
		recs, err := a.Fetch(msg.Query.Elements, msg.Query.Attrs, msg.Query.All)
		resp := &wire.Message{Type: wire.TypeResponse, ID: msg.ID, Machine: a.machine, Records: recs}
		if err != nil {
			resp.Error = err.Error()
		}
		return resp
	default:
		return &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: fmt.Sprintf("unknown message type %q", msg.Type)}
	}
}
