package agent

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// Agent gathers statistics from the elements of one physical server and
// answers controller queries. To reduce overhead it pulls counter values
// from elements only when queried (§4.2).
type Agent struct {
	machine core.MachineID
	clock   func() int64

	mu       sync.RWMutex
	adapters map[core.ElementID]Adapter

	// queryCount/busyNS are atomics, not mu-guarded: concurrent Fetches
	// only hold RLock and must not serialize on overhead accounting.
	queryCount atomic.Uint64
	busyNS     atomic.Int64

	// ReadTimeout bounds how long a served connection may sit between
	// requests before the agent closes it, so a half-open controller
	// cannot park a handler goroutine forever. 0 = no deadline. Set
	// before Serve.
	ReadTimeout time.Duration

	// MaxConns caps concurrent controller connections; connections over
	// the cap are closed at accept time rather than queued. 0 = no cap.
	// Set before Serve.
	MaxConns int

	// Codec selects the wire codecs offered to controllers: wire.CodecV2
	// (or empty, the default) grants the binary v2 codec to peers that
	// negotiate it and keeps JSON for everyone else; wire.CodecJSON
	// disables v2 entirely. Set before Serve.
	Codec string

	// AllowDelta permits delta-encoded responses on v2 connections whose
	// controller requested them: only attrs whose values changed since
	// the connection's previous response are resent. Set before Serve.
	AllowDelta bool

	// AllowStream permits controllers to convert a connection into a
	// push stream (stream_start): the agent then sends stream_data
	// batches at an adaptive cadence instead of answering polls. Set
	// before Serve.
	AllowStream bool

	// AllowSketch advertises sketch-based flow statistics to controllers
	// that request them. Peers that never negotiate the capability — old
	// controllers, JSON peers that skip the hello — transparently get the
	// legacy per-rule enumeration from adapters that can produce it
	// (LegacyFlowFetcher). Set before Serve.
	AllowSketch bool

	// AllowSpans advertises span-decorated responses: v2 connections that
	// negotiate the capability get a per-channel timing decomposition of
	// every gather piggybacked on response and stream_data frames. Peers
	// that never ask keep the plain agent_ns split. Set before Serve.
	AllowSpans bool

	// CadenceMin/CadenceMax bound the adaptive push cadence. CadenceMin
	// is a floor the controller cannot undercut; CadenceMax is the
	// quiescent heartbeat period. Zero values use DefaultCadenceMin/Max.
	// Set before Serve.
	CadenceMin time.Duration
	CadenceMax time.Duration

	// tel holds the optional self-telemetry block (see EnableTelemetry);
	// nil means uninstrumented, and every hot-path check is one atomic
	// pointer load.
	tel atomic.Pointer[metrics]
}

// New builds an agent for a machine. clock supplies record timestamps
// (virtual time in simulations, wall clock live); nil uses wall clock.
func New(machine core.MachineID, clock func() int64) *Agent {
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	return &Agent{
		machine:  machine,
		clock:    clock,
		adapters: make(map[core.ElementID]Adapter),
	}
}

// Machine returns the agent's server identity.
func (a *Agent) Machine() core.MachineID { return a.machine }

// Register attaches an element adapter.
func (a *Agent) Register(ad Adapter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.adapters[ad.ElementID()] = ad
}

// Unregister removes an element (VM migrated away).
func (a *Agent) Unregister(id core.ElementID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.adapters, id)
}

// Elements returns the sorted inventory.
func (a *Agent) Elements() []core.ElementID {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]core.ElementID, 0, len(a.adapters))
	for id := range a.adapters {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LegacyFlowFetcher is implemented by adapters that can serve the legacy
// per-flow enumeration alongside their native mode — what a
// sketch-unaware controller is handed when it never negotiated the
// sketch capability.
type LegacyFlowFetcher interface {
	FetchLegacy(ts int64) (core.Record, error)
}

// Fetch gathers records for the requested elements (all when ids empty and
// all=true). Unknown elements yield an error; partial results are
// returned alongside it. In-process callers are sketch-native: adapters
// report flow statistics in their configured mode.
func (a *Agent) Fetch(ids []core.ElementID, attrs []string, all bool) ([]core.Record, error) {
	return a.fetchAppend(nil, ids, attrs, all, false, nil)
}

// fetchAppend is Fetch appending into recs — the serve loop passes a
// per-connection scratch slice so steady-state queries reuse its backing
// array instead of growing a fresh one per frame. legacyFlows demotes
// LegacyFlowFetcher adapters to per-rule enumeration for connections
// whose peer never negotiated the sketch capability. A non-nil sb
// collects one child span per adapter fetch, named by collection
// channel, for connections whose peer negotiated spans.
func (a *Agent) fetchAppend(recs []core.Record, ids []core.ElementID, attrs []string, all, legacyFlows bool, sb *spanBuf) ([]core.Record, error) {
	start := time.Now()
	tel := a.tel.Load()
	defer func() {
		elapsed := time.Since(start)
		a.queryCount.Add(1)
		a.busyNS.Add(elapsed.Nanoseconds())
		if tel != nil {
			tel.queries.Inc()
			tel.queryDur.Observe(float64(elapsed.Nanoseconds()))
		}
	}()

	if all {
		ids = a.Elements()
	}
	ts := a.clock()
	// Build the attribute filter once per query, not once per element.
	filter := wire.NewAttrFilter(attrs)
	var firstErr error
	for _, id := range ids {
		a.mu.RLock()
		ad := a.adapters[id]
		a.mu.RUnlock()
		if ad == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("agent %s: unknown element %s", a.machine, id)
			}
			continue
		}
		fetch := ad.Fetch
		if legacyFlows {
			if lf, ok := ad.(LegacyFlowFetcher); ok {
				fetch = lf.FetchLegacy
			}
		}
		var rec core.Record
		var err error
		if tel != nil || sb != nil {
			g := time.Now()
			rec, err = fetch(ts)
			d := time.Since(g)
			if tel != nil {
				tel.observeGather(ad.Kind(), d)
			}
			if sb != nil {
				status := ""
				if err != nil {
					status = "error"
				}
				sb.child(channelName(ad, legacyFlows), g.UnixNano(), d.Nanoseconds(), status)
			}
		} else {
			rec, err = fetch(ts)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		recs = append(recs, filter.Apply(rec))
	}
	if firstErr != nil && tel != nil {
		tel.queryErrors.Inc()
	}
	return recs, firstErr
}

// Stats reports the agent's own collection overhead (Fig 16).
func (a *Agent) Stats() (queries uint64, busy time.Duration) {
	return a.queryCount.Load(), time.Duration(a.busyNS.Load())
}

// Serve answers controller connections on l until the listener closes.
// With MaxConns set, connections over the cap are refused (closed) at
// accept time so a misbehaving fleet of controllers cannot grow the
// agent's goroutine count without bound.
func (a *Agent) Serve(l net.Listener) error {
	var sem chan struct{}
	if a.MaxConns > 0 {
		sem = make(chan struct{}, a.MaxConns)
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				if tel := a.tel.Load(); tel != nil {
					tel.connsRefused.Inc()
				}
				conn.Close()
				continue
			}
		}
		go func(conn net.Conn) {
			a.handle(conn)
			if sem != nil {
				<-sem
			}
		}(conn)
	}
}

func (a *Agent) handle(conn net.Conn) {
	defer conn.Close()
	if tel := a.tel.Load(); tel != nil {
		tel.conns.Inc()
	}
	// Per-connection session state: the payload codec (JSON until a
	// hello negotiates v2), a pooled frame buffer, and a reusable record
	// slice, so a steady-state sweep allocates near nothing per frame.
	var sess wire.Codec = wire.JSONCodec{}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	var recScratch []core.Record
	// Until a hello negotiates the sketch capability, the peer is assumed
	// old and gets the legacy flow enumeration. sb stays nil — no span
	// decoration — until a hello grants the spans capability.
	legacyFlows := true
	var sb *spanBuf
	for {
		if a.ReadTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(a.ReadTimeout)); err != nil {
				return
			}
		}
		payload, err := wire.ReadFrameBuf(conn, buf)
		if err != nil {
			// EOF or broken peer; connection-scoped, agent keeps serving.
			// A clean peer close is not a wire error — only malformed or
			// truncated frames count — and an idle-timeout disconnect is
			// the agent shedding a half-open controller, tracked apart.
			if tel := a.tel.Load(); tel != nil && !errors.Is(err, io.EOF) {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					tel.idleClosed.Inc()
				} else {
					tel.wireRead.Inc()
				}
			}
			return
		}
		if tel := a.tel.Load(); tel != nil {
			tel.bytesRx.Add(uint64(len(payload)) + 4)
		}
		msg, err := sess.Decode(payload)
		if err != nil {
			// A frame that doesn't parse under the negotiated codec means
			// the stream is broken (or the peer switched codecs without
			// negotiating); drop the connection, the peer redials fresh.
			if tel := a.tel.Load(); tel != nil {
				tel.wireRead.Inc()
			}
			return
		}
		var resp *wire.Message
		var next wire.Codec
		if msg.Type == wire.TypeHello {
			resp, next = a.hello(msg)
			legacyFlows = resp.Hello == nil || !resp.Hello.Sketch
			if resp.Hello != nil && resp.Hello.Spans {
				sb = &spanBuf{}
			}
		} else if msg.Type == wire.TypeStreamStart {
			if errStr := a.streamStartErr(msg); errStr != "" {
				resp = &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: errStr}
			} else {
				// The connection converts to push mode; serveStream owns
				// it (and buf) until the stream ends, then the connection
				// closes — streams never fall back to request/response.
				a.serveStream(conn, sess, msg, buf, legacyFlows, sb)
				return
			}
		} else {
			recScratch = recScratch[:0]
			resp = a.dispatch(msg, &recScratch, legacyFlows, sb)
		}
		if a.ReadTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(a.ReadTimeout)); err != nil {
				return
			}
		}
		out, err := sess.Encode(resp) // a hello ack rides the pre-upgrade codec
		if err == nil {
			err = wire.WriteFrame(conn, out)
		}
		if err != nil {
			if tel := a.tel.Load(); tel != nil {
				tel.wireWrite.Inc()
			}
			log.Printf("perfsight-agent %s: write response: %v", a.machine, err)
			return
		}
		if tel := a.tel.Load(); tel != nil {
			tel.bytesTx.Add(uint64(len(out)) + 4)
		}
		if next != nil {
			sess = next
		}
	}
}

// hello answers a codec negotiation: grant the best common codec, and
// return the session codec to switch to after the ack is written (nil to
// stay on the current one). Delta is granted only when both the
// controller asked and the agent allows it.
func (a *Agent) hello(msg *wire.Message) (*wire.Message, wire.Codec) {
	if tel := a.tel.Load(); tel != nil {
		tel.countRequest(msg.Type)
	}
	// The ack's agent_ts (the agent clock at answer time) seeds the
	// controller's skew estimate even on sessions that never carry spans.
	ack := &wire.Message{Type: wire.TypeHelloAck, ID: msg.ID, Machine: a.machine,
		AgentTS: a.clock(), Hello: &wire.Hello{}}
	if msg.Hello != nil {
		// Stream and sketch capabilities are codec-independent: a JSON
		// session can push or consume sketch blobs too, it just forgoes
		// delta compression.
		ack.Hello.Stream = msg.Hello.Stream && a.AllowStream
		ack.Hello.Sketch = msg.Hello.Sketch && a.AllowSketch
	}
	if a.Codec == wire.CodecJSON || msg.Hello == nil || !containsCodec(msg.Hello.Codecs, wire.CodecV2) {
		if tel := a.tel.Load(); tel != nil {
			tel.codecJSON.Inc()
		}
		return ack, nil
	}
	delta := msg.Hello.Delta && a.AllowDelta
	// Spans ride only the v2 codec: the section is binary, and granting
	// it on a JSON session would change every response's JSON shape.
	spans := msg.Hello.Spans && a.AllowSpans
	ack.Hello.Codecs = []string{wire.CodecV2}
	ack.Hello.Delta = delta
	ack.Hello.Spans = spans
	if tel := a.tel.Load(); tel != nil {
		tel.codecV2.Inc()
	}
	c := wire.NewV2Codec(delta)
	if spans {
		c.EnableSpans()
	}
	return ack, c
}

func containsCodec(codecs []string, want string) bool {
	for _, c := range codecs {
		if c == want {
			return true
		}
	}
	return false
}

// dispatch answers one request. The response echoes the request's
// trace_id and carries the agent-side handling time so the controller's
// query-lifecycle tracer can split transport from gather work. scratch
// is the connection's reusable record slice (already truncated). On a
// spans session (sb non-nil), query responses additionally carry a root
// "agent:dispatch" span with one child per collection channel, plus the
// agent clock at answer time for skew correction.
func (a *Agent) dispatch(msg *wire.Message, scratch *[]core.Record, legacyFlows bool, sb *spanBuf) *wire.Message {
	start := time.Now()
	// AgentTS carries the agent's own clock (not the host wall clock) so
	// the controller's skew estimate measures the clock the agent stamps
	// records with — identical in production, but it lets a lab inject
	// clock skew and watch the estimator recover it.
	ats := a.clock()
	if sb != nil && msg.Type == wire.TypeQuery {
		sb.begin()
	} else {
		sb = nil
	}
	resp := a.dispatchInner(msg, scratch, legacyFlows, sb)
	resp.TraceID = msg.TraceID
	elapsed := time.Since(start)
	resp.AgentNS = elapsed.Nanoseconds()
	if sb != nil && resp.Type == wire.TypeResponse {
		sb.root("agent:dispatch", start.UnixNano(), elapsed.Nanoseconds())
		resp.AgentTS = ats + elapsed.Nanoseconds()
		resp.AgentSpans = sb.spans
	}
	if tel := a.tel.Load(); tel != nil {
		tel.countRequest(msg.Type)
	}
	return resp
}

func (a *Agent) dispatchInner(msg *wire.Message, scratch *[]core.Record, legacyFlows bool, sb *spanBuf) *wire.Message {
	switch msg.Type {
	case wire.TypePing:
		return &wire.Message{Type: wire.TypePong, ID: msg.ID, Machine: a.machine}
	case wire.TypeListElements:
		var metas []wire.ElementMeta
		a.mu.RLock()
		for id, ad := range a.adapters {
			metas = append(metas, wire.ElementMeta{ID: id, Kind: ad.Kind()})
		}
		a.mu.RUnlock()
		sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
		return &wire.Message{Type: wire.TypeElementList, ID: msg.ID, Machine: a.machine, Elements: metas}
	case wire.TypeQuery:
		if msg.Query == nil {
			return &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: "query message without query body"}
		}
		recs, err := a.fetchAppend(*scratch, msg.Query.Elements, msg.Query.Attrs, msg.Query.All, legacyFlows, sb)
		*scratch = recs
		resp := &wire.Message{Type: wire.TypeResponse, ID: msg.ID, Machine: a.machine, Records: recs}
		if err != nil {
			resp.Error = err.Error()
		}
		return resp
	default:
		return &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: fmt.Sprintf("unknown message type %q", msg.Type)}
	}
}
