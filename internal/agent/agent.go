package agent

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// Agent gathers statistics from the elements of one physical server and
// answers controller queries. To reduce overhead it pulls counter values
// from elements only when queried (§4.2).
type Agent struct {
	machine core.MachineID
	clock   func() int64

	mu       sync.RWMutex
	adapters map[core.ElementID]Adapter

	// queryCount/busyNS are atomics, not mu-guarded: concurrent Fetches
	// only hold RLock and must not serialize on overhead accounting.
	queryCount atomic.Uint64
	busyNS     atomic.Int64

	// ReadTimeout bounds how long a served connection may sit between
	// requests before the agent closes it, so a half-open controller
	// cannot park a handler goroutine forever. 0 = no deadline. Set
	// before Serve.
	ReadTimeout time.Duration

	// MaxConns caps concurrent controller connections; connections over
	// the cap are closed at accept time rather than queued. 0 = no cap.
	// Set before Serve.
	MaxConns int

	// tel holds the optional self-telemetry block (see EnableTelemetry);
	// nil means uninstrumented, and every hot-path check is one atomic
	// pointer load.
	tel atomic.Pointer[metrics]
}

// New builds an agent for a machine. clock supplies record timestamps
// (virtual time in simulations, wall clock live); nil uses wall clock.
func New(machine core.MachineID, clock func() int64) *Agent {
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	return &Agent{
		machine:  machine,
		clock:    clock,
		adapters: make(map[core.ElementID]Adapter),
	}
}

// Machine returns the agent's server identity.
func (a *Agent) Machine() core.MachineID { return a.machine }

// Register attaches an element adapter.
func (a *Agent) Register(ad Adapter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.adapters[ad.ElementID()] = ad
}

// Unregister removes an element (VM migrated away).
func (a *Agent) Unregister(id core.ElementID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.adapters, id)
}

// Elements returns the sorted inventory.
func (a *Agent) Elements() []core.ElementID {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]core.ElementID, 0, len(a.adapters))
	for id := range a.adapters {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fetch gathers records for the requested elements (all when ids empty and
// all=true). Unknown elements yield an error; partial results are
// returned alongside it.
func (a *Agent) Fetch(ids []core.ElementID, attrs []string, all bool) ([]core.Record, error) {
	start := time.Now()
	tel := a.tel.Load()
	defer func() {
		elapsed := time.Since(start)
		a.queryCount.Add(1)
		a.busyNS.Add(elapsed.Nanoseconds())
		if tel != nil {
			tel.queries.Inc()
			tel.queryDur.Observe(float64(elapsed.Nanoseconds()))
		}
	}()

	if all {
		ids = a.Elements()
	}
	ts := a.clock()
	var recs []core.Record
	var firstErr error
	for _, id := range ids {
		a.mu.RLock()
		ad := a.adapters[id]
		a.mu.RUnlock()
		if ad == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("agent %s: unknown element %s", a.machine, id)
			}
			continue
		}
		var rec core.Record
		var err error
		if tel != nil {
			g := time.Now()
			rec, err = ad.Fetch(ts)
			tel.observeGather(ad.Kind(), time.Since(g))
		} else {
			rec, err = ad.Fetch(ts)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		recs = append(recs, wire.FilterAttrs(rec, attrs))
	}
	if firstErr != nil && tel != nil {
		tel.queryErrors.Inc()
	}
	return recs, firstErr
}

// Stats reports the agent's own collection overhead (Fig 16).
func (a *Agent) Stats() (queries uint64, busy time.Duration) {
	return a.queryCount.Load(), time.Duration(a.busyNS.Load())
}

// Serve answers controller connections on l until the listener closes.
// With MaxConns set, connections over the cap are refused (closed) at
// accept time so a misbehaving fleet of controllers cannot grow the
// agent's goroutine count without bound.
func (a *Agent) Serve(l net.Listener) error {
	var sem chan struct{}
	if a.MaxConns > 0 {
		sem = make(chan struct{}, a.MaxConns)
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				if tel := a.tel.Load(); tel != nil {
					tel.connsRefused.Inc()
				}
				conn.Close()
				continue
			}
		}
		go func(conn net.Conn) {
			a.handle(conn)
			if sem != nil {
				<-sem
			}
		}(conn)
	}
}

func (a *Agent) handle(conn net.Conn) {
	defer conn.Close()
	if tel := a.tel.Load(); tel != nil {
		tel.conns.Inc()
	}
	for {
		if a.ReadTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(a.ReadTimeout)); err != nil {
				return
			}
		}
		msg, err := wire.Read(conn)
		if err != nil {
			// EOF or broken peer; connection-scoped, agent keeps serving.
			// A clean peer close is not a wire error — only malformed or
			// truncated frames count — and an idle-timeout disconnect is
			// the agent shedding a half-open controller, tracked apart.
			if tel := a.tel.Load(); tel != nil && !errors.Is(err, io.EOF) {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					tel.idleClosed.Inc()
				} else {
					tel.wireRead.Inc()
				}
			}
			return
		}
		resp := a.dispatch(msg)
		if a.ReadTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(a.ReadTimeout)); err != nil {
				return
			}
		}
		if err := wire.Write(conn, resp); err != nil {
			if tel := a.tel.Load(); tel != nil {
				tel.wireWrite.Inc()
			}
			log.Printf("perfsight-agent %s: write response: %v", a.machine, err)
			return
		}
	}
}

// dispatch answers one request. The response echoes the request's
// trace_id and carries the agent-side handling time so the controller's
// query-lifecycle tracer can split transport from gather work.
func (a *Agent) dispatch(msg *wire.Message) *wire.Message {
	start := time.Now()
	resp := a.dispatchInner(msg)
	resp.TraceID = msg.TraceID
	resp.AgentNS = time.Since(start).Nanoseconds()
	if tel := a.tel.Load(); tel != nil {
		tel.countRequest(msg.Type)
	}
	return resp
}

func (a *Agent) dispatchInner(msg *wire.Message) *wire.Message {
	switch msg.Type {
	case wire.TypePing:
		return &wire.Message{Type: wire.TypePong, ID: msg.ID, Machine: a.machine}
	case wire.TypeListElements:
		var metas []wire.ElementMeta
		a.mu.RLock()
		for id, ad := range a.adapters {
			metas = append(metas, wire.ElementMeta{ID: id, Kind: ad.Kind()})
		}
		a.mu.RUnlock()
		sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
		return &wire.Message{Type: wire.TypeElementList, ID: msg.ID, Machine: a.machine, Elements: metas}
	case wire.TypeQuery:
		if msg.Query == nil {
			return &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: "query message without query body"}
		}
		recs, err := a.Fetch(msg.Query.Elements, msg.Query.Attrs, msg.Query.All)
		resp := &wire.Message{Type: wire.TypeResponse, ID: msg.ID, Machine: a.machine, Records: recs}
		if err != nil {
			resp.Error = err.Error()
		}
		return resp
	default:
		return &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: fmt.Sprintf("unknown message type %q", msg.Type)}
	}
}
