package agent

import (
	"net"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// Default adaptive-cadence bounds for push streaming, used when neither
// the agent config nor the controller's stream_start frame narrows them.
const (
	DefaultCadenceMin = 100 * time.Millisecond
	DefaultCadenceMax = 5 * time.Second
)

// cadenceBounds resolves the adaptive-cadence window for one stream: the
// agent's own floor wins over a controller asking for a faster minimum
// (the agent protects its gather budget), while the controller may set
// any maximum — slower heartbeats only make the stream cheaper.
func (a *Agent) cadenceBounds(si *wire.StreamInfo) (cadMin, cadMax time.Duration) {
	cadMin, cadMax = a.CadenceMin, a.CadenceMax
	if cadMin <= 0 {
		cadMin = DefaultCadenceMin
	}
	if cadMax <= 0 {
		cadMax = DefaultCadenceMax
	}
	if si != nil {
		if d := time.Duration(si.CadenceMinNS); d > cadMin {
			cadMin = d
		}
		if d := time.Duration(si.CadenceMaxNS); d > 0 {
			cadMax = d
		}
	}
	if cadMax < cadMin {
		cadMax = cadMin
	}
	return cadMin, cadMax
}

// streamStartErr validates a stream_start request; non-empty means
// reject (the connection then stays in request/response mode).
func (a *Agent) streamStartErr(msg *wire.Message) string {
	if !a.AllowStream {
		return "agent: push streaming not enabled"
	}
	if msg.Query == nil {
		return "agent: stream_start without query body"
	}
	return ""
}

// serveStream owns a connection after an accepted stream_start: it
// pushes stream_data batches at an adaptive cadence — halving the period
// toward the floor while counters move, doubling toward the quiescent
// ceiling while they don't — and obeys stream_control throttles from the
// controller's ingest queue. Unchanged ticks still push (tiny delta
// frames on v2 sessions), so the stream doubles as a liveness signal.
//
// The reader goroutine and the push loop share the session codec: the
// V2Codec's encode and decode halves keep disjoint state (intern tables,
// delta maps, scratch), so one decoding reader and one encoding writer
// never touch the same fields.
func (a *Agent) serveStream(conn net.Conn, sess wire.Codec, start *wire.Message, buf *[]byte, legacyFlows bool, sb *spanBuf) {
	tel := a.tel.Load()
	if tel != nil {
		tel.countRequest(wire.TypeStreamStart)
		tel.streams.Inc()
	}
	cadMin, cadMax := a.cadenceBounds(start.Stream)
	q := start.Query

	// Control plane: the reader drains throttle frames until the peer
	// hangs up (its read error is the stream's termination signal — a
	// streaming connection has no idle timeout, quiet controllers are
	// normal). The push loop must not return before the reader: they
	// share buf, which the caller pools on return.
	var throttle atomic.Int64
	done := make(chan struct{})
	conn.SetReadDeadline(time.Time{})
	go func() {
		defer close(done)
		for {
			payload, err := wire.ReadFrameBuf(conn, buf)
			if err != nil {
				return
			}
			msg, err := sess.Decode(payload)
			if err != nil {
				return
			}
			if msg.Type == wire.TypeStreamControl && msg.Stream != nil {
				throttle.Store(msg.Stream.ThrottleNS)
				if tel != nil {
					tel.countRequest(msg.Type)
					if msg.Stream.ThrottleNS > 0 {
						tel.streamThrottled.Inc()
					}
				}
			}
		}
	}()
	defer func() {
		conn.Close()
		<-done
	}()

	cadence := cadMin
	var seq uint64
	var recs, prev []core.Record
	var prevFlat []core.Attr
	timer := time.NewTimer(0) // first batch immediately
	defer timer.Stop()
	for {
		select {
		case <-done:
			return
		case <-timer.C:
		}
		gatherStart := time.Now()
		if sb != nil {
			sb.begin()
		}
		recs, _ = a.fetchAppend(recs[:0], q.Elements, q.Attrs, q.All, legacyFlows, sb)
		changed := !sameValues(prev, recs)
		prev, prevFlat = copyRecords(prev, prevFlat, recs)

		seq++
		msg := &wire.Message{
			Type: wire.TypeStreamData, ID: start.ID, Machine: a.machine,
			Stream: &wire.StreamInfo{Seq: seq}, Records: recs,
		}
		if sb != nil {
			// Spans session: decorate the pushed batch the way a query
			// response is decorated, with the push gather as the root.
			elapsed := time.Since(gatherStart)
			sb.root("agent:push", gatherStart.UnixNano(), elapsed.Nanoseconds())
			msg.AgentNS = elapsed.Nanoseconds()
			msg.AgentTS = gatherStart.UnixNano() + elapsed.Nanoseconds()
			msg.AgentSpans = sb.spans
		}
		out, err := sess.Encode(msg)
		if err == nil {
			if a.ReadTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(a.ReadTimeout))
			}
			err = wire.WriteFrame(conn, out)
		}
		if err != nil {
			if tel != nil {
				tel.wireWrite.Inc()
			}
			return
		}
		if tel != nil {
			tel.streamFrames.Inc()
			tel.bytesTx.Add(uint64(len(out)) + 4)
		}

		if changed {
			cadence /= 2
			if cadence < cadMin {
				cadence = cadMin
			}
		} else {
			cadence *= 2
			if cadence > cadMax {
				cadence = cadMax
			}
		}
		eff := cadence
		if th := time.Duration(throttle.Load()); th > eff {
			eff = th // backpressure raises the floor, never lowers it
		}
		timer.Reset(eff)
	}
}

// sameValues reports whether two gathers carry identical attribute
// values. Timestamps are ignored: a quiescent element still advances its
// clock, and cadence decay must key on the counters alone.
func sameValues(a, b []core.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Element != b[i].Element || len(a[i].Attrs) != len(b[i].Attrs) {
			return false
		}
		for j := range a[i].Attrs {
			if a[i].Attrs[j].ID != b[i].Attrs[j].ID || a[i].Attrs[j].Value != b[i].Attrs[j].Value {
				return false
			}
		}
	}
	return true
}

// copyRecords deep-copies src into the dst scratch pair (records + flat
// attr backing) so the previous tick's values survive the adapters
// reusing their buffers. Two passes: the flat buffer must stop growing
// before record slices can alias into it.
func copyRecords(dst []core.Record, dstFlat []core.Attr, src []core.Record) ([]core.Record, []core.Attr) {
	dst, dstFlat = dst[:0], dstFlat[:0]
	for i := range src {
		dstFlat = append(dstFlat, src[i].Attrs...)
	}
	off := 0
	for i := range src {
		n := len(src[i].Attrs)
		dst = append(dst, core.Record{
			Timestamp: src[i].Timestamp,
			Element:   src[i].Element,
			Attrs:     dstFlat[off : off+n : off+n],
		})
		off += n
	}
	return dst, dstFlat
}
