package agent

import (
	"net"
	"sync"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/wire"
)

// TestConcurrentClientsAgainstLiveDatapath hammers one agent with many
// TCP clients while the datapath keeps mutating the counters underneath —
// the production shape of a polled agent. Validated under -race.
func TestConcurrentClientsAgainstLiveDatapath(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go a.Serve(ln)

	// Keep the dataplane hot while clients query.
	stop := make(chan struct{})
	var tickerWG sync.WaitGroup
	tickerWG.Add(1)
	go func() {
		defer tickerWG.Done()
		now := 100 * time.Millisecond
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.OfferWire([]dataplane.Batch{{Flow: "f1", Packets: 20, Bytes: 20 * 1448}}, time.Millisecond)
			m.Tick(now, time.Millisecond)
			now += time.Millisecond
		}
	}()

	const clients = 8
	const queriesPerClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for q := 0; q < queriesPerClient; q++ {
				if err := wire.Write(conn, &wire.Message{
					Type: wire.TypeQuery, ID: uint64(q),
					Query: &wire.Query{All: true},
				}); err != nil {
					errs <- err
					return
				}
				resp, err := wire.Read(conn)
				if err != nil {
					errs <- err
					return
				}
				if resp.Type != wire.TypeResponse || len(resp.Records) == 0 {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	tickerWG.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent client failed: %v", err)
		}
	}
	queries, _ := a.Stats()
	if queries < clients*queriesPerClient {
		t.Fatalf("agent served %d queries; want >= %d", queries, clients*queriesPerClient)
	}
}

// TestRegisterUnregisterDuringQueries churns the element set while queries
// are in flight (VM placement changes under load).
func TestRegisterUnregisterDuringQueries(t *testing.T) {
	m := testMachine(t)
	a := buildTestAgent(t, m, BuildOptions{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := core.ElementID("m0/churn")
			a.Register(&DirectAdapter{E: churnElem{id}})
			a.Unregister(id)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			a.Fetch(nil, nil, true)
		}
		close(stop)
	}()
	wg.Wait()
}

type churnElem struct{ id core.ElementID }

func (c churnElem) ID() core.ElementID            { return c.id }
func (c churnElem) Kind() core.ElementKind        { return core.KindUnknown }
func (c churnElem) Snapshot(ts int64) core.Record { return core.Record{Timestamp: ts, Element: c.id} }
