package agent

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
)

// FlowStatsMode selects how a vswitch adapter reports per-flow traffic.
type FlowStatsMode int

const (
	// FlowStatsExact is the legacy path: one `rule_<flow>_packets`/
	// `_bytes` extension attribute per flow, enumerated over the control
	// channel. O(flows) attrs per sweep and O(flows) registry entries.
	FlowStatsExact FlowStatsMode = iota
	// FlowStatsSketch ships one constant-size `flow_sketch` payload attr
	// (count-min + top-k summary) regardless of flow count.
	FlowStatsSketch
)

func (m FlowStatsMode) String() string {
	if m == FlowStatsSketch {
		return "sketch"
	}
	return "exact"
}

// FlowStatsModeFromString parses the -flow-stats flag value.
func FlowStatsModeFromString(s string) (FlowStatsMode, error) {
	switch s {
	case "sketch":
		return FlowStatsSketch, nil
	case "exact":
		return FlowStatsExact, nil
	}
	return FlowStatsExact, fmt.Errorf("agent: unknown flow-stats mode %q (want sketch or exact)", s)
}

// OVSChannelServer exposes a virtual switch's statistics over a control
// channel in an ovs-ofctl dump-flows style, the way the real agent fetches
// per-rule counters via OpenFlow (§6). Two commands:
//
//	DUMP         switch-level attrs + one `rule flow=... packets=... bytes=...`
//	             line per flow-table entry (legacy enumeration)
//	DUMP-SKETCH  switch-level attrs + one `sketch <base64 blob>` line
//	             carrying the constant-size flow summary
type OVSChannelServer struct {
	VS *dataplane.VSwitch
}

// Handle serves one control connection.
func (s *OVSChannelServer) Handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		cmd := strings.TrimSpace(sc.Text())
		switch cmd {
		case "DUMP":
			s.writeSwitchLine(conn)
			for _, r := range s.VS.Rules() {
				fmt.Fprintf(conn, "rule flow=%s packets=%d bytes=%d\n",
					r.Flow, r.Packets.Load(), r.Bytes.Load())
			}
			fmt.Fprintln(conn, "END")
		case "DUMP-SKETCH":
			fs := s.VS.FlowStats()
			if fs == nil {
				fmt.Fprintln(conn, "ERR sketch flow statistics not enabled\nEND")
				continue
			}
			s.writeSwitchLine(conn)
			fmt.Fprintf(conn, "sketch %s\n", base64.StdEncoding.EncodeToString(fs.Encode()))
			fmt.Fprintln(conn, "END")
		default:
			fmt.Fprintf(conn, "ERR unknown command %q\nEND\n", cmd)
		}
	}
}

func (s *OVSChannelServer) writeSwitchLine(conn net.Conn) {
	rec := s.VS.Snapshot(0)
	fmt.Fprintf(conn, "switch")
	for _, a := range rec.Attrs {
		fmt.Fprintf(conn, " %s=%g", a.Name(), a.Value)
	}
	fmt.Fprintln(conn)
}

// PipeDialer returns an in-memory dialer to the channel server.
func (s *OVSChannelServer) PipeDialer() func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, server := net.Pipe()
		go s.Handle(server)
		return client, nil
	}
}

// ruleAttrIDs caches the pair of extension AttrIDs for one flow so the
// legacy enumeration registers (and concatenates) each name once, not
// once per sweep.
type ruleAttrIDs struct {
	pkts, byts core.AttrID
}

// OVSAdapter fetches virtual-switch statistics over the control channel.
// Mode selects sketch summaries (one payload attr) or legacy per-rule
// enumeration; either way, a peer that cannot consume sketches can ask
// for the legacy form explicitly via FetchLegacy.
type OVSAdapter struct {
	ID      core.ElementID
	Dial    func() (net.Conn, error)
	Latency Latency
	Mode    FlowStatsMode

	ruleMu  sync.RWMutex
	ruleIDs map[string]ruleAttrIDs
}

// ElementID implements Adapter.
func (a *OVSAdapter) ElementID() core.ElementID { return a.ID }

// Kind implements Adapter.
func (a *OVSAdapter) Kind() core.ElementKind { return core.KindVSwitch }

// Fetch implements Adapter in the configured mode.
func (a *OVSAdapter) Fetch(ts int64) (core.Record, error) {
	if a.Mode == FlowStatsSketch {
		return a.fetch(ts, "DUMP-SKETCH")
	}
	return a.fetch(ts, "DUMP")
}

// FetchLegacy implements LegacyFlowFetcher: the per-rule enumeration an
// old (sketch-unaware) controller negotiates down to.
func (a *OVSAdapter) FetchLegacy(ts int64) (core.Record, error) {
	return a.fetch(ts, "DUMP")
}

func (a *OVSAdapter) fetch(ts int64, cmd string) (core.Record, error) {
	a.Latency.apply()
	conn, err := a.Dial()
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: ovs %s: dial: %w", a.ID, err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, cmd); err != nil {
		return core.Record{}, fmt.Errorf("agent: ovs %s: send: %w", a.ID, err)
	}
	rec := core.Record{Timestamp: ts, Element: a.ID}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // sketch blobs exceed the 64K default line cap
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		switch {
		case string(line) == "END":
			return rec, nil
		case bytes.HasPrefix(line, []byte("ERR")):
			return core.Record{}, fmt.Errorf("agent: ovs %s: %s", a.ID, line)
		case bytes.HasPrefix(line, []byte("switch")):
			rec.Attrs = parseSwitchLine(rec.Attrs, string(line))
		case bytes.HasPrefix(line, []byte("rule ")):
			if flow, pkts, byts, ok := parseRuleLine(line[len("rule "):]); ok {
				ids := a.ruleAttrIDsFor(flow)
				rec.Attrs = append(rec.Attrs,
					core.Attr{ID: ids.pkts, Value: float64(pkts)},
					core.Attr{ID: ids.byts, Value: float64(byts)},
				)
			}
		case bytes.HasPrefix(line, []byte("sketch ")):
			blob, err := base64.StdEncoding.AppendDecode(nil, line[len("sketch "):])
			if err != nil {
				return core.Record{}, fmt.Errorf("agent: ovs %s: sketch line: %w", a.ID, err)
			}
			epoch, ok := dataplane.SketchEpoch(blob)
			if !ok {
				return core.Record{}, fmt.Errorf("agent: ovs %s: malformed sketch blob", a.ID)
			}
			rec.Attrs = append(rec.Attrs, core.Attr{
				ID:      core.SketchAttrID(),
				Value:   float64(epoch),
				Payload: blob,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return core.Record{}, fmt.Errorf("agent: ovs %s: read: %w", a.ID, err)
	}
	return core.Record{}, fmt.Errorf("agent: ovs %s: channel closed before END", a.ID)
}

// ruleAttrIDsFor returns the cached attr-ID pair for one flow's legacy
// counters, registering the names on first sight only. The map lookup
// with a string(flow) key compiles without allocating, so a steady-state
// sweep over a stable flow table costs zero name churn. Connections are
// served concurrently and share the adapter, hence the lock.
func (a *OVSAdapter) ruleAttrIDsFor(flow []byte) ruleAttrIDs {
	a.ruleMu.RLock()
	ids, ok := a.ruleIDs[string(flow)]
	a.ruleMu.RUnlock()
	if ok {
		return ids
	}
	a.ruleMu.Lock()
	defer a.ruleMu.Unlock()
	if ids, ok := a.ruleIDs[string(flow)]; ok {
		return ids
	}
	if a.ruleIDs == nil {
		a.ruleIDs = make(map[string]ruleAttrIDs)
	}
	f := string(flow)
	ids = ruleAttrIDs{
		pkts: core.NamedAttr("rule_"+f+"_packets", 0).ID,
		byts: core.NamedAttr("rule_"+f+"_bytes", 0).ID,
	}
	a.ruleIDs[f] = ids
	return ids
}

// parseSwitchLine appends the space-separated name=value attrs of a
// `switch ...` line.
func parseSwitchLine(attrs []core.Attr, line string) []core.Attr {
	for _, kv := range strings.Fields(line)[1:] {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		if v, err := strconv.ParseFloat(val, 64); err == nil {
			attrs = append(attrs, core.NamedAttr(name, v))
		}
	}
	return attrs
}

// parseRuleLine parses `flow=<id> packets=<n> bytes=<n>` by hand.
// fmt.Sscanf here cost two allocations plus reflection per flow per
// sweep — at enumeration scale, the dominant fetch cost (see
// BenchmarkOVSRuleParse).
func parseRuleLine(rest []byte) (flow []byte, pkts, byts uint64, ok bool) {
	flowField, rest, ok := bytes.Cut(rest, []byte(" "))
	if !ok {
		return nil, 0, 0, false
	}
	flow, ok = bytes.CutPrefix(flowField, []byte("flow="))
	if !ok || len(flow) == 0 {
		return nil, 0, 0, false
	}
	pktsField, bytsField, ok := bytes.Cut(rest, []byte(" "))
	if !ok {
		return nil, 0, 0, false
	}
	p, ok := bytes.CutPrefix(pktsField, []byte("packets="))
	if !ok {
		return nil, 0, 0, false
	}
	b, ok := bytes.CutPrefix(bytsField, []byte("bytes="))
	if !ok {
		return nil, 0, 0, false
	}
	var err error
	if pkts, err = parseUint(p); err != nil {
		return nil, 0, 0, false
	}
	if byts, err = parseUint(b); err != nil {
		return nil, 0, 0, false
	}
	return flow, pkts, byts, true
}

// parseUint is strconv.ParseUint without the []byte→string conversion.
func parseUint(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, strconv.ErrSyntax
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, strconv.ErrSyntax
		}
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, strconv.ErrRange
		}
		n = n*10 + d
	}
	return n, nil
}
