package agent

import (
	"bufio"
	"fmt"
	"net"
	"strings"

	"perfsight/internal/core"
	"perfsight/internal/dataplane"
)

// OVSChannelServer exposes a virtual switch's statistics over a control
// channel in an ovs-ofctl dump-flows style, the way the real agent fetches
// per-rule counters via OpenFlow (§6).
type OVSChannelServer struct {
	VS *dataplane.VSwitch
}

// Handle serves one control connection.
func (s *OVSChannelServer) Handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		cmd := strings.TrimSpace(sc.Text())
		switch cmd {
		case "DUMP":
			rec := s.VS.Snapshot(0)
			fmt.Fprintf(conn, "switch")
			for _, a := range rec.Attrs {
				fmt.Fprintf(conn, " %s=%g", a.Name(), a.Value)
			}
			fmt.Fprintln(conn)
			for _, r := range s.VS.Rules() {
				fmt.Fprintf(conn, "rule flow=%s packets=%d bytes=%d\n",
					r.Flow, r.Packets.Load(), r.Bytes.Load())
			}
			fmt.Fprintln(conn, "END")
		default:
			fmt.Fprintf(conn, "ERR unknown command %q\nEND\n", cmd)
		}
	}
}

// PipeDialer returns an in-memory dialer to the channel server.
func (s *OVSChannelServer) PipeDialer() func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, server := net.Pipe()
		go s.Handle(server)
		return client, nil
	}
}

// OVSAdapter fetches virtual-switch statistics over the control channel.
type OVSAdapter struct {
	ID      core.ElementID
	Dial    func() (net.Conn, error)
	Latency Latency
}

// ElementID implements Adapter.
func (a *OVSAdapter) ElementID() core.ElementID { return a.ID }

// Kind implements Adapter.
func (a *OVSAdapter) Kind() core.ElementKind { return core.KindVSwitch }

// Fetch implements Adapter.
func (a *OVSAdapter) Fetch(ts int64) (core.Record, error) {
	a.Latency.apply()
	conn, err := a.Dial()
	if err != nil {
		return core.Record{}, fmt.Errorf("agent: ovs %s: dial: %w", a.ID, err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, "DUMP"); err != nil {
		return core.Record{}, fmt.Errorf("agent: ovs %s: send: %w", a.ID, err)
	}
	rec := core.Record{Timestamp: ts, Element: a.ID}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "END":
			return rec, nil
		case strings.HasPrefix(line, "ERR"):
			return core.Record{}, fmt.Errorf("agent: ovs %s: %s", a.ID, line)
		case strings.HasPrefix(line, "switch"):
			for _, kv := range strings.Fields(line)[1:] {
				name, val, ok := strings.Cut(kv, "=")
				if !ok {
					continue
				}
				var v float64
				if _, err := fmt.Sscanf(val, "%g", &v); err == nil {
					rec.Attrs = append(rec.Attrs, core.NamedAttr(name, v))
				}
			}
		case strings.HasPrefix(line, "rule "):
			var flow string
			var pkts, bytes uint64
			if _, err := fmt.Sscanf(line, "rule flow=%s packets=%d bytes=%d", &flow, &pkts, &bytes); err == nil {
				rec.Attrs = append(rec.Attrs,
					core.NamedAttr("rule_"+flow+"_packets", float64(pkts)),
					core.NamedAttr("rule_"+flow+"_bytes", float64(bytes)),
				)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return core.Record{}, fmt.Errorf("agent: ovs %s: read: %w", a.ID, err)
	}
	return core.Record{}, fmt.Errorf("agent: ovs %s: channel closed before END", a.ID)
}
