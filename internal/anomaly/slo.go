package anomaly

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"perfsight/internal/core"
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("3s") or integer nanoseconds, so SLO config files stay
// readable.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var n int64
	if err := json.Unmarshal(b, &n); err == nil {
		*d = Duration(n)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("anomaly: duration must be a string or ns int, got %s", b)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("anomaly: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// SLO is one tenant's service-level triggering thresholds. Zero fields
// inherit from the pipeline default (which in turn inherits built-in
// defaults), so a config file only states what differs.
type SLO struct {
	// DropRatePPS is the drop-counter rate (packets or errors per
	// second between sweeps) that constitutes an SLO violation — the
	// original Watcher threshold. Default 50.
	DropRatePPS float64 `json:"drop_rate_pps,omitempty"`
	// Bands is the EWMA deviation-band multiplier for baseline
	// detectors. Default 6.
	Bands float64 `json:"bands,omitempty"`
	// Persistence is how many consecutive out-of-band samples a
	// baseline series needs to trigger. Default 3.
	Persistence int `json:"persistence,omitempty"`
	// MinSamples is the baseline cold-start length. Default 8.
	MinSamples int `json:"min_samples,omitempty"`
	// Window is the history window a triggered diagnosis analyzes,
	// ending at the trigger. Default 3s.
	Window Duration `json:"window,omitempty"`
	// Cooldown suppresses further triggers for the tenant after one
	// fires, in record-clock time. Default 30s.
	Cooldown Duration `json:"cooldown,omitempty"`
	// DisableBaselines turns the EWMA detectors off for the tenant,
	// leaving only the drop-rate SLO (the pre-pipeline behavior).
	DisableBaselines bool `json:"disable_baselines,omitempty"`
}

// builtinSLO is the root of the inheritance chain.
var builtinSLO = SLO{
	DropRatePPS: 50,
	Bands:       6,
	Persistence: 3,
	MinSamples:  8,
	Window:      Duration(3 * time.Second),
	Cooldown:    Duration(30 * time.Second),
}

// over fills s's zero fields from base and returns the result.
func (s SLO) over(base SLO) SLO {
	if s.DropRatePPS == 0 {
		s.DropRatePPS = base.DropRatePPS
	}
	if s.Bands == 0 {
		s.Bands = base.Bands
	}
	if s.Persistence == 0 {
		s.Persistence = base.Persistence
	}
	if s.MinSamples == 0 {
		s.MinSamples = base.MinSamples
	}
	if s.Window == 0 {
		s.Window = base.Window
	}
	if s.Cooldown == 0 {
		s.Cooldown = base.Cooldown
	}
	s.DisableBaselines = s.DisableBaselines || base.DisableBaselines
	return s
}

// SLOConfig is the per-tenant threshold table: a default plus tenant
// overrides, loadable from a small JSON file:
//
//	{
//	  "default": {"drop_rate_pps": 50, "window": "3s"},
//	  "tenants": {"gold": {"drop_rate_pps": 10, "cooldown": "10s"}}
//	}
type SLOConfig struct {
	Default SLO                   `json:"default"`
	Tenants map[core.TenantID]SLO `json:"tenants,omitempty"`
}

// LoadSLOConfig reads and validates a JSON SLO config file.
func LoadSLOConfig(path string) (SLOConfig, error) {
	var cfg SLOConfig
	raw, err := os.ReadFile(path)
	if err != nil {
		return cfg, fmt.Errorf("anomaly: read SLO config: %w", err)
	}
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return cfg, fmt.Errorf("anomaly: parse SLO config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("anomaly: SLO config %s: %w", path, err)
	}
	return cfg, nil
}

// Validate rejects thresholds that can never trigger or would divide by
// zero once defaults are resolved.
func (c SLOConfig) Validate() error {
	check := func(who string, s SLO) error {
		r := s.over(c.Default).over(builtinSLO)
		if r.DropRatePPS < 0 {
			return fmt.Errorf("%s: negative drop_rate_pps %v", who, r.DropRatePPS)
		}
		if r.Bands < 1 {
			return fmt.Errorf("%s: bands %v < 1 would flag in-band noise", who, r.Bands)
		}
		if r.Persistence < 1 || r.MinSamples < 1 {
			return fmt.Errorf("%s: persistence and min_samples must be >= 1", who)
		}
		if r.Window <= 0 || r.Cooldown < 0 {
			return fmt.Errorf("%s: window must be positive and cooldown non-negative", who)
		}
		return nil
	}
	if err := check("default", c.Default); err != nil {
		return err
	}
	for tid, s := range c.Tenants {
		if err := check(fmt.Sprintf("tenant %q", tid), s); err != nil {
			return err
		}
	}
	return nil
}

// WithBase layers the config's default SLO over base (typically
// flag-provided thresholds): file settings win where stated, base fills
// the rest, and built-ins fill whatever remains at resolution time.
func (c SLOConfig) WithBase(base SLO) SLOConfig {
	c.Default = c.Default.over(base)
	return c
}

// For resolves the effective SLO for a tenant: tenant override over the
// config default over the built-in defaults.
func (c SLOConfig) For(tid core.TenantID) SLO {
	s, ok := c.Tenants[tid]
	if !ok {
		return c.Default.over(builtinSLO)
	}
	return s.over(c.Default).over(builtinSLO)
}
