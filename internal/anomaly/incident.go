package anomaly

import (
	"sort"
	"sync"
	"time"

	"perfsight/internal/core"
)

// Incident states.
const (
	StateOpen     = "open"
	StateResolved = "resolved"
)

// maxIncidentEventSeqs caps the per-incident journal-sequence timeline;
// EventCount keeps counting past it.
const maxIncidentEventSeqs = 64

// maxIncidentTraceIDs caps the per-incident trace references — enough to
// sample an episode's evolution without letting a long-running incident
// pin unbounded span-store slots.
const maxIncidentTraceIDs = 16

// Incident is one correlated anomaly episode: every diagnosis event
// whose verdict names the same root cause within a sliding window is
// folded into a single incident with a timeline, instead of paging the
// operator once per sweep.
type Incident struct {
	ID int64 `json:"id"`
	// State is open while events keep arriving; resolved once the
	// tenant's series stayed inside their bands for ResolveAfter.
	State string `json:"state"`
	// RootCause is the correlation key: the Algorithm 2 root-cause
	// element when chains are diagnosed, otherwise the Algorithm 1
	// inferred resource ("resource:memory-bandwidth"), otherwise the
	// spiking element itself.
	RootCause string `json:"root_cause"`
	// Tenants and Elements accumulate everything the episode touched.
	Tenants  []core.TenantID  `json:"tenants"`
	Elements []core.ElementID `json:"elements"`
	// FirstSeen/LastSeen bound the timeline in record-clock ns;
	// ResolvedAt is set when the incident closes.
	FirstSeen  int64 `json:"first_seen"`
	LastSeen   int64 `json:"last_seen"`
	ResolvedAt int64 `json:"resolved_at,omitempty"`
	// EventSeqs are the journal sequence numbers of the member events
	// (capped at maxIncidentEventSeqs); EventCount is uncapped.
	EventSeqs  []int64 `json:"event_seqs"`
	EventCount int     `json:"event_count"`
	// TraceIDs are the distributed traces referenced by member events
	// (deduplicated, capped at maxIncidentTraceIDs) — the queries or
	// push frames whose records triggered them, retrievable from the
	// span store as skew-corrected waterfalls.
	TraceIDs []uint64 `json:"trace_ids,omitempty"`
	// Summary is the latest member event's verdict line.
	Summary string `json:"summary"`
	// DetectionNS is the opening event's detection latency: record-clock
	// time from the series' last known-good sample to the trigger.
	DetectionNS int64 `json:"detection_ns,omitempty"`
}

// clone deep-copies the incident so correlator internals never escape.
func (in *Incident) clone() Incident {
	out := *in
	out.Tenants = append([]core.TenantID(nil), in.Tenants...)
	out.Elements = append([]core.ElementID(nil), in.Elements...)
	out.EventSeqs = append([]int64(nil), in.EventSeqs...)
	out.TraceIDs = append([]uint64(nil), in.TraceIDs...)
	return out
}

// CorrelatorConfig bounds incident grouping.
type CorrelatorConfig struct {
	// Window is the sliding correlation window: an event sharing an open
	// incident's root cause within Window of its LastSeen joins it; any
	// later recurrence opens a fresh incident. Default 5m.
	Window time.Duration
	// ResolveAfter closes an open incident once no member event arrived
	// for this long (the series returned inside their bands). Default 1m.
	ResolveAfter time.Duration
	// MaxResolved bounds the retained resolved-incident history (oldest
	// evicted). Default 256.
	MaxResolved int
}

func (c CorrelatorConfig) withDefaults() CorrelatorConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.ResolveAfter <= 0 {
		c.ResolveAfter = time.Minute
	}
	if c.MaxResolved <= 0 {
		c.MaxResolved = 256
	}
	return c
}

// Correlator groups diagnosis events into incidents by root cause. All
// methods are safe for concurrent use.
type Correlator struct {
	cfg CorrelatorConfig

	mu       sync.Mutex
	nextID   int64
	open     map[string]*Incident // root cause -> open incident
	resolved []*Incident          // ring, oldest first
}

// NewCorrelator builds a correlator (zero config fields take defaults).
func NewCorrelator(cfg CorrelatorConfig) *Correlator {
	return &Correlator{cfg: cfg.withDefaults(), open: make(map[string]*Incident)}
}

// Observe folds one diagnosis event into the incident sharing its root
// cause, opening a new incident when none is open (or the open one's
// window lapsed — Tick resolves those, but a late burst after a long
// quiet gap must not reopen history). It returns the incident ID and
// whether this event opened it.
func (c *Correlator) Observe(key string, tid core.TenantID, elems []core.ElementID, ts int64, seq int64, summary string, detectionNS int64, traceID uint64) (id int64, opened bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in := c.open[key]
	if in != nil && ts-in.LastSeen > int64(c.cfg.Window) {
		c.resolveLocked(in, in.LastSeen+int64(c.cfg.ResolveAfter))
		in = nil
	}
	if in == nil {
		c.nextID++
		in = &Incident{
			ID:          c.nextID,
			State:       StateOpen,
			RootCause:   key,
			FirstSeen:   ts,
			DetectionNS: detectionNS,
		}
		c.open[key] = in
		opened = true
	}
	if ts > in.LastSeen {
		in.LastSeen = ts
	}
	in.Summary = summary
	in.EventCount++
	if len(in.EventSeqs) < maxIncidentEventSeqs {
		in.EventSeqs = append(in.EventSeqs, seq)
	}
	if traceID != 0 && len(in.TraceIDs) < maxIncidentTraceIDs && !containsTrace(in.TraceIDs, traceID) {
		in.TraceIDs = append(in.TraceIDs, traceID)
	}
	if !containsTenant(in.Tenants, tid) {
		in.Tenants = append(in.Tenants, tid)
		sort.Slice(in.Tenants, func(i, j int) bool { return in.Tenants[i] < in.Tenants[j] })
	}
	for _, e := range elems {
		if !containsElem(in.Elements, e) {
			in.Elements = append(in.Elements, e)
		}
	}
	sort.Slice(in.Elements, func(i, j int) bool { return in.Elements[i] < in.Elements[j] })
	return in.ID, opened
}

// Tick advances the correlator's clock: open incidents quiet for
// ResolveAfter move to resolved. It returns how many incidents resolved.
func (c *Correlator) Tick(now int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, in := range c.open {
		if now-in.LastSeen >= int64(c.cfg.ResolveAfter) {
			c.resolveLocked(in, now)
			n++
		}
	}
	return n
}

func (c *Correlator) resolveLocked(in *Incident, at int64) {
	in.State = StateResolved
	in.ResolvedAt = at
	delete(c.open, in.RootCause)
	c.resolved = append(c.resolved, in)
	if len(c.resolved) > c.cfg.MaxResolved {
		c.resolved = c.resolved[len(c.resolved)-c.cfg.MaxResolved:]
	}
}

// Get returns a snapshot of one incident by ID.
func (c *Correlator) Get(id int64) (Incident, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, in := range c.open {
		if in.ID == id {
			return in.clone(), true
		}
	}
	for _, in := range c.resolved {
		if in.ID == id {
			return in.clone(), true
		}
	}
	return Incident{}, false
}

// List returns incident snapshots, newest first. state filters by
// lifecycle ("open", "resolved", "" = all); limit <= 0 means all.
func (c *Correlator) List(state string, limit int) []Incident {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Incident, 0, len(c.open)+len(c.resolved))
	if state != StateResolved {
		for _, in := range c.open {
			out = append(out, in.clone())
		}
	}
	if state != StateOpen {
		for _, in := range c.resolved {
			out = append(out, in.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// OpenCount returns the number of open incidents (the telemetry gauge).
func (c *Correlator) OpenCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.open)
}

func containsTenant(s []core.TenantID, t core.TenantID) bool {
	for _, v := range s {
		if v == t {
			return true
		}
	}
	return false
}

func containsTrace(s []uint64, t uint64) bool {
	for _, v := range s {
		if v == t {
			return true
		}
	}
	return false
}

func containsElem(s []core.ElementID, e core.ElementID) bool {
	for _, v := range s {
		if v == e {
			return true
		}
	}
	return false
}
