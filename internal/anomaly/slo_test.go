package anomaly

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"perfsight/internal/core"
)

func TestDurationUnmarshalForms(t *testing.T) {
	var s struct {
		D Duration `json:"d"`
	}
	if err := json.Unmarshal([]byte(`{"d": "3s"}`), &s); err != nil || s.D != Duration(3*time.Second) {
		t.Fatalf(`"3s" -> (%v, %v)`, s.D, err)
	}
	if err := json.Unmarshal([]byte(`{"d": 1500000000}`), &s); err != nil || s.D != Duration(1500*time.Millisecond) {
		t.Fatalf(`ns int -> (%v, %v)`, s.D, err)
	}
	if err := json.Unmarshal([]byte(`{"d": "not a duration"}`), &s); err == nil {
		t.Fatal("garbage duration unmarshaled")
	}
	raw, _ := json.Marshal(Duration(90 * time.Second))
	if string(raw) != `"1m30s"` {
		t.Fatalf("marshal = %s", raw)
	}
}

func TestSLOResolution(t *testing.T) {
	cfg := SLOConfig{
		Default: SLO{DropRatePPS: 200, Window: Duration(5 * time.Second)},
		Tenants: map[core.TenantID]SLO{
			"gold": {DropRatePPS: 10, Cooldown: Duration(10 * time.Second)},
		},
	}
	// Unknown tenant: config default over built-ins.
	s := cfg.For("t-any")
	if s.DropRatePPS != 200 || s.Window != Duration(5*time.Second) {
		t.Fatalf("default tenant SLO = %+v", s)
	}
	if s.Bands != builtinSLO.Bands || s.Cooldown != builtinSLO.Cooldown {
		t.Fatalf("built-in fields not inherited: %+v", s)
	}
	// Override tenant: its fields win, the rest inherit down the chain.
	g := cfg.For("gold")
	if g.DropRatePPS != 10 || g.Cooldown != Duration(10*time.Second) {
		t.Fatalf("gold SLO overrides lost: %+v", g)
	}
	if g.Window != Duration(5*time.Second) || g.MinSamples != builtinSLO.MinSamples {
		t.Fatalf("gold SLO inheritance broken: %+v", g)
	}
}

func TestSLOWithBase(t *testing.T) {
	// Flag values act as the base; file settings win where stated.
	cfg := SLOConfig{Default: SLO{DropRatePPS: 75}}.WithBase(SLO{
		DropRatePPS: 999, Bands: 4, Window: Duration(7 * time.Second),
	})
	s := cfg.For("t")
	if s.DropRatePPS != 75 {
		t.Fatalf("file default overridden by base: %v", s.DropRatePPS)
	}
	if s.Bands != 4 || s.Window != Duration(7*time.Second) {
		t.Fatalf("base did not fill unset fields: %+v", s)
	}
}

func TestLoadSLOConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slo.json")
	good := `{
  "default": {"drop_rate_pps": 40, "window": "2s"},
  "tenants": {"gold": {"drop_rate_pps": 5, "disable_baselines": true}}
}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadSLOConfig(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if g := cfg.For("gold"); g.DropRatePPS != 5 || !g.DisableBaselines || g.Window != Duration(2*time.Second) {
		t.Fatalf("gold = %+v", g)
	}

	if _, err := LoadSLOConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"default": {"bands": 0.5}}`), 0o644)
	if _, err := LoadSLOConfig(bad); err == nil {
		t.Fatal("bands < 1 validated")
	}
	neg := filepath.Join(dir, "neg.json")
	os.WriteFile(neg, []byte(`{"tenants": {"x": {"drop_rate_pps": -1}}}`), 0o644)
	if _, err := LoadSLOConfig(neg); err == nil {
		t.Fatal("negative threshold validated")
	}
}
