package anomaly

import (
	"testing"
	"time"
)

func TestRateDetectorTable(t *testing.T) {
	const maxGap = int64(30 * time.Second)
	type step struct {
		ts       int64
		v        float64
		wantRate float64
		wantSt   RateStatus
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"cold start seeds only", []step{
			{1e9, 100, 0, RateCold},
			{2e9, 1100, 1000, RateOK},
		}},
		{"stale timestamp keeps state", []step{
			{1e9, 100, 0, RateCold},
			{1e9, 999, 0, RateStale}, // duplicate sweep: ignored entirely
			{2e9, 600, 500, RateOK},  // still differenced against ts=1s, v=100
		}},
		{"sweep gap re-seeds instead of averaging the blackout", []step{
			{1e9, 0, 0, RateCold},
			{2e9, 1000, 1000, RateOK},
			{100e9, 5000, 0, RateGap}, // 98s blackout > maxGap
			{101e9, 6000, 1000, RateOK},
		}},
		{"counter reset going negative re-seeds", []step{
			{1e9, 1e6, 0, RateCold},
			{2e9, 1e6 + 500, 500, RateOK},
			{3e9, 40, 0, RateReset}, // agent restarted, counter restarted
			{4e9, 90, 50, RateOK},
		}},
		{"fractional-second gaps scale the rate", []step{
			{1e9, 0, 0, RateCold},
			{1e9 + 5e8, 100, 200, RateOK}, // 100 pkts over 0.5s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d RateDetector
			for i, s := range tc.steps {
				rate, st := d.Eval(s.ts, s.v, maxGap)
				if st != s.wantSt {
					t.Fatalf("step %d: status = %d, want %d", i, st, s.wantSt)
				}
				if rate != s.wantRate {
					t.Fatalf("step %d: rate = %v, want %v", i, rate, s.wantRate)
				}
			}
		})
	}
}

func TestRateDetectorNoMaxGap(t *testing.T) {
	var d RateDetector
	d.Eval(1e9, 0, 0)
	// maxGap 0 disables the gap check: a huge gap still yields a rate.
	if rate, st := d.Eval(1001e9, 1000, 0); st != RateOK || rate != 1 {
		t.Fatalf("Eval with maxGap=0 = (%v, %d), want (1, RateOK)", rate, st)
	}
}

func TestEWMAColdStartNeverTriggers(t *testing.T) {
	cfg := EWMAConfig{Alpha: 0.25, MinSamples: 8, Bands: 6, RelFloor: 0.15, Persistence: 3}
	var d EWMADetector
	// Wild samples during warmup fold into the baseline without judging.
	for i, x := range []float64{100, 0, 5000, 3, 900, 2, 700, 1} {
		v := d.Eval(x, cfg)
		if v.Out || v.Trigger {
			t.Fatalf("warmup sample %d (x=%v) judged: %+v", i, x, v)
		}
	}
	if d.Warm() != cfg.MinSamples {
		t.Fatalf("Warm = %d after %d samples, want %d", d.Warm(), 8, cfg.MinSamples)
	}
}

func TestEWMAPersistenceSuppressesBlips(t *testing.T) {
	cfg := EWMAConfig{Alpha: 0.25, MinSamples: 4, Bands: 6, RelFloor: 0.15, Persistence: 3}
	var d EWMADetector
	for i := 0; i < 6; i++ {
		d.Eval(10, cfg)
	}
	// One blip: out of band but no trigger.
	v := d.Eval(1000, cfg)
	if !v.Out || v.Trigger {
		t.Fatalf("blip verdict = %+v, want Out without Trigger", v)
	}
	if v.Deviation <= 1 {
		t.Fatalf("blip Deviation = %v, want > 1 band", v.Deviation)
	}
	// Back in band: streak resets.
	if v := d.Eval(10, cfg); v.Out {
		t.Fatalf("recovery sample judged out: %+v", v)
	}
	if d.Streak() != 0 {
		t.Fatalf("Streak after recovery = %d, want 0", d.Streak())
	}
	// Persistence consecutive outliers trigger on the last one.
	for i := 1; i <= cfg.Persistence; i++ {
		v = d.Eval(1000, cfg)
		if !v.Out {
			t.Fatalf("outlier %d not out of band", i)
		}
		if want := i == cfg.Persistence; v.Trigger != want {
			t.Fatalf("outlier %d Trigger = %v, want %v", i, v.Trigger, want)
		}
	}
}

func TestEWMABaselineSurvivesAnomaly(t *testing.T) {
	cfg := EWMAConfig{Alpha: 0.25, MinSamples: 4, Bands: 6, RelFloor: 0.15, Persistence: 2}
	var d EWMADetector
	for i := 0; i < 8; i++ {
		d.Eval(100, cfg)
	}
	base := d.Baseline()
	// An anomaly folds in at Alpha/8, so the baseline drifts slowly
	// enough that the series coming back is recognized as recovery.
	for i := 0; i < 4; i++ {
		if v := d.Eval(5000, cfg); !v.Out {
			t.Fatalf("anomaly sample %d already absorbed into baseline", i)
		}
	}
	if d.Baseline() > 10*base {
		t.Fatalf("baseline chased the anomaly: %v -> %v", base, d.Baseline())
	}
	if v := d.Eval(100, cfg); v.Out {
		t.Fatalf("normal sample after anomaly still out of band: %+v", v)
	}
	if d.Streak() != 0 {
		t.Fatalf("streak did not reset on recovery: %d", d.Streak())
	}
}

func TestEWMAFloorsKeepFlatSeriesQuiet(t *testing.T) {
	cfg := EWMAConfig{Alpha: 0.25, MinSamples: 2, Bands: 6, RelFloor: 0.15, AbsFloor: 0.5, Persistence: 1}
	var d EWMADetector
	// Perfectly flat series: dev is exactly 0, floors carry the band.
	for i := 0; i < 5; i++ {
		d.Eval(3, cfg)
	}
	// Small jitter inside AbsFloor*Bands = 0.5*6 = 3 stays quiet.
	if v := d.Eval(4, cfg); v.Out {
		t.Fatalf("jitter within the floor band judged out: %+v", v)
	}
	// A real jump is still caught.
	if v := d.Eval(50, cfg); !v.Out || !v.Trigger {
		t.Fatalf("jump on a flat series not caught: %+v", v)
	}
}

func TestEWMAReset(t *testing.T) {
	cfg := EWMAConfig{Alpha: 0.25, MinSamples: 3, Bands: 6, RelFloor: 0.15, Persistence: 1}
	var d EWMADetector
	for i := 0; i < 5; i++ {
		d.Eval(10, cfg)
	}
	d.Reset()
	if d.Warm() != 0 || d.Baseline() != 0 {
		t.Fatalf("Reset left state: warm=%d baseline=%v", d.Warm(), d.Baseline())
	}
	// Post-reset the detector relearns before judging again.
	if v := d.Eval(99999, cfg); v.Out {
		t.Fatalf("first post-reset sample judged: %+v", v)
	}
}
