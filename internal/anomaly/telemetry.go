package anomaly

import (
	"perfsight/internal/telemetry"
)

// pipelineMetrics is the pipeline's self-telemetry block, resolved once
// at EnableTelemetry time and read through one atomic pointer load on
// the evaluation path (the repo-wide opt-in gate idiom).
type pipelineMetrics struct {
	evals        *telemetry.Counter
	triggers     *telemetry.Counter
	suppressions *telemetry.Counter
	resets       *telemetry.Counter
	opened       *telemetry.Counter
	resolved     *telemetry.Counter
	latency      *telemetry.Histogram
}

// EnableTelemetry registers the pipeline's detector and incident series
// in reg. Call before wiring AfterSweep.
func (p *Pipeline) EnableTelemetry(reg *telemetry.Registry) {
	m := &pipelineMetrics{
		evals: reg.Counter("perfsight_anomaly_evaluations_total",
			"per-series detector evaluations performed on monitor sweeps"),
		triggers: reg.Counter("perfsight_anomaly_triggers_total",
			"SLO-gated detector triggers that ran an automatic diagnosis"),
		suppressions: reg.Counter("perfsight_anomaly_suppressions_total",
			"SLO violations suppressed by the per-tenant cooldown"),
		resets: reg.Counter("perfsight_anomaly_counter_resets_total",
			"counter series that moved backwards (agent restart) and re-seeded"),
		opened: reg.Counter("perfsight_anomaly_incidents_opened_total",
			"incidents opened by the correlator"),
		resolved: reg.Counter("perfsight_anomaly_incidents_resolved_total",
			"incidents resolved after their series returned inside bands"),
		latency: reg.Histogram("perfsight_anomaly_detection_latency_ns",
			"record-clock ns from a series' last known-good sample to its trigger"),
	}
	reg.GaugeFunc("perfsight_anomaly_incidents_open",
		"incidents currently open",
		func() float64 { return float64(p.Incidents.OpenCount()) })
	reg.GaugeFunc("perfsight_anomaly_series",
		"(tenant, element, attr) series with live detector state",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(len(p.series))
		})
	p.tel.Store(m)
}
